(* ksplice-tool: command-line front end mirroring the paper's §5 workflow:

     ksplice-tool create --source DIR --patch FILE -o UPDATE
     ksplice-tool inspect UPDATE
     ksplice-tool list-cves
     ksplice-tool demo --cve ID

   create/inspect operate on real files (source directories, unified
   diffs, binary update files); demo boots the evaluation kernel in-process
   and walks one corpus CVE end to end, since a live kernel cannot
   meaningfully live in a file. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Update = Ksplice.Update
module Create = Ksplice.Create
module Apply = Ksplice.Apply

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* load a source tree from a directory: every .c/.s file, with paths
   relative to the root *)
let read_tree root =
  let rec walk acc dir =
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then walk acc path
        else if
          Filename.check_suffix entry ".c" || Filename.check_suffix entry ".s"
        then begin
          let rel =
            String.sub path
              (String.length root + 1)
              (String.length path - String.length root - 1)
          in
          (rel, read_file path) :: acc
        end
        else acc)
      acc (Sys.readdir dir)
  in
  Tree.of_list (walk [] root)

(* --explain: every shipped symbol of the primary, with the reason the
   differencing engine included it, grouped per patched unit and tied
   back to the unit's slice of the source patch *)
let print_explanation (c : Create.created) =
  print_string "why each symbol ships:\n";
  List.iter
    (fun (p : Create.provenance) ->
      Printf.printf "  %s: %d hunk%s, +%d/-%d lines\n" p.p_unit p.p_hunks
        (if p.p_hunks = 1 then "" else "s")
        p.p_patch.added p.p_patch.removed;
      if p.p_shipped = [] then
        print_string "    (no object code shipped from this unit)\n"
      else
        List.iter
          (fun (sym, reason) ->
            Printf.printf "    %-32s %s\n" sym
              (Ksplice.Prepost.reason_to_string reason))
          p.p_shipped)
    c.provenance

let cmd_create source patch_file output id desc explain =
  let tree = read_tree source in
  let patch_text = read_file patch_file in
  match Diff.parse patch_text with
  | Error e ->
    Printf.eprintf "error: cannot parse patch: %s\n" e;
    exit 1
  | Ok patch -> (
    match
      Create.create { source = tree; patch; update_id = id; description = desc }
    with
    | Error e ->
      Format.eprintf "error: %a@." Create.pp_error e;
      exit 1
    | Ok ({ update; diffs; _ } as created) ->
      Update.write_file output update;
      Printf.printf "Ksplice update written to %s\n" output;
      List.iter
        (fun (d : Ksplice.Prepost.unit_diff) ->
          Format.printf "%a@." Ksplice.Prepost.pp_unit_diff d)
        diffs;
      if explain then print_explanation created)

let cmd_inspect path =
  let u = Update.read_file path in
  Printf.printf "update:      %s\n" u.update_id;
  Printf.printf "description: %s\n" u.description;
  Printf.printf "patched units (%d):\n" (List.length u.patched_units);
  List.iter (fun f -> Printf.printf "  %s\n" f) u.patched_units;
  Printf.printf "replaced functions (%d):\n"
    (List.length u.replaced_functions);
  List.iter
    (fun (unit_name, f) -> Printf.printf "  %-28s (%s)\n" f unit_name)
    u.replaced_functions;
  let section_bytes (o : Objfile.t) =
    List.fold_left
      (fun a (s : Objfile.Section.t) -> a + s.size)
      0 o.sections
  in
  Printf.printf "primary module: %d sections, %d bytes\n"
    (List.length u.primary.sections)
    (section_bytes u.primary);
  Printf.printf "helper modules: %d (%d bytes total)\n"
    (List.length u.helpers)
    (List.fold_left (fun a h -> a + section_bytes h) 0 u.helpers)

let cmd_objdump path =
  let data = read_file path in
  if String.length data >= 5 && String.sub data 0 5 = "KSPL1" then begin
    match Update.of_bytes (Bytes.of_string data) with
    | Error e ->
      Printf.eprintf "error: corrupt update file: %s\n"
        (Update.decode_error_to_string e);
      exit 1
    | Ok u ->
      Printf.printf "update %s\n\n=== primary module ===\n" u.update_id;
      Format.printf "%a@." Objfile.Objdump.pp u.primary;
      List.iter
        (fun h ->
          Printf.printf "\n=== helper (pre) module: %s ===\n"
            h.Objfile.unit_name;
          Format.printf "%a@." Objfile.Objdump.pp h)
        u.helpers
  end
  else
    match Objfile.of_bytes (Bytes.of_string data) with
    | Ok o -> Format.printf "%a@." Objfile.Objdump.pp o
    | Error e ->
      Printf.eprintf "error: not an update or object file: %s\n"
        (Objfile.decode_error_to_string e);
      exit 1

let cmd_export dir =
  (* write the evaluation kernel's source tree plus every CVE patch, so
     the file-based create workflow can be driven by hand:
       ksplice-tool export --dir /tmp/ws
       ksplice-tool create --source /tmp/ws/src \
         --patch /tmp/ws/patches/CVE-2006-2451.patch -o u.ksplice *)
  let base = Corpus.Base_kernel.tree () in
  let mkdir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755 in
  mkdir dir;
  let src_dir = Filename.concat dir "src" in
  mkdir src_dir;
  mkdir (Filename.concat src_dir "kernel");
  List.iter
    (fun (path, contents) ->
      let oc = open_out (Filename.concat src_dir path) in
      output_string oc contents;
      close_out oc)
    (Tree.bindings base);
  let patch_dir = Filename.concat dir "patches" in
  mkdir patch_dir;
  List.iter
    (fun (cve : Corpus.Cve.t) ->
      let oc =
        open_out (Filename.concat patch_dir (cve.id ^ ".patch"))
      in
      output_string oc (Diff.to_string (Corpus.Cve.hot_patch cve base));
      close_out oc)
    Corpus.Cve.all;
  Printf.printf "exported kernel source to %s and %d patches to %s\n"
    src_dir (List.length Corpus.Cve.all) patch_dir

let cmd_list_cves () =
  Printf.printf "%-16s %-6s %-20s %s\n" "CVE ID" "custom" "file" "description";
  List.iter
    (fun (c : Corpus.Cve.t) ->
      Printf.printf "%-16s %-6s %-20s %s\n" c.id
        (match c.custom with
         | Some _ -> "yes"
         | None -> "no")
        c.file
        (if String.length c.desc > 60 then String.sub c.desc 0 57 ^ "..."
         else c.desc))
    Corpus.Cve.all

let cmd_demo cve_id =
  match Corpus.Cve.find cve_id with
  | None ->
    Printf.eprintf "error: unknown CVE %s (try list-cves)\n" cve_id;
    exit 1
  | Some cve ->
    Printf.printf "== %s: %s\n\n" cve.id cve.desc;
    Printf.printf "[1] booting the kernel (distro-style build)...\n";
    let b = Corpus.Boot.boot () in
    let exploit = Corpus.Exploits.find cve.id in
    (match exploit with
     | Some e ->
       (* prove the vulnerability on a throwaway kernel: exploiting the
          real one first would leave corrupted state behind — a patch
          cannot un-compromise a kernel (§7.2) *)
       let sacrificial = Corpus.Boot.boot () in
       let r = e.run sacrificial in
       Printf.printf
         "[2] exploit '%s' on a sacrificial kernel: %s (%s)\n" e.name
         (if r.succeeded then "SUCCEEDS" else "fails")
         r.detail
     | None -> Printf.printf "[2] no exploit recorded for this CVE\n");
    Printf.printf "[3] ksplice-create: building pre and post, diffing...\n";
    let base = Corpus.Base_kernel.tree () in
    let patch = Corpus.Cve.hot_patch cve base in
    (match
       Create.create
         { source = base; patch; update_id = cve.id; description = cve.desc }
     with
     | Error e ->
       Format.eprintf "create failed: %a@." Create.pp_error e;
       exit 1
     | Ok { update; diffs; _ } ->
       List.iter
         (fun (d : Ksplice.Prepost.unit_diff) ->
           Printf.printf "    %s: replacing %s\n" d.unit_name
             (String.concat ", " d.changed_functions))
         diffs;
       Printf.printf "[4] ksplice-apply: run-pre matching, stop_machine, \
                      trampolines...\n";
       let mgr = Apply.init b.machine in
       (match Apply.apply mgr update with
        | Error e ->
          Format.eprintf "apply failed: %a@." Apply.pp_error e;
          exit 1
        | Ok a ->
          Printf.printf "    applied; simulated pause %.3f ms; %d \
                         trampoline(s)\n"
            (float_of_int a.pause_ns /. 1e6)
            (List.length a.saved));
       (match exploit with
        | Some e ->
          let r = e.run b in
          Printf.printf "[5] exploit against the patched kernel: %s (%s)\n"
            (if r.succeeded then "STILL WORKS - BUG" else "blocked")
            r.detail
        | None -> ());
       let stress = Corpus.Stress.run b ~threads:2 ~iterations:10 in
       Printf.printf "[6] stress test: %s\n"
         (if stress.ok then "passed" else "FAILED");
       (match Apply.undo mgr cve.id with
        | Ok () -> Printf.printf "[7] ksplice-undo: original code restored\n"
        | Error e -> Format.printf "[7] undo failed: %a@." Apply.pp_error e);
       (match exploit with
        | Some e ->
          let r = e.run b in
          Printf.printf "[8] exploit after undo: %s (the hole is back)\n"
            (if r.succeeded then "succeeds" else "fails")
        | None -> ());
       Printf.printf "\nDone.\n")

(* Load a JSON report or die with a message naming the file and the
   producer to rerun — a missing or half-written report must be an
   ordinary error, not a backtrace. *)
let load_json_or_die ~producer path =
  match Report.Json.of_file path with
  | Ok doc -> doc
  | Error m ->
    Printf.eprintf "error: %s (regenerate with %s)\n" m producer;
    exit 1

(* bench-summary failures as data: a missing file or a missing section
   is an ordinary, printable error — never a backtrace *)
type summary_error =
  | Summary_unreadable of { path : string; msg : string }
  | Summary_missing_section of { path : string; section : string }

let pp_summary_error ppf = function
  | Summary_unreadable { path; msg } ->
    Format.fprintf ppf
      "%s: %s (regenerate with `dune build @bench` or bench/main.exe)" path
      msg
  | Summary_missing_section { path; section } ->
    Format.fprintf ppf
      "%s has no %S section (regenerate with `dune build @bench`, or check \
       the section name against the ksplice-bench/1 schema)"
      path section

let cmd_bench_summary path only =
  let module J = Report.Json in
  match Report.Json.of_file path with
  | Error msg -> Error (Summary_unreadable { path; msg })
  | Ok doc when only <> None -> (
    let section = Option.get only in
    match J.member section doc with
    | None | Some J.Null ->
      Error (Summary_missing_section { path; section })
    | Some j ->
      print_endline (J.to_string j);
      Ok ())
  | Ok doc ->
    let field obj k conv = Option.bind (J.member k obj) conv in
    let str obj k = Option.value ~default:"?" (field obj k J.to_str) in
    let istr obj k =
      match field obj k J.to_int with
      | Some n -> string_of_int n
      | None -> "?"
    in
    let pct obj k =
      match field obj k J.to_float with
      | Some r -> Printf.sprintf "%.1f%%" (100.0 *. r)
      | None -> "n/a"
    in
    Printf.printf "%s — %s run, %s domains (%s available)\n" (str doc "schema")
      (str doc "mode") (istr doc "domains")
      (istr doc "available_domains");
    (match field doc "sections" J.to_list with
     | None | Some [] -> ()
     | Some sections ->
       Printf.printf "\nsections (wall clock):\n";
       List.iter
         (fun s ->
           match (field s "name" J.to_str, field s "wall_s" J.to_float) with
           | Some name, Some w -> Printf.printf "  %-24s %9.3f s\n" name w
           | _ -> ())
         sections);
    (match field doc "bechamel" J.to_list with
     | None | Some [] -> ()
     | Some rows ->
       Printf.printf "\nmicro-benchmarks (Bechamel OLS):\n";
       List.iter
         (fun r ->
           match (field r "name" J.to_str, field r "ns_per_run" J.to_float) with
           | Some name, Some ns ->
             if ns > 1e6 then
               Printf.printf "  %-46s %10.3f ms/run\n" name (ns /. 1e6)
             else if ns > 1e3 then
               Printf.printf "  %-46s %10.3f us/run\n" name (ns /. 1e3)
             else Printf.printf "  %-46s %10.1f ns/run\n" name ns
           | _ -> ())
         rows);
    (match J.member "kbuild_cache" doc with
     | None -> ()
     | Some c ->
       Printf.printf
         "\nkbuild compile cache: %s hit rate (%s hits / %s misses, %s \
          evictions, %s of %s entries used)\n"
         (pct c "hit_rate") (istr c "hits") (istr c "misses")
         (istr c "evictions") (istr c "entries") (istr c "capacity"));
    (match J.member "kallsyms_index" doc with
     | None -> ()
     | Some i ->
       Printf.printf "kallsyms name index:  %s hit rate (%s lookups)\n"
         (pct i "hit_rate") (istr i "lookups"));
    (match J.member "creation_sweep" doc with
     | None | Some J.Null -> ()
     | Some cs ->
       let fstr k =
         match field cs k J.to_float with
         | Some f -> Printf.sprintf "%.3f" f
         | None -> "?"
       in
       Printf.printf
         "creation sweep:       %s CVEs — serial %s s, parallel %s s \
          (%.2fx), identical=%s\n"
         (istr cs "cves") (fstr "serial_wall_s") (fstr "parallel_wall_s")
         (Option.value ~default:Float.nan (field cs "speedup" J.to_float))
         (match J.member "identical" cs with
          | Some (J.Bool b) -> string_of_bool b
          | _ -> "?"));
    (match J.member "store" doc with
     | None | Some J.Null -> ()
     | Some st ->
       let fstr k =
         match field st k J.to_float with
         | Some f -> Printf.sprintf "%.3f" f
         | None -> "?"
       in
       Printf.printf
         "artifact store:       %s CVEs — cold %s s, warm %s s (%.2fx), \
          %s units skipped, dedup ratio %s, %s bytes saved, identical=%s; \
          minimal diffs saved %s update bytes / %s symbols\n"
         (istr st "cves") (fstr "cold_wall_s") (fstr "warm_wall_s")
         (Option.value ~default:Float.nan (field st "speedup" J.to_float))
         (istr st "skipped_units")
         (pct st "dedup_ratio")
         (istr st "bytes_saved")
         (match J.member "identical" st with
          | Some (J.Bool b) -> string_of_bool b
          | _ -> "?")
         (istr st "diff_bytes_saved")
         (istr st "skipped_symbols"));
    (match J.member "differencing" doc with
     | None | Some J.Null -> ()
     | Some df ->
       Printf.printf
         "differencing:         %s rows — %s/%s update bytes, %s/%s \
          run-pre trials (minimal/whole-unit); %s closure, %s \
          data-referent, %s data-init refusal demo(s); %s violation(s), \
          ok=%s\n"
         (istr df "rows") (istr df "bytes_min") (istr df "bytes_whole")
         (istr df "trials_min") (istr df "trials_whole")
         (istr df "closure_demos") (istr df "dataref_demos")
         (istr df "persist_rejects") (istr df "violations")
         (match J.member "ok" df with
          | Some (J.Bool b) -> string_of_bool b
          | _ -> "?"));
    (match J.member "trace" doc with
     | None | Some J.Null -> ()
     | Some tr ->
       let fstr k =
         match field tr k J.to_float with
         | Some f -> Printf.sprintf "%.3f" f
         | None -> "?"
       in
       let bstr k =
         match J.member k tr with
         | Some (J.Bool b) -> string_of_bool b
         | _ -> "?"
       in
       Printf.printf
         "tracing overhead:     %s CVEs — untraced %s s, traced %s s \
          (%sx, budget %s, within=%s), identical=%s, %s records\n"
         (istr tr "cves") (fstr "untraced_wall_s") (fstr "traced_wall_s")
         (fstr "overhead") (fstr "budget") (bstr "within_budget")
         (bstr "identical") (istr tr "records"));
    (match J.member "crash_recovery" doc with
     | None | Some J.Null -> ()
     | Some cr ->
       let fstr k =
         match field cr k J.to_float with
         | Some f -> Printf.sprintf "%.3f" f
         | None -> "?"
       in
       Printf.printf
         "crash recovery:       %s CVEs, %s crash points — %s whole, %s \
          absent, %s violation(s); gc swept %s blob(s) / %s bytes; \
          recover %s s, ok=%s\n"
         (istr cr "cves") (istr cr "cells") (istr cr "published")
         (istr cr "absent") (istr cr "violations") (istr cr "gc_swept")
         (istr cr "gc_reclaimed_bytes") (fstr "recovery_s")
         (match J.member "ok" cr with
          | Some (J.Bool b) -> string_of_bool b
          | _ -> "?"));
    (match J.member "transition" doc with
     | None | Some J.Null -> ()
     | Some tn ->
       let fstr k =
         match field tn k J.to_float with
         | Some f -> Printf.sprintf "%.5f" f
         | None -> "?"
       in
       let bstr k =
         match J.member k tn with
         | Some (J.Bool b) -> string_of_bool b
         | _ -> "?"
       in
       Printf.printf
         "transition:           %s CVEs, %s threads — dip %s vs \
          stop_machine %s (below=%s), %s pauseless row(s), %s fallback(s), \
          %s violation(s), footprints identical=%s\n"
         (istr tn "cves") (istr tn "threads") (fstr "dip")
         (fstr "baseline_dip")
         (bstr "dip_below_baseline")
         (istr tn "pauseless_rows")
         (istr tn "straggler_fallbacks")
         (istr tn "violations")
         (bstr "footprints_identical");
       (match field tn "migrated_by_class" (fun j ->
            match j with J.Obj kvs -> Some kvs | _ -> None)
        with
        | None | Some [] -> ()
        | Some kvs ->
          Printf.printf "  migrated by class:  %s\n"
            (String.concat ", "
               (List.filter_map
                  (fun (k, v) ->
                    Option.map
                      (fun n -> Printf.sprintf "%s=%d" k n)
                      (J.to_int v))
                  kvs)));
       (* pause percentiles: the histogram the paper's §5.2 pause cost
          collapses into. Nearest-rank over the recorded pauses. *)
       let percentile sorted p =
         let n = Array.length sorted in
         if n = 0 then 0
         else
           sorted.(min (n - 1)
                     (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1))
       in
       let pauses_of k =
         match field tn k J.to_list with
         | None -> [||]
         | Some l ->
           let a = Array.of_list (List.filter_map J.to_int l) in
           Array.sort compare a;
           a
       in
       List.iter
         (fun (label, key) ->
           let a = pauses_of key in
           if Array.length a > 0 then
             Printf.printf
               "  pause %-18s p50 %8d ns   p99 %8d ns   max %8d ns\n" label
               (percentile a 50.0) (percentile a 99.0)
               (percentile a 100.0))
         [
           ("(per-thread)", "pauses_ns");
           ("(undo)", "undo_pauses_ns");
           ("(stop_machine)", "baseline_pauses_ns");
           ("(straggler)", "straggler_pauses_ns");
         ]);
    (match J.member "fleet" doc with
     | None | Some J.Null -> ()
     | Some fl ->
       let fstr fmt k =
         match field fl k J.to_float with
         | Some f -> Printf.sprintf fmt f
         | None -> "?"
       in
       Printf.printf
         "fleet sync:           %s subscribers over a depth-%s chain — %s \
          synced at %s subscribers/s (wall %s s)\n"
         (istr fl "subscribers") (istr fl "chain_depth") (istr fl "synced")
         (fstr "%.1f" "subscribers_per_s")
         (fstr "%.3f" "wall_s");
       Printf.printf
         "  sync latency:       p50 %s s   p99 %s s\n"
         (fstr "%.6f" "p50_sync_s") (fstr "%.6f" "p99_sync_s");
       Printf.printf
         "  delta sync:         %s bytes fetched, %s saved against a \
          %s-byte cold mirror, ok=%s\n"
         (istr fl "bytes_fetched") (istr fl "bytes_saved")
         (istr fl "chain_bytes")
         (match J.member "ok" fl with
          | Some (J.Bool b) -> string_of_bool b
          | _ -> "?"));
    (match J.member "cumulative" doc with
     | None | Some J.Null -> ()
     | Some cu ->
       Printf.printf "cumulative updates:   atomic replace vs stacked chain (ok=%s)\n"
         (match J.member "ok" cu with
          | Some (J.Bool b) -> string_of_bool b
          | _ -> "?");
       (match field cu "rows" J.to_list with
        | None | Some [] -> ()
        | Some rows ->
          List.iter
            (fun r ->
              let fstr k =
                match field r k J.to_float with
                | Some f -> Printf.sprintf "%.3f" f
                | None -> "?"
              in
              Printf.printf
                "  depth %3s: stacked %s s, collapse %s s; wire %s -> %s \
                 bytes (%s saved), footprints identical=%s\n"
                (istr r "depth") (fstr "stacked_apply_s") (fstr "collapse_s")
                (istr r "chain_bytes") (istr r "cumulative_bytes")
                (istr r "bytes_saved")
                (match J.member "footprints_identical" r with
                 | Some (J.Bool b) -> string_of_bool b
                 | _ -> "?"))
            rows));
    Ok ()

let cmd_fault_sweep cve_ids seed jobs =
  (* every cell intentionally aborts an apply; the per-abort warnings are
     noise here (use -v to see them) *)
  if Logs.level () = Some Logs.Warning then Logs.set_level (Some Logs.Error);
  let cves =
    match cve_ids with
    | [] -> Corpus.Cve.all
    | ids ->
      List.map
        (fun id ->
          match Corpus.Cve.find id with
          | Some c -> c
          | None ->
            Printf.eprintf "error: unknown CVE %s (try list-cves)\n" id;
            exit 1)
        ids
  in
  Printf.printf
    "injecting the canonical fault at each apply step for %d CVE(s), \
     seed %d...\n%!"
    (List.length cves) seed;
  let report =
    Corpus.Sweep.run ~seed ~cves ?domains:jobs
      ~progress:(fun line -> Printf.printf "  %s\n%!" line)
      ()
  in
  print_newline ();
  Format.printf "%a@." Corpus.Sweep.pp_matrix report;
  if not (Corpus.Sweep.ok report) then exit 1

let cmd_crash_sweep cve_ids seed jobs =
  let cves =
    match cve_ids with
    | [] -> Corpus.Sweep.crash_sample ()
    | ids ->
      List.map
        (fun id ->
          match Corpus.Cve.find id with
          | Some c -> c
          | None ->
            Printf.eprintf "error: unknown CVE %s (try list-cves)\n" id;
            exit 1)
        ids
  in
  Printf.printf
    "crashing a publish at every mutating I/O op for %d CVE(s), seed %d...\n%!"
    (List.length cves) seed;
  let report =
    Corpus.Sweep.run_crash ~seed ~cves ?domains:jobs
      ~progress:(fun line -> Printf.printf "  %s\n%!" line)
      ()
  in
  print_newline ();
  Format.printf "%a@." Corpus.Sweep.pp_crash report;
  if not (Corpus.Sweep.crash_ok report) then exit 1

let cmd_transition_sweep cve_ids jobs =
  let cves =
    match cve_ids with
    | [] -> Corpus.Sweep.transition_sample ()
    | ids ->
      List.map
        (fun id ->
          match Corpus.Cve.find id with
          | Some c -> c
          | None ->
            Printf.eprintf "error: unknown CVE %s (try list-cves)\n" id;
            exit 1)
        ids
  in
  Printf.printf
    "applying %d CVE(s) mid-flight through the per-thread engagement, \
     against a stop_machine twin...\n%!"
    (List.length cves);
  let report =
    Corpus.Sweep.run_transition ~cves ?domains:jobs
      ~progress:(fun line -> Printf.printf "  %s\n%!" line)
      ()
  in
  print_newline ();
  Format.printf "%a@." Corpus.Sweep.pp_transition report;
  if not (Corpus.Sweep.transition_ok report) then exit 1

(* --- the supervised sweep: manager-run / manager-report --- *)

let resolve_cves = function
  | [] -> Corpus.Cve.all
  | ids ->
    List.map
      (fun id ->
        match Corpus.Cve.find id with
        | Some c -> c
        | None ->
          Printf.eprintf "error: unknown CVE %s (try list-cves)\n" id;
          exit 1)
      ids

let resolve_scenarios = function
  | [] -> Corpus.Sweep.all_scenarios
  | names ->
    List.map
      (fun n ->
        match
          List.find_opt
            (fun s -> String.equal (Corpus.Sweep.scenario_name s) n)
            Corpus.Sweep.all_scenarios
        with
        | Some s -> s
        | None ->
          Printf.eprintf
            "error: unknown scenario %s (injected, adversarial, unhealthy)\n"
            n;
          exit 1)
      names

let manager_sweep_json ~seed (r : Corpus.Sweep.mreport) =
  let module J = Report.Json in
  let num n = J.Num (float_of_int n) in
  J.Obj
    [
      ("schema", J.Str "ksplice-manager-sweep/1");
      ("seed", num seed);
      ("cells", num r.m_cells_total);
      ("healthy", num r.m_healthy);
      ("parked", num r.m_parked);
      ("quarantined", num r.m_quarantined);
      ("violations", num r.m_violations);
      ("failures", num r.m_failures);
      ( "rows",
        J.Arr
          (List.map
             (fun (row : Corpus.Sweep.mrow) ->
               J.Obj
                 [
                   ("cve", J.Str row.m_cve);
                   ( "cells",
                     J.Arr
                       (List.map
                          (fun (sc, (c : Corpus.Sweep.mcell)) ->
                            J.Obj
                              [
                                ( "scenario",
                                  J.Str (Corpus.Sweep.scenario_name sc) );
                                ( "status",
                                  J.Str (Manager.status_name c.mc_status) );
                                ("attempts", num c.mc_attempts);
                                ("clock", num c.mc_clock);
                                ("events", num c.mc_events);
                                ("violations", num c.mc_violations);
                                ( "notes",
                                  J.Arr
                                    (List.map (fun n -> J.Str n) c.mc_notes)
                                );
                                ("manager", c.mc_report);
                              ])
                          row.m_cells) );
                 ])
             r.m_rows) );
    ]

let cmd_manager_run cve_ids scenario_names seed jobs out =
  if Logs.level () = Some Logs.Warning then Logs.set_level (Some Logs.Error);
  let cves = resolve_cves cve_ids in
  let scenarios = resolve_scenarios scenario_names in
  Printf.printf
    "supervising %d CVE(s) x {%s}, seed %d...\n%!" (List.length cves)
    (String.concat ", " (List.map Corpus.Sweep.scenario_name scenarios))
    seed;
  let report =
    Corpus.Sweep.run_manager ~seed ~cves ~scenarios ?domains:jobs
      ~progress:(fun line -> Printf.printf "  %s\n%!" line)
      ()
  in
  print_newline ();
  Format.printf "%a@." Corpus.Sweep.pp_manager report;
  (match out with
   | None -> ()
   | Some path -> (
     match Report.Json.to_file path (manager_sweep_json ~seed report) with
     | Ok () -> Printf.printf "event log written to %s\n" path
     | Error m ->
       Printf.eprintf "error: cannot write %s: %s\n" path m;
       exit 1));
  if not (Corpus.Sweep.manager_ok report) then exit 1

let cmd_manager_report path =
  let module J = Report.Json in
  let doc =
    load_json_or_die ~producer:"ksplice-tool manager-run --out" path
  in
  let field obj k conv = Option.bind (J.member k obj) conv in
  (match field doc "schema" J.to_str with
   | Some "ksplice-manager-sweep/1" -> ()
   | Some other ->
     Printf.eprintf "error: %s: unexpected schema %s\n" path other;
     exit 1
   | None ->
     Printf.eprintf "error: %s: not a manager sweep report (no schema)\n"
       path;
     exit 1);
  let istr k =
    match field doc k J.to_int with Some n -> string_of_int n | None -> "?"
  in
  Printf.printf
    "manager sweep (seed %s): %s cells — %s healthy, %s parked, %s \
     quarantined; %s audit violations, %s contract failures\n"
    (istr "seed") (istr "cells") (istr "healthy") (istr "parked")
    (istr "quarantined") (istr "violations") (istr "failures");
  (match field doc "rows" J.to_list with
   | None ->
     Printf.eprintf "error: %s: no rows\n" path;
     exit 1
   | Some rows ->
     List.iter
       (fun row ->
         let cve =
           Option.value ~default:"?" (field row "cve" J.to_str)
         in
         let cells = Option.value ~default:[] (field row "cells" J.to_list) in
         Printf.printf "  %-16s %s\n" cve
           (String.concat "  "
              (List.map
                 (fun c ->
                   Printf.sprintf "%s:%s a=%s"
                     (Option.value ~default:"?"
                        (field c "scenario" J.to_str))
                     (Option.value ~default:"?" (field c "status" J.to_str))
                     (match field c "attempts" J.to_int with
                      | Some n -> string_of_int n
                      | None -> "?"))
                 cells));
         List.iter
           (fun c ->
             match field c "notes" J.to_list with
             | Some (_ :: _ as notes) ->
               List.iter
                 (fun n ->
                   match J.to_str n with
                   | Some s -> Printf.printf "    FAILURE: %s\n" s
                   | None -> ())
                 notes
             | _ -> ())
           cells)
       rows);
  match (field doc "violations" J.to_int, field doc "failures" J.to_int) with
  | Some 0, Some 0 -> ()
  | _ -> exit 1

(* --- structured tracing: trace / metrics --- *)

(* Boot a kernel, create the update for one CVE, and apply it with
   tracing live (the caller has enabled the collector). With [sabotage],
   one byte of a replaced function's running code is corrupted first, so
   run-pre matching must reject the candidate — the exported trace then
   demonstrates the §4 diagnostic: which candidate was rejected and the
   byte offset of first divergence. *)
let traced_cve_run ~sabotage cve_id =
  match Corpus.Cve.find cve_id with
  | None ->
    Printf.eprintf "error: unknown CVE %s (try list-cves)\n" cve_id;
    exit 1
  | Some cve -> (
    let b = Corpus.Boot.boot () in
    Trace.set_clock (fun () ->
        Kernel.Machine.instructions_retired b.machine);
    let base = Corpus.Base_kernel.tree () in
    let patch = Corpus.Cve.hot_patch cve base in
    match
      Create.create
        { source = base; patch; update_id = cve.id; description = cve.desc }
    with
    | Error e ->
      Format.eprintf "error: create failed: %a@." Create.pp_error e;
      exit 1
    | Ok { update; _ } ->
      if sabotage then begin
        match update.Update.replaced_functions with
        | [] ->
          Printf.eprintf "error: %s replaces no functions\n" cve.id;
          exit 1
        | (_, cfn) :: _ -> (
          let raw, _ = Update.split_canonical cfn in
          match
            Kernel.Machine.lookup_name b.machine raw
            |> List.find_opt (fun (s : Klink.Image.syminfo) ->
                 s.kind = `Func)
          with
          | None ->
            Printf.eprintf "error: %s not in kallsyms\n" raw;
            exit 1
          | Some s ->
            let byte = Kernel.Machine.read_u8 b.machine s.addr in
            Kernel.Machine.write_bytes b.machine s.addr
              (Bytes.make 1 (Char.chr (byte lxor 0x01))))
      end;
      let ap = Apply.init b.machine in
      (match (Apply.apply ap update, sabotage) with
       | Ok a, false ->
         Printf.printf "applied %s: %d trampoline(s), pause %.3f ms\n"
           cve.id
           (List.length a.saved)
           (float_of_int a.pause_ns /. 1e6)
       | Error (Apply.Code_mismatch m), true ->
         Printf.printf
           "run-pre rejected %s %s at pre+%#x / run %#x: %s\n" m.unit_name
           m.section m.pre_off m.run_addr m.reason
       | Ok _, true ->
         Printf.eprintf
           "error: sabotage did not provoke a run-pre mismatch\n";
         exit 1
       | Error e, _ ->
         Format.eprintf "error: apply failed: %a@." Apply.pp_error e;
         exit 1))

let validate_roundtrip ~what doc =
  let module J = Report.Json in
  let text = J.to_string doc in
  (match J.parse text with
   | Error m ->
     Printf.eprintf "error: exported %s does not parse: %s\n" what m;
     exit 1
   | Ok v ->
     if not (String.equal (J.to_string v) text) then begin
       Printf.eprintf "error: exported %s does not round-trip\n" what;
       exit 1
     end);
  Printf.printf "%s: %d bytes, parses and round-trips\n" what
    (String.length text)

let write_json_or_die ~what out doc =
  match out with
  | None -> print_string (Report.Json.to_string doc)
  | Some path -> (
    match Report.Json.to_file path doc with
    | Ok () -> Printf.printf "%s written to %s\n" what path
    | Error m ->
      Printf.eprintf "error: cannot write %s: %s\n" path m;
      exit 1)

let cmd_trace cve_id sabotage capacity out check =
  Trace.reset ();
  Trace.set_capacity capacity;
  Trace.set_enabled true;
  traced_cve_run ~sabotage cve_id;
  Trace.set_enabled false;
  let doc = Trace.export () in
  Printf.printf "trace: %d record(s), %d dropped\n"
    (List.length (Trace.records ()))
    (Trace.dropped ());
  write_json_or_die ~what:"trace" out doc;
  if check then begin
    validate_roundtrip ~what:"trace export" doc;
    validate_roundtrip ~what:"metrics export" (Trace.metrics ())
  end

let cmd_metrics cve_id sabotage out =
  Trace.reset ();
  Trace.set_enabled true;
  traced_cve_run ~sabotage cve_id;
  Trace.set_enabled false;
  let module J = Report.Json in
  let num n = J.Num (float_of_int n) in
  (* fold the pre-existing process-wide counters into the document so
     one place answers "what did this run cost" *)
  let cs : Kbuild.cache_stats = Kbuild.cache_stats () in
  let is : Kernel.Machine.index_stats =
    Kernel.Machine.kallsyms_index_stats ()
  in
  let extra =
    [
      ( "kbuild_cache",
        J.Obj
          [
            ("hits", num cs.hits);
            ("misses", num cs.misses);
            ("evictions", num cs.evictions);
            ("entries", num cs.entries);
            ("capacity", num cs.capacity);
          ] );
      ( "kallsyms_index",
        J.Obj [ ("lookups", num is.lookups); ("hits", num is.hits) ] );
    ]
  in
  let doc =
    match Trace.metrics () with
    | J.Obj fields -> J.Obj (fields @ extra)
    | other -> other
  in
  write_json_or_die ~what:"metrics" out doc

let cmd_store_stats cve_id out =
  match Corpus.Cve.find cve_id with
  | None ->
    Printf.eprintf "error: unknown CVE %s (try list-cves)\n" cve_id;
    exit 1
  | Some cve ->
    let base = Corpus.Base_kernel.tree () in
    let store = Store.create ~name:"cli" ~capacity:8192 () in
    let req =
      { Ksplice.Create.source = base; patch = Corpus.Cve.hot_patch cve base;
        update_id = cve.id; description = cve.desc }
    in
    Kbuild.reset_cache ();
    Ksplice.Create.reset_creation_stats ();
    let create () =
      match Ksplice.Create.create ~store req with
      | Ok c -> c
      | Error e ->
        Format.eprintf "error: create %s: %a@." cve.id
          Ksplice.Create.pp_error e;
        exit 1
    in
    (* cold then warm, so the export shows both sides of the cache *)
    ignore (create ());
    ignore (create ());
    let module J = Report.Json in
    let num n = J.Num (float_of_int n) in
    let store_obj name (s : Store.stats) =
      ( name,
        J.Obj
          [
            ("hits", num s.hits);
            ("misses", num s.misses);
            ("evictions", num s.evictions);
            ("entries", num s.entries);
            ("capacity", num s.capacity);
            ("puts", num s.puts);
            ("dedup_hits", num s.dedup_hits);
            ("bytes_put", num s.bytes_put);
            ("bytes_deduped", num s.bytes_deduped);
            ("disk_reads", num s.disk_reads);
            ("disk_writes", num s.disk_writes);
            ("corrupt", num s.corrupt);
            ("gc_runs", num s.gc_runs);
            ("gc_collected", num s.gc_collected);
            ("gc_reclaimed_bytes", num s.gc_reclaimed_bytes);
          ] )
    in
    let doc =
      J.Obj
        [
          ("schema", J.Str "ksplice-store/1");
          ("cve", J.Str cve.id);
          store_obj "create_store" (Store.stats store);
          store_obj "kbuild_store" (Store.stats (Kbuild.store ()));
          ("skipped_units", num (Ksplice.Create.skipped_units ()));
          ("fingerprint", J.Str (Store.fingerprint store));
        ]
    in
    write_json_or_die ~what:"store-stats" out doc

(* --- fsck / gc: on-disk repository maintenance --- *)

module Repo = Ksplice.Repository

let cmd_fsck dir =
  (* read-only: open without recovery so damage is reported, not repaired *)
  match Repo.open_dir ~recover:false dir with
  | Error e ->
    Format.eprintf "error: cannot open %s: %a@." dir Repo.pp_error e;
    exit 2
  | Ok repo -> (
    match Repo.fsck repo with
    | Ok r ->
      Printf.printf
        "%s: clean — %d blob(s), %d ref(s), %d chain entr%s\n" dir
        r.store_report.f_blobs r.store_report.f_refs r.entries_checked
        (if r.entries_checked = 1 then "y" else "ies")
    | Error r ->
      Printf.printf "%s: DAMAGED — %d blob(s), %d ref(s) scanned\n" dir
        r.store_report.f_blobs r.store_report.f_refs;
      List.iter
        (fun issue -> Format.printf "  %a@." Store.pp_fsck_issue issue)
        r.store_report.f_issues;
      List.iter
        (fun (name, reason) ->
          Printf.printf "  corrupt chain entry %s: %s\n" name reason)
        r.corrupt_entries;
      exit 1)

let cmd_gc dir =
  match Repo.open_dir dir with
  | Error e ->
    Format.eprintf "error: cannot open %s: %a@." dir Repo.pp_error e;
    exit 2
  | Ok repo ->
    (match Repo.recovery repo with
     | None | Some { Store.rolled_forward = 0; rolled_back = 0;
                     torn_discarded = 0; tmp_removed = 0 } -> ()
     | Some r ->
       Printf.printf
         "recovery: %d rolled forward, %d rolled back, %d torn record(s) \
          discarded, %d temp file(s) removed\n"
         r.rolled_forward r.rolled_back r.torn_discarded r.tmp_removed);
    (match Repo.gc repo with
     | Error e ->
       Format.eprintf "error: %a@." Repo.pp_error e;
       exit 1
     | Ok g ->
       Printf.printf
         "%s: %d live blob(s) kept (%d pinned), %d swept, %d byte(s) \
          reclaimed\n"
         dir g.gc_live g.gc_pinned g.gc_swept g.gc_bytes)

(* --- fleet: serve / sync / fleet-sweep --- *)

let cmd_serve dir socket max_sessions =
  match Repo.open_dir dir with
  | Error e ->
    Format.eprintf "error: cannot open %s: %a@." dir Repo.pp_error e;
    exit 2
  | Ok repo -> (
    Printf.printf "serving %s on %s%s\n%!" dir socket
      (match max_sessions with
      | None -> ""
      | Some n -> Printf.sprintf " (up to %d session(s))" n);
    match Fleet.Server.listen ~socket_path:socket ?max_sessions repo with
    | Ok n -> Printf.printf "served %d session(s)\n" n
    | Error m ->
      Printf.eprintf "error: %s\n" m;
      exit 1)

let cmd_sync socket dir base =
  let store = Store.create ~name:"mirror" ~dir () in
  let connect _attempt =
    match Fleet.Transport.connect_unix socket with
    | tr -> Some tr
    | exception Unix.Unix_error _ -> None
  in
  let r =
    Fleet.Subscriber.sync
      ~sleep:(fun ticks -> Unix.sleepf (float_of_int ticks /. 1000.0))
      ~id:(Filename.basename dir) ~store ~base ~connect ()
  in
  List.iter (fun line -> Printf.printf "  %s\n" line) r.Fleet.Subscriber.r_log;
  Printf.printf
    "%s: %d entr%s committed, %d blob(s) / %d byte(s) fetched, %d byte(s) \
     already local\n"
    dir r.r_committed
    (if r.r_committed = 1 then "y" else "ies")
    r.r_blobs_fetched r.r_bytes_fetched r.r_bytes_saved;
  if r.r_synced then
    Printf.printf "synced to chain head %s in %d attempt(s)\n" r.r_head
      r.r_attempts
  else begin
    Printf.printf
      "server unreachable after %d attempt(s); still serving head %s\n"
      r.r_attempts r.r_head;
    exit 1
  end

let cmd_fleet_sweep cve_ids seed jobs =
  let cves =
    match cve_ids with
    | [] -> Corpus.Sweep.fleet_sample ()
    | ids ->
      List.map
        (fun id ->
          match Corpus.Cve.find id with
          | Some c -> c
          | None ->
            Printf.eprintf "error: unknown CVE %s (try list-cves)\n" id;
            exit 1)
        ids
  in
  Printf.printf
    "injecting every transport fault at every wire frame of a chain sync \
     for %d CVE(s), seed %d...\n%!"
    (List.length cves) seed;
  let report =
    Corpus.Sweep.run_fleet ~seed ~cves ?domains:jobs
      ~progress:(fun line -> Printf.printf "  %s\n%!" line)
      ()
  in
  print_newline ();
  Format.printf "%a@." Corpus.Sweep.pp_fleet report;
  if not (Corpus.Sweep.fleet_ok report) then exit 1

(* --- cumulative updates: collapse / cumulative-sweep --- *)

let cmd_collapse dir source id desc =
  match Repo.open_dir dir with
  | Error e ->
    Format.eprintf "error: cannot open %s: %a@." dir Repo.pp_error e;
    exit 2
  | Ok repo -> (
    let tree = read_tree source in
    match
      Repo.publish_cumulative repo ~source:tree ~update_id:id
        ~description:(if desc = "" then "cumulative replacement" else desc)
    with
    | Error e ->
      Format.eprintf "error: %a@." Repo.pp_error e;
      exit 1
    | Ok entry ->
      let u = entry.Repo.update in
      Printf.printf
        "published cumulative update %s: %s -> %s\n" u.Update.update_id
        (String.sub entry.base_digest 0 12)
        (String.sub entry.next_digest 0 12);
      Printf.printf "supersedes (%d, oldest first):\n"
        (List.length u.supersedes);
      List.iter (fun s -> Printf.printf "  %s\n" s) u.supersedes;
      Printf.printf
        "the per-update chain stays published for mid-chain subscribers\n")

let cmd_cumulative_sweep depths seed jobs =
  (* every fault cell intentionally aborts a collapse; the per-abort
     warnings are noise here (use -v to see them) *)
  if Logs.level () = Some Logs.Warning then Logs.set_level (Some Logs.Error);
  let depths =
    match depths with [] -> Corpus.Sweep.cumulative_depths | ds -> ds
  in
  Printf.printf
    "collapsing corpus chains at depth(s) %s with a fault at every apply \
     step, seed %d...\n%!"
    (String.concat ", " (List.map string_of_int depths))
    seed;
  let report =
    Corpus.Sweep.run_cumulative ~seed ~depths ?domains:jobs
      ~progress:(fun line -> Printf.printf "  %s\n%!" line)
      ()
  in
  print_newline ();
  Format.printf "%a@." Corpus.Sweep.pp_cumulative report;
  if not (Corpus.Sweep.cumulative_ok report) then exit 1

let cmd_diffmin_sweep cve_ids jobs =
  let cves =
    match cve_ids with
    | [] -> Corpus.Sweep.diffmin_cves ()
    | ids ->
      List.map
        (fun id ->
          match Corpus.Cve.find id with
          | Some c -> c
          | None ->
            Printf.eprintf "error: unknown CVE %s\n" id;
            exit 2)
        ids
  in
  Printf.printf
    "differencing %d corpus row(s), minimal vs whole-unit...\n%!"
    (List.length cves);
  let report =
    Corpus.Sweep.run_diffmin ~cves ?domains:jobs
      ~progress:(fun line -> Printf.printf "  %s\n%!" line)
      ()
  in
  print_newline ();
  Format.printf "%a@." Corpus.Sweep.pp_diffmin report;
  if not (Corpus.Sweep.diffmin_ok report) then exit 1

(* --- cmdliner wiring --- *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let create_cmd =
  let source =
    Arg.(
      required
      & opt (some dir) None
      & info [ "source" ] ~docv:"DIR" ~doc:"Source of the running kernel.")
  in
  let patch =
    Arg.(
      required
      & opt (some file) None
      & info [ "patch" ] ~docv:"FILE" ~doc:"Unified diff to convert.")
  in
  let output =
    Arg.(
      value & opt string "update.ksplice"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output update file.")
  in
  let id =
    Arg.(
      value & opt string "update"
      & info [ "id" ] ~docv:"ID" ~doc:"Update identifier.")
  in
  let desc =
    Arg.(
      value & opt string "" & info [ "m" ] ~docv:"TEXT" ~doc:"Description.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print, per patched unit, why every shipped symbol is in the \
             update (changed, new, dependency closure, or referenced \
             changed data).")
  in
  Cmd.v
    (Cmd.info "create" ~doc:"Construct a hot update from source and a patch")
    Term.(
      const (fun v a b c d e f -> setup_logs v; cmd_create a b c d e f)
      $ verbose_t $ source $ patch $ output $ id $ desc $ explain)

let inspect_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"UPDATE" ~doc:"Update file.")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Show the contents of an update file")
    Term.(const cmd_inspect $ path)

let objdump_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"SELF object file or Ksplice update file.")
  in
  Cmd.v
    (Cmd.info "objdump" ~doc:"Disassemble an object file or update")
    Term.(const cmd_objdump $ path)

let export_cmd =
  let dir =
    Arg.(
      value & opt string "ksplice-workspace"
      & info [ "dir" ] ~docv:"DIR" ~doc:"Destination directory.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Write the evaluation kernel source and all CVE patches to disk")
    Term.(const cmd_export $ dir)

let list_cves_cmd =
  Cmd.v
    (Cmd.info "list-cves" ~doc:"List the evaluation CVE corpus")
    Term.(const cmd_list_cves $ const ())

let demo_cmd =
  let cve =
    Arg.(
      value & opt string "CVE-2006-2451"
      & info [ "cve" ] ~docv:"ID" ~doc:"Corpus CVE to demonstrate.")
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:"Boot the evaluation kernel and hot-patch one CVE end to end")
    Term.(
      const (fun v c -> setup_logs v; cmd_demo c) $ verbose_t $ cve)

let fault_sweep_cmd =
  let cves =
    Arg.(
      value & opt_all string []
      & info [ "cve" ] ~docv:"ID"
          ~doc:"Sweep only this CVE (repeatable; default: all 64).")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"Fault-plan seed.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:
            "Sweep up to $(docv) CVEs concurrently (default: one per core; \
             1 forces a serial sweep).")
  in
  Cmd.v
    (Cmd.info "fault-sweep"
       ~doc:
         "Inject a fault at every apply-pipeline step for each corpus CVE \
          and verify crash-consistent rollback, then clean re-apply")
    Term.(
      const (fun v c s j -> setup_logs v; cmd_fault_sweep c s j)
      $ verbose_t $ cves $ seed $ jobs)

let manager_run_cmd =
  let cves =
    Arg.(
      value & opt_all string []
      & info [ "cve" ] ~docv:"ID"
          ~doc:"Supervise only this CVE (repeatable; default: all 64).")
  in
  let scenarios =
    Arg.(
      value & opt_all string []
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            "Run only this scenario: $(b,injected) (a fault on the first \
             attempt), $(b,adversarial) (a thread squatting in a patched \
             function), or $(b,unhealthy) (a failing health probe). \
             Repeatable; default: all three.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:"Sweep seed (fault plans, retry jitter).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:
            "Sweep up to $(docv) CVEs concurrently (default: one per core; \
             1 forces a serial sweep).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the structured event log (JSON) to $(docv).")
  in
  Cmd.v
    (Cmd.info "manager-run"
       ~doc:
         "Push corpus CVEs through the supervised update manager \
          (watchdog deadlines, retry queue, health-gated auto-revert) \
          under fault injection and adversarial scheduling, asserting \
          liveness and byte-identical rollbacks")
    Term.(
      const (fun v c sc s j o -> setup_logs v; cmd_manager_run c sc s j o)
      $ verbose_t $ cves $ scenarios $ seed $ jobs $ out)

let manager_report_cmd =
  let path =
    Arg.(
      value & pos 0 string "MANAGER.json"
      & info [] ~docv:"FILE"
          ~doc:"Event log written by manager-run --out.")
  in
  Cmd.v
    (Cmd.info "manager-report"
       ~doc:"Summarize a manager-run event log; nonzero exit on recorded \
             violations or contract failures")
    Term.(const cmd_manager_report $ path)

let trace_cve_t =
  Arg.(
    value & opt string "CVE-2006-2451"
    & info [ "cve" ] ~docv:"ID"
        ~doc:"CVE to create and apply under tracing (default: the prctl \
              patch).")

let trace_sabotage_t =
  Arg.(
    value & flag
    & info [ "sabotage" ]
        ~doc:
          "Corrupt one byte of the replaced function's running code \
           first, so the trace records a run-pre rejection with the byte \
           offset of first divergence (the \u{00a7}4 diagnostic).")

let trace_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Write the JSON document to $(docv) (default: stdout).")

let trace_cmd =
  let capacity =
    Arg.(
      value & opt int 16384
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Trace ring-buffer capacity in records (drop-oldest).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate that the exported trace and metrics JSON parse and \
             round-trip byte-identically; exit nonzero otherwise.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Apply one corpus CVE with structured tracing enabled and export \
          the span/event trace (ksplice-trace/1 JSON), clocked by retired \
          instructions for bit-identical replay")
    Term.(
      const (fun v c s cap o ck -> setup_logs v; cmd_trace c s cap o ck)
      $ verbose_t $ trace_cve_t $ trace_sabotage_t $ capacity $ trace_out_t
      $ check)

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Apply one corpus CVE with tracing enabled and export counters \
          and histograms (ksplice-metrics/1 JSON), including compile-cache \
          and kallsyms-index hit rates")
    Term.(
      const (fun v c s o -> setup_logs v; cmd_metrics c s o)
      $ verbose_t $ trace_cve_t $ trace_sabotage_t $ trace_out_t)

let store_stats_cmd =
  Cmd.v
    (Cmd.info "store-stats"
       ~doc:
         "Create one corpus CVE twice (cold, then warm) through a fresh \
          artifact store and export the store's hit/dedup counters and \
          the incremental-creation skip count (ksplice-store/1 JSON)")
    Term.(
      const (fun v c o -> setup_logs v; cmd_store_stats c o)
      $ verbose_t $ trace_cve_t $ trace_out_t)

let crash_sweep_cmd =
  let cves =
    Arg.(
      value & opt_all string []
      & info [ "cve" ] ~docv:"ID"
          ~doc:
            "Sweep only this CVE (repeatable; default: every 8th corpus \
             CVE).")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"Torn-write seed.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:
            "Sweep up to $(docv) CVEs concurrently (default: one per core; \
             1 forces a serial sweep).")
  in
  Cmd.v
    (Cmd.info "crash-sweep"
       ~doc:
         "Publish each sampled CVE into an on-disk repository with a hard \
          crash injected at every mutating I/O operation, then reopen and \
          verify fsck-clean all-or-nothing recovery and a safe garbage \
          collection")
    Term.(
      const (fun v c s j -> setup_logs v; cmd_crash_sweep c s j)
      $ verbose_t $ cves $ seed $ jobs)

let transition_sweep_cmd =
  let cves =
    Arg.(
      value & opt_all string []
      & info [ "cve" ] ~docv:"ID"
          ~doc:
            "Sweep only this CVE (repeatable; default: every 8th corpus \
             CVE).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:
            "Sweep up to $(docv) CVEs concurrently (default: one per core; \
             1 forces a serial sweep).")
  in
  Cmd.v
    (Cmd.info "transition-sweep"
       ~doc:
         "Apply each sampled CVE while a multi-threaded workload is \
          running, through the per-thread consistency model, and hold it \
          to the stop_machine baseline: zero pause, byte-identical \
          footprints, a converging reverse transition, and a bounded \
          fallback for forced stragglers")
    Term.(
      const (fun v c j -> setup_logs v; cmd_transition_sweep c j)
      $ verbose_t $ cves $ jobs)

let repo_dir_t =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"On-disk repository directory.")

let fsck_cmd =
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Check an on-disk repository read-only (blob digests, ref \
          targets, chain entries, pending journal); nonzero exit on \
          damage")
    Term.(const cmd_fsck $ repo_dir_t)

let gc_cmd =
  Cmd.v
    (Cmd.info "gc"
       ~doc:
         "Recover an on-disk repository if needed, then sweep every blob \
          unreachable from its refs and chain entries")
    Term.(const cmd_gc $ repo_dir_t)

let serve_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Repository directory to serve.")
  in
  let socket =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"SOCKET" ~doc:"Unix-domain socket path to listen on.")
  in
  let sessions =
    Arg.(
      value
      & opt (some int) None
      & info [ "sessions" ] ~docv:"N"
          ~doc:"Serve $(docv) subscriber session(s), then exit (default: \
                run forever).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a repository's update chains to subscribers over a \
          Unix-domain socket (the uptrack-style distribution daemon)")
    Term.(
      const (fun v d s n -> setup_logs v; cmd_serve d s n)
      $ verbose_t $ dir $ socket $ sessions)

let sync_cmd =
  let socket =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOCKET" ~doc:"Server's Unix-domain socket path.")
  in
  let dir =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DIR" ~doc:"Local mirror directory (created if absent).")
  in
  let base =
    Arg.(
      required
      & opt (some string) None
      & info [ "base" ] ~docv:"DIGEST"
          ~doc:"Source-tree digest this subscriber's kernel runs.")
  in
  Cmd.v
    (Cmd.info "sync"
       ~doc:
         "Mirror a served update chain into a local store: delta sync \
          (only missing blobs cross the wire), resumable after any \
          interruption, degrading to the old chain head when the server \
          is unreachable")
    Term.(
      const (fun v s d b -> setup_logs v; cmd_sync s d b)
      $ verbose_t $ socket $ dir $ base)

let fleet_sweep_cmd =
  let cves =
    Arg.(
      value & opt_all string []
      & info [ "cve" ] ~docv:"ID"
          ~doc:
            "Sweep only this CVE (repeatable; default: every 8th corpus \
             CVE).")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"Fault-plan and jitter seed.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:
            "Sweep up to $(docv) CVEs concurrently (default: one per core; \
             1 forces a serial sweep).")
  in
  Cmd.v
    (Cmd.info "fleet-sweep"
       ~doc:
         "Sync a published chain through the simulated wire transport with \
          every fault kind (disconnect, torn frame, corruption, stall, \
          duplication) injected at every frame, and verify the subscriber \
          converges byte-identically with a fsck-clean mirror and zero \
          redundant transfers")
    Term.(
      const (fun v c s j -> setup_logs v; cmd_fleet_sweep c s j)
      $ verbose_t $ cves $ seed $ jobs)

let collapse_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"On-disk repository directory.")
  in
  let source =
    Arg.(
      required
      & opt (some Arg.dir) None
      & info [ "source" ] ~docv:"SRCDIR"
          ~doc:
            "Source of the oldest kernel still in the fleet — the tree the \
             pending chain starts from.")
  in
  let id =
    Arg.(
      value & opt string "cumulative"
      & info [ "id" ] ~docv:"ID" ~doc:"Update identifier for the collapse.")
  in
  let desc =
    Arg.(
      value & opt string "" & info [ "m" ] ~docv:"TEXT" ~doc:"Description.")
  in
  Cmd.v
    (Cmd.info "collapse"
       ~doc:
         "Collapse a repository's pending chain into one cumulative update \
          (atomic replace): subscribers land the whole backlog in a single \
          transaction that supersedes their applied stack, while the \
          per-update chain stays published for mid-chain mirrors")
    Term.(
      const (fun v d s i m -> setup_logs v; cmd_collapse d s i m)
      $ verbose_t $ dir $ source $ id $ desc)

let cumulative_sweep_cmd =
  let depths =
    Arg.(
      value & opt_all int []
      & info [ "depth" ] ~docv:"N"
          ~doc:
            "Collapse a chain of $(docv) corpus CVEs (repeatable; default: \
             1, 8 and 32).")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"Fault-plan seed.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:
            "Sweep up to $(docv) rows concurrently (default: one per core; \
             1 forces a serial sweep).")
  in
  Cmd.v
    (Cmd.info "cumulative-sweep"
       ~doc:
         "Publish corpus CVE chains at several depths, collapse each into \
          a cumulative update, and verify atomic replace end to end: \
          footprints byte-identical to the undo-then-apply twin, every \
          injected fault rolling back the whole collapse, undo re-stacking \
          the chain, and the shadow-variable extras (\u{00a7}5.3) \
          round-tripping patch, exploit and un-collapse")
    Term.(
      const (fun v d s j -> setup_logs v; cmd_cumulative_sweep d s j)
      $ verbose_t $ depths $ seed $ jobs)

let diffmin_sweep_cmd =
  let cves =
    Arg.(
      value & opt_all string []
      & info [ "cve" ] ~docv:"ID"
          ~doc:
            "Sweep only this corpus row (repeatable; default: all 64 CVEs \
             plus the shadow and differencing extras).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:
            "Sweep up to $(docv) rows concurrently (default: one per core; \
             1 forces a serial sweep).")
  in
  Cmd.v
    (Cmd.info "diffmin-sweep"
       ~doc:
         "Create every corpus update twice — function-granular minimal and \
          whole-unit baseline — and verify the minimal one is complete \
          (applies, verifies, survives stress, blocks the exploit, lands \
          a deterministic footprint, every shipped symbol explained) \
          while costing fewer update bytes and run-pre candidate trials")
    Term.(
      const (fun v c j -> setup_logs v; cmd_diffmin_sweep c j)
      $ verbose_t $ cves $ jobs)

let bench_summary_cmd =
  let path =
    Arg.(
      value & pos 0 string "BENCH.json"
      & info [] ~docv:"FILE"
          ~doc:"Perf baseline written by bench/main.exe (--out).")
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "section" ] ~docv:"NAME"
          ~doc:
            "Print just this top-level section as JSON; a missing section \
             is a clean error, not a crash.")
  in
  Cmd.v
    (Cmd.info "bench-summary"
       ~doc:"Pretty-print a BENCH.json perf baseline")
    Term.(
      const (fun p o ->
          match cmd_bench_summary p o with
          | Ok () -> ()
          | Error e ->
            Format.eprintf "error: %a@." pp_summary_error e;
            Stdlib.exit 1)
      $ path $ only)

let () =
  let doc = "Ksplice reproduction: rebootless kernel updates" in
  let info = Cmd.info "ksplice-tool" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ create_cmd; inspect_cmd; objdump_cmd; export_cmd; list_cves_cmd;
            demo_cmd; fault_sweep_cmd; crash_sweep_cmd; transition_sweep_cmd;
            fleet_sweep_cmd; cumulative_sweep_cmd; diffmin_sweep_cmd;
            collapse_cmd; serve_cmd;
            sync_cmd; fsck_cmd; gc_cmd;
            manager_run_cmd; manager_report_cmd; trace_cmd; metrics_cmd;
            store_stats_cmd; bench_summary_cmd ]))
