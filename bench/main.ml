(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) against the synthetic corpus, then runs Bechamel
   micro-benchmarks for the performance claims (§2/§5.2).

   Per-CVE corpus work (each CVE boots its own machine) fans out across
   the {!Parallel} domain pool, and every run writes a machine-readable
   perf baseline — BENCH.json: per-section wall-clock, Bechamel OLS
   estimates, compile-cache and kallsyms-index hit rates, and the
   serial-vs-parallel 64-CVE creation sweep. `--quick` runs a small
   subset (< 30 s) for CI; `ksplice-tool bench-summary` pretty-prints
   the file.

   Experiments (see DESIGN.md's index):
     F3 — Figure 3, patches by patch length
     T1 — Table 1, patches requiring custom code
     H  — headline: 56/64 with no new code, 64/64 with custom code
     S1 — §6.3 ambiguous-symbol statistics
     S2 — §6.3 inlining statistics
     X  — §6.3 exploit verification
     R  — §4.3 robustness across build modes
     CS — creation sweep: serial vs domain-parallel update creation
     ST — store sweep: cold vs warm creation through the artifact store
     CR — crash sweep: publish killed at every I/O op, recovery verified
     P  — Bechamel: apply pause, trampoline overhead, run-pre matching,
          update creation *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Image = Klink.Image
module Machine = Kernel.Machine
module Create = Ksplice.Create
module Apply = Ksplice.Apply
module Update = Ksplice.Update

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* --- perf-baseline instrumentation --- *)

let quick = ref false
let out_path = ref "BENCH.json"
let domains_flag = ref 0

(* domain budget for the parallel legs: at least 2 so the pool machinery
   is exercised even on a single-core host (where the speedup is ~1x) *)
let par_domains () =
  if !domains_flag > 0 then !domains_flag
  else max 2 (Parallel.default_domains ())

let now () = Unix.gettimeofday ()
let section_times : (string * float) list ref = ref []
let bech_estimates : (string * float) list ref = ref []

(* (cves, serial wall s, parallel wall s, identical) *)
let creation_result : (int * float * float * bool) option ref = ref None

let timed name f =
  let t0 = now () in
  let r = f () in
  section_times := (name, now () -. t0) :: !section_times;
  r

let base = Corpus.Base_kernel.tree ()

let create_cve ?(hot = true) ?domains (cve : Corpus.Cve.t) =
  let patch =
    if hot then Corpus.Cve.hot_patch cve base
    else Corpus.Cve.mainline_patch cve base
  in
  Create.create ?domains
    { source = base; patch; update_id = cve.id; description = cve.desc }

let create_cve_exn ?domains cve =
  match create_cve ?domains cve with
  | Ok c -> c
  | Error e ->
    Format.kasprintf failwith "%s: create failed: %a" cve.id Create.pp_error e

(* ---------- F3: Figure 3 ---------- *)

let figure3 () =
  section "Figure 3: number of patches by patch length (lines in patch)";
  let sizes =
    List.map
      (fun (c : Corpus.Cve.t) ->
        (Diff.stats (Corpus.Cve.mainline_patch c base)).changed)
      Corpus.Cve.all
  in
  let bucket_count lo hi =
    List.length (List.filter (fun s -> s > lo && s <= hi) sizes)
  in
  Printf.printf "%-12s %s\n" "lines" "patches";
  for b = 0 to 15 do
    let lo = b * 5 and hi = (b + 1) * 5 in
    let n = bucket_count lo hi in
    Printf.printf "%3d-%-3d      %2d %s\n" lo hi n (String.make n '#')
  done;
  let inf = List.length (List.filter (fun s -> s > 80) sizes) in
  Printf.printf "%-12s %2d %s\n" "  >80 (inf)" inf (String.make inf '#');
  let le n = List.length (List.filter (fun s -> s <= n) sizes) in
  Printf.printf
    "\nShape check vs paper: <=5 lines: %d (paper: 35); <=15 lines: %d \
     (paper: 53); total %d (paper: 64)\n"
    (le 5) (le 15) (List.length sizes)

(* ---------- T1: Table 1 ---------- *)

let paper_table1 =
  [ ("CVE-2008-0007", 34); ("CVE-2007-4571", 10); ("CVE-2007-3851", 1);
    ("CVE-2006-5753", 1); ("CVE-2006-2071", 14); ("CVE-2006-1056", 4);
    ("CVE-2005-3179", 20); ("CVE-2005-2709", 48) ]

let table1 () =
  section "Table 1: patches that cannot be applied without new code";
  Printf.printf "%-16s %-22s %10s %10s\n" "CVE ID" "reason" "new code"
    "(paper)";
  let total = ref 0 in
  List.iter
    (fun (c : Corpus.Cve.t) ->
      match c.custom with
      | None -> ()
      | Some (reason, _) ->
        let lines = Corpus.Cve.custom_code_lines c in
        total := !total + lines;
        let paper =
          match List.assoc_opt c.id paper_table1 with
          | Some n -> Printf.sprintf "%d lines" n
          | None -> "-"
        in
        Printf.printf "%-16s %-22s %6d lines %10s\n" c.id
          (Corpus.Cve.reason_to_string reason)
          lines paper)
    Corpus.Cve.all;
  let n =
    List.length
      (List.filter (fun (c : Corpus.Cve.t) -> c.custom <> None) Corpus.Cve.all)
  in
  Printf.printf "\naverage custom code: %.1f lines per patch (paper: ~17)\n"
    (float_of_int !total /. float_of_int n)

(* ---------- H: headline result ---------- *)

let headline () =
  section "Headline: applying all 64 security patches as hot updates";
  (* each CVE boots its own machine, so the per-CVE work is independent
     and fans out across the domain pool; the fold below is sequential *)
  let results =
    Parallel.map ~domains:(par_domains ())
      (fun (cve : Corpus.Cve.t) ->
        let c = create_cve_exn cve in
        let b = Corpus.Boot.boot () in
        let mgr = Apply.init b.machine in
        match Apply.apply mgr c.update with
        | Error e -> Error (Format.asprintf "%s: %a" cve.id Apply.pp_error e)
        | Ok a ->
          let stress = Corpus.Stress.run b ~threads:2 ~iterations:10 in
          if not stress.ok then
            Error (Printf.sprintf "%s: stress failed after apply" cve.id)
          else
            Ok
              ( cve.custom = None,
                a.pause_ns,
                List.fold_left
                  (fun acc (lo, hi) -> acc + hi - lo)
                  0 a.module_ranges ))
      Corpus.Cve.all
  in
  let no_code_ok = ref 0 in
  let custom_ok = ref 0 in
  let failures = ref [] in
  let pauses = ref [] in
  let module_bytes = ref [] in
  List.iter
    (function
      | Error f -> failures := f :: !failures
      | Ok (no_custom, pause, bytes) ->
        pauses := pause :: !pauses;
        module_bytes := bytes :: !module_bytes;
        if no_custom then incr no_code_ok else incr custom_ok)
    results;
  Printf.printf "applied without writing new code: %2d / 64  (paper: 56)\n"
    !no_code_ok;
  Printf.printf "applied with custom update code:  %2d      (paper:  8)\n"
    !custom_ok;
  Printf.printf "total applied:                    %2d / 64  (paper: 64)\n"
    (!no_code_ok + !custom_ok);
  (match !failures with
   | [] -> ()
   | l ->
     Printf.printf "FAILURES:\n";
     List.iter (fun f -> Printf.printf "  %s\n" f) l);
  (match !pauses with
   | [] -> ()
   | l ->
     let n = List.length l in
     let avg = List.fold_left ( + ) 0 l / n in
     Printf.printf
       "simulated stop_machine pause: avg %.3f ms (paper: ~0.7 ms)\n"
       (float_of_int avg /. 1e6));
  match !module_bytes with
  | [] -> ()
  | l ->
    let n = List.length l in
    Printf.printf
      "replacement-code memory: avg %d bytes, max %d bytes per update\n"
      (List.fold_left ( + ) 0 l / n)
      (List.fold_left max 0 l)

(* ---------- S1: ambiguous symbols ---------- *)

let symbol_stats () =
  section
    "Symbol statistics (paper 6.3: 6,164 ambiguous = 7.9%; 21.1% of units)";
  let b = Corpus.Boot.boot () in
  let total, ambiguous = Image.symbol_census b.image in
  Printf.printf "kallsyms symbols: %d; sharing a name: %d (%.1f%%)\n" total
    ambiguous
    (100.0 *. float_of_int ambiguous /. float_of_int total);
  let units =
    List.length
      (List.sort_uniq compare
         (List.map (fun (s : Image.syminfo) -> s.unit_name) b.image.kallsyms))
  in
  let amb_units = List.length (Image.units_with_ambiguous_symbol b.image) in
  Printf.printf
    "compilation units with an ambiguous symbol: %d / %d (%.1f%%)\n" amb_units
    units
    (100.0 *. float_of_int amb_units /. float_of_int units);
  (* patches whose replaced code references an ambiguous symbol *)
  let counts = Hashtbl.create 256 in
  List.iter
    (fun (s : Image.syminfo) ->
      if not (String.length s.name >= 2 && s.name.[0] = '.') then
        Hashtbl.replace counts s.name
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts s.name)))
    b.image.kallsyms;
  let is_ambiguous n =
    match Hashtbl.find_opt counts n with Some k -> k > 1 | None -> false
  in
  let cves_with_ambiguous =
    List.filter
      (fun (cve : Corpus.Cve.t) ->
        let c = create_cve_exn cve in
        List.exists
          (fun (s : Objfile.Section.t) ->
            s.kind = Objfile.Section.Text
            && List.exists
                 (fun (r : Objfile.Reloc.t) ->
                   let raw, _ = Update.split_canonical r.sym in
                   is_ambiguous raw)
                 s.relocs)
          c.update.primary.sections)
      Corpus.Cve.all
  in
  Printf.printf
    "patches touching a function that references an ambiguous symbol: %d \
     (paper: 5)\n"
    (List.length cves_with_ambiguous);
  List.iter
    (fun (c : Corpus.Cve.t) -> Printf.printf "  %s (%s)\n" c.id c.file)
    cves_with_ambiguous

(* ---------- S2: inlining ---------- *)

let inline_stats () =
  section "Inlining statistics (paper 6.3: 20/64 inlined, 4/64 explicit)";
  let run_build = Kbuild.build_tree_exn ~options:Minic.Driver.run_build base in
  let inlined = Kbuild.inlined_callees run_build in
  let inlined_in unit f =
    List.exists (fun (u, _, callee) -> u = unit && callee = f) inlined
  in
  let explicitly_inline unit f =
    match Tree.find base unit with
    | None -> false
    | Some src ->
      let probe = "inline int " ^ f ^ "(" in
      let rec search i =
        i + String.length probe <= String.length src
        && (String.sub src i (String.length probe) = probe || search (i + 1))
      in
      search 0
  in
  let count_pred pred =
    List.filter
      (fun (cve : Corpus.Cve.t) ->
        let c = create_cve_exn cve in
        List.exists
          (fun (d : Ksplice.Prepost.unit_diff) ->
            List.exists (pred d.unit_name)
              (d.changed_functions @ d.new_functions))
          c.diffs)
      Corpus.Cve.all
  in
  let with_inlined = count_pred inlined_in in
  let with_explicit = count_pred explicitly_inline in
  Printf.printf
    "patches replacing a function inlined somewhere in the run kernel: %d \
     (paper: 20)\n"
    (List.length with_inlined);
  Printf.printf
    "patches replacing an explicitly-'inline' function: %d (paper: 4)\n"
    (List.length with_explicit);
  Printf.printf "inlining decisions in the run kernel build: %d\n"
    (List.length inlined)

(* ---------- X: exploits ---------- *)

let exploits () =
  section "Exploit verification (paper 6.3: works before, fails after)";
  Printf.printf "%-16s %-34s %-8s %-8s\n" "CVE ID" "exploit" "before" "after";
  let rows =
    Parallel.map ~domains:(par_domains ())
      (fun (e : Corpus.Exploits.t) ->
        let cve = Option.get (Corpus.Cve.find e.cve_id) in
        let b1 = Corpus.Boot.boot () in
        let before = (e.run b1).succeeded in
        let b2 = Corpus.Boot.boot () in
        let c = create_cve_exn cve in
        let mgr = Apply.init b2.machine in
        (match Apply.apply mgr c.update with
         | Ok _ -> ()
         | Error err ->
           Format.kasprintf failwith "%s: apply: %a" cve.id Apply.pp_error err);
        let after = (e.run b2).succeeded in
        (e.cve_id, e.name, before, after))
      Corpus.Exploits.all
  in
  List.iter
    (fun (cve_id, name, before, after) ->
      Printf.printf "%-16s %-34s %-8s %-8s\n" cve_id name
        (if before then "works" else "FAILS")
        (if after then "WORKS" else "blocked"))
    rows

(* ---------- R: run-pre robustness across build modes ---------- *)

let runpre_robustness () =
  section "Run-pre matching across build modes (paper 4.3)";
  (* the run kernel is built without function sections (aligned loops,
     resolved intra-unit calls); every pre object is built with them; all
     64 updates must still match *)
  let results =
    Parallel.map ~domains:(par_domains ())
      (fun (cve : Corpus.Cve.t) ->
        let c = create_cve_exn cve in
        let b = Corpus.Boot.boot () in
        let mgr = Apply.init b.machine in
        match Apply.apply mgr c.update with
        | Ok _ ->
          Some
            (List.fold_left
               (fun acc (h : Objfile.t) ->
                 acc
                 + List.length
                     (List.filter
                        (fun (s : Objfile.Section.t) ->
                          s.kind = Objfile.Section.Text)
                        h.sections))
               0 c.update.helpers)
        | Error _ -> None)
      Corpus.Cve.all
  in
  let matched = List.length (List.filter Option.is_some results) in
  let total_sections =
    List.fold_left
      (fun acc -> function Some n -> acc + n | None -> acc)
      0 results
  in
  Printf.printf
    "updates whose pre code (function-sections build) matched the running \
     kernel (distro-style build): %d / 64\n"
    matched;
  Printf.printf
    "pre text sections byte-matched against run memory in total: %d\n"
    total_sections

(* ---------- consequences (§6.1) ---------- *)

let consequences () =
  section
    "Vulnerability consequences (paper 6.1: ~2/3 escalation, ~1/3 disclosure)";
  let priv, info =
    List.partition
      (fun (c : Corpus.Cve.t) -> c.consequence = Corpus.Cve.Priv_escalation)
      Corpus.Cve.all
  in
  Printf.printf "privilege escalation:   %2d / 64 (%.0f%%)
"
    (List.length priv)
    (100.0 *. float_of_int (List.length priv) /. 64.0);
  Printf.printf "information disclosure: %2d / 64 (%.0f%%)
"
    (List.length info)
    (100.0 *. float_of_int (List.length info) /. 64.0)

(* ---------- appendix: per-patch detail ---------- *)

let appendix () =
  section "Appendix: per-patch detail";
  Printf.printf "%-16s %-6s %6s %9s %7s %s
" "CVE ID" "kind" "lines"
    "replaced" "custom" "unit";
  List.iter
    (fun (cve : Corpus.Cve.t) ->
      let c = create_cve_exn cve in
      let lines =
        (Diff.stats (Corpus.Cve.mainline_patch cve base)).changed
      in
      Printf.printf "%-16s %-6s %6d %9d %7d %s
" cve.id
        (match cve.consequence with
         | Corpus.Cve.Priv_escalation -> "priv"
         | Corpus.Cve.Info_disclosure -> "info")
        lines
        (List.length c.update.replaced_functions)
        (Corpus.Cve.custom_code_lines cve)
        cve.file)
    Corpus.Cve.all

(* ---------- B: source-level baseline comparison (§6.3/§7.1) ---------- *)

let baseline () =
  section
    "Source-level baseline (OPUS/LUCOS/DynAMOS-style) vs Ksplice (6.3)";
  let b = Corpus.Boot.boot () in
  let per_cve =
    Parallel.map ~domains:(par_domains ())
      (fun (cve : Corpus.Cve.t) ->
        let patch = Corpus.Cve.hot_patch cve base in
        match
          Ksplice.Source_level.evaluate ~source:base ~patch ~image:b.image
        with
        | Error m -> failwith (cve.id ^ ": baseline evaluation failed: " ^ m)
        | Ok v -> (cve.id, v.failures))
      Corpus.Cve.all
  in
  let missed = ref 0 and inl = ref 0 and amb = ref 0 in
  let statics = ref 0 and asm = ref 0 in
  let unsafe = ref [] in
  List.iter
    (fun (id, failures) ->
      if failures <> [] then unsafe := id :: !unsafe;
      List.iter
        (function
          | Ksplice.Source_level.Missed_object_changes _ -> incr missed
          | Ksplice.Source_level.Inline_sites_missed _ -> incr inl
          | Ksplice.Source_level.Ambiguous_symbol _ -> incr amb
          | Ksplice.Source_level.Static_local_lost _ -> incr statics
          | Ksplice.Source_level.Assembly_file _ -> incr asm)
        failures)
    per_cve;
  let n_unsafe = List.length !unsafe in
  Printf.printf "patches a source-level system handles safely: %2d / 64\n"
    (64 - n_unsafe);
  Printf.printf "patches Ksplice handles safely:               64 / 64\n\n";
  Printf.printf "source-level failure reasons (a patch may have several):\n";
  Printf.printf "  object code changed without source change:  %2d\n" !missed;
  Printf.printf "  stale inlined copies left running:          %2d  (paper: 20 patches touch inlined fns)\n" !inl;
  Printf.printf "  unresolvable/ambiguous symbols:             %2d  (paper: 5)\n" !amb;
  Printf.printf "  static-local state lost:                    %2d\n" !statics;
  Printf.printf "  pure assembly files:                        %2d  (paper: CVE-2007-4573)\n" !asm

(* ---------- V: kernel release matrix (§6.2 methodology) ---------- *)

let kernel_matrix () =
  section "Kernel release matrix (paper 6.2: 14 kernels, no one needs all 64)";
  Printf.printf "%-22s %12s %12s %12s\n" "release" "incorporated"
    "applicable" "applied";
  List.iter
    (fun (v : Corpus.Versions.t) ->
      let apps = Corpus.Versions.applicable v in
      let applied_flags =
        Parallel.map ~domains:(par_domains ())
          (fun (cve : Corpus.Cve.t) ->
            match Corpus.Versions.hot_patch cve v with
            | None -> false
            | Some patch -> (
              match
                Create.create
                  { source = v.tree; patch; update_id = cve.id;
                    description = cve.desc }
              with
              | Error _ -> false
              | Ok { update; _ } -> (
                let b = Corpus.Boot.boot ~tree:v.tree () in
                let mgr = Apply.init b.machine in
                match Apply.apply mgr update with
                | Ok _ -> true
                | Error _ -> false)))
          apps
      in
      let applied = List.length (List.filter Fun.id applied_flags) in
      Printf.printf "%-22s %12d %12d %12d\n" v.name
        (List.length v.incorporated)
        (List.length apps) applied)
    (Corpus.Versions.all ());
  Printf.printf
    "\n(Each release already ships the previous eras' fixes, so later \
     releases need fewer of the 64 patches — every applicable patch hot-\
     applies on its release.)\n"

(* ---------- A: ablation of matcher capabilities (§4.3) ---------- *)

let ablation () =
  section "Ablation: why run-pre matching needs architecture knowledge";
  let attempt tolerance (cve : Corpus.Cve.t) =
    let c = create_cve_exn cve in
    let b = Corpus.Boot.boot () in
    let mgr = Apply.init b.machine in
    match Apply.apply ~tolerance mgr c.update with
    | Ok _ -> true
    | Error _ -> false
  in
  let count tolerance =
    List.length
      (List.filter Fun.id
         (Parallel.map ~domains:(par_domains ()) (attempt tolerance)
            Corpus.Cve.all))
  in
  let full = Ksplice.Runpre.full_tolerance in
  Printf.printf "%-52s %2d / 64\n" "full matcher (nop skip + jump equivalence):"
    (count full);
  Printf.printf "%-52s %2d / 64\n" "without no-op recognition:"
    (count { full with skip_nops = false });
  Printf.printf "%-52s %2d / 64\n" "without short/long jump equivalence:"
    (count { full with jump_equivalence = false });
  Printf.printf
    "\n(The paper's §4.3: the matcher \"needs some architecture-specific \
     pieces of information\" — no-op sequences and relative-jump \
     equivalence. A byte-exact matcher rejects safe updates whenever the \
     distro build aligned a loop head that the pre build did not.)\n"

(* ---------- FS: fault-injection sweep ---------- *)

let fault_sweep () =
  section "Fault-injection sweep: transactional apply under induced failure";
  (* every CVE x every pipeline step: inject the step's canonical fault,
     require a byte-identical rollback, then a clean re-apply that still
     survives stress and blocks the CVE's exploit *)
  let report = Corpus.Sweep.run ~seed:0 ~domains:(par_domains ()) () in
  print_string (Format.asprintf "%a" Corpus.Sweep.pp_matrix report);
  if not (Corpus.Sweep.ok report) then
    print_endline "*** SWEEP FAILED: rollback contract violated ***"

(* ---------- MS: supervised manager sweep ---------- *)

let manager_result = ref None

let manager_sweep ?cves () =
  section
    "Supervised manager sweep: watchdog, retry queue, health-gated revert";
  let r =
    Corpus.Sweep.run_manager ~seed:0 ?cves ~domains:(par_domains ()) ()
  in
  print_string (Format.asprintf "%a" Corpus.Sweep.pp_manager r);
  manager_result := Some r;
  if not (Corpus.Sweep.manager_ok r) then
    print_endline "*** MANAGER SWEEP FAILED: supervision contract violated ***"

(* ---------- CS: serial vs domain-parallel update creation ---------- *)

let creation_sweep ?(cves = Corpus.Cve.all) () =
  section "Creation sweep: update creation, serial vs domain-parallel";
  let nd = par_domains () in
  let serialize (c : Create.created) =
    Bytes.to_string (Update.to_bytes c.update)
  in
  Kbuild.reset_cache ();
  let t0 = now () in
  let serial_ups =
    List.map (fun cve -> serialize (create_cve_exn ~domains:1 cve)) cves
  in
  let serial_t = now () -. t0 in
  Kbuild.reset_cache ();
  let t0 = now () in
  (* warm the shared pre build once so the concurrent creates hit the
     compile cache instead of racing to rebuild the same units *)
  ignore
    (Kbuild.build_tree_exn ~domains:nd ~options:Minic.Driver.pre_build base
      : Kbuild.build);
  let par_ups =
    Parallel.map ~domains:nd
      (fun cve -> serialize (create_cve_exn ~domains:nd cve))
      cves
  in
  let par_t = now () -. t0 in
  let identical = serial_ups = par_ups in
  creation_result := Some (List.length cves, serial_t, par_t, identical);
  Printf.printf "CVEs:                %d\n" (List.length cves);
  Printf.printf "serial wall:         %8.3f s\n" serial_t;
  Printf.printf "parallel wall:       %8.3f s  (%d domains)\n" par_t nd;
  Printf.printf "speedup:             %8.2fx\n" (serial_t /. par_t);
  Printf.printf "identical updates from both paths: %b\n" identical;
  if not identical then
    print_endline "*** PARALLEL CREATION DIVERGED FROM SERIAL ***"

(* ---------- ST: artifact store, cold vs warm creation ---------- *)

type store_outcome = {
  st_cves : int;
  st_cold_s : float;
  st_warm_s : float;
  st_identical : bool;
  st_skipped : int;
  st_dedup_ratio : float;
  st_bytes_saved : int;
  st_diff_bytes_saved : int;
      (* update bytes the minimal differencing avoids shipping,
         vs the whole-unit baseline over the same CVEs *)
  st_skipped_syms : int;
      (* defined primary symbols the whole-unit baseline would ship
         that the minimal updates leave home *)
}

let store_result : store_outcome option ref = ref None

let store_sweep ?(cves = Corpus.Cve.all) () =
  section "Store sweep: cold vs warm creation through one shared store";
  let shared = Store.create ~name:"bench" ~capacity:16384 () in
  let create_updates ?minimal () =
    List.map
      (fun (cve : Corpus.Cve.t) ->
        match
          Create.create ?minimal ~store:shared
            { source = base; patch = Corpus.Cve.hot_patch cve base;
              update_id = cve.id; description = cve.desc }
        with
        | Ok c -> c.Create.update
        | Error e ->
          Format.kasprintf failwith "%s: store sweep create failed: %a" cve.id
            Create.pp_error e)
      cves
  in
  let create_all () =
    List.map
      (fun u -> Bytes.to_string (Update.to_bytes u))
      (create_updates ())
  in
  (* cold: empty compile cache, empty store — every unit compiles and
     every patched unit is differenced *)
  Kbuild.reset_cache ();
  Create.reset_creation_stats ();
  let t0 = now () in
  let cold_ups = create_all () in
  let cold_t = now () -. t0 in
  (* warm: same store — compiles hit the kbuild store, differencing
     resolves from interned (pre, post) digest pairs *)
  Create.reset_creation_stats ();
  let t0 = now () in
  let warm_ups = create_all () in
  let warm_t = now () -. t0 in
  let skipped = Create.skipped_units () in
  let identical = cold_ups = warm_ups in
  (* the minimal-differencing dividend over the same store: what the
     whole-unit baseline would have shipped beyond the minimal carve *)
  let minimal_ups = create_updates () in
  let whole_ups = create_updates ~minimal:false () in
  let usize (u : Update.t) = Bytes.length (Update.to_bytes u) in
  let defined (u : Update.t) =
    List.length
      (List.filter Objfile.Symbol.is_defined u.primary.Objfile.symbols)
  in
  let sum f l = List.fold_left (fun a u -> a + f u) 0 l in
  let diff_bytes_saved = sum usize whole_ups - sum usize minimal_ups in
  let skipped_syms = sum defined whole_ups - sum defined minimal_ups in
  let st = Store.stats shared in
  let dedup_ratio =
    if st.Store.puts = 0 then 0.0
    else float_of_int st.Store.dedup_hits /. float_of_int st.Store.puts
  in
  store_result :=
    Some
      { st_cves = List.length cves; st_cold_s = cold_t; st_warm_s = warm_t;
        st_identical = identical; st_skipped = skipped;
        st_dedup_ratio = dedup_ratio;
        st_bytes_saved = st.Store.bytes_deduped;
        st_diff_bytes_saved = diff_bytes_saved;
        st_skipped_syms = skipped_syms };
  Printf.printf "CVEs:                %d\n" (List.length cves);
  Printf.printf "cold wall:           %8.3f s\n" cold_t;
  Printf.printf "warm wall:           %8.3f s\n" warm_t;
  Printf.printf "speedup:             %8.2fx\n" (cold_t /. warm_t);
  Printf.printf "units skipped (warm):%6d\n" skipped;
  Printf.printf "store puts:          %6d  (dedup hits: %d, ratio %.2f)\n"
    st.Store.puts st.Store.dedup_hits dedup_ratio;
  Printf.printf "bytes interned:      %8d  (saved by dedup: %d)\n"
    st.Store.bytes_put st.Store.bytes_deduped;
  Printf.printf "minimal diffs:       %8d update bytes saved, %d symbols \
                 left home (vs whole-unit)\n"
    diff_bytes_saved skipped_syms;
  Printf.printf "identical updates from both passes: %b\n" identical;
  if not identical then
    print_endline "*** WARM CREATION DIVERGED FROM COLD ***";
  if skipped = 0 then
    print_endline "*** WARM PASS SKIPPED NO UNITS: incremental path dead ***"

(* ---------- DF: function-granular vs whole-unit differencing ---------- *)

let differencing_result : Corpus.Sweep.dm_report option ref = ref None

let differencing_sweep ?cves () =
  section "Differencing sweep: minimal vs whole-unit updates";
  let r = Corpus.Sweep.run_diffmin ?cves ~domains:(par_domains ()) () in
  differencing_result := Some r;
  Printf.printf "rows:                %6d\n" (List.length r.dm_rows);
  Printf.printf "update bytes:        %8d minimal vs %8d whole-unit \
                 (%.0f%% saved)\n"
    r.dm_bytes_min r.dm_bytes_whole
    (100.
    *. (1. -. (float_of_int r.dm_bytes_min /. float_of_int r.dm_bytes_whole))
    );
  Printf.printf "run-pre trials:      %8d minimal vs %8d whole-unit\n"
    r.dm_trials_min r.dm_trials_whole;
  Printf.printf
    "demos:               %d closure, %d data-referent, %d data-init \
     refusals\n"
    r.dm_closure_demos r.dm_dataref_demos r.dm_persist_rejects;
  Printf.printf "violations:          %6d\n" r.dm_violations;
  if not (Corpus.Sweep.diffmin_ok r) then begin
    List.iter
      (fun (row : Corpus.Sweep.dmrow) ->
        List.iter
          (fun m -> Printf.printf "VIOLATION %s: %s\n" row.dm_cve m)
          row.dm_notes)
      r.dm_rows;
    print_endline "*** MINIMAL DIFFERENCING SWEEP FAILED ***"
  end

(* ---------- TR: tracing overhead and byte identity ---------- *)

(* (cves, untraced wall s, traced wall s, identical, records) *)
let trace_result :
    (int * float * float * bool * int) option ref =
  ref None

let trace_overhead_budget = 1.5

let trace_overhead ?(cves = Corpus.Cve.all) () =
  section "Tracing overhead: traced vs untraced apply sweep";
  let ups = List.map (fun cve -> (cve, (create_cve_exn cve).update)) cves in
  (* what "applied bytes" means here: the module image the update landed
     plus the trampoline bytes read back from the running kernel — the
     sum of everything apply wrote that stays live *)
  let apply_one traced ((cve : Corpus.Cve.t), update) =
    let b = Corpus.Boot.boot () in
    if traced then
      Trace.set_clock (fun () -> Machine.instructions_retired b.machine);
    let ap = Apply.init b.machine in
    match Apply.apply ap update with
    | Error e ->
      Format.kasprintf failwith "%s: trace-sweep apply failed: %a" cve.id
        Apply.pp_error e
    | Ok (a : Apply.applied) ->
      let image =
        List.map
          (fun (addr, bytes) -> (addr, Bytes.to_string bytes))
          a.module_image
      in
      let tramps =
        List.map
          (fun (r : Apply.replacement) ->
            Bytes.to_string (Machine.read_bytes b.machine r.r_old_addr 5))
          a.replacements
      in
      (cve.id, image, tramps)
  in
  Trace.reset ();
  Trace.set_enabled false;
  let t0 = now () in
  let untraced = List.map (apply_one false) ups in
  let untraced_t = now () -. t0 in
  Trace.set_capacity 65536;
  Trace.set_enabled true;
  let t0 = now () in
  let traced = List.map (apply_one true) ups in
  let traced_t = now () -. t0 in
  Trace.set_enabled false;
  let records = List.length (Trace.records ()) + Trace.dropped () in
  Trace.reset ();
  let identical = untraced = traced in
  let overhead = traced_t /. untraced_t in
  trace_result :=
    Some (List.length cves, untraced_t, traced_t, identical, records);
  Printf.printf "CVEs:                %d\n" (List.length cves);
  Printf.printf "untraced wall:       %8.3f s\n" untraced_t;
  Printf.printf "traced wall:         %8.3f s  (%d records)\n" traced_t
    records;
  Printf.printf "overhead:            %8.2fx  (budget %.2fx)\n" overhead
    trace_overhead_budget;
  Printf.printf "identical applied bytes from both runs: %b\n" identical;
  if not identical then
    print_endline "*** TRACED APPLY DIVERGED FROM UNTRACED ***";
  if overhead > trace_overhead_budget then
    Printf.printf "*** TRACING OVERHEAD %.2fx EXCEEDS %.2fx BUDGET ***\n"
      overhead trace_overhead_budget

(* ---------- CR: crash-recovery sweep ---------- *)

module Repo = Ksplice.Repository

(* (report, wall seconds to reopen one mid-publish-crashed repository) *)
let crash_result : (Corpus.Sweep.crash_report * float) option ref = ref None

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let crash_sweep ?cves () =
  section "Crash-recovery sweep: publish killed at every mutating I/O op";
  let cves =
    match cves with Some c -> c | None -> Corpus.Sweep.crash_sample ()
  in
  let report =
    Corpus.Sweep.run_crash ~seed:0 ~cves ~domains:(par_domains ()) ()
  in
  print_string (Format.asprintf "%a" Corpus.Sweep.pp_crash report);
  if not (Corpus.Sweep.crash_ok report) then
    print_endline "*** CRASH SWEEP FAILED: persistence contract violated ***";
  (* clock one recovery: crash a publish partway through its blob puts,
     then time the reopen that replays the journal and sweeps the debris *)
  let cve = List.hd cves in
  let dir = Filename.temp_file "kspl-bench-crash" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let patch = Corpus.Cve.hot_patch cve base in
      let update = (create_cve_exn cve).update in
      let vfs, _ =
        Vfs.inject { Vfs.at = 12; kind = Vfs.Crash; seed = 0 } Vfs.real
      in
      (match Repo.open_dir ~vfs dir with
       | Error e ->
         Format.kasprintf failwith "crash bench open: %a" Repo.pp_error e
       | Ok repo -> (
         match Repo.publish repo ~source:base ~patch ~update with
         | exception Vfs.Crashed -> ()
         | Ok _ | Error _ -> ()));
      let t0 = now () in
      (match Repo.open_dir dir with
       | Ok _ -> ()
       | Error e ->
         Format.kasprintf failwith "crash bench reopen: %a" Repo.pp_error e);
      let recovery_t = now () -. t0 in
      crash_result := Some (report, recovery_t);
      Printf.printf "reopen+recover after a mid-publish crash: %.6f s\n"
        recovery_t)

(* ---------- TN: per-thread transition vs stop_machine ---------- *)

(* The machine's time model: 1 instruction = 1 ns (the stop_machine
   pause model in lib/kernel is calibrated against the same scale). A
   row's throughput dip is the fraction of the engagement's wall time
   the stress workload spent frozen: pause / (pause + work). *)
let ns_per_insn = 1

type transition_outcome = {
  tn_report : Corpus.Sweep.treport;
  tn_dip : float;  (** per-thread engagement, mean over rows *)
  tn_base_dip : float;  (** stop_machine baseline, same denominators *)
  tn_pauses : int list;  (** per-thread apply pauses (ns), one per row *)
  tn_undo_pauses : int list;
  tn_base_pauses : int list;  (** stop_machine pauses under load *)
  tn_straggler_pauses : int list;  (** bounded-fallback pauses *)
  tn_migrated : (string * int) list;  (** safe-point class -> threads *)
  tn_footprints_identical : bool;
}

let transition_result : transition_outcome option ref = ref None

let transition_sweep ?cves () =
  section "Transition sweep: per-thread engagement vs stop_machine under load";
  let report =
    Corpus.Sweep.run_transition ?cves ~domains:(par_domains ()) ()
  in
  print_string (Format.asprintf "%a" Corpus.Sweep.pp_transition report);
  let rows = report.Corpus.Sweep.t_rows in
  let dip_of pause work =
    if pause = 0 then 0.0
    else float_of_int pause /. float_of_int (pause + work)
  in
  let mean l =
    match l with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  let dips, base_dips =
    List.split
      (List.map
         (fun (r : Corpus.Sweep.trow) ->
           let work = r.t_sched_steps * ns_per_insn in
           (dip_of r.t_pause_ns work, dip_of r.t_base_pause_ns work))
         rows)
  in
  let dip = mean dips and base_dip = mean base_dips in
  let classes =
    List.map
      (fun c ->
        let name = Manager.Transition.sp_class_name c in
        ( name,
          List.fold_left
            (fun acc (r : Corpus.Sweep.trow) ->
              acc
              + (try List.assoc name r.t_migrated with Not_found -> 0)
              (* apply-phase stats carry no Forced entries (a pauseless
                 apply never forces); the straggler cells do *)
              + (if c = Manager.Transition.Forced then r.t_straggler_forced
                 else 0))
            0 rows ))
      Manager.Transition.all_classes
  in
  let identical = Corpus.Sweep.transition_ok report in
  transition_result :=
    Some
      {
        tn_report = report;
        tn_dip = dip;
        tn_base_dip = base_dip;
        tn_pauses = List.map (fun (r : Corpus.Sweep.trow) -> r.t_pause_ns) rows;
        tn_undo_pauses =
          List.map (fun (r : Corpus.Sweep.trow) -> r.t_undo_pause_ns) rows;
        tn_base_pauses =
          List.map (fun (r : Corpus.Sweep.trow) -> r.t_base_pause_ns) rows;
        tn_straggler_pauses =
          List.map (fun (r : Corpus.Sweep.trow) -> r.t_straggler_pause_ns) rows;
        tn_migrated = classes;
        tn_footprints_identical = identical;
      };
  Printf.printf "throughput dip (per-thread engagement): %8.5f\n" dip;
  Printf.printf "throughput dip (stop_machine baseline): %8.5f\n" base_dip;
  List.iter
    (fun (name, n) -> Printf.printf "migrated at %-8s %6d threads\n" name n)
    classes;
  Printf.printf "pauseless rows: %d/%d   straggler fallbacks: %d/%d\n"
    report.Corpus.Sweep.t_pauseless (List.length rows)
    report.Corpus.Sweep.t_fallbacks (List.length rows);
  Printf.printf "footprints byte-identical to stop_machine: %b\n" identical;
  if not identical then
    print_endline "*** TRANSITION SWEEP DIVERGED FROM STOP_MACHINE ***";
  if dip >= base_dip then
    print_endline "*** PER-THREAD DIP NOT BELOW STOP_MACHINE BASELINE ***"

(* ---------- FL: simulated fleet distribution ---------- *)

type fleet_outcome = {
  fb_subscribers : int;
  fb_depth : int;  (** server chain entries *)
  fb_synced : int;
  fb_wall_s : float;
  fb_subs_per_s : float;
  fb_p50_s : float;
  fb_p99_s : float;
  fb_chain_bytes : int;  (** blob bytes of one full cold mirror *)
  fb_bytes_fetched : int;
  fb_bytes_saved : int;  (** bytes not transferred vs all-cold mirrors *)
}

let fleet_result : fleet_outcome option ref = ref None

let fleet_bench ?(subscribers = 512) () =
  section
    (Printf.sprintf "Fleet distribution: %d subscribers mirroring one server"
       subscribers);
  let module Transport = Fleet.Transport in
  let module Server = Fleet.Server in
  let module Subscriber = Fleet.Subscriber in
  (* a server chain stacked like the fleet sweep's: successive corpus
     CVEs applied to the successively patched tree *)
  let repo = Repo.of_store (Store.create ~name:"fleet-bench-server" ()) in
  let tree = ref base and depth = ref 0 in
  List.iter
    (fun (cve : Corpus.Cve.t) ->
      if !depth < 4 && Corpus.Cve.applies_to cve !tree then begin
        let patch = Corpus.Cve.hot_patch cve !tree in
        match
          Create.create
            { source = !tree; patch; update_id = cve.id;
              description = cve.desc }
        with
        | Error e ->
          Format.kasprintf failwith "fleet bench create: %a" Create.pp_error e
        | Ok c -> (
          (match Repo.publish repo ~source:!tree ~patch ~update:c.update with
          | Ok _ -> ()
          | Error e ->
            Format.kasprintf failwith "fleet bench publish: %a" Repo.pp_error
              e);
          match Diff.apply patch !tree with
          | Ok t ->
            tree := t;
            incr depth
          | Error m -> failwith ("fleet bench apply: " ^ m))
      end)
    Corpus.Cve.all;
  let base_digest = Tree.digest base in
  let manifest =
    match Repo.manifest repo ~digest:base_digest with
    | Ok m -> m
    | Error e -> Format.kasprintf failwith "fleet manifest: %a" Repo.pp_error e
  in
  let chain_bytes =
    List.fold_left
      (fun acc (e : Repo.manifest_entry) ->
        acc + e.me_size
        + List.fold_left (fun a (_, s) -> a + s) 0 e.me_objects)
      0 manifest
  in
  let server_store = Repo.store repo in
  (* pre-seed a subscriber to chain position [k]: exactly the refs and
     blobs a prior sync committed, so the timed sync fetches the delta *)
  let preseed sub k =
    List.iteri
      (fun i (e : Repo.manifest_entry) ->
        if i < k then begin
          List.iter
            (fun d ->
              match Store.get server_store d with
              | Some b -> ignore (Store.put sub b)
              | None -> failwith "fleet bench: server blob missing")
            (e.me_blob :: List.map fst e.me_objects);
          let hd = Store.put sub e.me_next in
          Store.commit_refs sub
            [ (Repo.entry_ref e.me_base, e.me_blob); ("fleet:head", hd) ]
        end)
      manifest
  in
  let t0 = now () in
  let reports =
    Parallel.map ~domains:(par_domains ())
      (fun i ->
        let sub = Store.create ~name:(Printf.sprintf "sub-%d" i) () in
        preseed sub (i mod (!depth + 1));
        let connect _ =
          let tr, _ =
            Transport.sim ~serve:(Server.handle (Server.session repo)) ()
          in
          Some tr
        in
        let s0 = now () in
        let r =
          Subscriber.sync ~id:(Printf.sprintf "sub-%d" i) ~store:sub
            ~base:base_digest ~connect ()
        in
        (now () -. s0, r))
      (List.init subscribers (fun i -> i))
  in
  let wall = now () -. t0 in
  let lats = List.sort compare (List.map fst reports) in
  let pct p =
    let n = List.length lats in
    if n = 0 then 0.0
    else
      List.nth lats
        (max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))
  in
  let sum f =
    List.fold_left (fun acc (_, r) -> acc + f r) 0 reports
  in
  let synced = sum (fun (r : Subscriber.report) -> if r.r_synced then 1 else 0) in
  let outcome =
    {
      fb_subscribers = subscribers;
      fb_depth = !depth;
      fb_synced = synced;
      fb_wall_s = wall;
      fb_subs_per_s = float_of_int subscribers /. wall;
      fb_p50_s = pct 0.50;
      fb_p99_s = pct 0.99;
      fb_chain_bytes = chain_bytes;
      fb_bytes_fetched = sum (fun (r : Subscriber.report) -> r.r_bytes_fetched);
      (* a cold mirror transfers [chain_bytes]; whatever the fleet did
         not fetch was saved by delta sync (head exchange skipping
         committed entries) plus CAS hits on shared object blobs *)
      fb_bytes_saved =
        max 0
          ((chain_bytes * subscribers)
          - sum (fun (r : Subscriber.report) -> r.r_bytes_fetched));
    }
  in
  fleet_result := Some outcome;
  Printf.printf "chain: %d entries, %d blob bytes per cold mirror\n" !depth
    chain_bytes;
  Printf.printf "synced %d/%d subscribers in %.3f s  (%.1f subscribers/s)\n"
    synced subscribers wall outcome.fb_subs_per_s;
  Printf.printf "sync latency: p50 %.6f s   p99 %.6f s\n" outcome.fb_p50_s
    outcome.fb_p99_s;
  Printf.printf
    "delta sync: %d bytes fetched, %d bytes saved vs cold mirrors\n"
    outcome.fb_bytes_fetched outcome.fb_bytes_saved;
  if synced <> subscribers then
    print_endline "*** FLEET BENCH: not every subscriber synced ***"

(* ---------- CU: cumulative updates (atomic replace) ---------- *)

type cumulative_row = {
  cb_requested : int;
  cb_depth : int;  (** chain entries actually published *)
  cb_stacked_s : float;  (** applying the chain hop by hop *)
  cb_collapse_s : float;  (** one atomic replace of the whole stack *)
  cb_chain_bytes : int;  (** wire bytes of the per-update chain *)
  cb_cumulative_bytes : int;  (** wire bytes of the one cumulative hop *)
  cb_footprints_identical : bool;
}

let cumulative_result : cumulative_row list ref = ref []

let cumulative_bench ?(depths = [ 1; 8; 32 ]) () =
  section "Cumulative updates: atomic replace vs the stacked chain";
  let rows =
    List.map
      (fun requested ->
        (* a chain of corpus CVEs, each still applicable to the
           successively patched tree, published like the fleet bench's *)
        let repo =
          Repo.of_store
            (Store.create ~name:(Printf.sprintf "cum-bench-%d" requested) ())
        in
        let tree = ref base and updates = ref [] in
        List.iter
          (fun (cve : Corpus.Cve.t) ->
            if
              List.length !updates < requested
              && Corpus.Cve.applies_to cve !tree
            then begin
              let patch = Corpus.Cve.hot_patch cve !tree in
              match
                Create.create
                  { source = !tree; patch; update_id = cve.id;
                    description = cve.desc }
              with
              | Error e ->
                Format.kasprintf failwith "cumulative bench create: %a"
                  Create.pp_error e
              | Ok c -> (
                (match
                   Repo.publish repo ~source:!tree ~patch ~update:c.update
                 with
                | Ok _ -> ()
                | Error e ->
                  Format.kasprintf failwith "cumulative bench publish: %a"
                    Repo.pp_error e);
                match Diff.apply patch !tree with
                | Ok t ->
                  updates := c.update :: !updates;
                  tree := t
                | Error m -> failwith ("cumulative bench apply: " ^ m))
            end)
          Corpus.Cve.all;
        let chain = List.rev !updates in
        let depth = List.length chain in
        let base_digest = Tree.digest base in
        (* the manifest advertises the cumulative hop once published, so
           measuring it before and after the collapse yields the wire
           bytes of the chain vs the single replacement hop *)
        let manifest_bytes () =
          match Repo.manifest repo ~digest:base_digest with
          | Ok m ->
            List.fold_left
              (fun acc (e : Repo.manifest_entry) ->
                acc + e.me_size
                + List.fold_left (fun a (_, s) -> a + s) 0 e.me_objects)
              0 m
          | Error e ->
            Format.kasprintf failwith "cumulative bench manifest: %a"
              Repo.pp_error e
        in
        let chain_bytes = manifest_bytes () in
        let cum =
          match
            Repo.publish_cumulative repo ~source:base
              ~update_id:(Printf.sprintf "cumulative-%d" depth)
              ~description:(Printf.sprintf "collapse of %d update(s)" depth)
          with
          | Ok e -> e.Repo.update
          | Error e ->
            Format.kasprintf failwith "cumulative bench collapse: %a"
              Repo.pp_error e
        in
        let cumulative_bytes = manifest_bytes () in
        let apply_ok mgr u =
          match Apply.apply mgr u with
          | Ok _ -> ()
          | Error e ->
            Format.kasprintf failwith "cumulative bench apply: %a"
              Apply.pp_error e
        in
        (* twin A: the stacked chain, timed hop by hop *)
        let ba = Corpus.Boot.boot () in
        let mgra = Apply.init ba.machine in
        let t0 = now () in
        List.iter (apply_ok mgra) chain;
        let stacked_s = now () -. t0 in
        (* twin B: the same stack, then one timed atomic replace *)
        let bb = Corpus.Boot.boot () in
        let mgrb = Apply.init bb.machine in
        List.iter (apply_ok mgrb) chain;
        let t1 = now () in
        (match Apply.apply_cumulative mgrb cum with
        | Ok _ -> ()
        | Error e ->
          Format.kasprintf failwith "cumulative bench replace: %a"
            Apply.pp_error e);
        let collapse_s = now () -. t1 in
        (* footprint parity: unwind twin A by hand, plain-apply, compare *)
        List.iter
          (fun (u : Update.t) ->
            match Apply.undo mgra u.update_id with
            | Ok () -> ()
            | Error e ->
              Format.kasprintf failwith "cumulative bench undo: %a"
                Apply.pp_error e)
          (List.rev chain);
        apply_ok mgra cum;
        let identical =
          String.equal (Apply.footprint mgra) (Apply.footprint mgrb)
        in
        Printf.printf
          "depth %2d: stacked apply %.3f s, atomic replace %.3f s; wire %d \
           -> %d bytes; footprints identical: %b\n"
          depth stacked_s collapse_s chain_bytes cumulative_bytes identical;
        { cb_requested = requested; cb_depth = depth;
          cb_stacked_s = stacked_s; cb_collapse_s = collapse_s;
          cb_chain_bytes = chain_bytes;
          cb_cumulative_bytes = cumulative_bytes;
          cb_footprints_identical = identical })
      depths
  in
  cumulative_result := rows;
  if List.exists (fun r -> not r.cb_footprints_identical) rows then
    print_endline "*** CUMULATIVE BENCH: footprint divergence ***"

(* ---------- P: Bechamel timing ---------- *)

let bechamel_benches ?(quick = false) () =
  section "Timing micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  (* prepared state for the benches *)
  let cve = Option.get (Corpus.Cve.find "CVE-2006-2451") in
  let prepared = create_cve_exn cve in
  (* machine with the update applied, for trampoline-overhead probes *)
  let b_patched = Corpus.Boot.boot () in
  let mgr = Apply.init b_patched.machine in
  (match Apply.apply mgr prepared.update with
   | Ok _ -> ()
   | Error e -> Format.kasprintf failwith "bench apply: %a" Apply.pp_error e);
  let b_plain = Corpus.Boot.boot () in
  let addr_of (b : Corpus.Boot.booted) name =
    (Option.get (Image.lookup_global b.image name)).addr
  in
  let call_patched = addr_of b_patched "sys_prctl" in
  let call_plain = addr_of b_plain "sys_prctl" in
  let helper = List.hd prepared.update.helpers in
  let inference_bench () =
    let inference = Ksplice.Runpre.create_inference () in
    Ksplice.Runpre.match_helper
      ~read_run:(fun a -> Machine.read_u8 b_plain.machine a)
      ~candidates:(fun name ->
        Machine.lookup_name b_plain.machine name
        |> List.filter_map (fun (s : Image.syminfo) ->
             if s.kind = `Func then Some s.addr else None))
      ~already:(fun _ -> None)
      ~inference helper
  in
  let tests =
    [
      Test.make ~name:"call: unpatched function"
        (Staged.stage (fun () ->
             ignore
               (Machine.call_function b_plain.machine ~addr:call_plain
                  ~args:[ 3l; 0l ])));
      Test.make ~name:"call: patched function (trampoline)"
        (Staged.stage (fun () ->
             ignore
               (Machine.call_function b_patched.machine ~addr:call_patched
                  ~args:[ 3l; 0l ])));
      Test.make ~name:"run-pre matching (one helper unit)"
        (Staged.stage (fun () -> ignore (inference_bench ())));
      Test.make ~name:"ksplice-create (prctl patch)"
        (Staged.stage (fun () -> ignore (create_cve_exn cve)));
      Test.make ~name:"apply+undo on live kernel"
        (Staged.stage (fun () ->
             let b = Corpus.Boot.boot () in
             let mgr = Apply.init b.machine in
             (match Apply.apply mgr prepared.update with
              | Ok _ -> ()
              | Error _ -> failwith "bench apply failed");
             match Apply.undo mgr cve.id with
             | Ok () -> ()
             | Error _ -> failwith "bench undo failed"));
    ]
  in
  (* matcher cost scales with the optimization unit: one synthetic unit
     per size, measured separately *)
  let scaling_tests () =
    let mk_unit n =
      let b = Buffer.create 1024 in
      for i = 0 to n - 1 do
        Buffer.add_string b
          (Printf.sprintf
             "int sfn%d(int p) {\n  int a = p + %d;\n  int i;\n  for (i = 0; i < %d; i = i + 1)\n    a = a + i;\n  return a;\n}\n"
             i i (i + 2))
      done;
      Buffer.contents b
    in
    List.map
      (fun n ->
        let tree =
          Patchfmt.Source_tree.of_list [ ("kernel/s.c", mk_unit n) ]
        in
        let build = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree in
        let img = Image.link_exn ~base:0x100000 (Kbuild.objects build) in
        let m = Machine.create img in
        let pre = Kbuild.build_tree_exn ~options:Minic.Driver.pre_build tree in
        let helper = List.hd (Kbuild.objects pre) in
        Test.make
          ~name:(Printf.sprintf "run-pre matching, %d-function unit" n)
          (Staged.stage (fun () ->
               let inference = Ksplice.Runpre.create_inference () in
               ignore
                 (Ksplice.Runpre.match_helper
                    ~read_run:(fun a -> Machine.read_u8 m a)
                    ~candidates:(fun name ->
                      Machine.lookup_name m name
                      |> List.filter_map (fun (s : Image.syminfo) ->
                           if s.kind = `Func then Some s.addr else None))
                    ~already:(fun _ -> None)
                    ~inference helper))))
      [ 4; 16; 64 ]
  in
  let tests =
    if quick then
      (* the cheap probes only — creation and apply are already wall-
         clocked by the sections, and --quick must stay under 30 s *)
      List.filteri (fun i _ -> i < 3) tests
    else tests @ scaling_tests ()
  in
  let grouped = Test.make_grouped ~name:"ksplice" ~fmt:"%s %s" tests in
  let cfg =
    if quick then
      Benchmark.cfg ~limit:100 ~quota:(Time.second 0.1) ~stabilize:false ()
    else Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] ->
        bech_estimates := (name, ns) :: !bech_estimates;
        if ns > 1e6 then Printf.printf "%-46s %10.3f ms/run\n" name (ns /. 1e6)
        else if ns > 1e3 then
          Printf.printf "%-46s %10.3f us/run\n" name (ns /. 1e3)
        else Printf.printf "%-46s %10.1f ns/run\n" name ns
      | _ -> Printf.printf "%-46s (no estimate)\n" name)
    (List.sort compare rows);
  (* instruction-level trampoline cost: the inserted jump is one extra
     5-byte instruction per call, the paper's "a few cycles" *)
  Printf.printf
    "\ntrampoline cost at ISA level: 1 extra jmp instruction (5 bytes) per \
     call to a replaced function\n"

(* ---------- BENCH.json emitter ---------- *)

let emit_bench_json ~mode () =
  let open Report.Json in
  let cs = Kbuild.cache_stats () in
  let is = Machine.kallsyms_index_stats () in
  let num n = Num (float_of_int n) in
  let rate hits total =
    if total = 0 then Null else Num (float_of_int hits /. float_of_int total)
  in
  let doc =
    Obj
      [
        ("schema", Str "ksplice-bench/1");
        ("mode", Str mode);
        ("domains", num (par_domains ()));
        ("available_domains", num (Parallel.available_domains ()));
        ( "sections",
          Arr
            (List.rev_map
               (fun (name, wall) ->
                 Obj [ ("name", Str name); ("wall_s", Num wall) ])
               !section_times) );
        ( "bechamel",
          Arr
            (List.rev_map
               (fun (name, ns) ->
                 Obj [ ("name", Str name); ("ns_per_run", Num ns) ])
               !bech_estimates) );
        ( "kbuild_cache",
          Obj
            [
              ("hits", num cs.hits);
              ("misses", num cs.misses);
              ("evictions", num cs.evictions);
              ("entries", num cs.entries);
              ("capacity", num cs.capacity);
              ("hit_rate", rate cs.hits (cs.hits + cs.misses));
            ] );
        ( "kallsyms_index",
          Obj
            [
              ("lookups", num is.lookups);
              ("hits", num is.hits);
              ("hit_rate", rate is.hits is.lookups);
            ] );
        ( "manager_sweep",
          match !manager_result with
          | None -> Null
          | Some (r : Corpus.Sweep.mreport) ->
            Obj
              [
                ("cells", num r.m_cells_total);
                ("healthy", num r.m_healthy);
                ("parked", num r.m_parked);
                ("quarantined", num r.m_quarantined);
                ("violations", num r.m_violations);
                ("failures", num r.m_failures);
              ] );
        ( "creation_sweep",
          match !creation_result with
          | None -> Null
          | Some (cves, serial_t, par_t, identical) ->
            Obj
              [
                ("cves", num cves);
                ("serial_wall_s", Num serial_t);
                ("parallel_wall_s", Num par_t);
                ("speedup", Num (serial_t /. par_t));
                ("identical", Bool identical);
              ] );
        ( "store",
          match !store_result with
          | None -> Null
          | Some s ->
            Obj
              [
                ("cves", num s.st_cves);
                ("cold_wall_s", Num s.st_cold_s);
                ("warm_wall_s", Num s.st_warm_s);
                ("speedup", Num (s.st_cold_s /. s.st_warm_s));
                ("identical", Bool s.st_identical);
                ("skipped_units", num s.st_skipped);
                ("dedup_ratio", Num s.st_dedup_ratio);
                ("bytes_saved", num s.st_bytes_saved);
                ("diff_bytes_saved", num s.st_diff_bytes_saved);
                ("skipped_symbols", num s.st_skipped_syms);
              ] );
        ( "differencing",
          match !differencing_result with
          | None -> Null
          | Some r ->
            Obj
              [
                ("rows", num (List.length r.dm_rows));
                ("bytes_min", num r.dm_bytes_min);
                ("bytes_whole", num r.dm_bytes_whole);
                ("trials_min", num r.dm_trials_min);
                ("trials_whole", num r.dm_trials_whole);
                ("closure_demos", num r.dm_closure_demos);
                ("dataref_demos", num r.dm_dataref_demos);
                ("persist_rejects", num r.dm_persist_rejects);
                ("violations", num r.dm_violations);
                ("ok", Bool (Corpus.Sweep.diffmin_ok r));
              ] );
        ( "trace",
          match !trace_result with
          | None -> Null
          | Some (cves, untraced_t, traced_t, identical, records) ->
            let overhead = traced_t /. untraced_t in
            Obj
              [
                ("cves", num cves);
                ("untraced_wall_s", Num untraced_t);
                ("traced_wall_s", Num traced_t);
                ("overhead", Num overhead);
                ("budget", Num trace_overhead_budget);
                ("within_budget", Bool (overhead <= trace_overhead_budget));
                ("identical", Bool identical);
                ("records", num records);
              ] );
        ( "transition",
          match !transition_result with
          | None -> Null
          | Some t ->
            let r = t.tn_report in
            let pauses l = Arr (List.map (fun p -> num p) l) in
            Obj
              [
                ("cves", num (List.length r.Corpus.Sweep.t_rows));
                ( "threads",
                  num
                    (List.fold_left
                       (fun a (row : Corpus.Sweep.trow) -> a + row.t_threads)
                       0 r.Corpus.Sweep.t_rows) );
                ("dip", Num t.tn_dip);
                ("baseline_dip", Num t.tn_base_dip);
                ("dip_below_baseline", Bool (t.tn_dip < t.tn_base_dip));
                ("pauses_ns", pauses t.tn_pauses);
                ("undo_pauses_ns", pauses t.tn_undo_pauses);
                ("baseline_pauses_ns", pauses t.tn_base_pauses);
                ("straggler_pauses_ns", pauses t.tn_straggler_pauses);
                ( "migrated_by_class",
                  Obj (List.map (fun (c, n) -> (c, num n)) t.tn_migrated) );
                ("pauseless_rows", num r.Corpus.Sweep.t_pauseless);
                ("straggler_fallbacks", num r.Corpus.Sweep.t_fallbacks);
                ("violations", num r.Corpus.Sweep.t_violations);
                ("footprints_identical", Bool t.tn_footprints_identical);
              ] );
        ( "crash_recovery",
          match !crash_result with
          | None -> Null
          | Some ((r : Corpus.Sweep.crash_report), recovery_t) ->
            Obj
              [
                ("cves", num (List.length r.c_rows));
                ("cells", num r.c_cells);
                ("published", num r.c_published);
                ("absent", num r.c_absent);
                ("violations", num r.c_violations);
                ("gc_swept", num r.c_gc_swept);
                ("gc_reclaimed_bytes", num r.c_gc_bytes);
                ("recovery_s", Num recovery_t);
                ("ok", Bool (Corpus.Sweep.crash_ok r));
              ] );
        ( "fleet",
          match !fleet_result with
          | None -> Null
          | Some f ->
            Obj
              [
                ("subscribers", num f.fb_subscribers);
                ("chain_depth", num f.fb_depth);
                ("synced", num f.fb_synced);
                ("wall_s", Num f.fb_wall_s);
                ("subscribers_per_s", Num f.fb_subs_per_s);
                ("p50_sync_s", Num f.fb_p50_s);
                ("p99_sync_s", Num f.fb_p99_s);
                ("chain_bytes", num f.fb_chain_bytes);
                ("bytes_fetched", num f.fb_bytes_fetched);
                ("bytes_saved", num f.fb_bytes_saved);
                ("ok", Bool (f.fb_synced = f.fb_subscribers));
              ] );
        ( "cumulative",
          match !cumulative_result with
          | [] -> Null
          | rows ->
            Obj
              [
                ( "rows",
                  Arr
                    (List.map
                       (fun r ->
                         Obj
                           [
                             ("requested", num r.cb_requested);
                             ("depth", num r.cb_depth);
                             ("stacked_apply_s", Num r.cb_stacked_s);
                             ("collapse_s", Num r.cb_collapse_s);
                             ("chain_bytes", num r.cb_chain_bytes);
                             ("cumulative_bytes", num r.cb_cumulative_bytes);
                             ( "bytes_saved",
                               num
                                 (max 0
                                    (r.cb_chain_bytes
                                    - r.cb_cumulative_bytes)) );
                             ( "footprints_identical",
                               Bool r.cb_footprints_identical );
                           ])
                       rows) );
                ( "ok",
                  Bool
                    (List.for_all
                       (fun r -> r.cb_footprints_identical)
                       rows) );
              ] );
      ]
  in
  let oc = open_out !out_path in
  output_string oc (to_string doc);
  close_out oc;
  Printf.printf "\nperf baseline written to %s\n" !out_path

let () =
  let specs =
    [
      ("--quick", Arg.Set quick, " small subset for CI (finishes in < 30 s)");
      ( "--out",
        Arg.Set_string out_path,
        "FILE perf-baseline JSON path (default BENCH.json)" );
      ( "--domains",
        Arg.Set_int domains_flag,
        "N domain budget for the parallel legs (default: max 2 cores)" );
    ]
  in
  Arg.parse (Arg.align specs)
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [--quick] [--out FILE] [--domains N]";
  print_endline "Ksplice reproduction - evaluation benchmarks";
  print_endline "(paper: Arnold & Kaashoek, EuroSys 2009)";
  if !quick then begin
    let quick_cves = List.filteri (fun i _ -> i < 8) Corpus.Cve.all in
    timed "figure3" figure3;
    timed "table1" table1;
    timed "consequences" consequences;
    timed "creation_sweep" (fun () -> creation_sweep ~cves:quick_cves ());
    timed "store_sweep" (fun () -> store_sweep ~cves:quick_cves ());
    timed "differencing_sweep" (fun () ->
        differencing_sweep ~cves:(quick_cves @ Corpus.Cve.diff_extras) ());
    timed "manager_sweep" (fun () ->
        manager_sweep ~cves:(List.filteri (fun i _ -> i < 4) quick_cves) ());
    timed "trace_overhead" (fun () -> trace_overhead ~cves:quick_cves ());
    timed "crash_sweep" (fun () ->
        crash_sweep ~cves:(List.filteri (fun i _ -> i < 2) quick_cves) ());
    timed "transition_sweep" (fun () ->
        transition_sweep ~cves:(List.filteri (fun i _ -> i < 2) quick_cves) ());
    timed "fleet_bench" (fun () -> fleet_bench ());
    timed "cumulative_bench" (fun () -> cumulative_bench ~depths:[ 1; 4 ] ());
    timed "bechamel" (fun () -> bechamel_benches ~quick:true ())
  end
  else begin
    timed "figure3" figure3;
    timed "table1" table1;
    timed "consequences" consequences;
    timed "headline" headline;
    timed "symbol_stats" symbol_stats;
    timed "inline_stats" inline_stats;
    timed "exploits" exploits;
    timed "runpre_robustness" runpre_robustness;
    timed "baseline" baseline;
    timed "kernel_matrix" kernel_matrix;
    timed "ablation" ablation;
    timed "fault_sweep" fault_sweep;
    timed "manager_sweep" (fun () -> manager_sweep ());
    timed "creation_sweep" (fun () -> creation_sweep ());
    timed "store_sweep" (fun () -> store_sweep ());
    timed "differencing_sweep" (fun () -> differencing_sweep ());
    timed "trace_overhead" (fun () -> trace_overhead ());
    timed "crash_sweep" (fun () -> crash_sweep ());
    timed "transition_sweep" (fun () -> transition_sweep ());
    timed "fleet_bench" (fun () -> fleet_bench ~subscribers:1024 ());
    timed "cumulative_bench" (fun () -> cumulative_bench ());
    timed "appendix" appendix;
    timed "bechamel" (fun () -> bechamel_benches ())
  end;
  emit_bench_json ~mode:(if !quick then "quick" else "full") ();
  print_endline "\nAll experiments complete."
