(* CVE walkthrough: hot-patch a real(istic) vulnerability while an
   exploit and a stress workload run against the kernel.

     dune exec examples/cve_walkthrough.exe [CVE-ID]

   Defaults to CVE-2007-4573, the assembly-file CVE (the ia32entry.S
   analogue): a patch to a pure assembly unit is handled by exactly the
   same machinery as C patches (paper §6.3). *)

module Apply = Ksplice.Apply
module Create = Ksplice.Create

let () =
  let id = if Array.length Sys.argv > 1 then Sys.argv.(1) else "CVE-2007-4573" in
  let cve =
    match Corpus.Cve.find id with
    | Some c -> c
    | None -> failwith ("unknown CVE " ^ id ^ " (see ksplice-tool list-cves)")
  in
  Printf.printf "== %s ==\n%s\n\n" cve.id cve.desc;

  (* a sacrificial kernel proves the bug is real *)
  (match Corpus.Exploits.find cve.id with
   | Some e ->
     let victim = Corpus.Boot.boot () in
     let r = e.run victim in
     Printf.printf "exploit on an unpatched kernel: %s (%s)\n\n"
       (if r.succeeded then "succeeds" else "fails")
       r.detail
   | None -> Printf.printf "(no exploit bundled for this CVE)\n\n");

  (* the production kernel: boot, start background load *)
  let b = Corpus.Boot.boot () in
  Printf.printf "production kernel booted; console: %S\n"
    (Kernel.Machine.console b.machine);

  let base = Corpus.Base_kernel.tree () in
  let patch = Corpus.Cve.hot_patch cve base in
  Printf.printf "patch touches: %s (%d lines)\n"
    (String.concat ", " (Patchfmt.Diff.changed_files patch))
    (Patchfmt.Diff.stats patch).changed;

  let { Create.update; _ } =
    match
      Create.create
        { source = base; patch; update_id = cve.id; description = cve.desc }
    with
    | Ok c -> c
    | Error e -> Format.kasprintf failwith "create: %a" Create.pp_error e
  in
  Printf.printf "update built: %d replaced function(s), %d helper unit(s)\n"
    (List.length update.replaced_functions)
    (List.length update.helpers);

  (* apply while user threads hammer syscalls *)
  let mgr = Apply.init b.machine in
  let report =
    Corpus.Stress.run b ~threads:3 ~iterations:20 ~during:(fun () ->
        match Apply.apply mgr update with
        | Ok a ->
          Printf.printf
            "update applied mid-workload (simulated pause %.3f ms)\n"
            (float_of_int a.pause_ns /. 1e6)
        | Error e -> Format.kasprintf failwith "apply: %a" Apply.pp_error e)
  in
  Printf.printf "stress workload across the update: %s\n"
    (if report.ok then "no corruption detected"
     else "FAILED: " ^ String.concat "; " report.failures);

  (match Corpus.Exploits.find cve.id with
   | Some e ->
     let r = e.run b in
     Printf.printf "exploit on the patched kernel: %s (%s)\n"
       (if r.succeeded then "STILL SUCCEEDS" else "blocked")
       r.detail
   | None -> ());
  print_endline "done."
