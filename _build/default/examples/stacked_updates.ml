(* Stacked updates (paper §5.4): patching a previously-patched kernel.

     dune exec examples/stacked_updates.exe

   The second update's pre source is the previously-patched source, and
   run-pre matching compares its pre code against the first update's
   replacement code in module memory — not against the original kernel
   text. Undo unwinds in reverse order. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Apply = Ksplice.Apply
module Create = Ksplice.Create
module Machine = Kernel.Machine

let replace old_s new_s s =
  let rec find i =
    if i + String.length old_s > String.length s then
      failwith ("pattern not found: " ^ old_s)
    else if String.sub s i (String.length old_s) = old_s then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ new_s
  ^ String.sub s (i + String.length old_s)
      (String.length s - i - String.length old_s)

let edit tree path f = Tree.add tree path (f (Option.get (Tree.find tree path)))

let mk_update ~id ~from ~to_ =
  match
    Create.create
      { source = from; patch = Diff.diff_trees from to_; update_id = id;
        description = id }
  with
  | Ok c -> c.update
  | Error e -> Format.kasprintf failwith "create %s: %a" id Create.pp_error e

let () =
  print_endline "== stacked updates ==";
  let b = Corpus.Boot.boot () in
  let call name args =
    let sym = Option.get (Klink.Image.lookup_global b.image name) in
    match Machine.call_function b.machine ~addr:sym.addr ~args with
    | Ok v -> v
    | Error f -> Format.kasprintf failwith "%s: %a" name Machine.pp_fault f
  in
  let mgr = Apply.init b.machine in
  Printf.printf "boot:     sys_sched_nice(-30) = %ld\n"
    (call "sys_sched_nice" [ -30l ]);

  (* update 1: clamp floor to -10 *)
  let base = Corpus.Base_kernel.tree () in
  let tree1 =
    edit base "kernel/misc.c"
      (replace "static int nice_floor = -20;" "static int nice_floor = -20;")
  in
  let tree1 =
    edit tree1 "kernel/misc.c"
      (replace "  if (n < nice_floor)\n    n = nice_floor;"
         "  if (n < -10)\n    n = -10;")
  in
  let u1 = mk_update ~id:"nice-floor-1" ~from:base ~to_:tree1 in
  (match Apply.apply mgr u1 with
   | Ok _ -> ()
   | Error e -> Format.kasprintf failwith "apply u1: %a" Apply.pp_error e);
  Printf.printf "update 1: sys_sched_nice(-30) = %ld (floor now -10)\n"
    (call "sys_sched_nice" [ -30l ]);

  (* update 2 is a diff against the previously-patched source; its pre
     code is matched against update 1's replacement code *)
  let tree2 =
    edit tree1 "kernel/misc.c"
      (replace "  if (n < -10)\n    n = -10;" "  if (n < -5)\n    n = -5;")
  in
  let u2 = mk_update ~id:"nice-floor-2" ~from:tree1 ~to_:tree2 in
  (match Apply.apply mgr u2 with
   | Ok a ->
     List.iter
       (fun (r : Apply.replacement) ->
         Printf.printf
           "update 2: %s matched at %#x (inside update 1's module, not \
            kernel text)\n"
           r.r_fn r.r_old_addr)
       a.replacements
   | Error e -> Format.kasprintf failwith "apply u2: %a" Apply.pp_error e);
  Printf.printf "update 2: sys_sched_nice(-30) = %ld (floor now -5)\n"
    (call "sys_sched_nice" [ -30l ]);

  (* unwinding: only the top of the stack may be reversed *)
  (match Apply.undo mgr "nice-floor-1" with
   | Error (Apply.Not_topmost _) ->
     print_endline "undo:     refusing to undo update 1 while update 2 is live"
   | _ -> failwith "expected Not_topmost");
  (match Apply.undo mgr "nice-floor-2" with
   | Ok () -> ()
   | Error e -> Format.kasprintf failwith "undo u2: %a" Apply.pp_error e);
  Printf.printf "undo 2:   sys_sched_nice(-30) = %ld (back to -10)\n"
    (call "sys_sched_nice" [ -30l ]);
  (match Apply.undo mgr "nice-floor-1" with
   | Ok () -> ()
   | Error e -> Format.kasprintf failwith "undo u1: %a" Apply.pp_error e);
  Printf.printf "undo 1:   sys_sched_nice(-30) = %ld (original)\n"
    (call "sys_sched_nice" [ -30l ]);
  print_endline "done."
