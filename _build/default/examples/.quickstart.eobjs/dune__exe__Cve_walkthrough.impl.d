examples/cve_walkthrough.ml: Array Corpus Format Kernel Ksplice List Patchfmt Printf String Sys
