examples/shadow_update.ml: Corpus Format Kernel Ksplice Option Printf
