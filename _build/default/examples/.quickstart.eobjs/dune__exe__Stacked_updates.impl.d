examples/stacked_updates.ml: Corpus Format Kernel Klink Ksplice List Option Patchfmt Printf String
