examples/userspace_server.mli:
