examples/quickstart.mli:
