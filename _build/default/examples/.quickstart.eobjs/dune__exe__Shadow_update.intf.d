examples/shadow_update.mli:
