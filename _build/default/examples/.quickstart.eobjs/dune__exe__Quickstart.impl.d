examples/quickstart.ml: Format Kbuild Kernel Klink Ksplice List Minic Option Patchfmt Printf String
