examples/stacked_updates.mli:
