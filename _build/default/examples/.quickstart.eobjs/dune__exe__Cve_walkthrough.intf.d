examples/cve_walkthrough.mli:
