examples/userspace_server.ml: Format Int32 Kbuild Kernel Klink Ksplice Minic Option Patchfmt Printf
