(* Shadow data structures (paper §5.3): applying a patch whose upstream
   version adds a field to a struct.

     dune exec examples/shadow_update.exe

   CVE-2005-2709's mainline fix added a per-socket peer-uid field. A hot
   update cannot change the layout of live sock structs, so the
   Ksplice-adapted patch stores the new field in a shadow data structure
   (the DynAMOS method) and its ksplice_apply hook attaches shadows to
   every existing socket while the machine is stopped. *)

module Apply = Ksplice.Apply
module Create = Ksplice.Create
module Machine = Kernel.Machine

let syscall (b : Corpus.Boot.booted) nr args =
  match Corpus.Boot.syscall b ~uid:0 nr args with
  | Ok v -> v
  | Error f -> Format.kasprintf failwith "syscall faulted: %a" Machine.pp_fault f

let () =
  let cve = Option.get (Corpus.Cve.find "CVE-2005-2709") in
  Printf.printf "== %s ==\n%s\n\n" cve.id cve.desc;
  let b = Corpus.Boot.boot () in

  (* before: the kernel has no notion of a peer uid; option 4 is ENOSYS *)
  Printf.printf "before: sock_opt(2, SET_PEER, 42) = %ld (unknown option)\n"
    (syscall b Corpus.Base_kernel.Sys_nr.sock_opt [ 2l; 4l; 42l ]);

  let base = Corpus.Base_kernel.tree () in
  let { Create.update; _ } =
    match
      Create.create
        { source = base; patch = Corpus.Cve.hot_patch cve base;
          update_id = cve.id; description = cve.desc }
    with
    | Ok c -> c
    | Error e -> Format.kasprintf failwith "create: %a" Create.pp_error e
  in
  Printf.printf "custom update code: %d logical lines (hooks: attach \
                 shadows to the 8 live sockets)\n"
    (Corpus.Cve.custom_code_lines cve);

  let mgr = Apply.init b.machine in
  (match Apply.apply mgr update with
   | Ok _ -> print_endline "update applied; shadows attached under stop_machine"
   | Error e -> Format.kasprintf failwith "apply: %a" Apply.pp_error e);

  (* after: the new field works on sockets that existed before the update *)
  Printf.printf "after:  sock_opt(2, SET_PEER, 42) = %ld\n"
    (syscall b Corpus.Base_kernel.Sys_nr.sock_opt [ 2l; 4l; 42l ]);
  Printf.printf "        sock_opt(2, GET_PEER)     = %ld (stored in shadow)\n"
    (syscall b Corpus.Base_kernel.Sys_nr.sock_opt [ 2l; 5l; 0l ]);
  Printf.printf "        sock_opt(3, GET_PEER)     = %ld (other socket, \
                 default)\n"
    (syscall b Corpus.Base_kernel.Sys_nr.sock_opt [ 3l; 5l; 0l ]);

  (* reversing detaches the shadows *)
  (match Apply.undo mgr cve.id with
   | Ok () -> print_endline "update reversed; shadows detached"
   | Error e -> Format.kasprintf failwith "undo: %a" Apply.pp_error e);
  Printf.printf "restored: sock_opt(2, SET_PEER, 7) = %ld (unknown again)\n"
    (syscall b Corpus.Base_kernel.Sys_nr.sock_opt [ 2l; 4l; 7l ]);
  print_endline "done."
