test/test_corpus.ml: Alcotest Corpus Kbuild Kernel Ksplice List Minic Option Patchfmt String
