test/test_baseline.ml: Alcotest Corpus Kbuild Klink Ksplice List Minic Patchfmt Printf
