test/test_kbuild.ml: Alcotest Bytes Kbuild List Minic Objfile Option Patchfmt String
