test/test_ksplice.ml: Alcotest Bytes Kbuild Kernel Klink Ksplice List Minic Option Patchfmt String
