test/test_isa.ml: Alcotest Bytes List Printf QCheck2 QCheck_alcotest Vmisa
