test/test_repository.ml: Alcotest Array Filename Fun Kbuild Kernel Klink Ksplice List Minic Option Patchfmt String Sys
