test/test_frag_props.ml: Asm Bytes List Printf QCheck2 QCheck_alcotest Vmisa
