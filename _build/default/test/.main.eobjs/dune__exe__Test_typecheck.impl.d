test/test_typecheck.ml: Alcotest Bytes List Minic Option
