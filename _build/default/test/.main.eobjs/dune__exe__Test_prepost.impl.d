test/test_prepost.ml: Alcotest Bytes Ksplice Minic Objfile Patchfmt
