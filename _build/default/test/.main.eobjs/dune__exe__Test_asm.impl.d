test/test_asm.ml: Alcotest Asm Bytes Int32 List Objfile Option Printf Vmisa
