test/test_objdump.ml: Alcotest Asm Bytes Format List Minic Objfile String Vmisa
