test/test_minic.ml: Alcotest Char Int32 Kernel Klink List Minic Objfile Option Printf QCheck2 QCheck_alcotest String
