test/main.mli:
