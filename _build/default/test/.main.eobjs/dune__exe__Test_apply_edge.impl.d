test/test_apply_edge.ml: Alcotest Bytes Kbuild Kernel Klink Ksplice List Minic Option Patchfmt Printf String
