test/test_kernel.ml: Alcotest Asm Bytes Int32 Kernel Klink List Objfile Option Printf String Vmisa
