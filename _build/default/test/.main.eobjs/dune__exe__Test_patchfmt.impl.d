test/test_patchfmt.ml: Alcotest List Option Patchfmt Printf QCheck2 QCheck_alcotest String
