test/test_klink.ml: Alcotest Asm Bytes Int32 Kernel Klink List Minic Objfile Option String Vmisa
