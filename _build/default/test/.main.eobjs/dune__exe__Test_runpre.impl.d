test/test_runpre.ml: Alcotest Asm Bytes Hashtbl Int32 Ksplice List Objfile String Vmisa
