test/test_update_format.ml: Alcotest Bytes Corpus Ksplice Lazy List Objfile Option Printf
