test/test_objfile.ml: Alcotest Bytes Filename Fun Int32 List Objfile Option QCheck2 QCheck_alcotest Sys
