test/test_properties.ml: Buffer Hashtbl Int32 Kbuild Kernel Klink Ksplice List Minic Objfile Option Patchfmt Printf QCheck2 QCheck_alcotest String Vmisa
