(* Tests for the fragment assembler (jump relaxation, alignment padding,
   relocations) and the textual assembler (.s parsing, function-sections
   splitting). *)

module Isa = Vmisa.Isa
module Reloc = Objfile.Reloc
module Section = Objfile.Section
module Frag = Asm.Frag
module Assembler = Asm.Assembler

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let decode_all (b : Bytes.t) =
  let rec go pos acc =
    if pos >= Bytes.length b then List.rev acc
    else
      let i, len = Isa.decode_bytes b pos in
      go (pos + len) ((pos, i) :: acc)
  in
  go 0 []

let test_short_backward_jump () =
  let f = Frag.create () in
  Frag.label f "top";
  Frag.insn f (Isa.Add (Isa.R0, Isa.R1));
  Frag.jump f Isa.Cjmp "top";
  let img = Frag.assemble f ~text:true in
  match decode_all img.data with
  | [ (_, Isa.Add _); (3, Isa.Jmp_s d) ] ->
    check int_c "short backward disp" (-5) d
  | l ->
    Alcotest.failf "unexpected stream (%d insns)" (List.length l)

let test_short_forward_jump () =
  let f = Frag.create () in
  Frag.jump f Isa.Cjmp "end";
  Frag.insn f (Isa.Add (Isa.R0, Isa.R1));
  Frag.label f "end";
  Frag.insn f Isa.Ret;
  let img = Frag.assemble f ~text:true in
  match decode_all img.data with
  | [ (0, Isa.Jmp_s 3); (_, Isa.Add _); (_, Isa.Ret) ] -> ()
  | _ -> Alcotest.fail "expected short forward jump"

let test_long_jump_when_far () =
  let f = Frag.create () in
  Frag.jump f Isa.Cjmp "end";
  for _ = 1 to 100 do
    Frag.insn f (Isa.Add (Isa.R0, Isa.R1))
  done;
  Frag.label f "end";
  Frag.insn f Isa.Ret;
  let img = Frag.assemble f ~text:true in
  match decode_all img.data with
  | (0, Isa.Jmp 300l) :: _ -> ()
  | (_, i) :: _ ->
    Alcotest.failf "expected long jmp, got %s" (Isa.insn_to_string i)
  | [] -> Alcotest.fail "empty"

let test_call_never_short () =
  let f = Frag.create () in
  Frag.label f "fn";
  Frag.jump f Isa.Ccall "fn";
  let img = Frag.assemble f ~text:true in
  match decode_all img.data with
  | [ (0, Isa.Call (-5l)) ] -> ()
  | _ -> Alcotest.fail "expected long call"

let test_undefined_target () =
  let f = Frag.create () in
  Frag.jump f Isa.Cjmp "nowhere";
  check bool_c "undefined target raises" true
    (try
       ignore (Frag.assemble f ~text:true);
       false
     with Frag.Error _ -> true)

let test_align_pads_with_nops () =
  let f = Frag.create () in
  Frag.insn f Isa.Ret;
  Frag.align f 4;
  Frag.label f "next";
  Frag.insn f Isa.Ret;
  let img = Frag.assemble f ~text:true in
  check int_c "aligned label" 4 (List.assoc "next" img.labels);
  match decode_all img.data with
  | [ (0, Isa.Ret); (1, Isa.Nop 3); (4, Isa.Ret) ] -> ()
  | _ -> Alcotest.fail "expected nop3 padding"

let test_align_various_gaps () =
  (* gap of 1 and 2 exercise nop1/nop2 padding *)
  List.iter
    (fun (pre, expect_nops) ->
      let f = Frag.create () in
      for _ = 1 to pre do
        Frag.insn f Isa.Ret
      done;
      Frag.align f 4;
      Frag.insn f Isa.Hlt;
      let img = Frag.assemble f ~text:true in
      let nops =
        decode_all img.data
        |> List.filter (fun (_, i) -> Isa.is_nop i)
        |> List.map (fun (_, i) -> match i with Isa.Nop n -> n | _ -> 0)
      in
      check (Alcotest.list int_c)
        (Printf.sprintf "padding after %d bytes" pre)
        expect_nops nops)
    [ (3, [ 1 ]); (2, [ 2 ]); (1, [ 3 ]); (4, []) ]

let test_insn_reloc_and_word_reloc () =
  let f = Frag.create () in
  Frag.insn_reloc f (Isa.Mov_ri (Isa.R0, 0l)) Reloc.Abs32 "counter" 0l;
  Frag.jump_reloc f Isa.Ccall "helper";
  Frag.word_reloc f "table" 8l;
  let img = Frag.assemble f ~text:true in
  check int_c "three relocs" 3 (List.length img.relocs);
  let r0 = List.nth img.relocs 0 in
  check int_c "mov imm field offset" 2 r0.Reloc.offset;
  check bool_c "mov reloc kind" true (r0.kind = Reloc.Abs32);
  let r1 = List.nth img.relocs 1 in
  check int_c "call disp field offset" 7 r1.Reloc.offset;
  check bool_c "call reloc kind" true (r1.kind = Reloc.Pc32);
  check bool_c "call addend -4" true (Int32.equal r1.addend (-4l));
  let r2 = List.nth img.relocs 2 in
  check int_c "word reloc offset" 11 r2.Reloc.offset;
  check bool_c "word addend" true (Int32.equal r2.addend 8l)

let test_duplicate_label () =
  let f = Frag.create () in
  Frag.label f "x";
  check bool_c "duplicate label rejected" true
    (try
       Frag.label f "x";
       false
     with Invalid_argument _ -> true)

(* --- textual assembler --- *)

let entry_src =
  {|
; syscall entry stub
.text
.global syscall_entry
syscall_entry:
  cmpi r0, 32
  jge .Lbad
  push r3
  push r2
  push r1
  mov r4, sys_call_table
  mov r5, r0
  mov r6, 4
  mul r5, r6
  add r4, r5
  loadw r4, [r4+0]
  callr r4
  pop r1
  pop r2
  pop r3
  ret
.Lbad:
  mov r0, -1
  ret

.data
.global sys_call_table
sys_call_table:
  .word sys_getpid
  .word sys_write
.bss
.global scratch
scratch:
  .space 32
|}

let test_assemble_entry () =
  let o =
    Assembler.assemble ~unit_name:"entry.s" ~function_sections:false entry_src
  in
  check bool_c "has .text" true (Option.is_some (Objfile.find_section o ".text"));
  check bool_c "has .data" true (Option.is_some (Objfile.find_section o ".data"));
  check bool_c "has .bss" true (Option.is_some (Objfile.find_section o ".bss"));
  let sym =
    match Objfile.find_symbol o "syscall_entry" with
    | Some s -> s
    | None -> Alcotest.fail "syscall_entry symbol missing"
  in
  check bool_c "global binding" true (sym.binding = Objfile.Symbol.Global);
  check bool_c "func kind" true (sym.kind = `Func);
  let data = Option.get (Objfile.find_section o ".data") in
  check int_c "two table relocs" 2 (List.length data.relocs);
  check bool_c "undefined syscalls" true
    (List.sort compare (Objfile.undefined_symbols o)
     = [ "sys_getpid"; "sys_write" ]);
  let bss = Option.get (Objfile.find_section o ".bss") in
  check int_c "bss size" 32 bss.size

let test_assemble_decodes () =
  let o =
    Assembler.assemble ~unit_name:"entry.s" ~function_sections:false entry_src
  in
  let text = Option.get (Objfile.find_section o ".text") in
  (* every byte of .text decodes as instructions *)
  let insns = decode_all text.data in
  check bool_c "stream nonempty" true (List.length insns > 10);
  check bool_c "ends with ret" true
    (match List.rev insns with (_, Isa.Ret) :: _ -> true | _ -> false)

let test_function_sections_split () =
  let src = {|
.text
.global f
f:
  ret
.global g
g:
  call f
  ret
|} in
  let o = Assembler.assemble ~unit_name:"two.s" ~function_sections:true src in
  check bool_c "has .text.f" true
    (Option.is_some (Objfile.find_section o ".text.f"));
  check bool_c "has .text.g" true
    (Option.is_some (Objfile.find_section o ".text.g"));
  (* cross-function call becomes a relocation *)
  let g = Option.get (Objfile.find_section o ".text.g") in
  check int_c "call f is relocated" 1 (List.length g.relocs);
  check bool_c "reloc sym" true ((List.hd g.relocs).Reloc.sym = "f")

let test_single_section_resolves_calls () =
  let src = {|
.text
.global f
f:
  ret
.global g
g:
  call f
  ret
|} in
  let o = Assembler.assemble ~unit_name:"two.s" ~function_sections:false src in
  let text = Option.get (Objfile.find_section o ".text") in
  check int_c "no relocs when resolved" 0 (List.length text.relocs);
  (* the call must point back to f at offset 0 *)
  let insns = decode_all text.data in
  let call =
    List.find_map
      (fun (pos, i) -> match i with Isa.Call d -> Some (pos, d) | _ -> None)
      insns
  in
  match call with
  | Some (pos, d) -> check int_c "resolved call target" 0 (pos + 5 + Int32.to_int d)
  | None -> Alcotest.fail "no call found"

let test_syntax_error_line () =
  let src = ".text\nfoo:\n  bogus r0\n" in
  check bool_c "error carries line" true
    (try
       ignore (Assembler.assemble ~unit_name:"x.s" ~function_sections:false src);
       false
     with Assembler.Error { line = 3; _ } -> true)

let test_asciz_and_rodata () =
  let src = ".rodata\nmsg:\n  .asciz \"hi\"\n" in
  let o = Assembler.assemble ~unit_name:"s.s" ~function_sections:false src in
  let ro = Option.get (Objfile.find_section o ".rodata") in
  check bool_c "rodata kind" true (ro.kind = Section.Rodata);
  check bool_c "nul terminated" true (Bytes.to_string ro.data = "hi\000")

let suite =
  [
    ( "frag",
      [
        Alcotest.test_case "short backward jump" `Quick test_short_backward_jump;
        Alcotest.test_case "short forward jump" `Quick test_short_forward_jump;
        Alcotest.test_case "long jump when far" `Quick test_long_jump_when_far;
        Alcotest.test_case "call never short" `Quick test_call_never_short;
        Alcotest.test_case "undefined target" `Quick test_undefined_target;
        Alcotest.test_case "align pads with nops" `Quick
          test_align_pads_with_nops;
        Alcotest.test_case "align gap widths" `Quick test_align_various_gaps;
        Alcotest.test_case "relocations" `Quick test_insn_reloc_and_word_reloc;
        Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
      ] );
    ( "assembler",
      [
        Alcotest.test_case "assemble entry stub" `Quick test_assemble_entry;
        Alcotest.test_case "text decodes fully" `Quick test_assemble_decodes;
        Alcotest.test_case "function-sections split" `Quick
          test_function_sections_split;
        Alcotest.test_case "single-section resolves calls" `Quick
          test_single_section_resolves_calls;
        Alcotest.test_case "syntax error line" `Quick test_syntax_error_line;
        Alcotest.test_case "asciz rodata" `Quick test_asciz_and_rodata;
      ] );
  ]
