(* Tests for source trees and unified diffs: generation, parsing,
   application, round-trip properties and statistics. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let tree1 =
  Tree.of_list
    [
      ("kernel/sched.c", "int a;\nint b;\nvoid f() {\n  a = 1;\n}\n");
      ("kernel/fs.c", "int open() {\n  return 0;\n}\n");
    ]

let test_tree_basics () =
  check (Alcotest.list string_c) "files sorted"
    [ "kernel/fs.c"; "kernel/sched.c" ]
    (Tree.files tree1);
  check bool_c "mem" true (Tree.mem tree1 "kernel/fs.c");
  check bool_c "find" true
    (Tree.find tree1 "kernel/none" = None);
  let t2 = Tree.add tree1 "new.c" "x\n" in
  check bool_c "add" true (Tree.mem t2 "new.c");
  check bool_c "remove" false (Tree.mem (Tree.remove t2 "new.c") "new.c");
  check bool_c "original untouched" false (Tree.mem tree1 "new.c")

let test_tree_lines () =
  check
    (Alcotest.option (Alcotest.list string_c))
    "lines drop trailing newline"
    (Some [ "int a;"; "int b;"; "void f() {"; "  a = 1;"; "}" ])
    (Tree.lines tree1 "kernel/sched.c")

let test_tree_digest () =
  let t2 = Tree.add tree1 "kernel/sched.c" "changed\n" in
  check bool_c "digest changes" false
    (String.equal (Tree.digest tree1) (Tree.digest t2));
  check string_c "digest stable" (Tree.digest tree1) (Tree.digest tree1)

let test_diff_empty () =
  check int_c "no self-diff" 0 (List.length (Diff.diff_trees tree1 tree1))

let test_diff_apply_roundtrip () =
  let modified =
    Tree.add tree1 "kernel/sched.c"
      "int a;\nint b;\nvoid f() {\n  if (b > 0)\n    a = 2;\n}\n"
  in
  let patch = Diff.diff_trees tree1 modified in
  check int_c "one file changed" 1 (List.length patch);
  match Diff.apply patch tree1 with
  | Ok t -> check bool_c "roundtrip" true (Tree.equal t modified)
  | Error e -> Alcotest.fail e

let test_diff_create_delete () =
  let modified =
    Tree.add (Tree.remove tree1 "kernel/fs.c") "kernel/new.c" "int x;\n"
  in
  let patch = Diff.diff_trees tree1 modified in
  check int_c "two file diffs" 2 (List.length patch);
  match Diff.apply patch tree1 with
  | Ok t -> check bool_c "create+delete roundtrip" true (Tree.equal t modified)
  | Error e -> Alcotest.fail e

let test_parse_roundtrip () =
  let modified =
    Tree.add tree1 "kernel/fs.c" "int open() {\n  return -1;\n}\n"
  in
  let patch = Diff.diff_trees tree1 modified in
  let text = Diff.to_string patch in
  match Diff.parse text with
  | Error e -> Alcotest.fail e
  | Ok patch' -> (
    check string_c "reprint equal" text (Diff.to_string patch');
    match Diff.apply patch' tree1 with
    | Ok t -> check bool_c "parsed patch applies" true (Tree.equal t modified)
    | Error e -> Alcotest.fail e)

let test_apply_with_offset () =
  (* the patch context matches at a shifted position *)
  let base = Tree.of_list [ ("f.c", "a\nb\nc\nd\ne\n") ] in
  let changed = Tree.of_list [ ("f.c", "a\nb\nc\nD\ne\n") ] in
  let patch = Diff.diff_trees base changed in
  (* prepend two lines so the stated hunk position is stale *)
  let shifted = Tree.of_list [ ("f.c", "x\ny\na\nb\nc\nd\ne\n") ] in
  match Diff.apply patch shifted with
  | Ok t ->
    check string_c "applied with offset" "x\ny\na\nb\nc\nD\ne\n"
      (Option.get (Tree.find t "f.c"))
  | Error e -> Alcotest.fail e

let test_apply_reject () =
  let base = Tree.of_list [ ("f.c", "a\nb\nc\n") ] in
  let changed = Tree.of_list [ ("f.c", "a\nB\nc\n") ] in
  let patch = Diff.diff_trees base changed in
  let other = Tree.of_list [ ("f.c", "1\n2\n3\n") ] in
  match Diff.apply patch other with
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error e -> check bool_c "error names file" true (String.length e > 0)

let test_stats () =
  let modified =
    Tree.add
      (Tree.add tree1 "kernel/sched.c"
         "int a;\nint b;\nint c;\nvoid f() {\n  a = 2;\n}\n")
      "kernel/fs.c" "int open() {\n  return 1;\n}\n"
  in
  let patch = Diff.diff_trees tree1 modified in
  let s = Diff.stats patch in
  check int_c "files" 2 s.files;
  (* sched.c: +int c; and a=1 -> a=2 (one del one add); fs.c: return line *)
  check int_c "added" 3 s.added;
  check int_c "removed" 2 s.removed;
  check int_c "changed" 5 s.changed

let test_changed_files () =
  let modified = Tree.add tree1 "kernel/fs.c" "int open();\n" in
  let patch = Diff.diff_trees tree1 modified in
  check (Alcotest.list string_c) "changed files" [ "kernel/fs.c" ]
    (Diff.changed_files patch)

(* Property: diff + apply is the identity transformation on trees. *)
let prop_diff_apply =
  let open QCheck2.Gen in
  let line = oneofl [ "a"; "b"; "c"; "x = 1;"; "return 0;"; "}" ] in
  let file = map (fun ls -> String.concat "\n" ls ^ "\n")
      (list_size (int_range 1 30) line) in
  let tree =
    map
      (fun fs ->
        Tree.of_list (List.mapi (fun i f -> (Printf.sprintf "f%d.c" i, f)) fs))
      (list_size (int_range 1 4) file)
  in
  QCheck2.Test.make ~name:"diff/apply roundtrip on random trees" ~count:100
    (tup2 tree tree) (fun (a, b) ->
      match Diff.apply (Diff.diff_trees a b) a with
      | Ok b' -> Tree.equal b b'
      | Error _ -> false)

(* Property: parse(to_string(diff)) applies identically. *)
let prop_parse_roundtrip =
  let open QCheck2.Gen in
  let line = oneofl [ "aa"; "bb"; "cc"; "dd"; "ee"; "ff" ] in
  let file = map (fun ls -> String.concat "\n" ls ^ "\n")
      (list_size (int_range 1 25) line) in
  QCheck2.Test.make ~name:"diff text parse roundtrip" ~count:100
    (tup2 file file) (fun (a, b) ->
      let ta = Tree.of_list [ ("x.c", a) ] in
      let tb = Tree.of_list [ ("x.c", b) ] in
      let d = Diff.diff_trees ta tb in
      match Diff.parse (Diff.to_string d) with
      | Error _ -> false
      | Ok d' -> (
        match Diff.apply d' ta with
        | Ok tb' -> Tree.equal tb tb'
        | Error _ -> false))

let suite =
  [
    ( "patchfmt",
      [
        Alcotest.test_case "tree basics" `Quick test_tree_basics;
        Alcotest.test_case "tree lines" `Quick test_tree_lines;
        Alcotest.test_case "tree digest" `Quick test_tree_digest;
        Alcotest.test_case "self diff empty" `Quick test_diff_empty;
        Alcotest.test_case "diff/apply roundtrip" `Quick
          test_diff_apply_roundtrip;
        Alcotest.test_case "create and delete" `Quick test_diff_create_delete;
        Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
        Alcotest.test_case "apply with offset" `Quick test_apply_with_offset;
        Alcotest.test_case "apply rejects mismatch" `Quick test_apply_reject;
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "changed files" `Quick test_changed_files;
        QCheck_alcotest.to_alcotest prop_diff_apply;
        QCheck_alcotest.to_alcotest prop_parse_roundtrip;
      ] );
  ]
