(* Tests for the KVX-32 ISA: encode/decode round-trips, lengths,
   classification helpers, and decode robustness. *)

module Isa = Vmisa.Isa

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let all_regs = [ Isa.R0; R1; R2; R3; R4; R5; R6; R7; SP ]
let all_conds = [ Isa.Eq; Ne; Lt; Ge; Gt; Le ]

(* A representative instruction of every constructor. *)
let sample_insns =
  let open Isa in
  [
    Hlt; Nop 1; Nop 2; Nop 3;
    Mov_rr (R0, R1); Mov_ri (R3, 0xdeadbeefl);
    Load (W32, R0, R6, -8); Load (W8, R2, SP, 12); Load (W16, R1, R4, 0);
    Store (W32, R6, -12, R0); Store (W8, SP, 3, R7); Store (W16, R1, 100, R2);
    Load_abs (W32, R5, 0x101234l); Load_abs (W8, R0, 1l);
    Load_abs (W16, R1, 0x7fffffffl);
    Store_abs (W32, 0x200000l, R3); Store_abs (W8, 0l, R0);
    Store_abs (W16, 16l, R7);
    Add (R0, R1); Sub (R2, R3); Mul (R4, R5); Div (R6, R7); Mod (R0, R7);
    And (R1, R1); Or (R2, R0); Xor (R3, R3); Shl (R0, R1); Shr (R1, R2);
    Sar (R2, R3);
    Addi (SP, -16l); Cmp (R0, R1); Cmpi (R0, 255l); Neg R4; Not R5;
    Setcc (Eq, R0); Setcc (Le, R7);
    Jmp 1024l; Jmp (-5l); Jmp_s 4; Jmp_s (-128);
    Jcc (Eq, 300l); Jcc (Le, -300l); Jcc_s (Ne, 127); Jcc_s (Gt, -2);
    Call 0x4000l; Call (-100l); Call_r R1; Ret;
    Push R6; Pop R6;
    Sext8 R0; Sext16 R1; Zext8 R2; Zext16 R3;
    Int 0x80; Int 0;
  ]

let test_roundtrip () =
  List.iter
    (fun i ->
      let b = Isa.encode_to_bytes i in
      check int_c
        (Printf.sprintf "length of %s" (Isa.insn_to_string i))
        (Isa.length i) (Bytes.length b);
      let i', len = Isa.decode_bytes b 0 in
      check bool_c
        (Printf.sprintf "roundtrip %s" (Isa.insn_to_string i))
        true (i = i');
      check int_c "decoded length" (Bytes.length b) len)
    sample_insns

let test_roundtrip_all_regs () =
  List.iter
    (fun r ->
      List.iter
        (fun r2 ->
          let i = Isa.Mov_rr (r, r2) in
          let i', _ = Isa.decode_bytes (Isa.encode_to_bytes i) 0 in
          check bool_c "mov regs roundtrip" true (i = i'))
        all_regs)
    all_regs

let test_roundtrip_all_conds () =
  List.iter
    (fun c ->
      List.iter
        (fun i ->
          let i', _ = Isa.decode_bytes (Isa.encode_to_bytes i) 0 in
          check bool_c "cond roundtrip" true (i = i'))
        [ Isa.Jcc (c, 77l); Isa.Jcc_s (c, -77); Isa.Setcc (c, Isa.R3) ])
    all_conds

let test_decode_error () =
  let b = Bytes.make 4 '\xff' in
  Alcotest.check_raises "bad opcode" (Isa.Decode_error 0) (fun () ->
      ignore (Isa.decode_bytes b 0))

let test_truncated () =
  (* A Mov_ri is 6 bytes; give only 3. *)
  let full = Isa.encode_to_bytes (Isa.Mov_ri (Isa.R0, 0x11223344l)) in
  let b = Bytes.sub full 0 3 in
  check bool_c "truncated raises" true
    (try
       ignore (Isa.decode_bytes b 0);
       false
     with Isa.Decode_error _ -> true)

let test_nop_recognition () =
  check bool_c "nop1" true (Isa.is_nop (Isa.Nop 1));
  check bool_c "nop3" true (Isa.is_nop (Isa.Nop 3));
  check bool_c "ret is not nop" false (Isa.is_nop Isa.Ret);
  check bool_c "mov is not nop" false (Isa.is_nop (Isa.Mov_rr (R0, R0)))

let test_pc_rel () =
  (match Isa.pc_rel (Isa.Jmp 10l) with
   | Some (Isa.Cjmp, 10, 1, 4) -> ()
   | _ -> Alcotest.fail "jmp pc_rel");
  (match Isa.pc_rel (Isa.Jcc_s (Isa.Ne, -3)) with
   | Some (Isa.Cjcc Isa.Ne, -3, 1, 1) -> ()
   | _ -> Alcotest.fail "jccs pc_rel");
  (match Isa.pc_rel (Isa.Call 0l) with
   | Some (Isa.Ccall, 0, 1, 4) -> ()
   | _ -> Alcotest.fail "call pc_rel");
  check bool_c "add has no pc_rel" true (Isa.pc_rel (Isa.Add (R0, R1)) = None)

let test_same_shape () =
  check bool_c "short/long jmp same shape" true
    (Isa.same_shape (Isa.Jmp 500l) (Isa.Jmp_s 4));
  check bool_c "jcc same cond same shape" true
    (Isa.same_shape (Isa.Jcc (Isa.Lt, 0l)) (Isa.Jcc_s (Isa.Lt, 1)));
  check bool_c "jcc different cond differ" false
    (Isa.same_shape (Isa.Jcc (Isa.Lt, 0l)) (Isa.Jcc (Isa.Gt, 0l)));
  check bool_c "call vs jmp differ" false
    (Isa.same_shape (Isa.Call 0l) (Isa.Jmp 0l));
  check bool_c "identical alu" true
    (Isa.same_shape (Isa.Add (R0, R1)) (Isa.Add (R0, R1)));
  check bool_c "different alu regs differ" false
    (Isa.same_shape (Isa.Add (R0, R1)) (Isa.Add (R0, R2)))

let test_with_disp () =
  check bool_c "with_disp jmp" true (Isa.with_disp (Isa.Jmp 0l) 42 = Isa.Jmp 42l);
  check bool_c "with_disp short ok" true
    (Isa.with_disp (Isa.Jmp_s 0) 100 = Isa.Jmp_s 100);
  Alcotest.check_raises "with_disp short overflow"
    (Invalid_argument "Isa.with_disp: short jump overflow") (fun () ->
      ignore (Isa.with_disp (Isa.Jmp_s 0) 1000))

let test_imm_field () =
  check bool_c "mov_ri imm field" true
    (Isa.imm_field (Isa.Mov_ri (R0, 0l)) = Some (2, 4));
  check bool_c "store_abs imm field" true
    (Isa.imm_field (Isa.Store_abs (Isa.W32, 0l, R0)) = Some (1, 4));
  check bool_c "ret no imm field" true (Isa.imm_field Isa.Ret = None)

let test_encode_offsets () =
  (* encode at a nonzero position *)
  let b = Bytes.make 16 '\xAA' in
  let n = Isa.encode b 5 (Isa.Addi (Isa.SP, -4l)) in
  check int_c "written length" 6 n;
  let i, _ = Isa.decode_bytes b 5 in
  check bool_c "decode at offset" true (i = Isa.Addi (Isa.SP, -4l))

let test_short_jump_bounds () =
  Alcotest.check_raises "encode short overflow"
    (Invalid_argument "Isa.encode: short jump overflow") (fun () ->
      ignore (Isa.encode_to_bytes (Isa.Jmp_s 200)))

(* Property: decoding any sample instruction sequence recovers it. *)
let prop_stream_roundtrip =
  let gen =
    QCheck2.Gen.(list_size (int_range 1 40) (oneofl sample_insns))
  in
  QCheck2.Test.make ~name:"instruction stream roundtrip" ~count:200 gen
    (fun insns ->
      let total = List.fold_left (fun a i -> a + Isa.length i) 0 insns in
      let buf = Bytes.create total in
      let _ =
        List.fold_left (fun pos i -> pos + Isa.encode buf pos i) 0 insns
      in
      let rec decode_all pos acc =
        if pos >= total then List.rev acc
        else
          let i, len = Isa.decode_bytes buf pos in
          decode_all (pos + len) (i :: acc)
      in
      decode_all 0 [] = insns)

let suite =
  [
    ( "isa",
      [
        Alcotest.test_case "roundtrip samples" `Quick test_roundtrip;
        Alcotest.test_case "roundtrip all regs" `Quick test_roundtrip_all_regs;
        Alcotest.test_case "roundtrip all conds" `Quick
          test_roundtrip_all_conds;
        Alcotest.test_case "decode error" `Quick test_decode_error;
        Alcotest.test_case "truncated decode" `Quick test_truncated;
        Alcotest.test_case "nop recognition" `Quick test_nop_recognition;
        Alcotest.test_case "pc_rel classification" `Quick test_pc_rel;
        Alcotest.test_case "same_shape equivalence" `Quick test_same_shape;
        Alcotest.test_case "with_disp" `Quick test_with_disp;
        Alcotest.test_case "imm_field" `Quick test_imm_field;
        Alcotest.test_case "encode at offset" `Quick test_encode_offsets;
        Alcotest.test_case "short jump bounds" `Quick test_short_jump_bounds;
        QCheck_alcotest.to_alcotest prop_stream_roundtrip;
      ] );
  ]
