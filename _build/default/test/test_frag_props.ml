(* Property tests for the fragment assembler: relaxation correctness
   (every emitted jump lands on its label under any layout), alignment
   invariants, and decode round-trips of random instruction streams. *)

module Isa = Vmisa.Isa
module Frag = Asm.Frag

(* random straight-line instructions that carry no labels *)
let plain_insns =
  [ Isa.Mov_rr (Isa.R0, Isa.R1); Isa.Add (Isa.R2, Isa.R3);
    Isa.Addi (Isa.R4, 9l); Isa.Push Isa.R5; Isa.Pop Isa.R5;
    Isa.Load (Isa.W32, Isa.R0, Isa.R6, 4); Isa.Cmpi (Isa.R0, 3l);
    Isa.Neg Isa.R1; Isa.Sext8 Isa.R0 ]

(* a fragment program: labelled blocks of filler with jumps between them *)
type block = {
  fill : int list;  (* indices into plain_insns *)
  jump_to : int option;  (* target block id *)
  cond : bool;
  aligned : bool;
}

let gen_blocks =
  let open QCheck2.Gen in
  let block n_blocks =
    map4
      (fun fill target cond aligned ->
        { fill; jump_to = target; cond; aligned })
      (list_size (int_range 0 20) (int_range 0 (List.length plain_insns - 1)))
      (oneof [ return None; map (fun t -> Some t) (int_range 0 (n_blocks - 1)) ])
      bool bool
  in
  int_range 2 6 >>= fun n -> list_repeat n (block n)

let build_frag blocks =
  let f = Frag.create () in
  List.iteri
    (fun i b ->
      if b.aligned then Frag.align f 8;
      Frag.label f (Printf.sprintf "B%d" i);
      List.iter (fun k -> Frag.insn f (List.nth plain_insns k)) b.fill;
      match b.jump_to with
      | Some t ->
        let target = Printf.sprintf "B%d" t in
        if b.cond then Frag.jump f (Isa.Cjcc Isa.Ne) target
        else Frag.jump f Isa.Cjmp target
      | None -> ())
    blocks;
  f

(* decode the assembled image and verify every jump's resolved target is a
   label position *)
let check_jumps (img : Frag.image) =
  let label_offsets = List.map snd img.labels in
  let ok = ref true in
  let pos = ref 0 in
  while !pos < Bytes.length img.data do
    let insn, len = Isa.decode_bytes img.data !pos in
    (match Isa.pc_rel insn with
     | Some (_, disp, _, _) ->
       let target = !pos + len + disp in
       if not (List.mem target label_offsets) then ok := false
     | None -> ());
    pos := !pos + len
  done;
  !ok

let prop_jumps_land_on_labels =
  QCheck2.Test.make ~name:"relaxed jumps land exactly on their labels"
    ~count:200 gen_blocks (fun blocks ->
      let f = build_frag blocks in
      let img = Frag.assemble f ~text:true in
      check_jumps img)

let prop_alignment_honoured =
  QCheck2.Test.make ~name:"aligned labels are 8-byte aligned" ~count:200
    gen_blocks (fun blocks ->
      let f = build_frag blocks in
      let img = Frag.assemble f ~text:true in
      List.for_all2
        (fun b (_, off) -> (not b.aligned) || off mod 8 = 0)
        blocks img.labels)

let prop_stream_decodes =
  QCheck2.Test.make ~name:"assembled text decodes end to end" ~count:200
    gen_blocks (fun blocks ->
      let f = build_frag blocks in
      let img = Frag.assemble f ~text:true in
      let rec go pos =
        if pos = Bytes.length img.data then true
        else if pos > Bytes.length img.data then false
        else
          match Isa.decode_bytes img.data pos with
          | _, len -> go (pos + len)
          | exception Isa.Decode_error _ -> false
      in
      go 0)

let prop_deterministic =
  QCheck2.Test.make ~name:"assembly is deterministic" ~count:100 gen_blocks
    (fun blocks ->
      let a = Frag.assemble (build_frag blocks) ~text:true in
      let b = Frag.assemble (build_frag blocks) ~text:true in
      Bytes.equal a.data b.data && a.labels = b.labels)

let suite =
  [
    ( "frag-props",
      [
        QCheck_alcotest.to_alcotest prop_jumps_land_on_labels;
        QCheck_alcotest.to_alcotest prop_alignment_honoured;
        QCheck_alcotest.to_alcotest prop_stream_decodes;
        QCheck_alcotest.to_alcotest prop_deterministic;
      ] );
  ]
