(* Tests for the update-distribution repository (§8 future work):
   publishing chained updates, pending computation, and a subscriber
   syncing a live kernel through multiple hops. *)

module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Repo = Ksplice.Repository
module Apply = Ksplice.Apply
module Create = Ksplice.Create
module Image = Klink.Image
module Machine = Kernel.Machine

let t name f = Alcotest.test_case name `Quick f

let base_tree =
  Tree.of_list
    [ ( "kernel/k.c",
        "int level = 1;\n\
         int probe(int x) {\n\
        \  int acc = 0;\n\
        \  int i;\n\
        \  for (i = 0; i < x; i = i + 1)\n\
        \    acc = acc + level;\n\
        \  return acc;\n\
         }\n" ) ]

let replace old_s new_s s =
  let rec find i =
    if i + String.length old_s > String.length s then
      Alcotest.failf "pattern %S not found" old_s
    else if String.sub s i (String.length old_s) = old_s then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub s 0 i ^ new_s
  ^ String.sub s (i + String.length old_s)
      (String.length s - i - String.length old_s)

let edit tree f =
  Tree.add tree "kernel/k.c" (f (Option.get (Tree.find tree "kernel/k.c")))

let mk_update ~id ~from ~to_ =
  match
    Create.create
      { source = from; patch = Diff.diff_trees from to_; update_id = id;
        description = id }
  with
  | Ok c -> c.update
  | Error e -> Alcotest.failf "create %s: %a" id Create.pp_error e

let with_repo f =
  let dir = Filename.temp_file "ksplrepo" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun e -> Sys.remove (Filename.concat dir e))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f (Repo.open_dir dir))

(* three successive source states *)
let tree1 =
  edit base_tree (replace "acc = acc + level;" "acc = acc + level + 1;")

let tree2 = edit tree1 (replace "int level = 1;" "int level = 1;\nint spare;")

let publish_chain repo =
  let u1 = mk_update ~id:"hop-1" ~from:base_tree ~to_:tree1 in
  let u2 = mk_update ~id:"hop-2" ~from:tree1 ~to_:tree2 in
  let e1 =
    Repo.publish repo ~source:base_tree
      ~patch:(Diff.diff_trees base_tree tree1) ~update:u1
  in
  let e2 =
    Repo.publish repo ~source:tree1 ~patch:(Diff.diff_trees tree1 tree2)
      ~update:u2
  in
  (e1, e2)

let test_publish_and_pending () =
  with_repo (fun repo ->
      let e1, e2 = publish_chain repo in
      Alcotest.(check string) "chain links" e1.next_digest e2.base_digest;
      let chain = Repo.pending repo ~digest:(Tree.digest base_tree) in
      Alcotest.(check (list string))
        "two pending from base" [ "hop-1"; "hop-2" ]
        (List.map (fun (e : Repo.entry) -> e.update.Ksplice.Update.update_id) chain);
      Alcotest.(check int)
        "one pending from tree1" 1
        (List.length (Repo.pending repo ~digest:(Tree.digest tree1)));
      Alcotest.(check int)
        "up to date at tree2" 0
        (List.length (Repo.pending repo ~digest:(Tree.digest tree2))))

let test_duplicate_publish_rejected () =
  with_repo (fun repo ->
      let _ = publish_chain repo in
      let u = mk_update ~id:"dup" ~from:base_tree ~to_:tree1 in
      try
        ignore
          (Repo.publish repo ~source:base_tree
             ~patch:(Diff.diff_trees base_tree tree1) ~update:u);
        Alcotest.fail "expected Repo_error"
      with Repo.Repo_error _ -> ())

let test_subscriber_sync () =
  with_repo (fun repo ->
      let _ = publish_chain repo in
      (* boot a kernel from the base source and subscribe *)
      let build = Kbuild.build_tree ~options:Minic.Driver.run_build base_tree in
      let img = Image.link ~base:0x100000 (Kbuild.objects build) in
      let m = Machine.create img in
      let mgr = Apply.init m in
      let call () =
        let sym = Option.get (Image.lookup_global img "probe") in
        match Machine.call_function m ~addr:sym.addr ~args:[ 4l ] with
        | Ok v -> v
        | Error f -> Alcotest.failf "probe: %a" Machine.pp_fault f
      in
      Alcotest.(check int32) "before sync" 4l (call ());
      (match Repo.sync repo mgr ~source:base_tree with
       | Ok r ->
         Alcotest.(check (list string))
           "both hops applied" [ "hop-1"; "hop-2" ]
           r.applied;
         Alcotest.(check string) "source advanced"
           (Tree.digest tree2)
           (Tree.digest r.new_source)
       | Error e -> Alcotest.fail e);
      (* hop-1 changed the loop body: probe(4) = 4 * (level+1) = 8 *)
      Alcotest.(check int32) "after sync" 8l (call ());
      (* second sync is a no-op *)
      match Repo.sync repo mgr ~source:tree2 with
      | Ok { applied = []; _ } -> ()
      | Ok _ -> Alcotest.fail "expected no pending updates"
      | Error e -> Alcotest.fail e)

let test_entry_roundtrip_on_disk () =
  with_repo (fun repo ->
      let e1, _ = publish_chain repo in
      (* a fresh handle must read back the same chain *)
      let chain = Repo.pending repo ~digest:e1.base_digest in
      Alcotest.(check int) "read back" 2 (List.length chain);
      let e = List.hd chain in
      Alcotest.(check string) "patch preserved" e.patch_text e1.patch_text)

let suite =
  [
    ( "repository",
      [
        t "publish and pending" test_publish_and_pending;
        t "duplicate publish rejected" test_duplicate_publish_rejected;
        t "subscriber sync" test_subscriber_sync;
        t "entry roundtrip" test_entry_roundtrip_on_disk;
      ] );
  ]
