(* Direct typechecker tests: struct layout (sizes, alignment, field
   offsets), the lowering invariants the code generator relies on, and
   error coverage for each class of type error. *)

module Tc = Minic.Typecheck
module Ast = Minic.Ast

let t name f = Alcotest.test_case name `Quick f
let int_c = Alcotest.int

let structs =
  [
    ("pair", [ (Ast.Int, "a"); (Ast.Int, "b") ]);
    ("mixed", [ (Ast.Char, "c"); (Ast.Int, "i"); (Ast.Short, "s");
                (Ast.Char, "d") ]);
    ("bytes", [ (Ast.Char, "x"); (Ast.Char, "y"); (Ast.Char, "z") ]);
    ("nested", [ (Ast.Struct "pair", "p"); (Ast.Char, "tag") ]);
  ]

let test_sizeof_scalars () =
  Alcotest.check int_c "char" 1 (Tc.sizeof structs Ast.Char);
  Alcotest.check int_c "short" 2 (Tc.sizeof structs Ast.Short);
  Alcotest.check int_c "int" 4 (Tc.sizeof structs Ast.Int);
  Alcotest.check int_c "ptr" 4 (Tc.sizeof structs (Ast.Ptr Ast.Char));
  Alcotest.check int_c "array" 12 (Tc.sizeof structs (Ast.Array (Ast.Int, 3)));
  Alcotest.check int_c "char array" 5
    (Tc.sizeof structs (Ast.Array (Ast.Char, 5)))

let test_sizeof_structs () =
  Alcotest.check int_c "pair" 8 (Tc.sizeof structs (Ast.Struct "pair"));
  (* c(1) pad(3) i(4) s(2) d(1) pad(1) -> 12, aligned to 4 *)
  Alcotest.check int_c "mixed" 12 (Tc.sizeof structs (Ast.Struct "mixed"));
  (* three chars, align 1 -> 3 *)
  Alcotest.check int_c "bytes" 3 (Tc.sizeof structs (Ast.Struct "bytes"));
  (* pair(8) tag(1) pad(3) -> 12 *)
  Alcotest.check int_c "nested" 12 (Tc.sizeof structs (Ast.Struct "nested"))

let test_field_offsets () =
  Alcotest.check int_c "pair.a" 0 (Tc.field_offset structs "pair" "a");
  Alcotest.check int_c "pair.b" 4 (Tc.field_offset structs "pair" "b");
  Alcotest.check int_c "mixed.c" 0 (Tc.field_offset structs "mixed" "c");
  Alcotest.check int_c "mixed.i aligned" 4
    (Tc.field_offset structs "mixed" "i");
  Alcotest.check int_c "mixed.s" 8 (Tc.field_offset structs "mixed" "s");
  Alcotest.check int_c "mixed.d" 10 (Tc.field_offset structs "mixed" "d");
  Alcotest.check int_c "nested.tag" 8
    (Tc.field_offset structs "nested" "tag")

let test_unknown_field () =
  Alcotest.check_raises "unknown field"
    (Tc.Error "struct pair has no field nope") (fun () ->
      ignore (Tc.field_offset structs "pair" "nope"))

let test_unknown_struct () =
  Alcotest.(check bool) "unknown struct" true
    (try
       ignore (Tc.sizeof structs (Ast.Struct "ghost"));
       false
     with Tc.Error _ -> true)

let check_program src =
  Tc.check ~unit_name:"t.c" (Minic.Parser.parse src)

let test_lowering_shape () =
  (* pointer arithmetic is pre-scaled and widenings are explicit in the
     typed tree *)
  let tu =
    check_program
      "struct pair { int a; int b; };\n\
       int probe(struct pair *p, char c) { return p[2].b + c; }\n\
       int use(struct pair *p) { return probe(p, 300); }\n"
  in
  (* the widening is inserted in the *caller* (the §3.1 ripple), so scan
     every function *)
  let f = List.hd tu.tu_funcs in
  Alcotest.(check string) "name" "probe" f.tf_name;
  (* the body must contain a multiplication by sizeof(struct pair) = 8
     and an explicit sign-extension of the char parameter *)
  let saw_scale = ref false and saw_widen = ref false in
  let rec walk_e (e : Minic.Tast.texpr) =
    (match e.desc with
     | Minic.Tast.Tconst 8l -> saw_scale := true
     | Minic.Tast.Twiden (Minic.Tast.Wsext8, _) -> saw_widen := true
     | _ -> ());
    match e.desc with
    | Minic.Tast.Tbin (_, a, b)
    | Minic.Tast.Tstore (_, a, b) ->
      walk_e a; walk_e b
    | Minic.Tast.Tun (_, a)
    | Minic.Tast.Twiden (_, a)
    | Minic.Tast.Tload (_, a)
    | Minic.Tast.Tlocal_set (_, a)
    | Minic.Tast.Tparam_set (_, a) -> walk_e a
    | Minic.Tast.Tcall (_, args) | Minic.Tast.Tbuiltin (_, args) ->
      List.iter walk_e args
    | Minic.Tast.Ticall (c, args) -> walk_e c; List.iter walk_e args
    | _ -> ()
  in
  let rec walk_s (s : Minic.Tast.tstmt) =
    match s with
    | Minic.Tast.TSexpr e -> walk_e e
    | Minic.Tast.TSif (c, a, b) -> walk_e c; List.iter walk_s (a @ b)
    | Minic.Tast.TSloop (c, st, b) ->
      Option.iter walk_e c; Option.iter walk_e st; List.iter walk_s b
    | Minic.Tast.TSdowhile (b, c) -> List.iter walk_s b; walk_e c
    | Minic.Tast.TSswitch (c, cases) ->
      walk_e c; List.iter (fun (_, b) -> List.iter walk_s b) cases
    | Minic.Tast.TSreturn (Some e) -> walk_e e
    | _ -> ()
  in
  List.iter
    (fun (g : Minic.Tast.tfunc) -> List.iter walk_s g.tf_body)
    tu.tu_funcs;
  Alcotest.(check bool) "index pre-scaled by sizeof" true !saw_scale;
  Alcotest.(check bool) "char param widened at use" true !saw_widen

let test_static_local_mangling () =
  let tu =
    check_program "int gen() { static int n = 5; n = n + 1; return n; }\n"
  in
  Alcotest.(check (list string)) "mangled unit-level datum" [ "gen.n" ]
    (List.map (fun (g : Minic.Tast.gitem) -> g.gi_name) tu.tu_globals);
  let g = List.hd tu.tu_globals in
  Alcotest.(check bool) "static binding" true g.gi_static

let test_global_init_forms () =
  let tu =
    check_program
      "int scalar = 7;\nint zero;\nint table[3] = { 1, 2, 3 };\n\
       char msg[8] = \"hi\";\nint probe() { return scalar; }\n"
  in
  let by_name n =
    List.find (fun (g : Minic.Tast.gitem) -> g.gi_name = n) tu.tu_globals
  in
  (match (by_name "scalar").gi_init with
   | Minic.Tast.Gwords [ Minic.Tast.Wconst 7l ] -> ()
   | _ -> Alcotest.fail "scalar init");
  (match (by_name "zero").gi_init with
   | Minic.Tast.Gzero 4 -> ()
   | _ -> Alcotest.fail "zero init is bss");
  (match (by_name "table").gi_init with
   | Minic.Tast.Gwords [ Minic.Tast.Wconst 1l; Wconst 2l; Wconst 3l ] -> ()
   | _ -> Alcotest.fail "array init");
  match (by_name "msg").gi_init with
  | Minic.Tast.Gbytes b ->
    Alcotest.(check string) "padded string" "hi\000\000\000\000\000\000"
      (Bytes.to_string b)
  | _ -> Alcotest.fail "string init"

let test_error_paths () =
  let rejected =
    [
      "struct a { struct ghost g; }; struct a v; int f() { return 0; }";
      "int f() { return \"str\" * 2; }";
      "int f(int *p) { return p * p; }";
      "int f() { int x[3]; x = 0; return 0; }";
      "void f() { return 1; }";
      "int f() { return; }";
      "int f() { continue; return 0; }";
      "int f(int a, int b) { return g(a); } int g(int x, int y) { return x + y; }";
      "int v; int v; int f() { return v; }";
      "int f() { switch (1) { default: return 1; default: return 2; } }";
      "int x; int f() { case 3: return 1; }";
    ]
  in
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejected: " ^ src) true
        (try
           ignore (check_program src);
           false
         with Tc.Error _ | Minic.Parser.Error _ -> true))
    rejected

let suite =
  [
    ( "typecheck",
      [
        t "sizeof scalars" test_sizeof_scalars;
        t "sizeof structs" test_sizeof_structs;
        t "field offsets" test_field_offsets;
        t "unknown field" test_unknown_field;
        t "unknown struct" test_unknown_struct;
        t "lowering shape" test_lowering_shape;
        t "static local mangling" test_static_local_mangling;
        t "global init forms" test_global_init_forms;
        t "error paths" test_error_paths;
      ] );
  ]
