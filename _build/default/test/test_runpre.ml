(* Focused run-pre matching tests on hand-crafted object code: each test
   builds a pre text section (with relocation holes) and a run memory
   image, then checks exactly what the matcher infers, absorbs, or
   rejects. Complements the integration tests, which exercise the same
   code through full kernel builds. *)

module Isa = Vmisa.Isa
module Reloc = Objfile.Reloc
module Symbol = Objfile.Symbol
module Section = Objfile.Section
module Frag = Asm.Frag
module Runpre = Ksplice.Runpre

let check = Alcotest.check
let t name f = Alcotest.test_case name `Quick f

(* build a one-function helper object named [fname] from frag emitters *)
let helper ?(unit_name = "u.c") ?(fname = "f") ?(binding = Symbol.Global)
    emit =
  let frag = Frag.create () in
  emit frag;
  let img = Frag.assemble frag ~text:true in
  let section =
    Section.make ~name:(".text." ^ fname) ~kind:Section.Text ~align:4
      img.data img.relocs
  in
  let symbols =
    [ Symbol.make ~binding ~size:(Bytes.length img.data) ~kind:`Func
        ~name:fname
        (Some { Symbol.section = ".text." ^ fname; value = 0 }) ]
  in
  Objfile.make ~unit_name ~sections:[ section ] ~symbols

(* lay out run memory from frag emitters at [base] within a 64k image *)
let run_memory ~base emit =
  let frag = Frag.create () in
  emit frag;
  let img = Frag.assemble frag ~text:true in
  let mem = Bytes.make 0x10000 '\xCC' in
  Bytes.blit img.data 0 mem base (Bytes.length img.data);
  (mem, img)

let read_of mem pos =
  if pos < 0 || pos >= Bytes.length mem then
    raise (Invalid_argument "read out of range")
  else Bytes.get_uint8 mem pos

let match_one ?(candidates = fun _ -> []) ?(already = fun _ -> None)
    ?(inference = Runpre.create_inference ()) mem h =
  let anchors =
    Runpre.match_helper ~read_run:(read_of mem) ~candidates ~already
      ~inference h
  in
  (anchors, inference)

let base = 0x2000

let test_exact_match () =
  let body f =
    Frag.insn f (Isa.Push Isa.R6);
    Frag.insn f (Isa.Mov_rr (Isa.R6, Isa.SP));
    Frag.insn f (Isa.Mov_ri (Isa.R0, 7l));
    Frag.insn f Isa.Ret
  in
  let h = helper body in
  let mem, _ = run_memory ~base body in
  let anchors, _ = match_one mem h ~candidates:(fun _ -> [ base ]) in
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "anchor found" [ ("f", base) ] anchors

let test_abs32_inference () =
  (* pre has a hole for symbol "counter"; the run bytes carry the
     relocated address, which must be recovered exactly (Figure 2) *)
  let pre f =
    Frag.insn_reloc f (Isa.Load_abs (Isa.W32, Isa.R0, 0l)) Reloc.Abs32
      "counter" 0l;
    Frag.insn f Isa.Ret
  in
  let run f =
    Frag.insn f (Isa.Load_abs (Isa.W32, Isa.R0, 0x4a30l));
    Frag.insn f Isa.Ret
  in
  let h = helper pre in
  let mem, _ = run_memory ~base run in
  let _, inference = match_one mem h ~candidates:(fun _ -> [ base ]) in
  check (Alcotest.option Alcotest.int) "counter inferred" (Some 0x4a30)
    (Hashtbl.find_opt inference "counter")

let test_local_symbol_canonicalised () =
  (* a hole referencing a local symbol is inferred under name@unit *)
  let pre f =
    Frag.insn_reloc f (Isa.Mov_ri (Isa.R1, 0l)) Reloc.Abs32 "debug" 0l;
    Frag.insn f Isa.Ret
  in
  let run f =
    Frag.insn f (Isa.Mov_ri (Isa.R1, 0x1234l));
    Frag.insn f Isa.Ret
  in
  let h = helper pre ~unit_name:"dst_ca.c" in
  (* declare debug as a defined local of the helper unit *)
  let h =
    { h with
      symbols =
        h.symbols
        @ [ Symbol.make ~binding:Symbol.Local ~kind:`Object ~name:"debug"
              (Some { Symbol.section = ".text.f"; value = 0 }) ] }
  in
  let mem, _ = run_memory ~base run in
  let _, inference = match_one mem h ~candidates:(fun _ -> [ base ]) in
  check (Alcotest.option Alcotest.int) "canonical local name" (Some 0x1234)
    (Hashtbl.find_opt inference "debug@dst_ca.c")

let test_call_reloc_inference () =
  (* a pc-relative call hole: symbol value = run call target *)
  let pre f =
    Frag.jump_reloc f Isa.Ccall "helper_fn";
    Frag.insn f Isa.Ret
  in
  let run f =
    (* call to absolute 0x3000: disp = 0x3000 - (base + 5) *)
    Frag.insn f (Isa.Call (Int32.of_int (0x3000 - (base + 5))));
    Frag.insn f Isa.Ret
  in
  let h = helper pre in
  let mem, _ = run_memory ~base run in
  let _, inference = match_one mem h ~candidates:(fun _ -> [ base ]) in
  check (Alcotest.option Alcotest.int) "call target inferred" (Some 0x3000)
    (Hashtbl.find_opt inference "helper_fn")

let test_nop_skipping_run_side () =
  (* the run build aligned a loop head with no-ops absent from pre *)
  let pre f =
    Frag.insn f (Isa.Cmpi (Isa.R0, 0l));
    Frag.label f "top";
    Frag.insn f (Isa.Addi (Isa.R0, -1l));
    Frag.jump f (Isa.Cjcc Isa.Ne) "top";
    Frag.insn f Isa.Ret
  in
  let run f =
    Frag.insn f (Isa.Cmpi (Isa.R0, 0l));
    Frag.align f 8;
    Frag.label f "top";
    Frag.insn f (Isa.Addi (Isa.R0, -1l));
    Frag.jump f (Isa.Cjcc Isa.Ne) "top";
    Frag.insn f Isa.Ret
  in
  let h = helper pre in
  let mem, _ = run_memory ~base run in
  let anchors, _ = match_one mem h ~candidates:(fun _ -> [ base ]) in
  check Alcotest.int "matched despite alignment nops" 1 (List.length anchors)

let test_nop_skipping_pre_side () =
  let pre f =
    Frag.insn f (Isa.Mov_ri (Isa.R0, 1l));
    Frag.insn f (Isa.Nop 3);
    Frag.insn f (Isa.Nop 2);
    Frag.insn f Isa.Ret
  in
  let run f =
    Frag.insn f (Isa.Mov_ri (Isa.R0, 1l));
    Frag.insn f Isa.Ret
  in
  let h = helper pre in
  let mem, _ = run_memory ~base run in
  let anchors, _ = match_one mem h ~candidates:(fun _ -> [ base ]) in
  check Alcotest.int "matched despite pre nops" 1 (List.length anchors)

let test_short_long_jump_equivalence () =
  (* pre uses a long backward jump where run relaxed it to short *)
  let pre f =
    Frag.label f "top";
    Frag.insn f (Isa.Addi (Isa.R0, 1l));
    (* force long: manual long jmp back to top (disp = -(5+6)) *)
    Frag.insn f (Isa.Jmp (-11l));
    Frag.insn f Isa.Ret
  in
  let run f =
    Frag.label f "top";
    Frag.insn f (Isa.Addi (Isa.R0, 1l));
    Frag.insn f (Isa.Jmp_s (-8));
    Frag.insn f Isa.Ret
  in
  let h = helper pre in
  let mem, _ = run_memory ~base run in
  let anchors, _ = match_one mem h ~candidates:(fun _ -> [ base ]) in
  check Alcotest.int "short/long equivalent" 1 (List.length anchors)

let test_jump_target_divergence_rejected () =
  (* both have a conditional jump, but to different statements *)
  let pre f =
    Frag.jump f (Isa.Cjcc Isa.Eq) "a";
    Frag.insn f (Isa.Addi (Isa.R0, 1l));
    Frag.label f "a";
    Frag.insn f (Isa.Addi (Isa.R0, 2l));
    Frag.label f "b";
    Frag.insn f Isa.Ret
  in
  let run f =
    Frag.jump f (Isa.Cjcc Isa.Eq) "b";
    Frag.insn f (Isa.Addi (Isa.R0, 1l));
    Frag.label f "a";
    Frag.insn f (Isa.Addi (Isa.R0, 2l));
    Frag.label f "b";
    Frag.insn f Isa.Ret
  in
  let h = helper pre in
  let mem, _ = run_memory ~base run in
  (try
     ignore (match_one mem h ~candidates:(fun _ -> [ base ]));
     Alcotest.fail "expected mismatch"
   with Runpre.Mismatch m ->
     Alcotest.(check bool)
       "reason mentions target" true
       (String.length m.reason > 0))

let test_instruction_divergence_rejected () =
  let pre f =
    Frag.insn f (Isa.Addi (Isa.R0, 1l));
    Frag.insn f Isa.Ret
  in
  let run f =
    Frag.insn f (Isa.Addi (Isa.R0, 2l));
    Frag.insn f Isa.Ret
  in
  let h = helper pre in
  let mem, _ = run_memory ~base run in
  try
    ignore (match_one mem h ~candidates:(fun _ -> [ base ]));
    Alcotest.fail "expected mismatch"
  with Runpre.Mismatch _ -> ()

let test_inference_conflict_rejected () =
  (* the same symbol inferred with two different values must abort *)
  let pre f =
    Frag.insn_reloc f (Isa.Load_abs (Isa.W32, Isa.R0, 0l)) Reloc.Abs32 "g" 0l;
    Frag.insn_reloc f (Isa.Load_abs (Isa.W32, Isa.R1, 0l)) Reloc.Abs32 "g" 0l;
    Frag.insn f Isa.Ret
  in
  let run f =
    Frag.insn f (Isa.Load_abs (Isa.W32, Isa.R0, 0x100l));
    Frag.insn f (Isa.Load_abs (Isa.W32, Isa.R1, 0x200l));
    Frag.insn f Isa.Ret
  in
  let h = helper pre in
  let mem, _ = run_memory ~base run in
  try
    ignore (match_one mem h ~candidates:(fun _ -> [ base ]));
    Alcotest.fail "expected mismatch"
  with Runpre.Mismatch m ->
    Alcotest.(check bool) "conflict reported" true
      (String.length m.reason > 0)

let test_candidate_trial_selects_matching () =
  (* two candidate addresses with different code: the matching one wins *)
  let code_a f =
    Frag.insn f (Isa.Mov_ri (Isa.R0, 1l));
    Frag.insn f Isa.Ret
  in
  let code_b f =
    Frag.insn f (Isa.Mov_ri (Isa.R0, 2l));
    Frag.insn f Isa.Ret
  in
  let mem = Bytes.make 0x10000 '\xCC' in
  let place at emit =
    let frag = Frag.create () in
    emit frag;
    let img = Frag.assemble frag ~text:true in
    Bytes.blit img.data 0 mem at (Bytes.length img.data)
  in
  place 0x2000 code_a;
  place 0x3000 code_b;
  let h = helper code_b in
  let anchors, _ =
    match_one mem h ~candidates:(fun _ -> [ 0x2000; 0x3000 ])
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "selected the matching candidate"
    [ ("f", 0x3000) ]
    anchors

let test_identical_candidates_ambiguous () =
  (* two identical copies: genuinely ambiguous, must be refused *)
  let code f =
    Frag.insn f (Isa.Mov_ri (Isa.R0, 9l));
    Frag.insn f Isa.Ret
  in
  let mem = Bytes.make 0x10000 '\xCC' in
  let place at =
    let frag = Frag.create () in
    code frag;
    let img = Frag.assemble frag ~text:true in
    Bytes.blit img.data 0 mem at (Bytes.length img.data)
  in
  place 0x2000;
  place 0x3000;
  let h = helper code in
  try
    ignore (match_one mem h ~candidates:(fun _ -> [ 0x2000; 0x3000 ]));
    Alcotest.fail "expected Ambiguous"
  with Runpre.Ambiguous { matches = 2; _ } -> ()

let test_no_candidates () =
  let code f = Frag.insn f Isa.Ret in
  let mem = Bytes.make 0x1000 '\x00' in
  let h = helper code in
  try
    ignore (match_one mem h ~candidates:(fun _ -> []));
    Alcotest.fail "expected Ambiguous(0)"
  with Runpre.Ambiguous { matches = 0; _ } -> ()

let test_already_redirected () =
  (* stacked updates: the code lives at the replacement address, but the
     symbol value stays the original entry *)
  let code f =
    Frag.insn f (Isa.Mov_ri (Isa.R0, 5l));
    Frag.insn f Isa.Ret
  in
  let mem, _ = run_memory ~base:0x4000 code in
  let h = helper code in
  let anchors, inference =
    match_one mem h
      ~candidates:(fun _ -> [ 0x9999 ]) (* would not match *)
      ~already:(fun (_, fn) ->
        if fn = "f" then Some (0x4000, 0x2000) else None)
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "anchored at replacement code"
    [ ("f", 0x4000) ]
    anchors;
  check (Alcotest.option Alcotest.int)
    "symbol value is the original entry" (Some 0x2000)
    (Hashtbl.find_opt inference "f")

let test_inference_feeds_candidates () =
  (* section order: a caller whose hole names a static callee is matched
     first, and the callee is then located by the inferred address even
     with misleading kallsyms candidates *)
  let callee_body f =
    Frag.insn f (Isa.Mov_ri (Isa.R0, 3l));
    Frag.insn f Isa.Ret
  in
  let caller_pre f =
    Frag.jump_reloc f Isa.Ccall "hidden";
    Frag.insn f Isa.Ret
  in
  let mem = Bytes.make 0x10000 '\xCC' in
  let place at emit =
    let frag = Frag.create () in
    emit frag;
    let img = Frag.assemble frag ~text:true in
    Bytes.blit img.data 0 mem at (Bytes.length img.data);
    Bytes.length img.data
  in
  let callee_at = 0x5000 in
  ignore (place callee_at callee_body);
  (* run caller calls the real callee *)
  let caller_at = 0x2000 in
  let frag = Frag.create () in
  Frag.insn frag (Isa.Call (Int32.of_int (callee_at - (caller_at + 5))));
  Frag.insn frag Isa.Ret;
  let img = Frag.assemble frag ~text:true in
  Bytes.blit img.data 0 mem caller_at (Bytes.length img.data);
  (* decoy copy of the callee body at another address *)
  ignore (place 0x7000 callee_body);
  (* helper with caller first, then the (locally bound) callee *)
  let build_section name fname emit =
    let frag = Frag.create () in
    emit frag;
    let i = Frag.assemble frag ~text:true in
    ( Section.make ~name ~kind:Section.Text ~align:4 i.data i.relocs,
      Symbol.make ~binding:Symbol.Local ~size:(Bytes.length i.data)
        ~kind:`Func ~name:fname
        (Some { Symbol.section = name; value = 0 }) )
  in
  let s1, sym1 = build_section ".text.caller" "caller" caller_pre in
  let s2, sym2 = build_section ".text.hidden" "hidden" callee_body in
  let h =
    Objfile.make ~unit_name:"u.c" ~sections:[ s1; s2 ]
      ~symbols:[ sym1; sym2 ]
  in
  let anchors, _ =
    match_one mem h ~candidates:(fun name ->
        if name = "caller" then [ caller_at ]
        else [ 0x7000; callee_at ] (* ambiguous without inference *))
  in
  check (Alcotest.option Alcotest.int) "callee located by inference"
    (Some callee_at)
    (List.assoc_opt "hidden@u.c" anchors)

let test_tolerance_ablation () =
  (* run has alignment nops pre lacks: the full matcher absorbs them, a
     matcher without no-op recognition must reject *)
  let pre f =
    Frag.insn f (Isa.Cmpi (Isa.R0, 0l));
    Frag.label f "top";
    Frag.insn f (Isa.Addi (Isa.R0, -1l));
    Frag.jump f (Isa.Cjcc Isa.Ne) "top";
    Frag.insn f Isa.Ret
  in
  let run f =
    Frag.insn f (Isa.Cmpi (Isa.R0, 0l));
    Frag.align f 8;
    Frag.label f "top";
    Frag.insn f (Isa.Addi (Isa.R0, -1l));
    Frag.jump f (Isa.Cjcc Isa.Ne) "top";
    Frag.insn f Isa.Ret
  in
  let h = helper pre in
  let mem, _ = run_memory ~base run in
  let go tolerance =
    Runpre.match_helper ~tolerance ~read_run:(read_of mem)
      ~candidates:(fun _ -> [ base ])
      ~already:(fun _ -> None)
      ~inference:(Runpre.create_inference ())
      h
  in
  Alcotest.(check int) "full matcher succeeds" 1
    (List.length (go Runpre.full_tolerance));
  (try
     ignore (go { Runpre.full_tolerance with skip_nops = false });
     Alcotest.fail "naive matcher should reject"
   with Runpre.Mismatch _ | Runpre.Ambiguous _ -> ())

let test_tolerance_strict_jump () =
  (* a branch spans alignment padding: displacements differ, targets
     correspond — full matcher accepts, strict-jump matcher rejects *)
  let code ~aligned f =
    Frag.insn f (Isa.Cmpi (Isa.R0, 0l));
    Frag.insn f (Isa.Push Isa.R4);
    Frag.jump f (Isa.Cjcc Isa.Eq) "end";
    if aligned then Frag.align f 16;
    Frag.label f "top";
    Frag.insn f (Isa.Addi (Isa.R0, -1l));
    Frag.jump f (Isa.Cjcc Isa.Ne) "top";
    Frag.label f "end";
    Frag.insn f Isa.Ret
  in
  let h = helper (code ~aligned:false) in
  let mem, _ = run_memory ~base (code ~aligned:true) in
  let go tolerance =
    Runpre.match_helper ~tolerance ~read_run:(read_of mem)
      ~candidates:(fun _ -> [ base ])
      ~already:(fun _ -> None)
      ~inference:(Runpre.create_inference ())
      h
  in
  Alcotest.(check int) "full matcher succeeds" 1
    (List.length (go Runpre.full_tolerance));
  try
    ignore (go { Runpre.full_tolerance with jump_equivalence = false });
    Alcotest.fail "strict-jump matcher should reject"
  with Runpre.Mismatch _ | Runpre.Ambiguous _ -> ()

let suite =
  [
    ( "runpre",
      [
        t "exact match" test_exact_match;
        t "abs32 inference" test_abs32_inference;
        t "local symbol canonicalised" test_local_symbol_canonicalised;
        t "call reloc inference" test_call_reloc_inference;
        t "nop skipping (run side)" test_nop_skipping_run_side;
        t "nop skipping (pre side)" test_nop_skipping_pre_side;
        t "short/long jump equivalence" test_short_long_jump_equivalence;
        t "jump target divergence rejected"
          test_jump_target_divergence_rejected;
        t "instruction divergence rejected"
          test_instruction_divergence_rejected;
        t "inference conflict rejected" test_inference_conflict_rejected;
        t "candidate trial selects matching"
          test_candidate_trial_selects_matching;
        t "identical candidates ambiguous"
          test_identical_candidates_ambiguous;
        t "no candidates" test_no_candidates;
        t "already-redirected anchoring" test_already_redirected;
        t "inference feeds candidates" test_inference_feeds_candidates;
        t "ablation: no-op recognition" test_tolerance_ablation;
        t "ablation: jump equivalence" test_tolerance_strict_jump;
      ] );
  ]
