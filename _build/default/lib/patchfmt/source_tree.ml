module M = Map.Make (String)

type t = string M.t

let empty = M.empty
let of_list l = List.fold_left (fun m (k, v) -> M.add k v m) M.empty l
let add t path contents = M.add path contents t
let remove t path = M.remove path t
let find t path = M.find_opt path t
let mem t path = M.mem path t
let files t = M.bindings t |> List.map fst
let bindings t = M.bindings t
let equal = M.equal String.equal

let split_lines s =
  let l = String.split_on_char '\n' s in
  (* a trailing newline produces one empty trailing element; drop it so
     that lines round-trip under concat+"\n" *)
  match List.rev l with
  | "" :: rest -> List.rev rest
  | _ -> l

let lines t path = Option.map split_lines (find t path)

let digest t =
  let b = Buffer.create 1024 in
  M.iter
    (fun k v ->
      Buffer.add_string b k;
      Buffer.add_char b '\000';
      Buffer.add_string b (Digest.string v);
      Buffer.add_char b '\000')
    t;
  Digest.to_hex (Digest.string (Buffer.contents b))
