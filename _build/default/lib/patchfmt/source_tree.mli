(** Source trees: the input to kernel builds and to patch application.

    A source tree is an immutable map from relative file paths to file
    contents. The base kernel, the previously-patched source, and the
    post-patch source are all values of this type. *)

type t

val empty : t
val of_list : (string * string) list -> t

(** [add t path contents] adds or replaces a file. *)
val add : t -> string -> string -> t

val remove : t -> string -> t
val find : t -> string -> string option
val mem : t -> string -> bool

(** [files t] lists paths in lexicographic order. *)
val files : t -> string list

val bindings : t -> (string * string) list
val equal : t -> t -> bool

(** [lines t path] splits a file into lines (no trailing newlines). *)
val lines : t -> string -> string list option

(** [digest t] is a stable content hash of the whole tree, used by the
    build cache. *)
val digest : t -> string
