lib/patchfmt/diff.ml: Array Buffer List Option Printf Result Source_tree String
