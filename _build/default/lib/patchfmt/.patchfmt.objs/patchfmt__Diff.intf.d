lib/patchfmt/diff.mli: Source_tree
