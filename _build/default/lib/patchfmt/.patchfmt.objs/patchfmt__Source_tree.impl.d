lib/patchfmt/source_tree.ml: Buffer Digest List Map Option String
