lib/patchfmt/source_tree.mli:
