type unit_build = {
  source_name : string;
  obj : Objfile.t;
  inline_decisions : Minic.Inline.decision list;
}

type build = {
  units : unit_build list;
  options : Minic.Driver.options;
}

exception Build_error of string

let err fmt = Format.kasprintf (fun m -> raise (Build_error m)) fmt

(* Content-addressed compile cache: (digest(source), options fingerprint)
   -> compiled unit. Makes the post build recompile only patched units. *)
let cache : (string, unit_build) Hashtbl.t = Hashtbl.create 64

let options_fingerprint (o : Minic.Driver.options) =
  Printf.sprintf "fs=%b;al=%b;inl=%b;%d;%d" o.codegen.function_sections
    o.codegen.align_loops o.inline_enabled o.auto_inline_max
    o.explicit_inline_max

let has_suffix s suf =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

let compile_one ~options path contents =
  let key =
    Digest.to_hex (Digest.string contents)
    ^ "|" ^ path ^ "|" ^ options_fingerprint options
  in
  match Hashtbl.find_opt cache key with
  | Some u -> u
  | None ->
    let u =
      if has_suffix path ".c" then begin
        match Minic.Driver.compile ~options ~unit_name:path contents with
        | { obj; inline_decisions } ->
          { source_name = path; obj; inline_decisions }
        | exception Minic.Driver.Error m -> err "%s" m
      end
      else begin
        match
          Asm.Assembler.assemble ~unit_name:path
            ~function_sections:options.codegen.function_sections contents
        with
        | obj -> { source_name = path; obj; inline_decisions = [] }
        | exception Asm.Assembler.Error { line; msg } ->
          err "%s:%d: %s" path line msg
      end
    in
    Hashtbl.replace cache key u;
    u

let build_tree ~options tree =
  let units =
    Patchfmt.Source_tree.bindings tree
    |> List.filter (fun (path, _) ->
         has_suffix path ".c" || has_suffix path ".s")
    |> List.map (fun (path, contents) -> compile_one ~options path contents)
  in
  { units; options }

let objects b = List.map (fun u -> u.obj) b.units

let find_unit b name =
  List.find_opt (fun u -> String.equal u.source_name name) b.units

let inlined_callees b =
  List.concat_map
    (fun u ->
      List.map
        (fun (d : Minic.Inline.decision) -> (u.source_name, d.caller, d.callee))
        u.inline_decisions)
    b.units
