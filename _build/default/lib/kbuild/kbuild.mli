(** Kernel build system: compile a source tree ([.c] MiniC units and [.s]
    assembly units) into object files.

    Builds are deterministic — the same source and options always produce
    byte-identical objects — which is the property that lets Ksplice's
    pre build reproduce the running kernel's code (§4.3: using the same
    compiler and options "is advisable"). A content-addressed cache makes
    the post build recompile only units the patch touched, like kbuild. *)

type unit_build = {
  source_name : string;  (** e.g. ["kernel/sched.c"] *)
  obj : Objfile.t;
  inline_decisions : Minic.Inline.decision list;
}

type build = {
  units : unit_build list;
  options : Minic.Driver.options;
}

exception Build_error of string

(** [build_tree ~options tree] compiles every [.c] and [.s] file of the
    tree, in path order. @raise Build_error naming the failing unit. *)
val build_tree : options:Minic.Driver.options -> Patchfmt.Source_tree.t -> build

(** [objects b] lists the object files in build order. *)
val objects : build -> Objfile.t list

(** [find_unit b name] returns the unit built from source file [name]. *)
val find_unit : build -> string -> unit_build option

(** [inlined_callees b] maps each function to the functions whose bodies
    were inlined into it, per unit: [(unit, caller, callee)] triples.
    Feeds the §6.3 inlining statistics and the pre-post safety story. *)
val inlined_callees : build -> (string * string * string) list
