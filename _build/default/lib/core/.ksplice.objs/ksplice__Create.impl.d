lib/core/create.ml: Filename Format Kbuild List Minic Objfile Option Patchfmt Prepost Printf String Update
