lib/core/apply.ml: Array Bytes Format Hashtbl Int32 Kernel Klink List Logs Minic Objfile Option Printf Result Runpre String Update Vmisa
