lib/core/prepost.ml: Format List Objfile Option String
