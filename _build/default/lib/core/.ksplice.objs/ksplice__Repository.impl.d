lib/core/repository.ml: Apply Buffer Bytes Filename Format Fun Int32 List Patchfmt String Sys Update
