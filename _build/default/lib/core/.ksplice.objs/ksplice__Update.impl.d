lib/core/update.ml: Buffer Bytes Fun Int32 List Objfile String
