lib/core/source_level.mli: Format Klink Patchfmt
