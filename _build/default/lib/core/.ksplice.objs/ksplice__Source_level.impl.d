lib/core/source_level.ml: Filename Format Hashtbl Kbuild Klink List Minic Objfile Option Patchfmt Prepost Printf String
