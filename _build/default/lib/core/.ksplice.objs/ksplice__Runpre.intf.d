lib/core/runpre.mli: Hashtbl Objfile
