lib/core/update.mli: Bytes Objfile
