lib/core/apply.mli: Bytes Format Kernel Klink Runpre Update
