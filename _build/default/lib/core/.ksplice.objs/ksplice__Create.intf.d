lib/core/create.mli: Format Minic Patchfmt Prepost Update
