lib/core/runpre.ml: Hashtbl Int32 List Objfile Option Printf String Update Vmisa
