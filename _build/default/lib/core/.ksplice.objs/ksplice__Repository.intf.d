lib/core/repository.mli: Apply Patchfmt Update
