lib/core/prepost.mli: Format Objfile
