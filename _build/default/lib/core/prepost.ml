module Section = Objfile.Section

type unit_diff = {
  unit_name : string;
  changed_functions : string list;
  new_functions : string list;
  removed_functions : string list;
  changed_data : string list;
  new_data : string list;
}

let pp_unit_diff ppf d =
  let pl = Format.pp_print_list ~pp_sep:Format.pp_print_space
      Format.pp_print_string in
  Format.fprintf ppf
    "@[<v2>%s:@,changed: @[%a@]@,new: @[%a@]@,removed: @[%a@]@,\
     data changed: @[%a@]@,data new: @[%a@]@]"
    d.unit_name pl d.changed_functions pl d.new_functions pl
    d.removed_functions pl d.changed_data pl d.new_data

let strip_prefix p s =
  let lp = String.length p in
  if String.length s > lp && String.sub s 0 lp = p then
    Some (String.sub s lp (String.length s - lp))
  else None

let fname_of_section (s : Section.t) =
  if s.kind = Section.Text then strip_prefix ".text." s.name else None

let dataname_of_section (s : Section.t) =
  match s.kind with
  | Section.Data -> strip_prefix ".data." s.name
  | Section.Bss -> strip_prefix ".bss." s.name
  | _ -> None

let bss_equal (a : Section.t) (b : Section.t) = a.size = b.size

let diff_unit ~(pre : Objfile.t) ~(post : Objfile.t) =
  let index select o =
    List.filter_map
      (fun (s : Section.t) ->
        Option.map (fun n -> (n, s)) (select s))
      o.Objfile.sections
  in
  let pre_funcs = index fname_of_section pre in
  let post_funcs = index fname_of_section post in
  let changed_functions =
    List.filter_map
      (fun (n, (s_post : Section.t)) ->
        match List.assoc_opt n pre_funcs with
        | Some s_pre when not (Section.equal_contents s_pre s_post) -> Some n
        | _ -> None)
      post_funcs
  in
  let new_functions =
    List.filter_map
      (fun (n, _) ->
        if List.mem_assoc n pre_funcs then None else Some n)
      post_funcs
  in
  let removed_functions =
    List.filter_map
      (fun (n, _) ->
        if List.mem_assoc n post_funcs then None else Some n)
      pre_funcs
  in
  let pre_data = index dataname_of_section pre in
  let post_data = index dataname_of_section post in
  let changed_data =
    List.filter_map
      (fun (n, (s_post : Section.t)) ->
        match List.assoc_opt n pre_data with
        | Some s_pre ->
          let same =
            if s_pre.kind = Section.Bss && s_post.kind = Section.Bss then
              bss_equal s_pre s_post
            else
              s_pre.kind = s_post.kind && Section.equal_contents s_pre s_post
          in
          if same then None else Some n
        | None -> None)
      post_data
  in
  let new_data =
    List.filter_map
      (fun (n, _) ->
        if List.mem_assoc n pre_data then None else Some n)
      post_data
  in
  { unit_name = post.unit_name; changed_functions; new_functions;
    removed_functions; changed_data; new_data }

let is_empty d =
  d.changed_functions = [] && d.new_functions = [] && d.removed_functions = []
  && d.changed_data = [] && d.new_data = []
