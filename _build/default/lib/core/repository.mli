(** Hot-update distribution (§8's future work): "one could use Ksplice to
    create hot update packages for common starting kernel configurations.
    People who subscribe their systems to these updates would be able to
    transparently receive kernel hot updates."

    A repository is a directory of entries keyed by the digest of the
    kernel source they apply to. Each entry carries the update file plus
    the source patch, so a subscriber can advance its local
    previously-patched source (needed both to verify the chain and to
    create further updates, §5.4). Subscribing walks the chain from the
    subscriber's current digest, applying every pending update in order —
    the paper's "without any ongoing effort from users" flow. *)

type t

(** An update published against a particular source state. *)
type entry = {
  base_digest : string;  (** digest of the source this applies to *)
  next_digest : string;  (** digest after applying the patch *)
  patch_text : string;  (** unified diff *)
  update : Update.t;
}

exception Repo_error of string

(** [open_dir dir] opens (creating if needed) a repository directory. *)
val open_dir : string -> t

(** [publish repo ~source ~patch ~update] records [update] as the next
    hop from [source]; returns the entry. @raise Repo_error if an entry
    for this source digest already exists (linear chains only) or the
    patch does not apply. *)
val publish :
  t -> source:Patchfmt.Source_tree.t -> patch:Patchfmt.Diff.t ->
  update:Update.t -> entry

(** [pending repo ~digest] is the chain of entries starting at [digest],
    oldest first (empty when up to date). *)
val pending : t -> digest:string -> entry list

(** Outcome of one subscriber synchronisation. *)
type sync_report = {
  applied : string list;  (** update ids, in application order *)
  new_source : Patchfmt.Source_tree.t;  (** advanced local source *)
}

(** [sync repo mgr ~source] fetches and applies every update pending for
    the subscriber whose running kernel was built from [source]
    (possibly already patched), keeping the local source in step.
    Stops at the first failure. *)
val sync :
  t -> Apply.t -> source:Patchfmt.Source_tree.t ->
  (sync_report, string) result
