(** ksplice-apply / ksplice-undo (§5): loading an update into a running
    kernel, the quiescence safety check, trampoline insertion, custom-code
    hooks, and reversal.

    Applying an update:
    + run-pre match every helper against kernel memory (safety + symbol
      resolution);
    + load the primary module into module memory, relocating it with the
      inferred symbol values (falling back to unique kallsyms globals);
    + run [ksplice_pre_apply] hooks;
    + under [stop_machine], check that no thread's instruction pointer or
      stack return addresses fall within any to-be-replaced function
      (§5.2) — retrying after letting the scheduler advance, then
      abandoning; insert a 5-byte jump at each obsolete function's entry;
      run [ksplice_apply] hooks while the machine is stopped;
    + run [ksplice_post_apply] hooks.

    Undo restores the saved instruction bytes (§5: "reversing an update
    removes the jump instructions"), guarded by the symmetric quiescence
    check on the replacement code, with the three reverse hooks. *)

type replacement = {
  r_unit : string;
  r_fn : string;  (** canonical function name *)
  r_old_addr : int;  (** entry of the obsolete function (run kernel) *)
  r_new_addr : int;  (** entry of the replacement code (primary module) *)
  r_old_size : int;  (** pre text size: the quiescence guard range *)
  r_new_size : int;
}

type applied = {
  update : Update.t;
  replacements : replacement list;
  saved : (int * Bytes.t) list;  (** trampoline sites and original bytes *)
  module_ranges : (int * int) list;  (** placed primary sections *)
  module_image : (int * Bytes.t) list;  (** relocated bytes as written *)
  added_symbols : Klink.Image.syminfo list;
  pause_ns : int;  (** simulated stop_machine pause *)
}

type error =
  | Code_mismatch of Runpre.mismatch
      (** run and pre code differ: the §4.2 safety abort *)
  | Ambiguous_symbol of string * string * int  (** unit, symbol, matches *)
  | Unresolved_symbol of string
  | Not_quiescent of string list  (** functions still in use after retries *)
  | Function_too_small of string
  | Hook_fault of string * Kernel.Machine.fault
  | Already_applied of string
  | Not_applied of string
  | Not_topmost of string  (** a later update still redirects its code *)
  | Integrity of string  (** post-apply verification found damage *)

val pp_error : Format.formatter -> error -> unit

(** The update manager: tracks applied updates on one machine (the role of
    the Ksplice core kernel module). *)
type t

val init : Kernel.Machine.t -> t
val machine : t -> Kernel.Machine.t

(** Applied updates, most recent first. *)
val applied : t -> applied list

(** [apply t update] performs the full §5 sequence. [max_attempts]
    (default 10) bounds quiescence retries; between attempts the scheduler
    advances [retry_steps] (default 2000) instructions. [tolerance]
    selects run-pre matcher capabilities (ablation experiments only). *)
val apply :
  ?tolerance:Runpre.tolerance ->
  ?max_attempts:int -> ?retry_steps:int -> t -> Update.t ->
  (applied, error) result

(** [undo t id] reverses the most recent update, which must be [id]. *)
val undo : t -> string -> (unit, error) result

(** [verify t] audits every applied update: each replaced function's entry
    must still hold the jump to its (topmost) replacement, and the
    replacement module's bytes must be exactly as written. Run-pre
    matching checks the kernel {e before} splicing; [verify] detects
    damage {e after} — a stray memory write over a trampoline or module,
    for instance. *)
val verify : t -> (unit, error) result
