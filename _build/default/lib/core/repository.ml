module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff

type t = { dir : string }

type entry = {
  base_digest : string;
  next_digest : string;
  patch_text : string;
  update : Update.t;
}

exception Repo_error of string

let err fmt = Format.kasprintf (fun m -> raise (Repo_error m)) fmt

let open_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then err "%s is not a directory" dir;
  { dir }

let entry_path t digest = Filename.concat t.dir (digest ^ ".entry")

let magic = "KSPLREPO1"

let write_entry t (e : entry) =
  let b = Buffer.create 4096 in
  let put_str s =
    Buffer.add_int32_le b (Int32.of_int (String.length s));
    Buffer.add_string b s
  in
  Buffer.add_string b magic;
  put_str e.base_digest;
  put_str e.next_digest;
  put_str e.patch_text;
  put_str (Bytes.to_string (Update.to_bytes e.update));
  let oc = open_out_bin (entry_path t e.base_digest) in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc b)

let read_entry t digest =
  let path = entry_path t digest in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        let raw = really_input_string ic len in
        if
          String.length raw < String.length magic
          || String.sub raw 0 (String.length magic) <> magic
        then err "%s: bad repository entry" path;
        let pos = ref (String.length magic) in
        let get_str () =
          if !pos + 4 > String.length raw then err "%s: truncated" path;
          let n = Int32.to_int (String.get_int32_le raw !pos) in
          pos := !pos + 4;
          if n < 0 || !pos + n > String.length raw then
            err "%s: truncated" path;
          let s = String.sub raw !pos n in
          pos := !pos + n;
          s
        in
        let base_digest = get_str () in
        let next_digest = get_str () in
        let patch_text = get_str () in
        let update = Update.of_bytes (Bytes.of_string (get_str ())) in
        Some { base_digest; next_digest; patch_text; update })
  end

let publish t ~source ~patch ~update =
  let base_digest = Tree.digest source in
  if Sys.file_exists (entry_path t base_digest) then
    err "an update for source state %s is already published" base_digest;
  let next_tree =
    match Diff.apply patch source with
    | Ok tr -> tr
    | Error m -> err "patch does not apply to the published source: %s" m
  in
  let e =
    { base_digest; next_digest = Tree.digest next_tree;
      patch_text = Diff.to_string patch; update }
  in
  write_entry t e;
  e

let pending t ~digest =
  let rec walk digest acc seen =
    if List.mem digest seen then err "repository chain contains a cycle"
    else
      match read_entry t digest with
      | None -> List.rev acc
      | Some e -> walk e.next_digest (e :: acc) (digest :: seen)
  in
  walk digest [] []

type sync_report = {
  applied : string list;
  new_source : Tree.t;
}

let sync t mgr ~source =
  let chain = pending t ~digest:(Tree.digest source) in
  let rec go source applied = function
    | [] -> Ok { applied = List.rev applied; new_source = source }
    | e :: rest -> (
      match Apply.apply mgr e.update with
      | Error ae ->
        Error
          (Format.asprintf "update %s failed: %a" e.update.Update.update_id
             Apply.pp_error ae)
      | Ok _ -> (
        match Diff.parse e.patch_text with
        | Error m -> Error ("corrupt patch in repository: " ^ m)
        | Ok patch -> (
          match Diff.apply patch source with
          | Error m -> Error ("local source does not take the patch: " ^ m)
          | Ok source' ->
            go source' (e.update.Update.update_id :: applied) rest)))
  in
  go source [] chain
