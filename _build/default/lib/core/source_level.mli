(** A source-level hot-update baseline, modelling the §7.1 systems
    (OPUS, LUCOS, DynAMOS) the paper argues against.

    The baseline determines what to replace by diffing the {e source} of
    the patched units (functions whose ASTs changed), compiles only those
    functions, and resolves symbols by name through the kernel's symbol
    table. §3 and §4 of the paper enumerate exactly where this breaks;
    [evaluate] performs those checks statically and reports every reason
    the source-level approach would miss code, lose state, or guess a
    wrong address — without endangering the machine.

    This gives the reproduction a quantitative version of §6.3's
    comparison: how many of the 64 patches a source-level system handles
    safely, versus Ksplice's 64. *)

type failure =
  | Missed_object_changes of string list
      (** functions whose object code changed although their source did
          not (inline ripple, prototype ripple): the baseline would leave
          stale code running (§3.1, §4.2) *)
  | Inline_sites_missed of (string * string) list
      (** (caller, callee): the patched callee is inlined into a caller
          the baseline does not replace (§4.2) *)
  | Ambiguous_symbol of string list
      (** symbols the replacement references that a symbol-table-only
          resolver cannot disambiguate (§4.1) *)
  | Static_local_lost of string list
      (** patched functions with static locals: recompiling from source
          creates fresh storage and silently loses live state (§6.3) *)
  | Assembly_file of string
      (** the patch touches a pure assembly unit (§6.3, CVE-2007-4573) *)

val pp_failure : Format.formatter -> failure -> unit

type verdict = {
  replaced_from_source : string list;  (** what the baseline would patch *)
  failures : failure list;  (** empty = the baseline happens to be safe *)
}

(** [evaluate ~source ~patch ~image] analyses one patch against a running
    kernel built from [source] (with kallsyms [image]). *)
val evaluate :
  source:Patchfmt.Source_tree.t ->
  patch:Patchfmt.Diff.t ->
  image:Klink.Image.t ->
  (verdict, string) result
