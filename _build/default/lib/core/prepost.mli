(** Pre-post differencing (§3): compare the object code of the kernel
    built before and after the patch, per compilation unit, to find what
    actually changed — including functions changed only indirectly (a
    callee was re-inlined, a prototype ripple changed the caller's code).

    Both builds use function/data sections, so the comparison is
    per-function and per-datum; relocation holes are zero in both builds,
    making byte comparison exact without masking heuristics. "Extraneous
    differences between the pre and the post object code are harmless"
    (§3.2): anything that differs is replaced. *)

type unit_diff = {
  unit_name : string;
  changed_functions : string list;  (** text sections differing *)
  new_functions : string list;  (** present only post *)
  removed_functions : string list;  (** present only pre *)
  changed_data : string list;  (** existing data/bss whose initial image changed: the §2 "semantic change" signal *)
  new_data : string list;  (** data/bss present only post *)
}

val pp_unit_diff : Format.formatter -> unit_diff -> unit

(** [fname_of_section s] extracts the function name from a [.text.<f>]
    section. *)
val fname_of_section : Objfile.Section.t -> string option

(** [dataname_of_section s] extracts the datum name from a [.data.<n>] or
    [.bss.<n>] section. *)
val dataname_of_section : Objfile.Section.t -> string option

(** [diff_unit ~pre ~post] compares two builds of one unit (both built
    with function sections). *)
val diff_unit : pre:Objfile.t -> post:Objfile.t -> unit_diff

(** [is_empty d] holds when the patch had no object-code effect on the
    unit. *)
val is_empty : unit_diff -> bool
