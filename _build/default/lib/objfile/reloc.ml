type kind = Abs32 | Pc32

type t = {
  offset : int;
  kind : kind;
  sym : string;
  addend : int32;
}

let kind_name = function Abs32 -> "ABS32" | Pc32 -> "PC32"

let pp ppf r =
  Format.fprintf ppf "@[%04x %s %s%+ld@]" r.offset (kind_name r.kind) r.sym
    r.addend

let equal a b =
  a.offset = b.offset && a.kind = b.kind && String.equal a.sym b.sym
  && Int32.equal a.addend b.addend

let stored_value ~kind ~sym_value ~addend ~place =
  match kind with
  | Abs32 -> Int32.add sym_value addend
  | Pc32 -> Int32.sub (Int32.add sym_value addend) place

let infer_sym_value ~kind ~stored ~addend ~place =
  match kind with
  | Abs32 -> Int32.sub stored addend
  | Pc32 -> Int32.add (Int32.sub stored addend) place
