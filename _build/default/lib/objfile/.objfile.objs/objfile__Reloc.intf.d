lib/objfile/reloc.mli: Format
