lib/objfile/section.ml: Bytes Format List Reloc String
