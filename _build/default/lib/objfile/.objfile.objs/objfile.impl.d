lib/objfile/objfile.ml: Objdump Reloc Section Symbol Unitfile
