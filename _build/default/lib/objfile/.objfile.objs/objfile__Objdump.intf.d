lib/objfile/objdump.mli: Format Reloc Section Unitfile
