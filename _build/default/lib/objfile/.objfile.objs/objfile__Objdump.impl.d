lib/objfile/objdump.ml: Bytes Format List Printf Reloc Section String Symbol Unitfile Vmisa
