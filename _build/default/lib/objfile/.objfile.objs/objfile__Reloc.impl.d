lib/objfile/reloc.ml: Format Int32 String
