lib/objfile/unitfile.ml: Buffer Bytes Format Fun Int32 List Printf Reloc Section String Symbol
