lib/objfile/symbol.mli: Format
