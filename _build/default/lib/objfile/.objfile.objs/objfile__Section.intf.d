lib/objfile/section.mli: Bytes Format Reloc
