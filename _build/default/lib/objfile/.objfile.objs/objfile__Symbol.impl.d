lib/objfile/symbol.ml: Format Option
