lib/objfile/unitfile.mli: Bytes Format Section Symbol
