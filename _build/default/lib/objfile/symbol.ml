type binding = Local | Global

type def = {
  section : string;
  value : int;
}

type t = {
  name : string;
  binding : binding;
  def : def option;
  size : int;
  kind : [ `Func | `Object | `Notype ];
}

let binding_name = function Local -> "l" | Global -> "g"

let kind_name = function `Func -> "F" | `Object -> "O" | `Notype -> "-"

let pp ppf s =
  match s.def with
  | Some d ->
    Format.fprintf ppf "@[%s %s %s+%04x sz=%d %s@]" (binding_name s.binding)
      (kind_name s.kind) d.section d.value s.size s.name
  | None ->
    Format.fprintf ppf "@[%s %s UND %s@]" (binding_name s.binding)
      (kind_name s.kind) s.name

let is_defined s = Option.is_some s.def

let make ?(binding = Global) ?(size = 0) ?(kind = `Notype) ~name def =
  { name; binding; def; size; kind }
