module Isa = Vmisa.Isa

type line = {
  offset : int;
  bytes : string;
  text : string;
  reloc : Reloc.t option;
  target : int option;
}

let hex_of_bytes b pos len =
  String.concat " "
    (List.init len (fun i ->
         Printf.sprintf "%02x" (Bytes.get_uint8 b (pos + i))))

let disassemble (s : Section.t) =
  let reloc_in lo hi =
    List.find_opt (fun (r : Reloc.t) -> r.offset >= lo && r.offset < hi)
      s.relocs
  in
  let rec go pos acc =
    if pos >= s.size then List.rev acc
    else
      match Isa.decode_bytes s.data pos with
      | insn, len ->
        let target =
          match Isa.pc_rel insn with
          | Some (_, disp, _, _) when reloc_in pos (pos + len) = None ->
            Some (pos + len + disp)
          | _ -> None
        in
        go (pos + len)
          ({ offset = pos; bytes = hex_of_bytes s.data pos len;
             text = Isa.insn_to_string insn;
             reloc = reloc_in pos (pos + len); target }
           :: acc)
      | exception Isa.Decode_error _ ->
        go (pos + 1)
          ({ offset = pos; bytes = hex_of_bytes s.data pos 1;
             text =
               Printf.sprintf ".byte 0x%02x" (Bytes.get_uint8 s.data pos);
             reloc = reloc_in pos (pos + 1); target = None }
           :: acc)
  in
  go 0 []

let pp_line ppf l =
  Format.fprintf ppf "%6x:  %-18s %-28s" l.offset l.bytes l.text;
  (match l.target with
   | Some t -> Format.fprintf ppf " -> %#x" t
   | None -> ());
  match l.reloc with
  | Some r ->
    Format.fprintf ppf "  [%s %s%+ld]"
      (match r.kind with Reloc.Abs32 -> "ABS32" | Reloc.Pc32 -> "PC32")
      r.sym r.addend
  | None -> ()

let pp_hexdump ppf (s : Section.t) =
  let n = Bytes.length s.data in
  let rec go pos =
    if pos < n then begin
      let len = min 16 (n - pos) in
      Format.fprintf ppf "%6x:  %s@," pos (hex_of_bytes s.data pos len);
      go (pos + 16)
    end
  in
  go 0;
  List.iter (fun (r : Reloc.t) -> Format.fprintf ppf "    %a@," Reloc.pp r)
    s.relocs

let pp_section ppf (s : Section.t) =
  Format.fprintf ppf "@[<v>section %s (%s, %d bytes, align %d):@," s.name
    (match s.kind with
     | Section.Text -> "text"
     | Section.Data -> "data"
     | Section.Rodata -> "rodata"
     | Section.Bss -> "bss"
     | Section.Note -> "note")
    s.size s.align;
  (match s.kind with
   | Section.Text ->
     List.iter (fun l -> Format.fprintf ppf "%a@," pp_line l) (disassemble s)
   | Section.Bss -> Format.fprintf ppf "  (zero-initialised)@,"
   | Section.Data | Section.Rodata | Section.Note -> pp_hexdump ppf s);
  Format.fprintf ppf "@]"

let pp ppf (o : Unitfile.t) =
  Format.fprintf ppf "@[<v>object file: %s@,@," o.unit_name;
  List.iter (fun s -> Format.fprintf ppf "%a@," pp_section s) o.sections;
  Format.fprintf ppf "symbols:@,";
  List.iter (fun s -> Format.fprintf ppf "  %a@," Symbol.pp s) o.symbols;
  Format.fprintf ppf "@]"
