module Reloc = Reloc
module Symbol = Symbol
module Section = Section
module Objdump = Objdump
include Unitfile
