type kind = Text | Data | Rodata | Bss | Note

type t = {
  name : string;
  kind : kind;
  data : Bytes.t;
  size : int;
  align : int;
  relocs : Reloc.t list;
}

let kind_name = function
  | Text -> "TEXT" | Data -> "DATA" | Rodata -> "RODATA"
  | Bss -> "BSS" | Note -> "NOTE"

let pp ppf s =
  Format.fprintf ppf "@[<v2>%s %s size=%d align=%d relocs=%d@,%a@]" s.name
    (kind_name s.kind) s.size s.align
    (List.length s.relocs)
    (Format.pp_print_list Reloc.pp)
    s.relocs

let make ~name ~kind ~align data relocs =
  let relocs =
    List.sort (fun (a : Reloc.t) b -> compare a.offset b.offset) relocs
  in
  { name; kind; data; size = Bytes.length data; align; relocs }

let make_bss ~name ~align size =
  { name; kind = Bss; data = Bytes.empty; size; align; relocs = [] }

let kind_of_name n =
  let starts p = String.length n >= String.length p
                 && String.sub n 0 (String.length p) = p in
  if starts ".ksplice" then Note
  else if starts ".text" then Text
  else if starts ".rodata" then Rodata
  else if starts ".data" then Data
  else if starts ".bss" then Bss
  else Note

let equal_contents a b =
  a.kind = b.kind && a.size = b.size
  && Bytes.equal a.data b.data
  && List.length a.relocs = List.length b.relocs
  && List.for_all2 Reloc.equal a.relocs b.relocs
