(** Relocations for the SELF object format.

    Exactly the two relocation kinds Ksplice's techniques revolve around
    (paper §4.3):
    - [Abs32]: the stored value is [S + A];
    - [Pc32]: the stored value is [S + A - P], where [P] is the address of
      the relocated field itself. For call/jump operands the compiler uses
      [A = -field_width] so the displacement ends up relative to the next
      instruction, as on x86. *)

type kind = Abs32 | Pc32

type t = {
  offset : int;  (** byte offset of the relocated field within its section *)
  kind : kind;
  sym : string;  (** name of the referenced symbol *)
  addend : int32;  (** the [A] of the relocation formulas *)
}

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** [stored_value ~kind ~sym_value ~addend ~place] computes the field value
    the linker writes: [S + A] for [Abs32], [S + A - P] for [Pc32]. *)
val stored_value :
  kind:kind -> sym_value:int32 -> addend:int32 -> place:int32 -> int32

(** [infer_sym_value ~kind ~stored ~addend ~place] inverts
    {!stored_value}: recovers [S] from an already-relocated field, the core
    equation of run-pre matching ([S = val - A] or [S = val - A + P_run]). *)
val infer_sym_value :
  kind:kind -> stored:int32 -> addend:int32 -> place:int32 -> int32
