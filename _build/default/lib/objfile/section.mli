(** Sections for the SELF object format. *)

type kind = Text | Data | Rodata | Bss | Note

type t = {
  name : string;
  kind : kind;
  data : Bytes.t;  (** empty for [Bss]; its size lives in [size] *)
  size : int;  (** equals [Bytes.length data] except for [Bss] *)
  align : int;  (** required alignment, a power of two *)
  relocs : Reloc.t list;  (** sorted by offset *)
}

val pp : Format.formatter -> t -> unit

(** [make ~name ~kind ~align data relocs] builds a section; [size] is taken
    from [data]. Relocations are sorted by offset. *)
val make :
  name:string -> kind:kind -> align:int -> Bytes.t -> Reloc.t list -> t

(** [make_bss ~name ~align size] builds a zero-filled section with no
    stored bytes. *)
val make_bss : name:string -> align:int -> int -> t

(** [kind_of_name n] guesses the section kind from a section name following
    the usual [.text] / [.text.foo] / [.data] / [.rodata] / [.bss]
    conventions; names starting with [.ksplice] are [Note]. *)
val kind_of_name : string -> kind

(** Equality of contents: same kind, size, bytes and relocation lists.
    Section {e names} are ignored so that the pre-post comparison can match
    sections across builds. *)
val equal_contents : t -> t -> bool
