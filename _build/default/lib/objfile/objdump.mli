(** Object-file disassembly and dumping (the reproduction's objdump).

    Used by `ksplice-tool objdump` and invaluable when diagnosing run-pre
    mismatches: it renders text sections instruction by instruction with
    relocation annotations, so the pre/run divergence the matcher reports
    can be inspected by eye. *)

(** One disassembled instruction. *)
type line = {
  offset : int;
  bytes : string;  (** raw encoding, hex *)
  text : string;  (** rendered mnemonic and operands *)
  reloc : Reloc.t option;  (** relocation landing in this instruction *)
  target : int option;  (** resolved target offset for local jumps *)
}

(** [disassemble section] decodes an entire text section.
    Undecodable bytes produce a [.byte 0x..] line and resynchronise at the
    next offset. *)
val disassemble : Section.t -> line list

val pp_line : Format.formatter -> line -> unit

(** [pp_section ppf s] dumps one section: header, then either
    disassembly (text) or a hex dump (data/rodata) or a size line (bss),
    with relocations. *)
val pp_section : Format.formatter -> Section.t -> unit

(** [pp ppf obj] dumps a whole object file, symbols included. *)
val pp : Format.formatter -> Unitfile.t -> unit
