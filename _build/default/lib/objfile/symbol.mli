(** Symbols for the SELF object format.

    A symbol is either defined (it names an offset within a section of the
    same object file) or undefined (a reference to be resolved at link
    time). [Local] symbols are only visible within their compilation unit —
    these are the source of the ambiguous-name problem run-pre matching
    solves (paper §4.1). *)

type binding = Local | Global

type def = {
  section : string;  (** name of the defining section *)
  value : int;  (** offset within that section *)
}

type t = {
  name : string;
  binding : binding;
  def : def option;  (** [None] for undefined (external) symbols *)
  size : int;  (** size in bytes of the named object, 0 if unknown *)
  kind : [ `Func | `Object | `Notype ];
}

val pp : Format.formatter -> t -> unit
val is_defined : t -> bool

val make :
  ?binding:binding ->
  ?size:int ->
  ?kind:[ `Func | `Object | `Notype ] ->
  name:string ->
  def option ->
  t
