lib/kernel/machine.ml: Array Buffer Bytes Char Format Fun Hashtbl Int32 Klink List Option Printf Vmisa
