lib/kernel/machine.mli: Bytes Format Klink
