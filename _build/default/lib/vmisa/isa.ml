type reg = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7 | SP

let reg_to_int = function
  | R0 -> 0 | R1 -> 1 | R2 -> 2 | R3 -> 3
  | R4 -> 4 | R5 -> 5 | R6 -> 6 | R7 -> 7
  | SP -> 8

let reg_of_int = function
  | 0 -> Some R0 | 1 -> Some R1 | 2 -> Some R2 | 3 -> Some R3
  | 4 -> Some R4 | 5 -> Some R5 | 6 -> Some R6 | 7 -> Some R7
  | 8 -> Some SP
  | _ -> None

let pp_reg ppf r =
  match r with
  | SP -> Format.fprintf ppf "sp"
  | r -> Format.fprintf ppf "r%d" (reg_to_int r)

type cond = Eq | Ne | Lt | Ge | Gt | Le

let cond_to_int = function
  | Eq -> 0 | Ne -> 1 | Lt -> 2 | Ge -> 3 | Gt -> 4 | Le -> 5

let cond_of_int = function
  | 0 -> Some Eq | 1 -> Some Ne | 2 -> Some Lt
  | 3 -> Some Ge | 4 -> Some Gt | 5 -> Some Le
  | _ -> None

let cond_name = function
  | Eq -> "e" | Ne -> "ne" | Lt -> "l" | Ge -> "ge" | Gt -> "g" | Le -> "le"

let pp_cond ppf c = Format.pp_print_string ppf (cond_name c)

type width = W8 | W16 | W32

let width_name = function W8 -> "b" | W16 -> "h" | W32 -> "w"

type insn =
  | Hlt
  | Nop of int
  | Mov_rr of reg * reg
  | Mov_ri of reg * int32
  | Load of width * reg * reg * int
  | Store of width * reg * int * reg
  | Load_abs of width * reg * int32
  | Store_abs of width * int32 * reg
  | Add of reg * reg
  | Sub of reg * reg
  | Mul of reg * reg
  | Div of reg * reg
  | Mod of reg * reg
  | And of reg * reg
  | Or of reg * reg
  | Xor of reg * reg
  | Shl of reg * reg
  | Shr of reg * reg
  | Sar of reg * reg
  | Addi of reg * int32
  | Cmp of reg * reg
  | Cmpi of reg * int32
  | Neg of reg
  | Not of reg
  | Setcc of cond * reg
  | Jmp of int32
  | Jmp_s of int
  | Jcc of cond * int32
  | Jcc_s of cond * int
  | Call of int32
  | Call_r of reg
  | Ret
  | Push of reg
  | Pop of reg
  | Sext8 of reg
  | Sext16 of reg
  | Zext8 of reg
  | Zext16 of reg
  | Int of int

let pp_insn ppf i =
  let f fmt = Format.fprintf ppf fmt in
  let alu name a b = f "%s %a, %a" name pp_reg a pp_reg b in
  match i with
  | Hlt -> f "hlt"
  | Nop n -> f "nop%d" n
  | Mov_rr (a, b) -> alu "mov" a b
  | Mov_ri (a, v) -> f "mov %a, %ld" pp_reg a v
  | Load (w, rd, rb, off) ->
    f "load%s %a, [%a%+d]" (width_name w) pp_reg rd pp_reg rb off
  | Store (w, rb, off, rs) ->
    f "store%s [%a%+d], %a" (width_name w) pp_reg rb off pp_reg rs
  | Load_abs (w, rd, a) -> f "load%s %a, [0x%lx]" (width_name w) pp_reg rd a
  | Store_abs (w, a, rs) -> f "store%s [0x%lx], %a" (width_name w) a pp_reg rs
  | Add (a, b) -> alu "add" a b
  | Sub (a, b) -> alu "sub" a b
  | Mul (a, b) -> alu "mul" a b
  | Div (a, b) -> alu "div" a b
  | Mod (a, b) -> alu "mod" a b
  | And (a, b) -> alu "and" a b
  | Or (a, b) -> alu "or" a b
  | Xor (a, b) -> alu "xor" a b
  | Shl (a, b) -> alu "shl" a b
  | Shr (a, b) -> alu "shr" a b
  | Sar (a, b) -> alu "sar" a b
  | Addi (a, v) -> f "addi %a, %ld" pp_reg a v
  | Cmp (a, b) -> alu "cmp" a b
  | Cmpi (a, v) -> f "cmpi %a, %ld" pp_reg a v
  | Neg r -> f "neg %a" pp_reg r
  | Not r -> f "not %a" pp_reg r
  | Setcc (c, r) -> f "set%s %a" (cond_name c) pp_reg r
  | Jmp d -> f "jmp %+ld" d
  | Jmp_s d -> f "jmps %+d" d
  | Jcc (c, d) -> f "j%s %+ld" (cond_name c) d
  | Jcc_s (c, d) -> f "j%ss %+d" (cond_name c) d
  | Call d -> f "call %+ld" d
  | Call_r r -> f "callr %a" pp_reg r
  | Ret -> f "ret"
  | Push r -> f "push %a" pp_reg r
  | Pop r -> f "pop %a" pp_reg r
  | Sext8 r -> f "sext8 %a" pp_reg r
  | Sext16 r -> f "sext16 %a" pp_reg r
  | Zext8 r -> f "zext8 %a" pp_reg r
  | Zext16 r -> f "zext16 %a" pp_reg r
  | Int n -> f "int 0x%x" n

let insn_to_string i = Format.asprintf "%a" pp_insn i

let length = function
  | Hlt | Ret -> 1
  | Nop n -> n
  | Mov_rr _ | Add _ | Sub _ | Mul _ | Div _ | Mod _ | And _ | Or _ | Xor _
  | Shl _ | Shr _ | Sar _ | Cmp _ | Setcc _ -> 3
  | Mov_ri _ | Addi _ | Cmpi _ | Load_abs _ | Store_abs _ -> 6
  | Load _ | Store _ -> 5
  | Neg _ | Not _ | Jmp_s _ | Jcc_s _ | Call_r _ | Push _ | Pop _
  | Sext8 _ | Sext16 _ | Zext8 _ | Zext16 _ | Int _ -> 2
  | Jmp _ | Jcc _ | Call _ -> 5

(* Opcode map; see isa.mli for the instruction set overview. *)
let op_hlt = 0x00
let op_nop1 = 0x01
let op_nop2 = 0x02
let op_nop3 = 0x03
let op_mov_rr = 0x10
let op_mov_ri = 0x11
let op_load_w32 = 0x12
let op_store_w32 = 0x13
let op_load_w8 = 0x14
let op_store_w8 = 0x15
let op_load_abs_w32 = 0x16
let op_store_abs_w32 = 0x17
let op_load_w16 = 0x18
let op_store_w16 = 0x19
let op_load_abs_w8 = 0x1A
let op_store_abs_w8 = 0x1B
let op_load_abs_w16 = 0x1C
let op_store_abs_w16 = 0x1D
let op_add = 0x20
let op_addi = 0x2B
let op_cmp = 0x2C
let op_cmpi = 0x2D
let op_neg = 0x2E
let op_not = 0x2F
let op_jmp = 0x30
let op_jmp_s = 0x31
let op_jcc = 0x32 (* .. 0x37 *)
let op_jcc_s = 0x38 (* .. 0x3D *)
let op_call = 0x40
let op_call_r = 0x41
let op_ret = 0x42
let op_push = 0x43
let op_pop = 0x44
let op_setcc = 0x46
let op_sext8 = 0x50
let op_sext16 = 0x51
let op_zext8 = 0x52
let op_zext16 = 0x53
let op_int = 0x60

let alu_index = function
  | Add _ -> 0 | Sub _ -> 1 | Mul _ -> 2 | Div _ -> 3 | Mod _ -> 4
  | And _ -> 5 | Or _ -> 6 | Xor _ -> 7 | Shl _ -> 8 | Shr _ -> 9
  | Sar _ -> 10
  | _ -> invalid_arg "alu_index"

let fits_i8 d = d >= -128 && d <= 127
let fits_i16 d = d >= -32768 && d <= 32767

let encode buf pos i =
  let b8 off v = Bytes.set_uint8 buf (pos + off) (v land 0xff) in
  let b16 off v =
    if not (fits_i16 v) then invalid_arg "Isa.encode: off16 overflow";
    Bytes.set_uint16_le buf (pos + off) (v land 0xffff)
  in
  let b32 off v = Bytes.set_int32_le buf (pos + off) v in
  let r off reg = b8 off (reg_to_int reg) in
  (match i with
   | Hlt -> b8 0 op_hlt
   | Nop 1 -> b8 0 op_nop1
   | Nop 2 -> b8 0 op_nop2; b8 1 0
   | Nop 3 -> b8 0 op_nop3; b8 1 0; b8 2 0
   | Nop _ -> invalid_arg "Isa.encode: nop width must be 1..3"
   | Mov_rr (a, b) -> b8 0 op_mov_rr; r 1 a; r 2 b
   | Mov_ri (a, v) -> b8 0 op_mov_ri; r 1 a; b32 2 v
   | Load (w, rd, rb, off) ->
     let op = match w with
       | W32 -> op_load_w32 | W8 -> op_load_w8 | W16 -> op_load_w16 in
     b8 0 op; r 1 rd; r 2 rb; b16 3 off
   | Store (w, rb, off, rs) ->
     let op = match w with
       | W32 -> op_store_w32 | W8 -> op_store_w8 | W16 -> op_store_w16 in
     b8 0 op; r 1 rb; b16 2 off; r 4 rs
   | Load_abs (w, rd, a) ->
     let op = match w with
       | W32 -> op_load_abs_w32 | W8 -> op_load_abs_w8
       | W16 -> op_load_abs_w16 in
     b8 0 op; r 1 rd; b32 2 a
   | Store_abs (w, a, rs) ->
     let op = match w with
       | W32 -> op_store_abs_w32 | W8 -> op_store_abs_w8
       | W16 -> op_store_abs_w16 in
     b8 0 op; b32 1 a; r 5 rs
   | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Mod (a, b)
   | And (a, b) | Or (a, b) | Xor (a, b) | Shl (a, b) | Shr (a, b)
   | Sar (a, b) ->
     b8 0 (op_add + alu_index i); r 1 a; r 2 b
   | Addi (a, v) -> b8 0 op_addi; r 1 a; b32 2 v
   | Cmp (a, b) -> b8 0 op_cmp; r 1 a; r 2 b
   | Cmpi (a, v) -> b8 0 op_cmpi; r 1 a; b32 2 v
   | Neg a -> b8 0 op_neg; r 1 a
   | Not a -> b8 0 op_not; r 1 a
   | Setcc (c, a) -> b8 0 op_setcc; b8 1 (cond_to_int c); r 2 a
   | Jmp d -> b8 0 op_jmp; b32 1 d
   | Jmp_s d ->
     if not (fits_i8 d) then invalid_arg "Isa.encode: short jump overflow";
     b8 0 op_jmp_s; b8 1 d
   | Jcc (c, d) -> b8 0 (op_jcc + cond_to_int c); b32 1 d
   | Jcc_s (c, d) ->
     if not (fits_i8 d) then invalid_arg "Isa.encode: short jump overflow";
     b8 0 (op_jcc_s + cond_to_int c); b8 1 d
   | Call d -> b8 0 op_call; b32 1 d
   | Call_r a -> b8 0 op_call_r; r 1 a
   | Ret -> b8 0 op_ret
   | Push a -> b8 0 op_push; r 1 a
   | Pop a -> b8 0 op_pop; r 1 a
   | Sext8 a -> b8 0 op_sext8; r 1 a
   | Sext16 a -> b8 0 op_sext16; r 1 a
   | Zext8 a -> b8 0 op_zext8; r 1 a
   | Zext16 a -> b8 0 op_zext16; r 1 a
   | Int n -> b8 0 op_int; b8 1 n);
  length i

let encode_to_bytes i =
  let b = Bytes.create (length i) in
  ignore (encode b 0 i : int);
  b

exception Decode_error of int

let decode get pos =
  let u8 off = get (pos + off) land 0xff in
  let i8 off = let v = u8 off in if v >= 0x80 then v - 0x100 else v in
  let i16 off =
    let v = u8 off lor (u8 (off + 1) lsl 8) in
    if v >= 0x8000 then v - 0x10000 else v
  in
  let i32 off =
    let a = u8 off and b = u8 (off + 1) and c = u8 (off + 2)
    and d = u8 (off + 3) in
    Int32.logor
      (Int32.of_int (a lor (b lsl 8) lor (c lsl 16)))
      (Int32.shift_left (Int32.of_int d) 24)
  in
  let reg off =
    match reg_of_int (u8 off) with
    | Some r -> r
    | None -> raise (Decode_error pos)
  in
  let op = u8 0 in
  let i =
    if op = op_hlt then Hlt
    else if op = op_nop1 then Nop 1
    else if op = op_nop2 then Nop 2
    else if op = op_nop3 then Nop 3
    else if op = op_mov_rr then Mov_rr (reg 1, reg 2)
    else if op = op_mov_ri then Mov_ri (reg 1, i32 2)
    else if op = op_load_w32 then Load (W32, reg 1, reg 2, i16 3)
    else if op = op_load_w8 then Load (W8, reg 1, reg 2, i16 3)
    else if op = op_load_w16 then Load (W16, reg 1, reg 2, i16 3)
    else if op = op_store_w32 then Store (W32, reg 1, i16 2, reg 4)
    else if op = op_store_w8 then Store (W8, reg 1, i16 2, reg 4)
    else if op = op_store_w16 then Store (W16, reg 1, i16 2, reg 4)
    else if op = op_load_abs_w32 then Load_abs (W32, reg 1, i32 2)
    else if op = op_load_abs_w8 then Load_abs (W8, reg 1, i32 2)
    else if op = op_load_abs_w16 then Load_abs (W16, reg 1, i32 2)
    else if op = op_store_abs_w32 then Store_abs (W32, i32 1, reg 5)
    else if op = op_store_abs_w8 then Store_abs (W8, i32 1, reg 5)
    else if op = op_store_abs_w16 then Store_abs (W16, i32 1, reg 5)
    else if op >= op_add && op <= op_add + 10 then begin
      let a = reg 1 and b = reg 2 in
      match op - op_add with
      | 0 -> Add (a, b) | 1 -> Sub (a, b) | 2 -> Mul (a, b)
      | 3 -> Div (a, b) | 4 -> Mod (a, b) | 5 -> And (a, b)
      | 6 -> Or (a, b) | 7 -> Xor (a, b) | 8 -> Shl (a, b)
      | 9 -> Shr (a, b) | _ -> Sar (a, b)
    end
    else if op = op_addi then Addi (reg 1, i32 2)
    else if op = op_cmp then Cmp (reg 1, reg 2)
    else if op = op_cmpi then Cmpi (reg 1, i32 2)
    else if op = op_neg then Neg (reg 1)
    else if op = op_not then Not (reg 1)
    else if op = op_setcc then begin
      match cond_of_int (u8 1) with
      | Some c -> Setcc (c, reg 2)
      | None -> raise (Decode_error pos)
    end
    else if op = op_jmp then Jmp (i32 1)
    else if op = op_jmp_s then Jmp_s (i8 1)
    else if op >= op_jcc && op < op_jcc + 6 then begin
      match cond_of_int (op - op_jcc) with
      | Some c -> Jcc (c, i32 1)
      | None -> raise (Decode_error pos)
    end
    else if op >= op_jcc_s && op < op_jcc_s + 6 then begin
      match cond_of_int (op - op_jcc_s) with
      | Some c -> Jcc_s (c, i8 1)
      | None -> raise (Decode_error pos)
    end
    else if op = op_call then Call (i32 1)
    else if op = op_call_r then Call_r (reg 1)
    else if op = op_ret then Ret
    else if op = op_push then Push (reg 1)
    else if op = op_pop then Pop (reg 1)
    else if op = op_sext8 then Sext8 (reg 1)
    else if op = op_sext16 then Sext16 (reg 1)
    else if op = op_zext8 then Zext8 (reg 1)
    else if op = op_zext16 then Zext16 (reg 1)
    else if op = op_int then Int (u8 1)
    else raise (Decode_error pos)
  in
  (i, length i)

let decode_bytes b pos =
  if pos < 0 || pos >= Bytes.length b then raise (Decode_error pos);
  let get off =
    if off >= Bytes.length b then raise (Decode_error pos)
    else Bytes.get_uint8 b off
  in
  decode get pos

let is_nop = function Nop _ -> true | _ -> false

type jump_class = Cjmp | Cjcc of cond | Ccall

let pc_rel = function
  | Jmp d -> Some (Cjmp, Int32.to_int d, 1, 4)
  | Jmp_s d -> Some (Cjmp, d, 1, 1)
  | Jcc (c, d) -> Some (Cjcc c, Int32.to_int d, 1, 4)
  | Jcc_s (c, d) -> Some (Cjcc c, d, 1, 1)
  | Call d -> Some (Ccall, Int32.to_int d, 1, 4)
  | _ -> None

let with_disp i disp =
  match i with
  | Jmp _ -> Jmp (Int32.of_int disp)
  | Jcc (c, _) -> Jcc (c, Int32.of_int disp)
  | Call _ -> Call (Int32.of_int disp)
  | Jmp_s _ ->
    if fits_i8 disp then Jmp_s disp
    else invalid_arg "Isa.with_disp: short jump overflow"
  | Jcc_s (c, _) ->
    if fits_i8 disp then Jcc_s (c, disp)
    else invalid_arg "Isa.with_disp: short jump overflow"
  | _ -> invalid_arg "Isa.with_disp: not a pc-relative instruction"

let same_shape a b =
  match pc_rel a, pc_rel b with
  | Some (ca, _, _, _), Some (cb, _, _, _) -> ca = cb
  | None, None -> a = b
  | _ -> false

let imm_field = function
  | Mov_ri _ | Addi _ | Cmpi _ | Load_abs _ -> Some (2, 4)
  | Store_abs _ -> Some (1, 4)
  | _ -> None
