(** KVX-32: the simulated 32-bit instruction set used by the kernel VM.

    KVX-32 stands in for x86-32 (see DESIGN.md). It deliberately reproduces
    the properties Ksplice's run-pre matching depends on: variable-length
    byte-encoded instructions, pc-relative jumps and calls in both short
    (rel8) and long (rel32) forms, and multi-byte no-op sequences used by the
    assembler for alignment padding. *)

(** General-purpose registers. [SP] is the stack pointer; by software
    convention [R6] is the frame pointer and [R0] carries return values. *)
type reg = R0 | R1 | R2 | R3 | R4 | R5 | R6 | R7 | SP

val reg_to_int : reg -> int
val reg_of_int : int -> reg option
val pp_reg : Format.formatter -> reg -> unit

(** Condition codes for conditional jumps (signed comparisons). *)
type cond = Eq | Ne | Lt | Ge | Gt | Le

val cond_to_int : cond -> int
val cond_of_int : int -> cond option
val pp_cond : Format.formatter -> cond -> unit

(** Memory access widths. 8- and 16-bit loads zero-extend; signedness is the
    compiler's job via {!Sext8}/{!Sext16}. *)
type width = W8 | W16 | W32

(** Instructions. Relative displacements in [Jmp]/[Jcc]/[Call] (and their
    short forms) are relative to the address of the {e next} instruction,
    matching the x86 convention the paper's addend discussion (§4.3) uses. *)
type insn =
  | Hlt
  | Nop of int  (** no-op of width 1, 2 or 3 bytes *)
  | Mov_rr of reg * reg  (** rd <- rs *)
  | Mov_ri of reg * int32  (** rd <- imm32 (imm may be a relocation site) *)
  | Load of width * reg * reg * int  (** rd <- mem[rs + off16] *)
  | Store of width * reg * int * reg  (** mem[rbase + off16] <- rs *)
  | Load_abs of width * reg * int32  (** rd <- mem[abs32] *)
  | Store_abs of width * int32 * reg  (** mem[abs32] <- rs *)
  | Add of reg * reg
  | Sub of reg * reg
  | Mul of reg * reg
  | Div of reg * reg
  | Mod of reg * reg
  | And of reg * reg
  | Or of reg * reg
  | Xor of reg * reg
  | Shl of reg * reg
  | Shr of reg * reg
  | Sar of reg * reg
  | Addi of reg * int32
  | Cmp of reg * reg  (** set flags from rd - rs *)
  | Cmpi of reg * int32
  | Neg of reg
  | Not of reg
  | Setcc of cond * reg  (** rd <- 1 if flags satisfy cond else 0 *)
  | Jmp of int32  (** long unconditional jump, rel32 *)
  | Jmp_s of int  (** short unconditional jump, rel8 (signed) *)
  | Jcc of cond * int32  (** long conditional jump, rel32 *)
  | Jcc_s of cond * int  (** short conditional jump, rel8 (signed) *)
  | Call of int32  (** push return address, jump rel32 *)
  | Call_r of reg  (** indirect call through register *)
  | Ret
  | Push of reg
  | Pop of reg
  | Sext8 of reg
  | Sext16 of reg
  | Zext8 of reg
  | Zext16 of reg
  | Int of int  (** host escape / trap, imm8 *)

val pp_insn : Format.formatter -> insn -> unit
val insn_to_string : insn -> string

(** [length i] is the encoded size of [i] in bytes. *)
val length : insn -> int

(** [encode buf pos i] writes the encoding of [i] at [pos] and returns the
    number of bytes written. @raise Invalid_argument on malformed operands
    (e.g. a short displacement that does not fit in 8 bits). *)
val encode : Bytes.t -> int -> insn -> int

(** [encode_to_bytes i] is the encoding of [i] as a fresh byte string. *)
val encode_to_bytes : insn -> Bytes.t

(** Decode failure: the opcode byte at the given offset is not a valid
    instruction, or the instruction is truncated. *)
exception Decode_error of int

(** [decode get pos] decodes one instruction whose first byte is [get pos];
    returns the instruction and its length.
    @raise Decode_error if the bytes do not form a valid instruction. *)
val decode : (int -> int) -> int -> insn * int

(** [decode_bytes b pos] decodes from a byte string. *)
val decode_bytes : Bytes.t -> int -> insn * int

(** [is_nop i] is true for no-op instructions of any width. *)
val is_nop : insn -> bool

(** Classification of pc-relative control transfers, used by run-pre
    matching to compare jumps whose encodings (short vs long) or
    displacements differ between the run and pre code. *)
type jump_class = Cjmp | Cjcc of cond | Ccall

(** [pc_rel i] is [Some (cls, disp, field_off, field_size)] when [i] has a
    pc-relative displacement operand: [disp] relative to the next
    instruction, located [field_off] bytes into the encoding and
    [field_size] bytes wide. *)
val pc_rel : insn -> (jump_class * int * int * int) option

(** [with_disp i disp] replaces the displacement of a pc-relative
    instruction. @raise Invalid_argument on non-jump instructions or a short
    form whose new displacement does not fit. *)
val with_disp : insn -> int -> insn

(** [same_shape a b] holds when [a] and [b] are the same instruction up to
    pc-relative displacement values and short/long encoding of the same jump
    class. Non-jump instructions must be structurally equal. Run-pre
    matching uses this as its per-instruction equivalence. *)
val same_shape : insn -> insn -> bool

(** [imm_field i] is [Some (field_off, field_size)] for instructions that
    carry a 32-bit immediate or absolute-address operand (the positions
    where [Abs32] relocations may appear). *)
val imm_field : insn -> (int * int) option
