lib/vmisa/isa.mli: Bytes Format
