lib/vmisa/isa.ml: Bytes Format Int32
