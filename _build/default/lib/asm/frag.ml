module Isa = Vmisa.Isa
module Reloc = Objfile.Reloc

type item =
  | I of Isa.insn
  | I_reloc of Isa.insn * Reloc.kind * string * int32
  | Jump of Isa.jump_class * string
  | Lbl of string
  | Align of int
  | Raw of Bytes.t
  | Word_reloc of string * int32

type t = { mutable items : item list (* reversed *) }

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let create () = { items = [] }
let add t i = t.items <- i :: t.items
let insn t i = add t (I i)

let insn_reloc t i kind sym addend =
  (match Isa.imm_field i, Isa.pc_rel i with
   | None, None ->
     invalid_arg "Frag.insn_reloc: instruction has no relocatable field"
   | _ -> ());
  add t (I_reloc (i, kind, sym, addend))

let long_jump_insn cls =
  match cls with
  | Isa.Cjmp -> Isa.Jmp 0l
  | Isa.Cjcc c -> Isa.Jcc (c, 0l)
  | Isa.Ccall -> Isa.Call 0l

let jump_reloc t cls sym =
  add t (I_reloc (long_jump_insn cls, Reloc.Pc32, sym, -4l))

let jump t cls label = add t (Jump (cls, label))

let label t name =
  let exists =
    List.exists (function Lbl n -> String.equal n name | _ -> false) t.items
  in
  if exists then invalid_arg ("Frag.label: duplicate label " ^ name);
  add t (Lbl name)

let align t n =
  if n land (n - 1) <> 0 || n <= 0 then invalid_arg "Frag.align";
  add t (Align n)

let bytes t b = add t (Raw b)
let string t s = add t (Raw (Bytes.of_string s))

let word t v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 v;
  add t (Raw b)

let word_reloc t sym addend = add t (Word_reloc (sym, addend))

let zeros t n = add t (Raw (Bytes.make n '\000'))

type image = {
  data : Bytes.t;
  relocs : Objfile.Reloc.t list;
  labels : (string * int) list;
}

let fits_i8 d = d >= -128 && d <= 127

(* Greedy no-op padding using the widest available no-op sequences. *)
let pad_nops buf pos n =
  let rec go pos n =
    if n >= 3 then begin
      ignore (Isa.encode buf pos (Isa.Nop 3) : int);
      go (pos + 3) (n - 3)
    end
    else if n = 2 then ignore (Isa.encode buf pos (Isa.Nop 2) : int)
    else if n = 1 then ignore (Isa.encode buf pos (Isa.Nop 1) : int)
  in
  go pos n

let assemble t ~text =
  let items = Array.of_list (List.rev t.items) in
  let n = Array.length items in
  (* short.(i) is the current relaxation state of Jump items. *)
  let short = Array.make n false in
  let sizes = Array.make n 0 in
  let offsets = Array.make n 0 in
  let compute_layout () =
    let pos = ref 0 in
    for i = 0 to n - 1 do
      offsets.(i) <- !pos;
      let sz =
        match items.(i) with
        | I insn -> Isa.length insn
        | I_reloc (insn, _, _, _) -> Isa.length insn
        | Jump (Isa.Ccall, _) -> 5
        | Jump (_, _) -> if short.(i) then 2 else 5
        | Lbl _ -> 0
        | Align a -> (a - (!pos mod a)) mod a
        | Raw b -> Bytes.length b
        | Word_reloc _ -> 4
      in
      sizes.(i) <- sz;
      pos := !pos + sz
    done;
    !pos
  in
  let label_offsets () =
    let tbl = Hashtbl.create 16 in
    Array.iteri
      (fun i it ->
        match it with Lbl name -> Hashtbl.replace tbl name offsets.(i) | _ -> ())
      items;
    tbl
  in
  (* Relaxation: start long, shrink while displacements fit. *)
  let total = ref (compute_layout ()) in
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < 100 do
    changed := false;
    incr iters;
    let labels = label_offsets () in
    Array.iteri
      (fun i it ->
        match it with
        | Jump (Isa.Ccall, _) -> ()
        | Jump (_, name) when not short.(i) ->
          (match Hashtbl.find_opt labels name with
           | None -> err "undefined jump target %s" name
           | Some target ->
             let disp = target - (offsets.(i) + 2) in
             if fits_i8 disp then begin
               short.(i) <- true;
               changed := true
             end)
        | _ -> ())
      items;
    if !changed then total := compute_layout ()
  done;
  (* Verify short choices against the final layout; re-expand if an
     alignment interaction invalidated one (then re-verify once). *)
  let verify () =
    let labels = label_offsets () in
    let ok = ref true in
    Array.iteri
      (fun i it ->
        match it with
        | Jump (cls, name) when short.(i) && cls <> Isa.Ccall ->
          let target = Hashtbl.find labels name in
          let disp = target - (offsets.(i) + 2) in
          if not (fits_i8 disp) then begin
            short.(i) <- false;
            ok := false
          end
        | _ -> ())
      items;
    !ok
  in
  while not (verify ()) do
    total := compute_layout ()
  done;
  let labels = label_offsets () in
  let buf = Bytes.make !total '\000' in
  let relocs = ref [] in
  Array.iteri
    (fun i it ->
      let pos = offsets.(i) in
      match it with
      | I insn -> ignore (Isa.encode buf pos insn : int)
      | I_reloc (insn, kind, sym, addend) ->
        ignore (Isa.encode buf pos insn : int);
        let field_off =
          match Isa.imm_field insn with
          | Some (off, _) -> off
          | None ->
            (match Isa.pc_rel insn with
             | Some (_, _, off, 4) -> off
             | Some _ ->
               err "relocation on short-form jump operand"
             | None -> assert false)
        in
        relocs := { Reloc.offset = pos + field_off; kind; sym; addend }
                  :: !relocs
      | Jump (cls, name) ->
        let target = Hashtbl.find labels name in
        let insn =
          if short.(i) then
            let disp = target - (pos + 2) in
            match cls with
            | Isa.Cjmp -> Isa.Jmp_s disp
            | Isa.Cjcc c -> Isa.Jcc_s (c, disp)
            | Isa.Ccall -> assert false
          else
            let disp = target - (pos + 5) in
            match cls with
            | Isa.Cjmp -> Isa.Jmp (Int32.of_int disp)
            | Isa.Cjcc c -> Isa.Jcc (c, Int32.of_int disp)
            | Isa.Ccall -> Isa.Call (Int32.of_int disp)
        in
        ignore (Isa.encode buf pos insn : int)
      | Lbl _ -> ()
      | Align _ ->
        if text then pad_nops buf pos sizes.(i)
        (* data alignment is already zero-filled *)
      | Raw b -> Bytes.blit b 0 buf pos (Bytes.length b)
      | Word_reloc (sym, addend) ->
        relocs := { Reloc.offset = pos; kind = Reloc.Abs32; sym; addend }
                  :: !relocs)
    items;
  let label_list =
    Array.to_list items
    |> List.mapi (fun i it -> (i, it))
    |> List.filter_map (fun (i, it) ->
         match it with Lbl name -> Some (name, offsets.(i)) | _ -> None)
  in
  { data = buf; relocs = List.rev !relocs; labels = label_list }
