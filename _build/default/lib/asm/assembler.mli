(** Textual assembler for [.s] files.

    The kernel's entry path (the analogue of the paper's [ia32entry.S]) is
    written in this syntax; Ksplice handles patches to it "using the same
    techniques and code that handle patches to pure C functions" (§6.3),
    which requires assembly sources to flow through the same object-file
    pipeline as compiled C.

    Syntax summary (one statement per line, [;]/[#] start comments):
    {v
    .text | .data | .rodata | .bss
    .global NAME           ; default binding is local
    .align N
    .word INT | .word SYM | .word SYM+INT
    .space N
    .asciz "..."
    NAME:                  ; labels starting with .L are assembly-local
    mov r0, 42 | mov r0, sym | mov r0, r1
    loadw r0, [r1+4] | loadb | loadh ; storew [r1+4], r0 | ...
    loadw r0, [sym] | storew [sym], r0
    add|sub|mul|div|mod|and|or|xor|shl|shr|sar rd, rs
    addi rd, imm ; cmp rd, rs ; cmpi rd, imm ; neg rd ; not rd
    sete|setne|setl|setge|setg|setle rd
    jmp L ; je|jne|jl|jge|jg|jle L ; call L   ; L may be extern
    callr rd ; ret ; push rd ; pop rd
    sext8|sext16|zext8|zext16 rd ; int N ; hlt ; nop
    v} *)

exception Error of { line : int; msg : string }

(** [assemble ~unit_name ~function_sections src] assembles [src].

    With [function_sections] false, text goes into a single [.text] section
    (and data into [.data] etc.). With it true, each non-local text label
    starts its own [.text.<name>] section and each data label its own
    [.data.<name>] / [.rodata.<name>] / [.bss.<name>] section — the
    assembler-level analogue of [-ffunction-sections -fdata-sections].

    @raise Error on syntax or semantic errors. *)
val assemble :
  unit_name:string -> function_sections:bool -> string -> Objfile.t
