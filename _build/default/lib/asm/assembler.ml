module Isa = Vmisa.Isa
module Reloc = Objfile.Reloc
module Symbol = Objfile.Symbol
module Section = Objfile.Section

exception Error of { line : int; msg : string }

let err line fmt =
  Format.kasprintf (fun msg -> raise (Error { line; msg })) fmt

(* --- statements --- *)

type wordval = Wint of int32 | Wsym of string * int32

type istmt =
  | Plain of Isa.insn
  | Mov_sym of Isa.reg * string * int32
  | Load_abs_sym of Isa.width * Isa.reg * string
  | Store_abs_sym of Isa.width * string * Isa.reg
  | Jump_sym of Isa.jump_class * string

type stmt =
  | Sec of string
  | Global of string
  | Align_d of int
  | Space of int
  | Word_d of wordval
  | Asciz of string
  | Label_d of string
  | Ins of istmt

(* --- lexing helpers --- *)

let strip_comment line =
  let cut =
    let n = String.length line in
    let rec find i in_str =
      if i >= n then n
      else
        match line.[i] with
        | '"' -> find (i + 1) (not in_str)
        | ('#' | ';') when not in_str -> i
        | _ -> find (i + 1) in_str
    in
    find 0 false
  in
  String.trim (String.sub line 0 cut)

let tokenize lineno s =
  (* split on whitespace and commas; keep bracket expressions together *)
  let toks = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  let in_str = ref false in
  String.iter
    (fun c ->
      if !in_str then begin
        Buffer.add_char buf c;
        if c = '"' then in_str := false
      end
      else
        match c with
        | ' ' | '\t' | ',' -> flush ()
        | '"' ->
          Buffer.add_char buf c;
          in_str := true
        | c -> Buffer.add_char buf c)
    s;
  if !in_str then err lineno "unterminated string";
  flush ();
  List.rev !toks

let parse_int lineno s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> err lineno "expected integer, got %S" s

let parse_reg lineno s =
  match String.lowercase_ascii s with
  | "r0" -> Isa.R0 | "r1" -> Isa.R1 | "r2" -> Isa.R2 | "r3" -> Isa.R3
  | "r4" -> Isa.R4 | "r5" -> Isa.R5 | "r6" | "fp" -> Isa.R6 | "r7" -> Isa.R7
  | "sp" -> Isa.SP
  | _ -> err lineno "expected register, got %S" s

let is_ident s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | '.' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> true
         | _ -> false)
       s

(* [sym+off] or [reg+off] contents between brackets *)
let parse_mem lineno s =
  let s =
    if String.length s >= 2 && s.[0] = '[' && s.[String.length s - 1] = ']'
    then String.sub s 1 (String.length s - 2)
    else err lineno "expected memory operand [..], got %S" s
  in
  let base, off =
    match String.index_opt s '+' with
    | Some i ->
      ( String.sub s 0 i,
        parse_int lineno (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (
      match String.rindex_opt s '-' with
      | Some i when i > 0 ->
        ( String.sub s 0 i,
          -parse_int lineno (String.sub s (i + 1) (String.length s - i - 1))
        )
      | _ -> (s, 0))
  in
  match String.lowercase_ascii base with
  | "r0" | "r1" | "r2" | "r3" | "r4" | "r5" | "r6" | "r7" | "sp" | "fp" ->
    `Reg (parse_reg lineno base, off)
  | _ when is_ident base ->
    if off <> 0 then err lineno "symbol memory operand cannot carry offset"
    else `Sym base
  | _ -> err lineno "bad memory operand base %S" base

let cond_of_mnemonic = function
  | "e" -> Some Isa.Eq | "ne" -> Some Isa.Ne | "l" -> Some Isa.Lt
  | "ge" -> Some Isa.Ge | "g" -> Some Isa.Gt | "le" -> Some Isa.Le
  | _ -> None

let parse_insn lineno mnem args =
  let reg i = parse_reg lineno (List.nth args i) in
  let imm i = Int32.of_int (parse_int lineno (List.nth args i)) in
  let nargs = List.length args in
  let need n = if nargs <> n then err lineno "%s expects %d operands" mnem n in
  let alu f = need 2; Plain (f (reg 0) (reg 1)) in
  let unary f = need 1; Plain (f (reg 0)) in
  let width_suffix m =
    match m with
    | 'w' -> Isa.W32 | 'b' -> Isa.W8 | 'h' -> Isa.W16
    | _ -> err lineno "bad width suffix"
  in
  match mnem with
  | "hlt" -> need 0; Plain Isa.Hlt
  | "nop" -> need 0; Plain (Isa.Nop 1)
  | "nop2" -> need 0; Plain (Isa.Nop 2)
  | "nop3" -> need 0; Plain (Isa.Nop 3)
  | "ret" -> need 0; Plain Isa.Ret
  | "mov" ->
    need 2;
    let dst = reg 0 in
    let src = List.nth args 1 in
    (match String.lowercase_ascii src with
     | "r0" | "r1" | "r2" | "r3" | "r4" | "r5" | "r6" | "r7" | "sp" | "fp" ->
       Plain (Isa.Mov_rr (dst, parse_reg lineno src))
     | _ ->
       (match int_of_string_opt src with
        | Some v -> Plain (Isa.Mov_ri (dst, Int32.of_int v))
        | None ->
          if is_ident src then Mov_sym (dst, src, 0l)
          else err lineno "bad mov source %S" src))
  | "loadw" | "loadb" | "loadh" ->
    need 2;
    let w = width_suffix mnem.[4] in
    let dst = reg 0 in
    (match parse_mem lineno (List.nth args 1) with
     | `Reg (b, off) -> Plain (Isa.Load (w, dst, b, off))
     | `Sym s -> Load_abs_sym (w, dst, s))
  | "storew" | "storeb" | "storeh" ->
    need 2;
    let w = width_suffix mnem.[5] in
    let src = reg 1 in
    (match parse_mem lineno (List.nth args 0) with
     | `Reg (b, off) -> Plain (Isa.Store (w, b, off, src))
     | `Sym s -> Store_abs_sym (w, s, src))
  | "add" -> alu (fun a b -> Isa.Add (a, b))
  | "sub" -> alu (fun a b -> Isa.Sub (a, b))
  | "mul" -> alu (fun a b -> Isa.Mul (a, b))
  | "div" -> alu (fun a b -> Isa.Div (a, b))
  | "mod" -> alu (fun a b -> Isa.Mod (a, b))
  | "and" -> alu (fun a b -> Isa.And (a, b))
  | "or" -> alu (fun a b -> Isa.Or (a, b))
  | "xor" -> alu (fun a b -> Isa.Xor (a, b))
  | "shl" -> alu (fun a b -> Isa.Shl (a, b))
  | "shr" -> alu (fun a b -> Isa.Shr (a, b))
  | "sar" -> alu (fun a b -> Isa.Sar (a, b))
  | "cmp" -> alu (fun a b -> Isa.Cmp (a, b))
  | "addi" -> need 2; Plain (Isa.Addi (reg 0, imm 1))
  | "cmpi" -> need 2; Plain (Isa.Cmpi (reg 0, imm 1))
  | "neg" -> unary (fun r -> Isa.Neg r)
  | "not" -> unary (fun r -> Isa.Not r)
  | "callr" -> unary (fun r -> Isa.Call_r r)
  | "push" -> unary (fun r -> Isa.Push r)
  | "pop" -> unary (fun r -> Isa.Pop r)
  | "sext8" -> unary (fun r -> Isa.Sext8 r)
  | "sext16" -> unary (fun r -> Isa.Sext16 r)
  | "zext8" -> unary (fun r -> Isa.Zext8 r)
  | "zext16" -> unary (fun r -> Isa.Zext16 r)
  | "int" -> need 1; Plain (Isa.Int (parse_int lineno (List.nth args 0)))
  | "jmp" -> need 1; Jump_sym (Isa.Cjmp, List.nth args 0)
  | "call" -> need 1; Jump_sym (Isa.Ccall, List.nth args 0)
  | _ ->
    if String.length mnem > 1 && mnem.[0] = 'j' then begin
      match cond_of_mnemonic (String.sub mnem 1 (String.length mnem - 1)) with
      | Some c -> (need 1; Jump_sym (Isa.Cjcc c, List.nth args 0))
      | None -> err lineno "unknown mnemonic %S" mnem
    end
    else if String.length mnem > 3 && String.sub mnem 0 3 = "set" then begin
      match cond_of_mnemonic (String.sub mnem 3 (String.length mnem - 3)) with
      | Some c -> (need 1; Plain (Isa.Setcc (c, reg 0)))
      | None -> err lineno "unknown mnemonic %S" mnem
    end
    else err lineno "unknown mnemonic %S" mnem

let rec parse_line lineno line =
  let line = strip_comment line in
  if line = "" then []
  else if String.length line > 0 && line.[0] = '.' && String.contains line ' '
          || (String.length line > 0 && line.[0] = '.'
              && not (String.contains line ':'))
  then begin
    (* directive *)
    match tokenize lineno line with
    | [ (".text" | ".data" | ".rodata" | ".bss") as s ] -> [ Sec s ]
    | [ ".global"; name ] -> [ Global name ]
    | [ ".align"; n ] -> [ Align_d (parse_int lineno n) ]
    | [ ".space"; n ] -> [ Space (parse_int lineno n) ]
    | [ ".word"; v ] ->
      (match int_of_string_opt v with
       | Some i -> [ Word_d (Wint (Int32.of_int i)) ]
       | None ->
         (match String.index_opt v '+' with
          | Some i ->
            let sym = String.sub v 0 i in
            let off =
              parse_int lineno (String.sub v (i + 1) (String.length v - i - 1))
            in
            [ Word_d (Wsym (sym, Int32.of_int off)) ]
          | None ->
            if is_ident v then [ Word_d (Wsym (v, 0l)) ]
            else err lineno "bad .word operand %S" v))
    | ".asciz" :: _ ->
      let q1 = String.index line '"' in
      let q2 = String.rindex line '"' in
      if q2 <= q1 then err lineno "bad .asciz";
      [ Asciz (Scanf.unescaped (String.sub line (q1 + 1) (q2 - q1 - 1))) ]
    | tok :: _ -> err lineno "unknown directive %S" tok
    | [] -> []
  end
  else
    match String.index_opt line ':' with
    | Some i
      when (let l = String.sub line 0 i in
            is_ident l && not (String.contains l ' ')) ->
      let label = String.sub line 0 i in
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      Label_d label :: parse_line lineno rest
    | _ -> (
      match tokenize lineno line with
      | [] -> []
      | mnem :: args ->
        [ Ins (parse_insn lineno (String.lowercase_ascii mnem) args) ])

let parse src =
  let lines = String.split_on_char '\n' src in
  List.concat (List.mapi (fun i l -> parse_line (i + 1) l) lines)

(* --- emission --- *)

let is_local_label n = String.length n >= 2 && n.[0] = '.' && n.[1] = 'L'

(* A group is a run of statements forming one section (or one function /
   object in function-sections mode). *)
type group = {
  g_secname : string;
  g_kind : Section.kind;
  mutable g_stmts : stmt list; (* reversed *)
}

let assemble ~unit_name ~function_sections src =
  let stmts = parse src in
  let globals =
    List.filter_map (function Global n -> Some n | _ -> None) stmts
  in
  let is_global n = List.mem n globals in
  (* Collect label -> group assignment to decide local vs external jumps. *)
  let groups = ref [] (* reversed *) in
  let cur = ref None in
  let base_name = ref ".text" in
  let fresh_group secname =
    let g =
      { g_secname = secname; g_kind = Section.kind_of_name secname;
        g_stmts = [] }
    in
    groups := g :: !groups;
    cur := Some g;
    g
  in
  let current () =
    match !cur with Some g when g.g_secname <> "" -> g | _ -> fresh_group !base_name
  in
  List.iter
    (fun st ->
      match st with
      | Sec name ->
        base_name := name;
        cur := None
      | Global _ -> ()
      | Label_d name when function_sections && not (is_local_label name) ->
        let g = fresh_group (!base_name ^ "." ^ name) in
        g.g_stmts <- st :: g.g_stmts
      | st ->
        let g = current () in
        g.g_stmts <- st :: g.g_stmts)
    stmts;
  let groups = List.rev !groups in
  (* Map every non-local label to its group, for jump resolution. *)
  let label_group = Hashtbl.create 16 in
  List.iter
    (fun g ->
      List.iter
        (function
          | Label_d n -> Hashtbl.replace label_group n g.g_secname
          | _ -> ())
        (List.rev g.g_stmts))
    groups;
  (* Merge consecutive groups with identical names (non-fsections mode
     re-entering .text). *)
  let merged = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun g ->
      match Hashtbl.find_opt merged g.g_secname with
      | Some prev -> prev.g_stmts <- g.g_stmts @ prev.g_stmts
      | None ->
        Hashtbl.replace merged g.g_secname g;
        order := g.g_secname :: !order)
    groups;
  let groups = List.rev_map (Hashtbl.find merged) !order in
  let sections = ref [] in
  let symbols = ref [] in
  List.iter
    (fun g ->
      let stmts = List.rev g.g_stmts in
      let is_text = g.g_kind = Section.Text in
      let frag = Frag.create () in
      let bss_size = ref 0 in
      let bss_labels = ref [] in
      List.iter
        (fun st ->
          if g.g_kind = Section.Bss then begin
            match st with
            | Label_d n -> bss_labels := (n, !bss_size) :: !bss_labels
            | Space n -> bss_size := !bss_size + n
            | Align_d a ->
              bss_size := (!bss_size + a - 1) / a * a
            | _ -> failwith "assembler: only labels/.space/.align in .bss"
          end
          else
            match st with
            | Sec _ | Global _ -> ()
            | Align_d n -> Frag.align frag n
            | Space n -> Frag.zeros frag n
            | Word_d (Wint v) -> Frag.word frag v
            | Word_d (Wsym (s, a)) -> Frag.word_reloc frag s a
            | Asciz s ->
              Frag.string frag s;
              Frag.bytes frag (Bytes.make 1 '\000')
            | Label_d n -> Frag.label frag n
            | Ins (Plain i) -> Frag.insn frag i
            | Ins (Mov_sym (r, s, a)) ->
              Frag.insn_reloc frag (Isa.Mov_ri (r, 0l)) Reloc.Abs32 s a
            | Ins (Load_abs_sym (w, r, s)) ->
              Frag.insn_reloc frag (Isa.Load_abs (w, r, 0l)) Reloc.Abs32 s 0l
            | Ins (Store_abs_sym (w, s, r)) ->
              Frag.insn_reloc frag (Isa.Store_abs (w, 0l, r)) Reloc.Abs32 s 0l
            | Ins (Jump_sym (cls, target)) ->
              let local_here =
                is_local_label target
                || (match Hashtbl.find_opt label_group target with
                    | Some sec -> String.equal sec g.g_secname
                    | None -> false)
              in
              if local_here then Frag.jump frag cls target
              else Frag.jump_reloc frag cls target)
        stmts;
      if g.g_kind = Section.Bss then begin
        sections :=
          Section.make_bss ~name:g.g_secname ~align:4 !bss_size :: !sections;
        let labels = List.rev !bss_labels in
        List.iteri
          (fun i (n, off) ->
            let next =
              match List.nth_opt labels (i + 1) with
              | Some (_, o) -> o
              | None -> !bss_size
            in
            symbols :=
              Symbol.make
                ~binding:(if is_global n then Symbol.Global else Symbol.Local)
                ~size:(next - off) ~kind:`Object ~name:n
                (Some { Symbol.section = g.g_secname; value = off })
              :: !symbols)
          labels
      end
      else begin
        let img = Frag.assemble frag ~text:is_text in
        sections :=
          Section.make ~name:g.g_secname ~kind:g.g_kind ~align:4 img.data
            img.relocs
          :: !sections;
        let named =
          List.filter (fun (n, _) -> not (is_local_label n)) img.labels
        in
        List.iteri
          (fun i (n, off) ->
            let next =
              match List.nth_opt named (i + 1) with
              | Some (_, o) -> o
              | None -> Bytes.length img.data
            in
            symbols :=
              Symbol.make
                ~binding:(if is_global n then Symbol.Global else Symbol.Local)
                ~size:(next - off)
                ~kind:(if is_text then `Func else `Object)
                ~name:n
                (Some { Symbol.section = g.g_secname; value = off })
              :: !symbols)
          named
      end)
    groups;
  (* Undefined references become undefined global symbols. *)
  let obj =
    Objfile.make ~unit_name ~sections:(List.rev !sections)
      ~symbols:(List.rev !symbols)
  in
  let undef =
    Objfile.undefined_symbols obj
    |> List.filter (fun n -> not (is_local_label n))
    |> List.map (fun n -> Symbol.make ~name:n None)
  in
  { obj with symbols = obj.symbols @ undef }
