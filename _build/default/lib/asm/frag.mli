(** Fragment assembler.

    A fragment is a growable sequence of instructions, labels, alignment
    directives and data items that is assembled into a section image:
    bytes, relocations, and label offsets. Both the MiniC code generator
    and the textual assembler emit through this module.

    Jumps to labels within the same fragment are subject to {e relaxation}:
    they start as long (rel32) forms and are shrunk to short (rel8) forms
    when the displacement fits, iterating to a fixpoint. This is the
    mechanism that makes code layout sensitive to distance — the property
    run-pre matching must absorb (paper §4.3). Alignment directives pad
    with multi-byte no-op sequences in text fragments, as assemblers do. *)

type t

val create : unit -> t

(** Fixed instruction with no relocation. *)
val insn : t -> Vmisa.Isa.insn -> unit

(** [insn_reloc t i kind sym addend] emits [i] whose immediate or
    displacement field is a relocation site against [sym]. For [Pc32] on a
    jump/call operand the conventional addend is [-(field width)]; use
    {!jump_reloc} which computes it. @raise Invalid_argument if [i] has no
    immediate or pc-relative field. *)
val insn_reloc :
  t -> Vmisa.Isa.insn -> Objfile.Reloc.kind -> string -> int32 -> unit

(** [jump_reloc t cls sym] emits a long-form jump/call of class [cls] whose
    target is the external symbol [sym], with a [Pc32] relocation and the
    x86-style [-4] addend. *)
val jump_reloc : t -> Vmisa.Isa.jump_class -> string -> unit

(** [jump t cls label] emits a jump/call of class [cls] to a label defined
    in the same fragment; the encoding (short or long) is chosen by
    relaxation. Calls have no short form. *)
val jump : t -> Vmisa.Isa.jump_class -> string -> unit

(** Define a label at the current position.
    @raise Invalid_argument on duplicate label. *)
val label : t -> string -> unit

(** [align t n] pads to an [n]-byte boundary ([n] a power of two). In text
    fragments the padding is no-op instructions; in data it is zeros (the
    choice is made at {!assemble} time). *)
val align : t -> int -> unit

(** Raw data bytes. *)
val bytes : t -> Bytes.t -> unit

val string : t -> string -> unit

(** 32-bit little-endian constant. *)
val word : t -> int32 -> unit

(** 32-bit field holding an [Abs32] relocation against [sym]. *)
val word_reloc : t -> string -> int32 -> unit

val zeros : t -> int -> unit

(** Result of assembling a fragment. *)
type image = {
  data : Bytes.t;
  relocs : Objfile.Reloc.t list;
  labels : (string * int) list;  (** in definition order *)
}

exception Error of string

(** [assemble t ~text] lays out the fragment. [text] selects no-op (true)
    or zero (false) alignment padding. @raise Error on undefined jump
    targets. *)
val assemble : t -> text:bool -> image
