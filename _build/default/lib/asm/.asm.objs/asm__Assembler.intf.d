lib/asm/assembler.mli: Objfile
