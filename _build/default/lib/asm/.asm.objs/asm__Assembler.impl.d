lib/asm/assembler.ml: Buffer Bytes Format Frag Hashtbl Int32 List Objfile Scanf String Vmisa
