lib/asm/frag.ml: Array Bytes Format Hashtbl Int32 List Objfile String Vmisa
