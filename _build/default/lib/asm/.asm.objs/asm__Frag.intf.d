lib/asm/frag.mli: Bytes Objfile Vmisa
