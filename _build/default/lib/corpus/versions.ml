module Tree = Patchfmt.Source_tree

type t = {
  name : string;
  tree : Tree.t;
  incorporated : string list;
}

(* the era of a CVE, from its id year *)
let era (cve : Cve.t) =
  match String.sub cve.id 4 4 with
  | "2005" -> 2005
  | "2006" -> 2006
  | "2007" -> 2007
  | _ -> 2008

(* Fold the mainline fixes of all CVEs up to [upto] into the tree,
   skipping any whose context has drifted away (exactly what happens to
   stable-branch backports). *)
let incorporate ~upto tree =
  List.fold_left
    (fun (tree, done_ids) (cve : Cve.t) ->
      if era cve <= upto then
        match Cve.fixed_tree_opt cve tree with
        | Some tree' -> (tree', cve.id :: done_ids)
        | None -> (tree, done_ids)
      else (tree, done_ids))
    (tree, []) Cve.all

let all () =
  let base = Base_kernel.tree () in
  let mk name upto =
    match upto with
    | None -> { name; tree = base; incorporated = [] }
    | Some y ->
      let tree, ids = incorporate ~upto:y base in
      { name; tree; incorporated = List.rev ids }
  in
  [
    mk "linux-sim-2005.05" None;
    mk "linux-sim-2006.06" (Some 2005);
    mk "linux-sim-2007.06" (Some 2006);
    mk "linux-sim-2008.05" (Some 2007);
  ]

let applicable v =
  List.filter
    (fun (c : Cve.t) ->
      (not (List.mem c.id v.incorporated)) && Cve.applies_to c v.tree)
    Cve.all

let hot_patch cve v =
  Option.map
    (fun fixed -> Patchfmt.Diff.diff_trees v.tree fixed)
    (Cve.hot_tree_opt cve v.tree)
