module Machine = Kernel.Machine
module Image = Klink.Image

type report = {
  ok : bool;
  threads_run : int;
  failures : string list;
}

(* Each worker owns counter slot [tid] and checks monotonicity and
   syscall sanity on every round; any violated invariant is reported
   through the exit code. Rounds exercise the counters, fs, xattr,
   keyring, ipc, audit and scheduler paths.

   Allocation syscalls (fs_open, key_add, first xattr_set) are performed
   once, sequentially, before the workers start: the simulated kernel has
   no locks, so concurrent table allocation races exactly as unlocked C
   would. The concurrent loop sticks to per-worker slots, which are
   race-free. *)
let worker_src iterations =
  Printf.sprintf
    {|
int main(int slot, int fd, int serial) {
  int i;
  int v;
  int prev = 0;
  for (i = 0; i < %d; i = i + 1) {
    if (__syscall2(9, slot, 1) < 0)   /* counter_add */
      return 100;
    v = __syscall1(10, slot);         /* counter_get */
    if (v <= prev)
      return 101;
    prev = v;
    if (__syscall0(0) != 1)           /* getpid */
      return 102;
    if (__syscall0(37) != __getuid()) /* uid_get */
      return 103;
    if (__syscall2(12, fd, 0) != 500 + slot)  /* fs_read inode */
      return 104;
    if (__syscall2(26, slot, 900 + i) < 0)    /* xattr_set own key */
      return 105;
    if (__syscall1(27, slot) != 900 + i)      /* xattr_get */
      return 106;
    if (__syscall1(29, serial) != 4000 + slot) /* key_read own key */
      return 107;
    __syscall1(17, 50 + slot);        /* ipc_send (ring is shared) */
    __syscall0(18);                   /* ipc_recv: cross-thread, unchecked */
    __syscall1(32, 7000 + slot);      /* audit_log */
    __syscall0(46);                   /* sched_yield */
  }
  return 0;
}
|}
    iterations

let run ?(threads = 4) ?(iterations = 25) ?during (b : Boot.booted) =
  let failures = ref [] in
  let fail fmt = Format.kasprintf (fun m -> failures := m :: !failures) fmt in
  let src = worker_src iterations in
  let entry = Userprog.load b.machine ~name:"stress" ~src in
  (* sequential setup: allocate each worker's file, key and xattr slot *)
  let setup slot =
    let sc nr args =
      match Boot.syscall b ~uid:1000 nr args with
      | Ok v -> Int32.to_int v
      | Error f ->
        fail "setup syscall %d faulted: %a" nr Machine.pp_fault f;
        -1
    in
    let fd = sc 11 [ Int32.of_int (500 + slot); 4l ] in
    let serial = sc 28 [ Int32.of_int (4000 + slot) ] in
    ignore (sc 26 [ Int32.of_int slot; 0l ] : int);
    (fd, serial)
  in
  let prepared = List.init threads (fun i -> (i, setup i)) in
  let ths =
    List.map
      (fun (i, (fd, serial)) ->
        Machine.spawn b.machine
          ~name:(Printf.sprintf "stress/%d" i)
          ~uid:1000 ~entry
          ~args:[ Int32.of_int i; Int32.of_int fd; Int32.of_int serial ])
      prepared
  in
  (* let the workload get in flight, run the mid-flight action, then
     drive everything to completion *)
  ignore (Machine.run b.machine ~steps:5_000 : int);
  (match during with Some f -> f () | None -> ());
  let budget = ref 600 in
  let unfinished () =
    List.exists
      (fun (th : Machine.thread) ->
        match th.state with
        | Machine.Runnable | Machine.Sleeping _ -> true
        | _ -> false)
      ths
  in
  while unfinished () && !budget > 0 do
    decr budget;
    if Machine.run b.machine ~steps:20_000 = 0 then budget := 0
  done;
  List.iteri
    (fun i (th : Machine.thread) ->
      match th.state with
      | Machine.Exited 0l -> ()
      | Machine.Exited v -> fail "thread %d: invariant check %ld failed" i v
      | Machine.Faulted f ->
        fail "thread %d faulted: %a" i Machine.pp_fault f
      | Machine.Runnable | Machine.Sleeping _ ->
        fail "thread %d did not finish" i)
    ths;
  (* host-side validation of kernel state *)
  (match
     List.filter
       (fun (s : Image.syminfo) -> String.equal s.name "counters")
       (Machine.kallsyms b.machine)
   with
   | [ sym ] ->
     List.iteri
       (fun i _ ->
         let v = Machine.read_i32 b.machine (sym.addr + (4 * i)) in
         if Int32.to_int v <> iterations then
           fail "counter %d is %ld, expected %d" i v iterations)
       ths
   | _ -> fail "counters symbol missing or ambiguous");
  { ok = !failures = []; threads_run = threads; failures = List.rev !failures }
