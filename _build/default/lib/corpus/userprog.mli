(** User programs: MiniC sources compiled with the same toolchain, linked
    standalone, loaded into free machine memory and run as unprivileged
    threads. Exploits and the stress workload are user programs. *)

exception Error of string

(** [load machine ~name ~src] compiles and loads a program; returns the
    entry address of its [main]. @raise Error on compile/link problems or
    a missing [main]. *)
val load : Kernel.Machine.t -> name:string -> src:string -> int

(** [run machine ~name ~src ~uid ~args ()] loads the program, spawns a
    thread on [main] with [args], and drives the scheduler until it exits
    or faults (or [max_steps] elapse). Returns the outcome and the thread
    (whose [uid] field shows any privilege escalation). *)
val run :
  ?max_steps:int ->
  ?uid:int ->
  Kernel.Machine.t ->
  name:string ->
  src:string ->
  args:int32 list ->
  unit ->
  (int32, Kernel.Machine.fault) result * Kernel.Machine.thread
