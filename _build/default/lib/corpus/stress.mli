(** Correctness-checking stress workload (the paper's POSIX stress-test
    stand-in, §6.2): several user threads hammer syscalls with
    self-checking invariants, and the host validates kernel state
    afterwards. Run after (or across) an update to detect corruption. *)

type report = {
  ok : bool;
  threads_run : int;
  failures : string list;
}

(** [run ?threads ?iterations b] spawns the workload threads and drives
    them to completion. [during] (if given) is called once while the
    workload is mid-flight — used to apply hot updates under load. *)
val run :
  ?threads:int -> ?iterations:int -> ?during:(unit -> unit) -> Boot.booted ->
  report
