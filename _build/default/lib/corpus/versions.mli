(** Simulated kernel releases (§6.2 methodology).

    The paper tested the 64 patches against fourteen kernels — six Debian
    releases and eight vanilla releases — because "no single Linux kernel
    version needs all 64 of the security patches": later releases already
    incorporate earlier fixes. We model a release line the same way: each
    release is the base source with every earlier era's mainline fixes
    folded in, so a CVE only "applies" to releases that still contain its
    vulnerable code. *)

type t = {
  name : string;  (** e.g. "linux-sim-2006.06" *)
  tree : Patchfmt.Source_tree.t;
  incorporated : string list;  (** CVE ids whose fixes this release ships *)
}

(** The release line, oldest first. The oldest release is the base tree
    with every vulnerability present. *)
val all : unit -> t list

(** [applicable v] lists the corpus CVEs whose vulnerable code is present
    in release [v]. *)
val applicable : t -> Cve.t list

(** [hot_patch cve v] is the Ksplice input patch for [cve] against
    release [v] ([None] when the CVE does not apply there). *)
val hot_patch : Cve.t -> t -> Patchfmt.Diff.t option
