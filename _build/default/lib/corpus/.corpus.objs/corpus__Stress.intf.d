lib/corpus/stress.mli: Boot
