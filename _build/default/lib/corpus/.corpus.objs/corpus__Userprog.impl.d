lib/corpus/userprog.ml: Format Kernel Klink Minic Option
