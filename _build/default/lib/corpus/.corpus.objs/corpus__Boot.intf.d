lib/corpus/boot.mli: Kbuild Kernel Klink Patchfmt
