lib/corpus/versions.ml: Base_kernel Cve List Option Patchfmt String
