lib/corpus/boot.ml: Array Base_kernel Format Int32 Kbuild Kernel Klink List Minic Option Printf String
