lib/corpus/cve.mli: Patchfmt
