lib/corpus/cve.ml: List Option Patchfmt Printf String
