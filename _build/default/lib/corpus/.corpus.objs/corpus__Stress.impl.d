lib/corpus/stress.ml: Boot Format Int32 Kernel Klink List Printf String Userprog
