lib/corpus/userprog.mli: Kernel
