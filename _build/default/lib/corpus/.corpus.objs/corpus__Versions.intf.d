lib/corpus/versions.mli: Cve Patchfmt
