lib/corpus/base_kernel.ml: Patchfmt
