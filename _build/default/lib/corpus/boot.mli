(** Booting the base kernel into a machine: build (distro-style, no
    function sections), link, create the VM, run the init functions, seed
    the task table, and optionally start kernel worker threads (which make
    [worker_loop] non-quiescent, as §5.2 describes for [schedule]). *)

type booted = {
  build : Kbuild.build;
  image : Klink.Image.t;
  machine : Kernel.Machine.t;
}

(** [boot ?workers ?tree ()] boots [tree] (default {!Base_kernel.tree}).
    [workers] (default 0) kernel worker threads are spawned. *)
val boot : ?workers:int -> ?tree:Patchfmt.Source_tree.t -> unit -> booted

(** [syscall b ~uid nr args] invokes a syscall through the entry path the
    way a user thread would (for host-side checks). *)
val syscall : booted -> uid:int -> int -> int32 list -> (int32, Kernel.Machine.fault) result

(** [read_global b name] reads a 32-bit kernel global through kallsyms.
    @raise Failure if the symbol is missing or ambiguous. *)
val read_global : booted -> string -> int32

(** The secret planted at boot ([boot_token]); exploit checks compare
    leaked values against it. *)
val secret : int32
