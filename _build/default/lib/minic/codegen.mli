(** Code generation: typed MiniC to SELF object files.

    The [function_sections] option is the heart of the reproduction: with
    it on (Ksplice's pre/post builds), every function and every data item
    gets its own section, and all cross-function references become
    relocations — "more general code that does not make assumptions about
    where functions and data structures are located in memory" (§3.2).
    With it off (the running kernel's distro-style build), a unit's
    functions share one [.text] with resolved intra-unit calls, alignment
    no-ops between functions, and — via [align_loops], enabled by default
    exactly when [function_sections] is off — aligned loop heads, giving
    the run/pre object-code divergences run-pre matching must absorb
    (§4.3). *)

type options = {
  function_sections : bool;
  align_loops : bool;
}

(** Defaults matching a distro kernel build: no function sections, aligned
    loops. *)
val run_options : options

(** Defaults matching a Ksplice pre/post build. *)
val pre_options : options

(** [compile_unit ~options tunit] emits the object file for a checked
    unit. *)
val compile_unit : options:options -> Tast.tunit -> Objfile.t

(** Calling convention constants (used by the kernel simulator and by
    tests): arguments are pushed right to left; at function entry
    [sp] points at the return address; after the prologue, parameter [i]
    lives at [fp + param_offset i]. *)
val param_offset : int -> int
