type options = {
  codegen : Codegen.options;
  inline_enabled : bool;
  auto_inline_max : int;
  explicit_inline_max : int;
}

let run_build =
  { codegen = Codegen.run_options; inline_enabled = true; auto_inline_max = 3;
    explicit_inline_max = 12 }

let pre_build = { run_build with codegen = Codegen.pre_options }

type compiled = {
  obj : Objfile.t;
  inline_decisions : Inline.decision list;
}

exception Error of string

let err fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

let compile ~options ~unit_name src =
  let ast =
    try Parser.parse src with
    | Lexer.Error { line; msg } -> err "%s:%d: %s" unit_name line msg
    | Parser.Error { line; msg } -> err "%s:%d: %s" unit_name line msg
  in
  let inlined =
    if options.inline_enabled then
      Inline.run ~auto_max:options.auto_inline_max
        ~explicit_max:options.explicit_inline_max ast
    else { Inline.program = ast; decisions = [] }
  in
  let tunit =
    try Typecheck.check ~unit_name inlined.program
    with Typecheck.Error m -> err "%s: %s" unit_name m
  in
  let obj = Codegen.compile_unit ~options:options.codegen tunit in
  { obj; inline_decisions = inlined.decisions }
