(** Recursive-descent parser for MiniC. *)

exception Error of { line : int; msg : string }

(** [parse src] lexes and parses a compilation unit.
    @raise Error on syntax errors (with source line).
    @raise Lexer.Error on lexical errors. *)
val parse : string -> Ast.program
