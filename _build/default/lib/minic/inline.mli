(** Function inlining, performed on the untyped AST before typechecking.

    Mirrors the compiler freedom the paper's §4.2 safety argument is about:
    "compilers commonly inline functions that do not have the [inline]
    keyword". Small same-unit functions are inlined automatically;
    [inline]-declared functions are inlined up to a larger size bound.
    Every inlined function is still emitted as an out-of-line copy, so the
    symbol table is unaffected.

    A call site is only inlined where the callee body can be spliced in
    safely: the call must be in an unconditionally-evaluated position of a
    statement (not a loop condition or the short-circuit side of &&/||),
    and the callee body must have no early returns. These are the
    conditions under which statement splicing preserves semantics without
    needing goto. *)

(** One performed inlining: [callee]'s body was spliced into [caller]. *)
type decision = {
  caller : string;
  callee : string;
}

type result = {
  program : Ast.program;
  decisions : decision list;
}

(** [run ?auto_max ?explicit_max program] inlines eligible calls.
    [auto_max] (default 3) bounds the statement weight of functions inlined
    without the [inline] keyword; [explicit_max] (default 12) bounds
    [inline]-declared functions. *)
val run : ?auto_max:int -> ?explicit_max:int -> Ast.program -> result
