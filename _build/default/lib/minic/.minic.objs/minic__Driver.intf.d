lib/minic/driver.mli: Codegen Inline Objfile
