lib/minic/tast.ml: Ast Bytes
