lib/minic/lexer.mli:
