lib/minic/parser.ml: Array Ast Format Int32 Lexer List Option Printf String
