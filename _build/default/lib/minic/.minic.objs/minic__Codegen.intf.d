lib/minic/codegen.mli: Objfile Tast
