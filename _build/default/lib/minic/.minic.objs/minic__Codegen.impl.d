lib/minic/codegen.ml: Asm Ast Bytes Hashtbl Int32 List Objfile Printf String Tast Vmisa
