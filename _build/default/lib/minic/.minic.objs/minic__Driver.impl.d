lib/minic/driver.ml: Codegen Format Inline Lexer Objfile Parser Typecheck
