lib/minic/typecheck.ml: Ast Bytes Char Format Hashtbl Int32 List Option String Tast
