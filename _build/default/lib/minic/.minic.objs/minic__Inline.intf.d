lib/minic/inline.mli: Ast
