lib/minic/lexer.ml: Buffer Format Int32 List String
