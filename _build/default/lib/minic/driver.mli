(** MiniC compiler driver: source text to object file. *)

type options = {
  codegen : Codegen.options;
  inline_enabled : bool;
  auto_inline_max : int;  (** weight bound for un-annotated functions *)
  explicit_inline_max : int;  (** weight bound for [inline] functions *)
}

(** Distro-kernel-style build (the "run" kernel): single text section per
    unit, aligned loops, inlining on. *)
val run_build : options

(** Ksplice pre/post build: function/data sections, inlining on (the same
    inlining decisions as the run build — determinism across builds is
    what makes run-pre matching succeed). *)
val pre_build : options

type compiled = {
  obj : Objfile.t;
  inline_decisions : Inline.decision list;
}

exception Error of string
(** Compilation failure: parse or type error, with unit name and message. *)

(** [compile ~options ~unit_name src] compiles one unit. *)
val compile : options:options -> unit_name:string -> string -> compiled
