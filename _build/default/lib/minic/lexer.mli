(** Lexer for MiniC. *)

type token =
  | INT of int32
  | CHARLIT of char
  | STRING of string
  | IDENT of string
  | KW of string  (** keywords: int, char, short, void, struct, if, ... *)
  | PUNCT of string  (** operators and punctuation, longest-match *)
  | EOF

type t = {
  tok : token;
  line : int;
}

exception Error of { line : int; msg : string }

(** [tokenize src] lexes the whole source. @raise Error on bad input. *)
val tokenize : string -> t list
