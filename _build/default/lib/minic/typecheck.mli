(** Typechecker: resolves names, computes struct layouts, inserts implicit
    widenings and pointer scaling, and lowers to {!Tast}. *)

exception Error of string

(** [builtins] lists the compiler builtins (host escapes): name, INT code,
    arity, and whether they return a value in r0. *)
val builtins : Tast.builtin list

(** [sizeof structs ty] is the byte size of [ty] given struct layouts from
    the program being checked. Exposed for tests. *)
val sizeof : (string * (Ast.ty * string) list) list -> Ast.ty -> int

(** [field_offset structs tag field] is the byte offset of [field] in
    [struct tag]. @raise Error if unknown. *)
val field_offset :
  (string * (Ast.ty * string) list) list -> string -> string -> int

(** [check ~unit_name program] typechecks and lowers a compilation unit.
    @raise Error with a descriptive message on any type or name error. *)
val check : unit_name:string -> Ast.program -> Tast.tunit
