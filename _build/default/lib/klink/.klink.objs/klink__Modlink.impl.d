lib/klink/modlink.ml: Bytes Format Int32 List Objfile String
