lib/klink/image.mli: Bytes Objfile
