lib/klink/image.ml: Bytes Format Hashtbl Int32 List Objfile Option String
