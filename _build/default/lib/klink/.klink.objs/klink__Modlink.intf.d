lib/klink/modlink.mli: Bytes Objfile
