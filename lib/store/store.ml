type digest = string

let digest_of_string s = Digest.to_hex (Digest.string s)

(* decoded-value memo for the Typed functor: each functor application
   adds its own constructor, so one resident blob can cache at most one
   decoding per value type that actually touches it *)
type packed = ..

type centry = {
  data : string;
  mutable last_used : int;
  mutable cached : packed option;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
  puts : int;
  dedup_hits : int;
  bytes_put : int;
  bytes_deduped : int;
  disk_reads : int;
  disk_writes : int;
  corrupt : int;
}

type t = {
  sname : string;
  dir : string option;
  m : Mutex.t;
  blobs : (digest, centry) Hashtbl.t;
  mrefs : (string, digest) Hashtbl.t;
  mutable clock : int;
  mutable cap : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable puts : int;
  mutable dedup_hits : int;
  mutable bytes_put : int;
  mutable bytes_deduped : int;
  mutable disk_reads : int;
  mutable disk_writes : int;
  mutable corrupt : int;
  (* precomputed trace-counter names: emitters are on cache hot paths *)
  tc_hits : string;
  tc_misses : string;
  tc_evictions : string;
  tc_dedup : string;
}

let name t = t.sname

(* --- disk tier layout --- *)

let mkdir_p dir =
  let rec ensure d =
    if not (Sys.file_exists d) then begin
      ensure (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  ensure dir;
  if not (Sys.is_directory dir) then
    invalid_arg ("Store: " ^ dir ^ " is not a directory")

let blobs_dir dir = Filename.concat dir "blobs"
let refs_dir dir = Filename.concat dir "refs"
let blob_path dir d = Filename.concat (blobs_dir dir) d

(* ref names are arbitrary strings (compile-cache keys contain paths and
   option fingerprints), so the file is named by the digest of the name
   and carries the name inside *)
let ref_path dir rname = Filename.concat (refs_dir dir) (digest_of_string rname)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* write-then-rename: readers never observe a half-written artifact *)
let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

let create ?(name = "store") ?(capacity = 1024) ?dir () =
  (match dir with
  | None -> ()
  | Some d ->
    mkdir_p d;
    mkdir_p (blobs_dir d);
    mkdir_p (refs_dir d));
  {
    sname = name;
    dir;
    m = Mutex.create ();
    blobs = Hashtbl.create 256;
    mrefs = Hashtbl.create 64;
    clock = 0;
    cap = max 1 capacity;
    hits = 0;
    misses = 0;
    evictions = 0;
    puts = 0;
    dedup_hits = 0;
    bytes_put = 0;
    bytes_deduped = 0;
    disk_reads = 0;
    disk_writes = 0;
    corrupt = 0;
    tc_hits = "store." ^ name ^ ".hits";
    tc_misses = "store." ^ name ^ ".misses";
    tc_evictions = "store." ^ name ^ ".evictions";
    tc_dedup = "store." ^ name ^ ".dedup_hits";
  }

let default_store = ref None
let default_m = Mutex.create ()

let default () =
  Mutex.lock default_m;
  let t =
    match !default_store with
    | Some t -> t
    | None ->
      let t = create ~name:"artifacts" ~capacity:8192 () in
      default_store := Some t;
      t
  in
  Mutex.unlock default_m;
  t

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let touch t e =
  t.clock <- t.clock + 1;
  e.last_used <- t.clock

(* assumes the lock is held *)
let evict_locked t =
  while Hashtbl.length t.blobs > t.cap do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.last_used -> acc
          | _ -> Some (k, e.last_used))
        t.blobs None
    in
    match victim with
    | None -> ()
    | Some (k, _) ->
      Hashtbl.remove t.blobs k;
      t.evictions <- t.evictions + 1;
      Trace.count t.tc_evictions 1;
      (* a memory-only store is a cache: refs left dangling by the
         eviction are dropped with it, bounding the ref table too. With
         a disk tier the blob is still durable, so refs stay valid. *)
      if t.dir = None then begin
        let dangling =
          Hashtbl.fold
            (fun rname d acc -> if String.equal d k then rname :: acc else acc)
            t.mrefs []
        in
        List.iter (Hashtbl.remove t.mrefs) dangling
      end
  done

let put t blob =
  let d = digest_of_string blob in
  locked t (fun () ->
      t.puts <- t.puts + 1;
      match Hashtbl.find_opt t.blobs d with
      | Some e ->
        touch t e;
        t.dedup_hits <- t.dedup_hits + 1;
        t.bytes_deduped <- t.bytes_deduped + String.length blob;
        Trace.count t.tc_dedup 1
      | None ->
        (match t.dir with
        | Some dir when Sys.file_exists (blob_path dir d) ->
          (* already durable from an earlier run: a dedup against disk *)
          t.dedup_hits <- t.dedup_hits + 1;
          t.bytes_deduped <- t.bytes_deduped + String.length blob;
          Trace.count t.tc_dedup 1
        | Some dir ->
          write_atomic (blob_path dir d) blob;
          t.disk_writes <- t.disk_writes + 1;
          t.bytes_put <- t.bytes_put + String.length blob
        | None -> t.bytes_put <- t.bytes_put + String.length blob);
        t.clock <- t.clock + 1;
        Hashtbl.replace t.blobs d
          { data = blob; last_used = t.clock; cached = None };
        evict_locked t);
  d

(* assumes the lock is held; counts one hit or miss *)
let find_entry_locked t d =
  match Hashtbl.find_opt t.blobs d with
  | Some e ->
    touch t e;
    t.hits <- t.hits + 1;
    Trace.count t.tc_hits 1;
    Ok e
  | None -> (
    let miss err =
      t.misses <- t.misses + 1;
      Trace.count t.tc_misses 1;
      Error err
    in
    match t.dir with
    | None -> miss `Missing
    | Some dir -> (
      let path = blob_path dir d in
      if not (Sys.file_exists path) then miss `Missing
      else
        match read_file path with
        | exception Sys_error m -> miss (`Corrupt ("unreadable blob: " ^ m))
        | raw ->
          t.disk_reads <- t.disk_reads + 1;
          let actual = digest_of_string raw in
          if not (String.equal actual d) then begin
            t.corrupt <- t.corrupt + 1;
            miss
              (`Corrupt
                (Printf.sprintf
                   "blob %s fails the re-digest check (stored bytes hash to \
                    %s)"
                   d actual))
          end
          else begin
            t.clock <- t.clock + 1;
            let e = { data = raw; last_used = t.clock; cached = None } in
            Hashtbl.replace t.blobs d e;
            evict_locked t;
            t.hits <- t.hits + 1;
            Trace.count t.tc_hits 1;
            Ok e
          end))

let load t d =
  locked t (fun () ->
      match find_entry_locked t d with
      | Ok e -> Ok e.data
      | Error e -> Error e)

let get t d = match load t d with Ok b -> Some b | Error _ -> None

let mem t d =
  locked t (fun () ->
      Hashtbl.mem t.blobs d
      || match t.dir with
         | None -> false
         | Some dir -> Sys.file_exists (blob_path dir d))

(* --- refs --- *)

let ref_file_contents rname d = rname ^ "\n" ^ d ^ "\n"

let parse_ref_file raw =
  match String.index_opt raw '\n' with
  | None -> None
  | Some i ->
    let rname = String.sub raw 0 i in
    let rest = String.sub raw (i + 1) (String.length raw - i - 1) in
    let d = String.trim rest in
    if d = "" then None else Some (rname, d)

let set_ref t rname d =
  locked t (fun () ->
      Hashtbl.replace t.mrefs rname d;
      match t.dir with
      | None -> ()
      | Some dir -> write_atomic (ref_path dir rname) (ref_file_contents rname d))

let find_ref t rname =
  locked t (fun () ->
      match Hashtbl.find_opt t.mrefs rname with
      | Some d -> Some d
      | None -> (
        match t.dir with
        | None -> None
        | Some dir -> (
          let path = ref_path dir rname in
          if not (Sys.file_exists path) then None
          else
            match parse_ref_file (read_file path) with
            | Some (stored, d) when String.equal stored rname ->
              Hashtbl.replace t.mrefs rname d;
              Some d
            | _ -> None)))

let refs t =
  locked t (fun () ->
      let acc = Hashtbl.create 64 in
      (match t.dir with
      | None -> ()
      | Some dir ->
        Array.iter
          (fun entry ->
            let path = Filename.concat (refs_dir dir) entry in
            if
              (not (Filename.check_suffix entry ".tmp"))
              && not (Sys.is_directory path)
            then
              match parse_ref_file (read_file path) with
              | Some (rname, d) -> Hashtbl.replace acc rname d
              | None -> ())
          (Sys.readdir (refs_dir dir)));
      (* memory wins: it holds any not-yet-flushed or most recent value *)
      Hashtbl.iter (Hashtbl.replace acc) t.mrefs;
      Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

(* --- cache-style combined ops --- *)

let lookup t key =
  match find_ref t key with
  | Some d -> get t d
  | None ->
    locked t (fun () ->
        t.misses <- t.misses + 1;
        Trace.count t.tc_misses 1);
    None

let remember t ~key blob =
  let d = put t blob in
  set_ref t key d;
  d

(* --- capacity / lifecycle / stats --- *)

let set_capacity t n =
  locked t (fun () ->
      t.cap <- max 1 n;
      evict_locked t)

let capacity t = locked t (fun () -> t.cap)

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.blobs;
      Hashtbl.reset t.mrefs)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.blobs;
        capacity = t.cap;
        puts = t.puts;
        dedup_hits = t.dedup_hits;
        bytes_put = t.bytes_put;
        bytes_deduped = t.bytes_deduped;
        disk_reads = t.disk_reads;
        disk_writes = t.disk_writes;
        corrupt = t.corrupt;
      })

let fingerprint t =
  let refl = refs t in
  locked t (fun () ->
      let digests = Hashtbl.create 256 in
      Hashtbl.iter (fun d _ -> Hashtbl.replace digests d ()) t.blobs;
      (match t.dir with
      | None -> ()
      | Some dir ->
        Array.iter
          (fun entry ->
            if not (Filename.check_suffix entry ".tmp") then
              Hashtbl.replace digests entry ())
          (Sys.readdir (blobs_dir dir)));
      let sorted =
        Hashtbl.fold (fun d () l -> d :: l) digests []
        |> List.sort String.compare
      in
      let b = Buffer.create 4096 in
      List.iter
        (fun d ->
          Buffer.add_string b d;
          Buffer.add_char b '\n')
        sorted;
      Buffer.add_string b "--refs--\n";
      List.iter
        (fun (rname, d) ->
          Buffer.add_string b rname;
          Buffer.add_char b '=';
          Buffer.add_string b d;
          Buffer.add_char b '\n')
        refl;
      digest_of_string (Buffer.contents b))

(* --- typed codecs --- *)

module type VALUE = sig
  type v

  val codec_id : string
  val encode : v -> string
  val decode : string -> (v, string) result
end

module Typed (V : VALUE) = struct
  type packed += P of V.v

  let put t v = put t (V.encode v)

  let get t d =
    let fast =
      locked t (fun () ->
          match find_entry_locked t d with
          | Ok { cached = Some (P v); _ } -> `Cached v
          | Ok e -> `Raw e.data
          | Error err -> `Err err)
    in
    match fast with
    | `Err err ->
      Error
        (err
          :> [ `Missing | `Corrupt of string | `Decode of string ])
    | `Cached v -> Ok v
    | `Raw data -> (
      (* resident but not yet decoded for this type: decode outside the
         lock, then memoise (last writer wins; values are equal) *)
      match V.decode data with
      | Error m -> Error (`Decode (V.codec_id ^ ": " ^ m))
      | Ok v ->
        locked t (fun () ->
            match Hashtbl.find_opt t.blobs d with
            | Some e -> e.cached <- Some (P v)
            | None -> ());
        Ok v)

  let lookup t key =
    match find_ref t key with
    | Some d -> ( match get t d with Ok v -> Some v | Error _ -> None)
    | None ->
      locked t (fun () ->
          t.misses <- t.misses + 1;
          Trace.count t.tc_misses 1);
      None

  let remember t ~key v =
    let d = remember t ~key (V.encode v) in
    (* the encoder round-trips; memoise the original value so hits share
       one physical artifact *)
    locked t (fun () ->
        match Hashtbl.find_opt t.blobs d with
        | Some e -> e.cached <- Some (P v)
        | None -> ());
    d
end
