type digest = string

let digest_of_string s = Digest.to_hex (Digest.string s)

(* decoded-value memo for the Typed functor: each functor application
   adds its own constructor, so one resident blob can cache at most one
   decoding per value type that actually touches it *)
type packed = ..

type centry = {
  data : string;
  mutable last_used : int;
  mutable cached : packed option;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
  puts : int;
  dedup_hits : int;
  bytes_put : int;
  bytes_deduped : int;
  disk_reads : int;
  disk_writes : int;
  corrupt : int;
  gc_runs : int;
  gc_collected : int;
  gc_reclaimed_bytes : int;
}

type recovery_report = {
  rolled_forward : int;
  rolled_back : int;
  torn_discarded : int;
  tmp_removed : int;
}

type fsck_issue =
  | Orphan_tmp of string
  | Corrupt_blob of { digest : digest; reason : string }
  | Dangling_ref of { name : string; digest : digest }
  | Unreadable_ref of { path : string; reason : string }
  | Pending_journal of int

type fsck_report = {
  f_blobs : int;
  f_refs : int;
  f_issues : fsck_issue list;
}

type gc_report = {
  gc_live : int;
  gc_swept : int;
  gc_bytes : int;
  gc_pinned : int;
}

type t = {
  sname : string;
  dir : string option;
  vfs : Vfs.t;
  m : Mutex.t;
  blobs : (digest, centry) Hashtbl.t;
  mrefs : (string, digest) Hashtbl.t;
  (* digests interned by transactions still in flight: GC roots until the
     outermost with_txn exits (its refs are committed by then) *)
  pinned : (digest, unit) Hashtbl.t;
  mutable txns : int;
  mutable last_recovery : recovery_report option;
  mutable clock : int;
  mutable cap : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable puts : int;
  mutable dedup_hits : int;
  mutable bytes_put : int;
  mutable bytes_deduped : int;
  mutable disk_reads : int;
  mutable disk_writes : int;
  mutable corrupt : int;
  mutable gc_runs : int;
  mutable gc_collected : int;
  mutable gc_reclaimed_bytes : int;
  (* precomputed trace-counter names: emitters are on cache hot paths *)
  tc_hits : string;
  tc_misses : string;
  tc_evictions : string;
  tc_dedup : string;
}

let name t = t.sname

(* --- disk tier layout --- *)

let mkdir_p vfs dir =
  let rec ensure d =
    if not (vfs.Vfs.exists d) then begin
      let parent = Filename.dirname d in
      if not (String.equal parent d) then ensure parent;
      (* tolerate a concurrent creator; surface every other failure *)
      try vfs.Vfs.mkdir d
      with Vfs.Io_error _ as e -> if not (vfs.Vfs.exists d) then raise e
    end
  in
  ensure dir;
  if not (vfs.Vfs.is_directory dir) then
    raise
      (Vfs.Io_error
         { op = "mkdir"; path = dir; reason = "exists but is not a directory" })

let blobs_dir dir = Filename.concat dir "blobs"
let refs_dir dir = Filename.concat dir "refs"
let blob_path dir d = Filename.concat (blobs_dir dir) d
let journal_path dir = Filename.concat dir "journal"

(* ref names are arbitrary strings (compile-cache keys contain paths and
   option fingerprints), so the file is named by the digest of the name
   and carries the name inside *)
let ref_path dir rname = Filename.concat (refs_dir dir) (digest_of_string rname)

(* Durable atomic replace: write the bytes to a temporary, fsync them,
   rename into place, then fsync the directory so the rename itself is
   on stable storage. A failure anywhere unlinks the temporary — the
   caller sees the exception, never a stray [.tmp] (a simulated process
   death can still strand one; recovery-on-open sweeps those). *)
let write_atomic vfs path contents =
  let tmp = path ^ ".tmp" in
  match
    vfs.Vfs.write_file tmp contents;
    vfs.Vfs.fsync tmp;
    vfs.Vfs.rename tmp path;
    vfs.Vfs.fsync (Filename.dirname path)
  with
  | () -> ()
  | exception e ->
    (try vfs.Vfs.unlink tmp with _ -> ());
    raise e

(* --- write-ahead ref journal ---

   A multi-ref commit appends one self-delimiting record to <dir>/journal
   and fsyncs it *before* touching any ref file:

     "J1 " <len> ":" <payload> <md5-hex payload> "\n"
     payload = netstring count, then (name, old, new) netstring triples
               (old = "" when the ref did not exist)

   Recovery re-reads the journal: a record whose checksum verifies and
   whose new blobs are all present and re-digest clean is rolled forward
   (the commit happened); any other complete record is rolled back to
   the recorded old values; a torn tail is discarded (the commit never
   reached its fsync, so no ref file was written). *)

let ns_add b s =
  Buffer.add_string b (string_of_int (String.length s));
  Buffer.add_char b ':';
  Buffer.add_string b s

let ns_read raw pos =
  match String.index_from_opt raw pos ':' with
  | None -> None
  | Some colon -> (
    match int_of_string_opt (String.sub raw pos (colon - pos)) with
    | Some n when n >= 0 && colon + 1 + n <= String.length raw ->
      Some (String.sub raw (colon + 1) n, colon + 1 + n)
    | _ -> None)

let journal_record updates =
  let b = Buffer.create 256 in
  ns_add b (string_of_int (List.length updates));
  List.iter
    (fun (rname, old_d, new_d) ->
      ns_add b rname;
      ns_add b old_d;
      ns_add b new_d)
    updates;
  let payload = Buffer.contents b in
  "J1 "
  ^ string_of_int (String.length payload)
  ^ ":" ^ payload ^ digest_of_string payload ^ "\n"

let parse_payload payload =
  let ( let* ) = Option.bind in
  let* count_s, pos = ns_read payload 0 in
  let* count = int_of_string_opt count_s in
  if count < 0 then None
  else
    let rec triples acc pos = function
      | 0 -> if pos = String.length payload then Some (List.rev acc) else None
      | k ->
        let* rname, pos = ns_read payload pos in
        let* old_d, pos = ns_read payload pos in
        let* new_d, pos = ns_read payload pos in
        triples ((rname, old_d, new_d) :: acc) pos (k - 1)
    in
    triples [] pos count

(* -> (complete records, torn-tail count: 0 or 1) *)
let parse_journal raw =
  let len = String.length raw in
  let rec go pos records =
    if pos >= len then (List.rev records, 0)
    else
      let record =
        if pos + 3 > len || not (String.equal (String.sub raw pos 3) "J1 ")
        then None
        else
          match ns_read raw (pos + 3) with
          | Some (payload, next)
            when next + 32 < len
                 && raw.[next + 32] = '\n'
                 && String.equal
                      (String.sub raw next 32)
                      (digest_of_string payload) -> (
            match parse_payload payload with
            | Some refs -> Some (refs, next + 33)
            | None -> None)
          | _ -> None
      in
      match record with
      | None -> (List.rev records, 1)
      | Some (refs, next) -> go next (refs :: records)
  in
  go 0 []

let ref_file_contents rname d = rname ^ "\n" ^ d ^ "\n"

let parse_ref_file raw =
  match String.index_opt raw '\n' with
  | None -> None
  | Some i ->
    let rname = String.sub raw 0 i in
    let rest = String.sub raw (i + 1) (String.length raw - i - 1) in
    let d = String.trim rest in
    if d = "" then None else Some (rname, d)

(* --- recovery-on-open --- *)

let sweep_tmps vfs dir =
  let removed = ref 0 in
  List.iter
    (fun sub ->
      Array.iter
        (fun e ->
          if Filename.check_suffix e ".tmp" then begin
            (try vfs.Vfs.unlink (Filename.concat sub e)
             with Vfs.Io_error _ -> ());
            incr removed
          end)
        (vfs.Vfs.readdir sub))
    [ blobs_dir dir; refs_dir dir ];
  !removed

let blob_verifies vfs dir d =
  let p = blob_path dir d in
  vfs.Vfs.exists p
  &&
  match vfs.Vfs.read_file p with
  | raw -> String.equal (digest_of_string raw) d
  | exception Vfs.Io_error _ -> false

let recover_dir ~vfs ~mrefs dir =
  let tmp_removed = sweep_tmps vfs dir in
  let jp = journal_path dir in
  let rolled_forward = ref 0 in
  let rolled_back = ref 0 in
  let torn = ref 0 in
  (if vfs.Vfs.exists jp then
     match vfs.Vfs.read_file jp with
     | "" -> ()
     | raw ->
       let records, torn_n = parse_journal raw in
       torn := torn_n;
       List.iter
         (fun refs ->
           let committed =
             List.for_all (fun (_, _, new_d) -> blob_verifies vfs dir new_d) refs
           in
           if committed then begin
             incr rolled_forward;
             List.iter
               (fun (rname, _, new_d) ->
                 write_atomic vfs (ref_path dir rname)
                   (ref_file_contents rname new_d);
                 Hashtbl.replace mrefs rname new_d)
               refs
           end
           else begin
             incr rolled_back;
             List.iter
               (fun (rname, old_d, _) ->
                 let p = ref_path dir rname in
                 if String.equal old_d "" then begin
                   if vfs.Vfs.exists p then vfs.Vfs.unlink p;
                   Hashtbl.remove mrefs rname
                 end
                 else begin
                   write_atomic vfs p (ref_file_contents rname old_d);
                   Hashtbl.replace mrefs rname old_d
                 end)
               refs
           end)
         records;
       (* checkpoint: everything above is now durable *)
       vfs.Vfs.write_file jp "";
       vfs.Vfs.fsync jp);
  {
    rolled_forward = !rolled_forward;
    rolled_back = !rolled_back;
    torn_discarded = !torn;
    tmp_removed;
  }

let build ~name ~capacity ~dir ~vfs ~recover =
  let t =
    {
      sname = name;
      dir;
      vfs;
      m = Mutex.create ();
      blobs = Hashtbl.create 256;
      mrefs = Hashtbl.create 64;
      pinned = Hashtbl.create 16;
      txns = 0;
      last_recovery = None;
      clock = 0;
      cap = max 1 capacity;
      hits = 0;
      misses = 0;
      evictions = 0;
      puts = 0;
      dedup_hits = 0;
      bytes_put = 0;
      bytes_deduped = 0;
      disk_reads = 0;
      disk_writes = 0;
      corrupt = 0;
      gc_runs = 0;
      gc_collected = 0;
      gc_reclaimed_bytes = 0;
      tc_hits = "store." ^ name ^ ".hits";
      tc_misses = "store." ^ name ^ ".misses";
      tc_evictions = "store." ^ name ^ ".evictions";
      tc_dedup = "store." ^ name ^ ".dedup_hits";
    }
  in
  (match dir with
  | Some d when recover ->
    t.last_recovery <- Some (recover_dir ~vfs ~mrefs:t.mrefs d)
  | _ -> ());
  t

(* --- shared in-process registry --- *)

(* Handles opened on the same directory share one memory tier (and one
   mutex, journal state, and recovery), so a daemon's many readers and a
   publisher in the same process see each other's writes without disk
   round-trips. Keyed by canonical path plus (device, inode): the inode
   pair keeps two spellings of one directory together, and the path
   keeps a recycled inode number (temp dirs churn fast) from aliasing an
   unrelated directory. Entries are weak, so an abandoned handle is
   collected rather than pinned forever. Only plain handles are shared:
   an injected [vfs] is a private fault simulation, and [recover:false]
   is read-only inspection that must see the disk as it is, not a warm
   cache. Simulating a separate process rebooting into a directory this
   process already has open wants [share:false]. *)
let registry : (string * int * int, t Weak.t) Hashtbl.t = Hashtbl.create 8
let registry_m = Mutex.create ()

let dir_identity d =
  match
    let rp = try Unix.realpath d with Unix.Unix_error _ -> d in
    (rp, Unix.stat d)
  with
  | rp, st -> Some (rp, st.Unix.st_dev, st.Unix.st_ino)
  | exception Unix.Unix_error _ -> None

let create ?(name = "store") ?(capacity = 1024) ?dir ?(vfs = Vfs.real)
    ?(recover = true) ?(share = true) () =
  (match dir with
  | None -> ()
  | Some d ->
    mkdir_p vfs d;
    mkdir_p vfs (blobs_dir d);
    mkdir_p vfs (refs_dir d));
  let sharable = share && vfs == Vfs.real && recover in
  match dir with
  | Some d when sharable -> (
    match dir_identity d with
    | None -> build ~name ~capacity ~dir ~vfs ~recover
    | Some key ->
      Mutex.lock registry_m;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock registry_m)
        (fun () ->
          match Hashtbl.find_opt registry key with
          | Some w when Weak.get w 0 <> None -> Option.get (Weak.get w 0)
          | _ ->
            let t = build ~name ~capacity ~dir ~vfs ~recover in
            let w = Weak.create 1 in
            Weak.set w 0 (Some t);
            Hashtbl.replace registry key w;
            t))
  | _ -> build ~name ~capacity ~dir ~vfs ~recover

let recovery t = t.last_recovery

let default_store = ref None
let default_m = Mutex.create ()

let default () =
  Mutex.lock default_m;
  let t =
    match !default_store with
    | Some t -> t
    | None ->
      let t = create ~name:"artifacts" ~capacity:8192 () in
      default_store := Some t;
      t
  in
  Mutex.unlock default_m;
  t

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let touch t e =
  t.clock <- t.clock + 1;
  e.last_used <- t.clock

(* assumes the lock is held *)
let evict_locked t =
  while Hashtbl.length t.blobs > t.cap do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.last_used -> acc
          | _ -> Some (k, e.last_used))
        t.blobs None
    in
    match victim with
    | None -> ()
    | Some (k, _) ->
      Hashtbl.remove t.blobs k;
      t.evictions <- t.evictions + 1;
      Trace.count t.tc_evictions 1;
      (* a memory-only store is a cache: refs left dangling by the
         eviction are dropped with it, bounding the ref table too. With
         a disk tier the blob is still durable, so refs stay valid. *)
      if t.dir = None then begin
        let dangling =
          Hashtbl.fold
            (fun rname d acc -> if String.equal d k then rname :: acc else acc)
            t.mrefs []
        in
        List.iter (Hashtbl.remove t.mrefs) dangling
      end
  done

let put t blob =
  let d = digest_of_string blob in
  locked t (fun () ->
      t.puts <- t.puts + 1;
      if t.txns > 0 then Hashtbl.replace t.pinned d ();
      match Hashtbl.find_opt t.blobs d with
      | Some e ->
        touch t e;
        t.dedup_hits <- t.dedup_hits + 1;
        t.bytes_deduped <- t.bytes_deduped + String.length blob;
        Trace.count t.tc_dedup 1
      | None ->
        (match t.dir with
        | Some dir when t.vfs.Vfs.exists (blob_path dir d) ->
          (* already durable from an earlier run: a dedup against disk *)
          t.dedup_hits <- t.dedup_hits + 1;
          t.bytes_deduped <- t.bytes_deduped + String.length blob;
          Trace.count t.tc_dedup 1
        | Some dir ->
          write_atomic t.vfs (blob_path dir d) blob;
          t.disk_writes <- t.disk_writes + 1;
          t.bytes_put <- t.bytes_put + String.length blob
        | None -> t.bytes_put <- t.bytes_put + String.length blob);
        t.clock <- t.clock + 1;
        Hashtbl.replace t.blobs d
          { data = blob; last_used = t.clock; cached = None };
        evict_locked t);
  d

(* assumes the lock is held; counts one hit or miss *)
let find_entry_locked t d =
  match Hashtbl.find_opt t.blobs d with
  | Some e ->
    touch t e;
    t.hits <- t.hits + 1;
    Trace.count t.tc_hits 1;
    Ok e
  | None -> (
    let miss err =
      t.misses <- t.misses + 1;
      Trace.count t.tc_misses 1;
      Error err
    in
    match t.dir with
    | None -> miss `Missing
    | Some dir -> (
      let path = blob_path dir d in
      if not (t.vfs.Vfs.exists path) then miss `Missing
      else
        match t.vfs.Vfs.read_file path with
        | exception Vfs.Io_error { reason; _ } ->
          miss (`Corrupt ("unreadable blob: " ^ reason))
        | raw ->
          t.disk_reads <- t.disk_reads + 1;
          let actual = digest_of_string raw in
          if not (String.equal actual d) then begin
            t.corrupt <- t.corrupt + 1;
            miss
              (`Corrupt
                (Printf.sprintf
                   "blob %s fails the re-digest check (stored bytes hash to \
                    %s)"
                   d actual))
          end
          else begin
            t.clock <- t.clock + 1;
            let e = { data = raw; last_used = t.clock; cached = None } in
            Hashtbl.replace t.blobs d e;
            evict_locked t;
            t.hits <- t.hits + 1;
            Trace.count t.tc_hits 1;
            Ok e
          end))

let load t d =
  locked t (fun () ->
      match find_entry_locked t d with
      | Ok e -> Ok e.data
      | Error e -> Error e)

let get t d = match load t d with Ok b -> Some b | Error _ -> None

let mem t d =
  locked t (fun () ->
      Hashtbl.mem t.blobs d
      || match t.dir with
         | None -> false
         | Some dir -> t.vfs.Vfs.exists (blob_path dir d))

(* --- refs --- *)

let set_ref t rname d =
  locked t (fun () ->
      Hashtbl.replace t.mrefs rname d;
      match t.dir with
      | None -> ()
      | Some dir ->
        write_atomic t.vfs (ref_path dir rname) (ref_file_contents rname d))

(* assumes the lock is held *)
let disk_ref_locked t dir rname =
  let path = ref_path dir rname in
  if not (t.vfs.Vfs.exists path) then None
  else
    match parse_ref_file (t.vfs.Vfs.read_file path) with
    | Some (stored, d) when String.equal stored rname -> Some d
    | Some _ | None -> None
    | exception Vfs.Io_error _ -> None

let find_ref t rname =
  locked t (fun () ->
      match Hashtbl.find_opt t.mrefs rname with
      | Some d -> Some d
      | None -> (
        match t.dir with
        | None -> None
        | Some dir -> (
          match disk_ref_locked t dir rname with
          | Some d ->
            Hashtbl.replace t.mrefs rname d;
            Some d
          | None -> None)))

let commit_refs t updates =
  locked t (fun () ->
      match t.dir with
      | None ->
        List.iter (fun (rname, d) -> Hashtbl.replace t.mrefs rname d) updates
      | Some dir ->
        let with_old (rname, new_d) =
          let old_d =
            match Hashtbl.find_opt t.mrefs rname with
            | Some o -> o
            | None -> Option.value (disk_ref_locked t dir rname) ~default:""
          in
          (rname, old_d, new_d)
        in
        let record = List.map with_old updates in
        let jp = journal_path dir in
        (* the commit point: once this record is on stable storage the
           transaction roll-forwards; before it, nothing was written *)
        t.vfs.Vfs.append_file jp (journal_record record);
        t.vfs.Vfs.fsync jp;
        List.iter
          (fun (rname, d) ->
            write_atomic t.vfs (ref_path dir rname)
              (ref_file_contents rname d);
            Hashtbl.replace t.mrefs rname d)
          updates;
        (* checkpoint: the refs are durable, the record is obsolete *)
        t.vfs.Vfs.write_file jp "";
        t.vfs.Vfs.fsync jp)

(* test/tooling hook: append a journal record without touching the refs,
   simulating a writer that died right after its commit-point fsync *)
let append_journal t updates =
  match t.dir with
  | None -> invalid_arg "Store.append_journal: memory-only store"
  | Some dir ->
    locked t (fun () ->
        let jp = journal_path dir in
        t.vfs.Vfs.append_file jp
          (journal_record
             (List.map
                (fun (rname, old_d, new_d) ->
                  (rname, Option.value old_d ~default:"", new_d))
                updates));
        t.vfs.Vfs.fsync jp)

let with_txn t f =
  locked t (fun () -> t.txns <- t.txns + 1);
  Fun.protect f ~finally:(fun () ->
      locked t (fun () ->
          t.txns <- t.txns - 1;
          if t.txns = 0 then Hashtbl.reset t.pinned))

let refs t =
  locked t (fun () ->
      let acc = Hashtbl.create 64 in
      (match t.dir with
      | None -> ()
      | Some dir ->
        Array.iter
          (fun entry ->
            let path = Filename.concat (refs_dir dir) entry in
            if
              (not (Filename.check_suffix entry ".tmp"))
              && not (t.vfs.Vfs.is_directory path)
            then
              match parse_ref_file (t.vfs.Vfs.read_file path) with
              | Some (rname, d) -> Hashtbl.replace acc rname d
              | None -> ())
          (t.vfs.Vfs.readdir (refs_dir dir)));
      (* memory wins: it holds any not-yet-flushed or most recent value *)
      Hashtbl.iter (Hashtbl.replace acc) t.mrefs;
      Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

(* --- cache-style combined ops --- *)

let lookup t key =
  match find_ref t key with
  | Some d -> get t d
  | None ->
    locked t (fun () ->
        t.misses <- t.misses + 1;
        Trace.count t.tc_misses 1);
    None

let remember t ~key blob =
  let d = put t blob in
  set_ref t key d;
  d

(* --- fsck --- *)

let pp_fsck_issue ppf = function
  | Orphan_tmp path -> Format.fprintf ppf "orphan temp file: %s" path
  | Corrupt_blob { digest; reason } ->
    Format.fprintf ppf "corrupt blob %s: %s" digest reason
  | Dangling_ref { name; digest } ->
    Format.fprintf ppf "ref %S points at missing blob %s" name digest
  | Unreadable_ref { path; reason } ->
    Format.fprintf ppf "unreadable ref file %s: %s" path reason
  | Pending_journal n ->
    Format.fprintf ppf "journal holds %d unreplayed record(s)" n

let fsck t =
  locked t (fun () ->
      let issues = ref [] in
      let add i = issues := i :: !issues in
      let blobs = ref 0 in
      let refsn = ref 0 in
      let blob_present d =
        Hashtbl.mem t.blobs d
        ||
        match t.dir with
        | None -> false
        | Some dir -> t.vfs.Vfs.exists (blob_path dir d)
      in
      (match t.dir with
      | None -> blobs := Hashtbl.length t.blobs
      | Some dir ->
        Array.iter
          (fun e ->
            let path = Filename.concat (blobs_dir dir) e in
            if Filename.check_suffix e ".tmp" then add (Orphan_tmp path)
            else begin
              incr blobs;
              match t.vfs.Vfs.read_file path with
              | exception Vfs.Io_error { reason; _ } ->
                add (Corrupt_blob { digest = e; reason = "unreadable: " ^ reason })
              | raw ->
                if not (String.equal (digest_of_string raw) e) then
                  add (Corrupt_blob { digest = e; reason = "re-digest mismatch" })
            end)
          (t.vfs.Vfs.readdir (blobs_dir dir));
        Array.iter
          (fun e ->
            let path = Filename.concat (refs_dir dir) e in
            if Filename.check_suffix e ".tmp" then add (Orphan_tmp path)
            else begin
              incr refsn;
              match t.vfs.Vfs.read_file path with
              | exception Vfs.Io_error { reason; _ } ->
                add (Unreadable_ref { path; reason })
              | raw -> (
                match parse_ref_file raw with
                | None -> add (Unreadable_ref { path; reason = "does not parse" })
                | Some (rname, d) ->
                  if not (blob_present d) then
                    add (Dangling_ref { name = rname; digest = d }))
            end)
          (t.vfs.Vfs.readdir (refs_dir dir));
        let jp = journal_path dir in
        if t.vfs.Vfs.exists jp then begin
          match t.vfs.Vfs.read_file jp with
          | exception Vfs.Io_error { reason; _ } ->
            add (Unreadable_ref { path = jp; reason })
          | "" -> ()
          | raw ->
            let records, torn = parse_journal raw in
            add (Pending_journal (List.length records + torn))
        end);
      (* memory refs must resolve too (memory-only stores have no files) *)
      Hashtbl.iter
        (fun rname d ->
          if t.dir = None then incr refsn;
          if not (blob_present d) then
            add (Dangling_ref { name = rname; digest = d }))
        t.mrefs;
      let report =
        { f_blobs = !blobs; f_refs = !refsn; f_issues = List.rev !issues }
      in
      if report.f_issues = [] then Ok report else Error report)

(* --- mark-and-sweep GC --- *)

let gc ?(expand = fun _ _ -> []) t =
  t.gc_runs <- t.gc_runs + 1;
  (* mark: roots are every ref (memory + disk) and every pinned digest
     of an in-flight transaction; [expand] closes over blob-to-blob
     references the store itself cannot see *)
  let roots =
    locked t (fun () ->
        let acc = Hashtbl.fold (fun _ d l -> d :: l) t.mrefs [] in
        let acc =
          match t.dir with
          | None -> acc
          | Some dir ->
            Array.fold_left
              (fun l e ->
                if Filename.check_suffix e ".tmp" then l
                else
                  let path = Filename.concat (refs_dir dir) e in
                  match parse_ref_file (t.vfs.Vfs.read_file path) with
                  | Some (_, d) -> d :: l
                  | None -> l
                  | exception Vfs.Io_error _ -> l)
              acc
              (t.vfs.Vfs.readdir (refs_dir dir))
        in
        let pins = Hashtbl.fold (fun d () l -> d :: l) t.pinned [] in
        (acc, pins))
  in
  let ref_roots, pins = roots in
  let marked = Hashtbl.create 256 in
  let broken = ref [] in
  let rec mark d =
    if not (Hashtbl.mem marked d) then begin
      Hashtbl.replace marked d ();
      match load t d with
      | Ok raw -> List.iter mark (expand d raw)
      | Error `Missing -> broken := (d, "missing") :: !broken
      | Error (`Corrupt m) -> broken := (d, m) :: !broken
    end
  in
  List.iter mark ref_roots;
  List.iter mark pins;
  match !broken with
  | (d, m) :: _ ->
    (* the live set cannot be trusted; collecting anything now could
       orphan data a repaired blob would resurrect *)
    Error (Printf.sprintf "live blob %s is damaged (%s); run fsck" d m)
  | [] ->
    locked t (fun () ->
        let live d =
          Hashtbl.mem marked d || Hashtbl.mem t.pinned d
          (* re-check current refs: a commit that raced the mark phase
             can only reference marked or pinned blobs, but the sweep
             must never rely on that *)
          || Hashtbl.fold
               (fun _ rd acc -> acc || String.equal rd d)
               t.mrefs false
        in
        let swept = ref 0 in
        let bytes = ref 0 in
        (match t.dir with
        | None ->
          let dead =
            Hashtbl.fold
              (fun d e acc -> if live d then acc else (d, e) :: acc)
              t.blobs []
          in
          List.iter
            (fun (d, e) ->
              bytes := !bytes + String.length e.data;
              Hashtbl.remove t.blobs d;
              incr swept)
            dead
        | Some dir ->
          Array.iter
            (fun e ->
              if (not (Filename.check_suffix e ".tmp")) && not (live e) then begin
                let path = Filename.concat (blobs_dir dir) e in
                (match t.vfs.Vfs.file_size path with
                | n -> bytes := !bytes + n
                | exception Vfs.Io_error _ -> ());
                t.vfs.Vfs.unlink path;
                Hashtbl.remove t.blobs e;
                incr swept
              end)
            (t.vfs.Vfs.readdir (blobs_dir dir)));
        t.gc_collected <- t.gc_collected + !swept;
        t.gc_reclaimed_bytes <- t.gc_reclaimed_bytes + !bytes;
        Trace.count ("store." ^ t.sname ^ ".gc_collected") !swept;
        Trace.count ("store." ^ t.sname ^ ".gc_reclaimed_bytes") !bytes;
        Ok
          {
            gc_live = Hashtbl.length marked;
            gc_swept = !swept;
            gc_bytes = !bytes;
            gc_pinned = List.length pins;
          })

(* --- capacity / lifecycle / stats --- *)

let set_capacity t n =
  locked t (fun () ->
      t.cap <- max 1 n;
      evict_locked t)

let capacity t = locked t (fun () -> t.cap)

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.blobs;
      Hashtbl.reset t.mrefs;
      Hashtbl.reset t.pinned)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.blobs;
        capacity = t.cap;
        puts = t.puts;
        dedup_hits = t.dedup_hits;
        bytes_put = t.bytes_put;
        bytes_deduped = t.bytes_deduped;
        disk_reads = t.disk_reads;
        disk_writes = t.disk_writes;
        corrupt = t.corrupt;
        gc_runs = t.gc_runs;
        gc_collected = t.gc_collected;
        gc_reclaimed_bytes = t.gc_reclaimed_bytes;
      })

let fingerprint t =
  let refl = refs t in
  locked t (fun () ->
      let digests = Hashtbl.create 256 in
      Hashtbl.iter (fun d _ -> Hashtbl.replace digests d ()) t.blobs;
      (match t.dir with
      | None -> ()
      | Some dir ->
        Array.iter
          (fun entry ->
            if not (Filename.check_suffix entry ".tmp") then
              Hashtbl.replace digests entry ())
          (t.vfs.Vfs.readdir (blobs_dir dir)));
      let sorted =
        Hashtbl.fold (fun d () l -> d :: l) digests []
        |> List.sort String.compare
      in
      let b = Buffer.create 4096 in
      List.iter
        (fun d ->
          Buffer.add_string b d;
          Buffer.add_char b '\n')
        sorted;
      Buffer.add_string b "--refs--\n";
      List.iter
        (fun (rname, d) ->
          Buffer.add_string b rname;
          Buffer.add_char b '=';
          Buffer.add_string b d;
          Buffer.add_char b '\n')
        refl;
      digest_of_string (Buffer.contents b))

(* --- typed codecs --- *)

module type VALUE = sig
  type v

  val codec_id : string
  val encode : v -> string
  val decode : string -> (v, string) result
end

module Typed (V : VALUE) = struct
  type packed += P of V.v

  let put t v = put t (V.encode v)

  let get t d =
    let fast =
      locked t (fun () ->
          match find_entry_locked t d with
          | Ok { cached = Some (P v); _ } -> `Cached v
          | Ok e -> `Raw e.data
          | Error err -> `Err err)
    in
    match fast with
    | `Err err ->
      Error
        (err
          :> [ `Missing | `Corrupt of string | `Decode of string ])
    | `Cached v -> Ok v
    | `Raw data -> (
      (* resident but not yet decoded for this type: decode outside the
         lock, then memoise (last writer wins; values are equal) *)
      match V.decode data with
      | Error m -> Error (`Decode (V.codec_id ^ ": " ^ m))
      | Ok v ->
        locked t (fun () ->
            match Hashtbl.find_opt t.blobs d with
            | Some e -> e.cached <- Some (P v)
            | None -> ());
        Ok v)

  let lookup t key =
    match find_ref t key with
    | Some d -> ( match get t d with Ok v -> Some v | Error _ -> None)
    | None ->
      locked t (fun () ->
          t.misses <- t.misses + 1;
          Trace.count t.tc_misses 1);
      None

  let remember t ~key v =
    let d = remember t ~key (V.encode v) in
    (* the encoder round-trips; memoise the original value so hits share
       one physical artifact *)
    locked t (fun () ->
        match Hashtbl.find_opt t.blobs d with
        | Some e -> e.cached <- Some (P v)
        | None -> ());
    d
end
