(** Content-addressed artifact store: the one digest-keyed substrate
    under kbuild's compile cache, incremental update creation, update
    serialisation, and the distribution repository.

    The whole Ksplice pipeline is digest-shaped — deterministic builds
    (§4.3), pre-post differencing over object code (§3), linear update
    chains keyed by source digests (§8) — so artifacts are identified by
    the digest of their bytes and interned exactly once:

    - {b blobs}: immutable byte strings keyed by their own digest.
      [put] interns (a repeat is a {e dedup hit}, counted, with the
      duplicate bytes counted as saved); [get]/[load] retrieve.
    - {b refs}: mutable names pointing at blob digests (a compile-cache
      key, a repository chain head) — the only mutable state.
    - {b typed codecs}: {!Typed} wraps a blob in an encode/decode pair
      and memoises the decoded value on the in-memory entry, so a cache
      hit costs no re-decode.

    {b Tiers.} The in-memory tier is mutex-guarded and LRU-bounded with
    eviction statistics, exactly the discipline of the old kbuild
    compile cache. An optional on-disk tier ([?dir]) makes blobs and
    refs durable, and every disk read re-digests the bytes — a truncated
    or bit-flipped blob is reported as [`Corrupt], never returned. With
    a disk tier, memory eviction never loses data (the next [get]
    re-reads and re-verifies from disk); without one, the store is a
    bounded cache and callers must treat a miss as "recompute".

    {b Crash safety.} All disk I/O goes through an injectable {!Vfs.t},
    so the fault sweeps can kill a simulated process at any I/O
    operation. Every file lands via write-temp, fsync, rename, fsync-dir
    (a failure unlinks the temp); multi-ref transactions
    ({!commit_refs}) first append-and-fsync a checksummed record to a
    write-ahead journal, so {e recovery-on-open} can roll a committed
    transaction forward or a torn one back — refs never point at missing
    blobs. {!fsck} re-checks every invariant read-only; {!gc}
    mark-and-sweeps unreachable blobs from the ref roots, with in-flight
    transactions ({!with_txn}) pinned so a publish racing the sweep is
    never collected.

    {b Determinism.} Contents are a pure function of the [put]/[set_ref]
    history: no wall clocks, no randomness, no process identifiers leak
    into blobs or refs. Two identical runs produce byte-identical store
    contents — {!fingerprint} digests the canonical (sorted) contents so
    tests can assert it.

    Counters are mirrored as {!Trace} counters
    ([store.<name>.hits/misses/evictions/dedup_hits] and
    [store.<name>.gc_collected/gc_reclaimed_bytes]) when tracing is
    enabled. *)

type t

(** Hex digest of a blob's bytes (content address). *)
type digest = string

val digest_of_string : string -> digest

(** [create ?name ?capacity ?dir ?vfs ?recover ()] makes a store.
    [name] labels the trace counters (default ["store"]); [capacity]
    bounds the in-memory tier (default 1024, clamped to at least 1);
    [dir] roots the persistent tier (created if missing, with [blobs/],
    [refs/] and a [journal] underneath). [vfs] (default {!Vfs.real})
    carries all disk I/O — inject a fault plan to simulate crashes.
    Unless [recover] is [false] (read-only inspection, e.g. fsck),
    opening a disk store replays the journal and sweeps orphan temp
    files; the result is available from {!recovery}.

    Two handles opened on the same directory (identified by device and
    inode, so a deleted-and-recreated path never aliases) share one
    in-process handle — one memory tier, one mutex, one journal state —
    so a distribution daemon's many concurrent readers and a publisher
    see each other's writes without disk round-trips. Sharing applies
    only to plain handles ([vfs] = {!Vfs.real} and [recover] true); pass
    [share:false] to force a private handle, e.g. to simulate a separate
    process rebooting into the directory cold. A shared hit keeps the
    first creator's [name] and [capacity].

    Raises {!Vfs.Io_error} when the disk tier cannot be initialised
    (e.g. [dir] exists but is not a directory, or mkdir fails). *)
val create :
  ?name:string ->
  ?capacity:int ->
  ?dir:string ->
  ?vfs:Vfs.t ->
  ?recover:bool ->
  ?share:bool ->
  unit ->
  t

val name : t -> string

(** The process-wide artifact store shared by update creation and the
    corpus sweeps (memory-only, capacity 8192). *)
val default : unit -> t

(** {2 Blobs} *)

(** [put t blob] interns [blob] and returns its digest. Re-interning
    counts a dedup hit and the duplicate bytes as saved. With a disk
    tier the blob is also written durably (once). *)
val put : t -> string -> digest

(** [load t d] retrieves the blob named by [d]: from memory, else from
    disk with the bytes re-digested — a mismatch is [`Corrupt] (counted),
    never silently returned. Counts one hit or miss. *)
val load : t -> digest -> (string, [ `Missing | `Corrupt of string ]) result

(** [get t d] is {!load} with [`Corrupt] collapsed into [None]. *)
val get : t -> digest -> string option

val mem : t -> digest -> bool

(** {2 Refs} *)

(** [set_ref t name d] points [name] at blob [d] (persisted atomically
    when the store has a disk tier; a single-ref flip needs no journal
    record). *)
val set_ref : t -> string -> digest -> unit

val find_ref : t -> string -> digest option

(** All refs, sorted by name. *)
val refs : t -> (string * digest) list

(** {2 Transactions} *)

(** [commit_refs t updates] flips every [(name, digest)] in [updates]
    atomically with respect to crashes: an append-then-fsync journal
    record is the commit point, after which recovery rolls the whole set
    forward; a crash before it rolls the whole set back. Call with the
    target blobs already {!put} (recovery only rolls forward when every
    new blob verifies on disk). *)
val commit_refs : t -> (string * digest) list -> unit

(** [with_txn t f] runs [f] with every blob it [put]s pinned as a GC
    root until the outermost transaction exits — by which point the
    publish has either committed its refs (reachable) or failed
    (collectable). Nestable; exceptions unpin. *)
val with_txn : t -> (unit -> 'a) -> 'a

(** Test/tooling hook: append a journal record as {!commit_refs} would,
    {e without} applying the ref writes — the on-disk state of a writer
    that died right after its commit point. [None] old values mean the
    ref did not exist. *)
val append_journal : t -> (string * digest option * digest) list -> unit

(** {2 Recovery, fsck, GC} *)

type recovery_report = {
  rolled_forward : int;  (** journal records whose commit completed *)
  rolled_back : int;  (** journal records undone to their old values *)
  torn_discarded : int;  (** half-written journal tails dropped *)
  tmp_removed : int;  (** orphan [.tmp] files swept *)
}

(** What recovery-on-open did, if this store has a disk tier and was
    opened with [~recover:true]. *)
val recovery : t -> recovery_report option

type fsck_issue =
  | Orphan_tmp of string
  | Corrupt_blob of { digest : digest; reason : string }
  | Dangling_ref of { name : string; digest : digest }
  | Unreadable_ref of { path : string; reason : string }
  | Pending_journal of int

val pp_fsck_issue : Format.formatter -> fsck_issue -> unit

type fsck_report = {
  f_blobs : int;  (** blobs checked *)
  f_refs : int;  (** refs checked *)
  f_issues : fsck_issue list;
}

(** Read-only integrity check: every blob re-digests clean, every ref
    parses and resolves to a present blob, no orphan temp files, no
    unreplayed journal. [Ok] when no issues were found. Never modifies
    the store. *)
val fsck : t -> (fsck_report, fsck_report) result

type gc_report = {
  gc_live : int;  (** blobs reachable from the roots *)
  gc_swept : int;  (** unreachable blobs deleted *)
  gc_bytes : int;  (** bytes reclaimed by this run *)
  gc_pinned : int;  (** in-flight transaction pins treated as roots *)
}

(** [gc ?expand t] mark-and-sweeps unreachable blobs. Roots are every
    ref (memory and disk) plus the pins of in-flight {!with_txn}
    transactions; [expand digest bytes] returns the digests a live blob
    references, closing the reachability relation over encodings the
    store cannot parse itself (default: none). Deleting only unreachable
    blobs is crash-safe without journalling — a crash mid-sweep merely
    leaves some garbage for the next run. Returns [Error] without
    collecting anything if a blob on a live path is missing or corrupt
    (the live set cannot be trusted; run {!fsck}). *)
val gc : ?expand:(digest -> string -> digest list) -> t -> (gc_report, string) result

(** {2 Cache-style combined operations} *)

(** [lookup t key] resolves ref [key] and loads its blob, counting one
    hit (both succeed) or one miss. *)
val lookup : t -> string -> string option

(** [remember t ~key blob] interns [blob] and points ref [key] at it. *)
val remember : t -> key:string -> string -> digest

(** {2 Capacity and lifecycle} *)

(** Bounds the in-memory tier to [max 1 n] entries, evicting
    least-recently-used entries immediately if over. In a memory-only
    store, refs left dangling by an eviction are dropped with it. *)
val set_capacity : t -> int -> unit

val capacity : t -> int

(** Drops every in-memory blob, ref and transaction pin. Counters are
    kept (cumulative process-level statistics); the disk tier is
    untouched. *)
val reset : t -> unit

(** {2 Statistics} *)

type stats = {
  hits : int;  (** lookups served (memory or verified disk) *)
  misses : int;  (** lookups that found nothing *)
  evictions : int;  (** memory entries dropped by the LRU bound *)
  entries : int;  (** memory entries resident now *)
  capacity : int;  (** memory-tier bound *)
  puts : int;  (** blob interns requested *)
  dedup_hits : int;  (** interns that found the blob already present *)
  bytes_put : int;  (** bytes of distinct blobs accepted *)
  bytes_deduped : int;  (** duplicate bytes never stored again *)
  disk_reads : int;
  disk_writes : int;
  corrupt : int;  (** disk blobs rejected by the re-digest check *)
  gc_runs : int;  (** garbage collections attempted *)
  gc_collected : int;  (** unreachable blobs deleted, cumulative *)
  gc_reclaimed_bytes : int;  (** bytes reclaimed, cumulative *)
}

val stats : t -> stats

(** Digest of the canonical store contents: the sorted set of blob
    digests (memory and disk) plus the sorted refs. Two runs that
    performed the same puts and ref writes — in any order — fingerprint
    identically. *)
val fingerprint : t -> digest

(** {2 Typed codecs} *)

module type VALUE = sig
  type v

  (** Versioned codec label, e.g. ["kbuild-unit/1"]. *)
  val codec_id : string

  val encode : v -> string
  val decode : string -> (v, string) result
end

(** Blob access through a codec, with the decoded value memoised on the
    in-memory entry (a second [get]/[lookup] of the same resident blob
    re-decodes nothing). Apply the functor once per value type. *)
module Typed (V : VALUE) : sig
  val put : t -> V.v -> digest

  val get :
    t -> digest ->
    (V.v, [ `Missing | `Corrupt of string | `Decode of string ]) result

  (** [lookup t key] is ref-resolve + typed load, counting one hit or
      miss; a decode failure yields [None]. *)
  val lookup : t -> string -> V.v option

  val remember : t -> key:string -> V.v -> digest
end
