(** Content-addressed artifact store: the one digest-keyed substrate
    under kbuild's compile cache, incremental update creation, update
    serialisation, and the distribution repository.

    The whole Ksplice pipeline is digest-shaped — deterministic builds
    (§4.3), pre-post differencing over object code (§3), linear update
    chains keyed by source digests (§8) — so artifacts are identified by
    the digest of their bytes and interned exactly once:

    - {b blobs}: immutable byte strings keyed by their own digest.
      [put] interns (a repeat is a {e dedup hit}, counted, with the
      duplicate bytes counted as saved); [get]/[load] retrieve.
    - {b refs}: mutable names pointing at blob digests (a compile-cache
      key, a repository chain head) — the only mutable state.
    - {b typed codecs}: {!Typed} wraps a blob in an encode/decode pair
      and memoises the decoded value on the in-memory entry, so a cache
      hit costs no re-decode.

    {b Tiers.} The in-memory tier is mutex-guarded and LRU-bounded with
    eviction statistics, exactly the discipline of the old kbuild
    compile cache. An optional on-disk tier ([?dir]) makes blobs and
    refs durable: writes go to a temporary file and are renamed into
    place (atomic on POSIX), and every disk read re-digests the bytes —
    a truncated or bit-flipped blob is reported as [`Corrupt], never
    returned. With a disk tier, memory eviction never loses data (the
    next [get] re-reads and re-verifies from disk); without one, the
    store is a bounded cache and callers must treat a miss as
    "recompute".

    {b Determinism.} Contents are a pure function of the [put]/[set_ref]
    history: no wall clocks, no randomness, no process identifiers leak
    into blobs or refs. Two identical runs produce byte-identical store
    contents — {!fingerprint} digests the canonical (sorted) contents so
    tests can assert it.

    Counters are mirrored as {!Trace} counters
    ([store.<name>.hits/misses/evictions/dedup_hits]) when tracing is
    enabled. *)

type t

(** Hex digest of a blob's bytes (content address). *)
type digest = string

val digest_of_string : string -> digest

(** [create ?name ?capacity ?dir ()] makes a store. [name] labels the
    trace counters (default ["store"]); [capacity] bounds the in-memory
    tier (default 1024, clamped to at least 1); [dir] roots the
    persistent tier (created if missing, with [blobs/] and [refs/]
    underneath). *)
val create : ?name:string -> ?capacity:int -> ?dir:string -> unit -> t

val name : t -> string

(** The process-wide artifact store shared by update creation and the
    corpus sweeps (memory-only, capacity 8192). *)
val default : unit -> t

(** {2 Blobs} *)

(** [put t blob] interns [blob] and returns its digest. Re-interning
    counts a dedup hit and the duplicate bytes as saved. With a disk
    tier the blob is also written durably (once). *)
val put : t -> string -> digest

(** [load t d] retrieves the blob named by [d]: from memory, else from
    disk with the bytes re-digested — a mismatch is [`Corrupt] (counted),
    never silently returned. Counts one hit or miss. *)
val load : t -> digest -> (string, [ `Missing | `Corrupt of string ]) result

(** [get t d] is {!load} with [`Corrupt] collapsed into [None]. *)
val get : t -> digest -> string option

val mem : t -> digest -> bool

(** {2 Refs} *)

(** [set_ref t name d] points [name] at blob [d] (persisted when the
    store has a disk tier). *)
val set_ref : t -> string -> digest -> unit

val find_ref : t -> string -> digest option

(** All refs, sorted by name. *)
val refs : t -> (string * digest) list

(** {2 Cache-style combined operations} *)

(** [lookup t key] resolves ref [key] and loads its blob, counting one
    hit (both succeed) or one miss. *)
val lookup : t -> string -> string option

(** [remember t ~key blob] interns [blob] and points ref [key] at it. *)
val remember : t -> key:string -> string -> digest

(** {2 Capacity and lifecycle} *)

(** Bounds the in-memory tier to [max 1 n] entries, evicting
    least-recently-used entries immediately if over. In a memory-only
    store, refs left dangling by an eviction are dropped with it. *)
val set_capacity : t -> int -> unit

val capacity : t -> int

(** Drops every in-memory blob and ref. Counters are kept (cumulative
    process-level statistics); the disk tier is untouched. *)
val reset : t -> unit

(** {2 Statistics} *)

type stats = {
  hits : int;  (** lookups served (memory or verified disk) *)
  misses : int;  (** lookups that found nothing *)
  evictions : int;  (** memory entries dropped by the LRU bound *)
  entries : int;  (** memory entries resident now *)
  capacity : int;  (** memory-tier bound *)
  puts : int;  (** blob interns requested *)
  dedup_hits : int;  (** interns that found the blob already present *)
  bytes_put : int;  (** bytes of distinct blobs accepted *)
  bytes_deduped : int;  (** duplicate bytes never stored again *)
  disk_reads : int;
  disk_writes : int;
  corrupt : int;  (** disk blobs rejected by the re-digest check *)
}

val stats : t -> stats

(** Digest of the canonical store contents: the sorted set of blob
    digests (memory and disk) plus the sorted refs. Two runs that
    performed the same puts and ref writes — in any order — fingerprint
    identically. *)
val fingerprint : t -> digest

(** {2 Typed codecs} *)

module type VALUE = sig
  type v

  (** Versioned codec label, e.g. ["kbuild-unit/1"]. *)
  val codec_id : string

  val encode : v -> string
  val decode : string -> (v, string) result
end

(** Blob access through a codec, with the decoded value memoised on the
    in-memory entry (a second [get]/[lookup] of the same resident blob
    re-decodes nothing). Apply the functor once per value type. *)
module Typed (V : VALUE) : sig
  val put : t -> V.v -> digest

  val get :
    t -> digest ->
    (V.v, [ `Missing | `Corrupt of string | `Decode of string ]) result

  (** [lookup t key] is ref-resolve + typed load, counting one hit or
      miss; a decode failure yields [None]. *)
  val lookup : t -> string -> V.v option

  val remember : t -> key:string -> V.v -> digest
end
