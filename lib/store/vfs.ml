exception Crashed
exception Io_error of { op : string; path : string; reason : string }

type t = {
  read_file : string -> string;
  write_file : string -> string -> unit;
  append_file : string -> string -> unit;
  fsync : string -> unit;
  rename : string -> string -> unit;
  unlink : string -> unit;
  mkdir : string -> unit;
  readdir : string -> string array;
  exists : string -> bool;
  is_directory : string -> bool;
  file_size : string -> int;
}

(* --- the real filesystem --- *)

let io_error op path reason = raise (Io_error { op; path; reason })

(* normalise both exception families the stdlib and Unix raise so
   callers only ever see Io_error (or Crashed, from the injector) *)
let wrap op path f =
  try f () with
  | Sys_error m -> io_error op path m
  | Unix.Unix_error (e, _, _) -> io_error op path (Unix.error_message e)

let real =
  {
    read_file =
      (fun path ->
        wrap "read" path (fun () ->
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))));
    write_file =
      (fun path contents ->
        wrap "write" path (fun () ->
            let oc = open_out_bin path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc contents)));
    append_file =
      (fun path contents ->
        wrap "append" path (fun () ->
            let oc =
              open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
            in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> output_string oc contents)));
    fsync =
      (fun path ->
        wrap "fsync" path (fun () ->
            let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () -> Unix.fsync fd)));
    rename = (fun src dst -> wrap "rename" src (fun () -> Sys.rename src dst));
    unlink = (fun path -> wrap "unlink" path (fun () -> Sys.remove path));
    mkdir = (fun path -> wrap "mkdir" path (fun () -> Sys.mkdir path 0o755));
    readdir = (fun path -> wrap "readdir" path (fun () -> Sys.readdir path));
    exists = (fun path -> Sys.file_exists path);
    is_directory =
      (fun path -> (try Sys.is_directory path with Sys_error _ -> false));
    file_size =
      (fun path ->
        wrap "stat" path (fun () -> (Unix.stat path).Unix.st_size));
  }

(* --- fault injection --- *)

type fault_kind = Crash | Enospc | Torn
type plan = { at : int; kind : fault_kind; seed : int }

type injector = {
  plan : plan;
  mutable n : int;  (* mutating ops attempted *)
  mutable dead : bool;
  mutable has_fired : bool;
}

let ops inj = inj.n
let fired inj = inj.has_fired

(* how many bytes of a torn write land: deterministic in (seed, op) *)
let torn_len inj len =
  if len = 0 then 0 else Hashtbl.hash (inj.plan.seed, inj.n) mod (len + 1)

let check_alive inj = if inj.dead then raise Crashed

(* One mutating operation. [partial] applies the torn-write effect (a
   prefix for writes, nothing for atomic ops); [full] is the real op. *)
let mutating inj ~op ~path ~partial ~full =
  check_alive inj;
  inj.n <- inj.n + 1;
  if inj.n = inj.plan.at then begin
    inj.has_fired <- true;
    (try partial () with Io_error _ | Sys_error _ -> ());
    match inj.plan.kind with
    | Crash ->
      inj.dead <- true;
      raise Crashed
    | Enospc -> io_error op path "no space left on device (injected)"
    | Torn -> ()
  end
  else full ()

let inject plan base =
  let inj = { plan; n = 0; dead = false; has_fired = false } in
  let reading f x =
    check_alive inj;
    f x
  in
  let vfs =
    {
      read_file = reading base.read_file;
      readdir = reading base.readdir;
      exists = reading base.exists;
      is_directory = reading base.is_directory;
      file_size = reading base.file_size;
      write_file =
        (fun path contents ->
          mutating inj ~op:"write" ~path
            ~partial:(fun () ->
              base.write_file path
                (String.sub contents 0 (torn_len inj (String.length contents))))
            ~full:(fun () -> base.write_file path contents));
      append_file =
        (fun path contents ->
          mutating inj ~op:"append" ~path
            ~partial:(fun () ->
              base.append_file path
                (String.sub contents 0 (torn_len inj (String.length contents))))
            ~full:(fun () -> base.append_file path contents));
      fsync =
        (fun path ->
          mutating inj ~op:"fsync" ~path
            ~partial:(fun () -> ())
            ~full:(fun () -> base.fsync path));
      rename =
        (fun src dst ->
          mutating inj ~op:"rename" ~path:src
            ~partial:(fun () -> ())
            ~full:(fun () -> base.rename src dst));
      unlink =
        (fun path ->
          mutating inj ~op:"unlink" ~path
            ~partial:(fun () -> ())
            ~full:(fun () -> base.unlink path));
      mkdir =
        (fun path ->
          mutating inj ~op:"mkdir" ~path
            ~partial:(fun () -> ())
            ~full:(fun () -> base.mkdir path));
    }
  in
  (vfs, inj)

let counting base =
  let vfs, inj = inject { at = max_int; kind = Torn; seed = 0 } base in
  (vfs, fun () -> ops inj)
