(** Injectable disk I/O with a deterministic fault driver.

    Everything the store does to the filesystem goes through a {!t}
    record, so crash-safety tests can interpose a fault driver in the
    spirit of [Faultinj]: a {!plan} names the k-th mutating operation of
    a run and a {!fault_kind} to fire there. The three kinds model the
    failure taxonomy of real disks:

    - {!Crash}: the process dies mid-operation. A write lands a
      seed-chosen prefix of its bytes (a torn write); atomic operations
      (rename, unlink, mkdir, fsync) do not happen at all. Every
      subsequent operation in that simulated run — reads included —
      raises {!Crashed}, modelling that the process is gone. The caller
      then reopens the directory with a fresh, fault-free handle, which
      is exactly a reboot.
    - {!Enospc}: the device is full. The operation lands a prefix and
      raises {!Io_error}; the process survives and later operations
      succeed (one-shot).
    - {!Torn}: a lying disk. The operation lands a prefix but reports
      success; nothing raises. Only the store's own re-digest and
      journal checksums can catch this later.

    Faults are a pure function of [(plan, operation index)]: no
    randomness, no clocks. The same plan against the same operation
    sequence fires identically every run. *)

(** The simulated process has died: all I/O on this handle refuses. *)
exception Crashed

(** A typed I/O failure (injected or real), e.g. ENOSPC or a failing
    [mkdir]. [op] names the operation, [path] the file it touched. *)
exception Io_error of { op : string; path : string; reason : string }

type t = {
  read_file : string -> string;
  write_file : string -> string -> unit;  (** create/truncate, write all *)
  append_file : string -> string -> unit;  (** create if missing, append *)
  fsync : string -> unit;  (** flush a file {e or directory} to stable storage *)
  rename : string -> string -> unit;
  unlink : string -> unit;
  mkdir : string -> unit;
  readdir : string -> string array;
  exists : string -> bool;
  is_directory : string -> bool;  (** [false] when the path is absent *)
  file_size : string -> int;
}

(** The real filesystem. Failures raise {!Io_error}, never [Sys_error]. *)
val real : t

(** {2 Fault injection} *)

type fault_kind =
  | Crash  (** torn write, then every later op raises {!Crashed} *)
  | Enospc  (** torn write + {!Io_error}; the run continues *)
  | Torn  (** torn write reported as success; the run continues *)

type plan = {
  at : int;  (** fire at the [at]-th mutating operation, 1-based *)
  kind : fault_kind;
  seed : int;  (** selects how many bytes of a torn write land *)
}

type injector

(** [inject plan base] wraps [base] so that mutating operations
    (write/append/rename/unlink/mkdir/fsync) are counted and the
    [plan.at]-th one fires [plan.kind]. Reads are not counted but a
    fired {!Crash} poisons them too. *)
val inject : plan -> t -> t * injector

(** Mutating operations attempted so far (including the faulted one). *)
val ops : injector -> int

(** Whether the planned fault has fired. *)
val fired : injector -> bool

(** [counting base] counts mutating operations without ever faulting —
    the probe run that sizes a crash sweep. *)
val counting : t -> t * (unit -> int)
