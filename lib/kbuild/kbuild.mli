(** Kernel build system: compile a source tree ([.c] MiniC units and [.s]
    assembly units) into object files.

    Builds are deterministic — the same source and options always produce
    byte-identical objects — which is the property that lets Ksplice's
    pre build reproduce the running kernel's code (§4.3: using the same
    compiler and options "is advisable"). A content-addressed cache makes
    the post build recompile only units the patch touched, like kbuild.

    Units compile concurrently on a domain pool ({!Parallel}); per-unit
    compilation is independent, so a parallel build produces exactly the
    objects (and inline decisions) of a sequential one, in path order.
    The cache is mutex-guarded, shared across builds in one process, and
    bounded by an LRU policy (see {!set_cache_capacity}). *)

type unit_build = {
  source_name : string;  (** e.g. ["kernel/sched.c"] *)
  obj : Objfile.t;
  inline_decisions : Minic.Inline.decision list;
}

type build = {
  units : unit_build list;
  options : Minic.Driver.options;
}

(** A failed unit, as data. Compile failures carry the driver's message
    (which leads with the unit name and position); assemble failures
    carry the failing line. *)
type error =
  | Unit_compile_failed of { unit_name : string; reason : string }
  | Unit_assemble_failed of { unit_name : string; line : int; reason : string }

val pp_error : Format.formatter -> error -> unit

(** Raised only by {!build_tree_exn}, for callers that still want the
    exception convention; the message is [pp_error] applied to the typed
    error. *)
exception Build_error of string

(** [build_tree ?domains ~options tree] compiles every [.c] and [.s] file
    of the tree, in path order, using up to [domains] domains (default
    {!Parallel.default_domains}; [1] forces a fully sequential build).
    A failure is returned as data — deterministically the first failing
    unit in path order, regardless of scheduling. *)
val build_tree :
  ?domains:int -> options:Minic.Driver.options -> Patchfmt.Source_tree.t ->
  (build, error) result

(** {!build_tree} for callers without a failure path of their own.
    @raise Build_error on the first failing unit. *)
val build_tree_exn :
  ?domains:int -> options:Minic.Driver.options -> Patchfmt.Source_tree.t ->
  build

(** [objects b] lists the object files in build order. *)
val objects : build -> Objfile.t list

(** [find_unit b name] returns the unit built from source file [name]. *)
val find_unit : build -> string -> unit_build option

(** [inlined_callees b] maps each function to the functions whose bodies
    were inlined into it, per unit: [(unit, caller, callee)] triples.
    Feeds the §6.3 inlining statistics and the pre-post safety story. *)
val inlined_callees : build -> (string * string * string) list

(** {2 Compile cache}

    The cache is a handle on a content-addressed {!Store.t} named
    ["kbuild"]: compiled units are interned as digest-keyed blobs through
    a versioned codec, the cache key (source digest + path + options
    fingerprint) is a store ref, and the store supplies the mutex-guarded
    LRU bound and the statistics below (also mirrored as
    [store.kbuild.*] {!Trace} counters). *)

(** The artifact store backing the compile cache. *)
val store : unit -> Store.t

type cache_stats = {
  hits : int;  (** lookups served from the cache (cumulative) *)
  misses : int;  (** lookups that had to compile (cumulative) *)
  evictions : int;  (** entries dropped by the LRU bound (cumulative) *)
  entries : int;  (** entries resident now *)
  capacity : int;  (** maximum resident entries *)
}

val cache_stats : unit -> cache_stats

(** [set_cache_capacity n] bounds the cache to [max 1 n] entries,
    evicting least-recently-used entries immediately if over. The default
    capacity is 1024. *)
val set_cache_capacity : int -> unit

(** [reset_cache ()] drops every cached unit (counters are kept — they
    are cumulative process-level statistics). Used to benchmark cold
    builds and to stop unrelated builds leaking into each other. *)
val reset_cache : unit -> unit
