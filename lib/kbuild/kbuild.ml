type unit_build = {
  source_name : string;
  obj : Objfile.t;
  inline_decisions : Minic.Inline.decision list;
}

type build = {
  units : unit_build list;
  options : Minic.Driver.options;
}

exception Build_error of string

let err fmt = Format.kasprintf (fun m -> raise (Build_error m)) fmt

(* Content-addressed compile cache: (digest(source), options fingerprint)
   -> compiled unit. Makes the post build recompile only patched units,
   and shares the pre build across every update created in one process.

   The table is mutex-guarded (parallel [build_tree] compiles units on
   several domains) and bounded: least-recently-used entries are evicted
   once [cache_capacity] is exceeded, so unrelated builds cannot grow it
   without limit. Compilation itself happens outside the lock; when two
   domains race to compile the same key, the first insertion wins and
   both callers share one physical artifact. *)

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

type centry = {
  cu : unit_build;
  mutable last_used : int;
}

let cache : (string, centry) Hashtbl.t = Hashtbl.create 256
let cache_m = Mutex.create ()
let cache_clock = ref 0
let cache_capacity = ref 1024
let c_hits = ref 0
let c_misses = ref 0
let c_evictions = ref 0

let evict_locked () =
  while Hashtbl.length cache > !cache_capacity do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.last_used -> acc
          | _ -> Some (k, e.last_used))
        cache None
    in
    match victim with
    | Some (k, _) ->
      Hashtbl.remove cache k;
      incr c_evictions
    | None -> ()
  done

let set_cache_capacity n =
  Mutex.lock cache_m;
  cache_capacity := max 1 n;
  evict_locked ();
  Mutex.unlock cache_m

let cache_stats () =
  Mutex.lock cache_m;
  let s =
    { hits = !c_hits; misses = !c_misses; evictions = !c_evictions;
      entries = Hashtbl.length cache; capacity = !cache_capacity }
  in
  Mutex.unlock cache_m;
  s

let reset_cache () =
  Mutex.lock cache_m;
  Hashtbl.reset cache;
  Mutex.unlock cache_m

let options_fingerprint (o : Minic.Driver.options) =
  Printf.sprintf "fs=%b;al=%b;inl=%b;%d;%d" o.codegen.function_sections
    o.codegen.align_loops o.inline_enabled o.auto_inline_max
    o.explicit_inline_max

let compile_one ~options path contents =
  let key =
    Digest.to_hex (Digest.string contents)
    ^ "|" ^ path ^ "|" ^ options_fingerprint options
  in
  let cached =
    Mutex.lock cache_m;
    let r =
      match Hashtbl.find_opt cache key with
      | Some e ->
        incr c_hits;
        incr cache_clock;
        e.last_used <- !cache_clock;
        Some e.cu
      | None ->
        incr c_misses;
        None
    in
    Mutex.unlock cache_m;
    r
  in
  match cached with
  | Some u -> u
  | None ->
    let u =
      if String.ends_with ~suffix:".c" path then begin
        match Minic.Driver.compile ~options ~unit_name:path contents with
        | { obj; inline_decisions } ->
          { source_name = path; obj; inline_decisions }
        | exception Minic.Driver.Error m -> err "%s" m
      end
      else begin
        match
          Asm.Assembler.assemble ~unit_name:path
            ~function_sections:options.codegen.function_sections contents
        with
        | obj -> { source_name = path; obj; inline_decisions = [] }
        | exception Asm.Assembler.Error { line; msg } ->
          err "%s:%d: %s" path line msg
      end
    in
    Mutex.lock cache_m;
    let u =
      match Hashtbl.find_opt cache key with
      | Some e ->
        (* lost a compile race: keep the winner so all builds share one
           physical artifact per key *)
        incr cache_clock;
        e.last_used <- !cache_clock;
        e.cu
      | None ->
        incr cache_clock;
        Hashtbl.replace cache key { cu = u; last_used = !cache_clock };
        evict_locked ();
        u
    in
    Mutex.unlock cache_m;
    u

let is_source path =
  String.ends_with ~suffix:".c" path || String.ends_with ~suffix:".s" path

let build_tree ?domains ~options tree =
  let sources =
    Patchfmt.Source_tree.bindings tree
    |> List.filter (fun (path, _) -> is_source path)
  in
  let units =
    Parallel.map ?domains
      (fun (path, contents) -> compile_one ~options path contents)
      sources
  in
  { units; options }

let objects b = List.map (fun u -> u.obj) b.units

let find_unit b name =
  List.find_opt (fun u -> String.equal u.source_name name) b.units

let inlined_callees b =
  List.concat_map
    (fun u ->
      List.map
        (fun (d : Minic.Inline.decision) -> (u.source_name, d.caller, d.callee))
        u.inline_decisions)
    b.units
