type unit_build = {
  source_name : string;
  obj : Objfile.t;
  inline_decisions : Minic.Inline.decision list;
}

type build = {
  units : unit_build list;
  options : Minic.Driver.options;
}

type error =
  | Unit_compile_failed of { unit_name : string; reason : string }
  | Unit_assemble_failed of { unit_name : string; line : int; reason : string }

let pp_error ppf = function
  | Unit_compile_failed { unit_name = _; reason } ->
    (* driver messages already lead with the unit name *)
    Format.pp_print_string ppf reason
  | Unit_assemble_failed { unit_name; line; reason } ->
    Format.fprintf ppf "%s:%d: %s" unit_name line reason

exception Build_error of string

(* internal: carries the typed error out of the domain pool; Parallel.map
   re-raises the smallest-index failure, so the surfaced error is
   deterministically the first failing unit in path order *)
exception Fail of error

(* Content-addressed compile cache: (digest(source), options fingerprint)
   -> compiled unit, backed by the shared artifact store ({!Store}). The
   store supplies the mutex-guarded LRU discipline and the hit/miss/
   eviction accounting (mirrored as [store.kbuild.*] trace counters);
   this module contributes only the cache key and the unit codec.
   Compilation happens outside the store's lock; when two domains race to
   compile the same key, both intern byte-identical encodings (builds are
   deterministic), so the blob dedups and every caller shares one
   physical artifact. *)

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let the_store = Store.create ~name:"kbuild" ~capacity:1024 ()
let store () = the_store

let set_cache_capacity n = Store.set_capacity the_store n

let cache_stats () =
  let s = Store.stats the_store in
  {
    hits = s.Store.hits;
    misses = s.Store.misses;
    evictions = s.Store.evictions;
    entries = s.Store.entries;
    capacity = s.Store.capacity;
  }

let reset_cache () = Store.reset the_store

let options_fingerprint (o : Minic.Driver.options) =
  Printf.sprintf "fs=%b;al=%b;inl=%b;%d;%d" o.codegen.function_sections
    o.codegen.align_loops o.inline_enabled o.auto_inline_max
    o.explicit_inline_max

(* netstring-style framing: "<decimal len>:<bytes>" per field *)
module Unit_codec = Store.Typed (struct
  type v = unit_build

  let codec_id = "kbuild-unit/1"

  let put_str b s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s

  let encode u =
    let b = Buffer.create 1024 in
    put_str b u.source_name;
    put_str b (Bytes.to_string (Objfile.to_bytes u.obj));
    put_str b (string_of_int (List.length u.inline_decisions));
    List.iter
      (fun (d : Minic.Inline.decision) ->
        put_str b d.caller;
        put_str b d.callee)
      u.inline_decisions;
    Buffer.contents b

  let decode s =
    let pos = ref 0 in
    let fail m = failwith (Printf.sprintf "%s at byte %d" m !pos) in
    let get_str () =
      match String.index_from_opt s !pos ':' with
      | None -> fail "missing length prefix"
      | Some colon ->
        let len =
          match int_of_string_opt (String.sub s !pos (colon - !pos)) with
          | Some n when n >= 0 -> n
          | _ -> fail "bad length prefix"
        in
        if colon + 1 + len > String.length s then fail "truncated field";
        pos := colon + 1 + len;
        String.sub s (colon + 1) len
    in
    match
      let source_name = get_str () in
      let obj =
        match Objfile.of_bytes (Bytes.of_string (get_str ())) with
        | Ok o -> o
        | Error e -> fail ("bad object: " ^ Objfile.decode_error_to_string e)
      in
      let n =
        match int_of_string_opt (get_str ()) with
        | Some n when n >= 0 -> n
        | _ -> fail "bad decision count"
      in
      let inline_decisions =
        List.init n (fun _ ->
            let caller = get_str () in
            let callee = get_str () in
            ({ caller; callee } : Minic.Inline.decision))
      in
      { source_name; obj; inline_decisions }
    with
    | u -> Ok u
    | exception Failure m -> Error m
end)

let compile_one ~options path contents =
  let key =
    Digest.to_hex (Digest.string contents)
    ^ "|" ^ path ^ "|" ^ options_fingerprint options
  in
  match Unit_codec.lookup the_store key with
  | Some u -> u
  | None ->
    let u =
      if String.ends_with ~suffix:".c" path then begin
        match Minic.Driver.compile ~options ~unit_name:path contents with
        | Ok { obj; inline_decisions } ->
          { source_name = path; obj; inline_decisions }
        | Error e ->
          let reason = Format.asprintf "%a" Minic.Driver.pp_error e in
          raise (Fail (Unit_compile_failed { unit_name = path; reason }))
      end
      else begin
        match
          Asm.Assembler.assemble ~unit_name:path
            ~function_sections:options.codegen.function_sections contents
        with
        | obj -> { source_name = path; obj; inline_decisions = [] }
        | exception Asm.Assembler.Error { line; msg } ->
          raise
            (Fail
               (Unit_assemble_failed
                  { unit_name = path; line; reason = msg }))
      end
    in
    ignore (Unit_codec.remember the_store ~key u : Store.digest);
    u

let is_source path =
  String.ends_with ~suffix:".c" path || String.ends_with ~suffix:".s" path

let build_tree ?domains ~options tree =
  let sources =
    Patchfmt.Source_tree.bindings tree
    |> List.filter (fun (path, _) -> is_source path)
  in
  match
    Parallel.map ?domains
      (fun (path, contents) -> compile_one ~options path contents)
      sources
  with
  | units -> Ok { units; options }
  | exception Fail e -> Error e

let build_tree_exn ?domains ~options tree =
  match build_tree ?domains ~options tree with
  | Ok b -> b
  | Error e -> raise (Build_error (Format.asprintf "%a" pp_error e))

let objects b = List.map (fun u -> u.obj) b.units

let find_unit b name =
  List.find_opt (fun u -> String.equal u.source_name name) b.units

let inlined_callees b =
  List.concat_map
    (fun u ->
      List.map
        (fun (d : Minic.Inline.decision) -> (u.source_name, d.caller, d.callee))
        u.inline_decisions)
    b.units
