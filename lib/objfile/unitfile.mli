(** SELF object files: the simulated ELF this reproduction's toolchain
    produces and Ksplice consumes.

    An object file is a named compilation unit holding sections, a symbol
    table, and relocations (attached to sections). It supports binary
    (de)serialisation so that object files, kernel modules and Ksplice
    update files are real on-disk artifacts. *)

type t = {
  unit_name : string;  (** source unit this object was compiled from *)
  sections : Section.t list;
  symbols : Symbol.t list;
}

val make :
  unit_name:string -> sections:Section.t list -> symbols:Symbol.t list -> t

val pp : Format.formatter -> t -> unit

(** [find_section o name] returns the section named [name], if any. *)
val find_section : t -> string -> Section.t option

(** [find_symbol o name] returns the first symbol named [name], if any.
    Note that local symbol names need not be unique; see
    [symbols_named]. *)
val find_symbol : t -> string -> Symbol.t option

(** [symbols_named o name] returns every symbol with the given name. *)
val symbols_named : t -> string -> Symbol.t list

(** [defined_symbols_in o section] lists symbols defined inside [section],
    sorted by offset. *)
val defined_symbols_in : t -> string -> Symbol.t list

(** [undefined_symbols o] lists names referenced by relocations but not
    defined by any symbol of [o]. *)
val undefined_symbols : t -> string list

(** Binary serialisation. *)
val to_bytes : t -> Bytes.t

(** Why a blob failed to decode: the byte offset the reader stood at and
    what it found there. Decoding is {e total} — arbitrary bytes yield
    [Error], never an exception. *)
type decode_error = { de_off : int; de_reason : string }

val pp_decode_error : Format.formatter -> decode_error -> unit
val decode_error_to_string : decode_error -> string

val of_bytes : Bytes.t -> (t, decode_error) result

(** [of_bytes_exn] is {!of_bytes}, raising [Failure] on malformed input
    (the pre-typed-error interface, for callers that cannot recover
    anyway). *)
val of_bytes_exn : Bytes.t -> t

(** Convenience file IO. [read_file] raises [Failure] on malformed
    contents. *)
val write_file : string -> t -> unit

val read_file : string -> t
