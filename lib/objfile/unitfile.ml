type t = {
  unit_name : string;
  sections : Section.t list;
  symbols : Symbol.t list;
}

let make ~unit_name ~sections ~symbols = { unit_name; sections; symbols }

let pp ppf o =
  Format.fprintf ppf "@[<v2>object %s@,%a@,%a@]" o.unit_name
    (Format.pp_print_list Section.pp)
    o.sections
    (Format.pp_print_list Symbol.pp)
    o.symbols

let find_section o name =
  List.find_opt (fun (s : Section.t) -> String.equal s.name name) o.sections

let symbols_named o name =
  List.filter (fun (s : Symbol.t) -> String.equal s.name name) o.symbols

let find_symbol o name =
  match symbols_named o name with [] -> None | s :: _ -> Some s

let defined_symbols_in o section =
  o.symbols
  |> List.filter (fun (s : Symbol.t) ->
       match s.def with
       | Some d -> String.equal d.section section
       | None -> false)
  |> List.sort (fun (a : Symbol.t) b ->
       match a.def, b.def with
       | Some da, Some db -> compare da.value db.value
       | _ -> 0)

let undefined_symbols o =
  let defined =
    List.filter_map
      (fun (s : Symbol.t) -> if Symbol.is_defined s then Some s.name else None)
      o.symbols
  in
  let referenced =
    List.concat_map
      (fun (s : Section.t) -> List.map (fun (r : Reloc.t) -> r.sym) s.relocs)
      o.sections
  in
  referenced
  |> List.filter (fun n -> not (List.mem n defined))
  |> List.sort_uniq compare

(* --- binary format --- *)

let magic = "SELF1"

let put_u8 b v = Buffer.add_uint8 b (v land 0xff)
let put_i32 b v = Buffer.add_int32_le b v
let put_int b v = Buffer.add_int32_le b (Int32.of_int v)

let put_str b s =
  put_int b (String.length s);
  Buffer.add_string b s

let put_bytes b s =
  put_int b (Bytes.length s);
  Buffer.add_bytes b s

let kind_code = function
  | Section.Text -> 0 | Section.Data -> 1 | Section.Rodata -> 2
  | Section.Bss -> 3 | Section.Note -> 4

(* Decode failures are data, not exceptions: a corrupt blob out of a
   store or off the wire must surface as a typed [Error], never escape a
   caller as [Failure]. The reader raises the private [Decode] exception
   internally; [of_bytes] is the only boundary that catches it. *)
type decode_error = { de_off : int; de_reason : string }

exception Decode of decode_error

let pp_decode_error ppf e =
  Format.fprintf ppf "%s at byte %d" e.de_reason e.de_off

let decode_error_to_string e = Format.asprintf "%a" pp_decode_error e

let rkind_code = function Reloc.Abs32 -> 0 | Reloc.Pc32 -> 1
let skind_code = function `Func -> 0 | `Object -> 1 | `Notype -> 2

let to_bytes o =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  put_str b o.unit_name;
  put_int b (List.length o.sections);
  List.iter
    (fun (s : Section.t) ->
      put_str b s.name;
      put_u8 b (kind_code s.kind);
      put_int b s.size;
      put_int b s.align;
      put_bytes b s.data;
      put_int b (List.length s.relocs);
      List.iter
        (fun (r : Reloc.t) ->
          put_int b r.offset;
          put_u8 b (rkind_code r.kind);
          put_str b r.sym;
          put_i32 b r.addend)
        s.relocs)
    o.sections;
  put_int b (List.length o.symbols);
  List.iter
    (fun (s : Symbol.t) ->
      put_str b s.name;
      put_u8 b (match s.binding with Symbol.Local -> 0 | Symbol.Global -> 1);
      put_u8 b (skind_code s.kind);
      put_int b s.size;
      match s.def with
      | None -> put_u8 b 0
      | Some d ->
        put_u8 b 1;
        put_str b d.section;
        put_int b d.value)
    o.symbols;
  Buffer.to_bytes b

type reader = { buf : Bytes.t; mutable pos : int }

let bad r reason = raise (Decode { de_off = r.pos; de_reason = reason })

let need r n =
  if n < 0 || r.pos + n > Bytes.length r.buf then bad r "truncated input"

let get_u8 r =
  need r 1;
  let v = Bytes.get_uint8 r.buf r.pos in
  r.pos <- r.pos + 1;
  v

let get_i32 r =
  need r 4;
  let v = Bytes.get_int32_le r.buf r.pos in
  r.pos <- r.pos + 4;
  v

let get_int r =
  let v = Int32.to_int (get_i32 r) in
  if v < 0 then bad r "negative length";
  v

let kind_of_code r = function
  | 0 -> Section.Text | 1 -> Section.Data | 2 -> Section.Rodata
  | 3 -> Section.Bss | 4 -> Section.Note
  | n -> bad r (Printf.sprintf "bad section kind %d" n)

let rkind_of_code r = function
  | 0 -> Reloc.Abs32 | 1 -> Reloc.Pc32
  | n -> bad r (Printf.sprintf "bad reloc kind %d" n)

let skind_of_code r = function
  | 0 -> `Func | 1 -> `Object | 2 -> `Notype
  | n -> bad r (Printf.sprintf "bad symbol kind %d" n)

let get_str r =
  let n = get_int r in
  need r n;
  let s = Bytes.sub_string r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let get_bytes r =
  let n = get_int r in
  need r n;
  let s = Bytes.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let decode r =
  need r (String.length magic);
  if Bytes.sub_string r.buf 0 (String.length magic) <> magic then
    bad r "bad magic";
  r.pos <- String.length magic;
  let unit_name = get_str r in
  let n_sections = get_int r in
  let sections =
    List.init n_sections (fun _ ->
        let name = get_str r in
        let kind = kind_of_code r (get_u8 r) in
        let size = get_int r in
        let align = get_int r in
        let data = get_bytes r in
        let n_relocs = get_int r in
        let relocs =
          List.init n_relocs (fun _ ->
              let offset = get_int r in
              let kind = rkind_of_code r (get_u8 r) in
              let sym = get_str r in
              let addend = get_i32 r in
              { Reloc.offset; kind; sym; addend })
        in
        { Section.name; kind; data; size; align; relocs })
  in
  let n_symbols = get_int r in
  let symbols =
    List.init n_symbols (fun _ ->
        let name = get_str r in
        let binding =
          match get_u8 r with
          | 0 -> Symbol.Local
          | 1 -> Symbol.Global
          | n -> bad r (Printf.sprintf "bad binding %d" n)
        in
        let kind = skind_of_code r (get_u8 r) in
        let size = get_int r in
        let def =
          match get_u8 r with
          | 0 -> None
          | 1 ->
            let section = get_str r in
            let value = get_int r in
            Some { Symbol.section; value }
          | n -> bad r (Printf.sprintf "bad def flag %d" n)
        in
        { Symbol.name; binding; def; size; kind })
  in
  { unit_name; sections; symbols }

let of_bytes buf =
  match decode { buf; pos = 0 } with
  | o -> Ok o
  | exception Decode e -> Error e

let of_bytes_exn buf =
  match of_bytes buf with
  | Ok o -> o
  | Error e -> failwith ("Objfile: " ^ decode_error_to_string e)

let write_file path o =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc (to_bytes o))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      of_bytes_exn b)
