type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- writer --- *)

(* The writer emits pure ASCII: codepoints >= 0x80 leave as \uXXXX
   escapes, so the output is valid JSON no matter what bytes an OCaml
   string carries. Valid UTF-8 sequences (2- and 3-byte, minimally
   encoded, non-surrogate) become their codepoint's escape; any byte
   that is not part of one — lone continuation bytes, overlong forms,
   4-byte sequences beyond the BMP — is escaped as a lone low
   surrogate \udcXX (the "surrogateescape" convention), which the
   parser folds back to the raw byte. parse (to_string v) = v for
   every [Str], whatever its bytes. *)
let escape_string b s =
  let n = String.length s in
  let esc code = Buffer.add_string b (Printf.sprintf "\\u%04x" code) in
  let byte i = Char.code s.[i] in
  let cont i = i < n && byte i land 0xc0 = 0x80 in
  Buffer.add_char b '"';
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let c0 = Char.code c in
    (match c with
     | '"' ->
       Buffer.add_string b "\\\"";
       incr i
     | '\\' ->
       Buffer.add_string b "\\\\";
       incr i
     | '\n' ->
       Buffer.add_string b "\\n";
       incr i
     | '\r' ->
       Buffer.add_string b "\\r";
       incr i
     | '\t' ->
       Buffer.add_string b "\\t";
       incr i
     | _ when c0 < 0x20 ->
       esc c0;
       incr i
     | _ when c0 < 0x80 ->
       Buffer.add_char b c;
       incr i
     | _ when c0 land 0xe0 = 0xc0 && cont (!i + 1) ->
       let code = ((c0 land 0x1f) lsl 6) lor (byte (!i + 1) land 0x3f) in
       if code >= 0x80 then begin
         (* minimally-encoded 2-byte sequence *)
         esc code;
         i := !i + 2
       end
       else begin
         (* overlong: not valid UTF-8 — escape the raw byte *)
         esc (0xdc00 lor c0);
         incr i
       end
     | _ when c0 land 0xf0 = 0xe0 && cont (!i + 1) && cont (!i + 2) ->
       let code =
         ((c0 land 0x0f) lsl 12)
         lor ((byte (!i + 1) land 0x3f) lsl 6)
         lor (byte (!i + 2) land 0x3f)
       in
       if code >= 0x800 && not (code >= 0xd800 && code <= 0xdfff) then begin
         esc code;
         i := !i + 3
       end
       else begin
         (* overlong or an encoded surrogate: invalid UTF-8 *)
         esc (0xdc00 lor c0);
         incr i
       end
     | _ ->
       (* stray continuation byte, truncated sequence, or a 4-byte
          (beyond-BMP) lead: escape byte by byte *)
       esc (0xdc00 lor c0);
       incr i)
  done;
  Buffer.add_char b '"'

(* NaN and the infinities have no JSON representation; emitting the
   %.17g spellings ("nan", "inf") silently corrupts the document for
   every consumer. Write [null] for them, deterministically — a report
   with a degenerate ratio stays parseable. *)
let add_num b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let to_string v =
  let b = Buffer.create 1024 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Num f -> add_num b f
    | Str s -> escape_string b s
    | Arr [] -> Buffer.add_string b "[]"
    | Arr items ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          go (indent + 2) item)
        items;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          escape_string b k;
          Buffer.add_string b ": ";
          go (indent + 2) item)
        fields;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* --- parser --- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 >= n then
              fail "truncated \\u escape (need 4 hex digits)";
            (* hand-rolled hex so "\u12_3" and "\u+123" are rejected;
               int_of_string_opt accepts both *)
            let hex_digit c =
              match c with
              | '0' .. '9' -> Char.code c - Char.code '0'
              | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
              | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
              | _ -> fail "bad \\u escape (non-hex digit)"
            in
            let code =
              (hex_digit s.[!pos + 1] lsl 12)
              lor (hex_digit s.[!pos + 2] lsl 8)
              lor (hex_digit s.[!pos + 3] lsl 4)
              lor hex_digit s.[!pos + 4]
            in
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code >= 0xdc00 && code <= 0xdcff then
              (* surrogate-escaped raw byte from [escape_string] *)
              Buffer.add_char b (Char.chr (code land 0xff))
            else if code < 0x800 then begin
              (* non-ASCII escapes round-trip as UTF-8 *)
              Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
            end;
            pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
         advance ());
        loop ()
      | c ->
        Buffer.add_char b c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* --- accessors --- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None

(* --- files --- *)

let to_file path v =
  match open_out path with
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (to_string v));
    Ok ()
  | exception Sys_error msg -> Error msg

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (path ^ ": truncated while reading")
  | text -> (
    match parse text with
    | Ok v -> Ok v
    | Error msg -> Error (path ^ ": " ^ msg))
