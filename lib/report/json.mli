(** Minimal JSON tree, writer, and parser — enough for the BENCH.json
    perf baseline (written by [bench/main.ml], read by
    [ksplice-tool bench-summary]) without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Pretty-printed (2-space indent) pure-ASCII JSON text with a
    trailing newline. Numbers that are integral print without a
    fraction part; non-finite floats ([nan], [infinity]) print as
    [null] — they have no JSON spelling, and a silently invalid
    document is worse than a lossy one. Strings are escaped so the
    output is valid JSON for {e any} byte content: valid UTF-8
    becomes [\uXXXX] escapes, and bytes that are not part of a valid
    UTF-8 sequence are escaped as lone low surrogates [\udcXX]
    (Python's "surrogateescape" convention), which {!parse} folds
    back to the raw byte. Hence [parse (to_string v) = v] for every
    value whose floats are finite. *)
val to_string : t -> string

(** Parse a complete JSON document; [Error msg] names the offending
    offset (never raises, on any input — truncated escapes included).
    Accepts exactly what {!to_string} emits plus ordinary whitespace,
    escapes ([\uXXXX] requires exactly 4 hex digits), and
    scientific-notation numbers. *)
val parse : string -> (t, string) result

(** Write {!to_string} output to [path]. [Error msg] on any I/O
    failure (never raises). *)
val to_file : string -> t -> (unit, string) result

(** Read and parse [path]. [Error msg] on a missing/unreadable file or
    malformed JSON (never raises) — the message names the path, so CLI
    callers can print it verbatim and exit nonzero. *)
val of_file : string -> (t, string) result

(** {2 Accessors} — all total; [None] on shape mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
