(** Structured tracing and metrics for the whole pipeline, with no
    dependency beyond {!Report} (the JSON codec the exports ride on).

    The paper's authors debugged §4 run-pre mismatches by inspecting
    byte-level traces; this module makes that diagnostic (and the §5.2
    "who pinned the function" story) a first-class artifact. Three
    primitives:

    - {b spans} — named, nested intervals ([with_span] /
      [begin_span]/[end_span]). Every span and event carries the id of
      its enclosing span, so a trace reconstructs the call tree:
      [apply] > [apply.step.quiesce] > the candidate events under it.
    - {b instants} — point events with typed fields (a rejected run-pre
      candidate with the byte offset of first divergence, a manager
      state transition).
    - {b metrics} — monotone counters and fixed-bucket histograms
      (match attempts, rejections by reason, quiescence retries,
      trampolines written).

    {b Determinism.} Records are stamped with an injected clock
    ({!set_clock}) — in this codebase always a machine's
    [instructions_retired] odometer, never wall time — and ids are a
    dense emission sequence. A single-domain run therefore exports a
    byte-identical trace on replay, exactly like the manager's event
    log (which is itself mirrored here).

    {b Degradation.} The sink is a bounded ring buffer: when full, the
    oldest record is dropped and {!dropped} incremented. Tracing never
    grows without bound and never aborts the pipeline.

    {b Concurrency.} The buffer and metric registries are
    mutex-protected; the {e current-span} context is per-domain.
    Work fanned out over [Parallel.map] keeps its logical parent by
    capturing {!context} before the fan-out and entering it with
    {!with_context} inside the worker body.

    When disabled (the default), every emitter is a single atomic load
    and branch — instrumented hot paths stay hot. *)

(** A typed field value. *)
type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type kind =
  | Span_begin
  | Span_end
  | Instant

type record = {
  id : int;  (** dense, 0-based emission order *)
  parent : int;  (** id of the enclosing span's begin record; -1 = root *)
  clock : int;  (** injected clock ({!set_clock}) at emission *)
  kind : kind;
  name : string;
  fields : (string * value) list;
}

(** {2 Lifecycle} *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

(** Install the clock stamped on every record. Use a deterministic
    monotone source ([Machine.instructions_retired]); the default is a
    constant [0]. *)
val set_clock : (unit -> int) -> unit

(** Ring-buffer capacity (records). Clamped to at least 16; resets the
    buffer. Default 16384. *)
val set_capacity : int -> unit

val capacity : unit -> int

(** Clear everything: records, dropped count, ids, counters,
    histograms, the calling domain's span context, and the clock
    (back to the constant [0]). [enabled] is left alone. *)
val reset : unit -> unit

(** {2 Spans and events} *)

(** An open span handle (returned by {!begin_span}). *)
type span

(** [with_span name f] runs [f] inside a span; the end record carries
    an ["raised"] field if [f] raised. A no-op wrapper when tracing is
    disabled. *)
val with_span : ?fields:(string * value) list -> string -> (unit -> 'a) -> 'a

(** Manual span management for stage-shaped (non-lexical) intervals,
    e.g. the apply pipeline's transaction steps. [end_span] tolerates
    out-of-order ends (it removes the span from wherever it sits in
    the context stack). *)
val begin_span : ?fields:(string * value) list -> string -> span

val end_span : ?fields:(string * value) list -> span -> unit

(** Emit a point event under the current span. *)
val instant : ?fields:(string * value) list -> string -> unit

(** {2 Cross-domain context} *)

type context

(** The calling domain's current span context (for fan-out capture). *)
val context : unit -> context

(** Run [f] with the calling domain's context replaced by [ctx]
    (restored afterwards): records emitted by [f] parent under the
    captured span even on another domain. *)
val with_context : context -> (unit -> 'a) -> 'a

(** {2 Metrics} *)

(** [count name by] adds [by] to the counter [name], creating it at 0. *)
val count : string -> int -> unit

(** [observe name v] records [v] in histogram [name] (fixed
    power-of-4 bucket bounds, plus count/sum/min/max). *)
val observe : string -> float -> unit

val counter_value : string -> int

(** All counters, sorted by name. *)
val counters : unit -> (string * int) list

type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** meaningless when [h_count = 0] *)
  h_max : float;
  h_buckets : (float * int) list;
      (** (inclusive upper bound, count); last bound is [infinity] *)
}

(** All histograms, sorted by name. *)
val histograms : unit -> (string * histogram) list

(** {2 Inspection and export} *)

(** Buffered records, oldest first. *)
val records : unit -> record list

(** Records dropped by the ring since the last {!reset}. *)
val dropped : unit -> int

val kind_name : kind -> string
val value_json : value -> Report.Json.t

(** The one record serializer: every trace export — and the manager's
    event log — goes through this, so the shapes cannot drift. *)
val record_json : record -> Report.Json.t

(** The buffered trace as a [ksplice-trace/1] JSON document
    ([schema], [dropped], [capacity], [records]). *)
val export : unit -> Report.Json.t

(** Counters and histograms as a [ksplice-metrics/1] JSON document. *)
val metrics : unit -> Report.Json.t
