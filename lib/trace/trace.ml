type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type kind =
  | Span_begin
  | Span_end
  | Instant

type record = {
  id : int;
  parent : int;
  clock : int;
  kind : kind;
  name : string;
  fields : (string * value) list;
}

type span = {
  span_id : int;
  span_name : string;
}

type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) list;
}

(* --- global state --- *)

let enabled = Atomic.make false
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

(* Every mutable structure below is guarded by [lock]; the per-domain
   span context lives in domain-local storage and needs none. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let clock_fn = ref (fun () -> 0)
let set_clock f = locked (fun () -> clock_fn := f)

(* bounded ring: [ring.(i)] valid for the [ring_len] slots ending just
   before [ring_head] (mod capacity); overwrite-oldest when full *)
let default_capacity = 16384
let ring = ref (Array.make default_capacity None)
let ring_head = ref 0
let ring_len = ref 0
let dropped_count = ref 0
let next_id = ref 0

let set_capacity n =
  let n = max 16 n in
  locked (fun () ->
      ring := Array.make n None;
      ring_head := 0;
      ring_len := 0;
      dropped_count := 0)

let capacity () = locked (fun () -> Array.length !ring)

let counters_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 64

type hist_acc = {
  mutable a_count : int;
  mutable a_sum : float;
  mutable a_min : float;
  mutable a_max : float;
  a_buckets : int array;
}

(* power-of-4 bounds: fine enough to separate a 5-byte trampoline poke
   from a 20k-step quiescence stall, coarse enough to stay tiny *)
let bucket_bounds =
  [| 1.; 4.; 16.; 64.; 256.; 1024.; 4096.; 16384.; 65536.; 262144.;
     1048576.; infinity |]

let hists_tbl : (string, hist_acc) Hashtbl.t = Hashtbl.create 16

(* per-domain current-span stack (innermost first), as begin-record ids *)
let context_key : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let reset () =
  locked (fun () ->
      ring := Array.make (Array.length !ring) None;
      ring_head := 0;
      ring_len := 0;
      dropped_count := 0;
      next_id := 0;
      Hashtbl.reset counters_tbl;
      Hashtbl.reset hists_tbl;
      clock_fn := fun () -> 0);
  Domain.DLS.get context_key := []

(* --- emission --- *)

let push_record ~parent ~kind ~name ~fields =
  locked (fun () ->
      let r =
        { id = !next_id; parent; clock = !clock_fn (); kind; name; fields }
      in
      incr next_id;
      let cap = Array.length !ring in
      !ring.(!ring_head) <- Some r;
      ring_head := (!ring_head + 1) mod cap;
      if !ring_len < cap then incr ring_len else incr dropped_count;
      r.id)

let current_parent () =
  match !(Domain.DLS.get context_key) with [] -> -1 | p :: _ -> p

let begin_span ?(fields = []) name =
  if not (Atomic.get enabled) then { span_id = -1; span_name = name }
  else begin
    let id = push_record ~parent:(current_parent ()) ~kind:Span_begin ~name
        ~fields in
    let stack = Domain.DLS.get context_key in
    stack := id :: !stack;
    { span_id = id; span_name = name }
  end

let end_span ?(fields = []) sp =
  if Atomic.get enabled && sp.span_id >= 0 then begin
    let stack = Domain.DLS.get context_key in
    (* tolerate out-of-order ends: drop the span wherever it sits *)
    stack := List.filter (fun id -> id <> sp.span_id) !stack;
    ignore
      (push_record ~parent:sp.span_id ~kind:Span_end ~name:sp.span_name
         ~fields
        : int)
  end

let with_span ?(fields = []) name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let sp = begin_span ~fields name in
    match f () with
    | v ->
      end_span sp;
      v
    | exception e ->
      end_span ~fields:[ ("raised", Str (Printexc.to_string e)) ] sp;
      raise e
  end

let instant ?(fields = []) name =
  if Atomic.get enabled then
    ignore
      (push_record ~parent:(current_parent ()) ~kind:Instant ~name ~fields
        : int)

(* --- cross-domain context --- *)

type context = int list

let context () = !(Domain.DLS.get context_key)

let with_context ctx f =
  let stack = Domain.DLS.get context_key in
  let saved = !stack in
  stack := ctx;
  Fun.protect ~finally:(fun () -> stack := saved) f

(* --- metrics --- *)

let count name by =
  if Atomic.get enabled then
    locked (fun () ->
        match Hashtbl.find_opt counters_tbl name with
        | Some r -> r := !r + by
        | None -> Hashtbl.add counters_tbl name (ref by))

let observe name v =
  if Atomic.get enabled then
    locked (fun () ->
        let h =
          match Hashtbl.find_opt hists_tbl name with
          | Some h -> h
          | None ->
            let h =
              { a_count = 0; a_sum = 0.; a_min = infinity;
                a_max = neg_infinity;
                a_buckets = Array.make (Array.length bucket_bounds) 0 }
            in
            Hashtbl.add hists_tbl name h;
            h
        in
        h.a_count <- h.a_count + 1;
        h.a_sum <- h.a_sum +. v;
        if v < h.a_min then h.a_min <- v;
        if v > h.a_max then h.a_max <- v;
        let rec slot i =
          if v <= bucket_bounds.(i) || i = Array.length bucket_bounds - 1
          then i
          else slot (i + 1)
        in
        let i = slot 0 in
        h.a_buckets.(i) <- h.a_buckets.(i) + 1)

let counter_value name =
  locked (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some r -> !r
      | None -> 0)

let counters () =
  locked (fun () ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters_tbl [])
  |> List.sort compare

let snapshot_hist (h : hist_acc) =
  {
    h_count = h.a_count;
    h_sum = h.a_sum;
    h_min = h.a_min;
    h_max = h.a_max;
    h_buckets =
      Array.to_list
        (Array.mapi (fun i c -> (bucket_bounds.(i), c)) h.a_buckets);
  }

let histograms () =
  locked (fun () ->
      Hashtbl.fold
        (fun k h acc -> (k, snapshot_hist h) :: acc)
        hists_tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- inspection --- *)

let records () =
  locked (fun () ->
      let cap = Array.length !ring in
      let out = ref [] in
      for i = 0 to !ring_len - 1 do
        let slot = (!ring_head - !ring_len + i + (2 * cap)) mod cap in
        match !ring.(slot) with
        | Some r -> out := r :: !out
        | None -> ()
      done;
      List.rev !out)

let dropped () = locked (fun () -> !dropped_count)

(* --- export --- *)

module J = Report.Json

let kind_name = function
  | Span_begin -> "begin"
  | Span_end -> "end"
  | Instant -> "instant"

let value_json = function
  | Int i -> J.Num (float_of_int i)
  | Float f -> J.Num f
  | Str s -> J.Str s
  | Bool b -> J.Bool b

let record_json (r : record) =
  J.Obj
    [
      ("id", J.Num (float_of_int r.id));
      ("parent", J.Num (float_of_int r.parent));
      ("clock", J.Num (float_of_int r.clock));
      ("kind", J.Str (kind_name r.kind));
      ("name", J.Str r.name);
      ("fields", J.Obj (List.map (fun (k, v) -> (k, value_json v)) r.fields));
    ]

let export () =
  J.Obj
    [
      ("schema", J.Str "ksplice-trace/1");
      ("capacity", J.Num (float_of_int (capacity ())));
      ("dropped", J.Num (float_of_int (dropped ())));
      ("records", J.Arr (List.map record_json (records ())));
    ]

let metrics () =
  let hist_json (h : histogram) =
    J.Obj
      [
        ("count", J.Num (float_of_int h.h_count));
        ("sum", J.Num h.h_sum);
        ("min", if h.h_count = 0 then J.Null else J.Num h.h_min);
        ("max", if h.h_count = 0 then J.Null else J.Num h.h_max);
        ( "buckets",
          J.Arr
            (List.map
               (fun (bound, c) ->
                 J.Obj
                   [
                     ( "le",
                       if Float.is_finite bound then J.Num bound
                       else J.Str "inf" );
                     ("count", J.Num (float_of_int c));
                   ])
               h.h_buckets) );
      ]
  in
  J.Obj
    [
      ("schema", J.Str "ksplice-metrics/1");
      ( "counters",
        J.Obj (List.map (fun (k, v) -> (k, J.Num (float_of_int v)))
                 (counters ())) );
      ( "histograms",
        J.Obj (List.map (fun (k, h) -> (k, hist_json h)) (histograms ())) );
    ]
