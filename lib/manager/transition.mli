(** The per-thread transition manager: patch under load with no global
    pause.

    The paper's §5.2 engagement stops every CPU and demands {e global}
    quiescence — no thread anywhere may sit in a patched function. This
    module implements the livepatch-style alternative as an
    {!Ksplice.Apply.engage_fn}: dispatch stubs route each thread to old
    or new code according to its own [patch_state], and threads migrate
    one by one at {e safe points} while the machine keeps running:

    - {b scan} — a stack-check pass over all threads; anyone already
      clear of the guarded ranges (exited threads, idle sleepers)
      migrates immediately, without ever reaching a safe point;
    - {b syscall} — the [INT 0x80] gate: a thread entering the kernel
      is at a known-clean boundary;
    - {b quantum} — the end of a scheduler quantum in [Machine.run].

    When every thread has migrated, the permanent trampolines land with
    {e zero pause} — the machine never stopped. Stragglers (threads
    sleeping with a guarded return address on their stack) demote the
    engagement to the paper's bounded stop_machine loop, which
    force-migrates whoever is left once the guards quiesce; exhausting
    that fallback raises [Apply.Engage_failed (Not_quiescent _)] and the
    transaction rolls back byte-identically.

    The same engagement reverses an update: [Apply.undo ~engage] runs a
    {e reverse transition} (original entry bytes first, unmigrated
    threads routed to the still-live new code). *)

type policy = {
  slice : int;  (** scheduler steps per migration round *)
  budget : int;  (** total scheduler steps before the fallback *)
  fb_max_attempts : int;  (** fallback stop_machine attempts *)
  fb_retry_base : int;  (** fallback backoff base (steps) *)
  fb_retry_cap : int;  (** fallback backoff cap (steps) *)
  fb_retry_budget : int;  (** fallback total backoff budget (steps) *)
}

val default_policy : policy

(** How a thread came to migrate: a stack-{b scan} pass, the
    {b syscall} gate, a scheduler-{b quantum} boundary, or {b forced}
    under the stop_machine fallback. *)
type sp_class = Scan | Syscall | Quantum | Forced

val sp_class_name : sp_class -> string
val all_classes : sp_class list

(** One thread's migration, timestamped on the monotone instruction
    odometer. *)
type migration = {
  mg_tid : int;
  mg_name : string;
  mg_class : sp_class;
  mg_at : int;  (** [Machine.instructions_retired] at migration *)
}

type stats = {
  st_update : string;
  st_direction : [ `Apply | `Undo ];
  st_threads : int;  (** threads alive when the transition began *)
  st_migrations : migration list;  (** in migration order *)
  st_rounds : int;  (** migration rounds run *)
  st_sched_steps : int;  (** instructions the machine ran meanwhile *)
  st_fallback : bool;  (** stop_machine fallback engaged *)
  st_forced : int;  (** threads force-migrated by the fallback *)
  st_pause_ns : int;  (** total simulated pause (0 = pauseless) *)
}

val migrated_by_class : stats -> (sp_class * int) list
val pp_stats : Format.formatter -> stats -> unit

(** [engage ?policy ?on_stats ()] builds the engagement, suitable for
    [Apply.apply ~engage] and [Apply.undo ~engage]. [on_stats] receives
    the migration record on success (including fallback successes). *)
val engage :
  ?policy:policy ->
  ?on_stats:(stats -> unit) ->
  unit ->
  Ksplice.Apply.engage_fn
