module Machine = Kernel.Machine
module Apply = Ksplice.Apply
module Txn = Ksplice.Txn

let src =
  Logs.Src.create "ksplice.transition" ~doc:"Per-thread transition manager"

module Log = (val Logs.src_log src : Logs.LOG)

type policy = {
  slice : int;
  budget : int;
  fb_max_attempts : int;
  fb_retry_base : int;
  fb_retry_cap : int;
  fb_retry_budget : int;
}

let default_policy =
  { slice = 400;
    budget = 40_000;
    fb_max_attempts = 10;
    fb_retry_base = 250;
    fb_retry_cap = 4_000;
    fb_retry_budget = 20_000 }

type sp_class = Scan | Syscall | Quantum | Forced

let sp_class_name = function
  | Scan -> "scan"
  | Syscall -> "syscall"
  | Quantum -> "quantum"
  | Forced -> "forced"

let all_classes = [ Scan; Syscall; Quantum; Forced ]

type migration = {
  mg_tid : int;
  mg_name : string;
  mg_class : sp_class;
  mg_at : int;
}

type stats = {
  st_update : string;
  st_direction : [ `Apply | `Undo ];
  st_threads : int;
  st_migrations : migration list;
  st_rounds : int;
  st_sched_steps : int;
  st_fallback : bool;
  st_forced : int;
  st_pause_ns : int;
}

let migrated_by_class stats =
  List.map
    (fun c ->
      ( c,
        List.length
          (List.filter (fun m -> m.mg_class = c) stats.st_migrations) ))
    all_classes

let pp_stats ppf s =
  Format.fprintf ppf
    "%s %s: %d threads migrated in %d rounds (%d sched steps)%s; pause %d \
     ns; by class: %s"
    (match s.st_direction with `Apply -> "apply" | `Undo -> "undo")
    s.st_update
    (List.length s.st_migrations)
    s.st_rounds s.st_sched_steps
    (if s.st_fallback then
       Printf.sprintf " [stop_machine fallback, %d forced]" s.st_forced
     else "")
    s.st_pause_ns
    (String.concat ", "
       (List.filter_map
          (fun (c, n) ->
            if n = 0 then None
            else Some (Printf.sprintf "%s=%d" (sp_class_name c) n))
          (migrated_by_class s)))

let backoff_steps ~base ~cap n = min cap (base * (1 lsl min n 20))

(* The livepatch-style engagement: dispatch stubs + safe-point
   migration, with §5.2 stop_machine demoted to a bounded fallback for
   stragglers. Plugged into [Apply.apply]/[Apply.undo] via [?engage]. *)
let engage ?(policy = default_policy) ?on_stats () (e : Apply.engagement) =
  let m = e.Apply.e_machine in
  let migrations = ref [] in
  let forced = ref 0 in
  let record (th : Machine.thread) cls =
    migrations :=
      { mg_tid = th.tid; mg_name = th.name; mg_class = cls;
        mg_at = Machine.instructions_retired m }
      :: !migrations;
    Trace.count ("transition.migrated." ^ sp_class_name cls) 1
  in
  (* the per-thread §5.2 check: a thread migrates the moment neither its
     pc nor any live stack word touches the guarded ranges *)
  let try_migrate cls (th : Machine.thread) =
    if
      (not (Machine.thread_migrated th))
      && not (Apply.thread_blocks m e.e_guard_ranges th)
    then begin
      Machine.migrate_thread th;
      record th cls
    end
  in
  let scan () = List.iter (try_migrate Scan) (Machine.threads m) in
  let all_migrated () =
    List.for_all Machine.thread_migrated (Machine.threads m)
  in
  let n_threads = List.length (Machine.threads m) in
  Trace.count "transition.engagements" 1;
  e.e_enter Txn.Transition;
  (* undo restores the original entry bytes here, so the fall-through
     side of every dispatch stub is executable before any thread runs *)
  e.e_prepare ();
  Machine.begin_transition m ~update:e.e_update
    ~route_migrated:e.e_route_migrated e.e_dispatch;
  let fail err =
    Machine.set_safepoint_hook m None;
    (match Machine.transition_update m with
     | Some _ -> Machine.end_transition m
     | None -> ());
    raise (Apply.Engage_failed err)
  in
  (* initial stack-check pass: exited threads and sleepers already clear
     of the guard ranges migrate without ever reaching a safe point *)
  scan ();
  Machine.set_safepoint_hook m
    (Some
       (fun th sp ->
         try_migrate
           (match sp with
            | Machine.Sp_syscall -> Syscall
            | Machine.Sp_quantum -> Quantum)
           th));
  let rounds = ref 0 in
  let sched_steps = ref 0 in
  let stalled = ref false in
  while
    (not (all_migrated ()))
    && !sched_steps < policy.budget
    && not !stalled
  do
    incr rounds;
    let ran = ref 0 in
    e.e_sched (fun () -> ran := Machine.run m ~steps:policy.slice);
    sched_steps := !sched_steps + !ran;
    scan ();
    (* nothing ran: every unmigrated thread is permanently off-cpu, so
       more scheduling cannot help — go straight to the fallback *)
    if !ran = 0 then stalled := true
  done;
  Machine.set_safepoint_hook m None;
  let pause_ns =
    if all_migrated () then begin
      (* no-pause convergence: the machine never stopped *)
      Machine.end_transition m;
      e.e_enter Txn.Trampoline;
      e.e_install ();
      0
    end
    else begin
      (* straggler fallback: the bounded stop_machine loop of §5.2,
         force-migrating whoever is left once the guards quiesce *)
      Trace.count "transition.fallbacks" 1;
      Log.info (fun k ->
          k "%s: %d straggler(s) after %d sched steps; stop_machine \
             fallback"
            e.e_update
            (List.length
               (List.filter
                  (fun th -> not (Machine.thread_migrated th))
                  (Machine.threads m)))
            !sched_steps);
      e.e_enter Txn.Quiesce;
      let rec attempt n spent pause_acc =
        let ok, pause =
          Machine.stop_machine m (fun () ->
              if Apply.quiescent m e.e_guard_ranges then begin
                List.iter
                  (fun th ->
                    if not (Machine.thread_migrated th) then begin
                      Machine.migrate_thread th;
                      incr forced;
                      record th Forced
                    end)
                  (Machine.threads m);
                Machine.end_transition m;
                e.e_enter Txn.Trampoline;
                e.e_install ();
                true
              end
              else false)
        in
        let pause_acc = pause_acc + pause in
        if ok then pause_acc
        else begin
          let delay =
            min
              (backoff_steps ~base:policy.fb_retry_base
                 ~cap:policy.fb_retry_cap n)
              (policy.fb_retry_budget - spent)
          in
          if n + 1 >= policy.fb_max_attempts || delay <= 0 then
            fail
              (Apply.Not_quiescent
                 { Apply.nq_functions = e.e_functions;
                   nq_attempts = n + 1;
                   nq_steps_run = !sched_steps + spent;
                   nq_blockers = Apply.blocking_threads m e.e_guard_ranges })
          else begin
            Trace.count "transition.fallback_retries" 1;
            e.e_sched (fun () ->
                ignore (Machine.run m ~steps:delay : int));
            attempt (n + 1) (spent + delay) pause_acc
          end
        end
      in
      attempt 0 0 0
    end
  in
  let stats =
    { st_update = e.e_update;
      st_direction = e.e_direction;
      st_threads = n_threads;
      st_migrations = List.rev !migrations;
      st_rounds = !rounds;
      st_sched_steps = !sched_steps;
      st_fallback = !forced > 0 || pause_ns > 0;
      st_forced = !forced;
      st_pause_ns = pause_ns }
  in
  Trace.observe "transition.pause_ns" (float_of_int pause_ns);
  Trace.observe "transition.sched_steps" (float_of_int !sched_steps);
  Log.info (fun k -> k "%a" pp_stats stats);
  (match on_stats with Some f -> f stats | None -> ());
  pause_ns
