(** The supervised update manager: the operator's loop above
    {!Ksplice.Apply}.

    The paper's safety story ends at apply time — §5.2 guarantees an
    aborted update leaves the kernel unchanged. A production updater
    must also survive {e after} the transaction: applies that never
    quiesce, updates that pass run-pre but misbehave once live, and
    operators who need graceful degradation instead of a wedge. The
    manager owns four mechanisms:

    + a {b watchdog} — every apply runs under [policy.deadline], a hard
      scheduler-step budget threaded into {!Ksplice.Apply.apply}; blowing
      it aborts with [Deadline_exceeded] and the usual byte-identical
      rollback;
    + a deterministic {b retry queue} — quiescence failures
      ([Not_quiescent], [Deadline_exceeded]) are retried under bounded
      exponential backoff with seeded jitter. No wall clocks: time is
      the manager's own step counter, advanced only by the scheduler
      runs it performs, so a run is replayable from its seed. After
      [retry_limit] attempts the update is parked with its blocker
      diagnostics;
    + a {b health gate} — after a successful apply the manager runs
      {!Ksplice.Apply.verify} plus the caller's probes (exploit checks,
      stress smokes) {e inside a transaction}: if all pass, the probe
      side effects are kept; if any fail, they are rolled back and the
      update is transactionally undone (auto-revert) and quarantined
      with the evidence;
    + a structured {b event log} — submitted/applied/retried/parked/
      reverted/quarantined, each stamped with the manager clock and the
      machine's monotone instruction odometer, serializable through
      {!Report.Json}.

    With [audit_rollback] on, the manager snapshots the machine before
    every apply attempt and diffs after every abort and auto-revert —
    any divergence is counted in {!violations} and logged as a
    [Violation] event, so a sweep can assert the §5.2 contract end to
    end. *)

(** The per-thread transition manager (livepatch-style consistency
    model): an [Apply.engage_fn] that migrates threads at safe points
    instead of demanding global quiescence under [stop_machine]. *)
module Transition = Transition

(** A post-apply health probe. [hc_probe] returns [Error evidence] on
    failure; it may freely run machine code (exploits, stress load) —
    the manager wraps the whole gate in a transaction and unwinds probe
    side effects before auto-reverting. A probe that raises is treated
    as failed. *)
type health_check = {
  hc_name : string;
  hc_probe : unit -> (unit, string) result;
}

type policy = {
  deadline : int;
      (** watchdog: scheduler-step budget per apply (and per undo) *)
  apply_attempts : int;  (** quiescence attempts within one apply *)
  retry_limit : int;  (** manager-level apply attempts per update *)
  backoff_base : int;  (** steps before retry 2 (doubles per retry) *)
  backoff_cap : int;  (** backoff ceiling, pre-jitter *)
  jitter : int;  (** deterministic jitter bound added to each backoff *)
  seed : int;  (** jitter seed; same seed => same schedule *)
  audit_rollback : bool;
      (** snapshot before each attempt, diff after aborts/auto-reverts *)
  run_budget : int option;
      (** optional cap on the manager clock; entries still waiting when
          it runs out are parked as [Budget_exhausted], never wedged *)
}

val default_policy : policy

type park_reason =
  | Exhausted_retries of Ksplice.Apply.not_quiescent
      (** all [retry_limit] attempts failed to quiesce; the last
          attempt's blocker diagnostics *)
  | Rejected of string  (** a non-retryable apply error, rendered *)
  | Budget_exhausted  (** the manager's [run_budget] ran out first *)

type status =
  | Waiting  (** queued: not yet attempted, or awaiting a retry slot *)
  | Applied_healthy  (** applied, verified, all probes passed *)
  | Parked of park_reason  (** gave up; kernel byte-identical *)
  | Quarantined of {
      evidence : (string * string) list;  (** (probe, failure) pairs *)
      reverted : bool;
          (** auto-revert succeeded; [false] means the undo itself
              failed and the update is still live — the evidence then
              includes the undo error *)
    }

val status_name : status -> string
(** ["waiting"], ["applied-healthy"], ["parked"], ["quarantined"]. *)

val pp_status : Format.formatter -> status -> unit

module Event : sig
  type kind =
    | Submitted
    | Applied  (** the transaction committed; health gate pending *)
    | Apply_failed  (** an attempt aborted (detail: the error) *)
    | Retried  (** re-queued with a backoff delay ([steps]) *)
    | Parked
    | Health_failed  (** one probe's evidence per event *)
    | Reverted  (** auto-revert (undo) succeeded *)
    | Quarantined
    | Healthy  (** terminal: applied and all probes passed *)
    | Violation
        (** a rollback or auto-revert left the machine diverged from
            its audit snapshot — the §5.2 contract broke *)

  val kind_name : kind -> string

  type t = {
    seq : int;  (** dense, 0-based emission order *)
    at : int;  (** manager clock (steps driven) at emission *)
    retired : int;  (** machine instruction odometer at emission *)
    update : string;  (** update id *)
    kind : kind;
    attempt : int;  (** attempts made so far; 0 when not attempt-bound *)
    steps : int;  (** steps consumed/scheduled by this action *)
    detail : string;
  }

  val pp : Format.formatter -> t -> unit
end

type t

val create : ?policy:policy -> Ksplice.Apply.t -> t
val policy : t -> policy
val apply_state : t -> Ksplice.Apply.t

(** [submit ?health ?inject t update] queues [update] for supervised
    apply. [health] probes run in the post-apply health gate (after the
    built-in {!Ksplice.Apply.verify}). [inject ~attempt] (1-based) may
    return a {!Ksplice.Faultinj.session} to thread through that apply
    attempt — the sweep's lever for supervised fault injection.
    Duplicate ids are rejected with [Invalid_argument]. *)
val submit :
  ?health:health_check list ->
  ?inject:(attempt:int -> Ksplice.Faultinj.session option) ->
  t ->
  Ksplice.Update.t ->
  unit

(** [submit_cumulative] queues a cumulative update for supervised
    {e atomic replace} ({!Ksplice.Apply.apply_cumulative}): the stacked
    updates it supersedes unwind and the replacement installs in one
    transaction. The health gate is identical to {!submit}'s; if it
    fails, auto-revert undoes the cumulative update, which restores the
    displaced stack from its journal — nothing is re-applied. Rejects
    non-cumulative updates with [Invalid_argument]. *)
val submit_cumulative :
  ?health:health_check list ->
  ?inject:(attempt:int -> Ksplice.Faultinj.session option) ->
  t ->
  Ksplice.Update.t ->
  unit

(** Drive the queue until every entry is terminal (applied-healthy,
    parked, or quarantined). Termination is structural: attempts are
    capped by [retry_limit] and each backoff is bounded, so [run] never
    wedges even when nothing ever quiesces. Idempotent: entries already
    terminal are untouched; newly submitted entries are processed. *)
val run : t -> unit

(** The manager clock: total scheduler steps this manager has driven
    (backoff waits between retries). Monotone and deterministic. *)
val now : t -> int

val status : t -> string -> status option
val statuses : t -> (string * status) list
(** In submission order. *)

val attempts : t -> string -> int
(** Apply attempts made for this update id so far (0 if unknown). *)

val events : t -> Event.t list
(** In emission order. *)

val violations : t -> int
(** Rollback-audit failures observed (0 when the §5.2 contract held,
    or when [audit_rollback] is off). *)

(** One event as JSON, rendered through {!Trace.record_json} — the
    manager has a single serializer shared with the trace layer, so the
    event log and a trace export cannot drift apart. *)
val event_json : Event.t -> Report.Json.t

(** The event log and terminal statuses as a JSON document
    ([ksplice-manager/1] schema), for [ksplice-tool manager-run
    --out] / [manager-report]. *)
val report : t -> Report.Json.t
