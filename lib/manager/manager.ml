module Machine = Kernel.Machine
module Apply = Ksplice.Apply
module Txn = Ksplice.Txn
module Update = Ksplice.Update
module J = Report.Json
module Transition = Transition

let src = Logs.Src.create "ksplice.manager" ~doc:"Supervised update manager"

module Log = (val Logs.src_log src : Logs.LOG)

type health_check = {
  hc_name : string;
  hc_probe : unit -> (unit, string) result;
}

type policy = {
  deadline : int;
  apply_attempts : int;
  retry_limit : int;
  backoff_base : int;
  backoff_cap : int;
  jitter : int;
  seed : int;
  audit_rollback : bool;
  run_budget : int option;
}

let default_policy =
  {
    deadline = 12_000;
    apply_attempts = 10;
    retry_limit = 5;
    backoff_base = 500;
    backoff_cap = 8_000;
    jitter = 250;
    seed = 0;
    audit_rollback = true;
    run_budget = None;
  }

type park_reason =
  | Exhausted_retries of Apply.not_quiescent
  | Rejected of string
  | Budget_exhausted

type status =
  | Waiting
  | Applied_healthy
  | Parked of park_reason
  | Quarantined of {
      evidence : (string * string) list;
      reverted : bool;
    }

let status_name = function
  | Waiting -> "waiting"
  | Applied_healthy -> "applied-healthy"
  | Parked _ -> "parked"
  | Quarantined _ -> "quarantined"

let pp_status ppf = function
  | Waiting -> Format.pp_print_string ppf "waiting"
  | Applied_healthy -> Format.pp_print_string ppf "applied-healthy"
  | Parked (Exhausted_retries nq) ->
    Format.fprintf ppf "parked: never quiesced in %d manager attempts; %s"
      nq.Apply.nq_attempts
      (String.concat ", " nq.Apply.nq_functions)
  | Parked (Rejected msg) -> Format.fprintf ppf "parked: %s" msg
  | Parked Budget_exhausted ->
    Format.pp_print_string ppf "parked: manager run budget exhausted"
  | Quarantined { evidence; reverted } ->
    Format.fprintf ppf "quarantined (%s): %s"
      (if reverted then "reverted" else "REVERT FAILED, still live")
      (String.concat "; "
         (List.map (fun (n, m) -> n ^ ": " ^ m) evidence))

module Event = struct
  type kind =
    | Submitted
    | Applied
    | Apply_failed
    | Retried
    | Parked
    | Health_failed
    | Reverted
    | Quarantined
    | Healthy
    | Violation

  let kind_name = function
    | Submitted -> "submitted"
    | Applied -> "applied"
    | Apply_failed -> "apply-failed"
    | Retried -> "retried"
    | Parked -> "parked"
    | Health_failed -> "health-failed"
    | Reverted -> "reverted"
    | Quarantined -> "quarantined"
    | Healthy -> "healthy"
    | Violation -> "violation"

  type t = {
    seq : int;
    at : int;
    retired : int;
    update : string;
    kind : kind;
    attempt : int;
    steps : int;
    detail : string;
  }

  let pp ppf e =
    Format.fprintf ppf "[%4d @%d] %-14s %-13s attempt=%d steps=%d%s" e.seq
      e.at e.update (kind_name e.kind) e.attempt e.steps
      (if e.detail = "" then "" else " " ^ e.detail)
end

type entry = {
  e_update : Update.t;
  e_health : health_check list;
  e_inject : attempt:int -> Ksplice.Faultinj.session option;
  e_cumulative : bool;  (* apply via atomic replace *)
  e_order : int;  (* submission order: the retry-queue tie-break *)
  mutable e_attempts : int;
  mutable e_due : int;  (* manager-clock time of the next attempt *)
  mutable e_status : status;
}

type t = {
  ap : Apply.t;
  pol : policy;
  mutable entries : entry list;  (* submission order *)
  mutable clock : int;
  mutable events : Event.t list;  (* most recent first *)
  mutable next_seq : int;
  mutable violation_count : int;
}

let create ?(policy = default_policy) ap =
  {
    ap;
    pol = policy;
    entries = [];
    clock = 0;
    events = [];
    next_seq = 0;
    violation_count = 0;
  }

let policy t = t.pol
let apply_state t = t.ap
let now t = t.clock
let events t = List.rev t.events
let violations t = t.violation_count

let statuses t =
  List.map (fun e -> (e.e_update.Update.update_id, e.e_status)) t.entries

let status t id =
  List.find_map
    (fun e ->
      if String.equal e.e_update.Update.update_id id then Some e.e_status
      else None)
    t.entries

let attempts t id =
  List.fold_left
    (fun acc e ->
      if String.equal e.e_update.Update.update_id id then e.e_attempts
      else acc)
    0 t.entries

let err_str e = Format.asprintf "%a" Apply.pp_error e

(* The typed event, viewed as a trace record. This is the manager's one
   serialization path: [event_json] renders through [Trace.record_json],
   and [emit] mirrors the same fields into the live trace buffer, so the
   event log and a trace export cannot drift apart. *)
let event_fields (e : Event.t) =
  [
    ("update", Trace.Str e.Event.update);
    ("at", Trace.Int e.Event.at);
    ("attempt", Trace.Int e.Event.attempt);
    ("steps", Trace.Int e.Event.steps);
    ("detail", Trace.Str e.Event.detail);
  ]

let event_record (e : Event.t) : Trace.record =
  {
    Trace.id = e.Event.seq;
    parent = -1;
    clock = e.Event.retired;
    kind = Trace.Instant;
    name = "manager." ^ Event.kind_name e.Event.kind;
    fields = event_fields e;
  }

let emit t ?(attempt = 0) ?(steps = 0) ?(detail = "") update kind =
  let ev =
    {
      Event.seq = t.next_seq;
      at = t.clock;
      retired = Machine.instructions_retired (Apply.machine t.ap);
      update;
      kind;
      attempt;
      steps;
      detail;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.events <- ev :: t.events;
  Trace.instant ("manager." ^ Event.kind_name kind) ~fields:(event_fields ev);
  Log.debug (fun k -> k "%a" Event.pp ev)

(* seeded jitter without Random: a splitmix-ish integer hash of
   (seed, update id, attempt), so the retry schedule is a pure function
   of the policy — replayable, yet updates don't thundering-herd *)
let jitter ~seed ~id ~attempt ~bound =
  if bound <= 0 then 0
  else begin
    let h = ref (seed lxor 0x9e3779b9) in
    let mix v =
      h := (!h lxor v) * 0x85ebca6b land 0x3fffffff;
      h := (!h lxor (!h lsr 13)) land 0x3fffffff
    in
    String.iter (fun c -> mix (Char.code c)) id;
    mix (attempt * 0x27d4eb2f);
    !h mod bound
  end

(* exponential backoff for manager-level retry [attempt] (1-based):
   min(cap, base * 2^(attempt-1)) + jitter *)
let retry_delay pol ~id ~attempt =
  let expo = pol.backoff_base * (1 lsl min (attempt - 1) 20) in
  min pol.backoff_cap expo + jitter ~seed:pol.seed ~id ~attempt ~bound:pol.jitter

let submit_gen ~cumulative ~health ~inject t (update : Update.t) =
  let id = update.Update.update_id in
  if
    List.exists
      (fun e -> String.equal e.e_update.Update.update_id id)
      t.entries
  then invalid_arg (Printf.sprintf "Manager.submit: %s already submitted" id);
  let e =
    {
      e_update = update;
      e_health = health;
      e_inject = inject;
      e_cumulative = cumulative;
      e_order = List.length t.entries;
      e_attempts = 0;
      e_due = t.clock;
      e_status = Waiting;
    }
  in
  t.entries <- t.entries @ [ e ];
  emit t id Event.Submitted
    ~detail:(if cumulative then "cumulative" else "")

let submit ?(health = []) ?(inject = fun ~attempt:_ -> None) t update =
  submit_gen ~cumulative:false ~health ~inject t update

let submit_cumulative ?(health = []) ?(inject = fun ~attempt:_ -> None) t
    update =
  if not (Update.is_cumulative update) then
    invalid_arg
      (Printf.sprintf "Manager.submit_cumulative: %s supersedes nothing"
         update.Update.update_id);
  submit_gen ~cumulative:true ~health ~inject t update

(* --- rollback auditing --- *)

let audit_clean t id ~what snap =
  match snap with
  | None -> ()
  | Some s ->
    let diff = Machine.diff_snapshot (Apply.machine t.ap) s in
    if diff <> [] then begin
      t.violation_count <- t.violation_count + 1;
      emit t id Event.Violation
        ~detail:
          (Printf.sprintf "%s left the machine diverged: %s" what
             (String.concat " | " diff))
    end

(* After a successful undo, every journaled address must hold its
   pre-apply byte. Unlike a whole-machine diff this stays sound when
   genuine time passed between apply and revert (scheduler progress,
   one-way hook migrations): the §5.2 contract is about the journaled
   image bytes, and those are exactly what we check. *)
let audit_undo_bytes t id journal =
  if t.pol.audit_rollback then begin
    let m = Apply.machine t.ap in
    let expected = Hashtbl.create 64 in
    List.iter
      (fun (addr, old) ->
        Bytes.iteri (fun i c -> Hashtbl.replace expected (addr + i) c) old)
      (* replay order: later writes in the list land last and win *)
      (Txn.journal_writes journal);
    let bad = ref None in
    Hashtbl.iter
      (fun addr c ->
        if !bad = None && Char.chr (Machine.read_u8 m addr) <> c then
          bad := Some addr)
      expected;
    match !bad with
    | None -> ()
    | Some addr ->
      t.violation_count <- t.violation_count + 1;
      emit t id Event.Violation
        ~detail:
          (Printf.sprintf
             "auto-revert left journaled byte at %#x diverged" addr)
  end

(* --- the supervision loop --- *)

let park t e reason ~detail =
  e.e_status <- Parked reason;
  emit t e.e_update.Update.update_id Event.Parked ~attempt:e.e_attempts
    ~detail

(* The health gate. The probes run inside their own transaction: machine
   code they execute (exploit probes, stress smoke) is observed like any
   other mutation, so a failing gate unwinds the probe side effects
   before auto-reverting, and a passing gate keeps them (they are real
   time). Note the ordering constraint: [Apply.undo] opens its own
   transaction, so the gate's transaction must be closed first. *)
let health_gate t e (a : Apply.applied) =
  let id = e.e_update.Update.update_id in
  let m = Apply.machine t.ap in
  let snap_commit =
    if t.pol.audit_rollback then Some (Machine.snapshot m) else None
  in
  let txn = Txn.begin_ m in
  let evidence =
    let failures = ref [] in
    (match Apply.verify t.ap with
     | Ok () -> ()
     | Error err -> failures := ("verify", err_str err) :: !failures);
    List.iter
      (fun hc ->
        match hc.hc_probe () with
        | Ok () -> ()
        | Error msg -> failures := (hc.hc_name, msg) :: !failures
        | exception exn ->
          failures := (hc.hc_name, Printexc.to_string exn) :: !failures)
      e.e_health;
    List.rev !failures
  in
  match evidence with
  | [] ->
    Txn.discard txn;
    e.e_status <- Applied_healthy;
    emit t id Event.Healthy ~attempt:e.e_attempts
  | evidence ->
    Txn.rollback txn;
    audit_clean t id ~what:"health-gate rollback" snap_commit;
    List.iter
      (fun (name, msg) ->
        emit t id Event.Health_failed ~attempt:e.e_attempts
          ~detail:(name ^ ": " ^ msg))
      evidence;
    (match Apply.undo t.ap ~deadline:t.pol.deadline id with
     | Ok () ->
       audit_undo_bytes t id a.Apply.journal;
       emit t id Event.Reverted ~attempt:e.e_attempts;
       e.e_status <- Quarantined { evidence; reverted = true };
       emit t id Event.Quarantined
         ~detail:(Printf.sprintf "%d probe(s) failed" (List.length evidence))
     | Error uerr ->
       (* the degraded-but-honest case: the unhealthy update is still
          live; record it rather than pretend *)
       let evidence = evidence @ [ ("undo", err_str uerr) ] in
       e.e_status <- Quarantined { evidence; reverted = false };
       emit t id Event.Quarantined
         ~detail:("auto-revert failed: " ^ err_str uerr))

let attempt t e =
  let id = e.e_update.Update.update_id in
  let m = Apply.machine t.ap in
  let snap =
    if t.pol.audit_rollback then Some (Machine.snapshot m) else None
  in
  e.e_attempts <- e.e_attempts + 1;
  (* a cumulative entry goes through atomic replace; everything after
     the apply — health gate, auto-revert, auditing — is identical, and
     undoing a quarantined cumulative restores the displaced stack from
     its journal without re-applying anything *)
  let apply_once =
    if e.e_cumulative then
      Apply.apply_cumulative ~max_attempts:t.pol.apply_attempts
        ~deadline:t.pol.deadline
        ?inject:(e.e_inject ~attempt:e.e_attempts)
    else
      Apply.apply ~max_attempts:t.pol.apply_attempts
        ~deadline:t.pol.deadline
        ?inject:(e.e_inject ~attempt:e.e_attempts)
  in
  match apply_once t.ap e.e_update with
  | Ok a -> health_gate t e a
  | Error err ->
    audit_clean t id ~what:"apply rollback" snap;
    emit t id Event.Apply_failed ~attempt:e.e_attempts ~detail:(err_str err);
    (match err with
     | Apply.Not_quiescent nq | Apply.Deadline_exceeded { de_diag = nq; _ }
       ->
       if e.e_attempts >= t.pol.retry_limit then
         park t e (Exhausted_retries nq)
           ~detail:
             (Printf.sprintf "retry limit (%d) exhausted: %s"
                t.pol.retry_limit (err_str err))
       else begin
         let delay = retry_delay t.pol ~id ~attempt:e.e_attempts in
         e.e_due <- t.clock + delay;
         emit t id Event.Retried ~attempt:e.e_attempts ~steps:delay
           ~detail:(Printf.sprintf "next attempt at t=%d" e.e_due)
       end
     | _ ->
       (* anything else is deterministic: retrying cannot help *)
       park t e (Rejected (err_str err)) ~detail:(err_str err))

(* Advance the manager clock to [target], letting the kernel run. The
   clock advances by the full wait even when every thread is blocked
   (Machine.run returns early): virtual time owes no progress to the
   workload, and liveness must not depend on it. *)
let wait_until t target =
  if target > t.clock then begin
    let m = Apply.machine t.ap in
    ignore (Machine.run m ~steps:(target - t.clock) : int);
    t.clock <- target
  end

let run t =
  let waiting () =
    List.filter (fun e -> e.e_status = Waiting) t.entries
  in
  let rec loop () =
    match waiting () with
    | [] -> ()
    | ws ->
      (* earliest due first; submission order breaks ties *)
      let next =
        List.fold_left
          (fun best e ->
            match best with
            | None -> Some e
            | Some b ->
              if
                e.e_due < b.e_due
                || (e.e_due = b.e_due && e.e_order < b.e_order)
              then Some e
              else best)
          None ws
      in
      let e = Option.get next in
      (match t.pol.run_budget with
       | Some budget when max e.e_due t.clock >= budget ->
         (* out of supervision budget: park everything still waiting,
            in submission order — degrade, don't wedge *)
         List.iter
           (fun e ->
             park t e Budget_exhausted
               ~detail:
                 (Printf.sprintf "run budget %d exhausted at t=%d" budget
                    t.clock))
           ws
       | _ ->
         wait_until t e.e_due;
         attempt t e;
         loop ())
  in
  loop ()

(* --- JSON report --- *)

let num n = J.Num (float_of_int n)

let park_reason_json = function
  | Exhausted_retries nq ->
    J.Obj
      [
        ("reason", J.Str "exhausted-retries");
        ("attempts", num nq.Apply.nq_attempts);
        ("steps_run", num nq.Apply.nq_steps_run);
        ( "functions",
          J.Arr (List.map (fun f -> J.Str f) nq.Apply.nq_functions) );
        ( "blockers",
          J.Arr
            (List.map
               (fun (who, bt) ->
                 J.Obj
                   [
                     ("thread", J.Str who);
                     ("backtrace", J.Arr (List.map (fun f -> J.Str f) bt));
                   ])
               nq.Apply.nq_blockers) );
      ]
  | Rejected msg ->
    J.Obj [ ("reason", J.Str "rejected"); ("error", J.Str msg) ]
  | Budget_exhausted -> J.Obj [ ("reason", J.Str "budget-exhausted") ]

let status_json = function
  | Waiting -> J.Obj [ ("state", J.Str "waiting") ]
  | Applied_healthy -> J.Obj [ ("state", J.Str "applied-healthy") ]
  | Parked r ->
    J.Obj [ ("state", J.Str "parked"); ("park", park_reason_json r) ]
  | Quarantined { evidence; reverted } ->
    J.Obj
      [
        ("state", J.Str "quarantined");
        ("reverted", J.Bool reverted);
        ( "evidence",
          J.Arr
            (List.map
               (fun (n, m) ->
                 J.Obj [ ("probe", J.Str n); ("failure", J.Str m) ])
               evidence) );
      ]

let event_json (e : Event.t) = Trace.record_json (event_record e)

let report t =
  J.Obj
    [
      ("schema", J.Str "ksplice-manager/1");
      ("seed", num t.pol.seed);
      ("deadline", num t.pol.deadline);
      ("retry_limit", num t.pol.retry_limit);
      ("clock", num t.clock);
      ("violations", num t.violation_count);
      ( "updates",
        J.Arr
          (List.map
             (fun e ->
               J.Obj
                 [
                   ("id", J.Str e.e_update.Update.update_id);
                   ("attempts", num e.e_attempts);
                   ("status", status_json e.e_status);
                 ])
             t.entries) );
      ("events", J.Arr (List.map event_json (events t)));
    ]
