module Isa = Vmisa.Isa

type fault =
  | Illegal_instruction of int
  | Memory_violation of int
  | Divide_by_zero of int
  | Privilege_violation of int
  | No_syscall_entry
  | Step_limit

let pp_fault ppf = function
  | Illegal_instruction pc ->
    Format.fprintf ppf "illegal instruction at %#x" pc
  | Memory_violation a -> Format.fprintf ppf "memory violation at %#x" a
  | Divide_by_zero pc -> Format.fprintf ppf "divide by zero at %#x" pc
  | Privilege_violation pc ->
    Format.fprintf ppf "privileged escape from unprivileged code at %#x" pc
  | No_syscall_entry -> Format.fprintf ppf "syscall with no entry point"
  | Step_limit -> Format.fprintf ppf "step limit exceeded"

type thread_state =
  | Runnable
  | Sleeping of int
  | Exited of int32
  | Faulted of fault

type thread = {
  tid : int;
  name : string;
  regs : int32 array;
  mutable pc : int;
  stack_lo : int;
  stack_hi : int;
  mutable state : thread_state;
  mutable uid : int;
  mutable flag_eq : bool;
  mutable flag_lt : bool;
  (* livepatch-style per-task consistency state: [true] once this thread
     has been migrated to the goal side of the active transition. Only
     meaningful while a transition is active; reset to [false] when it
     begins and ends. Threads spawned mid-transition start migrated (a
     fresh stack cannot hold frames of either side). *)
  mutable patch_state : bool;
}

type safe_point = Sp_syscall | Sp_quantum

let safe_point_name = function
  | Sp_syscall -> "syscall"
  | Sp_quantum -> "quantum"

(* An active per-thread transition: dispatch stubs at patched function
   entries route a thread whose [patch_state] equals [tr_route_state] to
   the replacement code; everyone else falls through to the bytes at the
   entry. An apply transition routes migrated threads to new code (the
   entry still holds old code); a reverse transition routes unmigrated
   threads to the still-live new code (the entry holds restored old
   code). *)
type transition = {
  tr_update : string;
  tr_route_state : bool;
  tr_dispatch : (int, int) Hashtbl.t;  (* function entry -> target *)
}

type t = {
  mem : Bytes.t;
  mem_size : int;
  img : Klink.Image.t;
  mutable syms : Klink.Image.syminfo list;
  (* name -> kallsyms entries bearing it, in [syms] order; maintained
     incrementally by add/remove so per-name lookup is O(1) instead of a
     linear scan of every kernel symbol (run-pre candidate search and
     symbol resolution are the hot consumers) *)
  sym_index : (string, Klink.Image.syminfo list) Hashtbl.t;
  mutable priv : (int * int) list;
  mutable threads_rev : thread list;
  mutable next_tid : int;
  mutable tick_count : int;
  (* monotone instruction odometer: unlike [tick_count] it is never
     rewound by [restore_volatile] (transaction rollback undoes kernel
     time, but not the work the host actually performed) and is not part
     of any snapshot — the supervisor's step accounting hangs off it *)
  mutable retired : int;
  console_buf : Buffer.t;
  mutable module_cursor : int;
  mutable next_stack_top : int;
  mutable syscall_entry_addr : int option;
  (* shadow data structures: (object addr, key) -> shadow addr *)
  shadows : (int * int, int) Hashtbl.t;
  exit_gadget : int;
  sentinel : int;
  call_stack_hi : int;
  call_stack_lo : int;
  mutable in_call_function : bool;
  (* observation and fault-injection hooks (transactional apply support):
     the observer sees every memory mutation before it lands; the
     injectors perturb allocation, host-side writes, and host-initiated
     calls *)
  mutable write_observer : (int -> int -> unit) option;
  mutable inj_alloc : (size:int -> align:int -> bool) option;
  mutable inj_write : (int -> Bytes.t -> Bytes.t) option;
  mutable inj_call : (int -> fault option) option;
  (* per-thread transition machinery: at most one transition is active;
     the safepoint hook (installed by the transition manager) is invoked
     whenever a thread crosses a migration opportunity *)
  mutable transition : transition option;
  mutable safepoint_hook : (thread -> safe_point -> unit) option;
}

exception Vm_fault of fault
exception Out_of_memory of string

(* --- kallsyms name index --- *)

(* process-wide lookup counters (machines may live on several domains) *)
let idx_lookups = Atomic.make 0
let idx_hits = Atomic.make 0

type index_stats = {
  lookups : int;
  hits : int;
}

let kallsyms_index_stats () =
  { lookups = Atomic.get idx_lookups; hits = Atomic.get idx_hits }

let index_add tbl syms =
  List.iter
    (fun (s : Klink.Image.syminfo) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl s.name) in
      Hashtbl.replace tbl s.name (cur @ [ s ]))
    syms

let index_rebuild tbl syms =
  Hashtbl.reset tbl;
  index_add tbl syms

let quantum = 64
let stack_size = 64 * 1024
let stack_guard = 4096

let create ?(mem_size = 0x0200_0000) (img : Klink.Image.t) =
  let mem = Bytes.make mem_size '\000' in
  if img.base + img.size > mem_size - 0x10000 then
    invalid_arg "Machine.create: image does not fit";
  Bytes.blit img.data 0 mem img.base (Bytes.length img.data);
  let exit_gadget = mem_size - 0x10 in
  let sentinel = mem_size - 0x20 in
  (* exit gadget: mov r1, r0; int 1 — lets spawned entries simply return *)
  let pos = ref exit_gadget in
  List.iter
    (fun i -> pos := !pos + Isa.encode mem !pos i)
    [ Isa.Mov_rr (Isa.R1, Isa.R0); Isa.Int 1 ];
  ignore (Isa.encode mem sentinel Isa.Hlt : int);
  let t =
    {
      mem;
      mem_size;
      img;
      syms = img.kallsyms;
      sym_index =
        (let tbl = Hashtbl.create (List.length img.kallsyms) in
         index_add tbl img.kallsyms;
         tbl);
      priv = [ img.text_range ];
      threads_rev = [];
      next_tid = 1;
      tick_count = 0;
      retired = 0;
      console_buf = Buffer.create 256;
      module_cursor = (img.base + img.size + 0x1_0000 + 0xfff) land lnot 0xfff;
      next_stack_top = mem_size - 0x4000;
      syscall_entry_addr = None;
      shadows = Hashtbl.create 16;
      exit_gadget;
      sentinel;
      call_stack_hi = mem_size - 0x100;
      call_stack_lo = mem_size - 0x3000;
      in_call_function = false;
      write_observer = None;
      inj_alloc = None;
      inj_write = None;
      inj_call = None;
      transition = None;
      safepoint_hook = None;
    }
  in
  (match Klink.Image.lookup_global img "syscall_entry" with
   | Some s -> t.syscall_entry_addr <- Some s.addr
   | None -> ());
  t

let image t = t.img
let tick t = t.tick_count
let instructions_retired t = t.retired
let console t = Buffer.contents t.console_buf
let kallsyms t = t.syms

let add_kallsyms t more =
  t.syms <- t.syms @ more;
  index_add t.sym_index more

let remove_kallsyms t pred =
  t.syms <- List.filter (fun s -> not (pred s)) t.syms;
  Hashtbl.filter_map_inplace
    (fun _name entries ->
      match List.filter (fun s -> not (pred s)) entries with
      | [] -> None
      | kept -> Some kept)
    t.sym_index

let lookup_name t name =
  Atomic.incr idx_lookups;
  Trace.count "kallsyms.lookups" 1;
  match Hashtbl.find_opt t.sym_index name with
  | Some entries ->
    Atomic.incr idx_hits;
    Trace.count "kallsyms.hits" 1;
    entries
  | None -> []
let privileged_ranges t = t.priv
let add_privileged_range t r = t.priv <- r :: t.priv

let remove_privileged_range t r =
  let removed = ref false in
  t.priv <-
    List.filter
      (fun x ->
        if (not !removed) && x = r then begin
          removed := true;
          false
        end
        else true)
      t.priv

let set_write_observer t f = t.write_observer <- f
let set_alloc_injector t f = t.inj_alloc <- f
let set_write_injector t f = t.inj_write <- f
let set_call_injector t f = t.inj_call <- f

let clear_injectors t =
  t.inj_alloc <- None;
  t.inj_write <- None;
  t.inj_call <- None
let set_syscall_entry t a = t.syscall_entry_addr <- Some a
let syscall_entry t = t.syscall_entry_addr

(* --- per-thread transitions --- *)

let threads t = List.rev t.threads_rev

let begin_transition t ~update ~route_migrated dispatch =
  (match t.transition with
   | Some tr ->
     invalid_arg
       (Printf.sprintf
          "Machine.begin_transition: transition for %s already active"
          tr.tr_update)
   | None -> ());
  let tbl = Hashtbl.create (List.length dispatch) in
  List.iter (fun (entry, target) -> Hashtbl.replace tbl entry target) dispatch;
  List.iter (fun th -> th.patch_state <- false) t.threads_rev;
  t.transition <-
    Some { tr_update = update; tr_route_state = route_migrated;
           tr_dispatch = tbl }

let end_transition t =
  if t.transition = None then
    invalid_arg "Machine.end_transition: no active transition";
  t.transition <- None;
  List.iter (fun th -> th.patch_state <- false) t.threads_rev

let transition_update t =
  Option.map (fun tr -> tr.tr_update) t.transition

let set_safepoint_hook t f = t.safepoint_hook <- f

let migrate_thread th = th.patch_state <- true
let thread_migrated (th : thread) = th.patch_state

let notify_safepoint t th sp =
  match t.safepoint_hook with
  | Some f when t.transition <> None -> f th sp
  | _ -> ()

(* the dispatch stub: consulted before decoding — the analogue of an
   ftrace-style handler at the patched entry rewriting the saved ip *)
let dispatch_redirect t th =
  match t.transition with
  | None -> ()
  | Some tr -> (
    match Hashtbl.find_opt tr.tr_dispatch th.pc with
    | Some target when th.patch_state = tr.tr_route_state -> th.pc <- target
    | _ -> ())

let transition_bindings t =
  Option.map
    (fun tr ->
      ( tr.tr_update,
        tr.tr_route_state,
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tr.tr_dispatch []) ))
    t.transition

(* --- memory --- *)

let check t addr size =
  if addr < 0x1000 || addr + size > t.mem_size then
    raise (Vm_fault (Memory_violation addr))

(* every mutation of [t.mem] announces (addr, len) here *before* the
   bytes change, so a transaction journal can capture the old contents *)
let observe t addr len =
  match t.write_observer with None -> () | Some f -> f addr len

let read_u8 t a =
  check t a 1;
  Bytes.get_uint8 t.mem a

let read_i32 t a =
  check t a 4;
  Bytes.get_int32_le t.mem a

let read_bytes t a n =
  check t a (max n 1);
  Bytes.sub t.mem a n

let write_u8 t a v =
  check t a 1;
  observe t a 1;
  Bytes.set_uint8 t.mem a (v land 0xff)

let write_i32 t a v =
  check t a 4;
  observe t a 4;
  Bytes.set_int32_le t.mem a v

let write_bytes t a b =
  check t a (max (Bytes.length b) 1);
  observe t a (Bytes.length b);
  let b = match t.inj_write with None -> b | Some f -> f a b in
  Bytes.blit b 0 t.mem a (Bytes.length b)

let alloc_module t ~size ~align =
  (match t.inj_alloc with
   | Some f when f ~size ~align ->
     raise (Out_of_memory "injected allocation failure")
   | _ -> ());
  let align = max 1 align in
  let addr = (t.module_cursor + align - 1) / align * align in
  let next = addr + max size 1 in
  if next > t.next_stack_top - (64 * 1024) then
    raise (Out_of_memory "module area exhausted");
  t.module_cursor <- next;
  addr

(* --- threads --- *)

let find_thread t tid = List.find_opt (fun th -> th.tid = tid) (threads t)

let push_on th t v =
  let sp = Int32.to_int th.regs.(8) - 4 in
  if sp < th.stack_lo then raise (Vm_fault (Memory_violation sp));
  check t sp 4;
  observe t sp 4;
  Bytes.set_int32_le t.mem sp v;
  th.regs.(8) <- Int32.of_int sp

let spawn t ~name ~uid ~entry ~args =
  let stack_hi = t.next_stack_top in
  let stack_lo = stack_hi - stack_size in
  if stack_lo <= t.module_cursor then
    failwith "Machine.spawn: out of stack space";
  t.next_stack_top <- stack_lo - stack_guard;
  let th =
    {
      tid = t.next_tid;
      name;
      regs = Array.make 9 0l;
      pc = entry;
      stack_lo;
      stack_hi;
      state = Runnable;
      uid;
      flag_eq = false;
      flag_lt = false;
      (* a thread born mid-transition has a clean stack: start it on the
         goal side, like livepatch does for fresh tasks *)
      patch_state = t.transition <> None;
    }
  in
  t.next_tid <- t.next_tid + 1;
  th.regs.(8) <- Int32.of_int stack_hi;
  List.iter (fun v -> push_on th t v) (List.rev args);
  push_on th t (Int32.of_int t.exit_gadget);
  t.threads_rev <- th :: t.threads_rev;
  th

(* --- interpreter --- *)

let in_priv t pc = List.exists (fun (lo, hi) -> pc >= lo && pc < hi) t.priv

let reg th r = th.regs.(Isa.reg_to_int r)
let set_reg th r v = th.regs.(Isa.reg_to_int r) <- v

let cond_holds th = function
  | Isa.Eq -> th.flag_eq
  | Isa.Ne -> not th.flag_eq
  | Isa.Lt -> th.flag_lt
  | Isa.Ge -> not th.flag_lt
  | Isa.Gt -> (not th.flag_lt) && not th.flag_eq
  | Isa.Le -> th.flag_lt || th.flag_eq

let set_flags th a b =
  th.flag_eq <- Int32.equal a b;
  th.flag_lt <- Int32.compare a b < 0

let load t width addr =
  match width with
  | Isa.W8 -> Int32.of_int (read_u8 t addr)
  | Isa.W16 ->
    check t addr 2;
    Int32.of_int (Bytes.get_uint16_le t.mem addr)
  | Isa.W32 -> read_i32 t addr

let store t width addr v =
  match width with
  | Isa.W8 -> write_u8 t addr (Int32.to_int v land 0xff)
  | Isa.W16 ->
    check t addr 2;
    observe t addr 2;
    Bytes.set_uint16_le t.mem addr (Int32.to_int v land 0xffff)
  | Isa.W32 -> write_i32 t addr v

let sext8 v = Int32.shift_right (Int32.shift_left v 24) 24
let sext16 v = Int32.shift_right (Int32.shift_left v 16) 16

let do_int t th code =
  match code with
  | 0 ->
    Buffer.add_char t.console_buf
      (Char.chr (Int32.to_int (reg th Isa.R1) land 0xff));
    `Ok
  | 1 ->
    th.state <- Exited (reg th Isa.R1);
    `Stop
  | 2 -> `Yield
  | 3 ->
    set_reg th Isa.R0 (Int32.of_int t.tick_count);
    `Ok
  | 4 ->
    set_reg th Isa.R0 (Int32.of_int th.uid);
    `Ok
  | 5 ->
    (* privileged: only kernel/module text may change credentials *)
    if not (in_priv t th.pc) then
      raise (Vm_fault (Privilege_violation th.pc));
    th.uid <- Int32.to_int (reg th Isa.R1);
    `Ok
  | 6 ->
    th.state <-
      Sleeping (t.tick_count + max 0 (Int32.to_int (reg th Isa.R1)));
    `Sleep
  | 8 ->
    (* shadow_attach(obj, key, size) -> addr; zero-filled, idempotent *)
    let obj = Int32.to_int (reg th Isa.R1)
    and key = Int32.to_int (reg th Isa.R2)
    and size = Int32.to_int (reg th Isa.R3) in
    let addr =
      match Hashtbl.find_opt t.shadows (obj, key) with
      | Some a -> a
      | None ->
        let a = alloc_module t ~size:(max 4 size) ~align:4 in
        Hashtbl.replace t.shadows (obj, key) a;
        a
    in
    set_reg th Isa.R0 (Int32.of_int addr);
    `Ok
  | 9 ->
    let obj = Int32.to_int (reg th Isa.R1)
    and key = Int32.to_int (reg th Isa.R2) in
    set_reg th Isa.R0
      (Int32.of_int
         (Option.value ~default:0 (Hashtbl.find_opt t.shadows (obj, key))));
    `Ok
  | 10 ->
    let obj = Int32.to_int (reg th Isa.R1)
    and key = Int32.to_int (reg th Isa.R2) in
    Hashtbl.remove t.shadows (obj, key);
    `Ok
  | 0x80 -> (
    match t.syscall_entry_addr with
    | None -> raise (Vm_fault No_syscall_entry)
    | Some entry ->
      (* the syscall boundary is a migration safe point: the thread is in
         user code, about to enter the kernel fresh *)
      notify_safepoint t th Sp_syscall;
      (* behaves like a call: push the return address, enter the kernel *)
      let next = th.pc + Isa.length (Isa.Int 0x80) in
      push_on th t (Int32.of_int next);
      th.pc <- entry;
      `Jumped)
  | _ -> raise (Vm_fault (Illegal_instruction th.pc))

(* Execute one instruction. Returns [`Ok | `Yield | `Stop]. *)
let step t th =
  dispatch_redirect t th;
  let pc = th.pc in
  let insn, len =
    try Isa.decode (fun a -> check t a 1; Bytes.get_uint8 t.mem a) pc
    with Isa.Decode_error _ -> raise (Vm_fault (Illegal_instruction pc))
  in
  let next = pc + len in
  let jump_rel disp = th.pc <- next + disp in
  let alu f a b =
    set_reg th a (f (reg th a) (reg th b));
    th.pc <- next;
    `Ok
  in
  let shift_amount v = Int32.to_int v land 31 in
  match insn with
  | Isa.Hlt ->
    th.state <- Exited 0l;
    `Stop
  | Isa.Nop _ ->
    th.pc <- next;
    `Ok
  | Isa.Mov_rr (a, b) ->
    set_reg th a (reg th b);
    th.pc <- next;
    `Ok
  | Isa.Mov_ri (a, v) ->
    set_reg th a v;
    th.pc <- next;
    `Ok
  | Isa.Load (w, rd, rb, off) ->
    set_reg th rd (load t w (Int32.to_int (reg th rb) + off));
    th.pc <- next;
    `Ok
  | Isa.Store (w, rb, off, rs) ->
    store t w (Int32.to_int (reg th rb) + off) (reg th rs);
    th.pc <- next;
    `Ok
  | Isa.Load_abs (w, rd, a) ->
    set_reg th rd (load t w (Int32.to_int a));
    th.pc <- next;
    `Ok
  | Isa.Store_abs (w, a, rs) ->
    store t w (Int32.to_int a) (reg th rs);
    th.pc <- next;
    `Ok
  | Isa.Add (a, b) -> alu Int32.add a b
  | Isa.Sub (a, b) -> alu Int32.sub a b
  | Isa.Mul (a, b) -> alu Int32.mul a b
  | Isa.Div (a, b) ->
    if Int32.equal (reg th b) 0l then raise (Vm_fault (Divide_by_zero pc));
    alu Int32.div a b
  | Isa.Mod (a, b) ->
    if Int32.equal (reg th b) 0l then raise (Vm_fault (Divide_by_zero pc));
    alu Int32.rem a b
  | Isa.And (a, b) -> alu Int32.logand a b
  | Isa.Or (a, b) -> alu Int32.logor a b
  | Isa.Xor (a, b) -> alu Int32.logxor a b
  | Isa.Shl (a, b) -> alu (fun x y -> Int32.shift_left x (shift_amount y)) a b
  | Isa.Shr (a, b) ->
    alu (fun x y -> Int32.shift_right_logical x (shift_amount y)) a b
  | Isa.Sar (a, b) -> alu (fun x y -> Int32.shift_right x (shift_amount y)) a b
  | Isa.Addi (a, v) ->
    set_reg th a (Int32.add (reg th a) v);
    th.pc <- next;
    `Ok
  | Isa.Cmp (a, b) ->
    set_flags th (reg th a) (reg th b);
    th.pc <- next;
    `Ok
  | Isa.Cmpi (a, v) ->
    set_flags th (reg th a) v;
    th.pc <- next;
    `Ok
  | Isa.Neg a ->
    set_reg th a (Int32.neg (reg th a));
    th.pc <- next;
    `Ok
  | Isa.Not a ->
    set_reg th a (Int32.lognot (reg th a));
    th.pc <- next;
    `Ok
  | Isa.Setcc (c, a) ->
    set_reg th a (if cond_holds th c then 1l else 0l);
    th.pc <- next;
    `Ok
  | Isa.Jmp d ->
    jump_rel (Int32.to_int d);
    `Ok
  | Isa.Jmp_s d ->
    jump_rel d;
    `Ok
  | Isa.Jcc (c, d) ->
    if cond_holds th c then jump_rel (Int32.to_int d) else th.pc <- next;
    `Ok
  | Isa.Jcc_s (c, d) ->
    if cond_holds th c then jump_rel d else th.pc <- next;
    `Ok
  | Isa.Call d ->
    push_on th t (Int32.of_int next);
    jump_rel (Int32.to_int d);
    `Ok
  | Isa.Call_r r ->
    push_on th t (Int32.of_int next);
    th.pc <- Int32.to_int (reg th r);
    `Ok
  | Isa.Ret ->
    let sp = Int32.to_int th.regs.(8) in
    th.pc <- Int32.to_int (read_i32 t sp);
    th.regs.(8) <- Int32.of_int (sp + 4);
    `Ok
  | Isa.Push r ->
    push_on th t (reg th r);
    th.pc <- next;
    `Ok
  | Isa.Pop r ->
    let sp = Int32.to_int th.regs.(8) in
    set_reg th r (read_i32 t sp);
    th.regs.(8) <- Int32.of_int (sp + 4);
    th.pc <- next;
    `Ok
  | Isa.Sext8 r ->
    set_reg th r (sext8 (reg th r));
    th.pc <- next;
    `Ok
  | Isa.Sext16 r ->
    set_reg th r (sext16 (reg th r));
    th.pc <- next;
    `Ok
  | Isa.Zext8 r ->
    set_reg th r (Int32.logand (reg th r) 0xffl);
    th.pc <- next;
    `Ok
  | Isa.Zext16 r ->
    set_reg th r (Int32.logand (reg th r) 0xffffl);
    th.pc <- next;
    `Ok
  | Isa.Int code -> (
    match do_int t th code with
    | `Ok ->
      th.pc <- next;
      `Ok
    | `Yield ->
      th.pc <- next;
      `Yield
    | `Sleep ->
      (* resume after the sleep instruction, not at it *)
      th.pc <- next;
      `Stop
    | `Jumped -> `Ok
    | `Stop -> `Stop)

let step_catching t th =
  try step t th
  with Vm_fault f ->
    th.state <- Faulted f;
    `Stop

(* Run [th] for up to [n] instructions; returns instructions executed. *)
let run_thread t th n =
  let executed = ref 0 in
  let continue = ref true in
  while !continue && !executed < n do
    (match step_catching t th with
     | `Ok -> ()
     | `Yield | `Stop -> continue := false);
    incr executed;
    t.tick_count <- t.tick_count + 1;
    t.retired <- t.retired + 1
  done;
  !executed

let wake_sleepers t =
  List.iter
    (fun th ->
      match th.state with
      | Sleeping until when t.tick_count >= until -> th.state <- Runnable
      | _ -> ())
    (threads t)

let run t ~steps =
  let executed = ref 0 in
  let progress = ref true in
  while !executed < steps && !progress do
    wake_sleepers t;
    let runnable =
      List.filter (fun th -> th.state = Runnable) (threads t)
    in
    if runnable = [] then begin
      (* advance time to the next wake-up, if any thread sleeps *)
      let next_wake =
        List.filter_map
          (fun th -> match th.state with Sleeping u -> Some u | _ -> None)
          (threads t)
      in
      match next_wake with
      | [] -> progress := false
      | l ->
        t.tick_count <- max t.tick_count (List.fold_left min max_int l)
    end
    else
      List.iter
        (fun th ->
          if th.state = Runnable && !executed < steps then begin
            executed :=
              !executed + run_thread t th (min quantum (steps - !executed));
            (* the end of a scheduler quantum is a migration safe point *)
            notify_safepoint t th Sp_quantum
          end)
        runnable
  done;
  !executed

let call_function ?(step_limit = 2_000_000) ?(uid = 0) t ~addr ~args =
  if t.in_call_function then
    invalid_arg "Machine.call_function: reentrant call";
  t.in_call_function <- true;
  Fun.protect
    ~finally:(fun () -> t.in_call_function <- false)
    (fun () ->
      match
        match t.inj_call with Some f -> f addr | None -> None
      with
      | Some injected -> Error injected
      | None ->
      let th =
        {
          tid = 0;
          name = "<call>";
          regs = Array.make 9 0l;
          pc = addr;
          stack_lo = t.call_stack_lo;
          stack_hi = t.call_stack_hi;
          state = Runnable;
          uid;
          flag_eq = false;
          flag_lt = false;
          (* host-initiated calls run on the goal side of any active
             transition (their stack is fresh) *)
          patch_state = true;
        }
      in
      th.regs.(8) <- Int32.of_int t.call_stack_hi;
      List.iter (fun v -> push_on th t v) (List.rev args);
      push_on th t (Int32.of_int t.sentinel);
      let steps = ref 0 in
      let result = ref None in
      while Option.is_none !result do
        if th.pc = t.sentinel then result := Some (Ok th.regs.(0))
        else if !steps >= step_limit then result := Some (Error Step_limit)
        else begin
          (match step_catching t th with
           | `Ok | `Yield -> ()
           | `Stop -> (
             match th.state with
             | Faulted f -> result := Some (Error f)
             | Exited v -> result := Some (Ok v)
             | _ -> result := Some (Ok th.regs.(0))));
          incr steps;
          t.retired <- t.retired + 1
        end
      done;
      Option.get !result)

let backtrace t th =
  let resolve addr =
    let best = ref None in
    List.iter
      (fun (s : Klink.Image.syminfo) ->
        if s.kind = `Func && addr >= s.addr && addr < s.addr + max 1 s.size
        then
          match !best with
          | Some (b : Klink.Image.syminfo) when b.addr >= s.addr -> ()
          | _ -> best := Some s)
      t.syms;
    Option.map
      (fun (s : Klink.Image.syminfo) ->
        Printf.sprintf "%s+0x%x" s.name (addr - s.addr))
      !best
  in
  let frames = ref [] in
  (match resolve th.pc with
   | Some f -> frames := f :: !frames
   | None -> frames := Printf.sprintf "0x%x" th.pc :: !frames);
  let sp = Int32.to_int th.regs.(8) in
  let a = ref sp in
  while !a + 4 <= th.stack_hi do
    (match resolve (Int32.to_int (read_i32 t !a)) with
     | Some f -> frames := f :: !frames
     | None -> ());
    a := !a + 4
  done;
  List.rev !frames

(* Model of the paper's stop_machine cost (§5.2: "about 0.7 milliseconds"):
   a fixed rendezvous cost plus a per-CPU synchronisation term. We treat
   each live thread as occupying a CPU. *)
let stop_machine t f =
  let live =
    List.length
      (List.filter
         (fun th -> match th.state with Runnable | Sleeping _ -> true | _ -> false)
         (threads t))
  in
  let pause_ns = 500_000 + (50_000 * live) in
  let r = f () in
  (r, pause_ns)

(* --- shadow variables: host view of the per-object side table ---

   The same (object address, key) -> shadow address table the kernel
   reaches through INT 8/9/10 (__shadow_attach / __shadow_get /
   __shadow_detach), exposed to host code so shadow constructors and
   destructors driven from the patching machinery observe exactly what
   patched kernel code observes. The table is volatile state: a rolled-
   back transaction unwinds attachments and detachments alike. *)

let shadow_attach t ~obj ~key ~size =
  match Hashtbl.find_opt t.shadows (obj, key) with
  | Some a -> a
  | None ->
    let a = alloc_module t ~size:(max 4 size) ~align:4 in
    Hashtbl.replace t.shadows (obj, key) a;
    a

let shadow_get t ~obj ~key = Hashtbl.find_opt t.shadows (obj, key)
let shadow_detach t ~obj ~key = Hashtbl.remove t.shadows (obj, key)
let shadow_count t = Hashtbl.length t.shadows

(* rebind to an existing allocation: undoing a cumulative update revives
   the displaced updates' side tables exactly as the collapse found them
   (their shadow memory was never journal-replayed away) *)
let shadow_reattach t ~obj ~key ~addr = Hashtbl.replace t.shadows (obj, key) addr

(* --- transactional state capture --- *)

type thread_snap = {
  ts_thread : thread;
  ts_pc : int;
  ts_regs : int32 array;
  ts_state : thread_state;
  ts_uid : int;
  ts_eq : bool;
  ts_lt : bool;
  ts_patch : bool;
}

type volatile_state = {
  v_syms : Klink.Image.syminfo list;
  v_priv : (int * int) list;
  v_threads : thread_snap list;
  v_threads_rev : thread list;
  v_next_tid : int;
  v_tick : int;
  v_console_len : int;
  v_module_cursor : int;
  v_next_stack_top : int;
  v_syscall : int option;
  v_shadows : (int * int, int) Hashtbl.t;
  (* a rolled-back transaction must also unwind a mid-flight transition *)
  v_transition : (string * bool * (int * int) list) option;
}

let save_volatile t =
  {
    v_syms = t.syms;
    v_priv = t.priv;
    v_threads =
      List.map
        (fun th ->
          { ts_thread = th; ts_pc = th.pc; ts_regs = Array.copy th.regs;
            ts_state = th.state; ts_uid = th.uid; ts_eq = th.flag_eq;
            ts_lt = th.flag_lt; ts_patch = th.patch_state })
        t.threads_rev;
    v_threads_rev = t.threads_rev;
    v_next_tid = t.next_tid;
    v_tick = t.tick_count;
    v_console_len = Buffer.length t.console_buf;
    v_module_cursor = t.module_cursor;
    v_next_stack_top = t.next_stack_top;
    v_syscall = t.syscall_entry_addr;
    v_shadows = Hashtbl.copy t.shadows;
    v_transition = transition_bindings t;
  }

let restore_volatile t v =
  t.syms <- v.v_syms;
  index_rebuild t.sym_index v.v_syms;
  t.priv <- v.v_priv;
  List.iter
    (fun s ->
      let th = s.ts_thread in
      th.pc <- s.ts_pc;
      Array.blit s.ts_regs 0 th.regs 0 (Array.length th.regs);
      th.state <- s.ts_state;
      th.uid <- s.ts_uid;
      th.flag_eq <- s.ts_eq;
      th.flag_lt <- s.ts_lt;
      th.patch_state <- s.ts_patch)
    v.v_threads;
  t.threads_rev <- v.v_threads_rev;
  t.next_tid <- v.v_next_tid;
  t.tick_count <- v.v_tick;
  if Buffer.length t.console_buf > v.v_console_len then begin
    let kept = Buffer.sub t.console_buf 0 v.v_console_len in
    Buffer.clear t.console_buf;
    Buffer.add_string t.console_buf kept
  end;
  t.module_cursor <- v.v_module_cursor;
  t.next_stack_top <- v.v_next_stack_top;
  t.syscall_entry_addr <- v.v_syscall;
  Hashtbl.reset t.shadows;
  Hashtbl.iter (fun k x -> Hashtbl.replace t.shadows k x) v.v_shadows;
  t.transition <-
    Option.map
      (fun (update, route, bindings) ->
        let tbl = Hashtbl.create (List.length bindings) in
        List.iter (fun (e, tg) -> Hashtbl.replace tbl e tg) bindings;
        { tr_update = update; tr_route_state = route; tr_dispatch = tbl })
      v.v_transition

(* --- byte-identity snapshots (rollback verification) --- *)

type snapshot = {
  s_mem : Bytes.t;
  s_syms : Klink.Image.syminfo list;
  s_priv : (int * int) list;
  s_threads :
    (int * string * int * int32 array * thread_state * int * bool * bool
     * bool)
    list;
  s_tick : int;
  s_console : string;
  s_shadows : ((int * int) * int) list;
  s_transition : (string * bool * (int * int) list) option;
}

let thread_tuples t =
  List.map
    (fun th ->
      (th.tid, th.name, th.pc, Array.copy th.regs, th.state, th.uid,
       th.flag_eq, th.flag_lt, th.patch_state))
    (threads t)

let shadow_bindings t =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.shadows [])

let snapshot t =
  {
    s_mem = Bytes.copy t.mem;
    s_syms = t.syms;
    s_priv = t.priv;
    s_threads = thread_tuples t;
    s_tick = t.tick_count;
    s_console = Buffer.contents t.console_buf;
    s_shadows = shadow_bindings t;
    s_transition = transition_bindings t;
  }

let diff_snapshot t s =
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun m -> out := m :: !out) fmt in
  if not (Bytes.equal t.mem s.s_mem) then begin
    let shown = ref 0 in
    let i = ref 0 in
    let n = min (Bytes.length t.mem) (Bytes.length s.s_mem) in
    while !i < n && !shown < 4 do
      if Bytes.get t.mem !i <> Bytes.get s.s_mem !i then begin
        add "memory differs at %#x: now %#x, snapshot %#x" !i
          (Bytes.get_uint8 t.mem !i)
          (Bytes.get_uint8 s.s_mem !i);
        incr shown;
        (* jump past this word to avoid flooding the report *)
        i := ((!i / 16) + 1) * 16
      end
      else incr i
    done
  end;
  if List.sort compare t.syms <> List.sort compare s.s_syms then
    add "kallsyms differ: %d entries now, %d in snapshot"
      (List.length t.syms) (List.length s.s_syms);
  if List.sort compare t.priv <> List.sort compare s.s_priv then
    add "privileged ranges differ: %d now, %d in snapshot"
      (List.length t.priv) (List.length s.s_priv);
  let now_threads = thread_tuples t in
  if List.length now_threads <> List.length s.s_threads then
    add "thread count differs: %d now, %d in snapshot"
      (List.length now_threads) (List.length s.s_threads)
  else
    List.iter2
      (fun (tid, name, pc, regs, state, uid, eq, lt, patch)
           (tid', _, pc', regs', state', uid', eq', lt', patch') ->
        if
          tid <> tid' || pc <> pc' || regs <> regs' || state <> state'
          || uid <> uid' || eq <> eq' || lt <> lt' || patch <> patch'
        then add "thread %d (%s) state differs from snapshot" tid name)
      now_threads s.s_threads;
  if t.tick_count <> s.s_tick then
    add "tick differs: %d now, %d in snapshot" t.tick_count s.s_tick;
  if not (String.equal (Buffer.contents t.console_buf) s.s_console) then
    add "console output differs";
  if shadow_bindings t <> s.s_shadows then add "shadow bindings differ";
  if transition_bindings t <> s.s_transition then
    add "active transition differs from snapshot";
  List.rev !out
