(** The kernel virtual machine: memory, threads, interpreter, syscall
    dispatch, and the facilities Ksplice depends on at apply time —
    kallsyms, module memory, [stop_machine], and thread/stack
    introspection for the quiescence check (§5.2).

    The machine interprets the same bytes Ksplice's trampolines patch, so
    an incorrectly constructed update genuinely corrupts execution — the
    safety properties under test are real, not simulated. *)

type fault =
  | Illegal_instruction of int  (** pc *)
  | Memory_violation of int  (** offending address *)
  | Divide_by_zero of int  (** pc *)
  | Privilege_violation of int  (** pc: privileged escape from user code *)
  | No_syscall_entry
  | Step_limit

val pp_fault : Format.formatter -> fault -> unit

type thread_state =
  | Runnable
  | Sleeping of int  (** wake at tick *)
  | Exited of int32
  | Faulted of fault

type thread = {
  tid : int;
  name : string;
  regs : int32 array;  (** r0..r7 at 0..7, sp at 8 *)
  mutable pc : int;
  stack_lo : int;
  stack_hi : int;
  mutable state : thread_state;
  mutable uid : int;
  mutable flag_eq : bool;  (** comparison flags (per-CPU state) *)
  mutable flag_lt : bool;
  mutable patch_state : bool;
      (** livepatch-style per-task consistency state: [true] once the
          thread has migrated to the goal side of the active transition.
          Meaningful only while a transition is active. *)
}

(** Where a thread was standing when the machine offered it for
    migration: at the [INT 0x80] syscall gate, or at the end of a
    scheduler quantum in {!run}. *)
type safe_point = Sp_syscall | Sp_quantum

val safe_point_name : safe_point -> string

type t

(** [create ?mem_size image] boots the image into fresh memory: copies
    text/data, zeroes bss, seeds kallsyms, and registers the kernel text
    as privileged. If the image defines [syscall_entry], [INT 0x80] is
    wired to it. *)
val create : ?mem_size:int -> Klink.Image.t -> t

val image : t -> Klink.Image.t
val tick : t -> int

(** Monotone instruction odometer. [tick] is kernel time and is rewound
    when a transaction rolls back its volatile snapshot; this counter
    only ever grows and is excluded from snapshots, so supervision code
    can meter real work (watchdog budgets, event timestamps) across
    rollbacks. *)
val instructions_retired : t -> int

val console : t -> string

(** kallsyms of the running kernel: boot image symbols plus symbols of
    any loaded modules. *)
val kallsyms : t -> Klink.Image.syminfo list

val add_kallsyms : t -> Klink.Image.syminfo list -> unit

(** [remove_kallsyms t pred] drops entries satisfying [pred] (used when a
    module is unloaded). *)
val remove_kallsyms : t -> (Klink.Image.syminfo -> bool) -> unit

(** [lookup_name t name] returns every kallsyms entry named [name], in
    {!kallsyms} order, via a [name -> entries] hash index maintained
    incrementally by {!add_kallsyms}/{!remove_kallsyms} — O(1) per
    lookup where filtering {!kallsyms} is O(symbols). Invariant (checked
    by the test suite): for every [name],
    [lookup_name t name = List.filter (fun s -> s.name = name) (kallsyms t)]. *)
val lookup_name : t -> string -> Klink.Image.syminfo list

(** Cumulative process-wide {!lookup_name} counters ([hits] are lookups
    that found at least one entry); feeds the BENCH.json index hit rate. *)
type index_stats = {
  lookups : int;
  hits : int;
}

val kallsyms_index_stats : unit -> index_stats

(** [privileged_ranges t] are [start, end_) code ranges allowed to use
    privileged escapes: kernel text plus registered module text. *)
val privileged_ranges : t -> (int * int) list

val add_privileged_range : t -> int * int -> unit

(** Memory access (host side). @raise Invalid_argument out of range. *)
val read_u8 : t -> int -> int

val read_i32 : t -> int -> int32
val read_bytes : t -> int -> int -> Bytes.t
val write_u8 : t -> int -> int -> unit
val write_i32 : t -> int -> int32 -> unit
val write_bytes : t -> int -> Bytes.t -> unit

(** [alloc_module t ~size ~align] carves memory from the module area
    (zero-filled). Used for Ksplice modules, shadow data, and user
    programs. *)
val alloc_module : t -> size:int -> align:int -> int

(** [spawn t ~name ~uid ~entry ~args] creates a thread with a fresh
    stack; [args] are pushed as if by a caller, and a return into a
    clean-exit gadget is arranged, so [entry] can simply return. *)
val spawn : t -> name:string -> uid:int -> entry:int -> args:int32 list -> thread

val threads : t -> thread list
val find_thread : t -> int -> thread option

(** [run t ~steps] executes up to [steps] instructions across runnable
    threads, round-robin with a small quantum. Returns the number of
    instructions actually executed (0 when everything is blocked or
    exited and nothing is sleeping). *)
val run : t -> steps:int -> int

(** [call_function t ~uid ~addr ~args] synchronously executes the function
    at [addr] on a dedicated internal thread context (its own stack) until
    it returns; used for boot-time init, Ksplice hooks, and tests. *)
val call_function :
  ?step_limit:int ->
  ?uid:int ->
  t ->
  addr:int ->
  args:int32 list ->
  (int32, fault) result

(** [stop_machine t f] captures all CPUs (no thread is mid-instruction —
    the scheduler is paused) and runs [f]. Returns [f ()] and the
    simulated pause in nanoseconds (modelled on the paper's ~0.7 ms
    stop_machine cost, scaled by thread count). *)
val stop_machine : t -> (unit -> 'a) -> 'a * int

(** [backtrace t th] conservatively reconstructs [th]'s call chain: the
    current pc followed by every word on the live stack that points into
    a known function, resolved through kallsyms to ["name+0xoff"]. Used
    to diagnose §5.2 quiescence failures ("which thread still sits in the
    function I want to patch, and where was it called from?"). *)
val backtrace : t -> thread -> string list

(** Wire the [INT 0x80] syscall gate to the given entry address. *)
val set_syscall_entry : t -> int -> unit

val syscall_entry : t -> int option

(** {2 Per-thread transitions}

    The livepatch-style consistency model: instead of rewriting a
    patched function's entry under [stop_machine], a transition installs
    {e dispatch stubs} — interpreter-level redirects consulted before
    each instruction fetch. While a transition is active, a thread whose
    pc lands on a registered entry is routed to the target address iff
    its [patch_state] equals the transition's route state; everyone else
    falls through to the bytes actually at the entry. An apply
    transition routes {e migrated} threads to new code (old code is
    still at the entry); a reverse transition routes {e unmigrated}
    threads to the still-live new code. At most one transition is active
    at a time. *)

(** [begin_transition t ~update ~route_migrated dispatch] activates a
    transition for update [update] with [(entry, target)] dispatch
    stubs, and resets every thread's [patch_state] to unmigrated.
    [route_migrated] selects which side is redirected: [true] routes
    migrated threads to the target (apply), [false] routes unmigrated
    threads (reverse/undo).
    @raise Invalid_argument if a transition is already active. *)
val begin_transition :
  t -> update:string -> route_migrated:bool -> (int * int) list -> unit

(** Deactivate the transition and reset every [patch_state]; the caller
    is expected to have landed (or unwound) the permanent trampolines.
    @raise Invalid_argument if none is active. *)
val end_transition : t -> unit

(** Id of the active transition's update, if any. *)
val transition_update : t -> string option

(** The transition manager's migration callback, invoked with a thread
    each time it crosses a safe point ({!safe_point}) while a transition
    is active. The hook may read machine state and flip [patch_state];
    it runs between instructions, never mid-instruction. Not part of any
    snapshot — its owner manages its lifetime. *)
val set_safepoint_hook : t -> (thread -> safe_point -> unit) option -> unit

val migrate_thread : thread -> unit
val thread_migrated : thread -> bool

(** Raised by {!alloc_module} when the module area is exhausted, or when
    an armed allocation injector forces a failure. *)
exception Out_of_memory of string

(** {2 Observation and fault-injection hooks}

    These exist for the transactional apply path (journaling) and for
    systematic fault injection ([Ksplice.Faultinj]); the machine itself
    never arms them. *)

(** [set_write_observer t f] installs [f addr len], called before every
    mutation of machine memory — host-side writes, interpreter stores,
    and stack pushes alike — so a journal can capture the old bytes. *)
val set_write_observer : t -> (int -> int -> unit) option -> unit

(** Allocation injector: consulted by {!alloc_module}; returning [true]
    makes the allocation raise {!Out_of_memory}. *)
val set_alloc_injector : t -> (size:int -> align:int -> bool) option -> unit

(** Write injector: transforms the bytes of host-side {!write_bytes}
    calls (module loads, trampoline pokes) — the transform must preserve
    length. Interpreter stores are not affected. *)
val set_write_injector : t -> (int -> Bytes.t -> Bytes.t) option -> unit

(** Call injector: consulted by {!call_function} before execution;
    [Some fault] makes the call fail without running a single
    instruction. *)
val set_call_injector : t -> (int -> fault option) option -> unit

(** Drop all armed injectors (the observer is left alone). *)
val clear_injectors : t -> unit

val remove_privileged_range : t -> int * int -> unit

(** {2 Shadow variables (§5.3)}

    The per-object side table — (object address, key) -> shadow address
    — that patched kernel code reaches through the [__shadow_attach] /
    [__shadow_get] / [__shadow_detach] builtins (INT 8/9/10), exposed to
    host code so the patching machinery's shadow constructors and
    destructors see exactly what kernel code sees. Attachments are
    idempotent (re-attaching yields the existing shadow) and allocate
    zero-filled module memory; the bindings are volatile state, so a
    rolled-back transaction unwinds them. *)

val shadow_attach : t -> obj:int -> key:int -> size:int -> int
val shadow_get : t -> obj:int -> key:int -> int option
val shadow_detach : t -> obj:int -> key:int -> unit

(** Number of live shadow bindings. *)
val shadow_count : t -> int

(** Every live binding, sorted: (object, key), shadow address. *)
val shadow_bindings : t -> ((int * int) * int) list

(** [shadow_reattach m ~obj ~key ~addr] rebinds a key to an existing
    shadow allocation, replacing any current binding. Used when undoing
    a cumulative update: the displaced updates' side tables are revived
    exactly as the collapse found them. *)
val shadow_reattach : t -> obj:int -> key:int -> addr:int -> unit

(** {2 Transactional state capture}

    [save_volatile]/[restore_volatile] cover everything {e except} raw
    memory bytes — kallsyms, privileged ranges, thread registers/states,
    spawned threads, tick, console length, allocator cursors, shadow
    bindings — which a transaction journal restores separately. *)

type volatile_state

val save_volatile : t -> volatile_state
val restore_volatile : t -> volatile_state -> unit

(** {2 Byte-identity snapshots}

    A full copy of machine state for mechanical rollback verification:
    a faulted apply must leave the machine with an empty
    {!diff_snapshot}. *)

type snapshot

val snapshot : t -> snapshot

(** [diff_snapshot t s] is a human-readable list of divergences between
    the machine now and snapshot [s]; [[]] means byte-identical memory,
    kallsyms, privileged ranges, thread state, tick, console, and shadow
    bindings. *)
val diff_snapshot : t -> snapshot -> string list
