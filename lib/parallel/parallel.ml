let available_domains () = Domain.recommended_domain_count ()

let default_domains () =
  match Sys.getenv_opt "KSPLICE_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> available_domains ())
  | None -> available_domains ()

(* --- the shared chunked task queue --- *)

let queue : (unit -> unit) Queue.t = Queue.create ()
let qm = Mutex.create ()
let qcv = Condition.create ()
let shutting_down = ref false
let pool : unit Domain.t list ref = ref []
let pool_started = ref false
let pool_m = Mutex.create ()

(* Tasks never raise: [map] wraps user work in a catch-all, so a worker
   (or a helping submitter) can run any queued chunk, from any batch. *)
let worker () =
  let running = ref true in
  while !running do
    Mutex.lock qm;
    while Queue.is_empty queue && not !shutting_down do
      Condition.wait qcv qm
    done;
    if Queue.is_empty queue then begin
      running := false;
      Mutex.unlock qm
    end
    else begin
      let task = Queue.pop queue in
      Mutex.unlock qm;
      task ()
    end
  done

let ensure_pool () =
  Mutex.lock pool_m;
  if not !pool_started then begin
    pool_started := true;
    (* at least one worker even on a single-core host, so an explicit
       parallelism request genuinely crosses domains *)
    let n = max 1 (available_domains () - 1) in
    pool := List.init n (fun _ -> Domain.spawn worker);
    at_exit (fun () ->
        Mutex.lock qm;
        shutting_down := true;
        Condition.broadcast qcv;
        Mutex.unlock qm;
        List.iter Domain.join !pool)
  end;
  Mutex.unlock pool_m

let try_pop () =
  Mutex.lock qm;
  let r = if Queue.is_empty queue then None else Some (Queue.pop queue) in
  Mutex.unlock qm;
  r

(* Completion latch of one batch. Chunks decrement [left] under [lm];
   the submitter helps drain the queue while waiting, and only sleeps
   when every chunk of the queue is taken by some other thread. *)
type latch = {
  lm : Mutex.t;
  lcv : Condition.t;
  mutable left : int;
}

let rec await_helping l =
  Mutex.lock l.lm;
  let finished = l.left = 0 in
  Mutex.unlock l.lm;
  if not finished then begin
    (match try_pop () with
     | Some task -> task ()
     | None ->
       Mutex.lock l.lm;
       if l.left > 0 then Condition.wait l.lcv l.lm;
       Mutex.unlock l.lm);
    await_helping l
  end

let map ?domains ?chunk f xs =
  let n = List.length xs in
  let d =
    match domains with Some d -> d | None -> default_domains ()
  in
  if d <= 1 || n <= 1 then List.map f xs
  else begin
    ensure_pool ();
    let input = Array.of_list xs in
    let out = Array.make n None in
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (n / (4 * d))
    in
    let nchunks = (n + chunk - 1) / chunk in
    let l = { lm = Mutex.create (); lcv = Condition.create (); left = nchunks }
    in
    let run_chunk c () =
      let lo = c * chunk and hi = min n ((c + 1) * chunk) in
      for i = lo to hi - 1 do
        out.(i) <-
          Some
            (match f input.(i) with
             | v -> Ok v
             | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      done;
      Mutex.lock l.lm;
      l.left <- l.left - 1;
      if l.left = 0 then Condition.broadcast l.lcv;
      Mutex.unlock l.lm
    in
    Mutex.lock qm;
    for c = 0 to nchunks - 1 do
      Queue.add (run_chunk c) queue
    done;
    Condition.broadcast qcv;
    Mutex.unlock qm;
    await_helping l;
    (* deterministic error reporting: first failing index wins *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      out;
    List.init n (fun i ->
        match out.(i) with Some (Ok v) -> v | _ -> assert false)
  end

let iter ?domains ?chunk f xs =
  ignore (map ?domains ?chunk (fun x -> f x) xs : unit list)
