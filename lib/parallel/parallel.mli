(** A small domain pool for data-parallel work (OCaml 5 [Domain]).

    The pool is a shared chunked task queue — no work stealing: a batch is
    split into index chunks, every chunk is enqueued once, and worker
    domains (plus the submitting thread itself) pull chunks until the
    batch drains. A thread waiting for its batch helps execute queued
    chunks — including chunks of {e other} batches — so nested
    [map]-inside-[map] cannot deadlock the fixed-size pool.

    Sequential fallback: when [Domain.recommended_domain_count () = 1]
    and the caller does not explicitly ask for parallelism (or asks for
    [domains <= 1]), no domain is ever spawned and [map] is exactly
    [List.map]. An explicit [~domains:n] with [n > 1] always takes the
    pool path, even on a single-core host — that is what lets the test
    suite exercise the concurrent machinery anywhere.

    Worker domains are spawned lazily on first use and joined at exit. *)

val available_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val default_domains : unit -> int
(** Domain budget used when [?domains] is omitted: the
    [KSPLICE_DOMAINS] environment variable if set to a positive integer,
    otherwise {!available_domains}. *)

val map : ?domains:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?domains ?chunk f xs] is [List.map f xs] computed with up to
    [domains] (default {!default_domains}) threads of execution. Results
    keep list order. [chunk] is the number of consecutive items one queue
    pull claims (default: [length xs / (4 * domains)], at least 1).

    If [f] raises, the exception of the {e smallest} list index that
    failed is re-raised in the caller (with its backtrace), so error
    reporting is deterministic regardless of scheduling. Chunks already
    queued still run to completion first. *)

val iter : ?domains:int -> ?chunk:int -> ('a -> unit) -> 'a list -> unit
(** [iter ?domains ?chunk f xs] is [map] for side effects only. *)
