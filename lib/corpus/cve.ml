type consequence = Priv_escalation | Info_disclosure

type custom_reason =
  | Changes_data_init
  | Adds_struct_field
  | Updates_derived_state

let reason_to_string = function
  | Changes_data_init -> "changes data init"
  | Adds_struct_field -> "adds field to struct"
  | Updates_derived_state -> "updates derived state"

type t = {
  id : string;
  file : string;
  desc : string;
  consequence : consequence;
  fix : (string * string * string) list;
  custom : (custom_reason * string) option;
}

(* helper: a fix confined to the CVE's own file *)
let mk id file desc consequence ?custom fix_pairs =
  { id; file; desc; consequence;
    fix = List.map (fun (o, n) -> (file, o, n)) fix_pairs; custom }

let mk_multi id file desc consequence ?custom fix =
  { id; file; desc; consequence; fix; custom }

(* ===== the four exploitable analogues ===== *)

let cve_entry_signed =
  mk "CVE-2007-4573" "kernel/entry.s"
    "syscall entry path misses the negative-number check, indexing below \
     sys_call_table (ia32entry.S analogue)"
    Priv_escalation
    [ ( "  cmpi r0, 48\n  jge .Lbad",
        "  cmpi r0, 48\n  jge .Lbad\n  cmpi r0, 0\n  jl .Lbad" ) ]

let cve_prctl =
  mk "CVE-2006-2451" "kernel/creds.c"
    "prctl(PR_SET_KEEPCAPS) stores an unmasked capability word, granting \
     CAP_ADMIN to unprivileged callers"
    Priv_escalation
    [ ("    cur_caps = arg;", "    cur_caps = arg & 1;") ]

let cve_vmsplice =
  mk "CVE-2008-0600" "kernel/pipe.c"
    "pipe write misses the length check, overwriting the notify function \
     pointer past the buffer (vmsplice analogue)"
    Priv_escalation
    [ ( "  int *p = (int*)src;\n  for (i = 0; i < len; i = i + 1)\n    pipe_buf[i] = p[i];",
        "  int *p = (int*)src;\n  if (len < 0 || len > 16)\n    return -1;\n  for (i = 0; i < len; i = i + 1)\n    pipe_buf[i] = p[i];" ) ]

let cve_proc_leak =
  mk "CVE-2006-3626" "kernel/proc.c"
    "proc status read leaks another task's session token without an \
     ownership check"
    Info_disclosure
    [ ( "  if (field == 2)\n    return t->token;",
        "  if (field == 2) {\n    if (__getuid() != 0 && t->uid != __getuid())\n      return -1;\n    return t->token;\n  }" ) ]

(* ===== the dst_ca ambiguous-symbol CVE ===== *)

let cve_dst_ca =
  mk "CVE-2005-4639" "kernel/dst_ca.c"
    "dst_ca slot info copies the session token to any caller"
    Info_disclosure
    [ ( "  if (field == 1)\n    return boot_token;",
        "  if (field == 1) {\n    if (__getuid() != 0)\n      return -1;\n    return boot_token;\n  }" ) ]

(* ===== small fixes to inlined checker functions ===== *)

let small_inlined =
  [
    mk "CVE-2005-3110" "kernel/pipe.c"
      "splice page-count check off by two" Info_disclosure
      [ ( "static int splice_limit(int n) { return n > 17; }",
          "static int splice_limit(int n) { return n > 15; }" ) ];
    mk "CVE-2005-3111" "kernel/counters.c"
      "counter index check misses negative values (out-of-bounds write)"
      Priv_escalation
      [ ( "static int counter_ok(int idx) { return idx < 8; }",
          "static int counter_ok(int idx) { return idx >= 0 && idx < 8; }" )
      ];
    mk "CVE-2005-3112" "kernel/net.c"
      "frame length check misses negative lengths" Priv_escalation
      [ ( "static int frame_ok(int len) { return len <= tx_limit; }",
          "static int frame_ok(int len) { return len >= 0 && len <= tx_limit; }"
        ) ];
    mk "CVE-2005-3113" "kernel/mm.c"
      "brk bound check accepts negative sizes" Priv_escalation
      [ ( "static int within_brk(int n) { return n <= brk_limit; }",
          "static int within_brk(int n) { return n >= 0 && n <= brk_limit; }"
        ) ];
    mk "CVE-2005-3114" "kernel/signal.c"
      "signal 31 is reserved for the kernel but passes validation"
      Priv_escalation
      [ ( "static int sig_valid(int s) { return s > 0 && s < 32; }",
          "static int sig_valid(int s) { return s > 0 && s < 31; }" ) ];
    mk "CVE-2005-3115" "kernel/tty.c"
      "tty ownership check bypassed when the owner field is zero"
      Priv_escalation
      [ ( "static int is_owner() { return __getuid() == tty_owner; }",
          "static int is_owner() { return __getuid() == tty_owner && tty_owner != 0; }"
        ) ];
    mk "CVE-2006-3116" "kernel/quota.c"
      "quota room check accepts negative charges" Priv_escalation
      [ ( "static int quota_room(int uid, int n) {\n  return quota_used[uid & 7] + n <= quota_table[uid & 7];\n}",
          "static int quota_room(int uid, int n) {\n  return n >= 0 && quota_used[uid & 7] + n <= quota_table[uid & 7];\n}"
        ) ];
    mk "CVE-2006-3117" "kernel/video.c"
      "formats 12-15 are reserved but pass validation" Priv_escalation
      [ ( "static int fmt_valid(int f) { return f >= 0 && f < 16; }",
          "static int fmt_valid(int f) { return f >= 0 && f < 12; }" ) ];
    mk "CVE-2006-3118" "kernel/usb.c"
      "queue-full check misses a corrupted negative pending count"
      Priv_escalation
      [ ( "static int queue_full() { return usb_pending >= 8; }",
          "static int queue_full() { return usb_pending >= 8 || usb_pending < 0; }"
        ) ];
    (* explicitly-inline functions *)
    mk "CVE-2006-3119" "kernel/random.c"
      "entropy mixing is linear; fold the value into the state"
      Info_disclosure
      [ ( "  mix_state = mix_state * 1103515245 + 12345;\n  return v ^ mix_state;",
          "  mix_state = mix_state * 1103515245 + 12345;\n  mix_state = mix_state ^ (v << 7);\n  return v ^ mix_state;"
        ) ];
    mk "CVE-2006-3120" "kernel/audit.c"
      "audit slot branch on negative positions is data-dependent (timing \
       side channel); mask the sign bit instead"
      Info_disclosure
      [ ( "  if (s < 0)\n    s = 0;\n  s = s % limit;",
          "  s = s & 2147483647;\n  s = s % limit;" ) ];
    mk "CVE-2006-3121" "kernel/ipc.c"
      "ring index derives from a hardcoded mask; derive it from the queue \
       size" Info_disclosure
      [ ( "static inline int slot_of(int v) { return v & 15; }",
          "static inline int slot_of(int v) { return v & (16 - 1); }" ) ];
    mk "CVE-2007-3122" "kernel/random.c"
      "mixed-state feedback still predictable; rotate the state between \
       rounds" Info_disclosure
      [ ( "  mix_state = mix_state * 1103515245 + 12345;",
          "  mix_state = (mix_state << 1) ^ (mix_state >> 3);\n  mix_state = mix_state * 1103515245 + 12345;"
        ) ];
  ]

(* ===== other small fixes ===== *)

let small_other =
  [
    mk "CVE-2005-3130" "kernel/net.c"
      "receive index check misses negative indices; validation factored \
       into a helper" Info_disclosure
      [ ( "int sys_net_recv(int idx) {\n  if (idx >= 32)\n    return -1;\n  return net_rx[idx];\n}",
          "static int rx_index_ok(int idx) {\n  if (idx < 0)\n    return 0;\n  if (idx >= 32)\n    return 0;\n  return 1;\n}\n\nint sys_net_recv(int idx) {\n  if (!rx_index_ok(idx))\n    return -1;\n  return net_rx[idx];\n}"
        ) ];
    mk "CVE-2005-3131" "kernel/ipc.c"
      "receive replays stale ring entries when the queue is empty"
      Info_disclosure
      [ ( "  int v = ipc_queue[slot_of(ipc_head)];",
          "  int v;\n  if (ipc_head == ipc_tail) {\n    ipc_active = 0;\n    return -1;\n  }\n  v = ipc_queue[slot_of(ipc_head)];"
        ) ];
    mk "CVE-2005-3132" "kernel/fs.c"
      "file read consults slots beyond the allocated count (stale entry \
       leak)" Info_disclosure
      [ ( "static int fd_ok(int fd) { return fd >= 0 && fd < 16; }",
          "static int fd_ok(int fd) { return fd >= 0 && fd < file_count; }" ) ];
    mk "CVE-2005-3133" "kernel/fs.c"
      "chmod/chown-equivalent setattr lacks privilege checks on both \
       attributes" Priv_escalation
      [ ( "  if (attr == 1) {\n    f->mode = value;\n    return 0;\n  }\n  if (attr == 2) {\n    f->owner = value;\n    return 0;\n  }",
          "  if (attr == 1) {\n    if ((value & 7) != value)\n      return -1;\n    if (__getuid() != 0 && __getuid() != f->owner)\n      return -1;\n    f->mode = value;\n    return 0;\n  }\n  if (attr == 2) {\n    if (__getuid() != 0)\n      return -1;\n    if (value < 0)\n      return -1;\n    f->owner = value;\n    return 0;\n  }"
        ) ];
    mk "CVE-2006-3134" "kernel/xattr.c"
      "security.* namespace writable by any user" Priv_escalation
      [ ( "  int i = find_key(key);\n  if (i < 0) {",
          "  int i;\n  if (key < 0)\n    return -1;\n  if (key >= 100 && __getuid() != 0)\n    return -1;\n  if (val == -1)\n    return -1;\n  i = find_key(key);\n  if (i < 0) {"
        ) ];
    mk "CVE-2006-3135" "kernel/xattr.c"
      "attribute scan can run past the table when the count is corrupted"
      Priv_escalation
      [ ( "  for (i = 0; i < xattr_count; i = i + 1) {",
          "  for (i = 0; i < xattr_count && i < table_cap; i = i + 1) {" ) ];
    mk "CVE-2006-3136" "kernel/keyring.c"
      "key read check leaks key 1 (the root session key)" Info_disclosure
      [ ( "    if (key_table[i].serial == serial) {\n      if (key_table[i].owner != __getuid() && serial != 1)\n        return -1;\n      return key_table[i].payload;\n    }",
          "    if (key_table[i].serial == serial) {\n      int uid = __getuid();\n      if (uid != 0 && key_table[i].owner != uid)\n        return -1;\n      if (key_table[i].perm == 0 && uid != 0)\n        return -1;\n      return key_table[i].payload;\n    }"
        ) ];
    mk "CVE-2006-3137" "kernel/keyring.c"
      "new keys default to world-readable permissions" Priv_escalation
      [ ( "  k->serial = key_count + 1;\n  k->owner = __getuid();\n  k->perm = 1;",
          "  k->serial = key_count + 1;\n  k->owner = __getuid();\n  if (k->owner == 0)\n    k->perm = 1;\n  else\n    k->perm = 3;" ) ];
    mk "CVE-2007-3138" "kernel/quota.c"
      "quota usage readable across users" Info_disclosure
      [ ( "int sys_quota_get(int uid, int field) {\n  if (field == 0)\n    return quota_table[uid & 7];\n  return quota_used[uid & 7];\n}",
          "static int quota_may_view(int uid) {\n  if (__getuid() == 0)\n    return 1;\n  return (uid & 7) == (__getuid() & 7);\n}\n\nint sys_quota_get(int uid, int field) {\n  if (!quota_may_view(uid))\n    return -1;\n  if (field == 0)\n    return quota_table[uid & 7];\n  return quota_used[uid & 7];\n}"
        ) ];
    mk "CVE-2007-3139" "kernel/audit.c"
      "audit ring readable by any user" Info_disclosure
      [ ( "int sys_audit_read(int idx) {\n  return audit_ring[audit_slot(idx)];\n}",
          "static int audit_reader_ok() {\n  return __getuid() == 0;\n}\n\nint sys_audit_read(int idx) {\n  if (!audit_reader_ok())\n    return -1;\n  if (idx < 0 || idx >= 32)\n    return -1;\n  return audit_ring[audit_slot(idx)];\n}"
        ) ];
    mk "CVE-2007-3140" "kernel/mm.c"
      "mmap count checked against the wrong limit variable"
      Priv_escalation
      [ ( "  if (len <= 0)\n    return -1;\n  if (mmap_count >= brk_limit)\n    return -1;",
          "  if (len <= 0)\n    return -1;\n  if (len > brk_limit)\n    return -1;\n  if (mmap_count < 0)\n    mmap_count = 0;\n  if (mmap_count >= limit)\n    return -1;"
        ) ];
    mk "CVE-2007-3141" "kernel/mm.c"
      "brk accepts arbitrarily large values" Priv_escalation
      [ ( "static int within_brk(int n) { return n <= brk_limit; }",
          "static int within_brk(int n) { return n <= brk_limit && n <= 1048576; }" ) ];
    mk "CVE-2005-3142" "kernel/signal.c"
      "any user may signal pid 1" Priv_escalation
      [ ( "  pending_sig = sig;\n  if (pid == 1)\n    return 0;",
          "  if (pid < 0)\n    return -1;\n  if (pid == 1 && __getuid() != 0)\n    return -1;\n  if (pending_sig != 0 && pending_sig != sig)\n    pending_sig = 0;\n  pending_sig = sig;\n  if (pid == 1)\n    return 0;"
        ) ];
    mk "CVE-2005-3143" "kernel/time.c"
      "settimeofday equivalent lacks a privilege check" Priv_escalation
      [ ( "  time_offset = t - __gettick();",
          "  if (__getuid() != 0)\n    return -1;\n  if (t < 0)\n    return -1;\n  if (t > 1000000000)\n    return -1;\n  time_offset = t - __gettick();"
        ) ];
    mk "CVE-2008-3144" "kernel/tty.c"
      "TIOCSTI-style character injection without ownership"
      Priv_escalation
      [ ( "  if (op == 7) {\n    __putc(arg);\n    return 0;\n  }",
          "  if (op == 7) {\n    int uid = __getuid();\n    if (!is_owner() && uid != 0)\n      return -1;\n    if (arg < 32 || arg > 126)\n      return -1;\n    __putc(arg);\n    return 0;\n  }"
        ) ];
    mk "CVE-2008-3145" "kernel/video.c"
      "buffer count multiplication overflows the limit check"
      Priv_escalation
      [ ( "static int buf_count_ok(int n) { return n * 4096 < buf_cap * 4096; }",
          "static int buf_count_ok(int n) { return n >= 0 && n < buf_cap; }" ) ];
    mk "CVE-2008-3146" "kernel/usb.c"
      "request stored before the queue-full check clobbers the adjacent \
       word" Priv_escalation
      [ ( "  usb_queue[usb_pending] = req;\n  if (queue_full())\n    return -1;",
          "  if (usb_pending < 0)\n    usb_pending = 0;\n  if (usb_pending > 8)\n    usb_pending = 8;\n  if (queue_full())\n    return -1;\n  usb_queue[usb_pending] = req;"
        ) ];
    mk "CVE-2008-3147" "kernel/random.c"
      "entropy pool readable before mixing (predictable output)"
      Info_disclosure
      [ ( "  return pool[idx & 3];",
          "  if (!pool_mixed)\n    return -1;\n  if (idx < 0)\n    return -1;\n  if (idx > 3)\n    return -1;\n  return pool[idx & 3];" ) ];
    mk "CVE-2008-3148" "kernel/misc.c"
      "personality word stored unmasked (reserved bits reachable)"
      Priv_escalation
      [ ( "static int pers_ok(int p) { return p != -1; }",
          "static int pers_ok(int p) { return p >= 0 && (p & 255) == p; }" ) ];
    mk "CVE-2008-3149" "kernel/misc.c"
      "profiling hook settable by any user" Priv_escalation
      [ ( "  kernel_hook = v;",
          "  int a;\n  if (__getuid() != 0)\n    return -1;\n  a = v;\n  if ((a & 3) != 0)\n    return -1;\n  kernel_hook = a;" ) ];
    mk "CVE-2007-3150" "kernel/misc.c"
      "negative nice values reachable without privilege" Priv_escalation
      [ ( "  if (n < nice_floor)\n    n = nice_floor;",
          "  int uid = __getuid();\n  if (n < 0 && uid != 0)\n    return -1;\n  if (n < nice_floor) {\n    n = nice_floor;\n  }\n  if (n < -20)\n    n = -20;"
        ) ];
    mk "CVE-2007-3151" "kernel/sock.c"
      "socket option accepts negative flag words (sign confusion in later \
       peer checks)" Priv_escalation
      [ ( "static int flags_ok(int val) { return val != -1; }",
          "static int flags_ok(int val) { return val >= 0 && val <= 65535; }" ) ];
    mk "CVE-2006-3152" "kernel/dst.c"
      "debug path echoes raw command bytes to the console"
      Info_disclosure
      [ ( "  if (debug)\n    __putc('D');",
          "  if (debug)\n    __putc('.');" ) ];
    mk "CVE-2006-3153" "kernel/dst.c"
      "tuner band accepts negative values" Priv_escalation
      [ ( "  if (band > 8)\n    return -1;\n  dst_state = band;",
          "  if (band < 0)\n    return -1;\n  if (band > 8)\n    return -1;\n  if (dst_state == band)\n    return 0;\n  if (dst_state < 0)\n    dst_state = 0;\n  dst_state = band;"
        ) ];
    mk "CVE-2007-3154" "kernel/proc.c"
      "task tokens identical across tasks; derive from pid"
      Info_disclosure
      [ ( "  t->uid = uid;\n  t->nice = 0;\n  t->token = boot_token;",
          "  t->uid = uid;\n  if (t->uid < 0)\n    t->uid = 0;\n  t->nice = 0;\n  if (pid == 0)\n    t->token = 0;\n  else\n    t->token = boot_token ^ (pid * 40503);" ) ];
    mk "CVE-2007-3155" "kernel/counters.c"
      "unbounded counter delta wraps accounting" Priv_escalation
      [ ( "  counters[idx] = counters[idx] + delta;",
          "  if (delta == 0)\n    return counters[idx];\n  if (delta > 1000000)\n    return -1;\n  if (delta < -1000000)\n    return -1;\n  counters[idx] = counters[idx] + delta;"
        ) ];
    mk "CVE-2006-3156" "kernel/ipc.c"
      "message sign bit doubles as an in-kernel flag; mask it"
      Info_disclosure
      [ ( "  ipc_queue[slot_of(ipc_tail)] = msg;\n  ipc_tail = ipc_tail + 1;",
          "  if (msg < 0)\n    return -1;\n  if (ipc_tail - ipc_head > 15)\n    return -1;\n  ipc_queue[slot_of(ipc_tail)] = msg & 2147483647;\n  ipc_tail = ipc_tail + 1;" ) ];
    mk "CVE-2007-3157" "kernel/pipe.c"
      "notify pointer not sanity-checked before the indirect call"
      Priv_escalation
      [ ( "  int fp;\n  if (pipe_debug)\n    __putc('F');\n  if (pipe_notify_fn != 0) {\n    fp = pipe_notify_fn;\n    fp();\n  }",
          "  int fp;\n  if (pipe_debug)\n    __putc('F');\n  fp = pipe_notify_fn;\n  if (fp != 0) {\n    if (fp < 1048576)\n      return -1;\n    fp();\n  }"
        ) ];
    mk "CVE-2007-3158" "kernel/creds.c"
      "admin capability honoured while the task is dumpable (ptrace \
       window)" Priv_escalation
      [ ( "int capable_admin() {\n  return (cur_caps & cap_admin_mask) || __getuid() == 0;\n}",
          "int capable_admin() {\n  if (dumpable != 0)\n    return __getuid() == 0;\n  return (cur_caps & cap_admin_mask) || __getuid() == 0;\n}"
        ) ];
    mk "CVE-2007-3159" "kernel/creds.c"
      "admin setuid operation accepts negative uids" Priv_escalation
      [ ( "  if (op == 1) {\n    __setuid(arg);\n    return 0;\n  }",
          "  if (op == 1) {\n    if (arg < 0)\n      return -1;\n    if (arg > 65535)\n      return -1;\n    __setuid(arg);\n    return 0;\n  }" ) ];
    mk "CVE-2008-3160" "kernel/log.c"
      "newline rejected, forcing log entries onto one line (log \
       confusion); accept it"
      Info_disclosure
      [ ( "static int printable(int ch) { return ch >= 32 && ch < 127; }",
          "static int printable(int ch) { return (ch >= 32 && ch < 127) || ch == 10; }" ) ];
  ]

(* ===== medium fixes ===== *)

let medium =
  [
    mk "CVE-2006-3170" "kernel/net.c"
      "frame copied before the length check (overwrite past net_tx); \
       validate first" Priv_escalation
      [ ( "  int i;\n  int *p = (int*)src;\n  for (i = 0; i < len; i = i + 1)\n    net_tx[i] = p[i];\n  if (!frame_ok(len))\n    return -1;\n  net_tx_len = len;",
          "  int i;\n  int *p = (int*)src;\n  if (!frame_ok(len))\n    return -1;\n  net_tx_len = 0;\n  for (i = 0; i < len; i = i + 1)\n    net_tx[i] = p[i];\n  net_tx_len = len;"
        ) ];
    mk "CVE-2005-3171" "kernel/proc.c"
      "proc status rewritten around an access-check helper"
      Info_disclosure
      [ ( "int sys_proc_status(int pid, int field) {\n  struct task *t = &task_table[pid & 7];\n  last_field = field;\n  if (field == 0)\n    return t->pid;\n  if (field == 1)\n    return t->uid;\n  if (field == 2)\n    return t->token;\n  return -1;\n}",
          "static int proc_may_read(struct task *t, int field) {\n  if (__getuid() == 0)\n    return 1;\n  if (field == 2)\n    return t->uid == __getuid();\n  return 1;\n}\n\nint sys_proc_status(int pid, int field) {\n  struct task *t = &task_table[pid & 7];\n  last_field = field;\n  if (!proc_may_read(t, field))\n    return -1;\n  if (field == 0)\n    return t->pid;\n  if (field == 1)\n    return t->uid;\n  if (field == 2)\n    return t->token;\n  return -1;\n}"
        ) ];
  ]

(* ===== large fixes ===== *)

let large =
  [
    mk "CVE-2008-3180" "kernel/fs.c"
      "open always appends, never reusing freed slots, and skips mode \
       validation; rewritten with slot search"
      Priv_escalation
      [ ( "int sys_fs_open(int inode, int mode) {\n  int i;\n  if (file_count >= 16)\n    return -1;\n  i = file_count;\n  file_table[i].inode = inode;\n  file_table[i].mode = mode;\n  file_table[i].owner = __getuid();\n  file_table[i].size = 0;\n  file_count = file_count + 1;\n  return i;\n}",
          "static int fs_slot_free(int i) {\n  return file_table[i].inode == 0;\n}\n\nstatic int fs_find_slot() {\n  int i;\n  for (i = 0; i < 16; i = i + 1) {\n    if (fs_slot_free(i))\n      return i;\n  }\n  return -1;\n}\n\nint sys_fs_open(int inode, int mode) {\n  int i;\n  if (inode == 0)\n    return -1;\n  if ((mode & 7) != mode)\n    return -1;\n  i = fs_find_slot();\n  if (i < 0)\n    return -1;\n  file_table[i].inode = inode;\n  file_table[i].mode = mode;\n  file_table[i].owner = __getuid();\n  file_table[i].size = 0;\n  if (i >= file_count)\n    file_count = i + 1;\n  return i;\n}"
        ) ];
    mk "CVE-2008-3181" "kernel/keyring.c"
      "keyring permission model rewritten: per-key read/write bits \
       honoured, root override explicit" Priv_escalation
      [ ( "int sys_key_read(int serial) {\n  int i;\n  for (i = 0; i < key_count; i = i + 1) {\n    if (key_table[i].serial == serial) {\n      if (key_table[i].owner != __getuid() && serial != 1)\n        return -1;\n      return key_table[i].payload;\n    }\n  }\n  return -1;\n}",
          "static int key_may_read(struct kkey *k) {\n  if (__getuid() == 0)\n    return 1;\n  if (k->owner == __getuid())\n    return (k->perm & 1) != 0;\n  return (k->perm & 4) != 0;\n}\n\nstatic struct kkey *key_lookup(int serial) {\n  int i;\n  for (i = 0; i < key_count; i = i + 1) {\n    if (key_table[i].serial == serial)\n      return &key_table[i];\n  }\n  return (struct kkey*)0;\n}\n\nint sys_key_read(int serial) {\n  struct kkey *k = key_lookup(serial);\n  if (k == 0)\n    return -1;\n  if (!key_may_read(k))\n    return -1;\n  return k->payload;\n}"
        ) ];
    mk "CVE-2007-3182" "kernel/xattr.c"
      "attribute namespaces overhauled: user (0-99), trusted (100-199, \
       admin capability), security (200+, root only)" Priv_escalation
      [ ( "/* CVE-A26: set does not verify ownership of the security namespace\n   (keys above 100 are security.* and must be root-only) */\nint sys_xattr_set(int key, int val) {\n  int i = find_key(key);\n  if (i < 0) {\n    if (xattr_count >= table_cap)\n      return -1;\n    i = xattr_count;\n    xattr_count = xattr_count + 1;\n    xattr_keys[i] = key;\n  }\n  xattr_vals[i] = val;\n  return 0;\n}\n\nint sys_xattr_get(int key) {\n  int i = find_key(key);\n  if (i < 0)\n    return -1;\n  return xattr_vals[i];\n}",
          "static int ns_of_key(int key) {\n  if (key < 100)\n    return 0;\n  if (key < 200)\n    return 1;\n  return 2;\n}\n\nstatic int ns_writable(int ns) {\n  if (ns == 0)\n    return 1;\n  if (__getuid() == 0)\n    return 1;\n  return 0;\n}\n\nstatic int ns_readable(int ns) {\n  if (ns == 2)\n    return __getuid() == 0;\n  return 1;\n}\n\nint sys_xattr_set(int key, int val) {\n  int i;\n  if (!ns_writable(ns_of_key(key)))\n    return -1;\n  i = find_key(key);\n  if (i < 0) {\n    if (xattr_count >= table_cap)\n      return -1;\n    i = xattr_count;\n    xattr_count = xattr_count + 1;\n    xattr_keys[i] = key;\n  }\n  xattr_vals[i] = val;\n  return 0;\n}\n\nint sys_xattr_get(int key) {\n  int i;\n  if (!ns_readable(ns_of_key(key)))\n    return -1;\n  i = find_key(key);\n  if (i < 0)\n    return -1;\n  return xattr_vals[i];\n}"
        ) ];
    mk "CVE-2008-3183" "kernel/creds.c"
      "prctl dispatch rewritten into per-option helpers with explicit \
       validation (large refactor)" Priv_escalation
      [ ( "int sys_prctl(int option, int arg) {\n  if (option == 1) {\n    dumpable = arg & 1;\n    return 0;\n  }\n  if (option == 2) {\n    cur_caps = arg;\n    return 0;\n  }\n  if (option == 3)\n    return dumpable;\n  return -1;\n}",
          "static int prctl_set_dumpable(int arg) {\n  if (arg != 0 && arg != 1)\n    return -1;\n  dumpable = arg;\n  return 0;\n}\n\nstatic int prctl_set_keepcaps(int arg) {\n  if (arg != 0 && arg != 1)\n    return -1;\n  if (arg == 0) {\n    cur_caps = 0;\n    return 0;\n  }\n  cur_caps = cur_caps | 1;\n  return 0;\n}\n\nstatic int prctl_get_dumpable() {\n  return dumpable;\n}\n\nstatic int prctl_validate(int option) {\n  if (option < 1)\n    return -1;\n  if (option > 3)\n    return -1;\n  return 0;\n}\n\nint sys_prctl(int option, int arg) {\n  if (prctl_validate(option) < 0)\n    return -1;\n  if (option == 1)\n    return prctl_set_dumpable(arg);\n  if (option == 2)\n    return prctl_set_keepcaps(arg);\n  if (option == 3)\n    return prctl_get_dumpable();\n  return -1;\n}"
        ) ];
    (* the one patch beyond 80 lines: a privileged-operation audit trail
       across three units *)
    mk_multi "CVE-2008-3184" "kernel/creds.c"
      "privileged operations gain an audit trail: every uid change, \
       capability change and hook update is recorded (multi-unit patch)"
      Priv_escalation
      [
        ( "kernel/audit.c",
          "int sys_audit_log(int event) {\n  audit_ring[audit_slot(audit_pos)] = event;\n  audit_pos = audit_pos + 1;\n  return 0;\n}",
          "int sys_audit_log(int event) {\n  audit_ring[audit_slot(audit_pos)] = event;\n  audit_pos = audit_pos + 1;\n  return 0;\n}\n\nint audit_priv_ring[16];\nint audit_priv_pos = 0;\nint audit_priv_by_kind[8];\nint audit_priv_dropped = 0;\n\nstatic int priv_slot(int p) {\n  int s = p;\n  if (s < 0)\n    s = 0;\n  return s % 16;\n}\n\nvoid audit_priv_event(int kind, int arg) {\n  int word;\n  if (kind < 0 || kind >= 8) {\n    audit_priv_dropped = audit_priv_dropped + 1;\n    return;\n  }\n  word = (kind << 24) | (arg & 16777215);\n  audit_priv_ring[priv_slot(audit_priv_pos)] = word;\n  audit_priv_pos = audit_priv_pos + 1;\n  audit_priv_by_kind[kind] = audit_priv_by_kind[kind] + 1;\n}\n\nint audit_priv_count() {\n  return audit_priv_pos;\n}\n\nint audit_priv_summary(int kind) {\n  if (kind < 0 || kind >= 8)\n    return -1;\n  return audit_priv_by_kind[kind];\n}\n\nvoid audit_priv_reset() {\n  int i;\n  if (__getuid() != 0)\n    return;\n  for (i = 0; i < 16; i = i + 1)\n    audit_priv_ring[priv_slot(i)] = 0;\n  for (i = 0; i < 8; i = i + 1)\n    audit_priv_by_kind[i] = 0;\n  audit_priv_pos = 0;\n  audit_priv_dropped = 0;\n}\n\nint audit_priv_read(int idx) {\n  if (__getuid() != 0)\n    return -1;\n  if (idx < 0 || idx >= 16)\n    return -1;\n  return audit_priv_ring[priv_slot(idx)];\n}"
        );
        ( "kernel/creds.c",
          "int sys_setuid(int uid) {\n  if (__getuid() != 0)\n    return -1;\n  __setuid(uid);\n  return 0;\n}",
          "void audit_priv_event(int kind, int arg);\n\nint sys_setuid(int uid) {\n  if (__getuid() != 0)\n    return -1;\n  audit_priv_event(1, uid);\n  __setuid(uid);\n  return 0;\n}"
        );
        ( "kernel/creds.c",
          "int sys_capset(int caps) {\n  if (__getuid() != 0)\n    return -1;\n  cur_caps = caps;\n  return 0;\n}",
          "int sys_capset(int caps) {\n  if (__getuid() != 0)\n    return -1;\n  audit_priv_event(2, caps);\n  cur_caps = caps;\n  return 0;\n}"
        );
        ( "kernel/creds.c",
          "  if (op == 1) {\n    __setuid(arg);\n    return 0;\n  }",
          "  if (op == 1) {\n    audit_priv_event(3, arg);\n    __setuid(arg);\n    return 0;\n  }"
        );
        ( "kernel/misc.c",
          "int sys_set_hook(int v) {\n  kernel_hook = v;\n  return 0;\n}",
          "void audit_priv_event(int kind, int arg);\n\nint sys_set_hook(int v) {\n  audit_priv_event(4, v);\n  kernel_hook = v;\n  return 0;\n}"
        );
        ( "kernel/time.c",
          "int sys_time_set(int t) {\n  time_offset = t - __gettick();\n  clock_set = 1;\n  return 0;\n}",
          "void audit_priv_event(int kind, int arg);\n\nint sys_time_set(int t) {\n  audit_priv_event(5, t);\n  time_offset = t - __gettick();\n  clock_set = 1;\n  return 0;\n}"
        );
        ( "kernel/quota.c",
          "int sys_quota_set(int uid, int limit) {\n  if (__getuid() != 0)\n    return -1;\n  quota_table[uid & 7] = limit;\n  return 0;\n}",
          "void audit_priv_event(int kind, int arg);\n\nint sys_quota_set(int uid, int limit) {\n  if (__getuid() != 0)\n    return -1;\n  audit_priv_event(6, uid);\n  quota_table[uid & 7] = limit;\n  return 0;\n}"
        );
        ( "kernel/fs.c",
          "struct file {\n  int inode;\n  int mode;\n  int owner;\n  int size;\n};",
          "void audit_priv_event(int kind, int arg);\n\nstruct file {\n  int inode;\n  int mode;\n  int owner;\n  int size;\n};"
        );
        ( "kernel/fs.c",
          "  if (attr == 2) {\n    f->owner = value;\n    return 0;\n  }",
          "  if (attr == 2) {\n    audit_priv_event(7, value);\n    f->owner = value;\n    return 0;\n  }"
        );
        ( "kernel/tty.c",
          "int sys_tty_ioctl(int op, int arg) {\n  if (op == 1) {\n    if (!is_owner() && __getuid() != 0)\n      return -1;\n    tty_mode = arg;\n    return 0;\n  }",
          "void audit_priv_event(int kind, int arg);\n\nint sys_tty_ioctl(int op, int arg) {\n  if (op == 1) {\n    if (!is_owner() && __getuid() != 0)\n      return -1;\n    audit_priv_event(0, arg);\n    tty_mode = arg;\n    return 0;\n  }"
        );
        ( "kernel/signal.c",
          "int sys_sig_mask(int mask) {\n  sig_mask_word = sig_mask_word | mask;\n  masks_used = 1;\n  return sig_mask_word;\n}",
          "void audit_priv_event(int kind, int arg);\n\nint sys_sig_mask(int mask) {\n  audit_priv_event(0, mask);\n  sig_mask_word = sig_mask_word | mask;\n  masks_used = 1;\n  return sig_mask_word;\n}"
        );
        ( "kernel/keyring.c",
          "int sys_key_add(int payload) {\n  struct kkey *k;",
          "void audit_priv_event(int kind, int arg);\n\nint sys_key_add(int payload) {\n  struct kkey *k;\n  audit_priv_event(0, payload);"
        );
        ( "kernel/mm.c",
          "int sys_mm_brk(int n) {",
          "void audit_priv_event(int kind, int arg);\n\nint sys_mm_brk(int n) {\n  audit_priv_event(0, n);"
        );
      ];
  ]

(* ===== Table 1: patches requiring custom update-time code ===== *)

let custom_quota =
  mk "CVE-2008-0007" "kernel/quota.c"
    "uid-0 quota must default to four times the base allowance; changes \
     quota_init, so existing tables need a fixup"
    Priv_escalation
    ~custom:
      (Changes_data_init,
       {|
static int quota_fix_saved[8];
static int quota_fix_applied = 0;
static int quota_fix_count = 0;

void quota_update_existing() {
  int i;
  int old;
  int fixed;
  fixed = 0;
  for (i = 0; i < 8; i = i + 1) {
    old = quota_table[i];
    quota_fix_saved[i] = old;
    if (old < 0) {
      quota_table[i] = 0;
      fixed = fixed + 1;
    }
    if (i == 0) {
      if (quota_table[i] == quota_default) {
        quota_table[i] = quota_default * 4;
        fixed = fixed + 1;
      }
    }
    if (quota_used[i] < 0) {
      quota_used[i] = 0;
      fixed = fixed + 1;
    }
    if (quota_used[i] > quota_table[i]) {
      quota_used[i] = quota_table[i];
      fixed = fixed + 1;
    }
  }
  quota_fix_count = fixed;
  quota_fix_applied = 1;
}

void quota_revert_existing() {
  int i;
  if (quota_fix_applied == 0)
    return;
  for (i = 0; i < 8; i = i + 1)
    quota_table[i] = quota_fix_saved[i];
  quota_fix_applied = 0;
  quota_fix_count = 0;
}

static int quota_sane(int v) {
  if (v < 0)
    return 0;
  if (v > 1048576)
    return 0;
  return 1;
}

void quota_check_invariants() {
  int i;
  int bad;
  bad = 0;
  for (i = 0; i < 8; i = i + 1) {
    if (!quota_sane(quota_table[i]))
      bad = bad + 1;
    if (quota_used[i] > quota_table[i])
      bad = bad + 1;
  }
  if (bad > 0)
    quota_fix_count = 0 - bad;
}

ksplice_apply(quota_update_existing);
ksplice_post_apply(quota_check_invariants);
ksplice_reverse(quota_revert_existing);
|})
    [ ( "  for (i = 0; i < 8; i = i + 1) {\n    quota_table[i] = quota_default;\n    quota_used[i] = 0;\n  }",
        "  for (i = 0; i < 8; i = i + 1) {\n    if (i == 0)\n      quota_table[i] = quota_default * 4;\n    else\n      quota_table[i] = quota_default;\n    quota_used[i] = 0;\n  }"
      ) ]

let custom_fs =
  mk "CVE-2007-4571" "kernel/fs.c"
    "files must default to owner-readable mode; changes fs_init, so \
     existing table entries need the mode bit set"
    Info_disclosure
    ~custom:
      (Changes_data_init,
       {|
static int fs_fixed_entries = 0;

void fs_update_existing_modes() {
  int i;
  int n;
  n = 0;
  for (i = 0; i < 16; i = i + 1) {
    if (file_table[i].inode != 0) {
      if ((file_table[i].mode & 4) == 0) {
        file_table[i].mode = file_table[i].mode | 4;
        n = n + 1;
      }
    }
  }
  fs_fixed_entries = n;
}

void fs_report_fixups() {
  if (fs_fixed_entries > 0)
    __putc('+');
}

ksplice_apply(fs_update_existing_modes);
ksplice_post_apply(fs_report_fixups);
|})
    [ ( "    file_table[i].mode = 0;",
        "    file_table[i].mode = 4;" ) ]

let custom_time =
  mk "CVE-2007-3851" "kernel/time.c"
    "timezone offset must default to 60 minutes (explicit declaration \
     initializer change)"
    Priv_escalation
    ~custom:
      (Changes_data_init,
       {|
void tz_update_existing() { tz_minutes = 60; }

ksplice_apply(tz_update_existing);
|})
    [ ("int tz_minutes = 0;", "int tz_minutes = 60;") ]

let custom_log =
  mk "CVE-2006-5753" "kernel/log.c"
    "default log level raised to 2 (declaration initializer change)"
    Priv_escalation
    ~custom:
      (Changes_data_init,
       {|
void log_update_existing() { log_level = 2; }

ksplice_apply(log_update_existing);
|})
    [ ("int log_level = 1;", "int log_level = 2;") ]

let custom_keyring =
  mk "CVE-2006-2071" "kernel/keyring.c"
    "the boot key must be created owner-read-only; changes keyring_init, \
     so live keys need their permission bits rewritten"
    Priv_escalation
    ~custom:
      (Changes_data_init,
       {|
static int keyring_fix_done = 0;

void keyring_update_existing() {
  int i;
  int p;
  for (i = 0; i < key_count; i = i + 1) {
    p = key_table[i].perm;
    if (key_table[i].serial == 1) {
      key_table[i].perm = 2;
    }
    if (p > 7) {
      key_table[i].perm = p & 7;
    }
    if (key_table[i].owner < 0) {
      key_table[i].owner = 0;
    }
  }
  keyring_fix_done = 1;
}

void keyring_revert_existing() {
  if (keyring_fix_done == 0)
    return;
  if (key_count > 0)
    key_table[0].perm = 0;
  keyring_fix_done = 0;
}

ksplice_apply(keyring_update_existing);
ksplice_reverse(keyring_revert_existing);
|})
    [ ( "  key_table[0].perm = 0;",
        "  key_table[0].perm = 2;" ) ]

let custom_sock_backlog =
  mk "CVE-2006-1056" "kernel/sock.c"
    "sockets must default to a backlog of 16; changes sock_init, so live \
     sockets need the field populated"
    Info_disclosure
    ~custom:
      (Changes_data_init,
       {|
void sock_update_existing_backlog() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    if (sock_table[i].backlog == 0)
      sock_table[i].backlog = 16;
    if (sock_table[i].backlog < 0)
      sock_table[i].backlog = 16;
  }
}

ksplice_apply(sock_update_existing_backlog);
|})
    [ ( "    sock_table[i].backlog = 0;",
        "    sock_table[i].backlog = 16;" ) ]

let custom_random =
  mk "CVE-2005-3179" "kernel/random.c"
    "pool mixing gains a second keyed round; changes the mixing routine \
     run at init, so an already-mixed pool must be re-keyed in place"
    Priv_escalation
    ~custom:
      (Changes_data_init,
       {|
static int rekey_rounds = 0;

void random_rekey_existing() {
  int i;
  int v;
  if (pool_mixed == 0) {
    rekey_rounds = 0;
    return;
  }
  for (i = 0; i < 4; i = i + 1) {
    v = pool[i];
    v = v ^ 355;
    v = mix(v);
    pool[i] = v;
  }
  rekey_rounds = rekey_rounds + 1;
}

void random_unkey_existing() {
  int i;
  if (rekey_rounds == 0)
    return;
  for (i = 0; i < 4; i = i + 1) {
    if (pool[i] == 0)
      pool[i] = 1;
  }
  rekey_rounds = 0;
}

ksplice_apply(random_rekey_existing);
ksplice_reverse(random_unkey_existing);
|})
    [ ( "  for (i = 0; i < 4; i = i + 1)\n    pool[i] = mix(pool[i]);\n  pool_mixed = 1;",
        "  for (i = 0; i < 4; i = i + 1)\n    pool[i] = mix(pool[i]);\n  for (i = 0; i < 4; i = i + 1)\n    pool[i] = mix(pool[i] ^ 355);\n  pool_mixed = 1;"
      ) ]

let custom_sock_shadow =
  mk "CVE-2005-2709" "kernel/sock.c"
    "peer checks need a per-socket peer uid; upstream added a struct \
     field — the hot update keeps the layout and attaches the field as a \
     shadow data structure (DynAMOS method, §5.3)"
    Priv_escalation
    ~custom:
      (Adds_struct_field,
       {|
static int sock_shadow_attached = 0;
static int sock_shadow_errors = 0;
static int sock_shadow_verified = 0;
static int sock_shadow_in_progress = 0;

static int sock_default_peer(struct sock *s) {
  if (s->state == 0)
    return 0;
  if (s->opt_flags < 0)
    return 0;
  return 0;
}

void sock_attach_shadows() {
  int i;
  int n;
  int *p;
  struct sock *s;
  if (sock_shadow_in_progress != 0)
    return;
  sock_shadow_in_progress = 1;
  n = 0;
  sock_shadow_errors = 0;
  for (i = 0; i < 8; i = i + 1) {
    s = &sock_table[i];
    p = (int*)__shadow_attach((int)s, 1, 4);
    if (p == 0) {
      sock_shadow_errors = sock_shadow_errors + 1;
    }
    if (p != 0) {
      *p = sock_default_peer(s);
      n = n + 1;
    }
  }
  sock_shadow_attached = n;
  sock_shadow_in_progress = 0;
}

void sock_verify_shadows() {
  int i;
  int n;
  int *p;
  struct sock *s;
  n = 0;
  for (i = 0; i < 8; i = i + 1) {
    s = &sock_table[i];
    p = (int*)__shadow_get((int)s, 1);
    if (p != 0)
      n = n + 1;
  }
  sock_shadow_verified = n;
}

void sock_detach_shadows() {
  int i;
  struct sock *s;
  if (sock_shadow_in_progress != 0)
    return;
  sock_shadow_in_progress = 1;
  for (i = 0; i < 8; i = i + 1) {
    s = &sock_table[i];
    __shadow_detach((int)s, 1);
  }
  sock_shadow_attached = 0;
  sock_shadow_verified = 0;
  sock_shadow_in_progress = 0;
}

int sock_shadow_status() {
  return sock_shadow_attached;
}

ksplice_apply(sock_attach_shadows);
ksplice_post_apply(sock_verify_shadows);
ksplice_reverse(sock_detach_shadows);
|})
    [
      ( "  if (op == 2)\n    return s->opt_flags;\n  if (op == 3)\n    return s->state;\n  return -1;\n}",
        "  if (op == 2)\n    return s->opt_flags;\n  if (op == 3)\n    return s->state;\n  if (op == 4) {\n    int *peer = (int*)__shadow_get((int)s, 1);\n    if (peer == 0)\n      return -1;\n    *peer = val;\n    return 0;\n  }\n  if (op == 5) {\n    int *peer = (int*)__shadow_get((int)s, 1);\n    if (peer == 0)\n      return -1;\n    return *peer;\n  }\n  return -1;\n}"
      );
      ( "int sock_peer_allows(int idx) {\n  struct sock *s = &sock_table[idx & 7];\n  if (s->opt_flags == 0)\n    return 0;\n  return 1;\n}",
        "int sock_peer_allows(int idx) {\n  struct sock *s = &sock_table[idx & 7];\n  int *peer = (int*)__shadow_get((int)s, 1);\n  if (peer == 0)\n    return 0;\n  if (*peer == 0)\n    return 0;\n  return 1;\n}"
      );
    ]

let customs =
  [ custom_quota; custom_fs; custom_time; custom_log; custom_keyring;
    custom_sock_backlog; custom_random; custom_sock_shadow ]

(* ===== shadow-hook extras =====

   Struct-layout extensions carried by cumulative updates: each keeps
   the running layout and attaches the new field as shadow data, with
   the side table constructed and destroyed by the dedicated
   [ksplice_shadow_ctor]/[ksplice_shadow_dtor] hooks (§5.3) instead of
   the generic apply hooks. Kept out of [all] so the 64-CVE evaluation
   corpus stays byte-for-byte what the paper's Figure 3 counts. *)

let shadow_fs_owner =
  mk "CVE-2008-1375" "kernel/fs.c"
    "chown must be restricted to the uid a file was opened with; \
     upstream adds an orig_owner field to struct file — the hot update \
     keeps the layout and attaches the field as shadow data built by \
     the shadow constructor (§5.3)"
    Priv_escalation
    ~custom:
      (Adds_struct_field,
       {|
static int fs_shadow_attached = 0;

void fs_attach_owner_shadows() {
  int i;
  int *p;
  int n;
  n = 0;
  for (i = 0; i < 16; i = i + 1) {
    p = (int*)__shadow_attach((int)&file_table[i], 2, 4);
    if (p != 0) {
      *p = file_table[i].owner;
      n = n + 1;
    }
  }
  fs_shadow_attached = n;
}

void fs_detach_owner_shadows() {
  int i;
  for (i = 0; i < 16; i = i + 1)
    __shadow_detach((int)&file_table[i], 2);
  fs_shadow_attached = 0;
}

int fs_shadow_status() {
  return fs_shadow_attached;
}

ksplice_shadow_ctor(fs_attach_owner_shadows);
ksplice_shadow_dtor(fs_detach_owner_shadows);
|})
    [ ( "int sys_fs_open(int inode, int mode) {\n  int i;",
        "int sys_fs_open(int inode, int mode) {\n  int i;\n  int *owner_shadow;" );
      ( "  file_table[i].owner = __getuid();\n  file_table[i].size = 0;\n  file_count = file_count + 1;\n  return i;",
        "  file_table[i].owner = __getuid();\n  file_table[i].size = 0;\n  owner_shadow = (int*)__shadow_attach((int)&file_table[i], 2, 4);\n  if (owner_shadow != 0)\n    *owner_shadow = __getuid();\n  file_count = file_count + 1;\n  return i;" );
      ( "  if (attr == 2) {\n    f->owner = value;\n    return 0;\n  }",
        "  if (attr == 2) {\n    int *orig = (int*)__shadow_get((int)f, 2);\n    if (orig == 0)\n      return -1;\n    if (__getuid() != 0 && __getuid() != *orig)\n      return -1;\n    f->owner = value;\n    return 0;\n  }" );
    ]

let shadow_key_revoke =
  mk "CVE-2007-4997" "kernel/keyring.c"
    "keys cannot be revoked, so a leaked serial stays readable forever; \
     upstream adds a revoked field to struct kkey — the hot update \
     keeps the layout and attaches the flag as shadow data built by \
     the shadow constructor (§5.3)"
    Info_disclosure
    ~custom:
      (Adds_struct_field,
       {|
static int key_shadow_attached = 0;

void key_attach_revoke_shadows() {
  int i;
  int *p;
  int n;
  n = 0;
  for (i = 0; i < 8; i = i + 1) {
    p = (int*)__shadow_attach((int)&key_table[i], 3, 4);
    if (p != 0) {
      *p = 0;
      n = n + 1;
    }
  }
  key_shadow_attached = n;
}

void key_detach_revoke_shadows() {
  int i;
  for (i = 0; i < 8; i = i + 1)
    __shadow_detach((int)&key_table[i], 3);
  key_shadow_attached = 0;
}

int key_shadow_status() {
  return key_shadow_attached;
}

ksplice_shadow_ctor(key_attach_revoke_shadows);
ksplice_shadow_dtor(key_detach_revoke_shadows);
|})
    [ ( "int sys_key_add(int payload) {\n  struct kkey *k;\n  if (key_count >= 8)\n    return -1;",
        "int sys_key_add(int payload) {\n  struct kkey *k;\n  int i;\n  int *rev;\n  if (payload < 0) {\n    for (i = 0; i < key_count; i = i + 1) {\n      if (key_table[i].serial == 0 - payload) {\n        if (key_table[i].owner != __getuid() && __getuid() != 0)\n          return -1;\n        rev = (int*)__shadow_get((int)&key_table[i], 3);\n        if (rev == 0)\n          return -1;\n        *rev = 1;\n        return 0;\n      }\n    }\n    return -1;\n  }\n  if (key_count >= 8)\n    return -1;" );
      ( "  k->payload = payload;\n  key_count = key_count + 1;\n  return k->serial;",
        "  k->payload = payload;\n  rev = (int*)__shadow_attach((int)k, 3, 4);\n  if (rev != 0)\n    *rev = 0;\n  key_count = key_count + 1;\n  return k->serial;" );
      ( "    if (key_table[i].serial == serial) {\n      if (key_table[i].owner != __getuid() && serial != 1)\n        return -1;\n      return key_table[i].payload;\n    }",
        "    if (key_table[i].serial == serial) {\n      int *rev2 = (int*)__shadow_get((int)&key_table[i], 3);\n      if (rev2 != 0 && *rev2 != 0)\n        return -1;\n      if (key_table[i].owner != __getuid() && serial != 1)\n        return -1;\n      return key_table[i].payload;\n    }" );
    ]

let shadow_extras = [ shadow_fs_owner; shadow_key_revoke ]

(* ===== differencing extras =====

   Not part of the paper's 64-CVE corpus: rows the minimal-differencing
   sweep uses to demonstrate data-referent detection and closure
   shipping end to end. The banner fix replaces a string literal —
   [banner_csum]'s instruction stream is untouched, but its relocation
   now points at fresh read-only data, so the function must ship as a
   data referent, the new string slice rides along by closure, and the
   cached checksum (state {e derived} from the string) is refreshed by
   an apply hook through the trampolined function. *)

let banner_old = "ksp 1.0 [debug keys on]"
let banner_new = "ksp 1.0 [secured]"

let diff_banner =
  mk "DIFF-2009-0001" "kernel/banner.c"
    "the boot banner discloses that debug keys are enabled; the fix \
     replaces the string, leaving banner_csum's code unchanged but \
     moving its relocation onto fresh read-only data, and the cached \
     checksum must be recomputed at apply time"
    Info_disclosure
    ~custom:
      (Updates_derived_state,
       {|
void banner_apply_refresh() { banner_refresh(); }

ksplice_apply(banner_apply_refresh);
|})
    [ ( "char *b = \"ksp 1.0 [debug keys on]\";",
        "char *b = \"ksp 1.0 [secured]\";" ) ]

let diff_extras = [ diff_banner ]

let all =
  [ cve_entry_signed; cve_prctl; cve_vmsplice; cve_proc_leak; cve_dst_ca ]
  @ small_inlined @ small_other @ medium @ large @ customs

let find id =
  List.find_opt
    (fun c -> String.equal c.id id)
    (all @ shadow_extras @ diff_extras)

(* --- tree construction --- *)

let replace_once ~what file old_s new_s content =
  let lo = String.length old_s in
  let n = String.length content in
  let rec search i =
    if i + lo > n then
      failwith
        (Printf.sprintf "%s: snippet not found in %s: %s" what file
           (String.sub old_s 0 (min 60 lo)))
    else if String.sub content i lo = old_s then i
    else search (i + 1)
  in
  let i = search 0 in
  String.sub content 0 i ^ new_s
  ^ String.sub content (i + lo) (n - i - lo)

let fixed_tree cve base =
  List.fold_left
    (fun tree (file, old_s, new_s) ->
      match Patchfmt.Source_tree.find tree file with
      | None -> failwith (Printf.sprintf "%s: no file %s" cve.id file)
      | Some content ->
        Patchfmt.Source_tree.add tree file
          (replace_once ~what:cve.id file old_s new_s content))
    base cve.fix

let hot_tree cve base =
  let t = fixed_tree cve base in
  match cve.custom with
  | None -> t
  | Some (_, code) -> (
    match Patchfmt.Source_tree.find t cve.file with
    | None -> failwith (Printf.sprintf "%s: no file %s" cve.id cve.file)
    | Some content ->
      Patchfmt.Source_tree.add t cve.file (content ^ code))

let fixed_tree_opt cve tree =
  match fixed_tree cve tree with
  | t -> Some t
  | exception Failure _ -> None

let applies_to cve tree = Option.is_some (fixed_tree_opt cve tree)

let hot_tree_opt cve tree =
  match fixed_tree_opt cve tree with
  | None -> None
  | Some t -> (
    match cve.custom with
    | None -> Some t
    | Some (_, code) -> (
      match Patchfmt.Source_tree.find t cve.file with
      | None -> None
      | Some content ->
        Some (Patchfmt.Source_tree.add t cve.file (content ^ code))))

let mainline_patch cve base = Patchfmt.Diff.diff_trees base (fixed_tree cve base)
let hot_patch cve base = Patchfmt.Diff.diff_trees base (hot_tree cve base)

let custom_code_lines cve =
  match cve.custom with
  | None -> 0
  | Some (_, code) ->
    String.split_on_char '\n' code
    |> List.filter (fun l ->
         let l = String.trim l in
         String.length l > 0 && l.[String.length l - 1] = ';')
    |> List.length
