module Machine = Kernel.Machine
module Txn = Ksplice.Txn
module Faultinj = Ksplice.Faultinj
module Apply = Ksplice.Apply
module Create = Ksplice.Create

type cell =
  | Rolled_back
  | Benign
  | Not_applicable
  | Violation of string list

let cell_char = function
  | Rolled_back -> 'R'
  | Benign -> 'B'
  | Not_applicable -> '-'
  | Violation _ -> '!'

type row = {
  cve_id : string;
  cells : (Txn.step * cell) list;
  recovered : bool;
  notes : string list;
}

type report = {
  rows : row list;
  total_cells : int;
  rolled_back : int;
  benign : int;
  not_applicable : int;
  violations : int;
  recovery_failures : int;
}

let err_str e = Format.asprintf "%a" Apply.pp_error e

let create_update (cve : Cve.t) base =
  let patch = Cve.hot_patch cve base in
  match
    Create.create
      { source = base; patch; update_id = cve.id; description = cve.desc }
  with
  | Ok c -> c.Create.update
  | Error e ->
    failwith
      (Format.asprintf "%s: create failed: %a" cve.id Create.pp_error e)

(* One (cve, step) cell: snapshot, apply under injection, judge. The
   machine is reused across cells — rollback (and undo, for cells where
   the apply succeeded) must return it to a consistent state, which the
   next cell's snapshot then re-baselines. *)
let run_cell mgr cve_id update step ~seed =
  let m = Apply.machine mgr in
  let snap = Machine.snapshot m in
  let plan = { Faultinj.step; kind = Faultinj.kind_for_step step; seed } in
  let session = Faultinj.make m plan in
  let result = Apply.apply mgr ~inject:session update in
  Faultinj.disarm session;
  let fired = Faultinj.fired session in
  match result with
  | Error e ->
    let diff = Machine.diff_snapshot m snap in
    if diff <> [] then
      Violation
        (Format.asprintf "abort of %a left the machine diverged: %s"
           Faultinj.pp_plan plan (err_str e)
         :: diff)
    else if not fired then
      Violation
        [ Format.asprintf
            "%a never fired yet apply failed: %s" Faultinj.pp_plan plan
            (err_str e) ]
    else Rolled_back
  | Ok _ ->
    (* the apply went through; it must be a benign or unfired fault, and
       the update must verify and undo cleanly for the next cell *)
    let verdict =
      if fired && Faultinj.expect_abort plan.kind then
        Violation
          [ Format.asprintf "%a fired but apply succeeded"
              Faultinj.pp_plan plan ]
      else
        match Apply.verify mgr with
        | Error e ->
          Violation
            [ Format.asprintf "apply under %a did not verify: %s"
                Faultinj.pp_plan plan (err_str e) ]
        | Ok () -> if fired then Benign else Not_applicable
    in
    (match Apply.undo mgr cve_id with
     | Ok () -> verdict
     | Error e -> (
       match verdict with
       | Violation msgs ->
         Violation (msgs @ [ "and undo failed: " ^ err_str e ])
       | _ -> Violation [ "undo after surviving apply failed: " ^ err_str e ]))

(* After the faulted cells: the CVE's hot update must still apply
   cleanly on the same machine, hold up under stress, and (where an
   exploit exists) block it. *)
let check_recovery (b : Boot.booted) mgr (cve : Cve.t) update =
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := s :: !notes) fmt in
  (match Apply.apply mgr update with
   | Error e -> note "clean re-apply failed: %s" (err_str e)
   | Ok _ -> (
     (match Apply.verify mgr with
      | Ok () -> ()
      | Error e -> note "verify after re-apply: %s" (err_str e));
     let r = Stress.run b ~threads:2 ~iterations:5 in
     if not r.ok then
       note "stress after re-apply: %s" (String.concat "; " r.failures);
     match Exploits.find cve.id with
     | None -> ()
     | Some ex ->
       let o = ex.run b in
       if o.succeeded then
         note "exploit %s still succeeds after re-apply: %s" ex.name o.detail));
  (!notes = [], List.rev !notes)

let sweep_cve ~seed index (cve : Cve.t) base =
  let update = create_update cve base in
  let b = Boot.boot () in
  let mgr = Apply.init b.machine in
  let cells =
    List.mapi
      (fun si step ->
        let cell_seed = seed + (1009 * index) + (31 * si) in
        (step, run_cell mgr cve.id update step ~seed:cell_seed))
      Txn.all_steps
  in
  let recovered, notes = check_recovery b mgr cve update in
  { cve_id = cve.id; cells; recovered; notes }

let summarize rows =
  let count f =
    List.fold_left
      (fun acc r ->
        acc + List.length (List.filter (fun (_, c) -> f c) r.cells))
      0 rows
  in
  {
    rows;
    total_cells = count (fun _ -> true);
    rolled_back = count (fun c -> c = Rolled_back);
    benign = count (fun c -> c = Benign);
    not_applicable = count (fun c -> c = Not_applicable);
    violations =
      count (function Violation _ -> true | _ -> false);
    recovery_failures =
      List.length (List.filter (fun r -> not r.recovered) rows);
  }

let run ?(seed = 0) ?cves ?progress ?domains () =
  let cves = Option.value cves ~default:Cve.all in
  let base = Base_kernel.tree () in
  (* each CVE sweeps on its own freshly booted machine, so rows are
     independent and sweep across the domain pool; progress lines arrive
     in completion order (serialised by a mutex), rows in corpus order *)
  let progress_m = Mutex.create () in
  let emit line =
    match progress with
    | None -> ()
    | Some f ->
      Mutex.lock progress_m;
      f line;
      Mutex.unlock progress_m
  in
  let rows =
    Parallel.map ?domains
      (fun (i, cve) ->
        let row = sweep_cve ~seed i cve base in
        emit
          (Printf.sprintf "%-14s %s %s" row.cve_id
             (String.init (List.length row.cells) (fun j ->
                  cell_char (snd (List.nth row.cells j))))
             (if row.recovered then "recovered" else "RECOVERY FAILED"));
        row)
      (List.mapi (fun i cve -> (i, cve)) cves)
  in
  summarize rows

let ok r = r.violations = 0 && r.recovery_failures = 0

let pp_matrix ppf r =
  let steps = Txn.all_steps in
  (* header: abbreviated step names, vertical *)
  Format.fprintf ppf "fault-injection sweep: %d CVEs x %d steps@\n@\n"
    (List.length r.rows) (List.length steps);
  Format.fprintf ppf "%-16s %s  recovered@\n" "CVE"
    (String.concat " "
       (List.map (fun s -> String.sub (Txn.step_name s) 0 2) steps));
  List.iter
    (fun row ->
      Format.fprintf ppf "%-16s %s  %s@\n" row.cve_id
        (String.concat "  "
           (List.map (fun (_, c) -> String.make 1 (cell_char c)) row.cells))
        (if row.recovered then "yes" else "NO"))
    r.rows;
  Format.fprintf ppf
    "@\nR rolled back clean  B benign  - fault never fired  ! violation@\n";
  Format.fprintf ppf
    "cells: %d  rolled-back: %d  benign: %d  n/a: %d  violations: %d  \
     recovery failures: %d@\n"
    r.total_cells r.rolled_back r.benign r.not_applicable r.violations
    r.recovery_failures;
  List.iter
    (fun row ->
      List.iter
        (fun (step, c) ->
          match c with
          | Violation msgs ->
            Format.fprintf ppf "VIOLATION %s @@ %s:@\n" row.cve_id
              (Txn.step_name step);
            List.iter (fun m -> Format.fprintf ppf "  %s@\n" m) msgs
          | _ -> ())
        row.cells;
      if not row.recovered then begin
        Format.fprintf ppf "RECOVERY FAILURE %s:@\n" row.cve_id;
        List.iter (fun m -> Format.fprintf ppf "  %s@\n" m) row.notes
      end)
    r.rows;
  if ok r then
    Format.fprintf ppf
      "all faulted applies rolled back byte-identically; all CVEs \
       re-applied, verified, stressed%s@\n"
      " and exploit-checked"
