module Machine = Kernel.Machine
module Txn = Ksplice.Txn
module Faultinj = Ksplice.Faultinj
module Apply = Ksplice.Apply
module Create = Ksplice.Create

type cell =
  | Rolled_back
  | Benign
  | Not_applicable
  | Violation of string list

let cell_char = function
  | Rolled_back -> 'R'
  | Benign -> 'B'
  | Not_applicable -> '-'
  | Violation _ -> '!'

type row = {
  cve_id : string;
  cells : (Txn.step * cell) list;
  recovered : bool;
  notes : string list;
}

type report = {
  rows : row list;
  total_cells : int;
  rolled_back : int;
  benign : int;
  not_applicable : int;
  violations : int;
  recovery_failures : int;
}

let err_str e = Format.asprintf "%a" Apply.pp_error e

let create_update (cve : Cve.t) base =
  let patch = Cve.hot_patch cve base in
  match
    Create.create
      { source = base; patch; update_id = cve.id; description = cve.desc }
  with
  | Ok c -> c.Create.update
  | Error e ->
    failwith
      (Format.asprintf "%s: create failed: %a" cve.id Create.pp_error e)

(* One (cve, step) cell: snapshot, apply under injection, judge. The
   machine is reused across cells — rollback (and undo, for cells where
   the apply succeeded) must return it to a consistent state, which the
   next cell's snapshot then re-baselines. *)
let run_cell mgr cve_id update step ~seed =
  let m = Apply.machine mgr in
  let snap = Machine.snapshot m in
  let plan = { Faultinj.step; kind = Faultinj.kind_for_step step; seed } in
  let session = Faultinj.make m plan in
  let result = Apply.apply mgr ~inject:session update in
  Faultinj.disarm session;
  let fired = Faultinj.fired session in
  match result with
  | Error e ->
    let diff = Machine.diff_snapshot m snap in
    if diff <> [] then
      Violation
        (Format.asprintf "abort of %a left the machine diverged: %s"
           Faultinj.pp_plan plan (err_str e)
         :: diff)
    else if not fired then
      Violation
        [ Format.asprintf
            "%a never fired yet apply failed: %s" Faultinj.pp_plan plan
            (err_str e) ]
    else Rolled_back
  | Ok _ ->
    (* the apply went through; it must be a benign or unfired fault, and
       the update must verify and undo cleanly for the next cell *)
    let verdict =
      if fired && Faultinj.expect_abort plan.kind then
        Violation
          [ Format.asprintf "%a fired but apply succeeded"
              Faultinj.pp_plan plan ]
      else
        match Apply.verify mgr with
        | Error e ->
          Violation
            [ Format.asprintf "apply under %a did not verify: %s"
                Faultinj.pp_plan plan (err_str e) ]
        | Ok () -> if fired then Benign else Not_applicable
    in
    (match Apply.undo mgr cve_id with
     | Ok () -> verdict
     | Error e -> (
       match verdict with
       | Violation msgs ->
         Violation (msgs @ [ "and undo failed: " ^ err_str e ])
       | _ -> Violation [ "undo after surviving apply failed: " ^ err_str e ]))

(* After the faulted cells: the CVE's hot update must still apply
   cleanly on the same machine, hold up under stress, and (where an
   exploit exists) block it. *)
let check_recovery (b : Boot.booted) mgr (cve : Cve.t) update =
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := s :: !notes) fmt in
  (match Apply.apply mgr update with
   | Error e -> note "clean re-apply failed: %s" (err_str e)
   | Ok _ -> (
     (match Apply.verify mgr with
      | Ok () -> ()
      | Error e -> note "verify after re-apply: %s" (err_str e));
     let r = Stress.run b ~threads:2 ~iterations:5 in
     if not r.ok then
       note "stress after re-apply: %s" (String.concat "; " r.failures);
     match Exploits.find cve.id with
     | None -> ()
     | Some ex ->
       let o = ex.run b in
       if o.succeeded then
         note "exploit %s still succeeds after re-apply: %s" ex.name o.detail));
  (!notes = [], List.rev !notes)

let sweep_cve ~seed index (cve : Cve.t) base =
  let update = create_update cve base in
  let b = Boot.boot () in
  let mgr = Apply.init b.machine in
  let cells =
    List.mapi
      (fun si step ->
        let cell_seed = seed + (1009 * index) + (31 * si) in
        (step, run_cell mgr cve.id update step ~seed:cell_seed))
      Txn.all_steps
  in
  let recovered, notes = check_recovery b mgr cve update in
  { cve_id = cve.id; cells; recovered; notes }

let summarize rows =
  let count f =
    List.fold_left
      (fun acc r ->
        acc + List.length (List.filter (fun (_, c) -> f c) r.cells))
      0 rows
  in
  {
    rows;
    total_cells = count (fun _ -> true);
    rolled_back = count (fun c -> c = Rolled_back);
    benign = count (fun c -> c = Benign);
    not_applicable = count (fun c -> c = Not_applicable);
    violations =
      count (function Violation _ -> true | _ -> false);
    recovery_failures =
      List.length (List.filter (fun r -> not r.recovered) rows);
  }

let run ?(seed = 0) ?cves ?progress ?domains () =
  let cves = Option.value cves ~default:Cve.all in
  let base = Base_kernel.tree () in
  (* each CVE sweeps on its own freshly booted machine, so rows are
     independent and sweep across the domain pool; progress lines arrive
     in completion order (serialised by a mutex), rows in corpus order *)
  let progress_m = Mutex.create () in
  let emit line =
    match progress with
    | None -> ()
    | Some f ->
      Mutex.lock progress_m;
      f line;
      Mutex.unlock progress_m
  in
  let rows =
    Parallel.map ?domains
      (fun (i, cve) ->
        let row = sweep_cve ~seed i cve base in
        emit
          (Printf.sprintf "%-14s %s %s" row.cve_id
             (String.init (List.length row.cells) (fun j ->
                  cell_char (snd (List.nth row.cells j))))
             (if row.recovered then "recovered" else "RECOVERY FAILED"));
        row)
      (List.mapi (fun i cve -> (i, cve)) cves)
  in
  summarize rows

let ok r = r.violations = 0 && r.recovery_failures = 0

(* ---------- the supervised (manager-level) sweep ----------

   The transactional sweep above proves §5.2 for one apply; this one
   proves the supervision loop around it: every CVE is pushed through
   [Manager] under three hostile regimes, and each cell must reach a
   terminal state (liveness) with a clean rollback audit (safety). *)

type scenario = Injected | Adversarial | Unhealthy

let all_scenarios = [ Injected; Adversarial; Unhealthy ]

let scenario_name = function
  | Injected -> "injected"
  | Adversarial -> "adversarial"
  | Unhealthy -> "unhealthy"

let scenario_char = function
  | Injected -> 'I'
  | Adversarial -> 'A'
  | Unhealthy -> 'U'

type mcell = {
  mc_status : Manager.status;
  mc_attempts : int;
  mc_clock : int;
  mc_events : int;
  mc_violations : int;
  mc_notes : string list;  (* scenario-contract breaches; [] = passed *)
  mc_report : Report.Json.t;  (* the cell's full manager event log *)
}

type mrow = {
  m_cve : string;
  m_cells : (scenario * mcell) list;
}

type mreport = {
  m_rows : mrow list;
  m_cells_total : int;
  m_healthy : int;
  m_parked : int;
  m_quarantined : int;
  m_violations : int;
  m_failures : int;  (* cells with contract breaches *)
}

(* the health gate the manager runs after every successful apply: the
   CVE's exploit must be blocked (where one exists) and a short stress
   smoke must pass *)
let health_checks (b : Boot.booted) (cve : Cve.t) =
  let exploit =
    match Exploits.find cve.id with
    | None -> []
    | Some ex ->
      [ { Manager.hc_name = "exploit:" ^ ex.name;
          hc_probe =
            (fun () ->
              let o = ex.run b in
              if o.succeeded then
                Error ("exploit still succeeds: " ^ o.detail)
              else Ok ()) } ]
  in
  exploit
  @ [ { Manager.hc_name = "stress-smoke";
        hc_probe =
          (fun () ->
            let r = Stress.run b ~threads:2 ~iterations:3 in
            if r.ok then Ok ()
            else Error (String.concat "; " r.failures)) } ]

(* tight enough that the watchdog and retry queue actually trip in the
   adversarial and forced-not-quiescent cells, loose enough that a
   drainable blocker still converges *)
let manager_policy ~seed =
  { Manager.default_policy with
    seed; deadline = 12_000; retry_limit = 4; backoff_base = 300;
    backoff_cap = 2_000; jitter = 100 }

let run_mcell ~seed scenario (cve : Cve.t) update =
  let b = Boot.boot () in
  let ap = Apply.init b.machine in
  let mgr = Manager.create ~policy:(manager_policy ~seed) ap in
  let health = health_checks b cve in
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := s :: !notes) fmt in
  let session = ref None in
  (match scenario with
   | Injected ->
     (* one canonical fault, at a step chosen deterministically from
        (seed, cve) — armed for the first attempt only, so the retry
        path sees the transient heal *)
     let steps = Txn.all_steps in
     let si = abs (Hashtbl.hash (seed, cve.id)) mod List.length steps in
     let step = List.nth steps si in
     let plan =
       { Faultinj.step; kind = Faultinj.kind_for_step step; seed }
     in
     let s = Faultinj.make b.machine plan in
     session := Some (plan, s);
     Manager.submit mgr update ~health
       ~inject:(fun ~attempt -> if attempt = 1 then Some s else None)
   | Adversarial ->
     (* an adversarial scheduler: a thread parked at the entry of a
        function the update will replace — its pc sits in the §5.2
        guard range until the manager's backoff drains it *)
     (match update.Ksplice.Update.replaced_functions with
      | (_, cfn) :: _ ->
        let raw, _ = Ksplice.Update.split_canonical cfn in
        (match
           Machine.lookup_name b.machine raw
           |> List.filter (fun (s : Klink.Image.syminfo) ->
                  s.kind = `Func)
         with
         | [ s ] ->
           ignore
             (Machine.spawn b.machine ~name:"churner" ~uid:1
                ~entry:s.addr ~args:[ 1l ]
               : Machine.thread)
         | _ -> ())
      | [] -> ());
     Manager.submit mgr update ~health
   | Unhealthy ->
     (* the update applies fine but the gate must fail: a canary probe
        forces the auto-revert/quarantine path *)
     let canary =
       { Manager.hc_name = "canary";
         hc_probe = (fun () -> Error "deliberately failing probe") }
     in
     Manager.submit mgr update ~health:(health @ [ canary ]));
  Manager.run mgr;
  (match !session with Some (_, s) -> Faultinj.disarm s | None -> ());
  let st =
    match Manager.status mgr cve.id with
    | Some st -> st
    | None -> Manager.Waiting
  in
  let attempts = Manager.attempts mgr cve.id in
  (* liveness: Manager.run returned and the update is terminal *)
  (match st with
   | Manager.Waiting -> note "not terminal: still waiting after run"
   | _ -> ());
  (* safety: every abort, park, and auto-revert audited byte-identical *)
  if Manager.violations mgr > 0 then
    note "%d rollback-audit violations" (Manager.violations mgr);
  (* scenario contracts *)
  (match scenario with
   | Injected ->
     let plan, s = Option.get !session in
     let fired = Faultinj.fired s in
     (match st with
      | Manager.Applied_healthy ->
        if fired && Faultinj.expect_abort plan.kind then begin
          (* only a transient quiescence fault may heal on retry *)
          if plan.kind <> Faultinj.Forced_not_quiescent then
            note "%a fired yet update went healthy" Faultinj.pp_plan plan
          else if attempts < 2 then
            note "healed %a without a retry" Faultinj.pp_plan plan
        end
      | Manager.Parked (Manager.Rejected _) ->
        if not (fired && Faultinj.expect_abort plan.kind) then
          note "parked though %a never fired" Faultinj.pp_plan plan
      | Manager.Parked _ ->
        (* a quiescence park can't happen here: the machine is at rest
           and the fault is armed for the first attempt only *)
        note "unexpected park class under %a" Faultinj.pp_plan plan
      | st -> note "unexpected state %s" (Manager.status_name st));
     if st <> Manager.Applied_healthy && Apply.applied ap <> [] then
       note "non-healthy outcome left the update applied"
   | Adversarial ->
     (match st with
      | Manager.Applied_healthy | Manager.Parked (Manager.Exhausted_retries _)
        -> ()
      | st -> note "unexpected state %s" (Manager.status_name st));
     if st <> Manager.Applied_healthy && Apply.applied ap <> [] then
       note "parked update still applied"
   | Unhealthy ->
     (match st with
      | Manager.Quarantined { reverted = true; evidence } ->
        if
          not
            (List.exists (fun (n, _) -> String.equal n "canary") evidence)
        then note "quarantine evidence misses the canary probe"
      | Manager.Quarantined { reverted = false; _ } ->
        note "auto-revert failed; unhealthy update still live"
      | st -> note "unexpected state %s" (Manager.status_name st));
     if Apply.applied ap <> [] then
       note "quarantined update still on the applied stack");
  {
    mc_status = st;
    mc_attempts = attempts;
    mc_clock = Manager.now mgr;
    mc_events = List.length (Manager.events mgr);
    mc_violations = Manager.violations mgr;
    mc_notes = List.rev !notes;
    mc_report = Manager.report mgr;
  }

let msummarize rows =
  let count f =
    List.fold_left
      (fun acc r ->
        acc + List.length (List.filter (fun (_, c) -> f c) r.m_cells))
      0 rows
  in
  {
    m_rows = rows;
    m_cells_total = count (fun _ -> true);
    m_healthy = count (fun c -> c.mc_status = Manager.Applied_healthy);
    m_parked =
      count (fun c ->
          match c.mc_status with Manager.Parked _ -> true | _ -> false);
    m_quarantined =
      count (fun c ->
          match c.mc_status with
          | Manager.Quarantined _ -> true
          | _ -> false);
    m_violations =
      List.fold_left
        (fun acc r ->
          acc
          + List.fold_left
              (fun acc (_, c) -> acc + c.mc_violations)
              0 r.m_cells)
        0 rows;
    m_failures = count (fun c -> c.mc_notes <> []);
  }

let run_manager ?(seed = 0) ?cves ?(scenarios = all_scenarios) ?progress
    ?domains () =
  let cves = Option.value cves ~default:Cve.all in
  let base = Base_kernel.tree () in
  let progress_m = Mutex.create () in
  let emit line =
    match progress with
    | None -> ()
    | Some f ->
      Mutex.lock progress_m;
      f line;
      Mutex.unlock progress_m
  in
  let rows =
    Parallel.map ?domains
      (fun (i, cve) ->
        let update = create_update cve base in
        let cells =
          List.map
            (fun sc ->
              let cell_seed = seed + (1013 * i) + Hashtbl.hash (scenario_name sc) in
              (sc, run_mcell ~seed:cell_seed sc cve update))
            scenarios
        in
        let row = { m_cve = cve.id; m_cells = cells } in
        emit
          (Printf.sprintf "%-14s %s" row.m_cve
             (String.concat " "
                (List.map
                   (fun (sc, c) ->
                     Printf.sprintf "%c:%s%s" (scenario_char sc)
                       (Manager.status_name c.mc_status)
                       (if c.mc_notes = [] then "" else "(FAIL)"))
                   row.m_cells)));
        row)
      (List.mapi (fun i cve -> (i, cve)) cves)
  in
  msummarize rows

let manager_ok r = r.m_failures = 0 && r.m_violations = 0

let pp_manager ppf r =
  Format.fprintf ppf
    "supervised sweep: %d CVEs x %d scenarios@\n@\n"
    (List.length r.m_rows)
    (match r.m_rows with [] -> 0 | row :: _ -> List.length row.m_cells);
  List.iter
    (fun row ->
      Format.fprintf ppf "%-16s %s@\n" row.m_cve
        (String.concat "  "
           (List.map
              (fun (sc, c) ->
                Printf.sprintf "%c:%-16s a=%d t=%-6d%s" (scenario_char sc)
                  (Manager.status_name c.mc_status)
                  c.mc_attempts c.mc_clock
                  (if c.mc_notes = [] then "" else " FAIL"))
              row.m_cells)))
    r.m_rows;
  Format.fprintf ppf
    "@\ncells: %d  healthy: %d  parked: %d  quarantined: %d  \
     audit violations: %d  contract failures: %d@\n"
    r.m_cells_total r.m_healthy r.m_parked r.m_quarantined r.m_violations
    r.m_failures;
  List.iter
    (fun row ->
      List.iter
        (fun (sc, c) ->
          if c.mc_notes <> [] then begin
            Format.fprintf ppf "FAILURE %s @@ %s:@\n" row.m_cve
              (scenario_name sc);
            List.iter (fun m -> Format.fprintf ppf "  %s@\n" m) c.mc_notes
          end)
        row.m_cells)
    r.m_rows;
  if manager_ok r then
    Format.fprintf ppf
      "every update reached a terminal state; every abort, park and \
       auto-revert audited byte-identical@\n"

let pp_matrix ppf r =
  let steps = Txn.all_steps in
  (* header: abbreviated step names, vertical *)
  Format.fprintf ppf "fault-injection sweep: %d CVEs x %d steps@\n@\n"
    (List.length r.rows) (List.length steps);
  Format.fprintf ppf "%-16s %s  recovered@\n" "CVE"
    (String.concat " "
       (List.map (fun s -> String.sub (Txn.step_name s) 0 2) steps));
  List.iter
    (fun row ->
      Format.fprintf ppf "%-16s %s  %s@\n" row.cve_id
        (String.concat "  "
           (List.map (fun (_, c) -> String.make 1 (cell_char c)) row.cells))
        (if row.recovered then "yes" else "NO"))
    r.rows;
  Format.fprintf ppf
    "@\nR rolled back clean  B benign  - fault never fired  ! violation@\n";
  Format.fprintf ppf
    "cells: %d  rolled-back: %d  benign: %d  n/a: %d  violations: %d  \
     recovery failures: %d@\n"
    r.total_cells r.rolled_back r.benign r.not_applicable r.violations
    r.recovery_failures;
  List.iter
    (fun row ->
      List.iter
        (fun (step, c) ->
          match c with
          | Violation msgs ->
            Format.fprintf ppf "VIOLATION %s @@ %s:@\n" row.cve_id
              (Txn.step_name step);
            List.iter (fun m -> Format.fprintf ppf "  %s@\n" m) msgs
          | _ -> ())
        row.cells;
      if not row.recovered then begin
        Format.fprintf ppf "RECOVERY FAILURE %s:@\n" row.cve_id;
        List.iter (fun m -> Format.fprintf ppf "  %s@\n" m) row.notes
      end)
    r.rows;
  if ok r then
    Format.fprintf ppf
      "all faulted applies rolled back byte-identically; all CVEs \
       re-applied, verified, stressed%s@\n"
      " and exploit-checked"

(* ---------- the crash sweep: persistence under process death ----------

   The filesystem analogue of the apply sweep above: publish a CVE's
   update into a fresh on-disk repository, killing the simulated process
   at every i-th mutating I/O operation ([Vfs.Crash]); then reopen with
   a clean handle (the reboot) and assert the store recovers to
   fsck-clean with the chain atomically all-or-nothing, and that GC
   afterwards reclaims exactly the unreachable blobs. *)

module Repo = Ksplice.Repository
module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff

type crow = {
  cr_cve : string;
  cr_ops : int;  (* mutating I/O ops in a fault-free publish *)
  cr_published : int;  (* crash points after which the chain survived whole *)
  cr_absent : int;  (* crash points after which it vanished atomically *)
  cr_gc_swept : int;
  cr_gc_bytes : int;
  cr_notes : string list;  (* violations; [] = row passed *)
}

type crash_report = {
  c_rows : crow list;
  c_cells : int;
  c_published : int;
  c_absent : int;
  c_violations : int;
  c_gc_swept : int;
  c_gc_bytes : int;
}

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_tmp_dir f =
  let dir = Filename.temp_file "ksplcrash" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let publish_once ?vfs dir ~source ~patch ~update =
  match Repo.open_dir ?vfs dir with
  | Error e -> Error (Format.asprintf "open_dir: %a" Repo.pp_error e)
  | Ok repo -> (
    match Repo.publish repo ~source ~patch ~update with
    | Ok _ -> Ok ()
    | Error e -> Error (Format.asprintf "publish: %a" Repo.pp_error e))

let chain_ids repo ~digest =
  Result.map
    (List.map (fun (e : Repo.entry) -> e.update.Ksplice.Update.update_id))
    (Repo.pending repo ~digest)

(* One crash point: publish under Crash@i, reopen clean, judge.
   Returns (published, swept, bytes, notes). *)
let crash_cell ~seed ~source ~patch ~update ~base_digest
    (update_id : string) i =
  with_tmp_dir (fun dir ->
      let vfs, inj = Vfs.inject { Vfs.at = i; kind = Vfs.Crash; seed } Vfs.real in
      let notes = ref [] in
      let note fmt = Format.kasprintf (fun s -> notes := !notes @ [ s ]) fmt in
      (match publish_once ~vfs dir ~source ~patch ~update with
      | exception Vfs.Crashed -> ()
      | Ok () ->
        if Vfs.fired inj then
          (* the crash op was the last one: publish returned before any
             further I/O could refuse — still a valid crash point *)
          ()
        else note "crash point %d never fired (run has %d ops)" i (Vfs.ops inj)
      | Error m -> note "publish failed without a crash: %s" m);
      (* the dead handle is discarded; reopening is the reboot *)
      match Repo.open_dir dir with
      | Error e -> (false, 0, 0, [ Format.asprintf "reopen: %a" Repo.pp_error e ])
      | Ok repo ->
        (match Repo.fsck repo with
        | Ok _ -> ()
        | Error r ->
          List.iter
            (fun iss ->
              note "fsck after recovery: %a" Store.pp_fsck_issue iss)
            r.Repo.store_report.Store.f_issues;
          List.iter
            (fun (d, m) -> note "fsck: entry %s: %s" d m)
            r.Repo.corrupt_entries);
        let published =
          match chain_ids repo ~digest:base_digest with
          | Ok [] -> false
          | Ok [ id ] when String.equal id update_id -> true
          | Ok ids ->
            note "chain is half-published: [%s]" (String.concat "; " ids);
            false
          | Error e ->
            note "pending after recovery: %a" Repo.pp_error e;
            false
        in
        let swept, bytes =
          match Repo.gc repo with
          | Error e ->
            note "gc after recovery: %a" Repo.pp_error e;
            (0, 0)
          | Ok g ->
            (* GC must preserve the chain exactly and, when the publish
               vanished, leave nothing behind *)
            (match chain_ids repo ~digest:base_digest with
            | Ok ids ->
              let expect = if published then [ update_id ] else [] in
              if ids <> expect then
                note "gc changed the chain: [%s]" (String.concat "; " ids)
            | Error e -> note "pending after gc: %a" Repo.pp_error e);
            (match Repo.fsck repo with
            | Ok r ->
              if (not published) && r.Repo.store_report.Store.f_blobs <> 0 then
                note "gc left %d unreachable blob(s) in an empty repository"
                  r.Repo.store_report.Store.f_blobs
            | Error _ -> note "fsck after gc reports damage");
            (g.Store.gc_swept, g.Store.gc_bytes)
        in
        (published, swept, bytes, !notes))

(* Fault-free probe: counts the mutating ops of a publish and proves the
   published chain actually syncs onto a freshly booted subscriber. *)
let crash_probe (cve : Cve.t) base ~patch ~update =
  with_tmp_dir (fun dir ->
      let vfs, count = Vfs.counting Vfs.real in
      match publish_once ~vfs dir ~source:base ~patch ~update with
      | Error m -> (0, [ "fault-free publish failed: " ^ m ])
      | Ok () -> (
        let n = count () in
        match Repo.open_dir dir with
        | Error e -> (n, [ Format.asprintf "reopen: %a" Repo.pp_error e ])
        | Ok repo -> (
          let b = Boot.boot () in
          let mgr = Apply.init b.Boot.machine in
          match Repo.sync repo mgr ~source:base with
          | Ok r when r.Repo.applied = [ cve.id ] -> (n, [])
          | Ok r ->
            ( n,
              [ Printf.sprintf "sync applied [%s], expected [%s]"
                  (String.concat "; " r.Repo.applied) cve.id ] )
          | Error e ->
            (n, [ Format.asprintf "sync after publish: %a" Repo.pp_error e ]))))

let crash_cve ~seed (cve : Cve.t) base =
  let patch = Cve.hot_patch cve base in
  let update = create_update cve base in
  let base_digest = Tree.digest base in
  let ops, probe_notes = crash_probe cve base ~patch ~update in
  let published = ref 0 in
  let absent = ref 0 in
  let swept = ref 0 in
  let bytes = ref 0 in
  let notes = ref probe_notes in
  for i = 1 to ops do
    let p, s, by, ns =
      crash_cell ~seed ~source:base ~patch ~update ~base_digest cve.id i
    in
    if ns = [] then if p then incr published else incr absent
    else
      notes :=
        !notes
        @ List.map (Printf.sprintf "crash@%d: %s" i) ns;
    swept := !swept + s;
    bytes := !bytes + by
  done;
  {
    cr_cve = cve.id;
    cr_ops = ops;
    cr_published = !published;
    cr_absent = !absent;
    cr_gc_swept = !swept;
    cr_gc_bytes = !bytes;
    cr_notes = !notes;
  }

(* every 8th CVE: a deterministic sample spanning the corpus — each row
   costs [ops] publish+recover+gc rounds, so the full 64 would be slow *)
let crash_sample () = List.filteri (fun i _ -> i mod 8 = 0) Cve.all

let run_crash ?(seed = 0) ?cves ?progress ?domains () =
  let cves = match cves with Some l -> l | None -> crash_sample () in
  let base = Base_kernel.tree () in
  let progress_m = Mutex.create () in
  let emit line =
    match progress with
    | None -> ()
    | Some f ->
      Mutex.lock progress_m;
      f line;
      Mutex.unlock progress_m
  in
  let rows =
    Parallel.map ?domains
      (fun (i, cve) ->
        let row = crash_cve ~seed:(seed + (1009 * i)) cve base in
        emit
          (Printf.sprintf "%-14s %3d crash points: %d whole, %d absent%s"
             row.cr_cve row.cr_ops row.cr_published row.cr_absent
             (if row.cr_notes = [] then "" else "  VIOLATION"));
        row)
      (List.mapi (fun i cve -> (i, cve)) cves)
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  {
    c_rows = rows;
    c_cells = sum (fun r -> r.cr_ops);
    c_published = sum (fun r -> r.cr_published);
    c_absent = sum (fun r -> r.cr_absent);
    c_violations = sum (fun r -> List.length r.cr_notes);
    c_gc_swept = sum (fun r -> r.cr_gc_swept);
    c_gc_bytes = sum (fun r -> r.cr_gc_bytes);
  }

let crash_ok r = r.c_violations = 0

let pp_crash ppf r =
  Format.fprintf ppf
    "crash sweep: %d CVEs, a publish killed at every mutating I/O op@\n@\n"
    (List.length r.c_rows);
  Format.fprintf ppf "%-16s %5s %9s %7s %9s@\n" "CVE" "ops" "published"
    "absent" "gc-bytes";
  List.iter
    (fun row ->
      Format.fprintf ppf "%-16s %5d %9d %7d %9d%s@\n" row.cr_cve row.cr_ops
        row.cr_published row.cr_absent row.cr_gc_bytes
        (if row.cr_notes = [] then "" else "  VIOLATION"))
    r.c_rows;
  Format.fprintf ppf
    "@\ncrash points: %d  recovered whole: %d  recovered absent: %d  \
     violations: %d  gc swept: %d blobs (%d bytes)@\n"
    r.c_cells r.c_published r.c_absent r.c_violations r.c_gc_swept
    r.c_gc_bytes;
  List.iter
    (fun row ->
      List.iter
        (fun m -> Format.fprintf ppf "VIOLATION %s: %s@\n" row.cr_cve m)
        row.cr_notes)
    r.c_rows;
  if crash_ok r then
    Format.fprintf ppf
      "every crash point recovered to fsck-clean with the chain \
       all-or-nothing; gc reclaimed only unreachable blobs@\n"

(* ---------- the transition sweep: patch under load, no global pause ----------

   Twin machines run the same busy multi-threaded stress workload. Mid-
   flight, machine A applies the CVE's update through the per-thread
   engagement (Manager.Transition) and machine B through the paper's
   stop_machine loop. The per-thread apply must converge with zero
   pause and zero forced migrations, both workloads must keep their
   invariants, and the two machines must end with byte-identical patch
   footprints. The same twin discipline then covers the reverse
   transition (undo under load) and a forced-straggler apply, where a
   thread parked asleep inside the patched function must demote the
   engagement to the bounded stop_machine fallback — which must still
   land the identical footprint. *)

module Transition = Manager.Transition

type trow = {
  t_cve : string;
  t_threads : int;
  t_pause_ns : int;  (* per-thread apply pause (0 = pauseless) *)
  t_undo_pause_ns : int;
  t_base_pause_ns : int;  (* stop_machine baseline pause under load *)
  t_migrated : (string * int) list;  (* safe-point class -> threads *)
  t_rounds : int;
  t_sched_steps : int;
  t_straggler_forced : int;
  t_straggler_pause_ns : int;
  t_notes : string list;  (* contract breaches; [] = row passed *)
}

type treport = {
  t_rows : trow list;
  t_pauseless : int;  (* rows whose per-thread apply never paused *)
  t_fallbacks : int;  (* straggler cells that engaged the fallback *)
  t_violations : int;
}

(* generous §5.2 bounds for the baseline twin: under the stress load it
   must converge (the comparison needs a successful baseline), however
   many backoff rounds that takes *)
let baseline_apply mgr update =
  Apply.apply mgr ~max_attempts:64 ~retry_budget:400_000 ~retry_cap:8_000
    update

let baseline_undo mgr id =
  Apply.undo mgr ~max_attempts:64 ~retry_budget:400_000 ~retry_cap:8_000 id

(* the entry address of the first replaced function — where the
   straggler cell parks a sleeping thread (same recipe as the manager
   sweep's adversarial churner, but asleep mid-function) *)
let replaced_entry machine (update : Ksplice.Update.t) =
  match update.replaced_functions with
  | [] -> None
  | (_, cfn) :: _ ->
    let raw, _ = Ksplice.Update.split_canonical cfn in
    (match
       Machine.lookup_name machine raw
       |> List.filter (fun (s : Klink.Image.syminfo) -> s.kind = `Func)
     with
     | [ s ] -> Some s.addr
     | _ -> None)

(* [Stress.run] is single-use per boot (its host-side check expects each
   counter to equal exactly one run's iterations), so every phase gets a
   fresh pair of twin machines *)
let run_tcell (cve : Cve.t) update =
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := !notes @ [ s ]) fmt in
  let check_stress who (r : Stress.report) =
    if not r.ok then
      note "stress %s: %s" who (String.concat "; " r.failures)
  in
  let compare_footprints mgra mgrb when_ =
    if not (String.equal (Apply.footprint mgra) (Apply.footprint mgrb))
    then note "footprints diverge %s" when_
  in
  (* --- 1. apply under load: per-thread vs stop_machine --- *)
  let ba = Boot.boot () in
  let bb = Boot.boot () in
  let mgra = Apply.init ba.Boot.machine in
  let mgrb = Apply.init bb.Boot.machine in
  let apply_stats = ref None in
  let engage = Transition.engage ~on_stats:(fun s -> apply_stats := Some s) () in
  check_stress "under per-thread apply"
    (Stress.run ba ~during:(fun () ->
         match Apply.apply mgra ~engage update with
         | Ok _ -> ()
         | Error e -> note "per-thread apply failed: %s" (err_str e)));
  let base_pause = ref 0 in
  check_stress "under baseline apply"
    (Stress.run bb ~during:(fun () ->
         match baseline_apply mgrb update with
         | Ok a -> base_pause := a.Apply.pause_ns
         | Error e -> note "baseline apply failed: %s" (err_str e)));
  (match !apply_stats with
   | None -> ()
   | Some s ->
     if s.Transition.st_fallback then
       note "per-thread apply fell back to stop_machine (%d forced)"
         s.Transition.st_forced;
     if s.Transition.st_pause_ns <> 0 then
       note "per-thread apply paused %d ns" s.Transition.st_pause_ns);
  compare_footprints mgra mgrb "after apply under load";
  (match Apply.verify mgra with
   | Ok () -> ()
   | Error e -> note "transitioned machine does not verify: %s" (err_str e));
  (match Exploits.find cve.id with
   | None -> ()
   | Some ex ->
     let o = ex.run ba in
     if o.succeeded then
       note "exploit still succeeds after per-thread apply: %s" o.detail);
  (* --- 2. undo under load: reverse transition vs stop_machine --- *)
  let ba2 = Boot.boot () in
  let bb2 = Boot.boot () in
  let mgra2 = Apply.init ba2.Boot.machine in
  let mgrb2 = Apply.init bb2.Boot.machine in
  let apply_at_rest mgr who =
    match Apply.apply mgr update with
    | Ok _ -> ()
    | Error e -> note "%s apply at rest failed: %s" who (err_str e)
  in
  apply_at_rest mgra2 "per-thread twin";
  apply_at_rest mgrb2 "baseline twin";
  let saved_a =
    match Apply.applied mgra2 with a :: _ -> a.Apply.saved | [] -> []
  in
  let undo_stats = ref None in
  let engage_undo =
    Transition.engage ~on_stats:(fun s -> undo_stats := Some s) ()
  in
  check_stress "under reverse transition"
    (Stress.run ba2 ~during:(fun () ->
         match Apply.undo mgra2 ~engage:engage_undo cve.id with
         | Ok () -> ()
         | Error e -> note "reverse transition failed: %s" (err_str e)));
  check_stress "under baseline undo"
    (Stress.run bb2 ~during:(fun () ->
         match baseline_undo mgrb2 cve.id with
         | Ok () -> ()
         | Error e -> note "baseline undo failed: %s" (err_str e)));
  (* the reverse transition must restore the entry bytes exactly *)
  List.iter
    (fun (addr, bytes) ->
      let got =
        Machine.read_bytes ba2.Boot.machine addr (Bytes.length bytes)
      in
      if not (Bytes.equal got bytes) then
        note "entry bytes at %#x not restored by the reverse transition"
          addr)
    saved_a;
  (match !undo_stats with
   | None -> ()
   | Some s ->
     if s.Transition.st_pause_ns <> 0 then
       note "reverse transition paused %d ns" s.Transition.st_pause_ns);
  (* --- 3. forced straggler: bounded fallback must converge --- *)
  let straggler_stats = ref None in
  let ba3 = Boot.boot () in
  (match replaced_entry ba3.Boot.machine update with
   | None -> ()
   | Some entry ->
     let bb3 = Boot.boot () in
     let mgra3 = Apply.init ba3.Boot.machine in
     let mgrb3 = Apply.init bb3.Boot.machine in
     let straggle machine =
       (* a thread parked asleep at the patched function's entry: its pc
          sits in the guard range and it cannot reach a safe point until
          it wakes — long after the migration budget below *)
       let th =
         Machine.spawn machine ~name:"straggler" ~uid:1 ~entry
           ~args:[ 1l ]
       in
       th.Machine.state <- Machine.Sleeping (Machine.tick machine + 3_000)
     in
     let eng =
       Transition.engage
         ~policy:{ Transition.default_policy with budget = 2_000 }
         ~on_stats:(fun s -> straggler_stats := Some s)
         ()
     in
     check_stress "under straggler apply"
       (Stress.run ba3 ~during:(fun () ->
            straggle ba3.Boot.machine;
            match Apply.apply mgra3 ~engage:eng update with
            | Ok _ -> ()
            | Error e -> note "straggler apply failed: %s" (err_str e)));
     check_stress "under straggler baseline"
       (Stress.run bb3 ~during:(fun () ->
            straggle bb3.Boot.machine;
            match baseline_apply mgrb3 update with
            | Ok _ -> ()
            | Error e ->
              note "straggler baseline apply failed: %s" (err_str e)));
     (match !straggler_stats with
      | None -> ()
      | Some s ->
        if not s.Transition.st_fallback then
          note "straggler cell never engaged the stop_machine fallback";
        if s.Transition.st_forced < 1 then
          note "the straggler was never force-migrated");
     compare_footprints mgra3 mgrb3 "after the straggler apply");
  let stats = !apply_stats in
  let classes s =
    List.filter_map
      (fun (c, n) ->
        if n = 0 then None else Some (Transition.sp_class_name c, n))
      (Transition.migrated_by_class s)
  in
  { t_cve = cve.id;
    t_threads =
      (match stats with Some s -> s.Transition.st_threads | None -> 0);
    t_pause_ns =
      (match stats with Some s -> s.Transition.st_pause_ns | None -> -1);
    t_undo_pause_ns =
      (match !undo_stats with
       | Some s -> s.Transition.st_pause_ns
       | None -> -1);
    t_base_pause_ns = !base_pause;
    t_migrated = (match stats with Some s -> classes s | None -> []);
    t_rounds = (match stats with Some s -> s.Transition.st_rounds | None -> 0);
    t_sched_steps =
      (match stats with Some s -> s.Transition.st_sched_steps | None -> 0);
    t_straggler_forced =
      (match !straggler_stats with
       | Some s -> s.Transition.st_forced
       | None -> 0);
    t_straggler_pause_ns =
      (match !straggler_stats with
       | Some s -> s.Transition.st_pause_ns
       | None -> 0);
    t_notes = !notes }

(* same deterministic corpus sample as the crash sweep: each row costs
   six stress runs across its twin machines *)
let transition_sample () = List.filteri (fun i _ -> i mod 8 = 0) Cve.all

let run_transition ?cves ?progress ?domains () =
  let cves = match cves with Some l -> l | None -> transition_sample () in
  let base = Base_kernel.tree () in
  let progress_m = Mutex.create () in
  let emit line =
    match progress with
    | None -> ()
    | Some f ->
      Mutex.lock progress_m;
      f line;
      Mutex.unlock progress_m
  in
  let rows =
    Parallel.map ?domains
      (fun cve ->
        let update = create_update cve base in
        let row = run_tcell cve update in
        emit
          (Printf.sprintf "%-14s pause %d ns (baseline %d ns) forced %d%s"
             row.t_cve row.t_pause_ns row.t_base_pause_ns
             row.t_straggler_forced
             (if row.t_notes = [] then "" else "  VIOLATION"));
        row)
      cves
  in
  { t_rows = rows;
    t_pauseless =
      List.length (List.filter (fun r -> r.t_pause_ns = 0) rows);
    t_fallbacks =
      List.length (List.filter (fun r -> r.t_straggler_forced > 0) rows);
    t_violations =
      List.fold_left (fun acc r -> acc + List.length r.t_notes) 0 rows }

let transition_ok r = r.t_violations = 0

let pp_transition ppf r =
  Format.fprintf ppf
    "transition sweep: %d CVEs applied and undone mid-stress, per-thread \
     vs stop_machine twins@\n@\n"
    (List.length r.t_rows);
  Format.fprintf ppf "%-16s %4s %9s %9s %7s %6s %s@\n" "CVE" "thr"
    "pause(ns)" "base(ns)" "forced" "rounds" "migrated-by";
  List.iter
    (fun row ->
      Format.fprintf ppf "%-16s %4d %9d %9d %7d %6d %s%s@\n" row.t_cve
        row.t_threads row.t_pause_ns row.t_base_pause_ns
        row.t_straggler_forced row.t_rounds
        (String.concat ","
           (List.map
              (fun (c, n) -> Printf.sprintf "%s=%d" c n)
              row.t_migrated))
        (if row.t_notes = [] then "" else "  VIOLATION"))
    r.t_rows;
  Format.fprintf ppf
    "@\nrows: %d  pauseless applies: %d  straggler fallbacks: %d  \
     violations: %d@\n"
    (List.length r.t_rows) r.t_pauseless r.t_fallbacks r.t_violations;
  List.iter
    (fun row ->
      List.iter
        (fun m -> Format.fprintf ppf "VIOLATION %s: %s@\n" row.t_cve m)
        row.t_notes)
    r.t_rows;
  if transition_ok r then
    Format.fprintf ppf
      "every update landed and reversed under load with zero pause and a \
       byte-identical footprint; every straggler converged through the \
       bounded fallback@\n"

(* ---------- the fleet sweep: distribution under transport faults ----------

   For each sampled CVE a server repository publishes a short stacked
   chain (this CVE plus the next corpus CVEs that still apply to the
   patched tree, capped at three hops). A fault-free probe sync counts
   the frames a full mirror costs; then every transport fault kind is
   injected at every frame index and a fresh subscriber must still
   converge: retried sync byte-identical to the server chain, mirror
   fsck-clean, zero redundant blob transfers, all deterministic in the
   seed. One extra cell per row proves graceful degradation against an
   unreachable server. *)

module Wire = Fleet.Wire
module Transport = Fleet.Transport
module Server = Fleet.Server
module Subscriber = Fleet.Subscriber

type frow = {
  fl_cve : string;
  fl_depth : int;  (* entries published on the server chain *)
  fl_frames : int;  (* frames crossing the wire in a fault-free sync *)
  fl_cells : int;
  fl_retried : int;  (* cells that needed more than one attempt *)
  fl_bytes_saved : int;  (* bytes resume skipped re-downloading *)
  fl_notes : string list;  (* violations; [] = row passed *)
}

type fleet_report = {
  fl_rows : frow list;
  fl_total_cells : int;
  fl_total_retried : int;
  fl_total_saved : int;
  fl_violations : int;
}

(* build the server chain: publish [cve], then keep stacking the corpus
   CVEs that still apply to the successively patched tree *)
let fleet_chain (cve : Cve.t) base ~max_depth =
  let repo = Repo.of_store (Store.create ~name:("fleet-" ^ cve.id) ()) in
  let rest =
    let rec from = function
      | c :: tl when c.Cve.id = cve.Cve.id -> c :: tl
      | _ :: tl -> from tl
      | [] -> []
    in
    from Cve.all
  in
  let tree = ref base and depth = ref 0 and err = ref None in
  List.iter
    (fun (c : Cve.t) ->
      if !err = None && !depth < max_depth && Cve.applies_to c !tree then begin
        let patch = Cve.hot_patch c !tree in
        let update = create_update c !tree in
        match Repo.publish repo ~source:!tree ~patch ~update with
        | Error e ->
          err := Some (Format.asprintf "publish %s: %a" c.id Repo.pp_error e)
        | Ok _ -> (
          match Diff.apply patch !tree with
          | Ok t -> tree := t; incr depth
          | Error m -> err := Some (Printf.sprintf "apply %s: %s" c.id m))
      end)
    rest;
  (repo, !depth, !err)

let fleet_mirror_notes repo sub ~server_head (r : Subscriber.report) =
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := !notes @ [ s ]) fmt in
  if not r.r_synced then
    note "sync never converged: %s" (String.concat " | " r.r_log);
  if r.r_redundant <> 0 then
    note "%d redundant blob transfer(s) on resume" r.r_redundant;
  if r.r_synced && not (String.equal r.r_head server_head) then
    note "head %s, server serves %s" r.r_head server_head;
  (* byte-identical chain refs *)
  if r.r_synced then
    List.iter
      (fun (rname, d) ->
        if String.length rname >= 6 && String.sub rname 0 6 = "entry:" then
          match Store.find_ref sub rname with
          | Some d' when String.equal d d' -> ()
          | Some d' -> note "ref %s: mirror has %s, server %s" rname d' d
          | None -> note "ref %s missing from the mirror" rname)
      (Store.refs (Repo.store repo));
  (* the mirror must be a well-formed repository whatever happened *)
  (match Repo.fsck (Repo.of_store sub) with
  | Ok _ -> ()
  | Error fr ->
    List.iter
      (fun iss -> note "mirror fsck: %a" Store.pp_fsck_issue iss)
      fr.Repo.store_report.Store.f_issues;
    List.iter
      (fun (d, m) -> note "mirror fsck: entry %s: %s" d m)
      fr.Repo.corrupt_entries);
  !notes

let fleet_cell ~seed repo ~base_digest ~server_head ~at ~kind =
  let sub = Store.create ~name:"fleet-sub" () in
  let plan = { Transport.at; kind; seed } in
  let connect attempt =
    let p = if attempt = 1 then Some plan else None in
    let session = Server.session repo in
    let tr, _ = Transport.sim ?plan:p ~serve:(Server.handle session) () in
    Some tr
  in
  let id =
    Printf.sprintf "%s@%d" (Transport.fault_kind_to_string kind) at
  in
  let r = Subscriber.sync ~id ~store:sub ~base:base_digest ~connect () in
  (r, fleet_mirror_notes repo sub ~server_head r)

let fleet_cve ~seed (cve : Cve.t) base =
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := !notes @ [ s ]) fmt in
  let base_digest = Tree.digest base in
  let repo, depth, chain_err = fleet_chain cve base ~max_depth:3 in
  (match chain_err with Some m -> note "%s" m | None -> ());
  if depth = 0 then note "no chain could be published";
  let server_head =
    match Repo.head repo ~digest:base_digest with
    | Ok d -> d
    | Error e ->
      note "server head: %a" Repo.pp_error e;
      base_digest
  in
  (* fault-free probe: counts the frames and proves the happy path *)
  let frames =
    let sub = Store.create ~name:"fleet-probe" () in
    let session = Server.session repo in
    let tr, stats = Transport.sim ~serve:(Server.handle session) () in
    let r =
      Subscriber.sync ~store:sub ~base:base_digest
        ~connect:(fun _ -> Some tr)
        ()
    in
    List.iter (fun m -> note "probe: %s" m)
      (fleet_mirror_notes repo sub ~server_head r);
    stats.Transport.frames
  in
  let cells = ref 0 and retried = ref 0 and saved = ref 0 in
  let kinds = Transport.all_fault_kinds in
  List.iteri
    (fun ki kind ->
      for at = 1 to frames do
        incr cells;
        let cell_seed = seed + (127 * at) + ki in
        let r, ns =
          fleet_cell ~seed:cell_seed repo ~base_digest ~server_head ~at ~kind
        in
        if r.Subscriber.r_attempts > 1 then begin
          incr retried;
          saved := !saved + r.r_bytes_saved
        end;
        List.iter
          (fun m ->
            note "%s@%d: %s" (Transport.fault_kind_to_string kind) at m)
          ns
      done)
    kinds;
  (* determinism: the first faulted cell replays bit-identically *)
  if frames > 0 then begin
    let kind = List.hd kinds in
    let run () =
      fst (fleet_cell ~seed:(seed + 127) repo ~base_digest ~server_head ~at:1 ~kind)
    in
    if run () <> run () then note "cell (%s, 1) is not deterministic in seed"
        (Transport.fault_kind_to_string kind)
  end;
  (* graceful degradation: server unreachable, old head kept, store clean *)
  (let sub = Store.create ~name:"fleet-degraded" () in
   incr cells;
   let r =
     Subscriber.sync
       ~policy:{ Subscriber.default_policy with retries = 3 }
       ~store:sub ~base:base_digest
       ~connect:(fun _ -> None)
       ()
   in
   if r.Subscriber.r_synced then note "degraded cell claims a sync";
   if not (String.equal r.r_head base_digest) then
     note "degraded cell moved the head to %s" r.r_head;
   if r.r_attempts <> 3 then
     note "degraded cell used %d attempts, expected 3" r.r_attempts;
   match Store.fsck sub with
   | Ok _ -> ()
   | Error _ -> note "degraded store not fsck-clean");
  {
    fl_cve = cve.id;
    fl_depth = depth;
    fl_frames = frames;
    fl_cells = !cells;
    fl_retried = !retried;
    fl_bytes_saved = !saved;
    fl_notes = !notes;
  }

let fleet_sample = crash_sample

let run_fleet ?(seed = 0) ?cves ?progress ?domains () =
  let cves = match cves with Some l -> l | None -> fleet_sample () in
  let base = Base_kernel.tree () in
  let progress_m = Mutex.create () in
  let emit line =
    match progress with
    | None -> ()
    | Some f ->
      Mutex.lock progress_m;
      f line;
      Mutex.unlock progress_m
  in
  let rows =
    Parallel.map ?domains
      (fun (i, cve) ->
        let row = fleet_cve ~seed:(seed + (2003 * i)) cve base in
        emit
          (Printf.sprintf
             "%-14s depth %d, %3d frames, %3d cells: %d retried, %dB saved%s"
             row.fl_cve row.fl_depth row.fl_frames row.fl_cells
             row.fl_retried row.fl_bytes_saved
             (if row.fl_notes = [] then "" else "  VIOLATION"));
        row)
      (List.mapi (fun i cve -> (i, cve)) cves)
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  {
    fl_rows = rows;
    fl_total_cells = sum (fun r -> r.fl_cells);
    fl_total_retried = sum (fun r -> r.fl_retried);
    fl_total_saved = sum (fun r -> r.fl_bytes_saved);
    fl_violations = sum (fun r -> List.length r.fl_notes);
  }

let fleet_ok r = r.fl_violations = 0

let pp_fleet ppf r =
  Format.fprintf ppf
    "fleet sweep: %d CVEs, every transport fault at every wire frame@\n@\n"
    (List.length r.fl_rows);
  Format.fprintf ppf "%-16s %5s %7s %6s %8s %11s@\n" "CVE" "depth" "frames"
    "cells" "retried" "bytes-saved";
  List.iter
    (fun row ->
      Format.fprintf ppf "%-16s %5d %7d %6d %8d %11d%s@\n" row.fl_cve
        row.fl_depth row.fl_frames row.fl_cells row.fl_retried
        row.fl_bytes_saved
        (if row.fl_notes = [] then "" else "  VIOLATION"))
    r.fl_rows;
  Format.fprintf ppf
    "@\ncells: %d  retried to convergence: %d  resume bytes saved: %d  \
     violations: %d@\n"
    r.fl_total_cells r.fl_total_retried r.fl_total_saved r.fl_violations;
  List.iter
    (fun row ->
      List.iter
        (fun m -> Format.fprintf ppf "VIOLATION %s: %s@\n" row.fl_cve m)
        row.fl_notes)
    r.fl_rows;
  if fleet_ok r then
    Format.fprintf ppf
      "every faulted sync converged byte-identically with a clean mirror \
       and zero redundant transfers; unreachable servers degraded to the \
       old head@\n"

(* ---------- the cumulative sweep: atomic replace at depth ----------

   For each requested depth k a chain of k corpus CVEs (each still
   applicable to the successively patched tree) is published into a
   repository and collapsed with [Repo.publish_cumulative]. Contracts:

   - the collapse's [supersedes] lists exactly the chain ids, oldest
     first;
   - on a machine carrying the stacked chain, [Apply.apply_cumulative]
     lands a footprint byte-identical to the undo-then-plain-apply twin
     (same machine history, same alloc cursors);
   - undoing the collapse re-stacks the original chain, byte-exact;
   - a fault injected at every [Txn] step aborts the whole collapse —
     unwind and install alike — back to the byte-identical stacked
     machine;
   - the repository (per-update chain plus the cumulative entry)
     passes fsck.

   The shadow rows prove §5.3 end to end for the shadow-variable
   extras: patch (ctor attaches the side table), exploit blocked,
   collapse and un-collapse keep the shadows live, final undo runs the
   dtors and the exploit returns. *)

type curow = {
  cu_requested : int;
  cu_depth : int;  (* chain entries actually published *)
  cu_chain : string list;  (* update ids, oldest first *)
  cu_cells : (Txn.step * cell) list;
  cu_fsck_clean : bool;
  cu_notes : string list;  (* violations; [] = row passed *)
}

type cushadow = {
  cs_cve : string;
  cs_shadows : int;  (* shadow bindings live after the collapse *)
  cs_notes : string list;
}

type cumulative_report = {
  cu_rows : curow list;
  cu_shadows : cushadow list;
  cu_total_cells : int;
  cu_rolled_back : int;
  cu_violations : int;
}

let cumulative_depths = [ 1; 8; 32 ]

(* publish a chain of [depth] CVEs: walk the corpus, keep every CVE
   that still applies to the successively patched tree *)
let cumulative_chain ~name base ~depth =
  let repo = Repo.of_store (Store.create ~name ()) in
  let tree = ref base and err = ref None in
  let chain = ref [] in
  List.iter
    (fun (c : Cve.t) ->
      if !err = None && List.length !chain < depth && Cve.applies_to c !tree
      then begin
        let patch = Cve.hot_patch c !tree in
        match create_update c !tree with
        | exception Failure m -> err := Some m
        | update -> (
          match Repo.publish repo ~source:!tree ~patch ~update with
          | Error e ->
            err :=
              Some (Format.asprintf "publish %s: %a" c.id Repo.pp_error e)
          | Ok _ -> (
            match Diff.apply patch !tree with
            | Ok t ->
              tree := t;
              chain := (c, update) :: !chain
            | Error m -> err := Some (Printf.sprintf "apply %s: %s" c.id m)))
      end)
    Cve.all;
  (repo, List.rev !chain, !err)

(* one faulted collapse cell: the machine carries the stacked chain;
   an abort must put it back byte-identical (stack still live), a
   survived apply must verify and un-collapse for the next cell *)
let run_cucell mgr cum_id update step ~seed =
  let m = Apply.machine mgr in
  let snap = Machine.snapshot m in
  let plan = { Faultinj.step; kind = Faultinj.kind_for_step step; seed } in
  let session = Faultinj.make m plan in
  let result = Apply.apply_cumulative mgr ~inject:session update in
  Faultinj.disarm session;
  let fired = Faultinj.fired session in
  match result with
  | Error e ->
    let diff = Machine.diff_snapshot m snap in
    if diff <> [] then
      Violation
        (Format.asprintf "abort of %a left the machine diverged: %s"
           Faultinj.pp_plan plan (err_str e)
         :: diff)
    else if not fired then
      Violation
        [ Format.asprintf "%a never fired yet collapse failed: %s"
            Faultinj.pp_plan plan (err_str e) ]
    else Rolled_back
  | Ok _ ->
    let verdict =
      if fired && Faultinj.expect_abort plan.kind then
        Violation
          [ Format.asprintf "%a fired but collapse succeeded"
              Faultinj.pp_plan plan ]
      else
        match Apply.verify mgr with
        | Error e ->
          Violation
            [ Format.asprintf "collapse under %a did not verify: %s"
                Faultinj.pp_plan plan (err_str e) ]
        | Ok () -> if fired then Benign else Not_applicable
    in
    (match Apply.undo mgr cum_id with
     | Ok () -> verdict
     | Error e -> (
       match verdict with
       | Violation msgs ->
         Violation (msgs @ [ "and un-collapse failed: " ^ err_str e ])
       | _ ->
         Violation [ "un-collapse after surviving apply failed: " ^ err_str e ]))

let stack_ids mgr =
  List.rev_map
    (fun (a : Apply.applied) -> a.Apply.update.Ksplice.Update.update_id)
    (Apply.applied mgr)

let run_curow ~seed ~depth base =
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := !notes @ [ s ]) fmt in
  let repo, chain, chain_err =
    cumulative_chain ~name:(Printf.sprintf "cumulative-%d" depth) base ~depth
  in
  (match chain_err with Some m -> note "%s" m | None -> ());
  let ids = List.map (fun ((c : Cve.t), _) -> c.id) chain in
  if chain = [] then note "no chain could be published";
  let cum_id = Printf.sprintf "cumulative-depth-%d" depth in
  let cum =
    if chain = [] then None
    else
      match
        Repo.publish_cumulative repo ~source:base ~update_id:cum_id
          ~description:
            (Printf.sprintf "collapse of %d updates" (List.length chain))
      with
      | Ok e -> Some e.Repo.update
      | Error e ->
        note "publish_cumulative: %a" Repo.pp_error e;
        None
  in
  (match cum with
   | None -> ()
   | Some cu ->
     if cu.Ksplice.Update.supersedes <> ids then
       note "collapse supersedes [%s], chain is [%s]"
         (String.concat "; " cu.Ksplice.Update.supersedes)
         (String.concat "; " ids));
  let stack_all mgr who =
    List.iter
      (fun (_, (u : Ksplice.Update.t)) ->
        match Apply.apply mgr u with
        | Ok _ -> ()
        | Error e ->
          note "%s: stacking %s failed: %s" who u.update_id (err_str e))
      chain
  in
  let cells = ref [] in
  (match cum with
   | None -> ()
   | Some cu ->
     (* footprint twins: undo-then-plain-apply vs atomic replace *)
     let ba = Boot.boot () and bb = Boot.boot () in
     let mgra = Apply.init ba.Boot.machine in
     let mgrb = Apply.init bb.Boot.machine in
     stack_all mgra "plain twin";
     stack_all mgrb "collapse twin";
     List.iter
       (fun ((c : Cve.t), _) ->
         match Apply.undo mgra c.id with
         | Ok () -> ()
         | Error e -> note "plain twin: undo %s failed: %s" c.id (err_str e))
       (List.rev chain);
     (match Apply.apply mgra cu with
      | Ok _ -> ()
      | Error e -> note "plain twin: apply failed: %s" (err_str e));
     (match Apply.apply_cumulative mgrb cu with
      | Ok _ -> ()
      | Error e -> note "atomic replace failed: %s" (err_str e));
     if not (String.equal (Apply.footprint mgra) (Apply.footprint mgrb))
     then note "collapse footprint diverges from the plain twin";
     (match stack_ids mgrb with
      | [ id ] when String.equal id cum_id -> ()
      | got ->
        note "after the collapse the stack is [%s], want [%s]"
          (String.concat "; " got) cum_id);
     (match Apply.verify mgrb with
      | Ok () -> ()
      | Error e -> note "collapsed machine does not verify: %s" (err_str e));
     List.iter
       (fun ((c : Cve.t), _) ->
         match Exploits.find c.id with
         | None -> ()
         | Some ex ->
           let o = ex.run bb in
           if o.succeeded then
             note "exploit %s still succeeds after the collapse: %s" ex.name
               o.detail)
       chain;
     (* undoing the collapse must re-stack the superseded chain *)
     (match Apply.undo mgrb cum_id with
      | Error e -> note "undo of the collapse failed: %s" (err_str e)
      | Ok () ->
        if stack_ids mgrb <> ids then
          note "undo of the collapse re-stacked [%s], want [%s]"
            (String.concat "; " (stack_ids mgrb))
            (String.concat "; " ids);
        match Apply.verify mgrb with
        | Ok () -> ()
        | Error e -> note "re-stacked machine does not verify: %s" (err_str e));
     (* the faulted cells, on a third stacked machine *)
     let bc = Boot.boot () in
     let mgrc = Apply.init bc.Boot.machine in
     stack_all mgrc "fault twin";
     cells :=
       List.mapi
         (fun si step ->
           (step, run_cucell mgrc cum_id cu step ~seed:(seed + (31 * si))))
         Txn.all_steps;
     (* recovery: a clean collapse must still land after the sweep *)
     (match Apply.apply_cumulative mgrc cu with
      | Error e -> note "clean collapse after the sweep failed: %s" (err_str e)
      | Ok _ -> (
        match Apply.verify mgrc with
        | Ok () -> ()
        | Error e -> note "recovered collapse does not verify: %s" (err_str e))));
  let fsck_clean =
    match Repo.fsck repo with
    | Ok _ -> true
    | Error fr ->
      List.iter
        (fun iss -> note "fsck: %a" Store.pp_fsck_issue iss)
        fr.Repo.store_report.Store.f_issues;
      List.iter
        (fun (d, m) -> note "fsck: entry %s: %s" d m)
        fr.Repo.corrupt_entries;
      false
  in
  {
    cu_requested = depth;
    cu_depth = List.length chain;
    cu_chain = ids;
    cu_cells = !cells;
    cu_fsck_clean = fsck_clean;
    cu_notes = !notes;
  }

(* §5.3 round trip for one shadow-variable extra *)
let run_cushadow (cve : Cve.t) base =
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := !notes @ [ s ]) fmt in
  let b = Boot.boot () in
  let m = b.Boot.machine in
  let mgr = Apply.init m in
  let count0 = Machine.shadow_count m in
  let check_exploit who expect =
    match Exploits.find cve.id with
    | None -> note "no exploit registered for %s" cve.id
    | Some ex ->
      let o = ex.run b in
      if o.succeeded <> expect then
        note "%s: exploit %s %s (%s)" who ex.name
          (if o.succeeded then "succeeded" else "was blocked")
          o.detail
  in
  let repo = Repo.of_store (Store.create ~name:("cushadow-" ^ cve.id) ()) in
  let patch = Cve.hot_patch cve base in
  let update = create_update cve base in
  (match Repo.publish repo ~source:base ~patch ~update with
   | Ok _ -> ()
   | Error e -> note "publish: %a" Repo.pp_error e);
  let cum_id = cve.id ^ "-cumulative" in
  let cum =
    match
      Repo.publish_cumulative repo ~source:base ~update_id:cum_id
        ~description:("collapse of " ^ cve.id)
    with
    | Ok e -> Some e.Repo.update
    | Error e ->
      note "publish_cumulative: %a" Repo.pp_error e;
      None
  in
  (match Apply.apply mgr update with
   | Ok _ -> ()
   | Error e -> note "apply failed: %s" (err_str e));
  if Machine.shadow_count m <= count0 then
    note "shadow ctor attached nothing (%d bindings)" (Machine.shadow_count m);
  check_exploit "patched" false;
  let shadows = ref 0 in
  (match cum with
   | None -> ()
   | Some cu ->
     (match Apply.apply_cumulative mgr cu with
      | Ok _ -> ()
      | Error e -> note "atomic replace failed: %s" (err_str e));
     shadows := Machine.shadow_count m;
     if !shadows <= count0 then
       note "collapse dropped the shadows (%d bindings)" !shadows;
     check_exploit "collapsed" false;
     (match Apply.undo mgr cum_id with
      | Ok () -> ()
      | Error e -> note "undo of the collapse failed: %s" (err_str e));
     if Machine.shadow_count m <= count0 then
       note "un-collapse lost the original update's shadows";
     check_exploit "re-stacked" false);
  (match Apply.undo mgr cve.id with
   | Ok () -> ()
   | Error e -> note "final undo failed: %s" (err_str e));
  if Machine.shadow_count m <> count0 then
    note "shadow dtor left %d bindings (started with %d)"
      (Machine.shadow_count m) count0;
  check_exploit "reverted" true;
  { cs_cve = cve.id; cs_shadows = !shadows; cs_notes = !notes }

let run_cumulative ?(seed = 0) ?(depths = cumulative_depths) ?progress
    ?domains () =
  let base = Base_kernel.tree () in
  let progress_m = Mutex.create () in
  let emit line =
    match progress with
    | None -> ()
    | Some f ->
      Mutex.lock progress_m;
      f line;
      Mutex.unlock progress_m
  in
  let rows =
    Parallel.map ?domains
      (fun (i, depth) ->
        let row = run_curow ~seed:(seed + (4001 * i)) ~depth base in
        emit
          (Printf.sprintf "depth %-3d (%d published) %s  fsck %s%s"
             row.cu_requested row.cu_depth
             (String.concat ""
                (List.map (fun (_, c) -> String.make 1 (cell_char c))
                   row.cu_cells))
             (if row.cu_fsck_clean then "clean" else "DIRTY")
             (if row.cu_notes = [] then "" else "  VIOLATION"));
        row)
      (List.mapi (fun i d -> (i, d)) depths)
  in
  let shadows =
    Parallel.map ?domains
      (fun (cve : Cve.t) ->
        let row = run_cushadow cve base in
        emit
          (Printf.sprintf "%-14s %d shadow bindings%s" row.cs_cve
             row.cs_shadows
             (if row.cs_notes = [] then "" else "  VIOLATION"));
        row)
      Cve.shadow_extras
  in
  let cell_count f =
    List.fold_left
      (fun acc r ->
        acc + List.length (List.filter (fun (_, c) -> f c) r.cu_cells))
      0 rows
  in
  {
    cu_rows = rows;
    cu_shadows = shadows;
    cu_total_cells = cell_count (fun _ -> true);
    cu_rolled_back = cell_count (fun c -> c = Rolled_back);
    cu_violations =
      cell_count (function Violation _ -> true | _ -> false)
      + List.fold_left (fun a r -> a + List.length r.cu_notes) 0 rows
      + List.fold_left (fun a r -> a + List.length r.cs_notes) 0 shadows;
  }

let cumulative_ok r = r.cu_violations = 0

let pp_cumulative ppf r =
  Format.fprintf ppf
    "cumulative sweep: atomic replace at depth %s, faults at every step@\n@\n"
    (String.concat "/"
       (List.map (fun row -> string_of_int row.cu_requested) r.cu_rows));
  Format.fprintf ppf "%-10s %-10s %-12s %-6s cells@\n" "requested"
    "published" "chain-head" "fsck";
  List.iter
    (fun row ->
      Format.fprintf ppf "%-10d %-10d %-12s %-6s %s%s@\n" row.cu_requested
        row.cu_depth
        (match List.rev row.cu_chain with [] -> "-" | id :: _ -> id)
        (if row.cu_fsck_clean then "clean" else "DIRTY")
        (String.concat ""
           (List.map (fun (_, c) -> String.make 1 (cell_char c)) row.cu_cells))
        (if row.cu_notes = [] then "" else "  VIOLATION"))
    r.cu_rows;
  Format.fprintf ppf "@\nshadow-variable rows (§5.3):@\n";
  List.iter
    (fun row ->
      Format.fprintf ppf "%-16s %d bindings%s@\n" row.cs_cve row.cs_shadows
        (if row.cs_notes = [] then "" else "  VIOLATION"))
    r.cu_shadows;
  Format.fprintf ppf
    "@\ncells: %d  rolled-back: %d  violations: %d@\n" r.cu_total_cells
    r.cu_rolled_back r.cu_violations;
  List.iter
    (fun row ->
      List.iter
        (fun m ->
          Format.fprintf ppf "VIOLATION depth %d: %s@\n" row.cu_requested m)
        row.cu_notes)
    r.cu_rows;
  List.iter
    (fun row ->
      List.iter
        (fun m -> Format.fprintf ppf "VIOLATION %s: %s@\n" row.cs_cve m)
        row.cs_notes)
    r.cu_shadows;
  if cumulative_ok r then
    Format.fprintf ppf
      "every collapse landed footprint-identical to its plain twin, every \
       fault rolled back to the stacked machine, and the shadow round \
       trips ran their ctors and dtors@\n"

(* ---------- the minimal-differencing sweep ----------

   For every corpus CVE (plus the shadow and differencing extras) build
   the update twice — function-granular minimal and whole-unit baseline
   — and prove the minimal one is complete (applies, verifies, survives
   stress, blocks the exploit, lands a deterministic footprint) while
   measuring what minimality buys: update bytes and run-pre candidate
   trials. *)

type dmrow = {
  dm_cve : string;
  dm_min_bytes : int;
  dm_whole_bytes : int;
  dm_min_syms : int;  (** defined symbols shipped in the minimal primary *)
  dm_whole_syms : int;
  dm_min_trials : int;  (** run-pre candidate trials during apply *)
  dm_whole_trials : int;
  dm_closure : bool;  (** some symbol shipped by dependency closure *)
  dm_data_ref : bool;  (** some function shipped as a data referent *)
  dm_notes : string list;  (** violations; [[]] = row passed *)
}

type dm_report = {
  dm_rows : dmrow list;
  dm_bytes_min : int;
  dm_bytes_whole : int;
  dm_trials_min : int;
  dm_trials_whole : int;
  dm_closure_demos : int;
  dm_dataref_demos : int;
  dm_persist_rejects : int;
      (** Table-1 mainline patches refused as [Data_semantics_changed] *)
  dm_violations : int;
}

let defined_syms (o : Objfile.t) =
  List.length (List.filter Objfile.Symbol.is_defined o.Objfile.symbols)

let update_size (u : Ksplice.Update.t) =
  Bytes.length (Ksplice.Update.to_bytes u)

(* the run-pre trial counter is process-global: applies that are being
   measured take this lock so concurrent rows cannot bleed into each
   other's deltas *)
let dm_trials_mutex = Mutex.create ()

let dm_measured_apply update =
  Mutex.lock dm_trials_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock dm_trials_mutex)
    (fun () ->
      let b = Boot.boot () in
      let mgr = Apply.init b.machine in
      Ksplice.Runpre.reset_match_attempts ();
      let r = Apply.apply mgr update in
      let trials = Ksplice.Runpre.match_attempts () in
      (b, mgr, r, trials))

let expected_banner_sum s =
  Int32.of_int (String.fold_left (fun a c -> a + Char.code c) 0 s)

let run_dmrow (cve : Cve.t) base =
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := !notes @ [ s ]) fmt in
  let patch = Cve.hot_patch cve base in
  let req =
    { Create.source = base; patch; update_id = cve.id;
      description = cve.desc }
  in
  let cmin, cwhole =
    match (Create.create req, Create.create ~minimal:false req) with
    | Ok a, Ok b -> (Some a, Some b)
    | Error e, _ ->
      note "minimal create failed: %a" Create.pp_error e;
      (None, None)
    | _, Error e ->
      note "whole-unit create failed: %a" Create.pp_error e;
      (None, None)
  in
  match (cmin, cwhole) with
  | Some cmin, Some cwhole ->
    (* completeness of the explanation: every defined primary symbol
       must carry an inclusion reason *)
    let reasons = Create.shipped_symbols cmin in
    List.iter
      (fun (sym : Objfile.Symbol.t) ->
        if Objfile.Symbol.is_defined sym
           && not (List.mem_assoc sym.name reasons)
        then note "shipped symbol %s has no inclusion reason" sym.name)
      cmin.Create.update.primary.symbols;
    let has_reason p =
      List.exists (fun (_, (_, r)) -> p r) reasons
    in
    let dm_closure =
      has_reason (function Ksplice.Prepost.Closure_of _ -> true | _ -> false)
    in
    let dm_data_ref =
      has_reason (function
        | Ksplice.Prepost.Data_referent _ -> true
        | _ -> false)
    in
    (* minimal apply: measured, then proven complete *)
    let b, mgr, rmin, min_trials = dm_measured_apply cmin.Create.update in
    (match rmin with
     | Error e -> note "minimal apply failed: %s" (err_str e)
     | Ok _ -> (
       (match Apply.verify mgr with
        | Ok () -> ()
        | Error e -> note "minimal apply did not verify: %s" (err_str e));
       let r = Stress.run b ~threads:2 ~iterations:5 in
       if not r.ok then
         note "stress on minimal apply: %s" (String.concat "; " r.failures);
       (match Exploits.find cve.id with
        | None -> ()
        | Some ex ->
          let o = ex.run b in
          if o.succeeded then
            note "exploit %s survives the minimal update: %s" ex.name
              o.detail);
       if String.equal cve.id Cve.diff_banner.id then begin
         let got = Boot.read_global b "banner_sum" in
         let want = expected_banner_sum Cve.banner_new in
         if not (Int32.equal got want) then
           note "banner_sum %ld after refresh, expected %ld" got want
       end;
       (* twin determinism: the same minimal update on a second fresh
          boot must land a byte-identical footprint *)
       let _, mgr2, rmin2, _ = dm_measured_apply cmin.Create.update in
       (match rmin2 with
        | Error e -> note "twin minimal apply failed: %s" (err_str e)
        | Ok _ ->
          if not (String.equal (Apply.footprint mgr) (Apply.footprint mgr2))
          then note "minimal apply footprint is not deterministic")));
    (* whole-unit twin: must also work, and cost at least as much *)
    let _, mgrw, rwhole, whole_trials =
      dm_measured_apply cwhole.Create.update
    in
    (match rwhole with
     | Error e -> note "whole-unit apply failed: %s" (err_str e)
     | Ok _ -> (
       match Apply.verify mgrw with
       | Ok () -> ()
       | Error e -> note "whole-unit apply did not verify: %s" (err_str e)));
    let dm_min_bytes = update_size cmin.Create.update in
    let dm_whole_bytes = update_size cwhole.Create.update in
    if dm_min_bytes > dm_whole_bytes then
      note "minimal update larger than whole-unit (%d > %d)" dm_min_bytes
        dm_whole_bytes;
    if min_trials > whole_trials then
      note "minimal apply tried more candidates (%d > %d)" min_trials
        whole_trials;
    {
      dm_cve = cve.id;
      dm_min_bytes;
      dm_whole_bytes;
      dm_min_syms = defined_syms cmin.Create.update.primary;
      dm_whole_syms = defined_syms cwhole.Create.update.primary;
      dm_min_trials = min_trials;
      dm_whole_trials = whole_trials;
      dm_closure;
      dm_data_ref;
      dm_notes = !notes;
    }
  | _ ->
    {
      dm_cve = cve.id;
      dm_min_bytes = 0;
      dm_whole_bytes = 0;
      dm_min_syms = 0;
      dm_whole_syms = 0;
      dm_min_trials = 0;
      dm_whole_trials = 0;
      dm_closure = false;
      dm_data_ref = false;
      dm_notes = !notes;
    }

(* the Table-1 refusals: each data-init mainline patch (custom code
   stripped) whose initializer image genuinely changes must come back as
   Data_semantics_changed naming the datum *)
let dm_persist_rejects base =
  List.fold_left
    (fun acc (cve : Cve.t) ->
      match cve.custom with
      | Some (Cve.Changes_data_init, _) -> (
        match
          Create.create
            { Create.source = base; patch = Cve.mainline_patch cve base;
              update_id = cve.id; description = "" }
        with
        | Error (Create.Data_semantics_changed ((_, d) :: _))
          when String.length d > 0 ->
          acc + 1
        | _ -> acc)
      | _ -> acc)
    0 Cve.all

let diffmin_cves () = Cve.all @ Cve.shadow_extras @ Cve.diff_extras

let run_diffmin ?cves ?progress ?domains () =
  let cves = match cves with Some l -> l | None -> diffmin_cves () in
  let base = Base_kernel.tree () in
  let progress_m = Mutex.create () in
  let emit line =
    match progress with
    | None -> ()
    | Some f ->
      Mutex.lock progress_m;
      f line;
      Mutex.unlock progress_m
  in
  let rows =
    Parallel.map ?domains
      (fun (cve : Cve.t) ->
        let row = run_dmrow cve base in
        emit
          (Printf.sprintf "%-14s %5d/%5d B  %3d/%3d trials%s%s%s" row.dm_cve
             row.dm_min_bytes row.dm_whole_bytes row.dm_min_trials
             row.dm_whole_trials
             (if row.dm_closure then " C" else "")
             (if row.dm_data_ref then " D" else "")
             (if row.dm_notes = [] then "" else "  VIOLATION"));
        row)
      cves
  in
  let sum f = List.fold_left (fun a r -> a + f r) 0 rows in
  {
    dm_rows = rows;
    dm_bytes_min = sum (fun r -> r.dm_min_bytes);
    dm_bytes_whole = sum (fun r -> r.dm_whole_bytes);
    dm_trials_min = sum (fun r -> r.dm_min_trials);
    dm_trials_whole = sum (fun r -> r.dm_whole_trials);
    dm_closure_demos =
      List.length (List.filter (fun r -> r.dm_closure) rows);
    dm_dataref_demos =
      List.length (List.filter (fun r -> r.dm_data_ref) rows);
    dm_persist_rejects = dm_persist_rejects base;
    dm_violations = sum (fun r -> List.length r.dm_notes);
  }

let diffmin_ok r =
  r.dm_violations = 0
  && r.dm_closure_demos >= 1
  && r.dm_dataref_demos >= 1
  && r.dm_persist_rejects >= 1
  && r.dm_bytes_min < r.dm_bytes_whole
  && r.dm_trials_min <= r.dm_trials_whole

let pp_diffmin ppf r =
  Format.fprintf ppf
    "minimal-differencing sweep: %d rows, function-granular vs \
     whole-unit@\n@\n"
    (List.length r.dm_rows);
  Format.fprintf ppf "%-16s %10s %10s %8s %8s  demo@\n" "cve" "min B"
    "whole B" "min try" "whole try";
  List.iter
    (fun row ->
      Format.fprintf ppf "%-16s %10d %10d %8d %8d  %s%s%s@\n" row.dm_cve
        row.dm_min_bytes row.dm_whole_bytes row.dm_min_trials
        row.dm_whole_trials
        (if row.dm_closure then "C" else "-")
        (if row.dm_data_ref then "D" else "-")
        (if row.dm_notes = [] then "" else "  VIOLATION"))
    r.dm_rows;
  Format.fprintf ppf
    "@\nbytes: %d minimal vs %d whole-unit (%.0f%% saved)@\n" r.dm_bytes_min
    r.dm_bytes_whole
    (100.
    *. (1. -. (float_of_int r.dm_bytes_min /. float_of_int r.dm_bytes_whole))
    );
  Format.fprintf ppf "run-pre trials: %d minimal vs %d whole-unit@\n"
    r.dm_trials_min r.dm_trials_whole;
  Format.fprintf ppf
    "closure demos: %d  data-referent demos: %d  data-init refusals: %d@\n"
    r.dm_closure_demos r.dm_dataref_demos r.dm_persist_rejects;
  List.iter
    (fun row ->
      List.iter
        (fun m -> Format.fprintf ppf "VIOLATION %s: %s@\n" row.dm_cve m)
        row.dm_notes)
    r.dm_rows;
  if diffmin_ok r then
    Format.fprintf ppf
      "every minimal update applied, verified, stressed clean and blocked \
       its exploit at a fraction of the whole-unit cost@\n"
