module Machine = Kernel.Machine
module Txn = Ksplice.Txn
module Faultinj = Ksplice.Faultinj
module Apply = Ksplice.Apply
module Create = Ksplice.Create

type cell =
  | Rolled_back
  | Benign
  | Not_applicable
  | Violation of string list

let cell_char = function
  | Rolled_back -> 'R'
  | Benign -> 'B'
  | Not_applicable -> '-'
  | Violation _ -> '!'

type row = {
  cve_id : string;
  cells : (Txn.step * cell) list;
  recovered : bool;
  notes : string list;
}

type report = {
  rows : row list;
  total_cells : int;
  rolled_back : int;
  benign : int;
  not_applicable : int;
  violations : int;
  recovery_failures : int;
}

let err_str e = Format.asprintf "%a" Apply.pp_error e

let create_update (cve : Cve.t) base =
  let patch = Cve.hot_patch cve base in
  match
    Create.create
      { source = base; patch; update_id = cve.id; description = cve.desc }
  with
  | Ok c -> c.Create.update
  | Error e ->
    failwith
      (Format.asprintf "%s: create failed: %a" cve.id Create.pp_error e)

(* One (cve, step) cell: snapshot, apply under injection, judge. The
   machine is reused across cells — rollback (and undo, for cells where
   the apply succeeded) must return it to a consistent state, which the
   next cell's snapshot then re-baselines. *)
let run_cell mgr cve_id update step ~seed =
  let m = Apply.machine mgr in
  let snap = Machine.snapshot m in
  let plan = { Faultinj.step; kind = Faultinj.kind_for_step step; seed } in
  let session = Faultinj.make m plan in
  let result = Apply.apply mgr ~inject:session update in
  Faultinj.disarm session;
  let fired = Faultinj.fired session in
  match result with
  | Error e ->
    let diff = Machine.diff_snapshot m snap in
    if diff <> [] then
      Violation
        (Format.asprintf "abort of %a left the machine diverged: %s"
           Faultinj.pp_plan plan (err_str e)
         :: diff)
    else if not fired then
      Violation
        [ Format.asprintf
            "%a never fired yet apply failed: %s" Faultinj.pp_plan plan
            (err_str e) ]
    else Rolled_back
  | Ok _ ->
    (* the apply went through; it must be a benign or unfired fault, and
       the update must verify and undo cleanly for the next cell *)
    let verdict =
      if fired && Faultinj.expect_abort plan.kind then
        Violation
          [ Format.asprintf "%a fired but apply succeeded"
              Faultinj.pp_plan plan ]
      else
        match Apply.verify mgr with
        | Error e ->
          Violation
            [ Format.asprintf "apply under %a did not verify: %s"
                Faultinj.pp_plan plan (err_str e) ]
        | Ok () -> if fired then Benign else Not_applicable
    in
    (match Apply.undo mgr cve_id with
     | Ok () -> verdict
     | Error e -> (
       match verdict with
       | Violation msgs ->
         Violation (msgs @ [ "and undo failed: " ^ err_str e ])
       | _ -> Violation [ "undo after surviving apply failed: " ^ err_str e ]))

(* After the faulted cells: the CVE's hot update must still apply
   cleanly on the same machine, hold up under stress, and (where an
   exploit exists) block it. *)
let check_recovery (b : Boot.booted) mgr (cve : Cve.t) update =
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := s :: !notes) fmt in
  (match Apply.apply mgr update with
   | Error e -> note "clean re-apply failed: %s" (err_str e)
   | Ok _ -> (
     (match Apply.verify mgr with
      | Ok () -> ()
      | Error e -> note "verify after re-apply: %s" (err_str e));
     let r = Stress.run b ~threads:2 ~iterations:5 in
     if not r.ok then
       note "stress after re-apply: %s" (String.concat "; " r.failures);
     match Exploits.find cve.id with
     | None -> ()
     | Some ex ->
       let o = ex.run b in
       if o.succeeded then
         note "exploit %s still succeeds after re-apply: %s" ex.name o.detail));
  (!notes = [], List.rev !notes)

let sweep_cve ~seed index (cve : Cve.t) base =
  let update = create_update cve base in
  let b = Boot.boot () in
  let mgr = Apply.init b.machine in
  let cells =
    List.mapi
      (fun si step ->
        let cell_seed = seed + (1009 * index) + (31 * si) in
        (step, run_cell mgr cve.id update step ~seed:cell_seed))
      Txn.all_steps
  in
  let recovered, notes = check_recovery b mgr cve update in
  { cve_id = cve.id; cells; recovered; notes }

let summarize rows =
  let count f =
    List.fold_left
      (fun acc r ->
        acc + List.length (List.filter (fun (_, c) -> f c) r.cells))
      0 rows
  in
  {
    rows;
    total_cells = count (fun _ -> true);
    rolled_back = count (fun c -> c = Rolled_back);
    benign = count (fun c -> c = Benign);
    not_applicable = count (fun c -> c = Not_applicable);
    violations =
      count (function Violation _ -> true | _ -> false);
    recovery_failures =
      List.length (List.filter (fun r -> not r.recovered) rows);
  }

let run ?(seed = 0) ?cves ?progress ?domains () =
  let cves = Option.value cves ~default:Cve.all in
  let base = Base_kernel.tree () in
  (* each CVE sweeps on its own freshly booted machine, so rows are
     independent and sweep across the domain pool; progress lines arrive
     in completion order (serialised by a mutex), rows in corpus order *)
  let progress_m = Mutex.create () in
  let emit line =
    match progress with
    | None -> ()
    | Some f ->
      Mutex.lock progress_m;
      f line;
      Mutex.unlock progress_m
  in
  let rows =
    Parallel.map ?domains
      (fun (i, cve) ->
        let row = sweep_cve ~seed i cve base in
        emit
          (Printf.sprintf "%-14s %s %s" row.cve_id
             (String.init (List.length row.cells) (fun j ->
                  cell_char (snd (List.nth row.cells j))))
             (if row.recovered then "recovered" else "RECOVERY FAILED"));
        row)
      (List.mapi (fun i cve -> (i, cve)) cves)
  in
  summarize rows

let ok r = r.violations = 0 && r.recovery_failures = 0

(* ---------- the supervised (manager-level) sweep ----------

   The transactional sweep above proves §5.2 for one apply; this one
   proves the supervision loop around it: every CVE is pushed through
   [Manager] under three hostile regimes, and each cell must reach a
   terminal state (liveness) with a clean rollback audit (safety). *)

type scenario = Injected | Adversarial | Unhealthy

let all_scenarios = [ Injected; Adversarial; Unhealthy ]

let scenario_name = function
  | Injected -> "injected"
  | Adversarial -> "adversarial"
  | Unhealthy -> "unhealthy"

let scenario_char = function
  | Injected -> 'I'
  | Adversarial -> 'A'
  | Unhealthy -> 'U'

type mcell = {
  mc_status : Manager.status;
  mc_attempts : int;
  mc_clock : int;
  mc_events : int;
  mc_violations : int;
  mc_notes : string list;  (* scenario-contract breaches; [] = passed *)
  mc_report : Report.Json.t;  (* the cell's full manager event log *)
}

type mrow = {
  m_cve : string;
  m_cells : (scenario * mcell) list;
}

type mreport = {
  m_rows : mrow list;
  m_cells_total : int;
  m_healthy : int;
  m_parked : int;
  m_quarantined : int;
  m_violations : int;
  m_failures : int;  (* cells with contract breaches *)
}

(* the health gate the manager runs after every successful apply: the
   CVE's exploit must be blocked (where one exists) and a short stress
   smoke must pass *)
let health_checks (b : Boot.booted) (cve : Cve.t) =
  let exploit =
    match Exploits.find cve.id with
    | None -> []
    | Some ex ->
      [ { Manager.hc_name = "exploit:" ^ ex.name;
          hc_probe =
            (fun () ->
              let o = ex.run b in
              if o.succeeded then
                Error ("exploit still succeeds: " ^ o.detail)
              else Ok ()) } ]
  in
  exploit
  @ [ { Manager.hc_name = "stress-smoke";
        hc_probe =
          (fun () ->
            let r = Stress.run b ~threads:2 ~iterations:3 in
            if r.ok then Ok ()
            else Error (String.concat "; " r.failures)) } ]

(* tight enough that the watchdog and retry queue actually trip in the
   adversarial and forced-not-quiescent cells, loose enough that a
   drainable blocker still converges *)
let manager_policy ~seed =
  { Manager.default_policy with
    seed; deadline = 12_000; retry_limit = 4; backoff_base = 300;
    backoff_cap = 2_000; jitter = 100 }

let run_mcell ~seed scenario (cve : Cve.t) update =
  let b = Boot.boot () in
  let ap = Apply.init b.machine in
  let mgr = Manager.create ~policy:(manager_policy ~seed) ap in
  let health = health_checks b cve in
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := s :: !notes) fmt in
  let session = ref None in
  (match scenario with
   | Injected ->
     (* one canonical fault, at a step chosen deterministically from
        (seed, cve) — armed for the first attempt only, so the retry
        path sees the transient heal *)
     let steps = Txn.all_steps in
     let si = abs (Hashtbl.hash (seed, cve.id)) mod List.length steps in
     let step = List.nth steps si in
     let plan =
       { Faultinj.step; kind = Faultinj.kind_for_step step; seed }
     in
     let s = Faultinj.make b.machine plan in
     session := Some (plan, s);
     Manager.submit mgr update ~health
       ~inject:(fun ~attempt -> if attempt = 1 then Some s else None)
   | Adversarial ->
     (* an adversarial scheduler: a thread parked at the entry of a
        function the update will replace — its pc sits in the §5.2
        guard range until the manager's backoff drains it *)
     (match update.Ksplice.Update.replaced_functions with
      | (_, cfn) :: _ ->
        let raw, _ = Ksplice.Update.split_canonical cfn in
        (match
           Machine.lookup_name b.machine raw
           |> List.filter (fun (s : Klink.Image.syminfo) ->
                  s.kind = `Func)
         with
         | [ s ] ->
           ignore
             (Machine.spawn b.machine ~name:"churner" ~uid:1
                ~entry:s.addr ~args:[ 1l ]
               : Machine.thread)
         | _ -> ())
      | [] -> ());
     Manager.submit mgr update ~health
   | Unhealthy ->
     (* the update applies fine but the gate must fail: a canary probe
        forces the auto-revert/quarantine path *)
     let canary =
       { Manager.hc_name = "canary";
         hc_probe = (fun () -> Error "deliberately failing probe") }
     in
     Manager.submit mgr update ~health:(health @ [ canary ]));
  Manager.run mgr;
  (match !session with Some (_, s) -> Faultinj.disarm s | None -> ());
  let st =
    match Manager.status mgr cve.id with
    | Some st -> st
    | None -> Manager.Waiting
  in
  let attempts = Manager.attempts mgr cve.id in
  (* liveness: Manager.run returned and the update is terminal *)
  (match st with
   | Manager.Waiting -> note "not terminal: still waiting after run"
   | _ -> ());
  (* safety: every abort, park, and auto-revert audited byte-identical *)
  if Manager.violations mgr > 0 then
    note "%d rollback-audit violations" (Manager.violations mgr);
  (* scenario contracts *)
  (match scenario with
   | Injected ->
     let plan, s = Option.get !session in
     let fired = Faultinj.fired s in
     (match st with
      | Manager.Applied_healthy ->
        if fired && Faultinj.expect_abort plan.kind then begin
          (* only a transient quiescence fault may heal on retry *)
          if plan.kind <> Faultinj.Forced_not_quiescent then
            note "%a fired yet update went healthy" Faultinj.pp_plan plan
          else if attempts < 2 then
            note "healed %a without a retry" Faultinj.pp_plan plan
        end
      | Manager.Parked (Manager.Rejected _) ->
        if not (fired && Faultinj.expect_abort plan.kind) then
          note "parked though %a never fired" Faultinj.pp_plan plan
      | Manager.Parked _ ->
        (* a quiescence park can't happen here: the machine is at rest
           and the fault is armed for the first attempt only *)
        note "unexpected park class under %a" Faultinj.pp_plan plan
      | st -> note "unexpected state %s" (Manager.status_name st));
     if st <> Manager.Applied_healthy && Apply.applied ap <> [] then
       note "non-healthy outcome left the update applied"
   | Adversarial ->
     (match st with
      | Manager.Applied_healthy | Manager.Parked (Manager.Exhausted_retries _)
        -> ()
      | st -> note "unexpected state %s" (Manager.status_name st));
     if st <> Manager.Applied_healthy && Apply.applied ap <> [] then
       note "parked update still applied"
   | Unhealthy ->
     (match st with
      | Manager.Quarantined { reverted = true; evidence } ->
        if
          not
            (List.exists (fun (n, _) -> String.equal n "canary") evidence)
        then note "quarantine evidence misses the canary probe"
      | Manager.Quarantined { reverted = false; _ } ->
        note "auto-revert failed; unhealthy update still live"
      | st -> note "unexpected state %s" (Manager.status_name st));
     if Apply.applied ap <> [] then
       note "quarantined update still on the applied stack");
  {
    mc_status = st;
    mc_attempts = attempts;
    mc_clock = Manager.now mgr;
    mc_events = List.length (Manager.events mgr);
    mc_violations = Manager.violations mgr;
    mc_notes = List.rev !notes;
    mc_report = Manager.report mgr;
  }

let msummarize rows =
  let count f =
    List.fold_left
      (fun acc r ->
        acc + List.length (List.filter (fun (_, c) -> f c) r.m_cells))
      0 rows
  in
  {
    m_rows = rows;
    m_cells_total = count (fun _ -> true);
    m_healthy = count (fun c -> c.mc_status = Manager.Applied_healthy);
    m_parked =
      count (fun c ->
          match c.mc_status with Manager.Parked _ -> true | _ -> false);
    m_quarantined =
      count (fun c ->
          match c.mc_status with
          | Manager.Quarantined _ -> true
          | _ -> false);
    m_violations =
      List.fold_left
        (fun acc r ->
          acc
          + List.fold_left
              (fun acc (_, c) -> acc + c.mc_violations)
              0 r.m_cells)
        0 rows;
    m_failures = count (fun c -> c.mc_notes <> []);
  }

let run_manager ?(seed = 0) ?cves ?(scenarios = all_scenarios) ?progress
    ?domains () =
  let cves = Option.value cves ~default:Cve.all in
  let base = Base_kernel.tree () in
  let progress_m = Mutex.create () in
  let emit line =
    match progress with
    | None -> ()
    | Some f ->
      Mutex.lock progress_m;
      f line;
      Mutex.unlock progress_m
  in
  let rows =
    Parallel.map ?domains
      (fun (i, cve) ->
        let update = create_update cve base in
        let cells =
          List.map
            (fun sc ->
              let cell_seed = seed + (1013 * i) + Hashtbl.hash (scenario_name sc) in
              (sc, run_mcell ~seed:cell_seed sc cve update))
            scenarios
        in
        let row = { m_cve = cve.id; m_cells = cells } in
        emit
          (Printf.sprintf "%-14s %s" row.m_cve
             (String.concat " "
                (List.map
                   (fun (sc, c) ->
                     Printf.sprintf "%c:%s%s" (scenario_char sc)
                       (Manager.status_name c.mc_status)
                       (if c.mc_notes = [] then "" else "(FAIL)"))
                   row.m_cells)));
        row)
      (List.mapi (fun i cve -> (i, cve)) cves)
  in
  msummarize rows

let manager_ok r = r.m_failures = 0 && r.m_violations = 0

let pp_manager ppf r =
  Format.fprintf ppf
    "supervised sweep: %d CVEs x %d scenarios@\n@\n"
    (List.length r.m_rows)
    (match r.m_rows with [] -> 0 | row :: _ -> List.length row.m_cells);
  List.iter
    (fun row ->
      Format.fprintf ppf "%-16s %s@\n" row.m_cve
        (String.concat "  "
           (List.map
              (fun (sc, c) ->
                Printf.sprintf "%c:%-16s a=%d t=%-6d%s" (scenario_char sc)
                  (Manager.status_name c.mc_status)
                  c.mc_attempts c.mc_clock
                  (if c.mc_notes = [] then "" else " FAIL"))
              row.m_cells)))
    r.m_rows;
  Format.fprintf ppf
    "@\ncells: %d  healthy: %d  parked: %d  quarantined: %d  \
     audit violations: %d  contract failures: %d@\n"
    r.m_cells_total r.m_healthy r.m_parked r.m_quarantined r.m_violations
    r.m_failures;
  List.iter
    (fun row ->
      List.iter
        (fun (sc, c) ->
          if c.mc_notes <> [] then begin
            Format.fprintf ppf "FAILURE %s @@ %s:@\n" row.m_cve
              (scenario_name sc);
            List.iter (fun m -> Format.fprintf ppf "  %s@\n" m) c.mc_notes
          end)
        row.m_cells)
    r.m_rows;
  if manager_ok r then
    Format.fprintf ppf
      "every update reached a terminal state; every abort, park and \
       auto-revert audited byte-identical@\n"

let pp_matrix ppf r =
  let steps = Txn.all_steps in
  (* header: abbreviated step names, vertical *)
  Format.fprintf ppf "fault-injection sweep: %d CVEs x %d steps@\n@\n"
    (List.length r.rows) (List.length steps);
  Format.fprintf ppf "%-16s %s  recovered@\n" "CVE"
    (String.concat " "
       (List.map (fun s -> String.sub (Txn.step_name s) 0 2) steps));
  List.iter
    (fun row ->
      Format.fprintf ppf "%-16s %s  %s@\n" row.cve_id
        (String.concat "  "
           (List.map (fun (_, c) -> String.make 1 (cell_char c)) row.cells))
        (if row.recovered then "yes" else "NO"))
    r.rows;
  Format.fprintf ppf
    "@\nR rolled back clean  B benign  - fault never fired  ! violation@\n";
  Format.fprintf ppf
    "cells: %d  rolled-back: %d  benign: %d  n/a: %d  violations: %d  \
     recovery failures: %d@\n"
    r.total_cells r.rolled_back r.benign r.not_applicable r.violations
    r.recovery_failures;
  List.iter
    (fun row ->
      List.iter
        (fun (step, c) ->
          match c with
          | Violation msgs ->
            Format.fprintf ppf "VIOLATION %s @@ %s:@\n" row.cve_id
              (Txn.step_name step);
            List.iter (fun m -> Format.fprintf ppf "  %s@\n" m) msgs
          | _ -> ())
        row.cells;
      if not row.recovered then begin
        Format.fprintf ppf "RECOVERY FAILURE %s:@\n" row.cve_id;
        List.iter (fun m -> Format.fprintf ppf "  %s@\n" m) row.notes
      end)
    r.rows;
  if ok r then
    Format.fprintf ppf
      "all faulted applies rolled back byte-identically; all CVEs \
       re-applied, verified, stressed%s@\n"
      " and exploit-checked"
