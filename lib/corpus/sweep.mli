(** The systematic fault-injection sweep: for every CVE in the corpus,
    inject the canonical fault at each apply-pipeline step, assert
    crash-consistent rollback (byte-identical machine), then re-apply
    fault-free and confirm the patched kernel still survives the stress
    workload and blocks its exploit.

    The sweep is fully deterministic in [seed]; a failing cell can be
    replayed with [Faultinj.make] and the printed plan. *)

(** Outcome of one (CVE, step) cell. *)
type cell =
  | Rolled_back
      (** the fault fired, apply aborted, and the machine was
          byte-identical to its pre-apply snapshot *)
  | Benign
      (** a non-aborting fault ([Sched_perturb]) fired and apply still
          succeeded and verified *)
  | Not_applicable
      (** the armed fault never fired (e.g. a hook fault on an update
          with no hooks at that step); apply succeeded and was undone *)
  | Violation of string list
      (** rollback or abort contract broken; the diagnostics *)

val cell_char : cell -> char
(** [R]olled-back, [B]enign, [-] not applicable, [!] violation. *)

type row = {
  cve_id : string;
  cells : (Ksplice.Txn.step * cell) list;  (** in pipeline order *)
  recovered : bool;
      (** after the faulted cells: clean apply + verify + stress (+
          exploit blocked, where one exists) all passed *)
  notes : string list;  (** recovery diagnostics when [recovered = false] *)
}

type report = {
  rows : row list;
  total_cells : int;
  rolled_back : int;
  benign : int;
  not_applicable : int;
  violations : int;
  recovery_failures : int;
}

(** [run ?seed ?cves ?progress ?domains ()] sweeps [cves] (default: all
    64). Each CVE runs on its own freshly booted machine; rows are
    independent, so the sweep fans out across up to [domains] domains
    (default {!Parallel.default_domains}; [1] forces a serial sweep).
    [progress] (if given) receives one line per CVE as it completes —
    in completion order, which under parallelism need not be corpus
    order; the returned [rows] always are. *)
val run :
  ?seed:int ->
  ?cves:Cve.t list ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  unit ->
  report

(** No violations and every CVE recovered. *)
val ok : report -> bool

(** {1 The supervised (manager-level) sweep}

    The cells above prove §5.2 for a single transactional apply; this
    sweep proves the supervision loop around it. Every CVE is pushed
    through {!Manager.t} under three hostile regimes and must reach a
    terminal state (liveness) with clean rollback audits (safety). *)

type scenario =
  | Injected
      (** one canonical fault (step chosen deterministically from the
          seed) armed for the first apply attempt only: abort faults
          must park the update, the transient quiescence veto must heal
          through the retry queue, benign perturbation must not matter *)
  | Adversarial
      (** a thread parked at the entry of a to-be-replaced function
          blocks §5.2 quiescence until the manager's backoff drains
          it: the watchdog and retry queue do the work *)
  | Unhealthy
      (** a canary health probe always fails: the gate must unwind the
          probes, auto-revert, and quarantine with the evidence *)

val all_scenarios : scenario list
val scenario_name : scenario -> string

type mcell = {
  mc_status : Manager.status;  (** terminal state the cell reached *)
  mc_attempts : int;
  mc_clock : int;  (** manager steps driven *)
  mc_events : int;
  mc_violations : int;  (** rollback-audit failures (must be 0) *)
  mc_notes : string list;  (** contract breaches; [[]] = cell passed *)
  mc_report : Report.Json.t;  (** the cell's full manager event log *)
}

type mrow = {
  m_cve : string;
  m_cells : (scenario * mcell) list;
}

type mreport = {
  m_rows : mrow list;
  m_cells_total : int;
  m_healthy : int;
  m_parked : int;
  m_quarantined : int;
  m_violations : int;
  m_failures : int;
}

(** [run_manager ?seed ?cves ?scenarios ?progress ?domains ()] — same
    fan-out discipline as {!run}: one freshly booted machine per
    (CVE, scenario) cell, rows parallel across the domain pool,
    deterministic in [seed]. *)
val run_manager :
  ?seed:int ->
  ?cves:Cve.t list ->
  ?scenarios:scenario list ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  unit ->
  mreport

(** Zero contract failures and zero audit violations. *)
val manager_ok : mreport -> bool

val pp_manager : Format.formatter -> mreport -> unit

(** The step × fault matrix: one row per CVE, one column per pipeline
    step, plus totals and a closing verdict line. *)
val pp_matrix : Format.formatter -> report -> unit

(** {1 The crash sweep: persistence under process death}

    The filesystem analogue of {!run}: each sampled CVE's update is
    published into a fresh on-disk repository with a hard crash
    ({!Vfs.Crash}) injected at every i-th mutating I/O operation. After
    each crash the directory is reopened with a clean handle (the
    reboot); the recovered store must pass fsck, the chain must be
    atomically all-or-nothing (never half-published, never a dangling
    ref), and a garbage collection must reclaim every unreachable blob
    and none of the chain. A fault-free probe run per CVE sizes the
    sweep and proves publish→sync end to end. *)

type crow = {
  cr_cve : string;
  cr_ops : int;  (** mutating I/O ops in a fault-free publish *)
  cr_published : int;  (** crash points after which the chain survived whole *)
  cr_absent : int;  (** crash points after which it vanished atomically *)
  cr_gc_swept : int;  (** blobs reclaimed by the per-cell GCs *)
  cr_gc_bytes : int;  (** bytes reclaimed by the per-cell GCs *)
  cr_notes : string list;  (** violations; [[]] = row passed *)
}

type crash_report = {
  c_rows : crow list;
  c_cells : int;  (** total crash points exercised *)
  c_published : int;
  c_absent : int;
  c_violations : int;
  c_gc_swept : int;
  c_gc_bytes : int;
}

(** [run_crash ?seed ?cves ?progress ?domains ()] sweeps [cves]
    (default: every 8th corpus CVE — a deterministic 8-CVE sample; each
    row costs one publish+recover+gc round per I/O op). Same fan-out
    and determinism discipline as {!run}. *)
val run_crash :
  ?seed:int ->
  ?cves:Cve.t list ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  unit ->
  crash_report

(** The default sample {!run_crash} sweeps: every 8th corpus CVE. *)
val crash_sample : unit -> Cve.t list

(** No violations at any crash point. *)
val crash_ok : crash_report -> bool

val pp_crash : Format.formatter -> crash_report -> unit

(** {1 The transition sweep: patch under load with no global pause}

    Twin machines run the same busy multi-threaded stress workload;
    mid-flight, machine A applies the CVE's update through the
    per-thread engagement ({!Manager.Transition.engage}) and machine B
    through the paper's §5.2 stop_machine loop. Contracts per row:

    - both workloads keep every invariant across the live patch;
    - the per-thread apply converges with {e zero} simulated pause, no
      forced migrations, and no fallback;
    - both machines end with byte-identical patch footprints
      ([Apply.footprint]);
    - the reverse transition (undo under load) restores the saved entry
      bytes exactly and the footprints agree again;
    - a forced straggler — a thread parked asleep inside the patched
      function — demotes the engagement to the bounded stop_machine
      fallback, which must converge, force-migrate it, and still land
      the identical footprint. *)

type trow = {
  t_cve : string;
  t_threads : int;  (** threads alive when the transition began *)
  t_pause_ns : int;  (** per-thread apply pause (0 = pauseless) *)
  t_undo_pause_ns : int;  (** reverse-transition pause *)
  t_base_pause_ns : int;  (** stop_machine baseline pause under load *)
  t_migrated : (string * int) list;  (** safe-point class -> threads *)
  t_rounds : int;  (** migration rounds of the per-thread apply *)
  t_sched_steps : int;  (** instructions the machine ran meanwhile *)
  t_straggler_forced : int;  (** forced migrations in the straggler cell *)
  t_straggler_pause_ns : int;  (** fallback pause in the straggler cell *)
  t_notes : string list;  (** contract breaches; [[]] = row passed *)
}

type treport = {
  t_rows : trow list;
  t_pauseless : int;  (** rows whose per-thread apply never paused *)
  t_fallbacks : int;  (** straggler cells that engaged the fallback *)
  t_violations : int;
}

(** [run_transition ?cves ?progress ?domains ()] sweeps [cves] (default:
    {!transition_sample}). Same fan-out discipline as {!run}; the sweep
    is deterministic (the machines are). *)
val run_transition :
  ?cves:Cve.t list ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  unit ->
  treport

(** The default sample {!run_transition} sweeps: every 8th corpus CVE. *)
val transition_sample : unit -> Cve.t list

(** No contract breaches on any row. *)
val transition_ok : treport -> bool

val pp_transition : Format.formatter -> treport -> unit

(** {1 The fleet sweep: distribution under transport faults}

    The wire analogue of {!run_crash}: for each sampled CVE a server
    repository publishes a short stacked chain (the CVE plus the next
    corpus CVEs still applicable to the patched tree, at most three
    hops). A fault-free probe sync counts the frames a full mirror
    costs; then {e every} {!Fleet.Transport.fault_kind} is injected at
    {e every} frame index, and a fresh subscriber must still converge —
    retried sync byte-identical to the server's chain refs, mirror
    fsck-clean, zero redundant blob transfers — deterministically in
    [seed]. One extra cell per row proves graceful degradation: with the
    server unreachable the subscriber keeps its old head over a
    fsck-clean store. *)

type frow = {
  fl_cve : string;
  fl_depth : int;  (** entries published on the server chain *)
  fl_frames : int;  (** frames crossing the wire in a fault-free sync *)
  fl_cells : int;  (** (fault kind × frame) cells plus the degraded cell *)
  fl_retried : int;  (** cells that needed more than one attempt *)
  fl_bytes_saved : int;  (** bytes resume skipped re-downloading *)
  fl_notes : string list;  (** violations; [[]] = row passed *)
}

type fleet_report = {
  fl_rows : frow list;
  fl_total_cells : int;
  fl_total_retried : int;
  fl_total_saved : int;
  fl_violations : int;
}

(** [run_fleet ?seed ?cves ?progress ?domains ()] — same fan-out and
    determinism discipline as {!run_crash}. *)
val run_fleet :
  ?seed:int ->
  ?cves:Cve.t list ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  unit ->
  fleet_report

(** The default sample {!run_fleet} sweeps: every 8th corpus CVE. *)
val fleet_sample : unit -> Cve.t list

(** No violations in any cell. *)
val fleet_ok : fleet_report -> bool

val pp_fleet : Format.formatter -> fleet_report -> unit

(** {1 The cumulative sweep: atomic replace at depth}

    For each requested depth [k] a chain of [k] corpus CVEs (each still
    applicable to the successively patched tree) is published into a
    repository and collapsed with {!Ksplice.Repository.publish_cumulative}.
    Contracts per row:

    - the collapse's [supersedes] lists exactly the chain ids, oldest
      first;
    - on a machine carrying the stacked chain,
      {!Ksplice.Apply.apply_cumulative} lands a footprint byte-identical
      to the undo-then-plain-apply twin;
    - undoing the collapse re-stacks the original chain;
    - a fault injected at every {!Ksplice.Txn.step} aborts the whole
      collapse — unwind and install alike — back to the byte-identical
      stacked machine;
    - the repository (per-update chain plus cumulative entry) passes
      fsck.

    The shadow rows prove §5.3 end to end for {!Cve.shadow_extras}:
    patch (the ctor attaches the side table), exploit blocked, collapse
    and un-collapse keep the shadows live, the final undo runs the dtors
    and the exploit returns. *)

type curow = {
  cu_requested : int;
  cu_depth : int;  (** chain entries actually published *)
  cu_chain : string list;  (** update ids, oldest first *)
  cu_cells : (Ksplice.Txn.step * cell) list;
  cu_fsck_clean : bool;
  cu_notes : string list;  (** violations; [[]] = row passed *)
}

type cushadow = {
  cs_cve : string;
  cs_shadows : int;  (** shadow bindings live after the collapse *)
  cs_notes : string list;
}

type cumulative_report = {
  cu_rows : curow list;
  cu_shadows : cushadow list;
  cu_total_cells : int;
  cu_rolled_back : int;
  cu_violations : int;
}

(** The default depths {!run_cumulative} sweeps: [1; 8; 32]. *)
val cumulative_depths : int list

(** [run_cumulative ?seed ?depths ?progress ?domains ()] — same fan-out
    and determinism discipline as {!run}. A depth row publishes as many
    chain entries as the corpus still yields ([cu_depth] ≤
    [cu_requested] — the shortfall is reported, not hidden). *)
val run_cumulative :
  ?seed:int ->
  ?depths:int list ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  unit ->
  cumulative_report

(** No violations in any row. *)
val cumulative_ok : cumulative_report -> bool

val pp_cumulative : Format.formatter -> cumulative_report -> unit

(** {1 The minimal-differencing sweep}

    For every corpus CVE plus the shadow and differencing extras, the
    update is created twice — function-granular minimal (the default)
    and whole-unit baseline ([~minimal:false]) — and the minimal one is
    proven complete: it applies, verifies, survives stress, blocks the
    CVE's exploit where one is registered, lands a deterministic
    footprint on twin boots, and every defined symbol of its primary
    carries an inclusion reason. Alongside, the sweep measures what
    minimality buys (update bytes, run-pre candidate trials) and counts
    the engine's qualitative demos: symbols shipped by dependency
    closure, functions shipped as data referents, and Table-1 data-init
    mainline patches refused as {!Ksplice.Create.Data_semantics_changed}
    with the datum named. *)

type dmrow = {
  dm_cve : string;
  dm_min_bytes : int;
  dm_whole_bytes : int;
  dm_min_syms : int;  (** defined symbols shipped in the minimal primary *)
  dm_whole_syms : int;
  dm_min_trials : int;  (** run-pre candidate trials during apply *)
  dm_whole_trials : int;
  dm_closure : bool;  (** some symbol shipped by dependency closure *)
  dm_data_ref : bool;  (** some function shipped as a data referent *)
  dm_notes : string list;  (** violations; [[]] = row passed *)
}

type dm_report = {
  dm_rows : dmrow list;
  dm_bytes_min : int;
  dm_bytes_whole : int;
  dm_trials_min : int;
  dm_trials_whole : int;
  dm_closure_demos : int;
  dm_dataref_demos : int;
  dm_persist_rejects : int;
      (** Table-1 mainline patches refused as [Data_semantics_changed] *)
  dm_violations : int;
}

(** The default rows: {!Cve.all} plus {!Cve.shadow_extras} plus
    {!Cve.diff_extras}. *)
val diffmin_cves : unit -> Cve.t list

val run_diffmin :
  ?cves:Cve.t list ->
  ?progress:(string -> unit) ->
  ?domains:int ->
  unit ->
  dm_report

(** No violations, at least one closure / data-referent / refusal demo
    each, and the minimal updates cost strictly fewer bytes (and no more
    run-pre trials) than the whole-unit baseline. *)
val diffmin_ok : dm_report -> bool

val pp_diffmin : Format.formatter -> dm_report -> unit
