module Machine = Kernel.Machine
module Image = Klink.Image

exception Error of string

let err fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

let compile ~name ~src =
  match
    Minic.Driver.compile ~options:Minic.Driver.run_build ~unit_name:name src
  with
  | Ok { obj; _ } -> obj
  | Error e -> err "%a" Minic.Driver.pp_error e

let load machine ~name ~src =
  let obj = compile ~name ~src in
  let link base =
    match Image.link ~base [ obj ] with
    | Ok img -> img
    | Error e -> err "%s: %a" name Image.pp_error e
  in
  (* measure at a probe base, then place the image in module memory *)
  let probe = link 0x40_0000 in
  let base = Machine.alloc_module machine ~size:probe.size ~align:4096 in
  let img = link base in
  Machine.write_bytes machine base img.data;
  match Image.lookup_global img "main" with
  | Some s -> s.addr
  | None -> err "%s: no main function" name

let run ?(max_steps = 2_000_000) ?(uid = 1000) machine ~name ~src ~args () =
  let entry = load machine ~name ~src in
  let th = Machine.spawn machine ~name ~uid ~entry ~args in
  let result = ref None in
  let spent = ref 0 in
  while Option.is_none !result do
    (match th.state with
     | Machine.Exited v -> result := Some (Ok v)
     | Machine.Faulted f -> result := Some (Error f)
     | _ when !spent >= max_steps -> result := Some (Error Machine.Step_limit)
     | _ ->
       let n = Machine.run machine ~steps:10_000 in
       spent := !spent + n;
       if n = 0 then
         (* deadlock: nothing runnable and this thread never finished *)
         result := Some (Error Machine.Step_limit));
    ()
  done;
  (Option.get !result, th)
