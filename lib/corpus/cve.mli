(** The synthetic CVE corpus: 64 security patches against the base
    kernel, mirroring the structure of the paper's evaluation set
    (§6.1) — all with greater consequences than denial of service
    (privilege escalation ~2/3, information disclosure ~1/3), mostly
    small patches, eight requiring custom update-time code (Table 1:
    seven "changes data init", one "adds field to struct"). *)

type consequence = Priv_escalation | Info_disclosure

type custom_reason =
  | Changes_data_init
  | Adds_struct_field
  | Updates_derived_state
      (** state computed from read-only data the patch replaces — the
          update refreshes the cache via an apply hook *)

val reason_to_string : custom_reason -> string

type t = {
  id : string;
  file : string;  (** primary unit the patch touches *)
  desc : string;
  consequence : consequence;
  (* source fix: (file, old snippet, new snippet), replace-once each *)
  fix : (string * string * string) list;
  (* Table-1 entries carry custom update-time code appended to [file] *)
  custom : (custom_reason * string) option;
}

(** All 64 CVEs, in corpus order. *)
val all : t list

(** Shadow-variable extras, kept out of {!all} so the evaluation corpus
    stays the paper's 64: struct-layout extensions whose new field lives
    in the machine's shadow table, built and torn down by
    [ksplice_shadow_ctor]/[ksplice_shadow_dtor] hooks. Exercised by the
    cumulative-update sweep. *)
val shadow_extras : t list

(** Differencing extras, likewise kept out of {!all}: corpus rows built
    to demonstrate the minimal-differencing engine's data-referent and
    closure passes. {!diff_banner} replaces a string literal — the
    reading function's code is byte-identical yet must ship (its
    relocation moved to fresh read-only data), and the derived checksum
    cache is refreshed by an apply hook. *)
val diff_extras : t list

val diff_banner : t

(** The banner string before/after {!diff_banner} — the sweep computes
    the expected checksum of [banner_new] to verify the refresh ran
    through the trampolined function. *)
val banner_old : string

val banner_new : string

val find : string -> t option

(** [fixed_tree cve base] is the source tree with the mainline fix
    applied (no custom code). @raise Failure when a snippet is missing —
    corpus self-check. *)
val fixed_tree : t -> Patchfmt.Source_tree.t -> Patchfmt.Source_tree.t

(** [applies_to cve tree] is true when every snippet the fix rewrites is
    present in [tree] — i.e. the vulnerability exists in that kernel
    version (§6.2: "no single Linux kernel version needs all 64
    patches"). *)
val applies_to : t -> Patchfmt.Source_tree.t -> bool

(** [fixed_tree_opt cve tree] is [fixed_tree] returning [None] instead of
    raising when the fix does not apply to this source state. *)
val fixed_tree_opt :
  t -> Patchfmt.Source_tree.t -> Patchfmt.Source_tree.t option

(** [hot_tree_opt cve tree] likewise, with custom code appended. *)
val hot_tree_opt :
  t -> Patchfmt.Source_tree.t -> Patchfmt.Source_tree.t option

(** [hot_tree cve base] additionally appends the custom update code (for
    the eight Table-1 entries); equal to [fixed_tree] otherwise. *)
val hot_tree : t -> Patchfmt.Source_tree.t -> Patchfmt.Source_tree.t

(** [mainline_patch cve base] is the upstream patch — what Figure 3
    counts. *)
val mainline_patch : t -> Patchfmt.Source_tree.t -> Patchfmt.Diff.t

(** [hot_patch cve base] is the patch fed to ksplice-create (mainline
    plus custom code where needed). *)
val hot_patch : t -> Patchfmt.Source_tree.t -> Patchfmt.Diff.t

(** [custom_code_lines cve] counts the logical (semicolon-terminated)
    lines of custom code, as Table 1 does. 0 when no custom code. *)
val custom_code_lines : t -> int
