(* The synthetic kernel the evaluation runs against: a ~20-unit MiniC/asm
   source tree with 64 security bugs planted, mirroring the texture of the
   paper's corpus — small checker functions that get inlined into their
   callers, identically-named static symbols across units, an assembly
   syscall entry path, per-subsystem state, and custom-code-requiring
   initialisation patterns.

   Syscall numbers are fixed by the table in entry.s; the Sys module names
   them for exploits and the stress test. *)

(* --- syscall numbers (indices into sys_call_table) --- *)
module Sys_nr = struct
  let getpid = 0
  let write_log = 1
  let gettick = 2
  let prctl = 3
  let admin_op = 4
  let pipe_write = 5
  let pipe_flush = 6
  let proc_status = 7
  let set_hook = 8
  let counter_add = 9
  let counter_get = 10
  let fs_open = 11
  let fs_read = 12
  let fs_setattr = 13
  let net_send = 14
  let net_recv = 15
  let sock_opt = 16
  let ipc_send = 17
  let ipc_recv = 18
  let mm_brk = 19
  let mm_mmap = 20
  let sig_send = 21
  let sig_mask = 22
  let time_set = 23
  let time_get = 24
  let tty_ioctl = 25
  let xattr_set = 26
  let xattr_get = 27
  let key_add = 28
  let key_read = 29
  let quota_set = 30
  let quota_get = 31
  let audit_log = 32
  let audit_read = 33
  let dst_tune = 34
  let dst_ca_info = 35
  let mod_stat = 36
  let uid_get = 37
  let setuid = 38
  let video_ioctl = 39
  let usb_submit = 40
  let splice_pages = 41
  let random_read = 42
  let personality = 43
  let capset = 44
  let capget = 45
  let sched_yield = 46
  let sched_nice = 47
  let count = 48
end

let entry_s =
  {|; syscall entry path (the ia32entry.S analogue).
; nr in r0, args in r1..r3. The table lives in this unit's .data.
.text
.global syscall_entry
syscall_entry:
  cmpi r0, 48
  jge .Lbad
  push r3
  push r2
  push r1
  mov r4, sys_call_table
  mov r5, r0
  mov r7, 4
  mul r5, r7
  add r4, r5
  loadw r4, [r4+0]
  callr r4
  pop r1
  pop r2
  pop r3
  ret
.Lbad:
  mov r0, -1
  ret

.data
.global kernel_hook
kernel_hook:
  .word 0
.global sys_call_table
sys_call_table:
  .word sys_getpid
  .word sys_write_log
  .word sys_gettick
  .word sys_prctl
  .word sys_admin_op
  .word sys_pipe_write
  .word sys_pipe_flush
  .word sys_proc_status
  .word sys_set_hook
  .word sys_counter_add
  .word sys_counter_get
  .word sys_fs_open
  .word sys_fs_read
  .word sys_fs_setattr
  .word sys_net_send
  .word sys_net_recv
  .word sys_sock_opt
  .word sys_ipc_send
  .word sys_ipc_recv
  .word sys_mm_brk
  .word sys_mm_mmap
  .word sys_sig_send
  .word sys_sig_mask
  .word sys_time_set
  .word sys_time_get
  .word sys_tty_ioctl
  .word sys_xattr_set
  .word sys_xattr_get
  .word sys_key_add
  .word sys_key_read
  .word sys_quota_set
  .word sys_quota_get
  .word sys_audit_log
  .word sys_audit_read
  .word sys_dst_tune
  .word sys_dst_ca_info
  .word sys_mod_stat
  .word sys_uid_get
  .word sys_setuid
  .word sys_video_ioctl
  .word sys_usb_submit
  .word sys_splice_pages
  .word sys_random_read
  .word sys_personality
  .word sys_capset
  .word sys_capget
  .word sys_sched_yield
  .word sys_sched_nice
|}

let init_c =
  {|/* boot-time state; the secret token models kernel data that must not
   leak to user space */
int boot_token = 0;
int boot_done = 0;
int panic_count = 0;

extern int proc_count;
extern int quota_default;

void kernel_init() {
  boot_token = 0x5EC2E7;
  boot_done = 1;
  proc_count = 1;
  quota_default = 1024;
}

int sys_getpid() { return 1; }

int sys_gettick() { return __gettick(); }

int sys_uid_get() { return __getuid(); }
|}

let creds_c =
  {|/* credentials: per-thread uid lives host-side; capability word and
   dumpable flag are kernel globals (single traced process model) */
int cur_caps = 0;
int dumpable = 0;

/* CAP_ADMIN is bit 4 */
static int cap_admin_mask = 16;

void grant_root() { __setuid(0); }

int capable_admin() {
  return (cur_caps & cap_admin_mask) || __getuid() == 0;
}

int sys_setuid(int uid) {
  if (__getuid() != 0)
    return -1;
  __setuid(uid);
  return 0;
}

/* CVE-A03 (prctl, CVE-2006-2451 analogue): PR_SET_KEEPCAPS stores the
   raw argument into the capability word instead of masking it to the
   single KEEPCAPS bit, so an unprivileged caller can grant itself
   CAP_ADMIN. */
int sys_prctl(int option, int arg) {
  if (option == 1) {
    dumpable = arg & 1;
    return 0;
  }
  if (option == 2) {
    cur_caps = arg;
    return 0;
  }
  if (option == 3)
    return dumpable;
  return -1;
}

/* admin_op: privileged maintenance operations gated on capable_admin */
int sys_admin_op(int op, int arg) {
  if (!capable_admin())
    return -1;
  if (op == 1) {
    __setuid(arg);
    return 0;
  }
  if (op == 2) {
    dumpable = 0;
    return 0;
  }
  return -1;
}

int creds_cap_census(int flag) {
  int i;
  int n = 0;
  if (flag) {
    for (i = 0; i < 8; i = i + 1) {
      if (cur_caps & (1 << i))
        n = n + 1;
    }
  }
  return n;
}

int sys_capset(int caps) {
  if (__getuid() != 0)
    return -1;
  cur_caps = caps;
  return 0;
}

int sys_capget() { return cur_caps; }
|}

let pipe_c =
  {|/* in-kernel pipe with a notification callback (the vmsplice
   CVE-2008-0600 analogue lives here) */
int pipe_buf[16];
int pipe_notify_fn;
int pipe_len = 0;
static int pipe_debug = 0;

/* CVE-A05: no bound check on len, so a long write runs past pipe_buf
   and overwrites pipe_notify_fn with attacker data */
int sys_pipe_write(int src, int len) {
  int i;
  int *p = (int*)src;
  for (i = 0; i < len; i = i + 1)
    pipe_buf[i] = p[i];
  pipe_len = len;
  return len;
}

int sys_pipe_flush() {
  int fp;
  if (pipe_debug)
    __putc('F');
  if (pipe_notify_fn != 0) {
    fp = pipe_notify_fn;
    fp();
  }
  pipe_len = 0;
  return 0;
}

/* CVE-A41 (splice): page count check uses > instead of >=, allowing one
   extra page descriptor to be read back (info leak of the word after the
   buffer) */
static int splice_limit(int n) { return n > 17; }

int sys_splice_pages(int idx) {
  if (splice_limit(idx))
    return -1;
  if (idx < 0)
    return -1;
  return pipe_buf[idx];
}
|}

let proc_c =
  {|/* process info pseudo-filesystem */
int proc_count = 0;
static int last_field = 0;

extern int boot_token;

struct task {
  int pid;
  int uid;
  int nice;
  int token;
};

struct task task_table[8];

void task_init(int pid, int uid) {
  struct task *t = &task_table[pid & 7];
  t->pid = pid;
  t->uid = uid;
  t->nice = 0;
  t->token = boot_token;
}

/* CVE-A07 (CVE-2006-3626 analogue): status read has no ownership check,
   leaking another task's token (which equals the boot token) */
int sys_proc_status(int pid, int field) {
  struct task *t = &task_table[pid & 7];
  last_field = field;
  if (field == 0)
    return t->pid;
  if (field == 1)
    return t->uid;
  if (field == 2)
    return t->token;
  return -1;
}

static int clamp_nonneg(int v) {
  if (v < 0)
    return 0;
  return v;
}

int sys_mod_stat() { return clamp_nonneg(proc_count + last_field); }
|}

let misc_c =
  {|/* miscellaneous kernel services */
extern int kernel_hook;

/* profiling hook: stores a marker word readable by debug tooling; part
   of the CVE-A00 (entry.s) exploit chain */
int sys_set_hook(int v) {
  kernel_hook = v;
  return 0;
}

int misc_spin_count(int rounds) {
  int i;
  int n = 0;
  if (rounds > 0) {
    for (i = 0; i < rounds; i = i + 1)
      n = n + 2;
  }
  return n;
}

int sys_sched_yield() {
  __yield();
  return 0;
}

static int nice_floor = -20;

int sched_policy_quantum(int policy) {
  int q = 0;
  do {
    q += 10;
    policy--;
  } while (policy > 0);
  return q;
}

int sys_sched_nice(int n) {
  if (n < nice_floor)
    n = nice_floor;
  if (n > 19)
    n = 19;
  return n;
}

/* CVE-A43 (personality): the personality word is stored unmasked;
   reserved high bits are supposed to be cleared for non-root */
int personality_word = 0;

static int pers_ok(int p) { return p != -1; }

int sys_personality(int p) {
  if (!pers_ok(p))
    return -1;
  personality_word = p;
  return personality_word;
}
|}

let counters_c =
  {|/* global counters used by the stress test to detect corruption */
int counters[8];
static int trace_adds = 0;

static int counter_ok(int idx) { return idx < 8; }

int sys_counter_add(int idx, int delta) {
  static int op_count = 0;
  if (!counter_ok(idx))
    return -1;
  op_count = op_count + 1;
  counters[idx] = counters[idx] + delta;
  if (trace_adds)
    __putc('C');
  return counters[idx];
}

int sys_counter_get(int idx) {
  if (!counter_ok(idx))
    return -1;
  return counters[idx];
}

static int clamp_nonneg(int v) {
  if (v < 0)
    return 0;
  return v;
}

int counters_checksum() {
  int s = 0;
  int i;
  for (i = 0; i < 8; i = i + 1)
    s = s + counters[i];
  return clamp_nonneg(s);
}
|}

let fs_c =
  {|/* a tiny file table */
struct file {
  int inode;
  int mode;
  int owner;
  int size;
};

struct file file_table[16];
int file_count = 0;
static int tables_built = 0;

void fs_init() {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    file_table[i].inode = 0;
    file_table[i].mode = 0;
    file_table[i].owner = 0;
    file_table[i].size = 0;
  }
  tables_built = 1;
}

static int mode_allows(int mode, int uid, int owner) {
  if (uid == 0)
    return 1;
  if (uid == owner)
    return (mode & 4) != 0;
  return (mode & 1) != 0;
}

int fs_count_open(int check_owner) {
  int i;
  int n = 0;
  if (check_owner) {
    for (i = 0; i < 16; i = i + 1) {
      if (file_table[i].inode != 0 && file_table[i].owner == __getuid())
        n = n + 1;
    }
  }
  return n;
}

int sys_fs_open(int inode, int mode) {
  int i;
  if (file_count >= 16)
    return -1;
  i = file_count;
  file_table[i].inode = inode;
  file_table[i].mode = mode;
  file_table[i].owner = __getuid();
  file_table[i].size = 0;
  file_count = file_count + 1;
  return i;
}

/* CVE-A12: the index check stops at the table size, not at file_count,
   leaking stale file entries (information disclosure) */
static int fd_ok(int fd) { return fd >= 0 && fd < 16; }

int sys_fs_read(int fd, int field) {
  struct file *f;
  if (!fd_ok(fd))
    return -1;
  f = &file_table[fd];
  if (!mode_allows(f->mode, __getuid(), f->owner))
    return -1;
  if (field == 0)
    return f->inode;
  if (field == 1)
    return f->size;
  return f->mode;
}

/* CVE-A13: setattr lets any user change the owner field (chown with no
   privilege check) */
int sys_fs_setattr(int fd, int attr, int value) {
  struct file *f;
  if (fd < 0 || fd >= file_count)
    return -1;
  f = &file_table[fd];
  if (attr == 1) {
    f->mode = value;
    return 0;
  }
  if (attr == 2) {
    f->owner = value;
    return 0;
  }
  return -1;
}
|}

let net_c =
  {|/* network buffers */
int net_tx[32];
int net_rx[32];
int net_tx_len = 0;
static int tx_limit = 32;

static int frame_ok(int len) { return len <= tx_limit; }

/* CVE-A14: length check happens after the copy (time-of-check bug
   simplified): a long frame scribbles past net_tx */
int sys_net_send(int src, int len) {
  int i;
  int *p = (int*)src;
  for (i = 0; i < len; i = i + 1)
    net_tx[i] = p[i];
  if (!frame_ok(len))
    return -1;
  net_tx_len = len;
  return len;
}

/* CVE-A15: negative index not rejected (signedness), allowing reads
   below net_rx */
int sys_net_recv(int idx) {
  if (idx >= 32)
    return -1;
  return net_rx[idx];
}
|}

let sock_c =
  {|/* socket options; the struct-field CVE (CVE-2005-2709 analogue) is
   fixed by adding a peer-credential field via shadow data */
struct sock {
  int proto;
  int state;
  int opt_flags;
  int backlog;
};

struct sock sock_table[8];
int sock_count = 0;
static int sock_debug = 0;

static int flags_ok(int val) { return val != -1; }

void sock_init() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    sock_table[i].proto = 0;
    sock_table[i].state = 0;
    sock_table[i].opt_flags = 0;
    sock_table[i].backlog = 0;
  }
  sock_count = 8;
}

/* CVE-A16: SO_PEERCRED-style option reports stale credentials: the
   stored opt_flags word doubles as the peer uid, so any user can set a
   fake peer uid and later pass peer checks */
int sys_sock_opt(int idx, int op, int val) {
  struct sock *s;
  if (idx < 0 || idx >= 8)
    return -1;
  s = &sock_table[idx];
  if (sock_debug)
    __putc('S');
  if (op == 1) {
    if (!flags_ok(val))
      return -1;
    s->opt_flags = val;
    return 0;
  }
  if (op == 2)
    return s->opt_flags;
  if (op == 3)
    return s->state;
  return -1;
}

int sock_peer_allows(int idx) {
  struct sock *s = &sock_table[idx & 7];
  if (s->opt_flags == 0)
    return 0;
  return 1;
}
|}

let ipc_c =
  {|/* message queue */
int ipc_queue[16];
int ipc_head = 0;
int ipc_tail = 0;
static int ipc_active = 0;

static inline int slot_of(int v) { return v & 15; }

int sys_ipc_send(int msg) {
  int next = slot_of(ipc_tail + 1);
  if (next == slot_of(ipc_head))
    return -1;
  ipc_queue[slot_of(ipc_tail)] = msg;
  ipc_tail = ipc_tail + 1;
  ipc_active = 1;
  return 0;
}

/* CVE-A18: receive does not check queue emptiness, replaying stale
   kernel words from the ring (info leak) */
int sys_ipc_recv() {
  int v = ipc_queue[slot_of(ipc_head)];
  ipc_head = ipc_head + 1;
  return v;
}
|}

let mm_c =
  {|/* memory accounting */
int brk_limit = 4096;
int cur_brk = 0;
int mmap_count = 0;
static int limit = 64;

static int within_brk(int n) { return n <= brk_limit; }

int sys_mm_brk(int n) {
  if (n < 0)
    return -1;
  if (!within_brk(n))
    return -1;
  cur_brk = n;
  return cur_brk;
}

/* CVE-A20: mmap count check uses the wrong limit variable, permitting
   unbounded mappings (resource-limit bypass escalating to overwrite of
   the adjacent quota table in the original advisory) */
int sys_mm_mmap(int len) {
  if (len <= 0)
    return -1;
  if (mmap_count >= brk_limit)
    return -1;
  mmap_count = mmap_count + 1;
  return mmap_count;
}

static int clamp_nonneg(int v) {
  if (v < 0)
    return 0;
  return v;
}

int mm_usage() { return clamp_nonneg(cur_brk + mmap_count * limit); }
|}

let signal_c =
  {|/* signals */
int pending_sig = 0;
int sig_mask_word = 0;
static int masks_used = 0;

static int sig_valid(int s) { return s > 0 && s < 32; }

/* CVE-A21: missing permission check lets any user signal pid 1 (kill
   of privileged process -> escalation in the original advisory) */
int sys_sig_send(int pid, int sig) {
  if (!sig_valid(sig))
    return -1;
  pending_sig = sig;
  if (pid == 1)
    return 0;
  return 0;
}

int sys_sig_mask(int mask) {
  sig_mask_word = sig_mask_word | mask;
  masks_used = 1;
  return sig_mask_word;
}
|}

let time_c =
  {|/* time keeping */
int time_offset = 0;
int tz_minutes = 0;
static int clock_set = 0;

/* CVE-A23: settime allows any user to set the clock (missing root
   check) */
int sys_time_set(int t) {
  time_offset = t - __gettick();
  clock_set = 1;
  return 0;
}

int sys_time_get() { return __gettick() + time_offset; }
|}

let tty_c =
  {|/* terminal ioctls */
int tty_mode = 0;
int tty_owner = 1000;
static int tty_debug = 0;

static int is_owner() { return __getuid() == tty_owner; }

int tty_mode_class(int mode) {
  int c;
  switch (mode) {
  case 0:
    c = 'r';
    break;
  case 1:
  case 2:
    c = 'c';
    break;
  case 3:
    c = 'x';      /* falls through to the sanity clamp */
  case 4:
    c = c & 127;
    break;
  default:
    c = '?';
  }
  return c;
}

/* CVE-A25: TIOCSTI-style injection: mode 7 pushes a character into the
   console as if typed by the owner, with no ownership check */
int sys_tty_ioctl(int op, int arg) {
  if (op == 1) {
    if (!is_owner() && __getuid() != 0)
      return -1;
    tty_mode = arg;
    return 0;
  }
  if (op == 7) {
    __putc(arg);
    return 0;
  }
  if (tty_debug)
    __putc('T');
  return tty_mode;
}
|}

let xattr_c =
  {|/* extended attributes */
int xattr_keys[8];
int xattr_vals[8];
int xattr_count = 0;
static int table_cap = 8;

static int find_key(int key) {
  int i;
  for (i = 0; i < xattr_count; i = i + 1) {
    if (xattr_keys[i] == key)
      return i;
  }
  return -1;
}

/* CVE-A26: set does not verify ownership of the security namespace
   (keys above 100 are security.* and must be root-only) */
int sys_xattr_set(int key, int val) {
  int i = find_key(key);
  if (i < 0) {
    if (xattr_count >= table_cap)
      return -1;
    i = xattr_count;
    xattr_count = xattr_count + 1;
    xattr_keys[i] = key;
  }
  xattr_vals[i] = val;
  return 0;
}

int sys_xattr_get(int key) {
  int i = find_key(key);
  if (i < 0)
    return -1;
  return xattr_vals[i];
}
|}

let keyring_c =
  {|/* in-kernel keyring */
struct kkey {
  int serial;
  int owner;
  int perm;
  int payload;
};

struct kkey key_table[8];
int key_count = 0;
static int ring_ready = 0;

extern int boot_token;

void keyring_init() {
  key_table[0].serial = 1;
  key_table[0].owner = 0;
  key_table[0].perm = 0;
  key_table[0].payload = boot_token;
  key_count = 1;
  ring_ready = 1;
}

int sys_key_add(int payload) {
  struct kkey *k;
  if (key_count >= 8)
    return -1;
  k = &key_table[key_count];
  k->serial = key_count + 1;
  k->owner = __getuid();
  k->perm = 1;
  k->payload = payload;
  key_count = key_count + 1;
  return k->serial;
}

/* CVE-A29: permission check compares against the requesting serial
   instead of the key's permission bits, leaking key 1 (the root key
   holding the boot token) */
int sys_key_read(int serial) {
  int i;
  for (i = 0; i < key_count; i = i + 1) {
    if (key_table[i].serial == serial) {
      if (key_table[i].owner != __getuid() && serial != 1)
        return -1;
      return key_table[i].payload;
    }
  }
  return -1;
}
|}

let quota_c =
  {|/* disk quotas: initialisation pattern that the Table-1 custom-code
   patches exercise */
int quota_default = 0;
int quota_table[8];
int quota_used[8];
static int tables_ready = 0;

void quota_init() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    quota_table[i] = quota_default;
    quota_used[i] = 0;
  }
  tables_ready = 1;
}

static int quota_room(int uid, int n) {
  return quota_used[uid & 7] + n <= quota_table[uid & 7];
}

int sys_quota_set(int uid, int limit) {
  if (__getuid() != 0)
    return -1;
  quota_table[uid & 7] = limit;
  return 0;
}

/* CVE-A31: get leaks other users' usage without a permission check */
int sys_quota_get(int uid, int field) {
  if (field == 0)
    return quota_table[uid & 7];
  return quota_used[uid & 7];
}

int quota_charge(int uid, int n) {
  if (!quota_room(uid, n))
    return -1;
  quota_used[uid & 7] = quota_used[uid & 7] + n;
  return 0;
}
|}

let audit_c =
  {|/* audit ring buffer */
int audit_ring[32];
int audit_pos = 0;
static int limit = 32;

inline int audit_slot(int p) {
  int s = p;
  if (s < 0)
    s = 0;
  s = s % limit;
  return s;
}

int sys_audit_log(int event) {
  audit_ring[audit_slot(audit_pos)] = event;
  audit_pos = audit_pos + 1;
  return 0;
}

/* CVE-A33: reading the audit ring is supposed to be root-only */
int sys_audit_read(int idx) {
  return audit_ring[audit_slot(idx)];
}
|}

let dst_c =
  {|/* DVB dst driver (the CVE-2005-4639 pairing: this unit's static
   "debug" collides with dst_ca.c's) */
static int debug = 0;
int dst_state = 0;

int dst_command(int cmd) {
  if (debug)
    __putc('D');
  dst_state = cmd;
  return 0;
}

/* CVE-A34: tuner command accepts out-of-range band values, indexing
   beyond the band table in the original advisory */
int sys_dst_tune(int band) {
  if (band > 8)
    return -1;
  dst_state = band;
  return dst_command(band);
}
|}

let dst_ca_c =
  {|/* DVB conditional-access module (CVE-2005-4639 analogue unit) */
static int debug = 1;
int ca_slot_state = 0;

extern int boot_token;

/* CVE-A35: ca_get_slot_info copies a kernel struct (including the
   session token) to the caller without checking the slot permission */
int sys_dst_ca_info(int slot, int field) {
  if (debug)
    __putc('A');
  if (slot < 0 || slot > 3)
    return -1;
  if (field == 0)
    return ca_slot_state;
  if (field == 1)
    return boot_token;
  return -1;
}
|}

let video_c =
  {|/* video4linux-ish ioctls */
int video_fmt = 0;
int video_buf_count = 0;
static int buf_cap = 4;

static int fmt_valid(int f) { return f >= 0 && f < 16; }

static int buf_count_ok(int n) { return n * 4096 < buf_cap * 4096; }

/* CVE-A39: ioctl multiplication overflows the buffer count check
   (simplified integer-overflow pattern: large count wraps negative and
   passes the limit test) */
int sys_video_ioctl(int op, int arg) {
  if (op == 1) {
    if (!fmt_valid(arg))
      return -1;
    video_fmt = arg;
    return 0;
  }
  if (op == 2) {
    if (buf_count_ok(arg)) {
      video_buf_count = arg;
      return arg;
    }
    return -1;
  }
  return video_fmt;
}
|}

let usb_c =
  {|/* usb request queue */
int usb_queue[8];
int usb_pending = 0;
static int submits_seen = 0;

static int queue_full() { return usb_pending >= 8; }

/* CVE-A40: submit stores the request before the full check, clobbering
   the word after the queue when full */
int sys_usb_submit(int req) {
  usb_queue[usb_pending] = req;
  if (queue_full())
    return -1;
  usb_pending = usb_pending + 1;
  submits_seen = 1;
  return usb_pending;
}
|}

let random_c =
  {|/* entropy pool */
int pool[4];
int pool_mixed = 0;
static int mix_state = 7;

static inline int mix(int v) {
  mix_state = mix_state * 1103515245 + 12345;
  return v ^ mix_state;
}

/* CVE-A42: reading the pool before it is mixed returns raw seed state
   (predictable randomness) */
int sys_random_read(int idx) {
  return pool[idx & 3];
}

void random_mix_all() {
  int i;
  for (i = 0; i < 4; i = i + 1)
    pool[i] = mix(pool[i]);
  pool_mixed = 1;
}
|}

let log_c =
  {|/* kernel log */
int log_level = 1;
int log_written = 0;
static int log_cap = 120;

static int printable(int ch) { return ch >= 32 && ch < 127; }

int sys_write_log(int ch) {
  static int dropped = 0;
  if (log_written >= log_cap)
    return -1;
  if (printable(ch)) {
    __putc(ch);
    log_written = log_written + 1;
    return 0;
  }
  dropped = dropped + 1;
  return -1;
}
|}

let sched_c =
  {|/* kernel worker: the non-quiescent function (the schedule() analogue
   of §5.2 — always on the worker thread's stack) */
int work_done = 0;
int worker_generation = 1;

void worker_loop() {
  while (1) {
    work_done = work_done + 1;
    __yield();
  }
}

static int clamp_nonneg(int v) {
  if (v < 0)
    return 0;
  return v;
}

int worker_status() { return clamp_nonneg(work_done * worker_generation); }
|}

let banner_c =
  {|/* boot banner: a version string and its checksum, cached in a global.
   The checksum is state DERIVED from read-only data: when an update
   replaces the string it must also refresh the cache (via an apply
   hook), even though banner_csum's own code never changes. */
int banner_sum = 0;

int banner_csum() {
  char *b = "ksp 1.0 [debug keys on]";
  int i;
  int s;
  s = 0;
  for (i = 0; b[i] != 0; i = i + 1)
    s = s + b[i];
  return s;
}

void banner_refresh() { banner_sum = banner_csum(); }
|}

let tree () =
  Patchfmt.Source_tree.of_list
    [
      ("kernel/entry.s", entry_s);
      ("kernel/banner.c", banner_c);
      ("kernel/init.c", init_c);
      ("kernel/creds.c", creds_c);
      ("kernel/pipe.c", pipe_c);
      ("kernel/proc.c", proc_c);
      ("kernel/misc.c", misc_c);
      ("kernel/counters.c", counters_c);
      ("kernel/fs.c", fs_c);
      ("kernel/net.c", net_c);
      ("kernel/sock.c", sock_c);
      ("kernel/ipc.c", ipc_c);
      ("kernel/mm.c", mm_c);
      ("kernel/signal.c", signal_c);
      ("kernel/time.c", time_c);
      ("kernel/tty.c", tty_c);
      ("kernel/xattr.c", xattr_c);
      ("kernel/keyring.c", keyring_c);
      ("kernel/quota.c", quota_c);
      ("kernel/audit.c", audit_c);
      ("kernel/dst.c", dst_c);
      ("kernel/dst_ca.c", dst_ca_c);
      ("kernel/video.c", video_c);
      ("kernel/usb.c", usb_c);
      ("kernel/random.c", random_c);
      ("kernel/log.c", log_c);
      ("kernel/sched.c", sched_c);
    ]

(* init functions the boot sequence calls, in order *)
let init_functions =
  [ "kernel_init"; "fs_init"; "sock_init"; "keyring_init"; "quota_init";
    "random_mix_all"; "banner_refresh" ]
