module Machine = Kernel.Machine
module Image = Klink.Image

type booted = {
  build : Kbuild.build;
  image : Image.t;
  machine : Machine.t;
}

let secret = 0x5EC2E7l

let call_if_present b name args =
  match Image.lookup_global b.image name with
  | None -> ()
  | Some s -> (
    match Machine.call_function b.machine ~addr:s.addr ~args with
    | Ok _ -> ()
    | Error f ->
      failwith
        (Format.asprintf "boot: %s faulted: %a" name Machine.pp_fault f))

let boot ?(workers = 0) ?tree () =
  let tree = match tree with Some t -> t | None -> Base_kernel.tree () in
  let build = Kbuild.build_tree_exn ~options:Minic.Driver.run_build tree in
  let image = Image.link_exn ~base:0x100000 (Kbuild.objects build) in
  let machine = Machine.create image in
  let b = { build; image; machine } in
  List.iter (fun f -> call_if_present b f []) Base_kernel.init_functions;
  (* seed the task table: pid 1 is root, pids 2-3 are users *)
  call_if_present b "task_init" [ 1l; 0l ];
  call_if_present b "task_init" [ 2l; 1000l ];
  call_if_present b "task_init" [ 3l; 1001l ];
  (match Image.lookup_global image "worker_loop" with
   | Some s ->
     for i = 1 to workers do
       ignore
         (Machine.spawn machine
            ~name:(Printf.sprintf "kworker/%d" i)
            ~uid:0 ~entry:s.addr ~args:[])
     done;
     if workers > 0 then ignore (Machine.run machine ~steps:200 : int)
   | None -> ());
  b

let syscall b ~uid nr args =
  match Machine.syscall_entry b.machine with
  | None -> Error Machine.No_syscall_entry
  | Some entry ->
    (* mirror the entry convention: nr in r0, args in r1..r3; the entry
       path itself validates nr *)
    ignore entry;
    let gate =
      (* call through syscall_entry directly with registers staged via a
         stub thread is equivalent to INT 0x80 from user space *)
      entry
    in
    let args =
      match args with
      | [] -> []
      | l -> l
    in
    (* stage registers by calling a tiny trampoline: call_function pushes
       stack args, but the entry expects register args. We emulate with a
       dedicated spawn. *)
    let m = b.machine in
    let th =
      Machine.spawn m ~name:"syscall-probe" ~uid
        ~entry:gate
        ~args:[]
    in
    th.regs.(0) <- Int32.of_int nr;
    List.iteri (fun i v -> if i < 3 then th.regs.(i + 1) <- v) args;
    let fuel = ref 200 in
    let result = ref None in
    while Option.is_none !result && !fuel > 0 do
      decr fuel;
      ignore (Machine.run m ~steps:5000 : int);
      match th.state with
      | Machine.Exited v -> result := Some (Ok v)
      | Machine.Faulted f -> result := Some (Error f)
      | _ -> ()
    done;
    (match !result with
     | Some r -> r
     | None -> Error Machine.Step_limit)

type global_error =
  | No_such_symbol of string
  | Ambiguous_symbol of { name : string; candidates : (string * int) list }

let pp_global_error ppf = function
  | No_such_symbol n -> Format.fprintf ppf "no symbol %s" n
  | Ambiguous_symbol { name; candidates } ->
    Format.fprintf ppf "ambiguous symbol %s: %s" name
      (String.concat ", "
         (List.map
            (fun (u, addr) -> Printf.sprintf "%s@%#x" u addr)
            candidates))

let find_global b name =
  match
    List.filter
      (fun (s : Image.syminfo) -> String.equal s.name name)
      (Machine.kallsyms b.machine)
  with
  | [ s ] -> Ok s
  | [] -> Error (No_such_symbol name)
  | many -> (
    (* several kallsyms entries share the name (e.g. a loaded update's
       module publishing a local of the same name): a unique GLOBAL
       binding wins; only genuine ties are ambiguous *)
    match
      List.filter
        (fun (s : Image.syminfo) -> s.binding = Objfile.Symbol.Global)
        many
    with
    | [ s ] -> Ok s
    | _ ->
      Error
        (Ambiguous_symbol
           { name;
             candidates =
               List.map
                 (fun (s : Image.syminfo) -> (s.unit_name, s.addr))
                 many }))

let read_global_result b name =
  Result.map (fun (s : Image.syminfo) -> Machine.read_i32 b.machine s.addr)
    (find_global b name)

let read_global b name =
  match read_global_result b name with
  | Ok v -> v
  | Error e ->
    failwith (Format.asprintf "read_global: %a" pp_global_error e)
