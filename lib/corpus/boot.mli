(** Booting the base kernel into a machine: build (distro-style, no
    function sections), link, create the VM, run the init functions, seed
    the task table, and optionally start kernel worker threads (which make
    [worker_loop] non-quiescent, as §5.2 describes for [schedule]). *)

type booted = {
  build : Kbuild.build;
  image : Klink.Image.t;
  machine : Kernel.Machine.t;
}

(** [boot ?workers ?tree ()] boots [tree] (default {!Base_kernel.tree}).
    [workers] (default 0) kernel worker threads are spawned. *)
val boot : ?workers:int -> ?tree:Patchfmt.Source_tree.t -> unit -> booted

(** [syscall b ~uid nr args] invokes a syscall through the entry path the
    way a user thread would (for host-side checks). *)
val syscall : booted -> uid:int -> int -> int32 list -> (int32, Kernel.Machine.fault) result

(** Why a kallsyms global lookup failed. *)
type global_error =
  | No_such_symbol of string
  | Ambiguous_symbol of { name : string; candidates : (string * int) list }
      (** every same-named entry as (defining unit, address) *)

val pp_global_error : Format.formatter -> global_error -> unit

(** [read_global_result b name] reads a 32-bit kernel global through
    kallsyms. When several entries share the name (a loaded module
    publishing a same-named local alongside the kernel's global, say),
    a {e unique strongest binding} disambiguates: one GLOBAL entry among
    locals wins. Anything else is a typed [Ambiguous_symbol] listing
    every candidate. *)
val read_global_result : booted -> string -> (int32, global_error) result

(** [read_global b name] is {!read_global_result}, raising on error.
    @raise Failure if the symbol is missing or genuinely ambiguous. *)
val read_global : booted -> string -> int32

(** The secret planted at boot ([boot_token]); exploit checks compare
    leaked values against it. *)
val secret : int32
