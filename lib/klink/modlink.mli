(** Module loader: place and relocate an object file against a running
    kernel. Ksplice's primary and helper modules go through this path. *)

type placed = {
  section : Objfile.Section.t;
  addr : int;
}

type t = {
  obj : Objfile.t;
  placed : placed list;
  (* load-time addresses of symbols this module itself defines *)
  own_symbols : (string * int) list;
}

(** Why a module load cannot complete; {!pp_error} renders the canonical
    message. *)
type error =
  | Unresolved_symbol of {
      un_module : string;
      un_symbol : string;
      un_section : string;
      un_offset : int;  (** relocation site within the section *)
    }

val pp_error : Format.formatter -> error -> unit

(** Legacy interface: raised by {!relocate_exn} with the {!pp_error}
    rendering of the underlying {!error}. *)
exception Load_error of string

(** [layout ~alloc obj] assigns an address to every allocatable section
    ([alloc ~size ~align] returns a fresh address; Note sections are
    skipped). *)
val layout : alloc:(size:int -> align:int -> int) -> Objfile.t -> t

(** [section_addr t name] is the load address of section [name]. *)
val section_addr : t -> string -> int option

(** [symbol_addr t name] is the load address of a symbol defined by the
    module itself. *)
val symbol_addr : t -> string -> int option

(** [relocate t ~resolve] produces the final byte image of every
    initialised section, resolving relocations first against the module's
    own symbols and then through [resolve].
    Returns [(addr, bytes)] write commands (bss sections produce zero
    fills); [Error _] names the first unresolvable symbol. *)
val relocate :
  t ->
  resolve:(string -> int option) ->
  ((int * Bytes.t) list, error) result

(** {!relocate}, raising {!Load_error} instead of returning a result. *)
val relocate_exn :
  t -> resolve:(string -> int option) -> (int * Bytes.t) list
