module Section = Objfile.Section
module Symbol = Objfile.Symbol
module Reloc = Objfile.Reloc

type placed = {
  section : Section.t;
  addr : int;
}

type t = {
  obj : Objfile.t;
  placed : placed list;
  own_symbols : (string * int) list;
}

type error =
  | Unresolved_symbol of {
      un_module : string;
      un_symbol : string;
      un_section : string;
      un_offset : int;
    }

let pp_error ppf = function
  | Unresolved_symbol { un_module; un_symbol; un_section; un_offset } ->
    Format.fprintf ppf "module %s: unresolved symbol %s (section %s+%#x)"
      un_module un_symbol un_section un_offset

exception Load_error of string

(* internal abort carrying the typed error; never escapes [relocate] *)
exception Fail of error

let layout ~alloc (obj : Objfile.t) =
  let placed =
    List.filter_map
      (fun (s : Section.t) ->
        match s.kind with
        | Section.Note -> None
        | _ -> Some { section = s; addr = alloc ~size:s.size ~align:s.align })
      obj.sections
  in
  let own_symbols =
    List.filter_map
      (fun (sym : Symbol.t) ->
        match sym.def with
        | None -> None
        | Some d ->
          List.find_map
            (fun p ->
              if String.equal p.section.name d.section then
                Some (sym.name, p.addr + d.value)
              else None)
            placed)
      obj.symbols
  in
  { obj; placed; own_symbols }

let section_addr t name =
  List.find_map
    (fun p -> if String.equal p.section.name name then Some p.addr else None)
    t.placed

let symbol_addr t name = List.assoc_opt name t.own_symbols

let relocate_result t ~resolve =
  let resolve_sym name =
    match List.assoc_opt name t.own_symbols with
    | Some a -> Some a
    | None -> resolve name
  in
  List.map
    (fun p ->
      let s = p.section in
      if s.kind = Section.Bss then (p.addr, Bytes.make s.size '\000')
      else begin
        let buf = Bytes.copy s.data in
        List.iter
          (fun (r : Reloc.t) ->
            let sym_value =
              match resolve_sym r.sym with
              | Some a -> Int32.of_int a
              | None ->
                raise
                  (Fail
                     (Unresolved_symbol
                        { un_module = t.obj.unit_name; un_symbol = r.sym;
                          un_section = s.name; un_offset = r.offset }))
            in
            let place = Int32.of_int (p.addr + r.offset) in
            let v =
              Reloc.stored_value ~kind:r.kind ~sym_value ~addend:r.addend
                ~place
            in
            Bytes.set_int32_le buf r.offset v)
          s.relocs;
        (p.addr, buf)
      end)
    t.placed

let relocate t ~resolve =
  match relocate_result t ~resolve with
  | writes -> Ok writes
  | exception Fail e -> Error e

let relocate_exn t ~resolve =
  match relocate t ~resolve with
  | Ok writes -> writes
  | Error e -> raise (Load_error (Format.asprintf "%a" pp_error e))
