module Symbol = Objfile.Symbol
module Section = Objfile.Section
module Reloc = Objfile.Reloc

type syminfo = {
  name : string;
  addr : int;
  size : int;
  binding : Symbol.binding;
  kind : [ `Func | `Object | `Notype ];
  unit_name : string;
}

type t = {
  base : int;
  size : int;
  data : Bytes.t;
  kallsyms : syminfo list;
  text_range : int * int;
  placements : (string * string * int * int) list;
}

type error =
  | Missing_section of {
      ms_unit : string;
      ms_symbol : string;
      ms_section : string;
    }
  | Duplicate_global of {
      dg_symbol : string;
      dg_first_unit : string;
      dg_second_unit : string;
    }
  | Undefined_symbol of {
      us_unit : string;
      us_symbol : string;
      us_section : string;
      us_offset : int;
    }

let pp_error ppf = function
  | Missing_section { ms_unit; ms_symbol; ms_section } ->
    Format.fprintf ppf "%s: symbol %s defined in missing section %s"
      ms_unit ms_symbol ms_section
  | Duplicate_global { dg_symbol; dg_first_unit; dg_second_unit } ->
    Format.fprintf ppf "duplicate global symbol %s (defined in %s and %s)"
      dg_symbol dg_first_unit dg_second_unit
  | Undefined_symbol { us_unit; us_symbol; us_section; us_offset } ->
    Format.fprintf ppf "%s: undefined symbol %s (section %s+%#x)" us_unit
      us_symbol us_section us_offset

exception Link_error of string

(* internal abort carrying the typed error; never escapes [link] *)
exception Fail of error

let err e = raise (Fail e)

let round_up v a = (v + a - 1) / a * a

let link_result ~base objects =
  (* 1. place sections, grouped text / rodata / data / bss *)
  let cursor = ref base in
  let placements = ref [] in (* (unit, section) -> addr, keep list order *)
  let place kind_filter =
    List.iter
      (fun (o : Objfile.t) ->
        List.iter
          (fun (s : Section.t) ->
            if kind_filter s.kind then begin
              let addr = round_up !cursor (max 1 s.align) in
              placements := (o.unit_name, s.name, addr, s.size) :: !placements;
              cursor := addr + s.size
            end)
          o.sections)
      objects
  in
  let text_start = base in
  place (fun k -> k = Section.Text);
  let text_end = !cursor in
  place (fun k -> k = Section.Rodata);
  place (fun k -> k = Section.Data);
  let data_end = !cursor in
  place (fun k -> k = Section.Bss);
  let total_end = !cursor in
  let placements = List.rev !placements in
  let addr_of unit_name sec_name =
    List.find_map
      (fun (u, s, a, _) ->
        if String.equal u unit_name && String.equal s sec_name then Some a
        else None)
      placements
  in
  (* 2. symbol tables *)
  let kallsyms = ref [] in
  let global_table : (string, int * string) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (o : Objfile.t) ->
      List.iter
        (fun (sym : Symbol.t) ->
          match sym.def with
          | None -> ()
          | Some d ->
            let sec_addr =
              match addr_of o.unit_name d.section with
              | Some a -> a
              | None ->
                err
                  (Missing_section
                     { ms_unit = o.unit_name; ms_symbol = sym.name;
                       ms_section = d.section })
            in
            let addr = sec_addr + d.value in
            kallsyms :=
              { name = sym.name; addr; size = sym.size;
                binding = sym.binding; kind = sym.kind;
                unit_name = o.unit_name }
              :: !kallsyms;
            if sym.binding = Symbol.Global then begin
              (match Hashtbl.find_opt global_table sym.name with
               | Some (_, prev_unit) ->
                 err
                   (Duplicate_global
                      { dg_symbol = sym.name; dg_first_unit = prev_unit;
                        dg_second_unit = o.unit_name })
               | None -> ());
              Hashtbl.replace global_table sym.name (addr, o.unit_name)
            end)
        o.symbols)
    objects;
  let kallsyms = List.rev !kallsyms in
  (* 3. copy initialised section data and apply relocations *)
  let data = Bytes.make (data_end - base) '\000' in
  List.iter
    (fun (o : Objfile.t) ->
      (* local resolution: defined symbols of this unit take precedence *)
      let local_defined name =
        List.find_map
          (fun (sym : Symbol.t) ->
            match sym.def with
            | Some d when String.equal sym.name name -> (
              match addr_of o.unit_name d.section with
              | Some a -> Some (a + d.value)
              | None -> None)
            | _ -> None)
          o.symbols
      in
      let resolve name =
        match local_defined name with
        | Some a -> Some a
        | None -> (
          match Hashtbl.find_opt global_table name with
          | Some (a, _) -> Some a
          | None -> None)
      in
      List.iter
        (fun (s : Section.t) ->
          if s.kind <> Section.Bss then begin
            match addr_of o.unit_name s.name with
            | None -> ()
            | Some sec_addr ->
              let off = sec_addr - base in
              Bytes.blit s.data 0 data off s.size;
              List.iter
                (fun (r : Reloc.t) ->
                  let sym_value =
                    match resolve r.sym with
                    | Some a -> Int32.of_int a
                    | None ->
                      err
                        (Undefined_symbol
                           { us_unit = o.unit_name; us_symbol = r.sym;
                             us_section = s.name; us_offset = r.offset })
                  in
                  let place = Int32.of_int (sec_addr + r.offset) in
                  let v =
                    Reloc.stored_value ~kind:r.kind ~sym_value
                      ~addend:r.addend ~place
                  in
                  Bytes.set_int32_le data (off + r.offset) v)
                s.relocs
          end)
        o.sections)
    objects;
  {
    base;
    size = total_end - base;
    data;
    kallsyms;
    text_range = (text_start, text_end);
    placements;
  }

let link ~base objects =
  match link_result ~base objects with
  | img -> Ok img
  | exception Fail e -> Error e

let link_exn ~base objects =
  match link ~base objects with
  | Ok img -> img
  | Error e -> raise (Link_error (Format.asprintf "%a" pp_error e))

let lookup img name =
  List.filter (fun s -> String.equal s.name name) img.kallsyms

let lookup_global img name =
  List.find_opt
    (fun s -> String.equal s.name name && s.binding = Symbol.Global)
    img.kallsyms

let interesting_symbol s =
  (* compiler-internal labels (string literals etc.) are not part of the
     paper's symbol census *)
  not (String.length s.name >= 2 && s.name.[0] = '.' && s.name.[1] = 'L')

let symbol_census img =
  let syms = List.filter interesting_symbol img.kallsyms in
  let counts = Hashtbl.create 256 in
  List.iter
    (fun s ->
      Hashtbl.replace counts s.name
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts s.name)))
    syms;
  let ambiguous =
    List.length (List.filter (fun s -> Hashtbl.find counts s.name > 1) syms)
  in
  (List.length syms, ambiguous)

let units_with_ambiguous_symbol img =
  let syms = List.filter interesting_symbol img.kallsyms in
  let counts = Hashtbl.create 256 in
  List.iter
    (fun s ->
      Hashtbl.replace counts s.name
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts s.name)))
    syms;
  syms
  |> List.filter (fun s -> Hashtbl.find counts s.name > 1)
  |> List.map (fun s -> s.unit_name)
  |> List.sort_uniq compare
