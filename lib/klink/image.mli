(** Static linker: object files to a bootable kernel image with a kallsyms
    symbol table.

    The symbol table deliberately mirrors Linux's kallsyms: it contains
    {e every} defined symbol, including unit-local (static) ones, so
    duplicate names occur — the evaluation's "6,164 symbols share their
    name with other symbols" statistic (§6.3) and the ambiguity run-pre
    matching resolves both come from here. *)

type syminfo = {
  name : string;
  addr : int;
  size : int;
  binding : Objfile.Symbol.binding;
  kind : [ `Func | `Object | `Notype ];
  unit_name : string;  (** compilation unit that defined the symbol *)
}

type t = {
  base : int;
  size : int;  (** total footprint including bss *)
  data : Bytes.t;  (** initialised part (text+rodata+data); bss beyond *)
  kallsyms : syminfo list;
  text_range : int * int;  (** [start, end) of kernel text *)
  (* section placements: (unit, section name, addr, size) *)
  placements : (string * string * int * int) list;
}

(** Why a link cannot complete. Errors are data: every field a caller
    might want to report or branch on is carried in the variant, and
    {!pp_error} renders the canonical message. *)
type error =
  | Missing_section of {
      ms_unit : string;
      ms_symbol : string;
      ms_section : string;  (** symbol defined in a section not present *)
    }
  | Duplicate_global of {
      dg_symbol : string;
      dg_first_unit : string;
      dg_second_unit : string;
    }
  | Undefined_symbol of {
      us_unit : string;
      us_symbol : string;
      us_section : string;
      us_offset : int;  (** relocation site within the section *)
    }

val pp_error : Format.formatter -> error -> unit

(** Legacy interface: raised by {!link_exn} with the {!pp_error}
    rendering of the underlying {!error}. *)
exception Link_error of string

(** [link ~base objects] lays out sections (text, rodata, data, bss — in
    that order), resolves and applies all relocations, and builds
    kallsyms. Returns [Error _] on duplicate global definitions,
    symbols defined in missing sections, or unresolved relocations. *)
val link : base:int -> Objfile.t list -> (t, error) result

(** {!link}, raising {!Link_error} instead of returning a result. *)
val link_exn : base:int -> Objfile.t list -> t

(** [lookup image name] returns all kallsyms entries with the given name
    (there may be several — local symbols are not unique). *)
val lookup : t -> string -> syminfo list

(** [lookup_global image name] returns the unique global symbol with that
    name, if any. *)
val lookup_global : t -> string -> syminfo option

(** [symbol_census image] returns [(total, ambiguous)] symbol counts:
    symbols whose name is shared with at least one other symbol. *)
val symbol_census : t -> int * int

(** [units_with_ambiguous_symbol image] lists compilation units containing
    at least one symbol whose name is ambiguous kernel-wide (§6.3's
    "21.1% of the compilation units"). *)
val units_with_ambiguous_symbol : t -> string list
