(** Unified diffs: generation, parsing, application, and statistics.

    Ksplice takes "a patch in the standard patch format, the unified diff
    patch format" (§5) as input; Figure 3 counts the lines of code in each
    patch. This module provides both halves. *)

type line =
  | Context of string
  | Add of string
  | Del of string

type hunk = {
  old_start : int;  (** 1-based first line in the old file *)
  old_len : int;
  new_start : int;
  new_len : int;
  lines : line list;
}

type file_diff = {
  path : string;
  old_exists : bool;  (** false when the patch creates the file *)
  new_exists : bool;  (** false when the patch deletes the file *)
  hunks : hunk list;
}

type t = file_diff list

(** [diff_lines ~context old new_] computes hunks between two line lists
    (LCS-based, like diff -u). [context] defaults to 3. *)
val diff_lines : ?context:int -> string list -> string list -> hunk list

(** [diff_trees old new_] produces a patch transforming [old] into
    [new_], including file creations and deletions. *)
val diff_trees : ?context:int -> Source_tree.t -> Source_tree.t -> t

val to_string : t -> string

(** [parse s] parses a unified diff. *)
val parse : string -> (t, string) result

(** [apply patch tree] applies the patch. Hunks are located by exact
    context match at the stated position, then by searching nearby
    offsets (like patch(1) fuzz offsets). Errors name the file and hunk
    that failed. *)
val apply : t -> Source_tree.t -> (Source_tree.t, string) result

(** Patch statistics, as used by Figure 3. [changed] counts added plus
    removed lines. *)
type stats = {
  files : int;
  added : int;
  removed : int;
  changed : int;
}

val stats : t -> stats

(** [file_stats d path] restricts {!stats} to one file of the patch
    (all-zero when the patch does not touch [path]) — the source-level
    provenance surfaced per patched unit in [Create.created]. *)
val file_stats : t -> string -> stats

(** [file_hunks d path] counts the hunks touching [path]. *)
val file_hunks : t -> string -> int

(** Paths of files the patch touches. *)
val changed_files : t -> string list
