type line =
  | Context of string
  | Add of string
  | Del of string

type hunk = {
  old_start : int;
  old_len : int;
  new_start : int;
  new_len : int;
  lines : line list;
}

type file_diff = {
  path : string;
  old_exists : bool;
  new_exists : bool;
  hunks : hunk list;
}

type t = file_diff list

(* --- edit script via LCS --- *)

type edit = Keep of string | Ins of string | Drop of string

let edit_script a b =
  let a = Array.of_list a and b = Array.of_list b in
  let n = Array.length a and m = Array.length b in
  (* lcs.(i).(j) = LCS length of a[i..] and b[j..] *)
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if String.equal a.(i) b.(j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i < n && j < m && String.equal a.(i) b.(j) then
      walk (i + 1) (j + 1) (Keep a.(i) :: acc)
    else if j < m && (i = n || lcs.(i).(j + 1) >= lcs.(i + 1).(j)) then
      walk i (j + 1) (Ins b.(j) :: acc)
    else if i < n then walk (i + 1) j (Drop a.(i) :: acc)
    else List.rev acc
  in
  walk 0 0 []

let diff_lines ?(context = 3) a b =
  let script = Array.of_list (edit_script a b) in
  let n = Array.length script in
  let is_change = function Keep _ -> false | _ -> true in
  (* mark script indices that belong to a hunk (changes +/- context) *)
  let keep_in_hunk = Array.make n false in
  for i = 0 to n - 1 do
    if is_change script.(i) then
      for j = max 0 (i - context) to min (n - 1) (i + context) do
        keep_in_hunk.(j) <- true
      done
  done;
  let hunks = ref [] in
  let i = ref 0 in
  let old_line = ref 1 and new_line = ref 1 in
  while !i < n do
    (match script.(!i) with
     | Keep _ when not keep_in_hunk.(!i) ->
       incr old_line;
       incr new_line;
       incr i
     | _ when not keep_in_hunk.(!i) ->
       (* unreachable: changes are always in a hunk *)
       assert false
     | _ ->
       let start = !i in
       let fin = ref start in
       while !fin < n && keep_in_hunk.(!fin) do
         incr fin
       done;
       let old_start = !old_line and new_start = !new_line in
       let lines = ref [] in
       let old_len = ref 0 and new_len = ref 0 in
       for k = start to !fin - 1 do
         match script.(k) with
         | Keep s ->
           lines := Context s :: !lines;
           incr old_len;
           incr new_len;
           incr old_line;
           incr new_line
         | Ins s ->
           lines := Add s :: !lines;
           incr new_len;
           incr new_line
         | Drop s ->
           lines := Del s :: !lines;
           incr old_len;
           incr old_line
       done;
       hunks :=
         { old_start =
             (* diff convention: a zero-length side reports start-1 *)
             (if !old_len = 0 then old_start - 1 else old_start);
           old_len = !old_len;
           new_start = (if !new_len = 0 then new_start - 1 else new_start);
           new_len = !new_len;
           lines = List.rev !lines }
         :: !hunks;
       i := !fin)
  done;
  List.rev !hunks

let split_lines s =
  match List.rev (String.split_on_char '\n' s) with
  | "" :: rest -> List.rev rest
  | l -> List.rev l

let diff_trees ?(context = 3) old_tree new_tree =
  let paths =
    List.sort_uniq compare
      (Source_tree.files old_tree @ Source_tree.files new_tree)
  in
  List.filter_map
    (fun path ->
      match Source_tree.find old_tree path, Source_tree.find new_tree path with
      | None, None -> None
      | Some o, Some n ->
        if String.equal o n then None
        else
          Some
            { path; old_exists = true; new_exists = true;
              hunks = diff_lines ~context (split_lines o) (split_lines n) }
      | None, Some n ->
        Some
          { path; old_exists = false; new_exists = true;
            hunks = diff_lines ~context [] (split_lines n) }
      | Some o, None ->
        Some
          { path; old_exists = true; new_exists = false;
            hunks = diff_lines ~context (split_lines o) [] })
    paths

let to_string (d : t) =
  let b = Buffer.create 1024 in
  List.iter
    (fun fd ->
      Buffer.add_string b
        (Printf.sprintf "--- %s\n"
           (if fd.old_exists then "a/" ^ fd.path else "/dev/null"));
      Buffer.add_string b
        (Printf.sprintf "+++ %s\n"
           (if fd.new_exists then "b/" ^ fd.path else "/dev/null"));
      List.iter
        (fun h ->
          Buffer.add_string b
            (Printf.sprintf "@@ -%d,%d +%d,%d @@\n" h.old_start h.old_len
               h.new_start h.new_len);
          List.iter
            (fun l ->
              let c, s =
                match l with
                | Context s -> (' ', s)
                | Add s -> ('+', s)
                | Del s -> ('-', s)
              in
              Buffer.add_char b c;
              Buffer.add_string b s;
              Buffer.add_char b '\n')
            h.lines)
        fd.hunks)
    d;
  Buffer.contents b

let parse s =
  let lines = split_lines s in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_path p =
    if String.equal p "/dev/null" then None
    else if String.length p > 2 && (p.[0] = 'a' || p.[0] = 'b') && p.[1] = '/'
    then Some (String.sub p 2 (String.length p - 2))
    else Some p
  in
  let parse_range spec =
    (* "-old_start,old_len" or "+new_start,new_len"; len defaults to 1 *)
    let body = String.sub spec 1 (String.length spec - 1) in
    match String.split_on_char ',' body with
    | [ a ] -> (int_of_string a, 1)
    | [ a; b ] -> (int_of_string a, int_of_string b)
    | _ -> failwith "bad range"
  in
  let rec files acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest when String.length l >= 4 && String.sub l 0 4 = "--- " ->
      let old_p = parse_path (String.sub l 4 (String.length l - 4)) in
      (match rest with
       | l2 :: rest when String.length l2 >= 4 && String.sub l2 0 4 = "+++ " ->
         let new_p = parse_path (String.sub l2 4 (String.length l2 - 4)) in
         let path =
           match old_p, new_p with
           | Some p, _ | _, Some p -> p
           | None, None -> ""
         in
         if String.equal path "" then err "diff with both sides /dev/null"
         else
           hunks path (Option.is_some old_p) (Option.is_some new_p) [] rest
             acc
       | _ -> err "missing +++ after ---")
    | "" :: rest -> files acc rest
    | l :: _ -> err "unexpected line outside hunk: %S" l
  and hunks path old_e new_e hs ls acc =
    match ls with
    | l :: rest when String.length l >= 2 && String.sub l 0 2 = "@@" -> (
      match String.split_on_char ' ' l with
      | "@@" :: minus :: plus :: _ -> (
        match
          (try Some (parse_range minus, parse_range plus) with _ -> None)
        with
        | Some ((os, ol), (ns, nl)) ->
          hunk_lines path old_e new_e hs os ol ns nl [] (ol + nl) rest acc
        | None -> err "bad hunk header %S" l)
      | _ -> err "bad hunk header %S" l)
    | _ ->
      files
        ({ path; old_exists = old_e; new_exists = new_e;
           hunks = List.rev hs }
         :: acc)
        ls
  and hunk_lines path old_e new_e hs os ol ns nl body remaining ls acc =
    if remaining = 0 then
      let h =
        { old_start = os; old_len = ol; new_start = ns; new_len = nl;
          lines = List.rev body }
      in
      hunks path old_e new_e (h :: hs) ls acc
    else
      match ls with
      | [] -> err "truncated hunk in %s" path
      | l :: rest ->
        let n = String.length l in
        let payload = if n = 0 then "" else String.sub l 1 (n - 1) in
        (match if n = 0 then ' ' else l.[0] with
         | ' ' ->
           hunk_lines path old_e new_e hs os ol ns nl
             (Context payload :: body) (remaining - 2) rest acc
         | '+' ->
           hunk_lines path old_e new_e hs os ol ns nl (Add payload :: body)
             (remaining - 1) rest acc
         | '-' ->
           hunk_lines path old_e new_e hs os ol ns nl (Del payload :: body)
             (remaining - 1) rest acc
         | c -> err "bad hunk line prefix %C" c)
  in
  files [] lines

(* --- application --- *)

let hunk_old_lines h =
  List.filter_map
    (function Context s | Del s -> Some s | Add _ -> None)
    h.lines

let hunk_new_lines h =
  List.filter_map
    (function Context s | Add s -> Some s | Del _ -> None)
    h.lines

let matches_at (arr : string array) pos expected =
  pos >= 0
  && pos + List.length expected <= Array.length arr
  && List.for_all2 String.equal
       (List.init (List.length expected) (fun i -> arr.(pos + i)))
       expected

(* Find where a hunk's old lines occur: try the stated position, then
   positions at increasing distance (patch(1)-style offsets). *)
let locate arr pos expected =
  let n = Array.length arr in
  let rec search d =
    if d > n then None
    else if matches_at arr (pos - d) expected then Some (pos - d)
    else if matches_at arr (pos + d) expected then Some (pos + d)
    else search (d + 1)
  in
  if matches_at arr pos expected then Some pos else search 1

let apply_file_hunks path hunks old_lines =
  let arr = Array.of_list old_lines in
  (* apply hunks in order, tracking the line offset already introduced *)
  let rec go hunks offset consumed acc =
    match hunks with
    | [] ->
      let tail =
        Array.to_list (Array.sub arr consumed (Array.length arr - consumed))
      in
      Ok (List.rev acc @ tail)
    | h :: rest -> (
      let expected = hunk_old_lines h in
      let want_pos = max 0 (h.old_start - 1) in
      ignore offset;
      match locate arr want_pos expected with
      | None ->
        Error
          (Printf.sprintf "%s: hunk @@ -%d,%d does not apply" path
             h.old_start h.old_len)
      | Some pos when pos < consumed ->
        Error
          (Printf.sprintf "%s: hunk @@ -%d,%d overlaps a previous hunk" path
             h.old_start h.old_len)
      | Some pos ->
        let skipped =
          Array.to_list (Array.sub arr consumed (pos - consumed))
        in
        let acc =
          List.rev_append (hunk_new_lines h) (List.rev_append skipped acc)
        in
        go rest
          (offset + h.new_len - h.old_len)
          (pos + List.length expected)
          acc)
  in
  go hunks 0 0 []

let apply (d : t) tree =
  let join ls = String.concat "\n" ls ^ "\n" in
  List.fold_left
    (fun acc fd ->
      Result.bind acc (fun tree ->
          match fd.old_exists, fd.new_exists with
          | false, true ->
            if Source_tree.mem tree fd.path then
              Error (Printf.sprintf "%s: already exists" fd.path)
            else
              let new_lines = List.concat_map hunk_new_lines fd.hunks in
              Ok (Source_tree.add tree fd.path (join new_lines))
          | true, false ->
            if Source_tree.mem tree fd.path then
              Ok (Source_tree.remove tree fd.path)
            else Error (Printf.sprintf "%s: missing, cannot delete" fd.path)
          | true, true -> (
            match Source_tree.lines tree fd.path with
            | None -> Error (Printf.sprintf "%s: missing, cannot patch" fd.path)
            | Some old_lines -> (
              match apply_file_hunks fd.path fd.hunks old_lines with
              | Ok new_lines -> Ok (Source_tree.add tree fd.path (join new_lines))
              | Error e -> Error e))
          | false, false -> Error "diff with both sides absent"))
    (Ok tree) d

type stats = {
  files : int;
  added : int;
  removed : int;
  changed : int;
}

let stats (d : t) =
  let added = ref 0 and removed = ref 0 in
  List.iter
    (fun fd ->
      List.iter
        (fun h ->
          List.iter
            (function
              | Add _ -> incr added
              | Del _ -> incr removed
              | Context _ -> ())
            h.lines)
        fd.hunks)
    d;
  { files = List.length d; added = !added; removed = !removed;
    changed = !added + !removed }

let changed_files (d : t) = List.map (fun fd -> fd.path) d

let file_stats (d : t) path =
  stats (List.filter (fun fd -> String.equal fd.path path) d)

let file_hunks (d : t) path =
  List.fold_left
    (fun acc fd ->
      if String.equal fd.path path then acc + List.length fd.hunks else acc)
    0 d
