module Machine = Kernel.Machine

type kind =
  | Oom
  | Unresolved
  | Corrupt_reloc
  | Hook_fault
  | Forced_not_quiescent
  | Sched_perturb

let kind_name = function
  | Oom -> "oom"
  | Unresolved -> "unresolved"
  | Corrupt_reloc -> "corrupt-reloc"
  | Hook_fault -> "hook-fault"
  | Forced_not_quiescent -> "not-quiescent"
  | Sched_perturb -> "sched-perturb"

let kind_for_step = function
  | Txn.Allocate -> Oom
  | Txn.Link -> Unresolved
  | Txn.Relocate -> Corrupt_reloc
  | Txn.Hook_pre -> Hook_fault
  | Txn.Capture -> Sched_perturb
  (* the transition step only runs under a per-thread engagement; its
     canonical perturbation is scheduler noise, which must be benign *)
  | Txn.Transition -> Sched_perturb
  | Txn.Quiesce -> Forced_not_quiescent
  | Txn.Trampoline -> Hook_fault
  | Txn.Commit -> Hook_fault

let expect_abort = function Sched_perturb -> false | _ -> true

type plan = {
  step : Txn.step;
  kind : kind;
  seed : int;
}

let pp_plan ppf p =
  Format.fprintf ppf "%s@%s (seed %d)" (kind_name p.kind)
    (Txn.step_name p.step) p.seed

type session = {
  m : Machine.t;
  p : plan;
  mutable active : bool;
  mutable fired : bool;
}

let make m p = { m; p; active = false; fired = false }
let plan s = s.p
let fired s = s.fired

let disarm s =
  if s.active then begin
    s.active <- false;
    Machine.clear_injectors s.m
  end

let arm s =
  s.active <- true;
  match s.p.kind with
  | Oom ->
    Machine.set_alloc_injector s.m
      (Some
         (fun ~size:_ ~align:_ ->
           if s.fired then false
           else begin
             s.fired <- true;
             true
           end))
  | Corrupt_reloc ->
    Machine.set_write_injector s.m
      (Some
         (fun _addr bytes ->
           if s.fired || Bytes.length bytes = 0 then bytes
           else begin
             s.fired <- true;
             let b = Bytes.copy bytes in
             let i = s.p.seed mod Bytes.length b in
             let bit = s.p.seed / 7 mod 8 in
             Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor (1 lsl bit));
             b
           end))
  | Hook_fault ->
    Machine.set_call_injector s.m
      (Some
         (fun addr ->
           if s.fired then None
           else begin
             s.fired <- true;
             Some (Machine.Memory_violation addr)
           end))
  | Sched_perturb ->
    s.fired <- true;
    ignore (Machine.run s.m ~steps:(137 + (s.p.seed mod 1863)) : int)
  | Unresolved | Forced_not_quiescent ->
    (* consulted by the pipeline itself, nothing to arm in the machine *)
    ()

let on_step s step =
  if step = s.p.step then begin
    if not s.active then arm s
  end
  else disarm s

let veto_quiescence s =
  if s.active && s.p.kind = Forced_not_quiescent then begin
    s.fired <- true;
    true
  end
  else false

let sabotage_resolve s resolve name =
  if s.active && s.p.kind = Unresolved && not s.fired then begin
    s.fired <- true;
    None
  end
  else resolve name
