module Isa = Vmisa.Isa
module Reloc = Objfile.Reloc
module Symbol = Objfile.Symbol
module Section = Objfile.Section

type mismatch = {
  unit_name : string;
  section : string;
  pre_off : int;
  run_addr : int;
  reason : string;
}

exception Mismatch of mismatch

exception
  Ambiguous of {
    unit_name : string;
    symbol : string;
    matches : int;
  }

type inference = (string, int) Hashtbl.t

let create_inference () : inference = Hashtbl.create 64

(* candidate trials since the last reset, kept as a plain atomic (the
   [runpre.match_attempts] trace counter only records under an enabled
   trace): the differencing bench and minimality sweep read this to show
   how much run-pre work a minimal update saves *)
let attempts = Atomic.make 0
let match_attempts () = Atomic.get attempts
let reset_match_attempts () = Atomic.set attempts 0

type tolerance = {
  skip_nops : bool;
  jump_equivalence : bool;
}

let full_tolerance = { skip_nops = true; jump_equivalence = true }

(* --- instruction helpers --- *)

let imm_value = function
  | Isa.Mov_ri (_, v) | Isa.Addi (_, v) | Isa.Cmpi (_, v)
  | Isa.Load_abs (_, _, v) | Isa.Store_abs (_, v, _) ->
    v
  | _ -> invalid_arg "imm_value"

let with_imm i v =
  match i with
  | Isa.Mov_ri (r, _) -> Isa.Mov_ri (r, v)
  | Isa.Addi (r, _) -> Isa.Addi (r, v)
  | Isa.Cmpi (r, _) -> Isa.Cmpi (r, v)
  | Isa.Load_abs (w, r, _) -> Isa.Load_abs (w, r, v)
  | Isa.Store_abs (w, _, r) -> Isa.Store_abs (w, v, r)
  | _ -> invalid_arg "with_imm"

(* --- matching one text section --- *)

(* The per-trial view of the inference table: reads fall through to the
   committed table; writes stay in the overlay until the trial commits. *)
type trial = {
  committed : inference;
  overlay : (string, int) Hashtbl.t;
}

let trial_find t name =
  match Hashtbl.find_opt t.overlay name with
  | Some v -> Some v
  | None -> Hashtbl.find_opt t.committed name

let trial_set t name v = Hashtbl.replace t.overlay name v

let commit t =
  Hashtbl.iter (fun k v -> Hashtbl.replace t.committed k v) t.overlay

(* name -> binding of the first defined symbol bearing it, precomputed
   once per helper so canonicalising a referenced symbol is O(1) per
   relocation instead of a scan of every helper symbol *)
let binding_index (o : Objfile.t) =
  let tbl = Hashtbl.create (List.length o.symbols) in
  List.iter
    (fun (s : Symbol.t) ->
      if Symbol.is_defined s && not (Hashtbl.mem tbl s.name) then
        Hashtbl.add tbl s.name s.binding)
    o.symbols;
  tbl

(* canonical name of a symbol referenced from [helper] *)
let canonical_ref ~bindings (helper : Objfile.t) name =
  let binding =
    match Hashtbl.find_opt bindings name with
    | Some b -> b
    | None -> Symbol.Global (* undefined references are global *)
  in
  Update.canonical ~binding ~unit_name:helper.unit_name name

let match_text ~tolerance ~read_run ~(helper : Objfile.t) ~bindings
    ~(section : Section.t) ~run_base ~(trial : trial) =
  let fail pre_off run_addr reason =
    raise
      (Mismatch
         { unit_name = helper.unit_name; section = section.name; pre_off;
           run_addr; reason })
  in
  let reloc_at =
    let tbl = Hashtbl.create 8 in
    List.iter (fun (r : Reloc.t) -> Hashtbl.replace tbl r.offset r)
      section.relocs;
    Hashtbl.find_opt tbl
  in
  let infer name value pre_off run_addr =
    let cname = canonical_ref ~bindings helper name in
    match trial_find trial cname with
    | Some v when v <> value ->
      fail pre_off run_addr
        (Printf.sprintf "symbol %s inferred as %#x but previously %#x" cname
           value v)
    | Some _ -> ()
    | None -> trial_set trial cname value
  in
  let size = section.size in
  let boundary = Hashtbl.create 64 in
  let deferred = ref [] in
  let decode_pre pos =
    try Isa.decode_bytes section.data pos
    with Isa.Decode_error _ -> fail pos 0 "undecodable pre instruction"
  in
  let decode_run addr =
    match Isa.decode read_run addr with
    | v -> v
    | exception Isa.Decode_error _ ->
      fail 0 addr "undecodable run instruction"
    | exception _ ->
      (* any failure to read the running image (e.g. a corrupted jump led
         the walk out of mapped memory) means the code cannot be
         verified: abort, never guess *)
      fail 0 addr "run memory unreadable"
  in
  let pre_pos = ref 0 and run_pos = ref run_base in
  let continue = ref true in
  while !continue do
    (* skip alignment no-ops on the pre side *)
    let skipping = ref tolerance.skip_nops in
    while !skipping && !pre_pos < size do
      let i, len = decode_pre !pre_pos in
      if Isa.is_nop i then pre_pos := !pre_pos + len else skipping := false
    done;
    if !pre_pos >= size then continue := false
    else begin
      (* skip alignment no-ops on the run side *)
      let skipping = ref tolerance.skip_nops in
      while !skipping do
        let i, len = decode_run !run_pos in
        if Isa.is_nop i then run_pos := !run_pos + len else skipping := false
      done;
      Hashtbl.replace boundary !pre_pos !run_pos;
      let ipre, lpre = decode_pre !pre_pos in
      let irun, lrun = decode_run !run_pos in
      (match Isa.pc_rel ipre, Isa.pc_rel irun with
       | Some (cls_pre, disp_pre, field_off, field_size), Some (cls_run, disp_run, _, _)
         ->
         if cls_pre <> cls_run then
           fail !pre_pos !run_pos
             (Printf.sprintf "jump class differs: pre %s, run %s"
                (Isa.insn_to_string ipre) (Isa.insn_to_string irun));
         (* a naive matcher insists on identical encodings and
            displacement bytes (ablation) *)
         if (not tolerance.jump_equivalence)
            && (lpre <> lrun
                || (reloc_at (!pre_pos + field_off) = None
                    && disp_pre <> disp_run))
         then
           fail !pre_pos !run_pos
             (Printf.sprintf "strict jump mismatch: pre %s, run %s"
                (Isa.insn_to_string ipre) (Isa.insn_to_string irun));
         let run_target = !run_pos + lrun + disp_run in
         (match reloc_at (!pre_pos + field_off) with
          | Some r ->
            if field_size <> 4 then
              fail !pre_pos !run_pos "relocation on short jump operand";
            (* pre target = S + A + 4; equate with the run target *)
            let value = run_target - Int32.to_int r.addend - 4 in
            infer r.sym value !pre_pos !run_pos
          | None ->
            let pre_target = !pre_pos + lpre + disp_pre in
            if pre_target < 0 || pre_target > size then
              fail !pre_pos !run_pos "pre jump leaves its section";
            deferred := (!pre_pos, pre_target, run_target) :: !deferred)
       | Some _, None | None, Some _ ->
         fail !pre_pos !run_pos
           (Printf.sprintf "instruction mismatch: pre %s, run %s"
              (Isa.insn_to_string ipre) (Isa.insn_to_string irun))
       | None, None -> (
         match Isa.imm_field ipre with
         | Some (field_off, _) when reloc_at (!pre_pos + field_off) <> None ->
           let r = Option.get (reloc_at (!pre_pos + field_off)) in
           (* operand shapes must agree apart from the immediate; a run
              instruction with no immediate field at all (mutated or
              misaligned code) is a mismatch, not a crash *)
           let irun_holed =
             match with_imm irun 0l with
             | i -> Some i
             | exception Invalid_argument _ -> None
           in
           if irun_holed <> Some ipre then
             fail !pre_pos !run_pos
               (Printf.sprintf "instruction mismatch at hole: pre %s, run %s"
                  (Isa.insn_to_string ipre) (Isa.insn_to_string irun));
           let stored = imm_value irun in
           let place = Int32.of_int (!run_pos + field_off) in
           let value =
             Reloc.infer_sym_value ~kind:r.kind ~stored ~addend:r.addend
               ~place
           in
           infer r.sym (Int32.to_int value) !pre_pos !run_pos
         | _ ->
           if ipre <> irun then
             fail !pre_pos !run_pos
               (Printf.sprintf "instruction mismatch: pre %s, run %s"
                  (Isa.insn_to_string ipre) (Isa.insn_to_string irun))));
      pre_pos := !pre_pos + lpre;
      run_pos := !run_pos + lrun
    end
  done;
  Hashtbl.replace boundary size !run_pos;
  (* verify deferred jump targets through the boundary correspondence *)
  List.iter
    (fun (at, pre_target, run_target) ->
      match Hashtbl.find_opt boundary pre_target with
      | Some mapped when mapped = run_target -> ()
      | Some mapped ->
        fail at run_target
          (Printf.sprintf
             "jump target mismatch: pre offset %#x maps to %#x, run jumps to %#x"
             pre_target mapped run_target)
      | None ->
        fail at run_target
          (Printf.sprintf "jump into middle of instruction at pre offset %#x"
             pre_target))
    (List.rev !deferred)

(* --- locating and matching all functions of a helper --- *)

type pending_section = {
  p_section : Section.t;
  p_fname : string;  (* raw function name (anchor symbol) *)
  p_canonical : string;
  p_binding : Symbol.binding;
}

let text_sections (helper : Objfile.t) =
  List.filter_map
    (fun (s : Section.t) ->
      if s.kind <> Section.Text then None
      else
        let anchor =
          List.find_opt
            (fun (sym : Symbol.t) ->
              match sym.def with
              | Some d -> String.equal d.section s.name && d.value = 0
              | None -> false)
            helper.symbols
        in
        match anchor with
        | Some sym ->
          Some
            { p_section = s; p_fname = sym.name;
              p_canonical =
                Update.canonical ~binding:sym.binding
                  ~unit_name:helper.unit_name sym.name;
              p_binding = sym.binding }
        | None -> None)
    helper.sections

(* fold the free-form mismatch text into a stable counter suffix, so
   "runpre.reject.<class>" cardinality stays bounded no matter what the
   reason strings interpolate *)
let reason_class reason =
  let has_prefix p = String.length reason >= String.length p
                     && String.sub reason 0 (String.length p) = p in
  if has_prefix "symbol " then "symbol_conflict"
  else if has_prefix "jump class differs" then "jump_class"
  else if has_prefix "strict jump mismatch" then "strict_jump"
  else if has_prefix "jump target mismatch" then "jump_target"
  else if has_prefix "jump into middle" then "jump_alignment"
  else if has_prefix "pre jump leaves" then "jump_escape"
  else if has_prefix "instruction mismatch" then "code"
  else if has_prefix "undecodable" then "undecodable"
  else if has_prefix "run memory unreadable" then "unreadable"
  else if has_prefix "relocation on short jump" then "short_reloc"
  else "other"

let match_helper ?(tolerance = full_tolerance) ~read_run ~candidates
    ~already ~inference (helper : Objfile.t) =
  Trace.with_span "runpre.match_helper"
    ~fields:[ ("unit", Trace.Str helper.unit_name) ]
  @@ fun () ->
  let bindings = binding_index helper in
  let pending = ref (text_sections helper) in
  let anchors = ref [] in
  let last_failure = ref None in
  (* [sym_value addr] is what the function's symbol resolves to when
     its code was located at [addr]: for a function already
     redirected by an earlier update, the original entry; otherwise
     the code address itself. *)
  let candidate_addrs p =
    match already (helper.unit_name, p.p_fname) with
    | Some (code_addr, symbol_value) -> ([ code_addr ], fun _ -> symbol_value)
    | None -> (
      match Hashtbl.find_opt inference p.p_canonical with
      | Some addr -> ([ addr ], fun a -> a)
      | None -> (candidates p.p_fname, fun a -> a))
  in
  (* the single candidate-trial loop, shared by the progress rounds and
     the failure-reporting epilogue so the two cannot drift: try every
     candidate address against the section, recording the last genuine
     code mismatch, and keep the trials that matched *)
  let try_candidates p cands =
    List.filter_map
      (fun addr ->
        Atomic.incr attempts;
        Trace.count "runpre.match_attempts" 1;
        let trial = { committed = inference; overlay = Hashtbl.create 16 } in
        match
          match_text ~tolerance ~read_run ~helper ~bindings
            ~section:p.p_section ~run_base:addr ~trial
        with
        | () ->
          Trace.instant "runpre.candidate"
            ~fields:
              [ ("unit", Trace.Str helper.unit_name);
                ("section", Trace.Str p.p_section.name);
                ("addr", Trace.Int addr);
                ("accepted", Trace.Bool true) ];
          Some (addr, trial)
        | exception Mismatch m ->
          last_failure := Some m;
          Trace.count ("runpre.reject." ^ reason_class m.reason) 1;
          (* the §4 diagnostic: which candidate, and the byte offset of
             first divergence on both sides *)
          Trace.instant "runpre.candidate"
            ~fields:
              [ ("unit", Trace.Str helper.unit_name);
                ("section", Trace.Str p.p_section.name);
                ("addr", Trace.Int addr);
                ("accepted", Trace.Bool false);
                ("reason", Trace.Str m.reason);
                ("pre_off", Trace.Int m.pre_off);
                ("run_addr", Trace.Int m.run_addr) ];
          None)
      (List.sort_uniq compare cands)
  in
  let progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    let still = ref [] in
    List.iter
      (fun p ->
        let cands, sym_value = candidate_addrs p in
        match try_candidates p cands with
        | [ (addr, trial) ] ->
          commit trial;
          Hashtbl.replace inference p.p_canonical (sym_value addr);
          anchors := (p.p_canonical, addr) :: !anchors;
          progress := true
        | [] -> still := p :: !still
        | _many -> still := p :: !still)
      !pending;
    pending := List.rev !still
  done;
  (match !pending with
   | [] -> ()
   | p :: _ ->
     let cands, _ = candidate_addrs p in
     match try_candidates p cands with
     | [] -> (
       (* surface the underlying code mismatch when there was a single
          candidate — that is the §4.2 safety abort *)
       match !last_failure, cands with
       | Some m, [ _ ] -> raise (Mismatch m)
       | _ ->
         raise
           (Ambiguous
              { unit_name = helper.unit_name; symbol = p.p_fname; matches = 0 }))
     | l ->
       raise
         (Ambiguous
            { unit_name = helper.unit_name; symbol = p.p_fname;
              matches = List.length l }))
  ;
  List.rev !anchors
