(** kpatch-grade object differencing: the engine behind {!Prepost} and
    {!Create}, in four passes over a unit's pre/post objects.

    {ol
    {- {b Symbol correlation} — stable names correlate by name; MiniC
       temp-named read-only slices ([.Lstr<n>] in [.rodata.str])
       correlate by {e content}, cancelling the renumbering noise an
       unrelated edit introduces (the analogue of kpatch's line-number
       and local-suffix filtering).}
    {- {b Function-granular change detection} — per-symbol instruction
       walks with alignment no-ops skipped on each side independently,
       jump displacements equated through a boundary map, and
       relocation holes compared modulo the rename map, so layout and
       padding drift produce zero diffs.}
    {- {b Dependency closure} — replaced and new code seeds the shipping
       set; relocations from anything included pull in, transitively,
       the definitions the running kernel cannot resolve (new and
       changed read-only slices, new data), each recorded with a
       per-symbol inclusion {!reason}.}
    {- {b Changed-data detection} — per-symbol data comparison:
       read-only initializer changes are shippable, data/bss initial
       image changes are the §2 persistent-semantics signal the caller
       must gate on.}} *)

(** Why a symbol ships in the update's primary object. *)
type reason =
  | Changed  (** its own code genuinely changed *)
  | New  (** no pre counterpart *)
  | Closure_of of string
      (** required by the named included symbol's relocations *)
  | Data_referent of string
      (** code unchanged, but it references the named changed read-only
          datum and must be replaced to pick up the new reference *)

val reason_to_string : reason -> string
val pp_reason : Format.formatter -> reason -> unit

type unit_diff = {
  unit_name : string;
  changed_functions : string list;
      (** functions to replace: genuinely changed code plus unchanged
          code whose data references moved (see [inclusion]) *)
  new_functions : string list;  (** present only post *)
  removed_functions : string list;  (** present only pre *)
  changed_data : string list;
      (** persistent data/bss whose initial image changed: the §2
          "semantic change" signal, never shipped *)
  changed_rodata : string list;
      (** read-only slices with changed or new content (post names):
          shippable copies *)
  new_data : string list;  (** data/bss present only post *)
  renames : (string * string) list;
      (** non-identity post → pre temp-symbol correlations *)
  inclusion : (string * reason) list;
      (** every symbol the minimal primary ships, with why *)
}

val pp_unit_diff : Format.formatter -> unit_diff -> unit

(** [is_empty d] holds when the patch had no object-code effect on the
    unit — including when the rebuild only renumbered temporaries or
    moved padding. *)
val is_empty : unit_diff -> bool

(** [fname_of_section s] extracts the function name from a [.text.<f>]
    section. *)
val fname_of_section : Objfile.Section.t -> string option

(** [dataname_of_section s] extracts the datum name from a [.data.<n>]
    or [.bss.<n>] section. *)
val dataname_of_section : Objfile.Section.t -> string option

(** [is_temp name] holds for compiler-generated local symbol names
    ([.L*]), whose numbering carries no identity across builds. *)
val is_temp : string -> bool

(** Pass-2 verdict for one function. *)
type verdict =
  | Same
  | Code_changed
  | Refs_changed_data of string list
      (** unchanged instruction stream; these post-side read-only syms
          it references have no pre counterpart by content *)

(** The correlation computed by pass 1. *)
type correlation = { temp_map : (string, string) Hashtbl.t }

val correlate : pre:Objfile.t -> post:Objfile.t -> correlation

(** [code_verdict ~corr ~pre ~post] statically compares two builds of
    one function ({!Runpre.match_text}'s static twin). *)
val code_verdict :
  corr:correlation ->
  pre:Objfile.Section.t ->
  post:Objfile.Section.t ->
  verdict

(** A defined symbol's byte range within its section. *)
type slice = {
  sl_sym : Objfile.Symbol.t;
  sl_section : Objfile.Section.t;
  sl_off : int;
  sl_size : int;
}

val slice_of : Objfile.t -> Objfile.Symbol.t -> slice option
val slice_bytes : slice -> Bytes.t

(** Relocations inside the slice, rebased to slice-relative offsets. *)
val slice_relocs : slice -> Objfile.Reloc.t list

(** [diff_unit ~pre ~post] runs all four passes over one unit (both
    objects built with function sections). *)
val diff_unit : pre:Objfile.t -> post:Objfile.t -> unit_diff
