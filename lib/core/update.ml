module Symbol = Objfile.Symbol

type t = {
  update_id : string;
  description : string;
  patched_units : string list;
  replaced_functions : (string * string) list;
  primary : Objfile.t;
  helpers : Objfile.t list;
  primary_sym_units : (string * string) list;
}

let canonical ~binding ~unit_name name =
  match binding with
  | Symbol.Local -> name ^ "@" ^ unit_name
  | Symbol.Global -> name

let split_canonical n =
  match String.rindex_opt n '@' with
  | Some i ->
    (String.sub n 0 i, Some (String.sub n (i + 1) (String.length n - i - 1)))
  | None -> (n, None)

(* --- serialisation --- *)

let magic = "KSPL1"

let put_int b v = Buffer.add_int32_le b (Int32.of_int v)

let put_str b s =
  put_int b (String.length s);
  Buffer.add_string b s

let put_obj b o =
  let bytes = Objfile.to_bytes o in
  put_int b (Bytes.length bytes);
  Buffer.add_bytes b bytes

let put_list b f l =
  put_int b (List.length l);
  List.iter (f b) l

let put_pair b (x, y) =
  put_str b x;
  put_str b y

let to_bytes u =
  let b = Buffer.create 8192 in
  Buffer.add_string b magic;
  put_str b u.update_id;
  put_str b u.description;
  put_list b put_str u.patched_units;
  put_list b put_pair u.replaced_functions;
  put_obj b u.primary;
  put_list b put_obj u.helpers;
  put_list b put_pair u.primary_sym_units;
  Buffer.to_bytes b

type reader = { buf : Bytes.t; mutable pos : int }

let need r n =
  if r.pos + n > Bytes.length r.buf then failwith "Update: truncated input"

let get_int r =
  need r 4;
  let v = Int32.to_int (Bytes.get_int32_le r.buf r.pos) in
  r.pos <- r.pos + 4;
  if v < 0 then failwith "Update: negative length";
  v

let get_str r =
  let n = get_int r in
  need r n;
  let s = Bytes.sub_string r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let get_obj r =
  let n = get_int r in
  need r n;
  let o = Objfile.of_bytes (Bytes.sub r.buf r.pos n) in
  r.pos <- r.pos + n;
  o

let get_list r f = List.init (get_int r) (fun _ -> f r)

let get_pair r =
  let a = get_str r in
  let b = get_str r in
  (a, b)

let of_bytes buf =
  let r = { buf; pos = 0 } in
  need r (String.length magic);
  (match Bytes.sub_string buf 0 (String.length magic) with
  | m when String.equal m magic -> ()
  | "KSPL2" ->
    failwith
      "Update: store-backed KSPL2 file; decode it with of_bytes_store \
       against the artifact store it was written through"
  | _ -> failwith "Update: bad magic");
  r.pos <- String.length magic;
  let update_id = get_str r in
  let description = get_str r in
  let patched_units = get_list r get_str in
  let replaced_functions = get_list r get_pair in
  let primary = get_obj r in
  let helpers = get_list r get_obj in
  let primary_sym_units = get_list r get_pair in
  { update_id; description; patched_units; replaced_functions; primary;
    helpers; primary_sym_units }

(* --- store-backed serialisation (KSPL2) ---

   Object payloads (the primary and every helper) are interned in the
   artifact store and the file carries only their digests, so stacked
   updates sharing a base kernel share one physical copy of each common
   helper. The KSPL1 reader above stays authoritative for self-contained
   files; [of_bytes_store] accepts both formats. *)

let store_magic = "KSPL2"

let intern_obj store o =
  Store.put store (Bytes.to_string (Objfile.to_bytes o))

let to_bytes_store store u =
  let b = Buffer.create 1024 in
  Buffer.add_string b store_magic;
  put_str b u.update_id;
  put_str b u.description;
  put_list b put_str u.patched_units;
  put_list b put_pair u.replaced_functions;
  put_str b (intern_obj store u.primary);
  put_list b put_str (List.map (intern_obj store) u.helpers);
  put_list b put_pair u.primary_sym_units;
  Buffer.to_bytes b

let of_bytes_store store buf =
  let mlen = String.length store_magic in
  if Bytes.length buf >= mlen && Bytes.sub_string buf 0 mlen = magic then
    (* self-contained legacy file: no store needed *)
    match of_bytes buf with
    | u -> Ok u
    | exception Failure m -> Error m
  else if Bytes.length buf < mlen || Bytes.sub_string buf 0 mlen <> store_magic
  then Error "Update: bad magic"
  else
    let fetch_obj d =
      match Store.load store d with
      | Ok raw -> Objfile.of_bytes (Bytes.of_string raw)
      | Error `Missing ->
        failwith ("Update: object " ^ d ^ " is not in the artifact store")
      | Error (`Corrupt m) -> failwith ("Update: corrupt object: " ^ m)
    in
    match
      let r = { buf; pos = mlen } in
      let update_id = get_str r in
      let description = get_str r in
      let patched_units = get_list r get_str in
      let replaced_functions = get_list r get_pair in
      let primary = fetch_obj (get_str r) in
      let helpers = get_list r get_str |> List.map fetch_obj in
      let primary_sym_units = get_list r get_pair in
      { update_id; description; patched_units; replaced_functions; primary;
        helpers; primary_sym_units }
    with
    | u -> Ok u
    | exception Failure m -> Error m

(* The store digests a serialised update references, without fetching
   (or needing) the objects themselves — the GC's reachability edge. A
   self-contained KSPL1 file references nothing. *)
let store_digests buf =
  let mlen = String.length store_magic in
  if Bytes.length buf >= mlen && Bytes.sub_string buf 0 mlen = magic then Ok []
  else if Bytes.length buf < mlen || Bytes.sub_string buf 0 mlen <> store_magic
  then Error "Update: bad magic"
  else
    match
      let r = { buf; pos = mlen } in
      let _update_id = get_str r in
      let _description = get_str r in
      let _patched_units = get_list r get_str in
      let _replaced_functions = get_list r get_pair in
      let primary = get_str r in
      let helpers = get_list r get_str in
      primary :: helpers
    with
    | ds -> Ok ds
    | exception Failure m -> Error m

let write_file path u =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc (to_bytes u))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      of_bytes b)
