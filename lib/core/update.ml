module Symbol = Objfile.Symbol

type t = {
  update_id : string;
  description : string;
  patched_units : string list;
  replaced_functions : (string * string) list;
  primary : Objfile.t;
  helpers : Objfile.t list;
  primary_sym_units : (string * string) list;
  supersedes : string list;
  shadow_ctors : string list;
  shadow_dtors : string list;
}

let is_cumulative u = u.supersedes <> []

let canonical ~binding ~unit_name name =
  match binding with
  | Symbol.Local -> name ^ "@" ^ unit_name
  | Symbol.Global -> name

let split_canonical n =
  match String.rindex_opt n '@' with
  | Some i ->
    (String.sub n 0 i, Some (String.sub n (i + 1) (String.length n - i - 1)))
  | None -> (n, None)

(* --- serialisation --- *)

let magic = "KSPL1"

let put_int b v = Buffer.add_int32_le b (Int32.of_int v)

let put_str b s =
  put_int b (String.length s);
  Buffer.add_string b s

let put_obj b o =
  let bytes = Objfile.to_bytes o in
  put_int b (Bytes.length bytes);
  Buffer.add_bytes b bytes

let put_list b f l =
  put_int b (List.length l);
  List.iter (f b) l

let put_pair b (x, y) =
  put_str b x;
  put_str b y

let to_bytes u =
  let b = Buffer.create 8192 in
  Buffer.add_string b magic;
  put_str b u.update_id;
  put_str b u.description;
  put_list b put_str u.patched_units;
  put_list b put_pair u.replaced_functions;
  put_obj b u.primary;
  put_list b put_obj u.helpers;
  put_list b put_pair u.primary_sym_units;
  put_list b put_str u.supersedes;
  put_list b put_str u.shadow_ctors;
  put_list b put_str u.shadow_dtors;
  Buffer.to_bytes b

(* Decoding is total: a corrupt blob — out of the CAS, off the wire, or
   handed to the CLI — yields a typed [Error], never an escaped
   exception. The reader raises the private [Decode] exception
   internally; the [of_bytes*] entry points are the only boundaries that
   catch it. *)
type decode_error = { de_off : int; de_reason : string }

exception Decode of decode_error

let pp_decode_error ppf e =
  Format.fprintf ppf "%s at byte %d" e.de_reason e.de_off

let decode_error_to_string e = Format.asprintf "%a" pp_decode_error e

type reader = { buf : Bytes.t; mutable pos : int }

let bad r reason = raise (Decode { de_off = r.pos; de_reason = reason })

let need r n =
  if n < 0 || r.pos + n > Bytes.length r.buf then bad r "truncated input"

let get_int r =
  need r 4;
  let v = Int32.to_int (Bytes.get_int32_le r.buf r.pos) in
  r.pos <- r.pos + 4;
  if v < 0 then bad r "negative length";
  v

let get_str r =
  let n = get_int r in
  need r n;
  let s = Bytes.sub_string r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let get_obj r =
  let n = get_int r in
  need r n;
  match Objfile.of_bytes (Bytes.sub r.buf r.pos n) with
  | Error e ->
    bad r
      (Printf.sprintf "bad embedded object: %s"
         (Objfile.decode_error_to_string e))
  | Ok o ->
    r.pos <- r.pos + n;
    o

let get_list r f = List.init (get_int r) (fun _ -> f r)

let get_pair r =
  let a = get_str r in
  let b = get_str r in
  (a, b)

let decode_self r =
  let update_id = get_str r in
  let description = get_str r in
  let patched_units = get_list r get_str in
  let replaced_functions = get_list r get_pair in
  let primary = get_obj r in
  let helpers = get_list r get_obj in
  let primary_sym_units = get_list r get_pair in
  let supersedes = get_list r get_str in
  let shadow_ctors = get_list r get_str in
  let shadow_dtors = get_list r get_str in
  { update_id; description; patched_units; replaced_functions; primary;
    helpers; primary_sym_units; supersedes; shadow_ctors; shadow_dtors }

let of_bytes buf =
  match
    let r = { buf; pos = 0 } in
    need r (String.length magic);
    (match Bytes.sub_string buf 0 (String.length magic) with
    | m when String.equal m magic -> ()
    | "KSPL2" | "KSPL3" ->
      bad r
        "store-backed update file; decode it with of_bytes_store against \
         the artifact store it was written through"
    | _ -> bad r "bad magic");
    r.pos <- String.length magic;
    decode_self r
  with
  | u -> Ok u
  | exception Decode e -> Error e

let of_bytes_exn buf =
  match of_bytes buf with
  | Ok u -> u
  | Error e -> failwith ("Update: " ^ decode_error_to_string e)

(* --- store-backed serialisation (KSPL2 / KSPL3) ---

   Object payloads (the primary and every helper) are interned in the
   artifact store and the file carries only their digests, so stacked
   updates sharing a base kernel share one physical copy of each common
   helper. KSPL3 extends KSPL2 with the cumulative records — the update
   ids this blob supersedes (atomic replace) and the shadow-variable
   constructor/destructor hooks; the writer emits KSPL3 only when one of
   those is present, so ordinary updates stay byte-identical to their
   KSPL2 encoding and every old blob remains readable. *)

let store_magic = "KSPL2"
let cumulative_magic = "KSPL3"

let intern_obj store o =
  Store.put store (Bytes.to_string (Objfile.to_bytes o))

let to_bytes_store store u =
  let cumulative =
    u.supersedes <> [] || u.shadow_ctors <> [] || u.shadow_dtors <> []
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b (if cumulative then cumulative_magic else store_magic);
  put_str b u.update_id;
  put_str b u.description;
  put_list b put_str u.patched_units;
  put_list b put_pair u.replaced_functions;
  put_str b (intern_obj store u.primary);
  put_list b put_str (List.map (intern_obj store) u.helpers);
  put_list b put_pair u.primary_sym_units;
  if cumulative then begin
    put_list b put_str u.supersedes;
    put_list b put_str u.shadow_ctors;
    put_list b put_str u.shadow_dtors
  end;
  Buffer.to_bytes b

(* Which store-backed format a blob claims, by magic alone. *)
let store_format buf =
  let mlen = String.length store_magic in
  if Bytes.length buf < mlen then `Unknown
  else
    match Bytes.sub_string buf 0 mlen with
    | m when String.equal m magic -> `Self
    | m when String.equal m store_magic -> `Store
    | m when String.equal m cumulative_magic -> `Cumulative
    | _ -> `Unknown

let of_bytes_store store buf =
  match store_format buf with
  | `Self ->
    (* self-contained legacy file: no store needed *)
    of_bytes buf
  | `Unknown -> Error { de_off = 0; de_reason = "bad magic" }
  | (`Store | `Cumulative) as fmt -> (
    let fetch_obj r d =
      match Store.load store d with
      | Ok raw -> (
        match Objfile.of_bytes (Bytes.of_string raw) with
        | Ok o -> o
        | Error e ->
          bad r
            (Printf.sprintf "object %s does not parse: %s" d
               (Objfile.decode_error_to_string e)))
      | Error `Missing -> bad r ("object " ^ d ^ " is not in the artifact store")
      | Error (`Corrupt m) -> bad r ("corrupt object: " ^ m)
    in
    match
      let r = { buf; pos = String.length store_magic } in
      let update_id = get_str r in
      let description = get_str r in
      let patched_units = get_list r get_str in
      let replaced_functions = get_list r get_pair in
      let primary = fetch_obj r (get_str r) in
      let helpers = get_list r get_str |> List.map (fetch_obj r) in
      let primary_sym_units = get_list r get_pair in
      let supersedes, shadow_ctors, shadow_dtors =
        match fmt with
        | `Store -> ([], [], [])
        | `Cumulative ->
          let s = get_list r get_str in
          let c = get_list r get_str in
          let d = get_list r get_str in
          (s, c, d)
      in
      { update_id; description; patched_units; replaced_functions; primary;
        helpers; primary_sym_units; supersedes; shadow_ctors; shadow_dtors }
    with
    | u -> Ok u
    | exception Decode e -> Error e)

(* The store digests a serialised update references, without fetching
   (or needing) the objects themselves — the GC's reachability edge. A
   self-contained KSPL1 file references nothing. *)
let store_digests buf =
  match store_format buf with
  | `Self -> Ok []
  | `Unknown -> Error "Update: bad magic"
  | `Store | `Cumulative -> (
    match
      let r = { buf; pos = String.length store_magic } in
      let _update_id = get_str r in
      let _description = get_str r in
      let _patched_units = get_list r get_str in
      let _replaced_functions = get_list r get_pair in
      let primary = get_str r in
      let helpers = get_list r get_str in
      primary :: helpers
    with
    | ds -> Ok ds
    | exception Decode e -> Error ("Update: " ^ decode_error_to_string e))

(* The ids a serialised update supersedes, parsed from the blob alone
   (no store): how a subscriber recognises a cumulative entry in the
   bytes it received, rather than trusting the server's framing. An
   unparseable or non-cumulative blob supersedes nothing. *)
let supersedes_of_bytes buf =
  match store_format buf with
  | `Self | `Store | `Unknown -> []
  | `Cumulative -> (
    match
      let r = { buf; pos = String.length store_magic } in
      let _update_id = get_str r in
      let _description = get_str r in
      let _patched_units = get_list r get_str in
      let _replaced_functions = get_list r get_pair in
      let _primary = get_str r in
      let _helpers = get_list r get_str in
      let _primary_sym_units = get_list r get_pair in
      get_list r get_str
    with
    | ds -> ds
    | exception Decode _ -> [])

let write_file path u =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc (to_bytes u))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      of_bytes_exn b)
