module Machine = Kernel.Machine

type step =
  | Allocate
  | Link
  | Relocate
  | Hook_pre
  | Capture
  | Transition
  | Quiesce
  | Trampoline
  | Commit

let all_steps =
  [ Allocate; Link; Relocate; Hook_pre; Capture; Transition; Quiesce;
    Trampoline; Commit ]

let step_name = function
  | Allocate -> "allocate"
  | Link -> "link"
  | Relocate -> "relocate"
  | Hook_pre -> "hook-pre"
  | Capture -> "capture"
  | Transition -> "transition"
  | Quiesce -> "quiesce"
  | Trampoline -> "trampoline"
  | Commit -> "commit"

let step_of_name n =
  List.find_opt (fun s -> String.equal (step_name s) n) all_steps

type tag = Mech | Hook | Sched

type entry = {
  e_addr : int;
  e_old : Bytes.t;
  e_tag : tag;
}

type journal = entry list (* most recent write first *)

let journal_entries (j : journal) = List.length j
let journal_writes (j : journal) = List.map (fun e -> (e.e_addr, e.e_old)) j

let replay (j : journal) m =
  List.iter (fun e -> Machine.write_bytes m e.e_addr e.e_old) j

type state = Open | Closed

type t = {
  m : Machine.t;
  vol : Machine.volatile_state;
  mutable entries : entry list;  (* most recent first *)
  mutable cur_step : step option;
  mutable cur_tag : tag;
  mutable state : state;
}

let begin_ m =
  let t =
    { m; vol = Machine.save_volatile m; entries = []; cur_step = None;
      cur_tag = Mech; state = Open }
  in
  Machine.set_write_observer m
    (Some
       (fun addr len ->
         t.entries <-
           { e_addr = addr; e_old = Machine.read_bytes m addr len;
             e_tag = t.cur_tag }
           :: t.entries));
  t

let enter t s = t.cur_step <- Some s
let current t = t.cur_step

let with_tag t tag f =
  let prev = t.cur_tag in
  t.cur_tag <- tag;
  Fun.protect ~finally:(fun () -> t.cur_tag <- prev) f

let close t =
  if t.state = Closed then invalid_arg "Txn: transaction already closed";
  t.state <- Closed;
  Machine.set_write_observer t.m None

let rollback t =
  close t;
  (* a transaction aborts with whatever injectors provoked the abort
     still armed; restoration must not run through them *)
  Machine.clear_injectors t.m;
  List.iter (fun e -> Machine.write_bytes t.m e.e_addr e.e_old) t.entries;
  Machine.restore_volatile t.m t.vol;
  t.entries <- []

let commit t =
  close t;
  List.filter (fun e -> e.e_tag = Mech) t.entries

let discard t = close t
