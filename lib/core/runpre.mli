(** Run-pre matching (§4): byte-by-byte comparison of the pre object code
    against the running kernel's memory, simultaneously verifying safety
    and inferring symbol values from already-relocated run bytes.

    For every text section of a helper (pre) object, the matcher walks the
    pre instruction stream and the run instruction stream in lockstep:

    - no-op sequences are skipped independently on either side (assembler
      alignment padding differs between build modes, §4.3);
    - short (rel8) and long (rel32) encodings of the same jump are
      equivalent; their targets are checked through the pre↔run boundary
      correspondence once the walk completes;
    - a pre relocation hole yields a symbol-value inference
      [S = val + P_run − A] (Figure 2); repeated sightings must agree;
    - any other divergence aborts the update.

    Where a function's name is ambiguous (multiple kallsyms candidates),
    every candidate address is tried; exactly one must match. Inference
    results from already-matched sections feed later candidate resolution,
    so a static function called by a matched caller is located by its
    inferred address rather than by name. *)

type mismatch = {
  unit_name : string;
  section : string;
  pre_off : int;
  run_addr : int;
  reason : string;
}

exception Mismatch of mismatch

exception
  Ambiguous of {
    unit_name : string;
    symbol : string;
    matches : int;  (** 0 = no candidate matched, >1 = several did *)
  }

(** Accumulated inference state, shared across the helpers of one update:
    canonical symbol name (see {!Update.canonical}) to value. *)
type inference = (string, int) Hashtbl.t

val create_inference : unit -> inference

(** Candidate trials (one per [match_text] attempt against a candidate
    address) since the last {!reset_match_attempts} — the denominator the
    differencing bench and minimality sweep compare minimal updates
    against whole-unit ones on. Also mirrored as the
    [runpre.match_attempts] trace counter when tracing is enabled. *)
val match_attempts : unit -> int

val reset_match_attempts : unit -> unit

(** [with_imm i v] replaces the immediate operand of an
    immediate-carrying instruction (the §4 relocation-hole positions).
    @raise Invalid_argument when [i] has no immediate field. *)
val with_imm : Vmisa.Isa.insn -> int32 -> Vmisa.Isa.insn

(** Matcher capabilities, for ablation experiments. Disabling either
    models a naive matcher and demonstrates why §4.3 requires
    architecture knowledge: [skip_nops] absorbs assembler alignment
    padding; [jump_equivalence] treats short (rel8) and long (rel32)
    encodings of one jump as the same instruction and compares their
    targets through the boundary map rather than their displacement
    bytes. *)
type tolerance = {
  skip_nops : bool;
  jump_equivalence : bool;
}

val full_tolerance : tolerance

(** [match_helper ~read_run ~candidates ~already ~inference helper]
    matches every text section of [helper] against the running kernel.

    [read_run] reads one byte of kernel memory. [candidates name] returns
    candidate run addresses for a function name (e.g. kallsyms entries of
    kind [`Func]). [already (unit, fn)] handles §5.4 stacked updates: when
    a previous hot update already redirected the function it returns
    [(code_addr, symbol_value)] — the pre code is matched against the
    latest replacement code at [code_addr], while the function's {e symbol
    value} stays [symbol_value] (its original entry, where unchanged
    callers still point and where the trampoline chain begins).

    Returns the run address of every function in the helper, keyed by
    canonical name, and extends [inference] with every symbol value
    learned.

    @raise Mismatch when pre and run code genuinely differ.
    @raise Ambiguous when a function cannot be located uniquely. *)
val match_helper :
  ?tolerance:tolerance ->
  read_run:(int -> int) ->
  candidates:(string -> int list) ->
  already:(string * string -> (int * int) option) ->
  inference:inference ->
  Objfile.t ->
  (string * int) list
