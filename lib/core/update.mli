(** Ksplice update files.

    An update bundles the {e primary} object (replacement code: the post
    versions of every changed function, any new functions and data the
    patch introduced, copies of referenced read-only data, and the
    [.ksplice.*] hook sections) with one {e helper} object per patched
    compilation unit (the complete pre build of that unit, §5.1). The
    helper is what run-pre matching checks against the running kernel; it
    can be discarded once the update is applied.

    A {e cumulative} update additionally records the update ids it
    supersedes ([supersedes]) — applying it atomically replaces that
    whole applied stack (§5's atomic-replace sketch) — and its
    shadow-variable hooks: constructor functions run once the new code
    is live (attaching per-object side-table state for patches that
    extend a struct layout) and destructor functions run at unpatch.

    Symbol namespace: unit-local (static) symbols are canonicalised to
    [name@unit] throughout the update so that two units' identically-named
    statics never collide — the object-level answer to the ambiguous
    symbol problem of §4.1. *)

type t = {
  update_id : string;
  description : string;
  (* units the patch touched, in build order *)
  patched_units : string list;
  (* functions to be redirected with trampolines: (unit, function) with
     the function name in canonical form *)
  replaced_functions : (string * string) list;
  primary : Objfile.t;
  helpers : Objfile.t list;
  (* defining unit of every symbol the primary defines *)
  primary_sym_units : (string * string) list;
  (* update ids this cumulative update atomically replaces, oldest
     first; [] for an ordinary update *)
  supersedes : string list;
  (* canonical names of shadow-variable constructor functions, run (in
     order) once the replacement code is live *)
  shadow_ctors : string list;
  (* canonical names of shadow-variable destructor functions, run (in
     reverse order) when the update is removed *)
  shadow_dtors : string list;
}

(** Does this update atomically replace a stack ([supersedes <> []])? *)
val is_cumulative : t -> bool

(** [canonical ~binding ~unit name] is the update-namespace symbol name:
    [name@unit] for local symbols, [name] for globals. *)
val canonical :
  binding:Objfile.Symbol.binding -> unit_name:string -> string -> string

(** [split_canonical n] recovers [(original_name, unit option)]. *)
val split_canonical : string -> string * string option

(** Why a blob failed to decode: the byte offset the reader stood at and
    what it found there. Decoding is {e total} — arbitrary bytes yield
    [Error], never an exception. *)
type decode_error = { de_off : int; de_reason : string }

val pp_decode_error : Format.formatter -> decode_error -> unit
val decode_error_to_string : decode_error -> string

(** Self-contained serialisation (format [KSPL1]): every object payload
    is embedded. [of_bytes] refuses store-backed [KSPL2]/[KSPL3] files
    with an error naming {!of_bytes_store}; [of_bytes_exn] is the legacy
    interface, raising [Failure] instead. *)

val to_bytes : t -> Bytes.t
val of_bytes : Bytes.t -> (t, decode_error) result
val of_bytes_exn : Bytes.t -> t

(** Store-backed serialisation (formats [KSPL2] and [KSPL3]): the
    primary and helper objects are interned in the artifact store and the
    file carries only their digests, so stacked updates sharing a base
    kernel share one physical copy of each common helper. The writer
    emits [KSPL3] only when the update carries cumulative records
    ([supersedes] or shadow hooks), so ordinary updates stay
    byte-identical to their [KSPL2] encoding. [of_bytes_store] reads all
    three formats — a [KSPL1] file decodes without touching the store; a
    store-backed file resolves its digests through [store], failing
    cleanly if a referenced blob is missing or corrupt. *)

val to_bytes_store : Store.t -> t -> Bytes.t
val of_bytes_store : Store.t -> Bytes.t -> (t, decode_error) result

(** The store digests a serialised update references (primary first,
    then helpers), parsed from the header alone — the blobs are never
    fetched. A self-contained [KSPL1] file references nothing ([Ok []]).
    This is the GC's reachability edge from an update blob to the object
    blobs it shares with other updates. *)
val store_digests : Bytes.t -> (string list, string) result

(** The update ids a serialised [KSPL3] blob supersedes, parsed from the
    bytes alone (no store): how a subscriber recognises a cumulative
    entry in what it actually received. Anything non-cumulative or
    unparseable supersedes nothing. *)
val supersedes_of_bytes : Bytes.t -> string list

(** Convenience file IO. [read_file] raises [Failure] on malformed
    contents. *)
val write_file : string -> t -> unit
val read_file : string -> t
