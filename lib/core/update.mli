(** Ksplice update files.

    An update bundles the {e primary} object (replacement code: the post
    versions of every changed function, any new functions and data the
    patch introduced, copies of referenced read-only data, and the
    [.ksplice.*] hook sections) with one {e helper} object per patched
    compilation unit (the complete pre build of that unit, §5.1). The
    helper is what run-pre matching checks against the running kernel; it
    can be discarded once the update is applied.

    Symbol namespace: unit-local (static) symbols are canonicalised to
    [name@unit] throughout the update so that two units' identically-named
    statics never collide — the object-level answer to the ambiguous
    symbol problem of §4.1. *)

type t = {
  update_id : string;
  description : string;
  (* units the patch touched, in build order *)
  patched_units : string list;
  (* functions to be redirected with trampolines: (unit, function) with
     the function name in canonical form *)
  replaced_functions : (string * string) list;
  primary : Objfile.t;
  helpers : Objfile.t list;
  (* defining unit of every symbol the primary defines *)
  primary_sym_units : (string * string) list;
}

(** [canonical ~binding ~unit name] is the update-namespace symbol name:
    [name@unit] for local symbols, [name] for globals. *)
val canonical :
  binding:Objfile.Symbol.binding -> unit_name:string -> string -> string

(** [split_canonical n] recovers [(original_name, unit option)]. *)
val split_canonical : string -> string * string option

(** Self-contained serialisation (format [KSPL1]): every object payload
    is embedded. [of_bytes] raises [Failure] on malformed input, and
    refuses store-backed [KSPL2] files with a message naming
    {!of_bytes_store}. *)

val to_bytes : t -> Bytes.t
val of_bytes : Bytes.t -> t

(** Store-backed serialisation (format [KSPL2]): the primary and helper
    objects are interned in the artifact store and the file carries only
    their digests, so stacked updates sharing a base kernel share one
    physical copy of each common helper. [of_bytes_store] reads both
    formats — a [KSPL1] file decodes without touching the store; a
    [KSPL2] file resolves its digests through [store], failing cleanly if
    a referenced blob is missing or corrupt. *)

val to_bytes_store : Store.t -> t -> Bytes.t
val of_bytes_store : Store.t -> Bytes.t -> (t, string) result

(** The store digests a serialised update references (primary first,
    then helpers), parsed from the header alone — the blobs are never
    fetched. A self-contained [KSPL1] file references nothing ([Ok []]).
    This is the GC's reachability edge from an update blob to the object
    blobs it shares with other updates. *)
val store_digests : Bytes.t -> (string list, string) result

val write_file : string -> t -> unit
val read_file : string -> t
