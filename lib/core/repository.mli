(** Hot-update distribution (§8's future work): "one could use Ksplice to
    create hot update packages for common starting kernel configurations.
    People who subscribe their systems to these updates would be able to
    transparently receive kernel hot updates."

    A repository is a directory-backed {!Store.t}: each published entry
    is a content-addressed blob, and the mutable ref
    ["entry:<base_digest>"] maps a source state to its entry. Every read
    re-digests the blob, so a truncated or bit-flipped entry surfaces as
    a clean {!Corrupt_entry} result, never a crash. The update inside an
    entry is serialised store-backed ({!Update.to_bytes_store}), so the
    entries of a chain share one physical copy of each common helper
    object. Each entry carries the update plus the source patch, so a
    subscriber can advance its local previously-patched source (needed
    both to verify the chain and to create further updates, §5.4).
    Subscribing walks the chain from the subscriber's current digest,
    applying every pending update in order — the paper's "without any
    ongoing effort from users" flow. *)

type t

(** The artifact store holding this repository's entries and objects. *)
val store : t -> Store.t

(** A repository view over an existing store handle — e.g. a fleet
    subscriber's local mirror, which may be memory-only. Everything
    except {!open_dir} works on it. *)
val of_store : Store.t -> t

(** The mutable-ref name under which the entry for a source digest is
    published (["entry:<digest>"]) — the names a subscriber's mirror
    must reproduce. *)
val entry_ref : string -> string

(** The ref under which a {e cumulative} entry for a source digest is
    published (["cumulative:<digest>"]). A cumulative entry sits beside
    the per-update chain: one hop from its base straight to the chain
    head, carrying an atomic-replace update. *)
val cumulative_ref : string -> string

(** An update published against a particular source state. *)
type entry = {
  base_digest : string;  (** digest of the source this applies to *)
  next_digest : string;  (** digest after applying the patch *)
  patch_text : string;  (** unified diff *)
  update : Update.t;
}

type error =
  | Not_a_directory of string
  | Already_published of string
      (** an entry for this source digest already exists (linear chains
          only) *)
  | Patch_rejected of string
      (** the patch does not apply to the published source *)
  | Corrupt_entry of { digest : string; reason : string }
      (** the entry for [digest] failed the re-digest check or does not
          parse *)
  | Chain_cycle of string
  | Update_apply_failed of { update_id : string; reason : string }
  | Source_patch_failed of { update_id : string; reason : string }
  | Io_failure of { path : string; reason : string }
      (** a disk operation failed (e.g. ENOSPC, unwritable directory);
          typed, never a raw [Sys_error] *)
  | Gc_unsafe of string
      (** the live set could not be verified, so nothing was collected *)

val pp_error : Format.formatter -> error -> unit

(** [open_dir dir] opens (creating if needed) a repository directory.
    All disk I/O goes through [vfs] (default {!Vfs.real}; inject a fault
    plan to simulate crashes). Unless [recover] is [false] (read-only
    inspection), opening replays the store's write-ahead journal and
    sweeps orphan temp files — see {!recovery}. Plain handles on the
    same directory share one in-process store (see {!Store.create});
    pass [share:false] for a private handle that reads the disk cold. *)
val open_dir :
  ?vfs:Vfs.t -> ?recover:bool -> ?share:bool -> string -> (t, error) result

(** What recovery-on-open did, if anything. *)
val recovery : t -> Store.recovery_report option

(** [publish repo ~source ~patch ~update] records [update] as the next
    hop from [source]; returns the entry. *)
val publish :
  t -> source:Patchfmt.Source_tree.t -> patch:Patchfmt.Diff.t ->
  update:Update.t -> (entry, error) result

(** [publish_cumulative repo ~source ~update_id ~description] collapses
    the pending chain starting at [source] into one cumulative entry:
    the chain's patches compose into a single patch from [source] to the
    chain head, a fresh update is built from it ({!Create.create}) whose
    [supersedes] lists every chain update id oldest first (flattened
    through any cumulative chain entries), and the entry is published
    under {!cumulative_ref} — the per-update chain stays intact for
    mid-chain subscribers. Fails with [Patch_rejected] when there is
    nothing pending to collapse, [Already_published] when a cumulative
    entry for [source] already exists. *)
val publish_cumulative :
  t -> source:Patchfmt.Source_tree.t -> update_id:string ->
  description:string -> (entry, error) result

(** [pending repo ~digest] is the chain of entries starting at [digest],
    oldest first (empty when up to date). Every entry on the chain is
    digest-verified as it is read. *)
val pending : t -> digest:string -> (entry list, error) result

(** The cumulative entry published for source state [digest], if any
    (digest-verified like {!pending} entries). *)
val read_cumulative : t -> string -> (entry option, error) result

(** Outcome of one subscriber synchronisation. *)
type sync_report = {
  applied : string list;  (** update ids, in application order *)
  new_source : Patchfmt.Source_tree.t;  (** advanced local source *)
}

(** [sync repo mgr ~source] fetches and applies every update pending for
    the subscriber whose running kernel was built from [source]
    (possibly already patched), keeping the local source in step. When a
    cumulative entry is published at the subscriber's digest it is
    preferred — one {!Apply.apply_cumulative} hop instead of the
    per-update walk. The whole route is fetched and verified {e before}
    any update is applied, so a corrupt entry leaves the machine
    untouched; application errors stop at the first failure. *)
val sync :
  t -> Apply.t -> source:Patchfmt.Source_tree.t ->
  (sync_report, error) result

(** {2 Integrity} *)

type fsck_report = {
  store_report : Store.fsck_report;
  entries_checked : int;  (** published entries decoded end-to-end *)
  corrupt_entries : (string * string) list;
      (** (base digest, reason) for entries that failed to decode *)
}

(** Read-only integrity check: the store-level invariants (blobs
    re-digest clean, refs resolve, no orphan temp files, no unreplayed
    journal) plus a full decode of every published entry — the same
    checks [ksplice-tool fsck] runs. Never modifies the repository. *)
val fsck : t -> (fsck_report, fsck_report) result

(** {2 Distribution support}

    Digest-level views of a chain, for the fleet wire protocol: a server
    describes what a subscriber is missing without decoding updates, and
    a subscriber decides what to fetch by set difference against its own
    store — the CAS dedup that makes delta sync cheap. *)

(** One chain hop as digests: the entry blob plus the object blobs its
    serialised update interns (shared across entries of a chain). *)
type manifest_entry = {
  me_base : string;  (** source digest this entry applies to *)
  me_next : string;  (** source digest after applying it *)
  me_blob : Store.digest;  (** the KSPLREPO2 entry blob *)
  me_size : int;  (** entry blob size in bytes *)
  me_objects : (Store.digest * int) list;  (** interned objects, sized *)
}

(** [manifest repo ~digest] is the pending chain from [digest] as
    digests, oldest first. Every blob on the chain (entries and interned
    objects) is digest-verified as it is read, so a server never
    advertises bytes it cannot serve intact. *)
val manifest : t -> digest:string -> (manifest_entry list, error) result

(** [head repo ~digest] is the source digest at the end of the chain
    starting at [digest] ([digest] itself when the chain is empty). *)
val head : t -> digest:string -> (string, error) result

(** [closure raw] is the digests a blob references: a KSPLREPO2 entry or
    bare KSPL2 update reaches its interned objects; anything else is a
    leaf. Pure — a subscriber re-derives an entry's object set from the
    received bytes instead of trusting the server's manifest. *)
val closure : string -> Store.digest list

(** [blob_ref raw] is the ref name a received KSPLREPO2 entry blob
    belongs under — {!cumulative_ref} of its base when the serialised
    update inside supersedes something, {!entry_ref} otherwise; [None]
    if [raw] is not a parseable entry. Derived from the bytes alone, so
    a subscriber never trusts server metadata for ref placement. *)
val blob_ref : string -> string option

(** Mark-and-sweep garbage collection. Roots are every ref (chain
    entries and any named refs); reachability closes over each entry's
    serialised update into the object blobs it shares with other
    entries. A publish racing the sweep is protected by the store's
    transaction pinning. Refuses to collect ([Gc_unsafe]) if a blob on a
    live path is missing or corrupt. *)
val gc : t -> (Store.gc_report, error) result
