(** Hot-update distribution (§8's future work): "one could use Ksplice to
    create hot update packages for common starting kernel configurations.
    People who subscribe their systems to these updates would be able to
    transparently receive kernel hot updates."

    A repository is a directory-backed {!Store.t}: each published entry
    is a content-addressed blob, and the mutable ref
    ["entry:<base_digest>"] maps a source state to its entry. Every read
    re-digests the blob, so a truncated or bit-flipped entry surfaces as
    a clean {!Corrupt_entry} result, never a crash. The update inside an
    entry is serialised store-backed ({!Update.to_bytes_store}), so the
    entries of a chain share one physical copy of each common helper
    object. Each entry carries the update plus the source patch, so a
    subscriber can advance its local previously-patched source (needed
    both to verify the chain and to create further updates, §5.4).
    Subscribing walks the chain from the subscriber's current digest,
    applying every pending update in order — the paper's "without any
    ongoing effort from users" flow. *)

type t

(** The artifact store holding this repository's entries and objects. *)
val store : t -> Store.t

(** An update published against a particular source state. *)
type entry = {
  base_digest : string;  (** digest of the source this applies to *)
  next_digest : string;  (** digest after applying the patch *)
  patch_text : string;  (** unified diff *)
  update : Update.t;
}

type error =
  | Not_a_directory of string
  | Already_published of string
      (** an entry for this source digest already exists (linear chains
          only) *)
  | Patch_rejected of string
      (** the patch does not apply to the published source *)
  | Corrupt_entry of { digest : string; reason : string }
      (** the entry for [digest] failed the re-digest check or does not
          parse *)
  | Chain_cycle of string
  | Update_apply_failed of { update_id : string; reason : string }
  | Source_patch_failed of { update_id : string; reason : string }
  | Io_failure of { path : string; reason : string }
      (** a disk operation failed (e.g. ENOSPC, unwritable directory);
          typed, never a raw [Sys_error] *)
  | Gc_unsafe of string
      (** the live set could not be verified, so nothing was collected *)

val pp_error : Format.formatter -> error -> unit

(** [open_dir dir] opens (creating if needed) a repository directory.
    All disk I/O goes through [vfs] (default {!Vfs.real}; inject a fault
    plan to simulate crashes). Unless [recover] is [false] (read-only
    inspection), opening replays the store's write-ahead journal and
    sweeps orphan temp files — see {!recovery}. *)
val open_dir : ?vfs:Vfs.t -> ?recover:bool -> string -> (t, error) result

(** What recovery-on-open did, if anything. *)
val recovery : t -> Store.recovery_report option

(** [publish repo ~source ~patch ~update] records [update] as the next
    hop from [source]; returns the entry. *)
val publish :
  t -> source:Patchfmt.Source_tree.t -> patch:Patchfmt.Diff.t ->
  update:Update.t -> (entry, error) result

(** [pending repo ~digest] is the chain of entries starting at [digest],
    oldest first (empty when up to date). Every entry on the chain is
    digest-verified as it is read. *)
val pending : t -> digest:string -> (entry list, error) result

(** Outcome of one subscriber synchronisation. *)
type sync_report = {
  applied : string list;  (** update ids, in application order *)
  new_source : Patchfmt.Source_tree.t;  (** advanced local source *)
}

(** [sync repo mgr ~source] fetches and applies every update pending for
    the subscriber whose running kernel was built from [source]
    (possibly already patched), keeping the local source in step. The
    whole chain is fetched and verified {e before} any update is applied,
    so a corrupt entry leaves the machine untouched; application errors
    stop at the first failure. *)
val sync :
  t -> Apply.t -> source:Patchfmt.Source_tree.t ->
  (sync_report, error) result

(** {2 Integrity} *)

type fsck_report = {
  store_report : Store.fsck_report;
  entries_checked : int;  (** published entries decoded end-to-end *)
  corrupt_entries : (string * string) list;
      (** (base digest, reason) for entries that failed to decode *)
}

(** Read-only integrity check: the store-level invariants (blobs
    re-digest clean, refs resolve, no orphan temp files, no unreplayed
    journal) plus a full decode of every published entry — the same
    checks [ksplice-tool fsck] runs. Never modifies the repository. *)
val fsck : t -> (fsck_report, fsck_report) result

(** Mark-and-sweep garbage collection. Roots are every ref (chain
    entries and any named refs); reachability closes over each entry's
    serialised update into the object blobs it shares with other
    entries. A publish racing the sweep is protected by the store's
    transaction pinning. Refuses to collect ([Gc_unsafe]) if a blob on a
    live path is missing or corrupt. *)
val gc : t -> (Store.gc_report, error) result
