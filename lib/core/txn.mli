(** Undo journal for the apply pipeline (§5.2's "a failed ksplice-apply
    leaves the kernel unchanged", made mechanical).

    [Apply.apply] is decomposed into the named {!step}s below. A
    transaction opened with {!begin_} observes every machine-memory
    mutation (via [Machine.set_write_observer]) and snapshots the
    machine's volatile state (threads, kallsyms, allocator cursors, …).
    On failure, {!rollback} replays the journal in reverse and restores
    the volatile snapshot: the kernel is byte-identical to the pre-apply
    image — verifiable with [Machine.diff_snapshot].

    On success, {!commit} detaches the observer and returns the retained
    journal: the subset of entries written by the apply {e machinery}
    (module bytes, trampolines) as opposed to hook execution or
    scheduler progress. [ksplice-undo] later {!replay}s that journal to
    restore the image byte-identically, leaving reverse hooks to unwind
    semantic state. *)

(** The journaled apply steps, in pipeline order. *)
type step =
  | Allocate  (** reserve module memory *)
  | Link  (** run-pre matching, symbol resolution, relocation math *)
  | Relocate  (** write + verify module bytes, publish symbols *)
  | Hook_pre  (** ksplice_pre_apply hooks *)
  | Capture  (** first stop_machine rendezvous *)
  | Transition
      (** per-thread transition: dispatch stubs live, threads migrating
          at safe points (only entered by a per-thread engagement) *)
  | Quiesce  (** §5.2 stack/IP check with backoff retries *)
  | Trampoline  (** jump insertion + ksplice_apply hooks *)
  | Commit  (** ksplice_post_apply hooks, record the update *)

(** All steps in pipeline order. *)
val all_steps : step list

val step_name : step -> string
val step_of_name : string -> step option

(** Who performed a journaled write. [Mech] — the apply machinery itself;
    [Hook] — update-supplied code run via [call_function]; [Sched] — real
    kernel execution during quiescence-retry scheduling. Only [Mech]
    entries survive {!commit} (hook effects are unwound by reverse hooks,
    scheduler progress is genuine time). A {!rollback} replays all
    three. *)
type tag = Mech | Hook | Sched

(** A committed journal, retained in the applied-update record. *)
type journal

(** Number of retained write entries. *)
val journal_entries : journal -> int

(** The retained writes as [(addr, old_bytes)] in replay order (most
    recent first — later pairs overwrite earlier ones at shared
    addresses, exactly as {!replay} applies them). Lets a supervisor
    audit an undo: after replay, every journaled address must hold its
    pre-apply byte. *)
val journal_writes : journal -> (int * Bytes.t) list

(** Replay a committed journal (most recent write first), restoring the
    old bytes of every machinery write. Run under [stop_machine] with
    the quiescence check passed. *)
val replay : journal -> Kernel.Machine.t -> unit

(** An open transaction. *)
type t

(** Open a transaction: snapshot volatile state, arm the write
    observer. At most one transaction may be open per machine. *)
val begin_ : Kernel.Machine.t -> t

(** Mark the current pipeline step (recorded on subsequent entries and
    reported by {!current}). *)
val enter : t -> step -> unit

val current : t -> step option

(** Run [f] with writes tagged [tag] (restores the previous tag). *)
val with_tag : t -> tag -> (unit -> 'a) -> 'a

(** Abort: detach the observer, clear any armed fault injectors, replay
    every journal entry in reverse, restore the volatile snapshot. The
    machine is byte-identical to its state at {!begin_}. *)
val rollback : t -> unit

(** Succeed: detach the observer and return the retained ([Mech])
    journal for a later [ksplice-undo]. *)
val commit : t -> journal

(** Discard a transaction without undoing anything (used by undo, whose
    success needs no retained journal). Detaches the observer. *)
val discard : t -> unit
