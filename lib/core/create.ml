module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Section = Objfile.Section
module Symbol = Objfile.Symbol
module Reloc = Objfile.Reloc

type request = {
  source : Tree.t;
  patch : Diff.t;
  update_id : string;
  description : string;
}

type error =
  | Patch_error of string
  | Build_error of string
  | No_object_changes
  | Data_semantics_changed of (string * string) list

let pp_error ppf = function
  | Patch_error m -> Format.fprintf ppf "patch does not apply: %s" m
  | Build_error m -> Format.fprintf ppf "build failed: %s" m
  | No_object_changes -> Format.fprintf ppf "patch changed no object code"
  | Data_semantics_changed l ->
    Format.fprintf ppf
      "patch changes the initial value of persistent data (%s); custom \
       update code is required"
      (String.concat ", "
         (List.map (fun (u, d) -> Printf.sprintf "%s:%s" u d) l))

type created = {
  update : Update.t;
  diffs : Prepost.unit_diff list;
}

let is_source path =
  Filename.check_suffix path ".c" || Filename.check_suffix path ".s"

let empty_obj unit_name = Objfile.make ~unit_name ~sections:[] ~symbols:[]

(* --- incremental differencing through the artifact store ---

   Pre and post unit objects are interned by digest; a unit whose pre and
   post objects are byte-identical needs no differencing at all, and a
   (pre, post) pair already differenced in this store resolves from the
   cached diff. Either way the expensive section-by-section comparison is
   skipped — counted below and mirrored as the
   [store.create.skipped_units] trace counter. *)

let skipped = Atomic.make 0
let skipped_units () = Atomic.get skipped
let reset_creation_stats () = Atomic.set skipped 0

module Diff_codec = Store.Typed (struct
  type v = Prepost.unit_diff

  let codec_id = "unit-diff/1"

  let put_str b s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s

  let put_list b l =
    put_str b (string_of_int (List.length l));
    List.iter (put_str b) l

  let encode (d : Prepost.unit_diff) =
    let b = Buffer.create 256 in
    put_str b d.unit_name;
    put_list b d.changed_functions;
    put_list b d.new_functions;
    put_list b d.removed_functions;
    put_list b d.changed_data;
    put_list b d.new_data;
    Buffer.contents b

  let decode s =
    let pos = ref 0 in
    let fail m = failwith (Printf.sprintf "%s at byte %d" m !pos) in
    let get_str () =
      match String.index_from_opt s !pos ':' with
      | None -> fail "missing length prefix"
      | Some colon ->
        let len =
          match int_of_string_opt (String.sub s !pos (colon - !pos)) with
          | Some n when n >= 0 -> n
          | _ -> fail "bad length prefix"
        in
        if colon + 1 + len > String.length s then fail "truncated field";
        pos := colon + 1 + len;
        String.sub s (colon + 1) len
    in
    let get_list () =
      match int_of_string_opt (get_str ()) with
      | Some n when n >= 0 -> List.init n (fun _ -> get_str ())
      | _ -> fail "bad list length"
    in
    match
      let unit_name = get_str () in
      let changed_functions = get_list () in
      let new_functions = get_list () in
      let removed_functions = get_list () in
      let changed_data = get_list () in
      let new_data = get_list () in
      ({ unit_name; changed_functions; new_functions; removed_functions;
         changed_data; new_data }
        : Prepost.unit_diff)
    with
    | d -> Ok d
    | exception Failure m -> Error m
end)

let empty_diff unit_name : Prepost.unit_diff =
  { unit_name; changed_functions = []; new_functions = [];
    removed_functions = []; changed_data = []; new_data = [] }

let diff_unit_incremental store ~unit_name ~(pre : Objfile.t)
    ~(post : Objfile.t) =
  let pre_d = Store.put store (Bytes.to_string (Objfile.to_bytes pre)) in
  let post_d = Store.put store (Bytes.to_string (Objfile.to_bytes post)) in
  if String.equal pre_d post_d then begin
    Atomic.incr skipped;
    Trace.count "store.create.skipped_units" 1;
    empty_diff unit_name
  end
  else begin
    let key = "unitdiff:" ^ pre_d ^ ":" ^ post_d in
    match Diff_codec.lookup store key with
    | Some d ->
      Atomic.incr skipped;
      Trace.count "store.create.skipped_units" 1;
      d
    | None ->
      let d = Prepost.diff_unit ~pre ~post in
      ignore (Diff_codec.remember store ~key d : Store.digest);
      d
  end

(* Sections of [post] to carry in the primary for one unit. *)
let included_sections (post : Objfile.t) (d : Prepost.unit_diff) =
  List.filter
    (fun (s : Section.t) ->
      match s.kind with
      | Section.Text -> (
        match Prepost.fname_of_section s with
        | Some f ->
          List.mem f d.changed_functions || List.mem f d.new_functions
        | None -> false)
      | Section.Data | Section.Bss -> (
        match Prepost.dataname_of_section s with
        | Some n -> List.mem n d.new_data
        | None -> false)
      | Section.Rodata ->
        (* copies of read-only data are safe and keep the replacement
           code's string references working *)
        d.changed_functions <> [] || d.new_functions <> []
      | Section.Note -> String.starts_with ~prefix:".ksplice." s.name)
    post.sections

(* name -> binding of the first defined symbol bearing it, so [rename]
   below is O(1) per relocation instead of a scan of the unit's symbols *)
let binding_table (o : Objfile.t) =
  let tbl = Hashtbl.create (List.length o.symbols) in
  List.iter
    (fun (sym : Symbol.t) ->
      if Symbol.is_defined sym && not (Hashtbl.mem tbl sym.name) then
        Hashtbl.add tbl sym.name sym.binding)
    o.symbols;
  tbl

(* canonical hook-function names planted in the primary's
   [.ksplice.<kind>@unit] Note sections, in section order: how the
   update records its shadow-variable constructors and destructors as
   plain data (the object-level view of the [ksplice_shadow_ctor]/
   [ksplice_shadow_dtor] registrations) *)
let hook_fn_names sections kind =
  let prefix = Minic.Ast.hook_section kind in
  List.concat_map
    (fun (s : Section.t) ->
      if s.kind = Section.Note && String.starts_with ~prefix s.name then
        List.map (fun (r : Reloc.t) -> r.sym) s.relocs
      else [])
    sections

let create ?(build_options = Minic.Driver.pre_build) ?domains ?store
    ?(supersedes = []) req =
  let store = match store with Some s -> s | None -> Store.default () in
  Trace.with_span "create"
    ~fields:[ ("update", Trace.Str req.update_id) ]
  @@ fun () ->
  match Diff.apply req.patch req.source with
  | Error m -> Error (Patch_error m)
  | Ok post_tree -> (
    match
      (* pre before post, sequentially: the post build then recompiles
         only patched units, everything else hits the compile cache *)
      match Kbuild.build_tree ?domains ~options:build_options req.source with
      | Error e -> Error e
      | Ok pre_build -> (
        match Kbuild.build_tree ?domains ~options:build_options post_tree with
        | Error e -> Error e
        | Ok post_build -> Ok (pre_build, post_build))
    with
    | Error e -> Error (Build_error (Format.asprintf "%a" Kbuild.pp_error e))
    | Ok (pre_build, post_build) ->
      let patched_units =
        Diff.changed_files req.patch |> List.filter is_source
      in
      (* workers may land on pool domains whose span context is empty;
         re-enter the caller's context so per-unit spans keep the
         "create" span as parent across Parallel.map *)
      let ctx = Trace.context () in
      let diffs =
        Parallel.map ?domains
          (fun unit_name ->
            Trace.with_context ctx @@ fun () ->
            Trace.with_span "create.unit"
              ~fields:[ ("unit", Trace.Str unit_name) ]
            @@ fun () ->
            let pre =
              match Kbuild.find_unit pre_build unit_name with
              | Some u -> u.obj
              | None -> empty_obj unit_name
            in
            let post =
              match Kbuild.find_unit post_build unit_name with
              | Some u -> u.obj
              | None -> empty_obj unit_name
            in
            diff_unit_incremental store ~unit_name ~pre ~post)
          patched_units
      in
      if List.for_all Prepost.is_empty diffs then Error No_object_changes
      else begin
        (* assemble the primary object *)
        let prim_sections = ref [] in
        let prim_symbols = ref [] in
        let sym_units = ref [] in
        let replaced = ref [] in
        let has_hooks = ref false in
        List.iter2
          (fun unit_name d ->
            match Kbuild.find_unit post_build unit_name with
            | None -> ()
            | Some u ->
              let post = u.obj in
              let included = included_sections post d in
              let included_names =
                List.map (fun (s : Section.t) -> s.name) included
              in
              (* every local symbol of the unit is canonicalised, whether
                 its definition is included (it will be defined by the
                 primary) or not (run-pre inference will resolve it) *)
              let bindings = binding_table post in
              let rename name =
                let binding =
                  match Hashtbl.find_opt bindings name with
                  | Some b -> b
                  | None -> Symbol.Global
                in
                Update.canonical ~binding ~unit_name name
              in
              List.iter
                (fun (s : Section.t) ->
                  if String.starts_with ~prefix:".ksplice." s.name then
                    has_hooks := true;
                  let s' =
                    { s with
                      name = s.name ^ "@" ^ unit_name;
                      relocs =
                        List.map
                          (fun (r : Reloc.t) -> { r with sym = rename r.sym })
                          s.relocs }
                  in
                  prim_sections := s' :: !prim_sections)
                included;
              List.iter
                (fun (sym : Symbol.t) ->
                  match sym.def with
                  | Some def when List.mem def.section included_names ->
                    let name' = rename sym.name in
                    prim_symbols :=
                      { sym with
                        name = name';
                        def =
                          Some
                            { def with
                              section = def.section ^ "@" ^ unit_name } }
                      :: !prim_symbols;
                    sym_units := (name', unit_name) :: !sym_units
                  | _ -> ())
                post.symbols;
              List.iter
                (fun f -> replaced := (unit_name, rename f) :: !replaced)
                d.changed_functions)
          patched_units diffs;
        (* data-semantics gate: changed init of existing data needs custom
           code *)
        let data_changes =
          List.concat_map
            (fun (d : Prepost.unit_diff) ->
              List.map (fun n -> (d.unit_name, n)) d.changed_data)
            diffs
        in
        if data_changes <> [] && not !has_hooks then
          Error (Data_semantics_changed data_changes)
        else begin
          let primary =
            Objfile.make ~unit_name:("ksplice-" ^ req.update_id)
              ~sections:(List.rev !prim_sections)
              ~symbols:(List.rev !prim_symbols)
          in
          (* undefined references, to be resolved at apply time *)
          let undef =
            Objfile.undefined_symbols primary
            |> List.map (fun n -> Symbol.make ~name:n None)
          in
          let primary = { primary with symbols = primary.symbols @ undef } in
          let helpers =
            List.filter_map
              (fun unit_name ->
                Option.map
                  (fun (u : Kbuild.unit_build) -> u.obj)
                  (Kbuild.find_unit pre_build unit_name))
              patched_units
          in
          let update =
            {
              Update.update_id = req.update_id;
              description = req.description;
              patched_units;
              replaced_functions = List.rev !replaced;
              primary;
              helpers;
              primary_sym_units = List.rev !sym_units;
              supersedes;
              shadow_ctors =
                hook_fn_names primary.sections Minic.Ast.Hook_shadow_ctor;
              shadow_dtors =
                hook_fn_names primary.sections Minic.Ast.Hook_shadow_dtor;
            }
          in
          Ok { update; diffs }
        end
      end)
