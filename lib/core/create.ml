module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Section = Objfile.Section
module Symbol = Objfile.Symbol
module Reloc = Objfile.Reloc

type request = {
  source : Tree.t;
  patch : Diff.t;
  update_id : string;
  description : string;
}

type error =
  | Patch_error of string
  | Build_error of string
  | No_object_changes
  | Data_semantics_changed of (string * string) list

let pp_error ppf = function
  | Patch_error m -> Format.fprintf ppf "patch does not apply: %s" m
  | Build_error m -> Format.fprintf ppf "build failed: %s" m
  | No_object_changes -> Format.fprintf ppf "patch changed no object code"
  | Data_semantics_changed l ->
    Format.fprintf ppf
      "patch changes the initial value of persistent data (%s); custom \
       update code is required"
      (String.concat ", "
         (List.map (fun (u, d) -> Printf.sprintf "%s:%s" u d) l))

type provenance = {
  p_unit : string;
  p_patch : Diff.stats;
  p_hunks : int;
  p_shipped : (string * Prepost.reason) list;
}

type created = {
  update : Update.t;
  diffs : Prepost.unit_diff list;
  provenance : provenance list;
}

let shipped_symbols c =
  List.concat_map
    (fun p -> List.map (fun (s, r) -> (s, (p.p_unit, r))) p.p_shipped)
    c.provenance

let is_source path =
  Filename.check_suffix path ".c" || Filename.check_suffix path ".s"

let empty_obj unit_name = Objfile.make ~unit_name ~sections:[] ~symbols:[]

(* --- incremental differencing through the artifact store ---

   Pre and post unit objects are interned by digest; a unit whose pre and
   post objects are byte-identical needs no differencing at all, and a
   (pre, post) pair already differenced in this store resolves from the
   cached diff. Either way the expensive four-pass comparison is skipped
   — counted below and mirrored as the [store.create.skipped_units]
   trace counter. *)

let skipped = Atomic.make 0
let skipped_units () = Atomic.get skipped
let reset_creation_stats () = Atomic.set skipped 0

(* The per-symbol [unit-diff/2] codec. The wire format (and its typed,
   total decoder) lives in {!Prepost}; a blob written by the retired
   [unit-diff/1] codec fails the magic check, so on an old store every
   lookup is a plain cache miss, never an error. *)
module Diff_codec = Store.Typed (struct
  type v = Prepost.unit_diff

  let codec_id = "unit-diff/2"
  let encode = Prepost.encode

  let decode s =
    match Prepost.decode s with
    | Ok d -> Ok d
    | Error e -> Error (Format.asprintf "%a" Prepost.pp_decode_error e)
end)

let diff_unit_incremental store ~unit_name ~(pre : Objfile.t)
    ~(post : Objfile.t) =
  let pre_d = Store.put store (Bytes.to_string (Objfile.to_bytes pre)) in
  let post_d = Store.put store (Bytes.to_string (Objfile.to_bytes post)) in
  if String.equal pre_d post_d then begin
    Atomic.incr skipped;
    Trace.count "store.create.skipped_units" 1;
    Prepost.empty unit_name
  end
  else begin
    let key = "unitdiff:" ^ pre_d ^ ":" ^ post_d in
    match Diff_codec.lookup store key with
    | Some d ->
      Atomic.incr skipped;
      Trace.count "store.create.skipped_units" 1;
      d
    | None ->
      let d = Prepost.diff_unit ~pre ~post in
      ignore (Diff_codec.remember store ~key d : Store.digest);
      d
  end

(* name -> binding of the first defined symbol bearing it, so [rename]
   below is O(1) per relocation instead of a scan of the unit's symbols *)
let binding_table (o : Objfile.t) =
  let tbl = Hashtbl.create (List.length o.symbols) in
  List.iter
    (fun (sym : Symbol.t) ->
      if Symbol.is_defined sym && not (Hashtbl.mem tbl sym.name) then
        Hashtbl.add tbl sym.name sym.binding)
    o.symbols;
  tbl

(* --- carving: which post sections and symbols ship ---

   Minimal mode ships exactly the diff's inclusion set: whole sections
   for functions and data (one symbol each), per-symbol slices cut out
   of the shared [.rodata.str] for read-only data, plus the [.ksplice.*]
   note sections. Whole-unit mode — the measurable baseline the bench
   and minimality sweep compare against — ships every text section, the
   whole read-only pool, and new data, kpatch's "just ship the object"
   alternative. *)

(* a shipped uncorrelated temp keeps its post identity but must not
   collide with a pre-side temp name of the same unit (run-pre inference
   resolves pre names against the unpatched kernel), so it ships under a
   [.post]-suffixed alias *)
let alias_of (d : Prepost.unit_diff) name =
  match List.assoc_opt name d.renames with
  | Some pre_name -> pre_name
  | None ->
    if Diffobj.is_temp name && List.mem name d.changed_rodata then
      name ^ ".post"
    else name

let note_sections (post : Objfile.t) =
  List.filter
    (fun (s : Section.t) ->
      s.kind = Section.Note && String.starts_with ~prefix:".ksplice." s.name)
    post.sections

(* (section, defining symbols) pairs to ship, post names, in a stable
   order; rodata slices become their own single-symbol sections *)
let carve_minimal (post : Objfile.t) (d : Prepost.unit_diff) =
  let out = ref [] in
  let shipped_sections = Hashtbl.create 8 in
  List.iter
    (fun (name, _reason) ->
      match Objfile.find_symbol post name with
      | None -> ()
      | Some sym -> (
        match sym.def with
        | None -> ()
        | Some def -> (
          match Objfile.find_section post def.section with
          | None -> ()
          | Some sec ->
            if sec.kind = Section.Rodata then begin
              match Diffobj.slice_of post sym with
              | None -> ()
              | Some sl ->
                let alias = alias_of d name in
                let s' =
                  Section.make ~name:(".rodata." ^ alias)
                    ~kind:Section.Rodata ~align:sec.align
                    (Diffobj.slice_bytes sl) (Diffobj.slice_relocs sl)
                in
                let sym' =
                  { sym with def = Some { section = s'.name; value = 0 } }
                in
                out := (s', [ sym' ]) :: !out
            end
            else if not (Hashtbl.mem shipped_sections sec.name) then begin
              Hashtbl.add shipped_sections sec.name ();
              out := (sec, Objfile.defined_symbols_in post sec.name) :: !out
            end)))
    d.inclusion;
  List.iter (fun s -> out := (s, []) :: !out) (note_sections post);
  List.rev !out

let carve_whole (post : Objfile.t) (d : Prepost.unit_diff) =
  let ship (s : Section.t) =
    match s.kind with
    | Section.Text | Section.Rodata -> true
    | Section.Data | Section.Bss -> (
      match Prepost.dataname_of_section s with
      | Some n -> List.mem n d.new_data
      | None -> false)
    | Section.Note -> String.starts_with ~prefix:".ksplice." s.name
  in
  List.filter_map
    (fun (s : Section.t) ->
      if ship s then Some (s, Objfile.defined_symbols_in post s.name)
      else None)
    post.sections

(* --- helper minimisation ---

   A helper exists to (a) anchor and §4.2-verify every replaced
   function, (b) let run-pre inference resolve the primary's undefined
   unit-local symbols from relocation holes in matched pre code, and
   (c) pin ambiguously-named local functions through a referencing
   function that matches first. Everything else in the pre object is
   dead weight that costs candidate trials, so the minimal helper keeps
   only those text sections (and the full symbol table, which carries
   the bindings and sizes matching needs). *)

let text_anchor (o : Objfile.t) (s : Section.t) =
  if s.kind <> Section.Text then None
  else
    List.find_opt
      (fun (sym : Symbol.t) ->
        match sym.def with
        | Some d -> String.equal d.section s.name && d.value = 0
        | None -> false)
      o.symbols

let minimal_helper ~multi_defined (pre : Objfile.t) ~replaced_raw
    ~needed_locals =
  let texts =
    List.filter (fun (s : Section.t) -> s.kind = Section.Text) pre.sections
  in
  let kept = Hashtbl.create 8 in
  let keep (s : Section.t) = Hashtbl.replace kept s.name () in
  let is_kept (s : Section.t) = Hashtbl.mem kept s.name in
  let refs name (s : Section.t) =
    List.exists (fun (r : Reloc.t) -> String.equal r.sym name) s.relocs
  in
  let anchor_name s =
    Option.map (fun (a : Symbol.t) -> a.name) (text_anchor pre s)
  in
  (* (a) replaced functions *)
  List.iter
    (fun s ->
      match anchor_name s with
      | Some f when List.mem f replaced_raw -> keep s
      | _ -> ())
    texts;
  (* (b) inference providers: one referencing section per needed local,
     preferring sections already kept; a local function nothing
     references still anchors itself *)
  List.iter
    (fun l ->
      let covered =
        List.exists (fun s -> is_kept s && refs l s) texts
        || List.exists (fun s -> is_kept s && anchor_name s = Some l) texts
      in
      if not covered then
        match List.find_opt (refs l) texts with
        | Some s -> keep s
        | None -> (
          match
            List.find_opt (fun s -> anchor_name s = Some l) texts
          with
          | Some s -> keep s
          | None -> ()))
    needed_locals;
  (* (c) disambiguators: a kept local whose raw name is defined in
     several units needs a kept referencer whose match pins its address
     through inference before its own candidates are tried *)
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun s ->
        if is_kept s then
          match text_anchor pre s with
          | Some a when a.binding = Symbol.Local && multi_defined a.name ->
            let pinned =
              List.exists
                (fun s' ->
                  is_kept s'
                  && not (String.equal s'.Section.name s.Section.name)
                  && refs a.name s')
                texts
            in
            if not pinned then (
              match
                List.find_opt
                  (fun s' ->
                    (not (is_kept s'))
                    && not (String.equal s'.Section.name s.Section.name)
                    && refs a.name s')
                  texts
              with
              | Some s' ->
                keep s';
                progress := true
              | None -> ())
          | _ -> ())
      texts
  done;
  { pre with sections = List.filter is_kept pre.sections }

(* canonical hook-function names planted in the primary's
   [.ksplice.<kind>@unit] Note sections, in section order: how the
   update records its shadow-variable constructors and destructors as
   plain data (the object-level view of the [ksplice_shadow_ctor]/
   [ksplice_shadow_dtor] registrations) *)
let hook_fn_names sections kind =
  let prefix = Minic.Ast.hook_section kind in
  List.concat_map
    (fun (s : Section.t) ->
      if s.kind = Section.Note && String.starts_with ~prefix s.name then
        List.map (fun (r : Reloc.t) -> r.sym) s.relocs
      else [])
    sections

let create ?(build_options = Minic.Driver.pre_build) ?domains
    ?(minimal = true) ?store ?(supersedes = []) req =
  let store = match store with Some s -> s | None -> Store.default () in
  Trace.with_span "create"
    ~fields:[ ("update", Trace.Str req.update_id) ]
  @@ fun () ->
  match Diff.apply req.patch req.source with
  | Error m -> Error (Patch_error m)
  | Ok post_tree -> (
    match
      (* pre before post, sequentially: the post build then recompiles
         only patched units, everything else hits the compile cache *)
      match Kbuild.build_tree ?domains ~options:build_options req.source with
      | Error e -> Error e
      | Ok pre_build -> (
        match Kbuild.build_tree ?domains ~options:build_options post_tree with
        | Error e -> Error e
        | Ok post_build -> Ok (pre_build, post_build))
    with
    | Error e -> Error (Build_error (Format.asprintf "%a" Kbuild.pp_error e))
    | Ok (pre_build, post_build) ->
      let patched_units =
        Diff.changed_files req.patch |> List.filter is_source
      in
      (* workers may land on pool domains whose span context is empty;
         re-enter the caller's context so per-unit spans keep the
         "create" span as parent across Parallel.map *)
      let ctx = Trace.context () in
      let diffs =
        Parallel.map ?domains
          (fun unit_name ->
            Trace.with_context ctx @@ fun () ->
            Trace.with_span "create.unit"
              ~fields:[ ("unit", Trace.Str unit_name) ]
            @@ fun () ->
            let pre =
              match Kbuild.find_unit pre_build unit_name with
              | Some u -> u.obj
              | None -> empty_obj unit_name
            in
            let post =
              match Kbuild.find_unit post_build unit_name with
              | Some u -> u.obj
              | None -> empty_obj unit_name
            in
            diff_unit_incremental store ~unit_name ~pre ~post)
          patched_units
      in
      if List.for_all Prepost.is_empty diffs then Error No_object_changes
      else begin
        (* how many units of the pre build define a raw Func name: the
           helper minimiser's ambiguity oracle (kallsyms will offer one
           candidate per unit) *)
        let fn_def_counts = Hashtbl.create 64 in
        List.iter
          (fun (u : Kbuild.unit_build) ->
            List.iter
              (fun (s : Section.t) ->
                match text_anchor u.obj s with
                | Some a ->
                  Hashtbl.replace fn_def_counts a.name
                    (1
                    + Option.value ~default:0
                        (Hashtbl.find_opt fn_def_counts a.name))
                | None -> ())
              u.obj.sections)
          pre_build.units;
        let multi_defined name =
          Option.value ~default:0 (Hashtbl.find_opt fn_def_counts name) > 1
        in
        (* assemble the primary object *)
        let prim_sections = ref [] in
        let prim_symbols = ref [] in
        let sym_units = ref [] in
        let replaced = ref [] in
        let shipped = ref [] in
        let has_hooks = ref false in
        List.iter2
          (fun unit_name (d : Prepost.unit_diff) ->
            match Kbuild.find_unit post_build unit_name with
            | None -> ()
            | Some u ->
              let post = u.obj in
              let carved =
                if minimal then carve_minimal post d else carve_whole post d
              in
              (* every local symbol of the unit is canonicalised, whether
                 its definition is included (it will be defined by the
                 primary) or not (run-pre inference will resolve it).
                 References to correlated temps use their pre-side names
                 — those resolve against the unpatched running kernel. *)
              let bindings = binding_table post in
              let rename name =
                let binding =
                  match Hashtbl.find_opt bindings name with
                  | Some b -> b
                  | None -> Symbol.Global
                in
                let name = if minimal then alias_of d name else name in
                Update.canonical ~binding ~unit_name name
              in
              List.iter
                (fun ((s : Section.t), (syms : Symbol.t list)) ->
                  if String.starts_with ~prefix:".ksplice." s.name then
                    has_hooks := true;
                  let s' =
                    { s with
                      name = s.name ^ "@" ^ unit_name;
                      relocs =
                        List.map
                          (fun (r : Reloc.t) -> { r with sym = rename r.sym })
                          s.relocs }
                  in
                  prim_sections := s' :: !prim_sections;
                  List.iter
                    (fun (sym : Symbol.t) ->
                      match sym.def with
                      | None -> ()
                      | Some def ->
                        let name' = rename sym.name in
                        prim_symbols :=
                          { sym with
                            name = name';
                            def =
                              Some
                                { def with
                                  section = def.section ^ "@" ^ unit_name } }
                          :: !prim_symbols;
                        sym_units := (name', unit_name) :: !sym_units)
                    syms)
                carved;
              List.iter
                (fun f -> replaced := (unit_name, rename f) :: !replaced)
                d.changed_functions;
              (* per-symbol provenance, canonical names *)
              let shipped_syms =
                if minimal then
                  List.map (fun (n, r) -> (rename n, r)) d.inclusion
                else
                  List.concat_map
                    (fun ((_ : Section.t), syms) ->
                      List.map
                        (fun (sym : Symbol.t) ->
                          let reason =
                            match List.assoc_opt sym.name d.inclusion with
                            | Some r -> r
                            | None -> Prepost.Closure_of "whole-unit"
                          in
                          (rename sym.name, reason))
                        syms)
                    carved
              in
              shipped := (unit_name, shipped_syms) :: !shipped)
          patched_units diffs;
        (* data-semantics gate: changed init of existing data needs custom
           code; the diff names the exact symbol, not just its section *)
        let data_changes =
          List.concat_map
            (fun (d : Prepost.unit_diff) ->
              List.map (fun n -> (d.unit_name, n)) d.changed_data)
            diffs
        in
        if data_changes <> [] && not !has_hooks then
          Error (Data_semantics_changed data_changes)
        else begin
          let primary =
            Objfile.make ~unit_name:("ksplice-" ^ req.update_id)
              ~sections:(List.rev !prim_sections)
              ~symbols:(List.rev !prim_symbols)
          in
          (* undefined references, to be resolved at apply time *)
          let undef_names = Objfile.undefined_symbols primary in
          let undef =
            List.map (fun n -> Symbol.make ~name:n None) undef_names
          in
          let primary = { primary with symbols = primary.symbols @ undef } in
          (* the raw unit-local names run-pre inference must supply, per
             unit: these drive which pre functions the minimal helper
             keeps as inference providers *)
          let needed_locals_of unit_name =
            List.filter_map
              (fun n ->
                match Update.split_canonical n with
                | raw, Some u when String.equal u unit_name -> Some raw
                | _ -> None)
              undef_names
          in
          let helpers =
            List.filter_map
              (fun (unit_name, (d : Prepost.unit_diff)) ->
                match Kbuild.find_unit pre_build unit_name with
                | None -> None
                | Some (u : Kbuild.unit_build) ->
                  if not minimal then Some u.obj
                  else if Prepost.is_empty d then None
                  else
                    let replaced_raw = d.changed_functions in
                    Some
                      (minimal_helper ~multi_defined u.obj ~replaced_raw
                         ~needed_locals:(needed_locals_of unit_name)))
              (List.combine patched_units diffs)
          in
          let update =
            {
              Update.update_id = req.update_id;
              description = req.description;
              patched_units;
              replaced_functions = List.rev !replaced;
              primary;
              helpers;
              primary_sym_units = List.rev !sym_units;
              supersedes;
              shadow_ctors =
                hook_fn_names primary.sections Minic.Ast.Hook_shadow_ctor;
              shadow_dtors =
                hook_fn_names primary.sections Minic.Ast.Hook_shadow_dtor;
            }
          in
          let provenance =
            List.map
              (fun unit_name ->
                {
                  p_unit = unit_name;
                  p_patch = Diff.file_stats req.patch unit_name;
                  p_hunks = Diff.file_hunks req.patch unit_name;
                  p_shipped =
                    (match List.assoc_opt unit_name !shipped with
                     | Some l -> l
                     | None -> []);
                })
              patched_units
          in
          Ok { update; diffs; provenance }
        end
      end)
