module Machine = Kernel.Machine
module Image = Klink.Image

let src = Logs.Src.create "ksplice.apply" ~doc:"Ksplice apply/undo"

module Log = (val Logs.src_log src : Logs.LOG)
module Modlink = Klink.Modlink
module Symbol = Objfile.Symbol
module Section = Objfile.Section
module Isa = Vmisa.Isa
module Ast = Minic.Ast

type replacement = {
  r_unit : string;
  r_fn : string;
  r_old_addr : int;
  r_new_addr : int;
  r_old_size : int;
  r_new_size : int;
}

type applied = {
  update : Update.t;
  replacements : replacement list;
  saved : (int * Bytes.t) list;
  module_ranges : (int * int) list;
  module_image : (int * Bytes.t) list;
  added_symbols : Image.syminfo list;
  priv_ranges : (int * int) list;
  journal : Txn.journal;
  pause_ns : int;
  (* the stack entries a cumulative apply atomically replaced, most
     recent first ([] for an ordinary update): undoing the cumulative
     replays its journal — which revives the displaced trampolines and
     modules byte-for-byte — and hands this stack back *)
  displaced : applied list;
  (* the shadow table as the collapse found it ([] for an ordinary
     update): the unwind detached these bindings via the displaced
     updates' destructors, so undoing the cumulative re-attaches them —
     their shadow memory still holds the collapse-time values *)
  displaced_shadows : ((int * int) * int) list;
}

type not_quiescent = {
  nq_functions : string list;
  nq_attempts : int;
  nq_steps_run : int;
  nq_blockers : (string * string list) list;
}

type error =
  | Code_mismatch of Runpre.mismatch
  | Ambiguous_symbol of string * string * int
  | Unresolved_symbol of string
  | Not_quiescent of not_quiescent
  | Deadline_exceeded of { de_budget : int; de_diag : not_quiescent }
  | Function_too_small of string
  | Hook_fault of string * Machine.fault
  | Out_of_memory of string
  | Already_applied of string
  | Not_applied of string
  | Not_topmost of string
  | Integrity of string

let pp_error ppf = function
  | Code_mismatch m ->
    Format.fprintf ppf
      "run-pre mismatch in %s %s at pre+%#x / run %#x: %s" m.unit_name
      m.section m.pre_off m.run_addr m.reason
  | Ambiguous_symbol (u, s, n) ->
    if n = 0 then
      Format.fprintf ppf "no matching code found for %s (%s)" s u
    else Format.fprintf ppf "symbol %s (%s) matches %d candidates" s u n
  | Unresolved_symbol s -> Format.fprintf ppf "unresolved symbol %s" s
  | Not_quiescent nq ->
    Format.fprintf ppf
      "functions in use after %d attempts (%d backoff steps): %s"
      nq.nq_attempts nq.nq_steps_run
      (String.concat ", " nq.nq_functions);
    List.iter
      (fun (who, bt) ->
        Format.fprintf ppf "@\n  blocked by %s: %s" who
          (String.concat " <- " bt))
      nq.nq_blockers
  | Deadline_exceeded { de_budget; de_diag } ->
    Format.fprintf ppf
      "deadline of %d steps exceeded after %d attempts (%d backoff \
       steps); functions still in use: %s"
      de_budget de_diag.nq_attempts de_diag.nq_steps_run
      (String.concat ", " de_diag.nq_functions);
    List.iter
      (fun (who, bt) ->
        Format.fprintf ppf "@\n  blocked by %s: %s" who
          (String.concat " <- " bt))
      de_diag.nq_blockers
  | Function_too_small f ->
    Format.fprintf ppf "function %s is too small for a jump trampoline" f
  | Hook_fault (h, f) ->
    Format.fprintf ppf "hook %s faulted: %a" h Machine.pp_fault f
  | Out_of_memory m -> Format.fprintf ppf "out of module memory: %s" m
  | Already_applied id -> Format.fprintf ppf "update %s already applied" id
  | Not_applied id -> Format.fprintf ppf "update %s is not applied" id
  | Not_topmost id ->
    Format.fprintf ppf "update %s is not the most recent update" id
  | Integrity m -> Format.fprintf ppf "integrity check failed: %s" m

type t = {
  m : Machine.t;
  mutable stack : applied list;  (* most recent first *)
}

let init m = { m; stack = [] }
let machine t = t.m
let applied t = t.stack

(* --- helpers --- *)

let jump_size = 5

(* For a function already redirected by applied updates: the latest
   replacement's code address (what the next pre code must match against)
   and the original entry address (the function's enduring symbol value,
   start of the trampoline chain). *)
let already_redirected t (unit_name, raw_fn) =
  let recs =
    List.filter_map
      (fun a ->
        List.find_map
          (fun r ->
            let name, _ = Update.split_canonical r.r_fn in
            if String.equal r.r_unit unit_name && String.equal name raw_fn
            then Some r
            else None)
          a.replacements)
      t.stack (* most recent first *)
  in
  match recs with
  | [] -> None
  | latest :: _ ->
    let oldest = List.nth recs (List.length recs - 1) in
    Some (latest.r_new_addr, oldest.r_old_addr)

let func_candidates t name =
  Machine.lookup_name t.m name
  |> List.filter_map (fun (s : Image.syminfo) ->
       if s.kind = `Func then Some s.addr else None)

let unique_global t name =
  match
    Machine.lookup_name t.m name
    |> List.filter (fun (s : Image.syminfo) -> s.binding = Symbol.Global)
  with
  | [ s ] -> Some s.addr
  | _ -> None

let helper_symbol_size (update : Update.t) unit_name raw_fn =
  List.find_map
    (fun (h : Objfile.t) ->
      if String.equal h.unit_name unit_name then
        List.find_map
          (fun (s : Symbol.t) ->
            if String.equal s.name raw_fn && Symbol.is_defined s then
              Some s.size
            else None)
          h.symbols
      else None)
    update.helpers

(* conservative §5.2 check: does [th] execute in or hold a return into
   [ranges]? *)
let thread_blocks m ranges (th : Machine.thread) =
  let in_ranges v = List.exists (fun (lo, hi) -> v >= lo && v < hi) ranges in
  match th.state with
  | Machine.Exited _ | Machine.Faulted _ -> false
  | Machine.Runnable | Machine.Sleeping _ ->
    in_ranges th.pc
    ||
    let sp = Int32.to_int th.regs.(8) in
    let blocked = ref false in
    let a = ref sp in
    while (not !blocked) && !a + 4 <= th.stack_hi do
      let w = Int32.to_int (Machine.read_i32 m !a) in
      if in_ranges w then blocked := true;
      a := !a + 4
    done;
    !blocked

let quiescent m ranges =
  List.for_all (fun th -> not (thread_blocks m ranges th)) (Machine.threads m)

(* the threads still holding [ranges], with backtraces — the §5.2
   diagnostic ("which thread still sits in the function I want to patch,
   and where was it called from?") *)
let blocking_threads m ranges =
  List.filter_map
    (fun (th : Machine.thread) ->
      if thread_blocks m ranges th then
        Some
          (Printf.sprintf "thread %d (%s)" th.tid th.name,
           Machine.backtrace m th)
      else None)
    (Machine.threads m)

(* bounded exponential backoff: before attempt n+1 the scheduler drains
   min(cap, base * 2^n) instructions, within a total step budget *)
let backoff_steps ~retry_base ~retry_cap n =
  min retry_cap (retry_base * (1 lsl min n 20))

let default_max_attempts = 10
let default_retry_base = 250
let default_retry_cap = 4000
let default_retry_budget = 20_000

(* hook sections of the primary: (kind, reloc syms in order) *)
let hook_syms (primary : Objfile.t) kind =
  let prefix = Ast.hook_section kind in
  List.concat_map
    (fun (s : Section.t) ->
      let matches =
        String.starts_with ~prefix s.name && s.kind = Section.Note
      in
      if matches then
        List.map (fun (r : Objfile.Reloc.t) -> r.sym) s.relocs
      else [])
    primary.sections

exception Fail of error

(* --- engagement: how trampolines land ---

   The capture/quiesce/trampoline phase is pluggable. The default
   engagement is the paper's §5.2 stop_machine loop; a per-thread
   engagement ([Manager.Transition.engage]) installs dispatch stubs and
   migrates threads at safe points instead, demoting stop_machine to a
   straggler fallback. The engagement receives everything it needs to
   drive the phase and must call [e_install] exactly once on success. *)

type engagement = {
  e_machine : Machine.t;
  e_update : string;
  e_direction : [ `Apply | `Undo ];
  e_functions : string list;  (* names, for quiescence diagnostics *)
  e_dispatch : (int * int) list;
      (* (patched entry, replacement entry) dispatch stubs *)
  e_route_migrated : bool;
      (* apply: migrated threads are routed to the replacement;
         undo: unmigrated threads are (the entry holds the other side) *)
  e_guard_ranges : (int * int) list;
      (* a thread must be clear of these to migrate (and for the
         stop_machine fallback to fire) *)
  e_enter : Txn.step -> unit;  (* advance the transaction step marker *)
  e_sched : (unit -> unit) -> unit;
      (* run scheduler work with its writes journaled as [Txn.Sched] *)
  e_prepare : unit -> unit;
      (* make the fall-through side executable (undo restores the saved
         entry bytes); a no-op for apply *)
  e_install : unit -> unit;
      (* land the end state: apply writes the permanent jumps and runs
         the apply hooks; undo replays the journal and runs the reverse
         hooks *)
}

(* An engagement reports failure by raising with a pipeline error (for
   example [Not_quiescent] when even the fallback cannot converge); the
   transaction rolls back as for any other step failure. *)
exception Engage_failed of error

type engage_fn = engagement -> int

let run_named_hooks t ~resolve names =
  List.iter
    (fun sym ->
      match resolve sym with
      | None -> raise (Fail (Unresolved_symbol sym))
      | Some addr -> (
        match Machine.call_function t.m ~addr ~args:[] with
        | Ok _ -> ()
        | Error f -> raise (Fail (Hook_fault (sym, f)))))
    names

let run_hooks t ~resolve (update : Update.t) kind =
  run_named_hooks t ~resolve (hook_syms update.primary kind)

(* The apply pipeline body — duplicate check through the engagement and
   commit hooks. Runs inside [txn], which the caller begins, commits and
   rolls back; [enter] advances the step marker (and notifies any armed
   fault-injection session). Returns a constructor for the [applied]
   record, deferred so the caller can commit the transaction and supply
   the resulting journal (for a cumulative apply, that journal also
   covers the unwinding of the displaced stack). Raises [Fail]. *)
let apply_pipeline ~txn ~enter ~tolerance ~max_attempts ~retry_base
    ~retry_cap ~retry_budget ~deadline ~inject ~engage t (update : Update.t) =
  begin
    if List.exists (fun a -> a.update.Update.update_id = update.update_id)
         t.stack
    then raise (Fail (Already_applied update.update_id));
    (match Machine.transition_update t.m with
     | Some id ->
       raise (Fail (Integrity ("a transition is already in flight for " ^ id)))
     | None -> ());
    Log.info (fun k ->
        k "applying update %s (%d replaced functions, %d helpers)"
          update.update_id
          (List.length update.replaced_functions)
          (List.length update.helpers));
    (* === allocate: reserve module memory === *)
    enter Txn.Allocate;
    let alloc ~size ~align = Machine.alloc_module t.m ~size ~align in
    let m0d = Modlink.layout ~alloc update.primary in
    (* === link: run-pre matching, symbol resolution, relocation math === *)
    enter Txn.Link;
    let inference = Runpre.create_inference () in
    let anchors = ref [] in
    List.iter
      (fun helper ->
        match
          Runpre.match_helper ~tolerance
            ~read_run:(fun a -> Machine.read_u8 t.m a)
            ~candidates:(func_candidates t)
            ~already:(already_redirected t)
            ~inference helper
        with
        | l ->
          Log.debug (fun k ->
              k "run-pre matched %s: %d functions located"
                helper.Objfile.unit_name (List.length l));
          List.iter
            (fun (cname, addr) ->
              anchors := ((helper.Objfile.unit_name, cname), addr) :: !anchors)
            l
        | exception Runpre.Mismatch m -> raise (Fail (Code_mismatch m))
        | exception Runpre.Ambiguous { unit_name; symbol; matches } ->
          raise (Fail (Ambiguous_symbol (unit_name, symbol, matches))))
      update.helpers;
    let resolve name =
      match Modlink.symbol_addr m0d name with
      | Some a -> Some a
      | None -> (
        match Hashtbl.find_opt inference name with
        | Some a -> Some a
        | None ->
          let raw, _ = Update.split_canonical name in
          unique_global t raw)
    in
    let link_resolve =
      match inject with
      | Some i -> Faultinj.sabotage_resolve i resolve
      | None -> resolve
    in
    let writes =
      match Modlink.relocate m0d ~resolve:link_resolve with
      | Ok writes -> writes
      | Error e ->
        raise
          (Fail (Unresolved_symbol (Format.asprintf "%a" Modlink.pp_error e)))
    in
    let module_ranges =
      List.map
        (fun (p : Modlink.placed) -> (p.addr, p.addr + p.section.size))
        m0d.placed
    in
    (* the replacement plan *)
    let replacements =
      List.map
        (fun (unit_name, cfn) ->
          let raw, _ = Update.split_canonical cfn in
          let old_addr =
            match List.assoc_opt (unit_name, cfn) !anchors with
            | Some a -> a
            | None -> raise (Fail (Unresolved_symbol cfn))
          in
          let new_addr =
            match Modlink.symbol_addr m0d cfn with
            | Some a -> a
            | None -> raise (Fail (Unresolved_symbol cfn))
          in
          let old_size =
            match helper_symbol_size update unit_name raw with
            | Some s when s > 0 -> s
            | _ -> jump_size
          in
          let new_size =
            match
              List.find_opt
                (fun (s : Symbol.t) ->
                  String.equal s.name cfn && Symbol.is_defined s)
                update.primary.symbols
            with
            | Some s -> max s.size jump_size
            | None -> jump_size
          in
          if old_size < jump_size then raise (Fail (Function_too_small cfn));
          Log.debug (fun k ->
              k "replace %s: %#x (%d bytes) -> %#x" cfn old_addr old_size
                new_addr);
          { r_unit = unit_name; r_fn = cfn; r_old_addr = old_addr;
            r_new_addr = new_addr; r_old_size = old_size;
            r_new_size = new_size })
        update.replaced_functions
    in
    (* === relocate: land the module bytes === *)
    enter Txn.Relocate;
    List.iter (fun (addr, bytes) -> Machine.write_bytes t.m addr bytes) writes;
    (* read-back verification: a corrupted replacement must never go
       live — every relocated byte is compared against what was meant *)
    List.iter
      (fun (addr, bytes) ->
        let got = Machine.read_bytes t.m addr (Bytes.length bytes) in
        if not (Bytes.equal got bytes) then
          raise
            (Fail
               (Integrity
                  (Printf.sprintf
                     "relocated bytes at %#x did not verify after writing"
                     addr))))
      writes;
    (* replacement code must be allowed to use privileged escapes *)
    let priv_ranges =
      List.filter_map
        (fun (p : Modlink.placed) ->
          if p.section.kind = Section.Text then
            Some (p.addr, p.addr + p.section.size)
          else None)
        m0d.placed
    in
    List.iter (Machine.add_privileged_range t.m) priv_ranges;
    (* module symbols join kallsyms (like insmod) *)
    let added_symbols =
      List.filter_map
        (fun (name, addr) ->
          let raw, _ = Update.split_canonical name in
          let unit_name =
            Option.value ~default:update.primary.unit_name
              (List.assoc_opt name update.primary_sym_units)
          in
          let sym =
            List.find_opt
              (fun (s : Symbol.t) ->
                String.equal s.name name && Symbol.is_defined s)
              update.primary.symbols
          in
          match sym with
          | Some s ->
            Some
              { Image.name = raw; addr; size = s.size; binding = s.binding;
                kind = s.kind; unit_name }
          | None -> None)
        m0d.own_symbols
    in
    Machine.add_kallsyms t.m added_symbols;
    (* === hook-pre === *)
    enter Txn.Hook_pre;
    Txn.with_tag txn Txn.Hook (fun () ->
        run_hooks t ~resolve update Ast.Hook_pre_apply);
    (* === capture, quiesce, trampoline === *)
    enter Txn.Capture;
    let guard_ranges =
      List.map (fun r -> (r.r_old_addr, r.r_old_addr + r.r_old_size))
        replacements
    in
    let saved = ref [] in
    let insert () =
      List.iter
        (fun r ->
          let orig = Machine.read_bytes t.m r.r_old_addr jump_size in
          saved := (r.r_old_addr, orig) :: !saved;
          let disp = r.r_new_addr - (r.r_old_addr + jump_size) in
          let buf = Bytes.create jump_size in
          ignore (Isa.encode buf 0 (Isa.Jmp (Int32.of_int disp)) : int);
          Machine.write_bytes t.m r.r_old_addr buf)
        replacements;
      Trace.count "apply.trampolines" (List.length replacements);
      Txn.with_tag txn Txn.Hook (fun () ->
          run_hooks t ~resolve update Ast.Hook_apply;
          (* shadow constructors run the moment the replacement code goes
             live, so no thread observes new code without its side-table
             state (§5.3) *)
          run_named_hooks t ~resolve update.shadow_ctors)
    in
    let veto () =
      match inject with
      | Some i -> Faultinj.veto_quiescence i
      | None -> false
    in
    let rec attempt n spent =
      let (ok : bool), pause_ns =
        Machine.stop_machine t.m (fun () ->
            enter Txn.Quiesce;
            if quiescent t.m guard_ranges && not (veto ()) then begin
              enter Txn.Trampoline;
              insert ();
              true
            end
            else false)
      in
      if ok then pause_ns
      else begin
        let diag () =
          let blockers = blocking_threads t.m guard_ranges in
          List.iter
            (fun (who, bt) ->
              Log.info (fun k ->
                  k "quiescence blocked by %s: %s" who
                    (String.concat " <- " bt)))
            blockers;
          { nq_functions = List.map (fun r -> r.r_fn) replacements;
            nq_attempts = n + 1; nq_steps_run = spent;
            nq_blockers = blockers }
        in
        (* watchdog: the per-apply step budget dominates every other
           retry bound — blowing it is a distinct, non-negotiable abort *)
        let remaining =
          match deadline with Some d -> d - spent | None -> max_int
        in
        if remaining <= 0 then
          raise
            (Fail
               (Deadline_exceeded
                  { de_budget = Option.get deadline; de_diag = diag () }));
        let delay =
          min
            (min (backoff_steps ~retry_base ~retry_cap n)
               (retry_budget - spent))
            remaining
        in
        if n + 1 >= max_attempts || delay <= 0 then
          raise (Fail (Not_quiescent (diag ())))
        else begin
          (* exponential backoff: let the scheduler drain the functions *)
          Trace.count "apply.quiescence_retries" 1;
          Log.debug (fun k ->
              k "quiescence attempt %d failed; backing off %d steps" n
                delay);
          Txn.with_tag txn Txn.Sched (fun () ->
              ignore (Machine.run t.m ~steps:delay : int));
          attempt (n + 1) (spent + delay)
        end
      end
    in
    let pause_ns =
      match engage with
      | None -> attempt 0 0
      | Some f -> (
        let eng =
          { e_machine = t.m;
            e_update = update.update_id;
            e_direction = `Apply;
            e_functions = List.map (fun r -> r.r_fn) replacements;
            e_dispatch =
              List.map (fun r -> (r.r_old_addr, r.r_new_addr)) replacements;
            e_route_migrated = true;
            e_guard_ranges = guard_ranges;
            e_enter = enter;
            e_sched = (fun g -> Txn.with_tag txn Txn.Sched g);
            e_prepare = (fun () -> ());
            e_install = insert }
        in
        try f eng with Engage_failed e -> raise (Fail e))
    in
    (* === commit === *)
    enter Txn.Commit;
    Txn.with_tag txn Txn.Hook (fun () ->
        run_hooks t ~resolve update Ast.Hook_post_apply);
    Trace.observe "apply.pause_ns" (float_of_int pause_ns);
    fun ~journal ~displaced ~displaced_shadows ->
      { update; replacements; saved = List.rev !saved; module_ranges;
        module_image = writes; added_symbols; priv_ranges; journal;
        pause_ns; displaced; displaced_shadows }
  end

(* Shared transaction scaffolding for [apply] and [apply_cumulative]:
   one trace span per transaction step (siblings under the caller's
   span; the current one closes when the next step opens or on exit),
   with any armed fault-injection session notified at step boundaries. *)
let with_apply_txn ~span_prefix ~inject t f =
  let txn = Txn.begin_ t.m in
  let step_span = ref None in
  let close_step () =
    match !step_span with
    | Some sp ->
      Trace.end_span sp;
      step_span := None
    | None -> ()
  in
  let enter s =
    close_step ();
    step_span := Some (Trace.begin_span (span_prefix ^ ".step." ^ Txn.step_name s));
    Txn.enter txn s;
    match inject with
    | None -> ()
    | Some i ->
      (* a Sched_perturb injection runs real kernel code at the step
         boundary; its writes are scheduler progress, not machinery *)
      Txn.with_tag txn Txn.Sched (fun () -> Faultinj.on_step i s)
  in
  let finish_inject () =
    match inject with None -> () | Some i -> Faultinj.disarm i
  in
  f ~txn ~enter ~close_step ~finish_inject

let apply ?(tolerance = Runpre.full_tolerance)
    ?(max_attempts = default_max_attempts)
    ?(retry_base = default_retry_base) ?(retry_cap = default_retry_cap)
    ?(retry_budget = default_retry_budget) ?deadline ?inject ?engage t
    (update : Update.t) =
  Trace.with_span "apply" ~fields:[ ("update", Trace.Str update.update_id) ]
  @@ fun () ->
  with_apply_txn ~span_prefix:"apply" ~inject t
  @@ fun ~txn ~enter ~close_step ~finish_inject ->
  try
    let mk =
      apply_pipeline ~txn ~enter ~tolerance ~max_attempts ~retry_base
        ~retry_cap ~retry_budget ~deadline ~inject ~engage t update
    in
    let journal = Txn.commit txn in
    close_step ();
    finish_inject ();
    let a = mk ~journal ~displaced:[] ~displaced_shadows:[] in
    t.stack <- a :: t.stack;
    Log.info (fun k ->
        k "update %s applied (simulated pause %d ns; %d journal entries)"
          update.update_id a.pause_ns (Txn.journal_entries journal));
    Ok a
  with
  | Fail e ->
    close_step ();
    Txn.rollback txn;
    finish_inject ();
    Log.warn (fun k -> k "apply %s failed: %a" update.update_id pp_error e);
    Error e
  | Machine.Out_of_memory msg ->
    close_step ();
    Txn.rollback txn;
    finish_inject ();
    let e = Out_of_memory msg in
    Log.warn (fun k -> k "apply %s failed: %a" update.update_id pp_error e);
    Error e

(* Unwind the topmost applied update inside [txn] (which the caller
   owns): reverse hooks and shadow destructors run, quiescence is
   checked on the replacement code, the apply journal replays (restoring
   trampoline sites {e and} module bytes), and the update's kallsyms and
   privilege ranges are removed. A cumulative entry additionally hands
   back the stack it displaced — the journal replay just revived those
   trampolines and modules byte-for-byte, so nothing is re-applied, only
   bookkeeping returns. Raises [Fail]. *)
let unwind_top ~txn ~max_attempts ~retry_base ~retry_cap ~retry_budget
    ~deadline ~engage t =
  match t.stack with
  | [] -> raise (Fail (Not_applied "(empty stack)"))
  | top :: rest ->
       let update_id = top.update.Update.update_id in
       (* resolution for reverse hooks: the module is loaded, so its own
          symbols are in kallsyms *)
       let resolve name =
         let raw, _ = Update.split_canonical name in
         let entries = Machine.lookup_name t.m raw in
         (* prefer symbols this update added *)
         match
           List.find_opt
             (fun (s : Image.syminfo) ->
               List.exists
                 (fun (a : Image.syminfo) -> a.addr = s.addr)
                 top.added_symbols)
             entries
         with
         | Some s -> Some s.addr
         | None -> (
           match entries with [ s ] -> Some s.addr | _ -> None)
       in
       Txn.with_tag txn Txn.Hook (fun () ->
           run_hooks t ~resolve top.update Ast.Hook_pre_reverse);
       let guard_ranges =
         List.map (fun r -> (r.r_new_addr, r.r_new_addr + r.r_new_size))
           top.replacements
       in
       let install () =
         (* shadow destructors first (reverse registration order), while
            the replacement code and its side-table state are still
            live; then replay the apply journal — trampolines out first,
            then module bytes — so the image returns to its pre-apply
            contents byte for byte *)
         Txn.with_tag txn Txn.Hook (fun () ->
             run_named_hooks t ~resolve
               (List.rev top.update.Update.shadow_dtors));
         Txn.replay top.journal t.m;
         Txn.with_tag txn Txn.Hook (fun () ->
             run_hooks t ~resolve top.update Ast.Hook_reverse)
       in
       let rec attempt n spent =
         let ok, _pause =
           Machine.stop_machine t.m (fun () ->
               if quiescent t.m guard_ranges then begin
                 install ();
                 true
               end
               else false)
         in
         if ok then ()
         else begin
           let diag () =
             { nq_functions =
                 List.map (fun r -> r.r_fn) top.replacements;
               nq_attempts = n + 1; nq_steps_run = spent;
               nq_blockers = blocking_threads t.m guard_ranges }
           in
           let remaining =
             match deadline with Some d -> d - spent | None -> max_int
           in
           if remaining <= 0 then
             raise
               (Fail
                  (Deadline_exceeded
                     { de_budget = Option.get deadline;
                       de_diag = diag () }));
           let delay =
             min
               (min (backoff_steps ~retry_base ~retry_cap n)
                  (retry_budget - spent))
               remaining
           in
           if n + 1 >= max_attempts || delay <= 0 then
             raise (Fail (Not_quiescent (diag ())))
           else begin
             Trace.count "undo.quiescence_retries" 1;
             Txn.with_tag txn Txn.Sched (fun () ->
                 ignore (Machine.run t.m ~steps:delay : int));
             attempt (n + 1) (spent + delay)
           end
         end
       in
       (match engage with
        | None -> attempt 0 0
        | Some f ->
          let eng =
            { e_machine = t.m;
              e_update = update_id;
              e_direction = `Undo;
              e_functions = List.map (fun r -> r.r_fn) top.replacements;
              e_dispatch =
                List.map (fun r -> (r.r_old_addr, r.r_new_addr))
                  top.replacements;
              (* reverse transition: the entry regains its original
                 bytes, so unmigrated threads must be routed to the
                 still-live new code while migrated ones fall through *)
              e_route_migrated = false;
              e_guard_ranges = guard_ranges;
              e_enter = (fun s -> Txn.enter txn s);
              e_sched = (fun g -> Txn.with_tag txn Txn.Sched g);
              e_prepare =
                (fun () ->
                  List.iter
                    (fun (addr, bytes) -> Machine.write_bytes t.m addr bytes)
                    top.saved);
              e_install = install }
          in
          (try ignore (f eng : int)
           with Engage_failed e -> raise (Fail e)));
       Txn.with_tag txn Txn.Hook (fun () ->
           run_hooks t ~resolve top.update Ast.Hook_post_reverse);
       Machine.remove_kallsyms t.m (fun s ->
           List.exists
             (fun (a : Image.syminfo) ->
               a.addr = s.addr && String.equal a.name s.name)
             top.added_symbols);
       List.iter (Machine.remove_privileged_range t.m) top.priv_ranges;
       (* a cumulative entry returns the stack it displaced: the journal
          replay restored their trampolines and modules, so their
          kallsyms and privilege ranges need republishing, and their
          shadow bindings — detached by the displaced updates' own
          destructors during the collapse — re-attached. The shadow
          memory itself was never replayed away (module memory is leaked
          on undo), so the revived bindings still hold the collapse-time
          values; runtime value changes made while the cumulative
          reigned are its constructors' business, not ours. *)
       List.iter
         (fun d ->
           Machine.add_kallsyms t.m d.added_symbols;
           List.iter (Machine.add_privileged_range t.m) d.priv_ranges)
         (List.rev top.displaced);
       List.iter
         (fun ((obj, key), addr) ->
           Machine.shadow_reattach t.m ~obj ~key ~addr)
         top.displaced_shadows;
       t.stack <- top.displaced @ rest

let undo ?(max_attempts = default_max_attempts)
    ?(retry_base = default_retry_base) ?(retry_cap = default_retry_cap)
    ?(retry_budget = default_retry_budget) ?deadline ?engage t update_id =
  Trace.with_span "undo" ~fields:[ ("update", Trace.Str update_id) ]
  @@ fun () ->
  (* undo is transactional too: a faulted reverse hook or quiescence
     failure leaves the update applied and the kernel untouched *)
  let txn = Txn.begin_ t.m in
  try
    (match Machine.transition_update t.m with
     | Some id ->
       raise (Fail (Integrity ("a transition is already in flight for " ^ id)))
     | None -> ());
    (match t.stack with
     | [] -> raise (Fail (Not_applied update_id))
     | top :: rest ->
       if not (String.equal top.update.Update.update_id update_id) then
         if
           List.exists
             (fun a -> String.equal a.update.Update.update_id update_id)
             rest
         then raise (Fail (Not_topmost update_id))
         else raise (Fail (Not_applied update_id)));
    unwind_top ~txn ~max_attempts ~retry_base ~retry_cap ~retry_budget
      ~deadline ~engage t;
    Txn.discard txn;
    Ok ()
  with
  | Fail e ->
    Txn.rollback txn;
    Error e
  | Machine.Out_of_memory msg ->
    Txn.rollback txn;
    Error (Out_of_memory msg)

(* --- atomic replace (§5 cumulative updates) ---

   One transaction: the whole applied stack unwinds (newest first, each
   entry's journal replayed so its trampolines and module bytes vanish
   byte-for-byte) and the cumulative replacement set installs against
   the then-pristine kernel. A fault at {e any} step — a reverse hook, a
   quiescence failure mid-unwind, a run-pre mismatch or injected fault
   during the install — rolls the single journal back, leaving the
   stacked configuration byte-identical to before the collapse. The
   committed result is exactly what undoing every update and applying
   the cumulative one-by-one would have produced (the sweep asserts
   footprint equality against that twin), but with no intermediate state
   ever observable. *)
let apply_cumulative ?(tolerance = Runpre.full_tolerance)
    ?(max_attempts = default_max_attempts)
    ?(retry_base = default_retry_base) ?(retry_cap = default_retry_cap)
    ?(retry_budget = default_retry_budget) ?deadline ?inject ?engage t
    (update : Update.t) =
  Trace.with_span "apply_cumulative"
    ~fields:[ ("update", Trace.Str update.update_id) ]
  @@ fun () ->
  with_apply_txn ~span_prefix:"apply_cumulative" ~inject t
  @@ fun ~txn ~enter ~close_step ~finish_inject ->
  let saved_stack = t.stack in
  try
    if not (Update.is_cumulative update) then
      raise
        (Fail
           (Integrity
              (update.update_id
              ^ " is not cumulative (supersedes nothing); use apply")));
    (match Machine.transition_update t.m with
     | Some id ->
       raise (Fail (Integrity ("a transition is already in flight for " ^ id)))
     | None -> ());
    let in_supersedes a =
      List.mem a.update.Update.update_id update.supersedes
    in
    (* the superseded updates must form the contiguous top of the stack
       (they are what this cumulative replaces; anything deeper is part
       of the base it was built against and stays untouched). A fresh
       machine with an empty stack qualifies trivially — the cumulative
       update then simply installs. *)
    let rec split_top acc = function
      | a :: rest when in_supersedes a -> split_top (a :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let to_unwind, remaining = split_top [] t.stack in
    if List.exists in_supersedes remaining then
      raise
        (Fail
           (Integrity
              (Printf.sprintf
                 "cumulative %s supersedes updates buried beneath ones it \
                  does not supersede (stack: [%s])"
                 update.update_id
                 (String.concat "; "
                    (List.rev_map
                       (fun a -> a.update.Update.update_id)
                       t.stack)))));
    (* the superseded segment must appear in chain order *)
    let rec subseq xs ys =
      match (xs, ys) with
      | [], _ -> true
      | _ :: _, [] -> false
      | x :: xs', y :: ys' ->
        if String.equal x y then subseq xs' ys' else subseq xs ys'
    in
    if
      not
        (subseq
           (List.rev_map (fun a -> a.update.Update.update_id) to_unwind)
           update.supersedes)
    then
      raise
        (Fail
           (Integrity
              (Printf.sprintf
                 "cumulative %s supersedes [%s] but the applied stack \
                  holds them in a different order"
                 update.update_id
                 (String.concat "; " update.supersedes))));
    Log.info (fun k ->
        k "atomic replace: %s superseding %d stacked update(s)"
          update.update_id (List.length to_unwind));
    (* the shadow table as the collapse finds it: the unwind below runs
       the displaced updates' destructors, and undoing this cumulative
       must revive the bindings they detach *)
    let pre_shadows = Machine.shadow_bindings t.m in
    (* unwind the superseded segment, newest first; a displaced
       cumulative hands its own displaced stack back mid-loop, which —
       being superseded too (publishers flatten) — this loop then
       unwinds as well *)
    while
      match t.stack with a :: _ -> in_supersedes a | [] -> false
    do
      unwind_top ~txn ~max_attempts ~retry_base ~retry_cap ~retry_budget
        ~deadline ~engage t
    done;
    let mk =
      apply_pipeline ~txn ~enter ~tolerance ~max_attempts ~retry_base
        ~retry_cap ~retry_budget ~deadline ~inject ~engage t update
    in
    let journal = Txn.commit txn in
    close_step ();
    finish_inject ();
    (* [displaced] is the pre-collapse top segment as it stood: undoing
       the cumulative update replays this whole journal, which revives
       exactly that state *)
    let a = mk ~journal ~displaced:to_unwind ~displaced_shadows:pre_shadows in
    t.stack <- a :: remaining;
    Trace.count "apply.cumulative" 1;
    Log.info (fun k ->
        k "cumulative %s applied atomically (%d journal entries)"
          update.update_id (Txn.journal_entries journal));
    Ok a
  with
  | Fail e ->
    close_step ();
    Txn.rollback txn;
    finish_inject ();
    t.stack <- saved_stack;
    Log.warn (fun k ->
        k "atomic replace %s failed: %a" update.update_id pp_error e);
    Error e
  | Machine.Out_of_memory msg ->
    close_step ();
    Txn.rollback txn;
    finish_inject ();
    t.stack <- saved_stack;
    let e = Out_of_memory msg in
    Log.warn (fun k ->
        k "atomic replace %s failed: %a" update.update_id pp_error e);
    Error e

(* [verify] audits the applied stack: the topmost replacement of every
   function owns the jump at the code location it patched, and module
   bytes are unmodified. Note sections and bss (zero-filled at load) can
   legitimately change at runtime (new static data is mutable!), so only
   text sections are byte-compared. *)
let verify t =
  let check_replacement (r : replacement) =
    let b = Machine.read_bytes t.m r.r_old_addr jump_size in
    match Isa.decode_bytes b 0 with
    | Isa.Jmp disp, len when r.r_old_addr + len + Int32.to_int disp
                             = r.r_new_addr ->
      Ok ()
    | insn, _ ->
      Error
        (Integrity
           (Printf.sprintf "%s: expected jmp to %#x at %#x, found %s"
              r.r_fn r.r_new_addr r.r_old_addr (Isa.insn_to_string insn)))
    | exception Isa.Decode_error _ ->
      Error
        (Integrity
           (Printf.sprintf "%s: undecodable bytes at %#x" r.r_fn
              r.r_old_addr))
  in
  (* windows legitimately rewritten after load: every trampoline site of
     every applied update (a later update may redirect a replacement,
     §5.4, putting its jump at the replacement's entry) *)
  let exempt =
    List.concat_map
      (fun a ->
        List.map (fun r -> (r.r_old_addr, r.r_old_addr + jump_size))
          a.replacements)
      t.stack
  in
  let exempted off = List.exists (fun (lo, hi) -> off >= lo && off < hi) exempt in
  let check_module (a : applied) =
    List.fold_left
      (fun acc (addr, bytes) ->
        Result.bind acc (fun () ->
            (* compare only ranges that are replacement text *)
            let is_text =
              List.exists
                (fun r -> r.r_new_addr >= addr
                          && r.r_new_addr < addr + Bytes.length bytes)
                a.replacements
            in
            if not is_text then Ok ()
            else begin
              let current =
                Machine.read_bytes t.m addr (Bytes.length bytes)
              in
              let damaged = ref None in
              Bytes.iteri
                (fun i c ->
                  if
                    !damaged = None
                    && (not (exempted (addr + i)))
                    && Bytes.get current i <> c
                  then damaged := Some (addr + i))
                bytes;
              match !damaged with
              | None -> Ok ()
              | Some at ->
                Error
                  (Integrity
                     (Printf.sprintf
                        "update %s: replacement code at %#x was modified"
                        a.update.Update.update_id at))
            end))
      (Ok ()) a.module_image
  in
  (* only the topmost redirect of each function owns its entry bytes *)
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc a ->
      Result.bind acc (fun () ->
          let owned =
            List.filter
              (fun r ->
                let key = (r.r_unit, r.r_fn) in
                if Hashtbl.mem seen key then false
                else begin
                  Hashtbl.replace seen key true;
                  true
                end)
              a.replacements
          in
          List.fold_left
            (fun acc r -> Result.bind acc (fun () -> check_replacement r))
            (check_module a) owned))
    (Ok ()) t.stack

(* [footprint] is the canonical description of what the applied stack
   planted in the machine: per update (oldest first) the live bytes at
   every patched entry, the replacement {e text} read back from memory
   (data sections are mutable at runtime and excluded), and the symbols
   published to kallsyms. Two machines that applied the same updates —
   by any engagement — must agree byte for byte, regardless of what
   their schedulers did meanwhile. *)
let footprint t =
  let buf = Buffer.create 256 in
  let hex b =
    Bytes.iter
      (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
      b
  in
  List.iter
    (fun a ->
      let in_text off =
        List.exists (fun (lo, hi) -> off >= lo && off < hi) a.priv_ranges
      in
      Buffer.add_string buf (a.update.Update.update_id ^ "{");
      List.iter
        (fun r ->
          Buffer.add_string buf (Printf.sprintf "%s@%#x:" r.r_fn r.r_old_addr);
          hex (Machine.read_bytes t.m r.r_old_addr jump_size);
          Buffer.add_char buf ';')
        a.replacements;
      List.iter
        (fun (addr, bytes) ->
          let current = Machine.read_bytes t.m addr (Bytes.length bytes) in
          Buffer.add_string buf (Printf.sprintf "%#x:" addr);
          Bytes.iteri
            (fun i c ->
              if in_text (addr + i) then
                Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
            current;
          Buffer.add_char buf ';')
        a.module_image;
      List.iter
        (fun (s : Image.syminfo) ->
          Buffer.add_string buf (Printf.sprintf "%s=%#x;" s.name s.addr))
        a.added_symbols;
      Buffer.add_string buf "}")
    (List.rev t.stack);
  Buffer.contents buf
