module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff

type t = {
  dir : string;
  store : Store.t;
}

let store t = t.store

(* a repository view over an existing store handle (e.g. a fleet
   subscriber's mirror, which may be memory-only): the dir is only used
   to label errors *)
let of_store store = { dir = "<store:" ^ Store.name store ^ ">"; store }

type entry = {
  base_digest : string;
  next_digest : string;
  patch_text : string;
  update : Update.t;
}

type error =
  | Not_a_directory of string
  | Already_published of string
  | Patch_rejected of string
  | Corrupt_entry of { digest : string; reason : string }
  | Chain_cycle of string
  | Update_apply_failed of { update_id : string; reason : string }
  | Source_patch_failed of { update_id : string; reason : string }
  | Io_failure of { path : string; reason : string }
  | Gc_unsafe of string

let pp_error ppf = function
  | Not_a_directory d -> Format.fprintf ppf "%s is not a directory" d
  | Already_published d ->
    Format.fprintf ppf
      "an update for source state %s is already published (chains are \
       linear)"
      d
  | Patch_rejected m ->
    Format.fprintf ppf "patch does not apply to the published source: %s" m
  | Corrupt_entry { digest; reason } ->
    Format.fprintf ppf "corrupt repository entry for source state %s: %s"
      digest reason
  | Chain_cycle d ->
    Format.fprintf ppf "repository chain contains a cycle at %s" d
  | Update_apply_failed { update_id; reason } ->
    Format.fprintf ppf "update %s failed: %s" update_id reason
  | Source_patch_failed { update_id; reason } ->
    Format.fprintf ppf
      "local source does not take the patch of update %s: %s" update_id
      reason
  | Io_failure { path; reason } ->
    Format.fprintf ppf "repository I/O failed on %s: %s" path reason
  | Gc_unsafe m ->
    Format.fprintf ppf "garbage collection refused: %s" m

let open_dir ?vfs ?(recover = true) ?share dir =
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    Error (Not_a_directory dir)
  else
    match
      Store.create ~name:"repo" ~capacity:256 ~dir ?vfs ~recover ?share ()
    with
    | s -> Ok { dir; store = s }
    | exception Invalid_argument _ -> Error (Not_a_directory dir)
    | exception Vfs.Io_error { op; path; reason } ->
      Error (Io_failure { path; reason = op ^ ": " ^ reason })

let recovery t = Store.recovery t.store

(* Entries live in the content-addressed store: the blob below is keyed
   by its own digest and the mutable ref ["entry:<base_digest>"] points
   at it — reading re-digests the blob, so truncation or bit-flips
   surface as [Corrupt_entry], never as a parse crash. The update inside
   is serialised store-backed (KSPL2), so every entry of a chain shares
   one physical copy of each common helper object. *)

let entry_magic = "KSPLREPO2"
let entry_ref digest = "entry:" ^ digest

(* a cumulative entry lives beside the per-update chain under its own
   ref: subscribers that prefer it take one hop to the chain head, while
   the per-update refs stay intact for mid-chain machines *)
let cumulative_ref digest = "cumulative:" ^ digest

let encode_entry store (e : entry) =
  let b = Buffer.create 4096 in
  let put_str s =
    Buffer.add_int32_le b (Int32.of_int (String.length s));
    Buffer.add_string b s
  in
  Buffer.add_string b entry_magic;
  put_str e.base_digest;
  put_str e.next_digest;
  put_str e.patch_text;
  put_str (Bytes.to_string (Update.to_bytes_store store e.update));
  Buffer.contents b

(* (base_digest, next_digest, patch_text, update_bytes), without
   decoding the update — shared by entry reads and the GC's
   reachability expansion *)
let parse_entry_fields raw =
  let mlen = String.length entry_magic in
  if String.length raw < mlen || String.sub raw 0 mlen <> entry_magic then
    Error "bad entry magic"
  else begin
    let pos = ref mlen in
    let get_str () =
      if !pos + 4 > String.length raw then failwith "truncated entry";
      let n = Int32.to_int (String.get_int32_le raw !pos) in
      pos := !pos + 4;
      if n < 0 || !pos + n > String.length raw then failwith "truncated entry";
      let s = String.sub raw !pos n in
      pos := !pos + n;
      s
    in
    match
      let base_digest = get_str () in
      let next_digest = get_str () in
      let patch_text = get_str () in
      let update_bytes = get_str () in
      (base_digest, next_digest, patch_text, update_bytes)
    with
    | exception Failure m -> Error m
    | fields -> Ok fields
  end

let decode_entry store ~digest raw =
  let fail reason = Error (Corrupt_entry { digest; reason }) in
  match parse_entry_fields raw with
  | Error reason -> fail reason
  | Ok (base_digest, next_digest, patch_text, update_bytes) -> (
    match Update.of_bytes_store store (Bytes.of_string update_bytes) with
    | Error e -> fail (Update.decode_error_to_string e)
    | Ok update -> Ok { base_digest; next_digest; patch_text; update })

let read_ref_entry t ~ref_name ~digest =
  match Store.find_ref t.store ref_name with
  | None -> Ok None
  | Some blob_digest -> (
    match Store.load t.store blob_digest with
    | Error `Missing ->
      Error
        (Corrupt_entry
           { digest; reason = "entry blob " ^ blob_digest ^ " is missing" })
    | Error (`Corrupt reason) -> Error (Corrupt_entry { digest; reason })
    | Ok raw ->
      decode_entry t.store ~digest raw |> Result.map Option.some)

let read_entry t digest = read_ref_entry t ~ref_name:(entry_ref digest) ~digest

let read_cumulative t digest =
  read_ref_entry t ~ref_name:(cumulative_ref digest) ~digest

(* all blob puts (entry + interned objects) happen inside the
   transaction, pinning them against a racing GC; the ref flip goes
   through the write-ahead journal, so a crash anywhere leaves the
   publish atomically present or atomically absent *)
let commit_entry t ~ref_name e =
  match
    Store.with_txn t.store (fun () ->
        let d = Store.put t.store (encode_entry t.store e) in
        Store.commit_refs t.store [ (ref_name, d) ])
  with
  | () -> Ok e
  | exception Vfs.Io_error { op; path; reason } ->
    Error (Io_failure { path; reason = op ^ ": " ^ reason })

let publish t ~source ~patch ~update =
  let base_digest = Tree.digest source in
  if Store.find_ref t.store (entry_ref base_digest) <> None then
    Error (Already_published base_digest)
  else
    match Diff.apply patch source with
    | Error m -> Error (Patch_rejected m)
    | Ok next_tree ->
      let e =
        { base_digest; next_digest = Tree.digest next_tree;
          patch_text = Diff.to_string patch; update }
      in
      commit_entry t ~ref_name:(entry_ref base_digest) e

let pending t ~digest =
  let rec walk digest acc seen =
    if List.mem digest seen then Error (Chain_cycle digest)
    else
      match read_entry t digest with
      | Error err -> Error err
      | Ok None -> Ok (List.rev acc)
      | Ok (Some e) -> walk e.next_digest (e :: acc) (digest :: seen)
  in
  walk digest [] []

(* replay a chain's patches over [source], yielding the head tree *)
let advance_source source chain =
  let rec go source = function
    | [] -> Ok source
    | e :: rest -> (
      match Diff.parse e.patch_text with
      | Error m ->
        Error
          (Corrupt_entry
             { digest = e.base_digest;
               reason = "corrupt patch in repository: " ^ m })
      | Ok patch -> (
        match Diff.apply patch source with
        | Error m ->
          Error
            (Source_patch_failed
               { update_id = e.update.Update.update_id; reason = m })
        | Ok source' -> go source' rest))
  in
  go source chain

let publish_cumulative t ~source ~update_id ~description =
  let base_digest = Tree.digest source in
  if Store.find_ref t.store (cumulative_ref base_digest) <> None then
    Error (Already_published base_digest)
  else
    match pending t ~digest:base_digest with
    | Error err -> Error err
    | Ok [] ->
      Error (Patch_rejected "no pending chain to collapse at this source")
    | Ok chain -> (
      match advance_source source chain with
      | Error err -> Error err
      | Ok head_tree -> (
        (* one composed patch spanning the whole chain, and a flattened
           supersedes list: a chain entry that is itself cumulative
           contributes the ids it replaced before its own, so the
           atomic-replace unwind loop can follow revived stacks *)
        let patch = Diff.diff_trees source head_tree in
        let supersedes =
          List.concat_map
            (fun e ->
              e.update.Update.supersedes @ [ e.update.Update.update_id ])
            chain
        in
        match
          Create.create ~store:t.store ~supersedes
            { Create.source; patch; update_id; description }
        with
        | Error ce ->
          Error
            (Patch_rejected
               (Format.asprintf "cumulative build failed: %a" Create.pp_error
                  ce))
        | Ok c ->
          let e =
            { base_digest; next_digest = Tree.digest head_tree;
              patch_text = Diff.to_string patch; update = c.Create.update }
          in
          commit_entry t ~ref_name:(cumulative_ref base_digest) e))

type sync_report = {
  applied : string list;
  new_source : Tree.t;
}

(* the hop sequence from [digest], preferring a published cumulative
   entry (one hop spanning the chain) over the per-update walk *)
let route t ~digest =
  let rec walk digest acc seen =
    if List.mem digest seen then Error (Chain_cycle digest)
    else
      match read_cumulative t digest with
      | Error err -> Error err
      | Ok (Some e) ->
        walk e.next_digest ((`Cumulative, e) :: acc) (digest :: seen)
      | Ok None -> (
        match read_entry t digest with
        | Error err -> Error err
        | Ok None -> Ok (List.rev acc)
        | Ok (Some e) ->
          walk e.next_digest ((`Entry, e) :: acc) (digest :: seen))
  in
  walk digest [] []

let sync t mgr ~source =
  (* the whole route is fetched and digest-verified before any update is
     applied: a corrupt entry anywhere leaves the machine untouched. A
     cumulative hop atomically replaces whatever stacked segment it
     supersedes (nothing, on a freshly synced machine). *)
  match route t ~digest:(Tree.digest source) with
  | Error err -> Error err
  | Ok hops ->
    let rec go source applied = function
      | [] -> Ok { applied = List.rev applied; new_source = source }
      | (kind, e) :: rest -> (
        let update_id = e.update.Update.update_id in
        let applied_res =
          match kind with
          | `Cumulative -> Apply.apply_cumulative mgr e.update
          | `Entry -> Apply.apply mgr e.update
        in
        match applied_res with
        | Error ae ->
          Error
            (Update_apply_failed
               { update_id; reason = Format.asprintf "%a" Apply.pp_error ae })
        | Ok _ -> (
          match advance_source source [ e ] with
          | Error err -> Error err
          | Ok source' -> go source' (update_id :: applied) rest))
    in
    go source [] hops

(* --- integrity: fsck and garbage collection --- *)

type fsck_report = {
  store_report : Store.fsck_report;
  entries_checked : int;
  corrupt_entries : (string * string) list;
}

let fsck t =
  let store_res = Store.fsck t.store in
  let store_report = match store_res with Ok r | Error r -> r in
  let entries = ref 0 in
  let corrupt = ref [] in
  let check prefix read rname =
    let plen = String.length prefix in
    if
      String.length rname > plen
      && String.equal (String.sub rname 0 plen) prefix
    then begin
      incr entries;
      let digest = String.sub rname plen (String.length rname - plen) in
      match read t digest with
      | Ok (Some _) -> ()
      | Ok None -> corrupt := (digest, "ref resolves to no entry") :: !corrupt
      | Error e ->
        corrupt := (digest, Format.asprintf "%a" pp_error e) :: !corrupt
    end
  in
  List.iter
    (fun (rname, _) ->
      check "entry:" read_entry rname;
      check "cumulative:" read_cumulative rname)
    (Store.refs t.store);
  let report =
    {
      store_report;
      entries_checked = !entries;
      corrupt_entries = List.rev !corrupt;
    }
  in
  if Result.is_ok store_res && report.corrupt_entries = [] then Ok report
  else Error report

(* reachability out of a blob: a repository entry reaches its serialised
   update's interned objects; a bare KSPL2 update blob reaches the same;
   anything else (helper objects themselves) is a leaf *)
let expand_blob _digest raw =
  let mlen = String.length entry_magic in
  let update_bytes =
    if String.length raw >= mlen && String.sub raw 0 mlen = entry_magic then
      match parse_entry_fields raw with
      | Ok (_, _, _, ub) -> Some ub
      | Error _ -> None
    else Some raw
  in
  match update_bytes with
  | None -> []
  | Some ub -> (
    match Update.store_digests (Bytes.of_string ub) with
    | Ok ds -> ds
    | Error _ -> [])

let gc t =
  match Store.gc ~expand:expand_blob t.store with
  | Ok r -> Ok r
  | Error m -> Error (Gc_unsafe m)

(* --- distribution support: digest-level chain manifests --- *)

let closure raw = expand_blob "" raw

(* the ref a received entry blob belongs under, derived from the bytes
   themselves (never from server metadata): an entry whose serialised
   update supersedes something is cumulative *)
let blob_ref raw =
  match parse_entry_fields raw with
  | Error _ -> None
  | Ok (base, _next, _patch, update_bytes) ->
    if Update.supersedes_of_bytes (Bytes.of_string update_bytes) <> [] then
      Some (cumulative_ref base)
    else Some (entry_ref base)

type manifest_entry = {
  me_base : string;
  me_next : string;
  me_blob : Store.digest;
  me_size : int;
  me_objects : (Store.digest * int) list;
}

let manifest t ~digest =
  let load_sized ~owner d =
    match Store.load t.store d with
    | Ok raw -> Ok raw
    | Error `Missing ->
      Error
        (Corrupt_entry
           { digest = owner; reason = "blob " ^ d ^ " is missing" })
    | Error (`Corrupt reason) ->
      Error (Corrupt_entry { digest = owner; reason })
  in
  let rec walk digest acc seen =
    if List.mem digest seen then Error (Chain_cycle digest)
    else
      (* a published cumulative entry takes precedence: the manifest
         then advertises one hop (one entry blob + its objects) instead
         of the whole per-update chain — the fleet's delta sync *)
      let hop_blob =
        match Store.find_ref t.store (cumulative_ref digest) with
        | Some d -> Some d
        | None -> Store.find_ref t.store (entry_ref digest)
      in
      match hop_blob with
      | None -> Ok (List.rev acc)
      | Some blob_digest -> (
        match load_sized ~owner:digest blob_digest with
        | Error e -> Error e
        | Ok raw -> (
          match parse_entry_fields raw with
          | Error reason -> Error (Corrupt_entry { digest; reason })
          | Ok (me_base, me_next, _patch, _ub) ->
            let rec sized acc = function
              | [] -> Ok (List.rev acc)
              | d :: rest -> (
                match load_sized ~owner:digest d with
                | Error e -> Error e
                | Ok o -> sized ((d, String.length o) :: acc) rest)
            in
            (match sized [] (expand_blob blob_digest raw) with
            | Error e -> Error e
            | Ok me_objects ->
              let e =
                { me_base; me_next; me_blob = blob_digest;
                  me_size = String.length raw; me_objects }
              in
              walk me_next (e :: acc) (digest :: seen))))
  in
  walk digest [] []

let head t ~digest =
  match manifest t ~digest with
  | Error e -> Error e
  | Ok [] -> Ok digest
  | Ok entries -> Ok (List.nth entries (List.length entries - 1)).me_next
