(** ksplice-apply / ksplice-undo (§5): loading an update into a running
    kernel, the quiescence safety check, trampoline insertion, custom-code
    hooks, and reversal.

    [apply] is a transaction over the journaled steps of {!Txn.step}:

    + {b allocate} — reserve module memory;
    + {b link} — run-pre match every helper against kernel memory
      (safety + symbol resolution, §4.2), resolve the primary's symbols
      (falling back to unique kallsyms globals), compute relocations;
    + {b relocate} — write the module bytes and read-verify them,
      publish module symbols to kallsyms;
    + {b hook-pre} — run [ksplice_pre_apply] hooks;
    + {b capture}/{b quiesce} — under [stop_machine], check that no
      thread's instruction pointer or stack return addresses fall within
      any to-be-replaced function (§5.2), retrying under bounded
      exponential backoff;
    + {b trampoline} — insert a 5-byte jump at each obsolete function's
      entry; run [ksplice_apply] hooks while the machine is stopped;
    + {b commit} — run [ksplice_post_apply] hooks, retain the journal,
      record the update.

    Every machine mutation is journaled in a {!Txn.t}; on {e any}
    failure the journal replays in reverse and the volatile snapshot is
    restored, leaving the kernel byte-identical to its pre-apply state
    (checkable with [Machine.diff_snapshot]).

    Undo is symmetric and equally transactional: guarded by the
    quiescence check on the replacement code, it replays the retained
    apply journal (restoring trampoline sites {e and} module bytes),
    runs the three reverse hooks, and unpublishes symbols and privilege
    ranges. A failed undo leaves the update applied and the kernel
    unchanged. *)

type replacement = {
  r_unit : string;
  r_fn : string;  (** canonical function name *)
  r_old_addr : int;  (** entry of the obsolete function (run kernel) *)
  r_new_addr : int;  (** entry of the replacement code (primary module) *)
  r_old_size : int;  (** pre text size: the quiescence guard range *)
  r_new_size : int;
}

type applied = {
  update : Update.t;
  replacements : replacement list;
  saved : (int * Bytes.t) list;  (** trampoline sites and original bytes *)
  module_ranges : (int * int) list;  (** placed primary sections *)
  module_image : (int * Bytes.t) list;  (** relocated bytes as written *)
  added_symbols : Klink.Image.syminfo list;
  priv_ranges : (int * int) list;
      (** privileged-text ranges this apply registered *)
  journal : Txn.journal;
      (** machinery writes retained for [ksplice-undo] *)
  pause_ns : int;  (** simulated stop_machine pause *)
  displaced : applied list;
      (** the stack entries a cumulative apply atomically replaced, most
          recent first; [[]] for an ordinary update. Undoing a cumulative
          update replays its journal — reviving the displaced trampolines
          and modules byte-for-byte — and restores this stack. *)
  displaced_shadows : ((int * int) * int) list;
      (** the shadow-variable bindings as the collapse found them ([[]]
          for an ordinary update). The unwind detaches these through the
          displaced updates' destructors, so undoing the cumulative
          update re-attaches them; the shadow memory still holds the
          collapse-time values. *)
}

(** Quiescence diagnostics: which functions stayed busy, how hard we
    tried, and who was in the way. *)
type not_quiescent = {
  nq_functions : string list;  (** functions still in use *)
  nq_attempts : int;  (** stop_machine attempts made *)
  nq_steps_run : int;  (** total backoff scheduler steps consumed *)
  nq_blockers : (string * string list) list;
      (** blocking thread ("thread <tid> (<name>)") and its backtrace *)
}

type error =
  | Code_mismatch of Runpre.mismatch
      (** run and pre code differ: the §4.2 safety abort *)
  | Ambiguous_symbol of string * string * int  (** unit, symbol, matches *)
  | Unresolved_symbol of string
  | Not_quiescent of not_quiescent
  | Deadline_exceeded of { de_budget : int; de_diag : not_quiescent }
      (** the watchdog step budget ([?deadline]) ran out before the
          update quiesced; carries the configured budget and the same
          blocker diagnostics as {!Not_quiescent} *)
  | Function_too_small of string
  | Hook_fault of string * Kernel.Machine.fault
  | Out_of_memory of string  (** module area exhausted (or injected) *)
  | Already_applied of string
  | Not_applied of string
  | Not_topmost of string  (** a later update still redirects its code *)
  | Integrity of string  (** a verification found damage *)

val pp_error : Format.formatter -> error -> unit

(** {2 Engagements: how trampolines land}

    The capture/quiesce/trampoline phase of the pipeline is pluggable.
    The default engagement is the paper's §5.2 [stop_machine] loop; a
    per-thread engagement ([Manager.Transition.engage]) instead installs
    dispatch stubs, migrates threads at safe points with the machine
    running, and demotes [stop_machine] to a bounded straggler fallback.

    An engagement receives the record below and must call [e_prepare]
    before activating any transition and [e_install] exactly once on
    success; it returns the total simulated pause in nanoseconds its
    strategy imposed on the machine (0 for a pauseless transition). It
    reports failure by raising {!Engage_failed} with a pipeline error;
    the transaction then rolls back as for any other step failure. *)

type engagement = {
  e_machine : Kernel.Machine.t;
  e_update : string;
  e_direction : [ `Apply | `Undo ];
  e_functions : string list;  (** names, for quiescence diagnostics *)
  e_dispatch : (int * int) list;
      (** (patched entry, replacement entry) dispatch stubs *)
  e_route_migrated : bool;
      (** apply: migrated threads are routed to the replacement; undo:
          unmigrated threads are (the entry holds the other side) *)
  e_guard_ranges : (int * int) list;
      (** a thread must be clear of these to migrate (and for the
          stop_machine fallback to fire) *)
  e_enter : Txn.step -> unit;  (** advance the transaction step marker *)
  e_sched : (unit -> unit) -> unit;
      (** run scheduler work with its writes journaled as [Txn.Sched] *)
  e_prepare : unit -> unit;
      (** make the fall-through side executable (undo restores the saved
          entry bytes); a no-op for apply *)
  e_install : unit -> unit;
      (** land the end state: apply writes the permanent jumps and runs
          the apply hooks; undo replays the journal and runs the reverse
          hooks *)
}

exception Engage_failed of error

type engage_fn = engagement -> int

(** {2 Quiescence primitives}

    Exposed for engagements and diagnostics: the conservative §5.2
    check over a set of guard ranges. *)

(** Does [th] execute inside [ranges], or hold a stack word pointing
    into them? Exited and faulted threads never block. *)
val thread_blocks :
  Kernel.Machine.t -> (int * int) list -> Kernel.Machine.thread -> bool

(** No live thread blocks any of [ranges]. *)
val quiescent : Kernel.Machine.t -> (int * int) list -> bool

(** The threads still holding [ranges], with backtraces. *)
val blocking_threads :
  Kernel.Machine.t -> (int * int) list -> (string * string list) list

(** The update manager: tracks applied updates on one machine (the role of
    the Ksplice core kernel module). *)
type t

val init : Kernel.Machine.t -> t
val machine : t -> Kernel.Machine.t

(** Applied updates, most recent first. *)
val applied : t -> applied list

(** [apply t update] runs the transactional pipeline above.

    Quiescence retries use bounded exponential backoff: before attempt
    [n+1] the scheduler advances [min retry_cap (retry_base * 2^n)]
    instructions (defaults 250 and 4000), within a total budget of
    [retry_budget] steps (default 20_000) and at most [max_attempts]
    attempts (default 10). On final failure the [Not_quiescent] error
    carries the attempt count, steps consumed, and the blocking threads
    with backtraces.

    [deadline] is the watchdog: a hard cap on the total scheduler steps
    the quiescence/backoff path may consume for this apply. It is
    checked before [max_attempts]/[retry_budget]; exhausting it aborts
    the transaction with {!Deadline_exceeded} and the usual
    byte-identical rollback. Unset means no deadline (the
    [retry_budget] bound still applies).

    [tolerance] selects run-pre matcher capabilities (ablation
    experiments only). [inject] threads a {!Faultinj.session} through
    the pipeline — each step boundary notifies the session so it can arm
    and disarm its machine-level fault hooks. [engage] substitutes a
    custom {!engage_fn} for the default stop_machine loop; applying (or
    undoing) while another update's transition is in flight fails with
    [Integrity]. *)
val apply :
  ?tolerance:Runpre.tolerance ->
  ?max_attempts:int ->
  ?retry_base:int ->
  ?retry_cap:int ->
  ?retry_budget:int ->
  ?deadline:int ->
  ?inject:Faultinj.session ->
  ?engage:engage_fn ->
  t -> Update.t ->
  (applied, error) result

(** [apply_cumulative t update] is {e atomic replace} (§5): [update]
    must be cumulative, and the stacked updates it supersedes must form
    the contiguous top of the applied stack, in chain order (a machine
    that stacked the whole chain collapses it; one partway up collapses
    what it has; a fresh machine with nothing applied takes the
    cumulative update directly; anything deeper than the superseded
    segment is part of the base the update was built against and stays
    untouched). In one transaction, the superseded segment unwinds
    (newest first — reverse hooks and shadow destructors run, each apply
    journal replays) and [update] then installs in its place. A fault at
    any step rolls the single journal back: the stacked configuration
    survives byte-identically, with [Integrity] errors for a
    supersedes/stack mismatch. The committed machine state is exactly
    what [undo]×k followed by [apply update] would have produced, with
    no intermediate state ever observable. Shadow constructors of
    [update] run as the replacement code goes live; on a later [undo] of
    the cumulative update, its destructors run and the displaced segment
    is restored without re-applying anything. *)
val apply_cumulative :
  ?tolerance:Runpre.tolerance ->
  ?max_attempts:int ->
  ?retry_base:int ->
  ?retry_cap:int ->
  ?retry_budget:int ->
  ?deadline:int ->
  ?inject:Faultinj.session ->
  ?engage:engage_fn ->
  t -> Update.t ->
  (applied, error) result

(** [undo t id] reverses the most recent update, which must be [id],
    transactionally (same backoff parameters as {!apply}). On success
    the kernel image is byte-identical to its pre-apply contents at the
    journaled addresses; on failure it is wholly unchanged and the
    update remains applied. With [engage], the reversal runs as a
    {e reverse transition}: the saved entry bytes come back first, then
    threads migrate to the old code at safe points while stragglers on
    the replacement are routed through dispatch stubs. *)
val undo :
  ?max_attempts:int ->
  ?retry_base:int ->
  ?retry_cap:int ->
  ?retry_budget:int ->
  ?deadline:int ->
  ?engage:engage_fn ->
  t -> string ->
  (unit, error) result

(** [verify t] audits every applied update: each replaced function's entry
    must still hold the jump to its (topmost) replacement, and the
    replacement module's bytes must be exactly as written. Run-pre
    matching checks the kernel {e before} splicing; [verify] detects
    damage {e after} — a stray memory write over a trampoline or module,
    for instance. *)
val verify : t -> (unit, error) result

(** [footprint t] is a canonical string describing what the applied
    stack planted in the machine: per update (oldest first), the live
    bytes at every patched entry, the replacement {e text} read back
    from memory (mutable data sections are excluded), and the symbols
    published to kallsyms. Two machines that applied the same updates —
    by any engagement, under any workload — must produce equal
    footprints; the transition benchmarks assert exactly that against
    the stop_machine baseline. *)
val footprint : t -> string
