module Tree = Patchfmt.Source_tree
module Diff = Patchfmt.Diff
module Image = Klink.Image
module Ast = Minic.Ast
module Section = Objfile.Section
module Symbol = Objfile.Symbol

type failure =
  | Missed_object_changes of string list
  | Inline_sites_missed of (string * string) list
  | Ambiguous_symbol of string list
  | Static_local_lost of string list
  | Assembly_file of string

let pp_failure ppf = function
  | Missed_object_changes fns ->
    Format.fprintf ppf "object code changed without a source change: %s"
      (String.concat ", " fns)
  | Inline_sites_missed sites ->
    Format.fprintf ppf "stale inlined copies left running: %s"
      (String.concat ", "
         (List.map (fun (a, b) -> Printf.sprintf "%s in %s" b a) sites))
  | Ambiguous_symbol syms ->
    Format.fprintf ppf "symbol table cannot disambiguate: %s"
      (String.concat ", " syms)
  | Static_local_lost fns ->
    Format.fprintf ppf "static local state would be lost: %s"
      (String.concat ", " fns)
  | Assembly_file f -> Format.fprintf ppf "pure assembly file: %s" f

type verdict = {
  replaced_from_source : string list;
  failures : failure list;
}

let funcs_of_source src =
  Minic.Parser.parse src
  |> List.filter_map (function
       | Ast.Tfunc ({ f_body = Some _; _ } as f) -> Some (f.f_name, f)
       | _ -> None)

(* functions whose source changed between two versions of a unit *)
let source_changed_functions pre_src post_src =
  let pre = funcs_of_source pre_src in
  let post = funcs_of_source post_src in
  List.filter_map
    (fun (name, (f : Ast.func)) ->
      match List.assoc_opt name pre with
      | Some g when g = f -> None
      | _ -> Some name (* changed or new *))
    post

let rec stmt_has_static = function
  | Ast.Sdecl d -> d.d_static
  | Ast.Sif (_, a, b) -> List.exists stmt_has_static (a @ b)
  | Ast.Swhile (_, b) | Ast.Sdowhile (b, _) | Ast.Sfor (_, _, _, b)
  | Ast.Sblock b ->
    List.exists stmt_has_static b
  | Ast.Sswitch (_, cases) ->
    List.exists
      (fun (c : Ast.switch_case) -> List.exists stmt_has_static c.sc_body)
      cases
  | _ -> false

let has_static_local (f : Ast.func) =
  match f.f_body with
  | Some body -> List.exists stmt_has_static body
  | None -> false

let is_c f = Filename.check_suffix f ".c"
let is_s f = Filename.check_suffix f ".s"

let evaluate ~source ~patch ~image =
  match Diff.apply patch source with
  | Error m -> Error ("patch does not apply: " ^ m)
  | Ok post_tree -> (
    try
      let failures = ref [] in
      let add f = failures := f :: !failures in
      let replaced = ref [] in
      (* ambiguity in the running kernel's symbol table *)
      let counts = Hashtbl.create 64 in
      List.iter
        (fun (s : Image.syminfo) ->
          if not (String.length s.name >= 2 && s.name.[0] = '.') then
            Hashtbl.replace counts s.name
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts s.name)))
        image.Image.kallsyms;
      let ambiguous_name n =
        match Hashtbl.find_opt counts n with Some k -> k > 1 | None -> false
      in
      (* inlining decisions in the running kernel *)
      let run_build =
        Kbuild.build_tree_exn ~options:Minic.Driver.run_build source
      in
      let inlined = Kbuild.inlined_callees run_build in
      let pre_build =
        Kbuild.build_tree_exn ~options:Minic.Driver.pre_build source
      in
      let post_build =
        Kbuild.build_tree_exn ~options:Minic.Driver.pre_build post_tree
      in
      List.iter
        (fun unit_name ->
          if is_s unit_name then add (Assembly_file unit_name)
          else if is_c unit_name then begin
            let pre_src =
              Option.value ~default:"" (Tree.find source unit_name)
            in
            let post_src =
              Option.value ~default:"" (Tree.find post_tree unit_name)
            in
            let changed = source_changed_functions pre_src post_src in
            replaced := !replaced @ changed;
            (* ground truth: what actually changed at the object level *)
            let obj_diff =
              match
                ( Kbuild.find_unit pre_build unit_name,
                  Kbuild.find_unit post_build unit_name )
              with
              | Some pre, Some post ->
                Prepost.diff_unit ~pre:pre.obj ~post:post.obj
              | _ ->
                Prepost.diff_unit
                  ~pre:(Objfile.make ~unit_name ~sections:[] ~symbols:[])
                  ~post:(Objfile.make ~unit_name ~sections:[] ~symbols:[])
            in
            let missed =
              List.filter
                (fun f -> not (List.mem f changed))
                (obj_diff.changed_functions @ obj_diff.new_functions)
            in
            if missed <> [] then add (Missed_object_changes missed);
            (* stale inlined copies: callee replaced, caller is not *)
            let stale =
              List.filter_map
                (fun (u, caller, callee) ->
                  if
                    String.equal u unit_name
                    && List.mem callee changed
                    && not (List.mem caller changed)
                  then Some (caller, callee)
                  else None)
                inlined
            in
            if stale <> [] then add (Inline_sites_missed stale);
            (* static locals in recompiled functions lose their storage *)
            let with_static =
              List.filter
                (fun name ->
                  match List.assoc_opt name (funcs_of_source post_src) with
                  | Some f -> has_static_local f
                  | None -> false)
                changed
            in
            if with_static <> [] then add (Static_local_lost with_static);
            (* symbol resolution by name only: any reference from the
               replacement functions to a local or ambiguous symbol *)
            (match Kbuild.find_unit post_build unit_name with
             | None -> ()
             | Some u ->
               let bad = ref [] in
               List.iter
                 (fun (s : Section.t) ->
                   match Prepost.fname_of_section s with
                   | Some f when List.mem f changed ->
                     List.iter
                       (fun (r : Objfile.Reloc.t) ->
                         let refs_new_code =
                           (* references to other replaced functions are
                              resolvable within the baseline's own module *)
                           List.mem r.sym changed
                         in
                         let compiler_internal =
                           (* string literals are recompiled into the
                              replacement; mangled static locals are
                              already counted as lost state *)
                           String.contains r.sym '.'
                         in
                         (* a unique symbol-table entry is resolvable even
                            for file statics (§4.1: the problem is names
                            appearing "more than once or not at all") *)
                         if
                           (not refs_new_code) && (not compiler_internal)
                           && ambiguous_name r.sym
                           && not (List.mem r.sym !bad)
                         then bad := r.sym :: !bad)
                       s.relocs
                   | _ -> ())
                 u.obj.sections;
               if !bad <> [] then add (Ambiguous_symbol (List.rev !bad)))
          end)
        (List.filter (fun f -> is_c f || is_s f) (Diff.changed_files patch));
      Ok { replaced_from_source = !replaced; failures = List.rev !failures }
    with
    | Minic.Parser.Error { msg; _ } -> Error ("parse: " ^ msg)
    | Minic.Lexer.Error { msg; _ } -> Error ("lex: " ^ msg)
    | Kbuild.Build_error m -> Error m)
