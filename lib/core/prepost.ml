module Section = Objfile.Section

type reason = Diffobj.reason =
  | Changed
  | New
  | Closure_of of string
  | Data_referent of string

type unit_diff = Diffobj.unit_diff = {
  unit_name : string;
  changed_functions : string list;
  new_functions : string list;
  removed_functions : string list;
  changed_data : string list;
  changed_rodata : string list;
  new_data : string list;
  renames : (string * string) list;
  inclusion : (string * reason) list;
}

let reason_to_string = Diffobj.reason_to_string
let pp_reason = Diffobj.pp_reason
let pp_unit_diff = Diffobj.pp_unit_diff
let fname_of_section = Diffobj.fname_of_section
let dataname_of_section = Diffobj.dataname_of_section
let diff_unit = Diffobj.diff_unit
let is_empty = Diffobj.is_empty

let empty unit_name =
  { unit_name; changed_functions = []; new_functions = [];
    removed_functions = []; changed_data = []; changed_rodata = [];
    new_data = []; renames = []; inclusion = [] }

(* --- the unit-diff/2 wire codec ---

   Same netstring discipline as {!Update.to_bytes}, behind a magic so a
   v1 blob (which led with a digit) can never parse: length-prefixed
   strings, counted lists, reasons as one tag byte plus an argument. *)

let magic = "UDF2"

let put_str b s =
  Buffer.add_string b (string_of_int (String.length s));
  Buffer.add_char b ':';
  Buffer.add_string b s

let put_list put b l =
  put_str b (string_of_int (List.length l));
  List.iter (put b) l

let put_reason b = function
  | Changed -> put_str b "c"
  | New -> put_str b "n"
  | Closure_of s -> put_str b ("o" ^ s)
  | Data_referent s -> put_str b ("d" ^ s)

let encode (d : unit_diff) =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  put_str b d.unit_name;
  put_list put_str b d.changed_functions;
  put_list put_str b d.new_functions;
  put_list put_str b d.removed_functions;
  put_list put_str b d.changed_data;
  put_list put_str b d.changed_rodata;
  put_list put_str b d.new_data;
  put_list
    (fun b (post, pre) ->
      put_str b post;
      put_str b pre)
    b d.renames;
  put_list
    (fun b (sym, r) ->
      put_str b sym;
      put_reason b r)
    b d.inclusion;
  Buffer.contents b

type decode_error = {
  de_off : int;
  de_reason : string;
}

let pp_decode_error ppf e =
  Format.fprintf ppf "unit-diff decode failed at byte %d: %s" e.de_off
    e.de_reason

(* private to [decode]: every malformed input becomes a [decode_error]
   result, never an escaping exception *)
exception Decode of decode_error

type reader = {
  buf : string;
  mutable pos : int;
}

let bad r reason = raise (Decode { de_off = r.pos; de_reason = reason })

let get_str r =
  match String.index_from_opt r.buf r.pos ':' with
  | None -> bad r "missing length prefix"
  | Some colon ->
    let len =
      match int_of_string_opt (String.sub r.buf r.pos (colon - r.pos)) with
      | Some n when n >= 0 -> n
      | _ -> bad r "bad length prefix"
    in
    if colon + 1 + len > String.length r.buf then bad r "truncated field";
    r.pos <- colon + 1 + len;
    String.sub r.buf (colon + 1) len

let get_list get r =
  match int_of_string_opt (get_str r) with
  | Some n when n >= 0 && n <= String.length r.buf ->
    List.init n (fun _ -> get r)
  | _ -> bad r "bad list length"

let get_reason r =
  let s = get_str r in
  if String.equal s "c" then Changed
  else if String.equal s "n" then New
  else if String.length s >= 1 && s.[0] = 'o' then
    Closure_of (String.sub s 1 (String.length s - 1))
  else if String.length s >= 1 && s.[0] = 'd' then
    Data_referent (String.sub s 1 (String.length s - 1))
  else bad r "unknown inclusion reason"

let decode s =
  let r = { buf = s; pos = 0 } in
  match
    if
      String.length s < String.length magic
      || not (String.equal (String.sub s 0 (String.length magic)) magic)
    then bad r "bad magic";
    r.pos <- String.length magic;
    let unit_name = get_str r in
    let changed_functions = get_list get_str r in
    let new_functions = get_list get_str r in
    let removed_functions = get_list get_str r in
    let changed_data = get_list get_str r in
    let changed_rodata = get_list get_str r in
    let new_data = get_list get_str r in
    let renames =
      get_list
        (fun r ->
          let post = get_str r in
          let pre = get_str r in
          (post, pre))
        r
    in
    let inclusion =
      get_list
        (fun r ->
          let sym = get_str r in
          let reason = get_reason r in
          (sym, reason))
        r
    in
    if r.pos <> String.length s then bad r "trailing bytes";
    { unit_name; changed_functions; new_functions; removed_functions;
      changed_data; changed_rodata; new_data; renames; inclusion }
  with
  | d -> Ok d
  | exception Decode e -> Error e
