(** ksplice-create (§3, §5): from kernel source plus a unified-diff patch
    to an update file, via two builds and pre-post differencing.

    The source given here must be the source of the {e running} kernel —
    for a previously-patched kernel, the previously-patched source (§5.4).
    No special preparation of the running kernel is required. *)

type request = {
  source : Patchfmt.Source_tree.t;  (** source of the running kernel *)
  patch : Patchfmt.Diff.t;
  update_id : string;
  description : string;
}

type error =
  | Patch_error of string  (** the patch does not apply to the source *)
  | Build_error of string  (** pre or post build failed *)
  | No_object_changes  (** the patch changed no object code *)
  | Data_semantics_changed of (string * string) list
      (** (unit, datum) pairs whose initial images changed while the patch
          provides no custom update code — the §2 case requiring a
          programmer (Table 1) *)

val pp_error : Format.formatter -> error -> unit

type created = {
  update : Update.t;
  diffs : Prepost.unit_diff list;  (** per patched unit *)
}

(** [create ?build_options ?domains ?store request] builds the update.
    [build_options] defaults to {!Minic.Driver.pre_build} (function
    sections on — required for the differencing to be per-function).
    [domains] bounds the domain pool used for unit compilation and
    pre/post differencing (default {!Parallel.default_domains}; [1]
    forces a fully serial creation); parallel and serial creation
    produce identical updates.

    Creation is {e incremental} through [store] (default
    {!Store.default}): pre and post unit objects are interned by digest,
    a unit whose pre and post objects are byte-identical skips
    differencing entirely, and a (pre, post) digest pair already
    differenced in this store reuses the cached result. Incremental and
    from-scratch creation produce byte-identical updates.

    [supersedes] (default [[]]) makes the result a {e cumulative} update:
    the listed update ids, oldest first, are atomically replaced when it
    is applied. Shadow-variable hooks ([ksplice_shadow_ctor] /
    [ksplice_shadow_dtor] registrations in the patch) are collected from
    the primary's Note sections into [update.shadow_ctors] /
    [update.shadow_dtors] automatically. *)
val create :
  ?build_options:Minic.Driver.options ->
  ?domains:int ->
  ?store:Store.t ->
  ?supersedes:string list ->
  request ->
  (created, error) result

(** Units whose differencing was skipped (equal pre/post digests or a
    cached diff) since the last {!reset_creation_stats} — mirrored as the
    [store.create.skipped_units] trace counter. *)
val skipped_units : unit -> int

val reset_creation_stats : unit -> unit
