(** ksplice-create (§3, §5): from kernel source plus a unified-diff patch
    to an update file, via two builds and pre-post differencing.

    The source given here must be the source of the {e running} kernel —
    for a previously-patched kernel, the previously-patched source (§5.4).
    No special preparation of the running kernel is required.

    Differencing itself (symbol correlation, per-function code
    comparison, dependency closure, data classification) lives in
    {!Diffobj}, re-exported through {!Prepost}; this module turns a
    unit's diff into the shipped update: it {e carves} exactly the
    included symbols out of the post object into the primary (rodata
    ships as per-symbol slices, not whole pools), rewrites relocations
    onto canonical pre-side names so run-pre inference resolves them
    against the unpatched kernel, and trims each helper to the pre text
    sections that run-pre matching actually needs. *)

type request = {
  source : Patchfmt.Source_tree.t;  (** source of the running kernel *)
  patch : Patchfmt.Diff.t;
  update_id : string;
  description : string;
}

type error =
  | Patch_error of string  (** the patch does not apply to the source *)
  | Build_error of string  (** pre or post build failed *)
  | No_object_changes  (** the patch changed no object code *)
  | Data_semantics_changed of (string * string) list
      (** (unit, datum) pairs whose initial images changed while the patch
          provides no custom update code — the §2 case requiring a
          programmer (Table 1). Read-only initializer changes do {e not}
          trip this: they ship as fresh rodata slices. *)

val pp_error : Format.formatter -> error -> unit

(** Why each shipped symbol is in the update, tied back to the source
    patch: per patched unit, its slice of the input diff and the
    canonical primary symbols carved from it with their inclusion
    reasons. Rendered by [ksplice-tool create --explain]. *)
type provenance = {
  p_unit : string;
  p_patch : Patchfmt.Diff.stats;  (** the patch restricted to this unit *)
  p_hunks : int;
  p_shipped : (string * Prepost.reason) list;
      (** canonical primary symbol -> inclusion reason *)
}

type created = {
  update : Update.t;
  diffs : Prepost.unit_diff list;  (** per patched unit *)
  provenance : provenance list;  (** per patched unit *)
}

(** All shipped symbols of a creation as
    [(canonical, (unit, reason))] — every defined symbol of
    [update.primary] appears exactly once. *)
val shipped_symbols : created -> (string * (string * Prepost.reason)) list

(** [create ?build_options ?domains ?minimal ?store request] builds the
    update. [build_options] defaults to {!Minic.Driver.pre_build}
    (function sections on — required for the differencing to be
    per-function). [domains] bounds the domain pool used for unit
    compilation and pre/post differencing (default
    {!Parallel.default_domains}; [1] forces a fully serial creation);
    parallel and serial creation produce identical updates.

    [minimal] (default [true]) selects function-granular carving: the
    primary ships only the diff's inclusion set and each helper keeps
    only the pre text sections run-pre matching needs (replaced
    functions, inference providers for the primary's unit-local
    references, ambiguity pinners). [~minimal:false] is the whole-unit
    baseline the bench compares against: all text and read-only data of
    every patched unit ships, and helpers are whole pre objects — only
    changed functions are still {e replaced} (redirecting unchanged ones
    would invite needless §5.2 quiescence aborts).

    Creation is {e incremental} through [store] (default
    {!Store.default}): pre and post unit objects are interned by digest,
    a unit whose pre and post objects are byte-identical skips
    differencing entirely, and a (pre, post) digest pair already
    differenced in this store reuses the cached result (codec
    ["unit-diff/2"]; blobs from the retired v1 codec fail its typed
    decoder and count as plain misses). Incremental and from-scratch
    creation produce byte-identical updates.

    [supersedes] (default [[]]) makes the result a {e cumulative} update:
    the listed update ids, oldest first, are atomically replaced when it
    is applied. Shadow-variable hooks ([ksplice_shadow_ctor] /
    [ksplice_shadow_dtor] registrations in the patch) are collected from
    the primary's Note sections into [update.shadow_ctors] /
    [update.shadow_dtors] automatically. *)
val create :
  ?build_options:Minic.Driver.options ->
  ?domains:int ->
  ?minimal:bool ->
  ?store:Store.t ->
  ?supersedes:string list ->
  request ->
  (created, error) result

(** Units whose differencing was skipped (equal pre/post digests or a
    cached diff) since the last {!reset_creation_stats} — mirrored as the
    [store.create.skipped_units] trace counter. *)
val skipped_units : unit -> int

val reset_creation_stats : unit -> unit
