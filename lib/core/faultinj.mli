(** Deterministic, seedable fault injection for the apply pipeline.

    A {!plan} names one pipeline step and the fault to inject there; a
    {!session} arms the corresponding machine-level injection hook
    ([Kernel.Machine.set_alloc_injector] & co.) exactly while the apply
    pipeline is inside that step, and disarms it on leaving. Pass the
    session to [Apply.apply ~inject] and check {!fired} afterwards.

    Every fault is deterministic in [(plan, machine state)] — no clocks,
    no randomness beyond the seed — so a failing sweep cell replays
    exactly. *)

type kind =
  | Oom  (** module allocation fails *)
  | Unresolved  (** a symbol resolution query is dropped *)
  | Corrupt_reloc  (** one relocated write has a seed-chosen bit flipped *)
  | Hook_fault  (** the next update-hook call faults without executing *)
  | Forced_not_quiescent  (** every quiescence attempt is vetoed *)
  | Sched_perturb
      (** the scheduler runs a seed-chosen burst of extra instructions;
          benign — apply must still succeed (via retries if needed) *)

val kind_name : kind -> string

(** The canonical fault for each pipeline step — the sweep matrix rows.
    [Hook_fault] appears at three steps (pre/apply/post hooks). *)
val kind_for_step : Txn.step -> kind

(** Whether an injected fault of this kind must abort the apply
    ([Sched_perturb] is the one benign kind). *)
val expect_abort : kind -> bool

type plan = {
  step : Txn.step;
  kind : kind;
  seed : int;
}

val pp_plan : Format.formatter -> plan -> unit

type session

val make : Kernel.Machine.t -> plan -> session
val plan : session -> plan

(** Called by the apply pipeline at each step boundary: arms the
    machine hooks on entering the planned step, disarms them on
    leaving it. *)
val on_step : session -> Txn.step -> unit

(** Consulted inside the quiescence check; [true] vetoes the attempt
    (and counts as the fault firing). *)
val veto_quiescence : session -> bool

(** Wraps the link-step resolver: when armed with {!Unresolved}, the
    first query returns [None]. *)
val sabotage_resolve :
  session -> (string -> int option) -> string -> int option

(** The fault actually triggered (an armed hook with no matching event —
    e.g. a hook fault on an update with no hooks — never fires). *)
val fired : session -> bool

(** Disarm all machine hooks this session installed. Idempotent; also
    performed implicitly when the pipeline leaves the planned step. *)
val disarm : session -> unit
