(* kpatch-grade object differencing (create-diff-object's four passes,
   transposed to the SELF object format): correlate symbols across the
   pre/post builds, detect genuinely changed functions per-symbol with
   benign rebuild noise canonicalised away, close the dependency set of
   what must ship, and classify data changes per-symbol. *)

module Isa = Vmisa.Isa
module Reloc = Objfile.Reloc
module Symbol = Objfile.Symbol
module Section = Objfile.Section

type reason =
  | Changed
  | New
  | Closure_of of string
  | Data_referent of string

let reason_to_string = function
  | Changed -> "changed"
  | New -> "new"
  | Closure_of s -> "closure-of " ^ s
  | Data_referent s -> "data-referent " ^ s

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)

type unit_diff = {
  unit_name : string;
  changed_functions : string list;
  new_functions : string list;
  removed_functions : string list;
  changed_data : string list;
  changed_rodata : string list;
  new_data : string list;
  renames : (string * string) list;
  inclusion : (string * reason) list;
}

(* MiniC compiler temporaries: [.Lstr<n>] read-only string slices whose
   numbering follows interning order, so an unrelated edit earlier in the
   unit renumbers every later literal — the analogue of kpatch's
   line-number and local-symbol-suffix noise. *)
let is_temp name = String.length name >= 2 && name.[0] = '.' && name.[1] = 'L'

let strip_prefix p s =
  let lp = String.length p in
  if String.length s > lp && String.sub s 0 lp = p then
    Some (String.sub s lp (String.length s - lp))
  else None

let fname_of_section (s : Section.t) =
  if s.kind = Section.Text then strip_prefix ".text." s.name else None

let dataname_of_section (s : Section.t) =
  match s.kind with
  | Section.Data -> strip_prefix ".data." s.name
  | Section.Bss -> strip_prefix ".bss." s.name
  | _ -> None

(* --- symbol slices ---

   The unit of comparison is a defined symbol's byte range within its
   section: the whole section for per-function and per-datum sections,
   a [value, value+size) window for string slices packed into the shared
   [.rodata.str]. *)

type slice = {
  sl_sym : Symbol.t;
  sl_section : Section.t;
  sl_off : int;
  sl_size : int;
}

let slice_of (o : Objfile.t) (sym : Symbol.t) =
  match sym.def with
  | None -> None
  | Some def -> (
    match Objfile.find_section o def.section with
    | None -> None
    | Some sec ->
      let size = if sym.size > 0 then sym.size else sec.size - def.value in
      Some { sl_sym = sym; sl_section = sec; sl_off = def.value;
             sl_size = size })

let slice_bytes sl =
  if sl.sl_section.kind = Section.Bss then Bytes.empty
  else Bytes.sub sl.sl_section.data sl.sl_off sl.sl_size

(* relocations inside the slice, rebased to slice-relative offsets *)
let slice_relocs sl =
  List.filter_map
    (fun (r : Reloc.t) ->
      if r.offset >= sl.sl_off && r.offset < sl.sl_off + sl.sl_size then
        Some { r with offset = r.offset - sl.sl_off }
      else None)
    sl.sl_section.relocs

let data_slices (o : Objfile.t) =
  List.filter_map
    (fun (sym : Symbol.t) ->
      match sym.def with
      | Some def when sym.kind <> `Func -> (
        match Objfile.find_section o def.section with
        | Some sec
          when sec.kind = Section.Data || sec.kind = Section.Bss
               || sec.kind = Section.Rodata ->
          slice_of o sym
        | _ -> None)
      | _ -> None)
    o.symbols

(* --- pass 1: symbol correlation ---

   Stable names correlate by name. Temp-named read-only slices correlate
   by content — interning dedups strings per unit, so content is a key —
   which yields the post→pre rename map that cancels renumbering noise. *)

type correlation = {
  (* post temp name -> pre temp name, identity pairs included; a post
     temp absent from this table has no pre counterpart (new or changed
     content) *)
  temp_map : (string, string) Hashtbl.t;
}

let correlate ~(pre : Objfile.t) ~(post : Objfile.t) =
  let content_key sl = Bytes.to_string (slice_bytes sl) in
  let pre_by_content = Hashtbl.create 16 in
  List.iter
    (fun sl ->
      if is_temp sl.sl_sym.name && sl.sl_section.kind = Section.Rodata then
        let k = content_key sl in
        if not (Hashtbl.mem pre_by_content k) then
          Hashtbl.add pre_by_content k sl.sl_sym.name)
    (data_slices pre);
  let temp_map = Hashtbl.create 16 in
  List.iter
    (fun sl ->
      if is_temp sl.sl_sym.name && sl.sl_section.kind = Section.Rodata then
        match Hashtbl.find_opt pre_by_content (content_key sl) with
        | Some pre_name -> Hashtbl.replace temp_map sl.sl_sym.name pre_name
        | None -> ())
    (data_slices post);
  { temp_map }

(* the reportable (non-identity) renames *)
let renames_of corr =
  Hashtbl.fold
    (fun post_name pre_name acc ->
      if String.equal post_name pre_name then acc
      else (post_name, pre_name) :: acc)
    corr.temp_map []
  |> List.sort compare

(* --- pass 2: per-function code comparison ---

   The static twin of {!Runpre.match_text}: walk both instruction
   streams, skipping alignment no-ops on each side independently,
   treating relocation holes as equal when the relocations agree modulo
   the rename map, and jump displacements as equal when their targets
   correspond through the boundary map. What survives all of that is a
   genuine code change. *)

type verdict =
  | Same
  | Code_changed
  | Refs_changed_data of string list
      (* instruction stream unchanged, but some relocations moved to
         read-only data with no pre counterpart (post symbol names) *)

let imm_holed i =
  match Runpre.with_imm i 0l with
  | i -> Some i
  | exception Invalid_argument _ -> None

let code_verdict ~(corr : correlation) ~(pre : Section.t) ~(post : Section.t)
    =
  let exception Differs in
  let data_refs = ref [] in
  let note_ref s = if not (List.mem s !data_refs) then data_refs := s :: !data_refs in
  let reloc_index (s : Section.t) =
    let tbl = Hashtbl.create 8 in
    List.iter (fun (r : Reloc.t) -> Hashtbl.replace tbl r.offset r) s.relocs;
    Hashtbl.find_opt tbl
  in
  let pre_reloc = reloc_index pre and post_reloc = reloc_index post in
  (* do the holes denote the same value once the running kernel resolves
     them?  Equal stable names: yes.  Correlated temps: yes iff they map
     to the same pre slice.  A temp hole moving to uncorrelated content
     is the data-referent case — the code is unchanged but it now reads
     different read-only data. *)
  let holes_agree (rp : Reloc.t) (rq : Reloc.t) =
    rp.kind = rq.kind
    && Int32.equal rp.addend rq.addend
    &&
    if is_temp rp.sym && is_temp rq.sym then (
      match Hashtbl.find_opt corr.temp_map rq.sym with
      | Some pre_name when String.equal pre_name rp.sym -> true
      | Some _ | None ->
        note_ref rq.sym;
        true)
    else String.equal rp.sym rq.sym
  in
  let decode (s : Section.t) pos =
    try Isa.decode_bytes s.data pos
    with Isa.Decode_error _ -> raise Differs
  in
  let skip (s : Section.t) pos =
    let stop = ref false in
    while (not !stop) && !pos < s.size do
      let i, len = decode s !pos in
      if Isa.is_nop i then pos := !pos + len else stop := true
    done
  in
  let boundary = Hashtbl.create 64 in
  let deferred = ref [] in
  let ppos = ref 0 and qpos = ref 0 in
  let continue = ref true in
  match
    while !continue do
      skip pre ppos;
      skip post qpos;
      if !ppos >= pre.size && !qpos >= post.size then continue := false
      else if !ppos >= pre.size || !qpos >= post.size then raise Differs
      else begin
        Hashtbl.replace boundary !ppos !qpos;
        let ipre, lpre = decode pre !ppos in
        let ipost, lpost = decode post !qpos in
        (match Isa.pc_rel ipre, Isa.pc_rel ipost with
         | Some (clp, dp, fop, fsp), Some (clq, dq, foq, fsq) ->
           if clp <> clq then raise Differs;
           let rp = pre_reloc (!ppos + fop)
           and rq = post_reloc (!qpos + foq) in
           (match rp, rq with
            | Some rp, Some rq ->
              if fsp <> 4 || fsq <> 4 then raise Differs;
              if not (holes_agree rp rq) then raise Differs
            | None, None ->
              let pt = !ppos + lpre + dp and qt = !qpos + lpost + dq in
              if pt < 0 || pt > pre.size || qt < 0 || qt > post.size then
                raise Differs;
              deferred := (pt, qt) :: !deferred
            | _ -> raise Differs)
         | Some _, None | None, Some _ -> raise Differs
         | None, None -> (
           let hp =
             match Isa.imm_field ipre with
             | Some (off, _) -> pre_reloc (!ppos + off)
             | None -> None
           and hq =
             match Isa.imm_field ipost with
             | Some (off, _) -> post_reloc (!qpos + off)
             | None -> None
           in
           match hp, hq with
           | Some rp, Some rq ->
             if not (holes_agree rp rq) then raise Differs;
             (match imm_holed ipre, imm_holed ipost with
              | Some a, Some b when a = b -> ()
              | _ -> raise Differs)
           | None, None -> if ipre <> ipost then raise Differs
           | _ -> raise Differs));
        ppos := !ppos + lpre;
        qpos := !qpos + lpost
      end
    done;
    Hashtbl.replace boundary pre.size !qpos;
    List.iter
      (fun (pt, qt) ->
        match Hashtbl.find_opt boundary pt with
        | Some mapped when mapped = qt -> ()
        | _ -> raise Differs)
      (List.rev !deferred)
  with
  | () -> if !data_refs = [] then Same else Refs_changed_data (List.rev !data_refs)
  | exception Differs -> Code_changed

(* --- pass 4 helper: per-datum comparison, modulo the rename map --- *)

let datum_equal ~corr pre_sl post_sl =
  let rename name =
    match Hashtbl.find_opt corr.temp_map name with
    | Some pre_name -> pre_name
    | None -> name
  in
  pre_sl.sl_section.kind = post_sl.sl_section.kind
  && pre_sl.sl_size = post_sl.sl_size
  && Bytes.equal (slice_bytes pre_sl) (slice_bytes post_sl)
  && List.length (slice_relocs pre_sl) = List.length (slice_relocs post_sl)
  && List.for_all2
       (fun (rp : Reloc.t) (rq : Reloc.t) ->
         rp.offset = rq.offset && rp.kind = rq.kind
         && Int32.equal rp.addend rq.addend
         && String.equal rp.sym (rename rq.sym))
       (slice_relocs pre_sl) (slice_relocs post_sl)

(* --- the four passes over one unit --- *)

let diff_unit ~(pre : Objfile.t) ~(post : Objfile.t) =
  let corr = correlate ~pre ~post in
  (* pass 2: function-granular change detection *)
  let index select o =
    List.filter_map
      (fun (s : Section.t) -> Option.map (fun n -> (n, s)) (select s))
      o.Objfile.sections
  in
  let pre_funcs = index fname_of_section pre in
  let post_funcs = index fname_of_section post in
  let verdicts =
    List.filter_map
      (fun (n, (s_post : Section.t)) ->
        match List.assoc_opt n pre_funcs with
        | Some s_pre -> (
          match code_verdict ~corr ~pre:s_pre ~post:s_post with
          | Same -> None
          | v -> Some (n, v))
        | None -> None)
      post_funcs
  in
  let changed_functions = List.map fst verdicts in
  let new_functions =
    List.filter_map
      (fun (n, _) -> if List.mem_assoc n pre_funcs then None else Some n)
      post_funcs
  in
  let removed_functions =
    List.filter_map
      (fun (n, _) -> if List.mem_assoc n post_funcs then None else Some n)
      pre_funcs
  in
  (* pass 4: per-symbol data comparison *)
  let pre_data = data_slices pre in
  let post_data = data_slices post in
  let find_pre name =
    List.find_opt (fun sl -> String.equal sl.sl_sym.name name) pre_data
  in
  let changed_data = ref [] and changed_rodata = ref [] and new_data = ref [] in
  List.iter
    (fun post_sl ->
      let name = post_sl.sl_sym.name in
      if post_sl.sl_section.kind = Section.Rodata then begin
        (* read-only slices are shippable; a temp with no pre counterpart
           by content is changed (or new) rodata, a stable rodata name
           compares by content *)
        if is_temp name then begin
          if not (Hashtbl.mem corr.temp_map name) then
            changed_rodata := name :: !changed_rodata
        end
        else
          match find_pre name with
          | Some pre_sl when datum_equal ~corr pre_sl post_sl -> ()
          | Some _ | None -> changed_rodata := name :: !changed_rodata
      end
      else
        (* data/bss hold the running kernel's persistent state: an init
           image change is the §2 semantic signal, a new datum ships *)
        match find_pre name with
        | Some pre_sl ->
          if not (datum_equal ~corr pre_sl post_sl) then
            changed_data := name :: !changed_data
        | None -> new_data := name :: !new_data)
    post_data;
  let changed_data = List.rev !changed_data in
  let changed_rodata = List.rev !changed_rodata in
  let new_data = List.rev !new_data in
  (* pass 3: dependency closure — what ships, and why. Replaced and new
     code seeds the set; relocations from anything included pull in the
     read-only slices (and any new data) the running kernel cannot
     resolve, transitively. Persistent changed data never ships: it is
     either gated or handled by custom update code. *)
  let inclusion : (string, reason) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let include_sym name reason =
    if not (Hashtbl.mem inclusion name) then begin
      Hashtbl.add inclusion name reason;
      order := name :: !order;
      true
    end
    else false
  in
  List.iter
    (fun (n, v) ->
      match v with
      | Code_changed -> ignore (include_sym n Changed)
      | Refs_changed_data (d :: _) -> ignore (include_sym n (Data_referent d))
      | Refs_changed_data [] | Same -> ())
    verdicts;
  List.iter (fun n -> ignore (include_sym n New)) new_functions;
  List.iter (fun n -> ignore (include_sym n New)) new_data;
  (* worklist closure over relocations of included definitions *)
  let shippable name =
    List.mem name changed_rodata
    || List.mem name new_data
    || List.mem name new_functions
  in
  let relocs_of name =
    match List.assoc_opt name post_funcs with
    | Some (s : Section.t) -> s.relocs
    | None -> (
      match Objfile.find_symbol post name with
      | Some sym -> (
        match slice_of post sym with
        | Some sl -> slice_relocs sl
        | None -> [])
      | None -> [])
  in
  let queue = Queue.create () in
  List.iter (fun n -> Queue.add n queue) (List.rev !order);
  while not (Queue.is_empty queue) do
    let n = Queue.take queue in
    List.iter
      (fun (r : Reloc.t) ->
        if shippable r.sym && include_sym r.sym (Closure_of n) then
          Queue.add r.sym queue)
      (relocs_of n)
  done;
  let inclusion =
    List.rev_map (fun n -> (n, Hashtbl.find inclusion n)) !order
  in
  { unit_name = post.unit_name; changed_functions; new_functions;
    removed_functions; changed_data; changed_rodata; new_data;
    renames = renames_of corr; inclusion }

let is_empty d =
  d.changed_functions = [] && d.new_functions = [] && d.removed_functions = []
  && d.changed_data = [] && d.changed_rodata = [] && d.new_data = []

let pp_unit_diff ppf d =
  let pl =
    Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_string
  in
  let pr ppf (s, r) = Format.fprintf ppf "%s (%s)" s (reason_to_string r) in
  Format.fprintf ppf
    "@[<v2>%s:@,changed: @[%a@]@,new: @[%a@]@,removed: @[%a@]@,\
     data changed: @[%a@]@,rodata changed: @[%a@]@,data new: @[%a@]@,\
     ships: @[%a@]@]"
    d.unit_name pl d.changed_functions pl d.new_functions pl
    d.removed_functions pl d.changed_data pl d.changed_rodata pl d.new_data
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pr)
    d.inclusion
