(** Pre-post differencing (§3): compare the object code of the kernel
    built before and after the patch, per compilation unit, to find what
    actually changed — including functions changed only indirectly (a
    callee was re-inlined, a prototype ripple changed the caller's code).

    This is the stable façade over the {!Diffobj} engine, which does the
    work kpatch's [create-diff-object] does: symbol correlation with
    rebuild-noise canonicalisation, function-granular change detection,
    dependency closure with per-symbol inclusion reasons, and per-symbol
    data classification. "Extraneous differences between the pre and the
    post object code are harmless" (§3.2) — but {e spurious} ones
    (temp renumbering, padding drift) are filtered so they produce zero
    diffs, and genuine ones ship minimally. *)

type reason = Diffobj.reason =
  | Changed
  | New
  | Closure_of of string
  | Data_referent of string

type unit_diff = Diffobj.unit_diff = {
  unit_name : string;
  changed_functions : string list;
      (** functions to replace (genuinely changed code, or unchanged
          code referencing changed read-only data) *)
  new_functions : string list;  (** present only post *)
  removed_functions : string list;  (** present only pre *)
  changed_data : string list;
      (** existing data/bss whose initial image changed: the §2
          "semantic change" signal *)
  changed_rodata : string list;
      (** read-only slices with changed/new content: shippable *)
  new_data : string list;  (** data/bss present only post *)
  renames : (string * string) list;
      (** non-identity post → pre temp-symbol correlations *)
  inclusion : (string * reason) list;
      (** every symbol the minimal primary ships, with why *)
}

val reason_to_string : reason -> string
val pp_reason : Format.formatter -> reason -> unit
val pp_unit_diff : Format.formatter -> unit_diff -> unit

(** [fname_of_section s] extracts the function name from a [.text.<f>]
    section. *)
val fname_of_section : Objfile.Section.t -> string option

(** [dataname_of_section s] extracts the datum name from a [.data.<n>] or
    [.bss.<n>] section. *)
val dataname_of_section : Objfile.Section.t -> string option

(** [diff_unit ~pre ~post] compares two builds of one unit (both built
    with function sections). *)
val diff_unit : pre:Objfile.t -> post:Objfile.t -> unit_diff

(** [is_empty d] holds when the patch had no object-code effect on the
    unit. *)
val is_empty : unit_diff -> bool

(** The all-empty diff for [unit_name]. *)
val empty : string -> unit_diff

(** {2 The [unit-diff/2] wire codec}

    Used by {!Create}'s store-backed incremental differencing. [decode]
    is total: any input — including truncations and bitflips of encoded
    diffs, and blobs written by the retired [unit-diff/1] codec — yields
    a typed error, never an exception. *)

val encode : unit_diff -> string

type decode_error = {
  de_off : int;  (** byte offset where decoding failed *)
  de_reason : string;
}

val pp_decode_error : Format.formatter -> decode_error -> unit

val decode : string -> (unit_diff, decode_error) result
