(** The distribution server: one {!session} per subscriber connection,
    driven as a pure-ish state machine (bytes in, frames out) so the
    same code serves a real Unix-domain socket and the deterministic
    simulated transport the chaos sweep injects faults into.

    A session walks [hello → head → manifest → want → blob stream →
    done]. The manifest is digest-verified as it is read
    ({!Ksplice.Repository.manifest}), and a [Want] may only name digests
    that manifest advertised — a subscriber cannot use the daemon as an
    arbitrary blob oracle. Any malformed or out-of-state frame yields
    one [Err] frame and kills the session; the subscriber's retry loop
    takes it from there. *)

type stats = {
  mutable frames_in : int;
  mutable blobs_sent : int;
  mutable bytes_sent : int;  (** blob payload bytes only *)
  mutable errors : int;  (** [Err] frames emitted *)
}

type session

(** [session ?id repo] starts a session serving [repo]'s chains. [id]
    names the server in [Hello_ack] (default ["fleet-server"]). *)
val session : ?id:string -> Ksplice.Repository.t -> session

(** [handle s bytes] feeds received bytes (any chunking — partial frames
    are buffered) and returns the encoded response frames to send.
    After an error the session is dead: further input yields nothing. *)
val handle : session -> string -> string list

val stats : session -> stats

(** Did the session reach [Done]? *)
val finished : session -> bool

(** [serve_connection repo tr] runs one full session over a transport,
    returning its stats when the peer disconnects or the session ends. *)
val serve_connection : ?id:string -> Ksplice.Repository.t -> Transport.t -> stats

(** [listen ~socket_path ?max_sessions repo] binds a Unix-domain socket
    and serves connections sequentially — [max_sessions] bounds the
    accept loop (default: run forever). A stale socket file (left by a
    crashed server) is probed for liveness and replaced only if nothing
    answers; if a live server already owns it, [listen] returns an error
    instead of stealing the socket. Returns the number of sessions
    served, or an error message if the socket could not be bound. *)
val listen :
  socket_path:string -> ?max_sessions:int -> ?recv_timeout:float ->
  Ksplice.Repository.t -> (int, string) result
