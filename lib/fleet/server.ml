module Repo = Ksplice.Repository

type stats = {
  mutable frames_in : int;
  mutable blobs_sent : int;
  mutable bytes_sent : int;
  mutable errors : int;
}

type state =
  | Expect_hello
  | Expect_head
  (* the manifest we advertised and the head we computed from it: a Want
     may only name digests listed there *)
  | Expect_want of { allowed : (string, unit) Hashtbl.t; head : string }
  | Finished
  | Dead

type session = {
  repo : Repo.t;
  id : string;
  st : stats;
  mutable state : state;
  mutable buf : string;
  mutable pos : int;
}

let session ?(id = "fleet-server") repo =
  {
    repo;
    id;
    st = { frames_in = 0; blobs_sent = 0; bytes_sent = 0; errors = 0 };
    state = Expect_hello;
    buf = "";
    pos = 0;
  }

let stats s = s.st
let finished s = s.state = Finished

let err s code fmt =
  Format.kasprintf
    (fun msg ->
      s.state <- Dead;
      s.st.errors <- s.st.errors + 1;
      [ Wire.Err { code; msg } ])
    fmt

let manifest_items entries =
  List.map
    (fun (e : Repo.manifest_entry) ->
      {
        Wire.mi_base = e.me_base;
        mi_next = e.me_next;
        mi_blob = e.me_blob;
        mi_size = e.me_size;
        mi_objects = e.me_objects;
      })
    entries

let step s frame =
  s.st.frames_in <- s.st.frames_in + 1;
  match (s.state, frame) with
  | Expect_hello, Wire.Hello { version; peer = _ } ->
    if version <> Wire.version then
      err s "version" "server speaks v%d, subscriber sent v%d" Wire.version
        version
    else begin
      s.state <- Expect_head;
      [ Wire.Hello_ack { version = Wire.version; peer = s.id } ]
    end
  | Expect_head, Wire.Head { digest } -> (
    match Repo.manifest s.repo ~digest with
    | Error e -> err s "manifest" "%a" Repo.pp_error e
    | Ok entries ->
      let allowed = Hashtbl.create 64 in
      List.iter
        (fun (e : Repo.manifest_entry) ->
          Hashtbl.replace allowed e.me_blob ();
          List.iter (fun (d, _) -> Hashtbl.replace allowed d ()) e.me_objects)
        entries;
      let head =
        match List.rev entries with
        | [] -> digest
        | last :: _ -> last.me_next
      in
      s.state <- Expect_want { allowed; head };
      [ Wire.Manifest (manifest_items entries) ])
  | Expect_want { allowed; head }, Wire.Want digests -> (
    let rec serve acc = function
      | [] -> Ok (List.rev acc)
      | d :: rest -> (
        if not (Hashtbl.mem allowed d) then
          Error (d, "not in the advertised manifest")
        else
          match Store.load (Repo.store s.repo) d with
          | Ok bytes ->
            s.st.blobs_sent <- s.st.blobs_sent + 1;
            s.st.bytes_sent <- s.st.bytes_sent + String.length bytes;
            serve (Wire.Blob { digest = d; bytes } :: acc) rest
          | Error `Missing -> Error (d, "missing")
          | Error (`Corrupt m) -> Error (d, m))
    in
    match serve [] digests with
    | Error (d, why) -> err s "blob" "cannot serve %s: %s" d why
    | Ok blobs ->
      s.state <- Finished;
      blobs @ [ Wire.Done { head } ])
  | Dead, _ -> []
  | (Expect_hello | Expect_head | Expect_want _ | Finished), f ->
    err s "protocol" "unexpected frame: %a" Wire.pp_frame f

let handle s bytes =
  if s.state = Dead then []
  else begin
    s.buf <- String.sub s.buf s.pos (String.length s.buf - s.pos) ^ bytes;
    s.pos <- 0;
    let out = ref [] in
    let rec drain () =
      match Wire.decode s.buf ~pos:s.pos with
      | Ok (f, p) ->
        s.pos <- p;
        out := !out @ step s f;
        if s.state <> Dead then drain ()
      | Error `Incomplete -> ()
      | Error (`Fail e) ->
        out := !out @ err s "frame" "%a" Wire.pp_decode_error e
    in
    drain ();
    List.map Wire.encode !out
  end

let serve_connection ?id repo (tr : Transport.t) =
  let s = session ?id repo in
  let rec loop () =
    match tr.recv () with
    | chunk ->
      let outs = handle s chunk in
      (match List.iter tr.send outs with
      | () -> if s.state = Dead then () else loop ()
      | exception Transport.Closed -> ())
    | exception (Transport.Closed | Transport.Stalled _) -> ()
  in
  loop ();
  tr.close ();
  s.st

(* Is some process accepting on [socket_path]? A leftover file from a
   crashed server refuses the probe connection; a live server accepts
   (the probe is closed before speaking, which the accept loop sees as
   an immediate disconnect). *)
let socket_live socket_path =
  let probe = Unix.socket PF_UNIX SOCK_STREAM 0 in
  let alive =
    match Unix.connect probe (ADDR_UNIX socket_path) with
    | () -> true
    | exception Unix.Unix_error (_, _, _) -> false
  in
  (try Unix.close probe with Unix.Unix_error _ -> ());
  alive

let listen ~socket_path ?max_sessions ?recv_timeout repo =
  (* only a dead socket file may be replaced: blindly unlinking would
     steal a live server's socket out from under its subscribers *)
  if Sys.file_exists socket_path && socket_live socket_path then
    Error
      (Printf.sprintf "cannot bind %s: a live server is already listening"
         socket_path)
  else
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  match
    if Sys.file_exists socket_path then Unix.unlink socket_path;
    Unix.bind fd (ADDR_UNIX socket_path);
    Unix.listen fd 64
  with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot bind %s: %s" socket_path (Unix.error_message e))
  | () ->
    let served = ref 0 in
    let continue () =
      match max_sessions with None -> true | Some n -> !served < n
    in
    while continue () do
      let conn, _ = Unix.accept fd in
      let (_ : stats) =
        serve_connection repo (Transport.of_fd ?recv_timeout conn)
      in
      incr served
    done;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
    Ok !served
