(** Injectable byte transports, in the style of {!Vfs}: the server and
    subscriber speak {!Wire} frames over this record, so the same
    protocol code runs over a real Unix-domain socket and over a
    deterministic in-process simulation whose fault plans tear, corrupt,
    drop, stall, or duplicate exactly the [at]-th frame on the wire.

    Transports raise; the frame layer ({!recv_frame}/{!send_frame})
    catches into typed results, which is what the subscriber's retry
    loop consumes. *)

(** The connection is gone (peer closed, or a simulated disconnect). *)
exception Closed

(** The peer stopped making progress and the receive budget ran out —
    the wire analogue of the manager's instruction-budget deadline. *)
exception Stalled of string

type t = {
  send : string -> unit;  (** one frame's bytes; raises {!Closed} *)
  recv : unit -> string;
      (** next delivered chunk (not necessarily a whole frame); raises
          {!Closed} or {!Stalled} *)
  close : unit -> unit;
}

(** {2 Fault plans} *)

type fault_kind =
  | Disconnect  (** the frame is dropped and the connection dies *)
  | Torn  (** a seed-chosen prefix of the frame arrives, then the
              connection dies — the wire analogue of a torn write *)
  | Corrupt  (** one seed-chosen bit of the frame flips; delivery
                 continues (the frame checksum must catch it) *)
  | Stall  (** the frame never arrives and the peer hangs; the receiver
               hits its budget and {!Stalled} fires *)
  | Duplicate  (** the frame is delivered twice *)

val fault_kind_to_string : fault_kind -> string
val all_fault_kinds : fault_kind list

(** Fire [kind] on the [at]-th frame crossing the wire (1-based,
    counting both directions — so [at] indexes protocol steps). [seed]
    picks the torn prefix length and the flipped bit. *)
type plan = { at : int; kind : fault_kind; seed : int }

(** {2 Deterministic in-process simulation} *)

type sim_stats = {
  mutable frames : int;  (** frames that crossed the wire *)
  mutable wire_bytes : int;
  mutable fired : bool;  (** did the plan trigger? *)
}

(** [sim ?plan ~serve ()] is a client-side transport whose peer is the
    function [serve]: each frame the client sends is pumped through
    [serve] (which may buffer partial input) and the response frames are
    queued for [recv]. No threads, no clocks — a given [plan] and seed
    replay bit-identically. *)
val sim : ?plan:plan -> serve:(string -> string list) -> unit -> t * sim_stats

(** {2 Real sockets} *)

(** [of_fd fd] wraps a connected stream socket. [recv] waits up to
    [recv_timeout] seconds (default 30) and raises {!Stalled} on expiry
    — a stalled peer cannot wedge a subscriber. *)
val of_fd : ?recv_timeout:float -> Unix.file_descr -> t

(** Connect to a Unix-domain socket path. Raises [Unix.Unix_error]. *)
val connect_unix : ?recv_timeout:float -> string -> t

(** A connected socketpair, both ends wrapped — a real-kernel-buffer
    loopback for tests. *)
val pair : ?recv_timeout:float -> unit -> t * t

(** {2 Frame layer} *)

type recv_error =
  | Decode of Wire.decode_error
  | Disconnected
  | Stalled_out of string

val pp_recv_error : Format.formatter -> recv_error -> unit

(** Buffers stream chunks and yields whole frames. *)
type reader

val reader : t -> reader

(** Next frame, pulling chunks as needed. A decode failure is returned,
    not raised — a corrupt frame is data, and the caller decides to
    abort the session and retry. *)
val recv_frame : reader -> (Wire.frame, recv_error) result

val send_frame : t -> Wire.frame -> (unit, recv_error) result
