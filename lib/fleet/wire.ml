let version = 1
let magic = "KFR1"

(* big enough for any KSPL2 blob the corpus produces, small enough that
   a bit-flipped length field cannot make a receiver buffer gigabytes *)
let max_payload = 16 * 1024 * 1024

type manifest_item = {
  mi_base : string;
  mi_next : string;
  mi_blob : string;
  mi_size : int;
  mi_objects : (string * int) list;
}

type frame =
  | Hello of { version : int; peer : string }
  | Hello_ack of { version : int; peer : string }
  | Head of { digest : string }
  | Manifest of manifest_item list
  | Want of string list
  | Blob of { digest : string; bytes : string }
  | Done of { head : string }
  | Err of { code : string; msg : string }

type decode_error =
  | Bad_magic
  | Bad_length of int
  | Checksum_mismatch
  | Bad_tag of int
  | Malformed of string

let pp_decode_error ppf = function
  | Bad_magic -> Format.fprintf ppf "bad frame magic"
  | Bad_length n -> Format.fprintf ppf "bad frame length %d" n
  | Checksum_mismatch -> Format.fprintf ppf "frame checksum mismatch"
  | Bad_tag n -> Format.fprintf ppf "unknown frame tag %d" n
  | Malformed m -> Format.fprintf ppf "malformed frame payload: %s" m

let pp_frame ppf = function
  | Hello { version; peer } -> Format.fprintf ppf "hello v%d from %s" version peer
  | Hello_ack { version; peer } ->
    Format.fprintf ppf "hello-ack v%d from %s" version peer
  | Head { digest } -> Format.fprintf ppf "head %s" digest
  | Manifest items -> Format.fprintf ppf "manifest (%d entries)" (List.length items)
  | Want ds -> Format.fprintf ppf "want (%d digests)" (List.length ds)
  | Blob { digest; bytes } ->
    Format.fprintf ppf "blob %s (%d bytes)" digest (String.length bytes)
  | Done { head } -> Format.fprintf ppf "done, head %s" head
  | Err { code; msg } -> Format.fprintf ppf "error [%s] %s" code msg

(* --- payload encoding: tag byte, then u32le ints and length-prefixed
   strings --- *)

let tag_of = function
  | Hello _ -> 1
  | Hello_ack _ -> 2
  | Head _ -> 3
  | Manifest _ -> 4
  | Want _ -> 5
  | Blob _ -> 6
  | Done _ -> 7
  | Err _ -> 8

let put_u32 b n = Buffer.add_int32_le b (Int32.of_int n)

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let encode_payload f =
  let b = Buffer.create 256 in
  Buffer.add_char b (Char.chr (tag_of f));
  (match f with
  | Hello { version; peer } | Hello_ack { version; peer } ->
    put_u32 b version;
    put_str b peer
  | Head { digest } -> put_str b digest
  | Manifest items ->
    put_u32 b (List.length items);
    List.iter
      (fun i ->
        put_str b i.mi_base;
        put_str b i.mi_next;
        put_str b i.mi_blob;
        put_u32 b i.mi_size;
        put_u32 b (List.length i.mi_objects);
        List.iter
          (fun (d, sz) ->
            put_str b d;
            put_u32 b sz)
          i.mi_objects)
      items
  | Want ds ->
    put_u32 b (List.length ds);
    List.iter (put_str b) ds
  | Blob { digest; bytes } ->
    put_str b digest;
    put_str b bytes
  | Done { head } -> put_str b head
  | Err { code; msg } ->
    put_str b code;
    put_str b msg);
  Buffer.contents b

let encode f =
  let payload = encode_payload f in
  let b = Buffer.create (String.length payload + 24) in
  Buffer.add_string b magic;
  put_u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.add_string b (Digest.string payload);
  Buffer.contents b

(* --- total decoding --- *)

exception Fail of decode_error

let decode_payload payload =
  let pos = ref 1 in
  let len = String.length payload in
  let u32 () =
    if !pos + 4 > len then raise (Fail (Malformed "truncated integer"));
    let n = Int32.to_int (String.get_int32_le payload !pos) in
    pos := !pos + 4;
    if n < 0 || n > max_payload then
      raise (Fail (Malformed (Printf.sprintf "field length %d out of range" n)));
    n
  in
  let str () =
    let n = u32 () in
    if !pos + n > len then raise (Fail (Malformed "truncated string"));
    let s = String.sub payload !pos n in
    pos := !pos + n;
    s
  in
  let list f =
    let n = u32 () in
    List.init n (fun _ -> f ())
  in
  if len = 0 then raise (Fail (Malformed "empty payload"));
  let f =
    match Char.code payload.[0] with
    | 1 ->
      let version = u32 () in
      let peer = str () in
      Hello { version; peer }
    | 2 ->
      let version = u32 () in
      let peer = str () in
      Hello_ack { version; peer }
    | 3 -> Head { digest = str () }
    | 4 ->
      Manifest
        (list (fun () ->
             let mi_base = str () in
             let mi_next = str () in
             let mi_blob = str () in
             let mi_size = u32 () in
             let mi_objects =
               list (fun () ->
                   let d = str () in
                   let sz = u32 () in
                   (d, sz))
             in
             { mi_base; mi_next; mi_blob; mi_size; mi_objects }))
    | 5 -> Want (list str)
    | 6 ->
      let digest = str () in
      let bytes = str () in
      Blob { digest; bytes }
    | 7 -> Done { head = str () }
    | 8 ->
      let code = str () in
      let msg = str () in
      Err { code; msg }
    | t -> raise (Fail (Bad_tag t))
  in
  if !pos <> len then raise (Fail (Malformed "trailing bytes in payload"));
  f

let decode buf ~pos =
  let have = String.length buf - pos in
  if pos < 0 || have < 0 then Error (`Fail (Malformed "position out of range"))
  else begin
    (* reject a wrong magic as soon as the prefix diverges, so garbage
       is not mistaken for a short frame *)
    let mcheck = min have 4 in
    if String.sub buf pos mcheck <> String.sub magic 0 mcheck then
      Error (`Fail Bad_magic)
    else if have < 8 then Error `Incomplete
    else
      let plen = Int32.to_int (String.get_int32_le buf (pos + 4)) in
      if plen < 0 || plen > max_payload then Error (`Fail (Bad_length plen))
      else if have < 8 + plen + 16 then Error `Incomplete
      else
        let payload = String.sub buf (pos + 8) plen in
        let sum = String.sub buf (pos + 8 + plen) 16 in
        if not (String.equal (Digest.string payload) sum) then
          Error (`Fail Checksum_mismatch)
        else
          match decode_payload payload with
          | f -> Ok (f, pos + 8 + plen + 16)
          | exception Fail e -> Error (`Fail e)
  end
