(** The uptrack-style subscriber: mirrors a server's update chain into a
    local {!Store.t} over the wire protocol, surviving every transport
    fault the simulation can inject.

    Robustness invariants:
    - {b re-digest on receive}: every blob is digested before it is
      believed; a corrupted frame or lying server yields a typed error
      and a retry, never a poisoned store.
    - {b all-or-nothing per entry}: a chain entry becomes visible only
      via {!Store.with_txn}/{!Store.commit_refs}, and only once the
      entry blob {e and} its re-derived object closure are all present —
      a killed sync never exposes a partial chain.
    - {b resume, never re-download}: wants are computed by set
      difference against the local store, so blobs verified in an
      earlier attempt (even an aborted one) are never transferred again.
    - {b bounded-exponential retry} with seeded jitter (the Manager's
      backoff shape), and {b graceful degradation}: when the server is
      unreachable the subscriber keeps serving its old chain head.

    The local mirror uses the same layout as the server
    ({!Ksplice.Repository.entry_ref} refs over a store), so
    {!Ksplice.Repository.of_store} gives pending/sync/fsck/gc over it
    directly. The subscriber's own position lives under the
    ["fleet:head"] ref and advances atomically with each entry. *)

(** Retry schedule: bounded exponential backoff plus deterministic
    seeded jitter, the {!Manager} shape — delays are abstract ticks
    (the caller decides whether to sleep them). *)
type policy = {
  retries : int;  (** maximum connection attempts *)
  backoff_base : int;
  backoff_cap : int;  (** ceiling, pre-jitter *)
  jitter : int;  (** jitter bound; same seed and id => same schedule *)
  seed : int;
}

val default_policy : policy

(** [retry_delay pol ~id ~attempt] — exposed for tests and the sweep. *)
val retry_delay : policy -> id:string -> attempt:int -> int

type error =
  | Transport of Transport.recv_error
  | Protocol of string  (** unexpected frame, bad manifest linkage, … *)
  | Server of { code : string; msg : string }  (** the server said no *)
  | Digest_mismatch of { digest : string }
      (** received bytes do not digest to what was announced *)

val pp_error : Format.formatter -> error -> unit

(** [head store ~base] is the locally durable chain position: the
    ["fleet:head"] ref if a sync ever committed, else [base]. *)
val head : Store.t -> base:string -> string

(** Outcome of {!sync} — also the degraded outcome, when every attempt
    failed and the subscriber keeps serving its old head. *)
type report = {
  r_head : string;  (** position after the sync (old head if degraded) *)
  r_synced : bool;  (** reached the server's chain head *)
  r_attempts : int;
  r_delays : int list;  (** backoff ticks chosen between attempts *)
  r_committed : int;  (** entries committed across all attempts *)
  r_blobs_fetched : int;
  r_bytes_fetched : int;
  r_bytes_saved : int;  (** bytes of needed blobs already present *)
  r_redundant : int;  (** verified receives of already-present blobs —
                          the zero-redundant-transfer invariant *)
  r_dups : int;  (** duplicate/unsolicited frames tolerated *)
  r_log : string list;  (** one line per failed attempt *)
}

(** [sync ~store ~base ~connect ()] brings the local mirror up to the
    server's chain head. [connect attempt] opens a fresh transport for
    each attempt ([None] = connection refused; counted and retried).
    [sleep] is called with each backoff delay (default: ignore — the
    simulation has no clock). Total: degradation is a report, not an
    error. *)
val sync :
  ?policy:policy -> ?sleep:(int -> unit) -> ?id:string -> store:Store.t ->
  base:string -> connect:(int -> Transport.t option) -> unit -> report
