(** The fleet wire protocol's frame codec.

    A frame is [magic(4) · payload_len(u32le) · payload · md5(16)]: the
    checksum is over the payload, so a torn or bit-flipped frame is
    rejected before any field is believed. The decoder is {e total}: any
    byte string yields a frame, [`Incomplete] (a prefix of a valid
    frame — wait for more bytes), or a typed [`Fail] — never an
    exception. That totality is what lets the transport's fault plans
    (torn frames, corrupted payloads) surface as clean typed errors the
    subscriber can retry through.

    The conversation is: [Hello]/[Hello_ack] (version gate), [Head]
    (subscriber announces its chain position), [Manifest] (server
    describes the pending chain as digests), [Want] (subscriber lists
    only the digests it is missing — CAS delta sync), a [Blob] stream,
    and [Done] carrying the server's chain head. [Err] aborts. *)

(** Protocol version spoken by this implementation. *)
val version : int

(** One chain hop, as digests plus sizes (sizes let a subscriber
    account bytes saved by delta sync without fetching anything). *)
type manifest_item = {
  mi_base : string;
  mi_next : string;
  mi_blob : string;
  mi_size : int;
  mi_objects : (string * int) list;
}

type frame =
  | Hello of { version : int; peer : string }
  | Hello_ack of { version : int; peer : string }
  | Head of { digest : string }
  | Manifest of manifest_item list
  | Want of string list
  | Blob of { digest : string; bytes : string }
  | Done of { head : string }
  | Err of { code : string; msg : string }

type decode_error =
  | Bad_magic
  | Bad_length of int  (** negative or beyond the frame size bound *)
  | Checksum_mismatch
  | Bad_tag of int
  | Malformed of string  (** payload structure does not parse *)

val pp_decode_error : Format.formatter -> decode_error -> unit

(** Short human-readable form, for logs and sweep notes. *)
val pp_frame : Format.formatter -> frame -> unit

val encode : frame -> string

(** [decode buf ~pos] parses one frame starting at [pos]. [Ok (f, p)]
    is the frame and the position just past it. Total: never raises. *)
val decode :
  string -> pos:int ->
  (frame * int, [ `Incomplete | `Fail of decode_error ]) result
