exception Closed
exception Stalled of string

type t = {
  send : string -> unit;
  recv : unit -> string;
  close : unit -> unit;
}

type fault_kind = Disconnect | Torn | Corrupt | Stall | Duplicate

let fault_kind_to_string = function
  | Disconnect -> "disconnect"
  | Torn -> "torn"
  | Corrupt -> "corrupt"
  | Stall -> "stall"
  | Duplicate -> "duplicate"

let all_fault_kinds = [ Disconnect; Torn; Corrupt; Stall; Duplicate ]

type plan = { at : int; kind : fault_kind; seed : int }

(* the Manager's splitmix-ish jitter hash: deterministic, spreads over
   the low bits well enough to pick torn lengths and flipped bits *)
let mix ~seed k =
  let h = ref (seed lxor 0x9e3779b9) in
  let feed v =
    h := !h lxor v;
    h := !h * 0x85ebca6b land 0x3fffffff;
    h := (!h lxor (!h lsr 13)) land 0x3fffffff
  in
  feed (k * 0x27d4eb2f);
  !h

(* --- deterministic in-process simulation --- *)

type sim_stats = {
  mutable frames : int;
  mutable wire_bytes : int;
  mutable fired : bool;
}

let sim ?plan ~serve () =
  let stats = { frames = 0; wire_bytes = 0; fired = false } in
  let inbox = Queue.create () in
  let closed = ref false in
  let stalled = ref false in
  (* every frame crossing the wire, in either direction, passes through
     here: count it, apply the plan if this is the [at]-th, deliver *)
  let transfer frame deliver =
    if not (!closed || !stalled) then begin
      stats.frames <- stats.frames + 1;
      stats.wire_bytes <- stats.wire_bytes + String.length frame;
      match plan with
      | Some p when stats.frames = p.at ->
        stats.fired <- true;
        (match p.kind with
        | Disconnect -> closed := true
        | Torn ->
          let n = String.length frame in
          let keep = 1 + (mix ~seed:p.seed stats.frames mod max 1 (n - 1)) in
          deliver (String.sub frame 0 keep);
          closed := true
        | Corrupt ->
          let n = String.length frame in
          let i = mix ~seed:p.seed stats.frames mod n in
          let bit = mix ~seed:p.seed (stats.frames + 1) mod 8 in
          let b = Bytes.of_string frame in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
          deliver (Bytes.to_string b)
        | Stall -> stalled := true
        | Duplicate ->
          deliver frame;
          deliver frame)
      | _ -> deliver frame
    end
  in
  let to_client chunk = Queue.add chunk inbox in
  let send frame =
    if !closed then raise Closed;
    transfer frame (fun bytes ->
        List.iter (fun f -> transfer f to_client) (serve bytes))
  in
  let recv () =
    if not (Queue.is_empty inbox) then Queue.pop inbox
    else if !stalled then
      raise (Stalled "simulated peer stall: receive budget exhausted")
    else raise Closed
  in
  let close () = closed := true in
  ({ send; recv; close }, stats)

(* --- real sockets --- *)

let rec write_all fd bytes pos len =
  if len > 0 then begin
    let n = Unix.write fd bytes pos len in
    write_all fd bytes (pos + n) (len - n)
  end

let of_fd ?(recv_timeout = 30.) fd =
  let closed = ref false in
  let send frame =
    if !closed then raise Closed;
    let b = Bytes.of_string frame in
    match write_all fd b 0 (Bytes.length b) with
    | () -> ()
    | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
      closed := true;
      raise Closed
  in
  let buf = Bytes.create 65536 in
  let recv () =
    if !closed then raise Closed;
    match Unix.select [ fd ] [] [] recv_timeout with
    | [], _, _ ->
      raise
        (Stalled (Printf.sprintf "peer silent for %.0fs" recv_timeout))
    | _ -> (
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 ->
        closed := true;
        raise Closed
      | n -> Bytes.sub_string buf 0 n
      | exception Unix.Unix_error (ECONNRESET, _, _) ->
        closed := true;
        raise Closed)
  in
  let close () =
    if not !closed then begin
      closed := true;
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  { send; recv; close }

let connect_unix ?recv_timeout path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  of_fd ?recv_timeout fd

let pair ?recv_timeout () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  (of_fd ?recv_timeout a, of_fd ?recv_timeout b)

(* --- frame layer --- *)

type recv_error =
  | Decode of Wire.decode_error
  | Disconnected
  | Stalled_out of string

let pp_recv_error ppf = function
  | Decode e -> Wire.pp_decode_error ppf e
  | Disconnected -> Format.fprintf ppf "connection closed"
  | Stalled_out m -> Format.fprintf ppf "stalled: %s" m

type reader = {
  tr : t;
  mutable buf : string;
  mutable pos : int;
}

let reader tr = { tr; buf = ""; pos = 0 }

let rec recv_frame r =
  match Wire.decode r.buf ~pos:r.pos with
  | Ok (f, p) ->
    r.pos <- p;
    if r.pos = String.length r.buf then begin
      r.buf <- "";
      r.pos <- 0
    end;
    Ok f
  | Error (`Fail e) -> Error (Decode e)
  | Error `Incomplete -> (
    match r.tr.recv () with
    | chunk ->
      r.buf <- String.sub r.buf r.pos (String.length r.buf - r.pos) ^ chunk;
      r.pos <- 0;
      recv_frame r
    | exception Closed -> Error Disconnected
    | exception Stalled m -> Error (Stalled_out m))

let send_frame tr f =
  match tr.send (Wire.encode f) with
  | () -> Ok ()
  | exception Closed -> Error Disconnected
  | exception Stalled m -> Error (Stalled_out m)
